(* geomix — command-line front end to the library: precision maps,
   simulated cluster runs, MLE fits and GEMM accuracy probes. *)

open Cmdliner
module Fp = Geomix_precision.Fpformat
module Rng = Geomix_util.Rng
module Pm = Geomix_core.Precision_map
module Cm = Geomix_core.Comm_map
module Sim = Geomix_core.Sim_cholesky
module Machine = Geomix_gpusim.Machine
module Gpu = Geomix_gpusim.Gpu_specs
module Energy = Geomix_gpusim.Energy
module Locations = Geomix_geostat.Locations
module Covariance = Geomix_geostat.Covariance
module Field = Geomix_geostat.Field
module Likelihood = Geomix_geostat.Likelihood
module Mle = Geomix_geostat.Mle

(* Shared argument helpers *)

let family_conv =
  Arg.enum
    [
      ("sqexp", Covariance.Sqexp);
      ("matern", Covariance.Matern);
      ("powexp", Covariance.Powexp);
      ("spherical", Covariance.Spherical);
    ]

let family_arg =
  Arg.(
    value
    & opt family_conv Covariance.Sqexp
    & info [ "family" ] ~doc:"Covariance family: sqexp or matern.")

let beta_arg = Arg.(value & opt float 0.1 & info [ "beta" ] ~doc:"Range parameter β.")
let sigma2_arg = Arg.(value & opt float 1.0 & info [ "sigma2" ] ~doc:"Variance parameter σ².")
let nu_arg = Arg.(value & opt float 0.5 & info [ "nu" ] ~doc:"Matérn smoothness ν.")
let nugget_arg =
  Arg.(value & opt float Covariance.default_nugget & info [ "nugget" ] ~doc:"Diagonal nugget τ².")
let dims_arg = Arg.(value & opt int 2 & info [ "dims" ] ~doc:"Spatial dimension (2 or 3).")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")
let u_req_arg =
  Arg.(value & opt float 1e-6 & info [ "u-req" ] ~doc:"Application accuracy for the norm rule.")
let nb_arg = Arg.(value & opt int 2048 & info [ "nb" ] ~doc:"Tile size.")

let config_conv =
  Arg.enum
    [ ("fp64", `Fp64); ("fp32", `Fp32); ("fp64-fp16", `Mixed16); ("fp64-fp16-32", `Mixed16_32) ]

let config_name = function
  | `Fp64 -> "fp64"
  | `Fp32 -> "fp32"
  | `Mixed16 -> "fp64-fp16"
  | `Mixed16_32 -> "fp64-fp16-32"

(* Telemetry verbosity: --verbose streams Debug-level events to stderr;
   otherwise GEOMIX_LOG=debug|info|warn|error selects the level; otherwise
   the subcommand runs without a bus and pays nothing. *)

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose" ]
        ~doc:
          "Stream telemetry events to stderr at debug level.  Without this \
           flag, the $(b,GEOMIX_LOG) environment variable \
           (debug|info|warn|error) selects the stderr level; unset means no \
           event streaming.")

let stderr_bus_of ~verbose =
  let module Events = Geomix_obs.Events in
  if verbose then Some (Events.stderr_bus Events.Debug)
  else Option.map Events.stderr_bus (Events.env_level ())

let pmap_of_config ~ntiles = function
  | `Fp64 -> Pm.uniform ~nt:ntiles Fp.Fp64
  | `Fp32 -> Pm.uniform ~nt:ntiles Fp.Fp32
  | `Mixed16 -> Pm.two_level ~nt:ntiles ~off_diag:Fp.Fp16
  | `Mixed16_32 -> Pm.two_level ~nt:ntiles ~off_diag:Fp.Fp16_32

let cov_of ~family ~sigma2 ~beta ~nu ~nugget =
  match family with
  | Covariance.Sqexp -> Covariance.sqexp ~nugget ~sigma2 ~beta ()
  | Covariance.Matern -> Covariance.matern ~nugget ~sigma2 ~beta ~nu ()
  | Covariance.Powexp -> Covariance.powexp ~nugget ~sigma2 ~beta ~power:nu ()
  | Covariance.Spherical -> Covariance.spherical ~nugget ~sigma2 ~beta ()

let sites ~dims ~seed ~n =
  let rng = Rng.create ~seed in
  Locations.morton_sort
    (if dims = 3 then Locations.jittered_grid_3d ~rng ~n
     else Locations.jittered_grid_2d ~rng ~n)

(* precision-map subcommand *)

let precision_map_cmd =
  let run family sigma2 beta nu nugget dims seed u_req n nb render =
    let cov = cov_of ~family ~sigma2 ~beta ~nu ~nugget in
    let locs = sites ~dims ~seed ~n in
    let pmap = Pm.of_element_fn ~u_req ~n ~nb (Covariance.element cov locs) in
    Printf.printf "Precision map: order %d, tile %d, %dx%d tiles, u_req %.1e\n" n nb
      (Pm.nt pmap) (Pm.nt pmap) u_req;
    List.iter
      (fun (p, f) -> Printf.printf "  %-8s %5.1f%%\n" (Fp.name p) (100. *. f))
      (Pm.fractions pmap);
    if render && Pm.nt pmap <= 64 then print_string (Pm.render pmap);
    let cm = Cm.compute pmap in
    Printf.printf "Automated conversion: %.1f%% of broadcasting tiles use STC\n"
      (100. *. Cm.stc_fraction cm)
  in
  let n_arg = Arg.(value & opt int 65536 & info [ "order" ] ~doc:"Matrix order / site count.") in
  let render_arg = Arg.(value & flag & info [ "render" ] ~doc:"Draw the tile map (small maps).") in
  Cmd.v
    (Cmd.info "precision-map" ~doc:"Compute the adaptive tile-precision map of a covariance")
    Term.(
      const run $ family_arg $ sigma2_arg $ beta_arg $ nu_arg $ nugget_arg $ dims_arg
      $ seed_arg $ u_req_arg $ n_arg $ nb_arg $ render_arg)

(* simulate subcommand *)

let simulate_cmd =
  let machine_conv =
    Arg.enum
      [ ("v100", `V100); ("a100", `A100); ("h100", `H100); ("summit", `Summit); ("guyot", `Guyot) ]
  in
  let strategy_conv = Arg.enum [ ("stc", Sim.Stc_auto); ("ttc", Sim.Ttc_always) ] in
  let run machine nodes ntiles config strategy nb trace_json gantt =
    let machine =
      match machine with
      | `V100 -> Machine.single_gpu Gpu.V100
      | `A100 -> Machine.single_gpu Gpu.A100
      | `H100 -> Machine.single_gpu Gpu.H100
      | `Summit -> Machine.summit ~nodes ()
      | `Guyot -> Machine.guyot ()
    in
    let pmap = pmap_of_config ~ntiles config in
    let collect_trace = gantt || trace_json <> None in
    let r =
      Sim.run ~options:{ Sim.default_options with strategy; collect_trace } ~machine
        ~pmap ~nb ()
    in
    Printf.printf "machine          %s (%d GPUs)\n" r.Sim.machine_name r.Sim.ngpus;
    Printf.printf "matrix           %d (tile %d)\n" r.Sim.n r.Sim.nb;
    Printf.printf "makespan         %.3f s\n" r.Sim.makespan;
    Printf.printf "performance      %.1f Tflop/s (utilisation %.0f%%)\n" r.Sim.tflops
      (100. *. r.Sim.utilisation);
    Printf.printf "data motion      h2d %s, d2d %s, inter-node %s, %d conversions\n"
      (Geomix_util.Table.fmt_bytes r.Sim.bytes_h2d)
      (Geomix_util.Table.fmt_bytes r.Sim.bytes_d2d)
      (Geomix_util.Table.fmt_bytes r.Sim.bytes_nic)
      r.Sim.conversions;
    Printf.printf "energy           %.0f J (%.2f Gflops/W)\n" r.Sim.energy.Energy.energy_joules
      r.Sim.energy.Energy.gflops_per_watt;
    (match r.Sim.trace with
    | Some tr ->
      (match trace_json with
      | Some path ->
        let oc = open_out path in
        output_string oc (Geomix_runtime.Trace.to_chrome_json tr);
        close_out oc;
        Printf.printf "trace            written to %s (chrome://tracing)\n" path
      | None -> ());
      if gantt then
        print_string (Geomix_runtime.Trace.gantt tr ~resources:r.Sim.ngpus ~width:72)
    | None -> ())
  in
  let machine_arg =
    Arg.(value & opt machine_conv `V100 & info [ "machine" ] ~doc:"v100|a100|h100|summit|guyot.")
  in
  let nodes_arg = Arg.(value & opt int 1 & info [ "nodes" ] ~doc:"Summit node count.") in
  let nt_arg = Arg.(value & opt int 24 & info [ "nt" ] ~doc:"Tiles per dimension.") in
  let config_arg =
    Arg.(value & opt config_conv `Fp64 & info [ "config" ] ~doc:"fp64|fp32|fp64-fp16|fp64-fp16-32.")
  in
  let strategy_arg =
    Arg.(value & opt strategy_conv Sim.Stc_auto & info [ "strategy" ] ~doc:"stc|ttc.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-json" ] ~doc:"Write a Chrome trace-event JSON of the schedule.")
  in
  let gantt_arg =
    Arg.(value & flag & info [ "gantt" ] ~doc:"Print an ASCII Gantt chart of the schedule.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate a mixed-precision Cholesky on a modelled GPU machine")
    Term.(
      const run $ machine_arg $ nodes_arg $ nt_arg $ config_arg $ strategy_arg $ nb_arg
      $ trace_arg $ gantt_arg)

(* stats subcommand *)

let stats_cmd =
  let module Metrics = Geomix_obs.Metrics in
  let module Tiled = Geomix_tile.Tiled in
  let module Trace = Geomix_runtime.Trace in
  let fb = Geomix_util.Table.fmt_bytes in
  let run ntiles config nb run_real run_nb workers trace_json gantt format verbose =
    let bus = stderr_bus_of ~verbose in
    let pmap = pmap_of_config ~ntiles config in
    let cm = Cm.compute pmap in
    let m = Cm.motion cm pmap ~nb in
    Printf.printf "Data motion of one NT=%d (nb=%d) tile Cholesky — %d broadcast transfers\n"
      ntiles nb m.Cm.transfers;
    Printf.printf "  bytes moved, STC (automated)  %10s   (%d conversion kernels)\n"
      (fb m.Cm.bytes_stc) m.Cm.conv_stc;
    Printf.printf "  bytes moved, TTC (prior art)  %10s   (%d conversion kernels)\n"
      (fb m.Cm.bytes_ttc) m.Cm.conv_ttc;
    Printf.printf "  bytes moved, all-FP64         %10s\n" (fb m.Cm.bytes_fp64);
    Printf.printf "  STC saves %.1f%% vs TTC and %.1f%% vs FP64; %.1f%% of broadcasting tiles ship STC\n"
      (100. *. (1. -. (m.Cm.bytes_stc /. m.Cm.bytes_ttc)))
      (100. *. (1. -. (m.Cm.bytes_stc /. m.Cm.bytes_fp64)))
      (100. *. Cm.stc_fraction cm);
    if run_real then begin
      let reg = Metrics.create () in
      let trace = Trace.create () in
      let n = ntiles * run_nb in
      (* Covariance-like SPD test matrix: decaying off-diagonal mass. *)
      let a =
        Tiled.init ~n ~nb:run_nb (fun i j ->
          (if i = j then 1.0 else 0.) +. exp (-0.05 *. float_of_int (abs (i - j))))
      in
      let resources = ref 1 in
      let t0 = Unix.gettimeofday () in
      Geomix_parallel.Pool.with_pool ~obs:reg ?bus ?num_workers:workers (fun pool ->
        resources := Stdlib.max 1 (Geomix_parallel.Pool.num_workers pool);
        Geomix_core.Mp_cholesky.factorize ~pool ~trace ?bus ~pmap a);
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf "\nReal factorization: n=%d (nb=%d), %d worker(s), %.3f s wall clock\n"
        n run_nb !resources dt;
      let snap = Metrics.snapshot reg in
      print_string
        (match format with
        | `Table -> Metrics.to_table snap
        | `Csv -> Metrics.to_csv snap
        | `Json -> Metrics.to_json_string snap ^ "\n");
      (match trace_json with
      | Some path ->
        let oc = open_out path in
        output_string oc (Trace.to_chrome_json trace);
        close_out oc;
        Printf.printf "trace written to %s (chrome://tracing)\n" path
      | None -> ());
      if gantt then print_string (Trace.gantt trace ~resources:!resources ~width:72)
    end
  in
  let nt_arg = Arg.(value & opt int 24 & info [ "nt" ] ~doc:"Tiles per dimension.") in
  let config_arg =
    Arg.(
      value
      & opt config_conv `Mixed16_32
      & info [ "config" ] ~doc:"fp64|fp32|fp64-fp16|fp64-fp16-32.")
  in
  let run_arg =
    Arg.(
      value & flag
      & info [ "run" ]
          ~doc:
            "Also execute a real (emulated-precision) factorization of a small SPD \
             matrix on an instrumented pool and report the measured pool metrics.")
  in
  let run_nb_arg =
    Arg.(value & opt int 32 & info [ "run-nb" ] ~doc:"Tile size of the real --run matrix.")
  in
  let workers_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~doc:"Pool worker domains for --run (default: cores - 1).")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-json" ] ~doc:"Write a Chrome trace-event JSON of the real --run schedule.")
  in
  let gantt_arg =
    Arg.(value & flag & info [ "gantt" ] ~doc:"Print an ASCII Gantt chart of the real --run schedule.")
  in
  let format_arg =
    Arg.(
      value
      & opt (Arg.enum [ ("table", `Table); ("csv", `Csv); ("json", `Json) ]) `Table
      & info [ "format" ] ~doc:"Metric output: table, csv or json.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Report exact bytes-on-the-wire (STC vs TTC vs all-FP64) for a tile Cholesky, \
          optionally measuring a real instrumented run")
    Term.(
      const run $ nt_arg $ config_arg $ nb_arg $ run_arg $ run_nb_arg $ workers_arg
      $ trace_arg $ gantt_arg $ format_arg $ verbose_arg)

(* mle subcommand *)

let mle_cmd =
  let run family sigma2 beta nu nugget dims seed n u_req exact max_evals =
    let truth = cov_of ~family ~sigma2 ~beta ~nu ~nugget in
    let locs = sites ~dims ~seed ~n in
    let rng = Rng.create ~seed:(seed + 1) in
    let z = Field.synthesize ~rng ~cov:truth locs in
    let engine =
      if exact then Likelihood.Exact
      else Likelihood.mixed ~u_req ~nb:(Stdlib.max 32 (n / 8)) ()
    in
    let t0 = Unix.gettimeofday () in
    let f =
      Mle.fit
        ~settings:{ Mle.default_settings with max_evals }
        ~nugget ~engine ~family ~locs ~z ()
    in
    Printf.printf "engine       %s\n" (if exact then "exact FP64" else Printf.sprintf "mixed precision (u_req %.0e)" u_req);
    Printf.printf "true theta   [%s]\n"
      (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%g") (Covariance.theta truth))));
    Printf.printf "estimate     [%s]\n"
      (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.4f") f.Mle.theta)));
    Printf.printf "loglik       %.3f\n" f.Mle.loglik;
    Printf.printf "evaluations  %d (%.1fs)\n" f.Mle.evals (Unix.gettimeofday () -. t0)
  in
  let n_arg = Arg.(value & opt int 196 & info [ "sites" ] ~doc:"Number of sites.") in
  let exact_arg = Arg.(value & flag & info [ "exact" ] ~doc:"Use the exact FP64 engine.") in
  let max_evals_arg =
    Arg.(value & opt int 150 & info [ "max-evals" ] ~doc:"Likelihood evaluation budget.")
  in
  Cmd.v
    (Cmd.info "mle" ~doc:"Fit covariance parameters to a synthetic dataset by MLE")
    Term.(
      const run $ family_arg $ sigma2_arg $ beta_arg $ nu_arg $ nugget_arg $ dims_arg
      $ seed_arg $ n_arg $ u_req_arg $ exact_arg $ max_evals_arg)

(* gemm subcommand *)

let gemm_cmd =
  let prec_conv =
    Arg.enum (List.map (fun p -> (String.lowercase_ascii (Fp.name p), p)) Fp.all)
  in
  let run prec n seed =
    let rng = Rng.create ~seed in
    let err = Geomix_linalg.Blas_emul.gemm_accuracy ~prec ~n ~rng in
    Printf.printf "emulated %s GEMM, n=%d: relative error vs FP64 = %.3e\n" (Fp.name prec) n err;
    List.iter
      (fun gen ->
        let gpu = Gpu.of_generation gen in
        if Gpu.supports gpu prec then begin
          let t = Geomix_gpusim.Exec_model.gemm_time gpu ~prec ~n:2048 () in
          Printf.printf "modelled 2048-GEMM on %-14s %.3f ms (%.1f Tflop/s)\n" gpu.Gpu.name
            (1e3 *. t)
            (Geomix_precision.Flops.gemm_full ~m:2048 ~n:2048 ~k:2048 /. t /. 1e12)
        end)
      [ Gpu.V100; Gpu.A100; Gpu.H100 ]
  in
  let n_arg = Arg.(value & opt int 128 & info [ "size" ] ~doc:"Matrix order for the accuracy probe.") in
  let prec_arg = Arg.(value & opt prec_conv Fp.Fp16 & info [ "prec" ] ~doc:"Precision.") in
  Cmd.v
    (Cmd.info "gemm" ~doc:"Probe emulated GEMM accuracy and modelled performance")
    Term.(const run $ prec_arg $ n_arg $ seed_arg)

(* chaos subcommand *)

let chaos_cmd =
  let module Metrics = Geomix_obs.Metrics in
  let module Tiled = Geomix_tile.Tiled in
  let module Fault = Geomix_fault.Fault in
  let module Retry = Geomix_fault.Retry in
  let module Chol = Geomix_core.Mp_cholesky in
  let module Guard = Geomix_integrity.Guard in
  let kind_conv =
    Arg.enum
      [
        ("transient", Fault.Transient);
        ("crash", Fault.Crash_after_write);
        ("stall", Fault.Stall);
        ("sdc", Fault.Sdc);
      ]
  in
  let run seed ntiles config nb rate pivot_rate kinds sdc attempts workers format
      metrics_out verbose =
    let bus = stderr_bus_of ~verbose in
    let reg = Metrics.create () in
    let n = ntiles * nb in
    (* Covariance-like SPD test matrix, as in `stats --run`. *)
    let init i j =
      (if i = j then 1.0 else 0.) +. exp (-0.05 *. float_of_int (abs (i - j)))
    in
    let a = Tiled.init ~n ~nb init in
    let pmap = pmap_of_config ~ntiles config in
    let kinds =
      if sdc && not (List.mem Fault.Sdc kinds) then kinds @ [ Fault.Sdc ] else kinds
    in
    let faults =
      Fault.plan ~obs:reg ?bus ~rate ~kinds ~pivot_rate ~sleep:ignore ~seed ()
    in
    (* The guard (with snapshots, so detected corruptions are repairable in
       place) rides along whenever SDC is armed. *)
    let integrity =
      if List.mem Fault.Sdc kinds then
        Some (Guard.create ~obs:reg ?bus ~snapshots:true ())
      else None
    in
    let retry = Retry.immediate ~max_attempts:attempts () in
    Printf.printf
      "chaos: NT=%d nb=%d, seed %d, fault rate %.0f%%, pivot rate %.0f%%, retry budget %d%s\n"
      ntiles nb seed (100. *. rate) (100. *. pivot_rate) attempts
      (if integrity <> None then ", SDC armed (ABFT guard on)" else "");
    let write_metrics_out () =
      match metrics_out with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (Metrics.to_json_string (Metrics.snapshot reg));
        output_char oc '\n';
        close_out oc
    in
    let report =
      Geomix_parallel.Pool.with_pool ~obs:reg ?bus ?num_workers:workers (fun pool ->
        Chol.factorize_robust ~pool ?bus ~faults ~retry ~obs:reg ?integrity ~pmap a)
    in
    List.iter
      (fun e ->
        Printf.printf "  escalated block %d to FP64 (%s scope)\n" e.Chol.block
          (match e.Chol.scope with Chol.Band -> "band" | Chol.Full -> "full"))
      report.Chol.escalations;
    Printf.printf "injected %d execution faults and %d pivot failures over %d round(s)\n"
      (Fault.injected faults) (Fault.pivots faults) report.Chol.rounds;
    (match integrity with
    | None -> ()
    | Some g ->
      Printf.printf
        "integrity: %d stamps, %d verifications (%s hashed), %d SDC detected, %d recovered\n"
        (Guard.stamped g) (Guard.verified g)
        (Geomix_util.Table.fmt_bytes (float_of_int (Guard.hashed_bytes g)))
        (Guard.detected g) (Guard.recovered g));
    let print_metrics () =
      let snap = Metrics.snapshot reg in
      print_string
        (match format with
        | `Table -> Metrics.to_table snap
        | `Csv -> Metrics.to_csv snap
        | `Json -> Metrics.to_json_string snap ^ "\n")
    in
    match report.Chol.outcome with
    | Chol.Indefinite p ->
      print_metrics ();
      write_metrics_out ();
      Printf.eprintf "geomix chaos: matrix indefinite at global pivot %d even at FP64\n" p;
      exit 2
    | Chol.Factorized ->
      (* The recovered factor must equal a fault-free factorization under
         the map the final round actually ran — bitwise. *)
      let reference = Tiled.init ~n ~nb init in
      Chol.factorize ~pmap:report.Chol.pmap reference;
      let diff = Tiled.rel_diff a ~reference in
      Printf.printf "recovered factor vs fault-free run: rel diff %.3e (%s)\n" diff
        (if diff = 0. then "bitwise identical" else "MISMATCH");
      print_metrics ();
      write_metrics_out ();
      if diff <> 0. then exit 1;
      (* SDC contract: with the guard on, a run that reaches this point has
         a bitwise-clean factor; additionally every detection must have
         been recovered, and injected corruptions must not have gone
         entirely unnoticed.  (An unrecoverable corruption never reaches
         here — Guard.Corrupt exits 2 through the CLI boundary.) *)
      (match integrity with
      | None -> ()
      | Some g ->
        let det = Guard.detected g and recov = Guard.recovered g in
        let injected_sdc =
          match List.assoc_opt Fault.Sdc (Fault.by_kind faults) with
          | Some n -> n
          | None -> 0
        in
        if det <> recov then begin
          Printf.eprintf "geomix chaos: %d detections but only %d recoveries\n" det recov;
          exit 1
        end;
        if injected_sdc > 0 && det = 0 then begin
          Printf.eprintf
            "geomix chaos: %d corruptions injected, none detected\n" injected_sdc;
          exit 1
        end)
  in
  let nt_arg = Arg.(value & opt int 6 & info [ "nt" ] ~doc:"Tiles per dimension.") in
  let config_arg =
    Arg.(
      value
      & opt config_conv `Mixed16_32
      & info [ "config" ] ~doc:"fp64|fp32|fp64-fp16|fp64-fp16-32.")
  in
  let nb_small_arg = Arg.(value & opt int 16 & info [ "nb" ] ~doc:"Tile size.") in
  let rate_arg =
    Arg.(value & opt float 0.1 & info [ "rate" ] ~doc:"Per-task fault probability.")
  in
  let pivot_rate_arg =
    Arg.(
      value & opt float 0.
      & info [ "pivot-rate" ]
          ~doc:
            "Probability of a forced pivot failure per low-precision POTRF \
             (exercises the precision-escalation fallback).")
  in
  let kinds_arg =
    Arg.(
      value
      & opt (list kind_conv) [ Geomix_fault.Fault.Transient; Geomix_fault.Fault.Crash_after_write ]
      & info [ "kinds" ] ~doc:"Fault kinds to inject: transient, crash, stall, sdc.")
  in
  let sdc_arg =
    Arg.(
      value & flag
      & info [ "sdc" ]
          ~doc:
            "Arm silent-data-corruption injection (adds the sdc fault kind) \
             and attach the ABFT integrity guard with snapshots, then assert \
             that every injected corruption was detected and recovered: the \
             run fails unless the factor is bitwise identical to the \
             fault-free reference and no detection went unrecovered.")
  in
  let attempts_arg =
    Arg.(value & opt int 3 & info [ "attempts" ] ~doc:"Retry budget per task.")
  in
  let workers_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~doc:"Pool worker domains (default: cores - 1).")
  in
  let format_arg =
    Arg.(
      value
      & opt (Arg.enum [ ("table", `Table); ("csv", `Csv); ("json", `Json) ]) `Table
      & info [ "format" ] ~doc:"Metric output: table, csv or json.")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ]
          ~doc:
            "Also write the final metrics snapshot (fault, recovery and \
             integrity counters) as JSON to this file — written on both \
             success and failure, so CI can upload it as an artifact.")
  in
  let exits =
    Cmd.Exit.info 0
      ~doc:
        "the recovered factor is bitwise identical to the fault-free \
         reference run (and, under $(b,--sdc), every injected corruption \
         was detected and recovered)."
    :: Cmd.Exit.info 1
         ~doc:
           "the recovered factor diverged from the reference, or an \
            injected corruption escaped the integrity guard."
    :: Cmd.Exit.info 2
         ~doc:
           "a domain failure: the matrix is indefinite even at FP64, an \
            integrity violation could not be recovered, or a system error \
            (e.g. an unwritable $(b,--metrics-out) path) occurred."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "chaos" ~exits
       ~doc:
         "Factorize under seeded fault injection and verify the recovered result \
          is bitwise identical to a fault-free run")
    Term.(
      const run $ seed_arg $ nt_arg $ config_arg $ nb_small_arg $ rate_arg
      $ pivot_rate_arg $ kinds_arg $ sdc_arg $ attempts_arg $ workers_arg
      $ format_arg $ metrics_out_arg $ verbose_arg)

(* ooc subcommand *)

let ooc_cmd =
  let module Metrics = Geomix_obs.Metrics in
  let module Tiled = Geomix_tile.Tiled in
  let module Fault = Geomix_fault.Fault in
  let module Chol = Geomix_core.Mp_cholesky in
  let module Ooc = Geomix_core.Ooc_cholesky in
  let module Store = Geomix_ooc.Store in
  let fb = Geomix_util.Table.fmt_bytes in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Sys.remove path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  let mkdir_p d = if not (Sys.file_exists d) then Unix.mkdir d 0o755 in
  (* Only ever delete directories that look like ours: tile records, a
     manifest, or the kill-matrix scratch layout. *)
  let reset_store_dir d =
    if Sys.file_exists d then begin
      let ours f =
        f = "MANIFEST.json" || f = "reference"
        || (String.length f >= 5 && String.sub f 0 5 = "tile_")
        || (String.length f >= 5 && String.sub f 0 5 = "kill_")
      in
      if Array.for_all ours (Sys.readdir d) then rm_rf d
      else begin
        Printf.eprintf
          "geomix ooc: %s exists and does not look like a tile store; refusing to delete it\n"
          d;
        exit 2
      end
    end
  in
  let spd_init i j =
    (if i = j then 1.0 else 0.) +. exp (-0.05 *. float_of_int (abs (i - j)))
  in
  let report_store st =
    let sp = Store.spilled_bytes st and sp64 = Store.spilled_bytes_fp64 st in
    Printf.printf
      "store: %d spills (%s written, %s FP64-equivalent%s), %d loads (%s re-read), %d evictions, %d checkpoints\n"
      (Store.spills st)
      (fb (float_of_int sp))
      (fb (float_of_int sp64))
      (if sp64 > 0 then
         Printf.sprintf ", %.1f%% saved"
           (100. *. (1. -. (float_of_int sp /. float_of_int sp64)))
       else "")
      (Store.loads st)
      (fb (float_of_int (Store.reread_bytes st)))
      (Store.evictions st) (Store.checkpoints st);
    (match Store.spilled_by_scalar st with
    | [] -> ()
    | split ->
      print_string "  spilled by scalar:";
      List.iter
        (fun (s, b) ->
          Printf.printf "  %s %s" (Fp.scalar_name s) (fb (float_of_int b)))
        split;
      print_newline ());
    if Store.spill_retries st + Store.read_retries st + Store.quarantined_count st > 0
    then
      Printf.printf "  fault seam: %d spill retries, %d read retries, %d quarantined\n"
        (Store.spill_retries st) (Store.read_retries st)
        (Store.quarantined_count st)
  in
  let outcome_line = function
    | Ooc.Resumed { from_column; reshipped } ->
      Printf.sprintf "resumed from column %d%s" from_column
        (if reshipped > 0 then
           Printf.sprintf " (%d broadcast records reshipped)" reshipped
         else "")
    | Ooc.Restarted { quarantined } ->
      Printf.sprintf "restarted from the input (%d quarantined: %s)"
        (List.length quarantined)
        (String.concat "," (List.map string_of_int quarantined))
  in
  let run seed ntiles config nb budget_tiles every dir resume kill_after
      kill_matrix rot disk_rate format metrics_out verbose =
    let bus = stderr_bus_of ~verbose in
    let reg = Metrics.create () in
    let n = ntiles * nb in
    let pmap = pmap_of_config ~ntiles config in
    let init () = Tiled.init ~n ~nb spd_init in
    let budget = budget_tiles * nb * nb * 8 in
    let faults =
      if disk_rate > 0. then Some (Fault.plan ~obs:reg ?bus ~disk_rate ~seed ())
      else None
    in
    (* Every mode ends by comparing against the same in-core factorization
       under the same precision map — the contract is bitwise identity. *)
    let reference =
      lazy
        (let r = init () in
         Chol.factorize ~pmap r;
         r)
    in
    let verify name a =
      let diff = Tiled.rel_diff a ~reference:(Lazy.force reference) in
      Printf.printf "%s vs in-core factorization: rel diff %.3e (%s)\n" name diff
        (if diff = 0. then "bitwise identical" else "MISMATCH");
      diff = 0.
    in
    let print_metrics () =
      let snap = Metrics.snapshot reg in
      print_string
        (match format with
        | `Table -> Metrics.to_table snap
        | `Csv -> Metrics.to_csv snap
        | `Json -> Metrics.to_json_string snap ^ "\n")
    in
    let write_metrics_out () =
      match metrics_out with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (Metrics.to_json_string (Metrics.snapshot reg));
        output_char oc '\n';
        close_out oc
    in
    let finishing ok =
      print_metrics ();
      write_metrics_out ();
      if not ok then exit 1
    in
    let arm_kill st at =
      if at > 0 then
        Store.set_op_hook st
          (Some
             (fun k ->
               if k >= at then begin
                 flush Stdlib.stdout;
                 Unix.kill (Unix.getpid ()) Sys.sigkill
               end))
    in
    let resume_dir ?obs d =
      match
        Ooc.resume ?obs ?faults ~checkpoint_every:every ~budget ~dir:d ~init
          ~pmap ()
      with
      | st, a, outcome -> (st, a, outcome_line outcome)
      | exception Store.Store_error (Store.No_manifest _) ->
        (* Killed before the first manifest committed: nothing durable
           exists, so a fresh run is the documented recovery. *)
        let st = Store.create ?obs ?faults ~budget ~dir:d () in
        let a = init () in
        Ooc.factorize ~checkpoint_every:every ~store:st ~pmap a;
        (st, a, "no manifest yet; restarted fresh")
    in
    if kill_matrix then begin
      mkdir_p dir;
      let refdir = Filename.concat dir "reference" in
      rm_rf refdir;
      let st = Store.create ~obs:reg ?faults ~budget ~dir:refdir () in
      let a_ref = init () in
      Ooc.factorize ~checkpoint_every:every ~store:st ~pmap a_ref;
      let total = Store.ops st in
      let ok_ref = verify "uninterrupted out-of-core run" a_ref in
      report_store st;
      let points =
        let stride = max 1 (total / 8) in
        let rec up k acc =
          if k >= total then List.rev ((total - 1) :: acc)
          else up (k + stride) (k :: acc)
        in
        List.sort_uniq compare (1 :: up stride [])
      in
      Printf.printf "kill matrix: seed %d, %d disk ops per run, killing at [%s]\n"
        seed total
        (String.concat "; " (List.map string_of_int points));
      let all_ok = ref ok_ref in
      List.iter
        (fun pt ->
          let kdir = Filename.concat dir (Printf.sprintf "kill_%d" pt) in
          rm_rf kdir;
          flush Stdlib.stdout;
          flush Stdlib.stderr;
          match Unix.fork () with
          | 0 ->
            (* Child: run until the op hook SIGKILLs the process at the
               seeded durable transition — a real mid-spill crash. *)
            (try
               let st = Store.create ?faults ~budget ~dir:kdir () in
               arm_kill st pt;
               Ooc.factorize ~checkpoint_every:every ~store:st ~pmap (init ())
             with _ -> ());
            exit 0
          | pid ->
            let _, status = Unix.waitpid [] pid in
            let killed = status = Unix.WSIGNALED Sys.sigkill in
            let _, a, how = resume_dir kdir in
            let diff = Tiled.rel_diff a ~reference:(Lazy.force reference) in
            Printf.printf "  kill@%-4d %s: %s; rel diff %.3e (%s)\n" pt
              (if killed then "killed" else "ran to completion")
              how diff
              (if diff = 0. then "ok" else "MISMATCH");
            if diff <> 0. then all_ok := false)
        points;
      finishing !all_ok
    end
    else if rot then begin
      reset_store_dir dir;
      let st = Store.create ~obs:reg ?faults ~budget ~dir () in
      Ooc.factorize ~checkpoint_every:every ~store:st ~pmap (init ());
      (* Flip one payload byte of a committed record chosen by the seed,
         then resume: the checksum must catch it and the typed recovery
         must end in the exact factor. *)
      let records =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               String.length f >= 5
               && String.sub f 0 5 = "tile_"
               && not (Filename.check_suffix f ".quarantined"))
        |> List.sort compare
      in
      let victim = List.nth records (seed mod List.length records) in
      let path = Filename.concat dir victim in
      let len = (Unix.stat path).Unix.st_size in
      let off = min (len - 1) (47 + (seed mod max 1 (len - 47))) in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      let b = Bytes.create 1 in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1);
      Unix.close fd;
      Printf.printf "rotted one byte of %s at offset %d\n" victim off;
      let st, a, how = resume_dir ~obs:reg dir in
      Printf.printf "recovery: %s\n" how;
      report_store st;
      finishing (verify "recovered factorization" a)
    end
    else if resume then begin
      let st, a, how = resume_dir ~obs:reg dir in
      Printf.printf "recovery: %s\n" how;
      report_store st;
      finishing (verify "resumed factorization" a)
    end
    else begin
      reset_store_dir dir;
      let st = Store.create ~obs:reg ?faults ~budget ~dir () in
      arm_kill st kill_after;
      let a = init () in
      Printf.printf
        "ooc: NT=%d nb=%d (%s), residency budget %d tiles (%s), store %s, seed %d\n"
        ntiles nb (config_name config) budget_tiles
        (fb (float_of_int budget))
        dir seed;
      Ooc.factorize ~checkpoint_every:every ~store:st ~pmap a;
      report_store st;
      let ok = verify "out-of-core factorization" a in
      (* The headline claim of the paper carried to disk: narrowed spill
         records must cost strictly less than FP64-equivalent accounting
         whenever the map narrows anything. *)
      let ok =
        if config <> `Fp64 && Store.spilled_bytes st >= Store.spilled_bytes_fp64 st
        then begin
          Printf.printf "spilled bytes did not beat FP64-equivalent accounting\n";
          false
        end
        else ok
      in
      finishing ok
    end
  in
  let nt_arg = Arg.(value & opt int 6 & info [ "nt" ] ~doc:"Tiles per dimension.") in
  let config_arg =
    Arg.(
      value
      & opt config_conv `Mixed16_32
      & info [ "config" ] ~doc:"fp64|fp32|fp64-fp16|fp64-fp16-32.")
  in
  let nb_small_arg = Arg.(value & opt int 16 & info [ "nb" ] ~doc:"Tile size.") in
  let budget_arg =
    Arg.(
      value & opt int 4
      & info [ "budget-tiles" ]
          ~doc:
            "Residency window in tiles: at most this many binary64 tile \
             images stay in memory; everything else lives in spill records.")
  in
  let every_arg =
    Arg.(
      value & opt int 1
      & info [ "checkpoint-every" ]
          ~doc:"Commit a manifest checkpoint every N completed panel columns.")
  in
  let dir_arg =
    Arg.(
      value
      & opt string (Filename.concat (Filename.get_temp_dir_name ()) "geomix-ooc")
      & info [ "dir" ]
          ~doc:
            "Store directory.  A fresh run recreates it; $(b,--resume) reads \
             the manifest it left behind.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Recover from the manifest in $(b,--dir) instead of starting \
             fresh: verify every surviving record's checksum, quarantine \
             rot, recompute the dirty frontier and verify the finished \
             factor bitwise.")
  in
  let kill_after_arg =
    Arg.(
      value & opt int 0
      & info [ "kill-after" ]
          ~doc:
            "SIGKILL this process at the Nth durable disk transition \
             (temp-written / rename-committed / manifest-committed) — a \
             real crash mid-spill.  Follow with $(b,--resume) in the same \
             $(b,--dir).  0 disarms.")
  in
  let kill_matrix_arg =
    Arg.(
      value & flag
      & info [ "kill-matrix" ]
          ~doc:
            "The crash-recovery gate: run once uninterrupted, then fork a \
             child per seeded kill point that SIGKILLs itself mid-run, \
             resume each orphaned store, and require every recovered \
             factor to be bitwise identical to the reference.")
  in
  let rot_arg =
    Arg.(
      value & flag
      & info [ "rot" ]
          ~doc:
            "After a complete run, flip one payload byte of a committed \
             spill record (chosen by $(b,--seed)) and resume: the checksum \
             must quarantine it and the typed recovery must still end in \
             the exact factor.")
  in
  let disk_rate_arg =
    Arg.(
      value & opt float 0.
      & info [ "disk-rate" ]
          ~doc:
            "Seeded disk-fault probability per spill/load (short writes, \
             ENOSPC, read bit-flips), absorbed by the store's bounded \
             retries.")
  in
  let format_arg =
    Arg.(
      value
      & opt (Arg.enum [ ("table", `Table); ("csv", `Csv); ("json", `Json) ]) `Table
      & info [ "format" ] ~doc:"Metric output: table, csv or json.")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ]
          ~doc:
            "Also write the final metrics snapshot (ooc.* spill, re-read, \
             retry and quarantine counters) as JSON to this file.")
  in
  let exits =
    Cmd.Exit.info 0
      ~doc:
        "the out-of-core (and, under $(b,--kill-matrix) / $(b,--rot) / \
         $(b,--resume), the recovered) factor is bitwise identical to the \
         in-core factorization under the same precision map."
    :: Cmd.Exit.info 1
         ~doc:
           "a recovered factor diverged from the reference, or narrowed \
            spill records failed to beat FP64-equivalent accounting."
    :: Cmd.Exit.info 2
         ~doc:
           "a domain failure: unrecoverable store corruption, an \
            indefinite matrix, or a directory that is not a tile store."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "ooc" ~exits
       ~doc:
         "Out-of-core tile Cholesky over the crash-consistent spill store: \
          factorize under a bounded residency window with precision-narrowed \
          spill records, and verify kill/resume crash recovery bitwise")
    Term.(
      const run $ seed_arg $ nt_arg $ config_arg $ nb_small_arg $ budget_arg
      $ every_arg $ dir_arg $ resume_arg $ kill_after_arg $ kill_matrix_arg
      $ rot_arg $ disk_rate_arg $ format_arg $ metrics_out_arg $ verbose_arg)

(* report subcommand *)

let report_cmd =
  let module Metrics = Geomix_obs.Metrics in
  let module Events = Geomix_obs.Events in
  let module Profile = Geomix_obs.Profile in
  let module Report = Geomix_obs.Report in
  let module Jsonlite = Geomix_obs.Jsonlite in
  let module Tiled = Geomix_tile.Tiled in
  let module Trace = Geomix_runtime.Trace in
  let module Cdag = Geomix_runtime.Cholesky_dag in
  let module Chol = Geomix_core.Mp_cholesky in
  let fb = Geomix_util.Table.fmt_bytes in
  let pct x = Printf.sprintf "%.1f%%" (100. *. x) in
  let sec x = Printf.sprintf "%.6f s" x in
  let level_rank = function
    | Events.Debug -> 0
    | Events.Info -> 1
    | Events.Warn -> 2
    | Events.Error -> 3
  in
  let run smoke run_real ntiles config nb run_nb workers format out events verbose =
    (* --smoke: a fixed small instrumented run, the CI artifact preset. *)
    let ntiles, run_nb, workers, run_real =
      if smoke then (8, 16, Some 0, true) else (ntiles, run_nb, workers, run_real)
    in
    let pmap = pmap_of_config ~ntiles config in
    let cm = Cm.compute pmap in
    let m = Cm.motion cm pmap ~nb in
    let doc =
      Report.create
        ~title:
          (Printf.sprintf "geomix run report — NT=%d, %s" ntiles (config_name config))
    in
    Report.para doc
      (Printf.sprintf
         "Tile Cholesky of an NT=%d (%dx%d tiles) matrix under the %s precision \
          configuration; data-motion accounting at nb=%d%s."
         ntiles ntiles ntiles (config_name config) nb
         (if run_real then Printf.sprintf ", instrumented run at nb=%d" run_nb else ""));
    (* Precision-map composition — the paper's Fig 5 content. *)
    Report.section doc "Precision map";
    Report.table doc ~headers:[ "precision"; "tiles" ]
      (List.map (fun (p, f) -> [ Fp.name p; pct f ]) (Pm.fractions pmap));
    Report.para doc
      (Printf.sprintf "%s of broadcasting tiles ship STC under automated conversion."
         (pct (Cm.stc_fraction cm)));
    Report.attach doc ~key:"fractions"
      (Jsonlite.Obj
         (List.map (fun (p, f) -> (Fp.name p, Jsonlite.Num f)) (Pm.fractions pmap)));
    (* STC / TTC data-motion table — the Fig 8 measurement. *)
    Report.section doc "Data motion";
    Report.table doc
      ~headers:[ "strategy"; "bytes moved"; "conversions"; "vs FP64" ]
      [
        [ "STC (automated)"; fb m.Cm.bytes_stc; string_of_int m.Cm.conv_stc;
          pct (1. -. (m.Cm.bytes_stc /. m.Cm.bytes_fp64)) ^ " saved" ];
        [ "TTC (prior art)"; fb m.Cm.bytes_ttc; string_of_int m.Cm.conv_ttc;
          pct (1. -. (m.Cm.bytes_ttc /. m.Cm.bytes_fp64)) ^ " saved" ];
        [ "all-FP64"; fb m.Cm.bytes_fp64; "0"; "—" ];
      ];
    Report.para doc
      (Printf.sprintf "%d broadcast transfers; STC saves %s vs TTC."
         m.Cm.transfers
         (pct (1. -. (m.Cm.bytes_stc /. m.Cm.bytes_ttc))));
    Report.attach doc ~key:"motion"
      (Jsonlite.Obj
         [
           ("bytes_stc", Jsonlite.Num m.Cm.bytes_stc);
           ("bytes_ttc", Jsonlite.Num m.Cm.bytes_ttc);
           ("bytes_fp64", Jsonlite.Num m.Cm.bytes_fp64);
           ("transfers", Jsonlite.Num (float_of_int m.Cm.transfers));
         ]);
    if run_real then begin
      let reg = Metrics.create () in
      let trace = Trace.create () in
      let profile = Profile.collector () in
      let bus = Events.create () in
      (* Sinks: a JSONL file with --events, machine-readable JSONL on stderr
         under GEOMIX_LOG (the report's stdout is the document), a pretty
         stderr narration with --verbose, and a ring the report itself uses
         to cross-check the streamed log against the trace. *)
      let events_oc = Option.map open_out events in
      Option.iter (Events.attach_jsonl bus) events_oc;
      (match Events.env_level () with
      | None -> ()
      | Some lvl ->
        Events.on_event bus (fun e ->
            if level_rank e.Events.level >= level_rank lvl then begin
              output_string stderr (Events.to_jsonl e);
              output_char stderr '\n';
              flush stderr
            end));
      if verbose then Events.attach_stderr ~min_level:Events.Debug bus;
      let ring = Events.ring ~capacity:65536 bus in
      let n = ntiles * run_nb in
      (* Covariance-like SPD test matrix, as in `stats --run`. *)
      let a =
        Tiled.init ~n ~nb:run_nb (fun i j ->
            (if i = j then 1.0 else 0.) +. exp (-0.05 *. float_of_int (abs (i - j))))
      in
      let resources = ref 1 in
      let guard = Geomix_integrity.Guard.create ~obs:reg ~bus () in
      let t0 = Unix.gettimeofday () in
      Geomix_parallel.Pool.with_pool ~obs:reg ~bus ?num_workers:workers (fun pool ->
          resources := Stdlib.max 1 (Geomix_parallel.Pool.num_workers pool);
          Chol.factorize ~pool ~trace ~bus ~profile ~integrity:guard ~pmap a);
      let wall = Unix.gettimeofday () -. t0 in
      Option.iter close_out events_oc;
      (* Read the JSONL sink back through the resilient reader: the report
         records how many intact events the file holds and how many
         damaged lines were skipped, so a truncated or interleaved log is
         visible in the artifact instead of silently shorter. *)
      let events_readback =
        Option.map
          (fun path ->
            let ic = open_in path in
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () ->
                let evs, skipped = Events.read_jsonl ic in
                (List.length evs, skipped)))
          events
      in
      let dag = Cdag.create ~nt:ntiles in
      let preds =
        Geomix_parallel.Dag_exec.predecessors ~num_tasks:(Cdag.num_tasks dag)
          ~successors:(Cdag.successors dag)
      in
      let prof = Profile.analyze ~preds (Profile.measures profile) in
      (* Cross-check: the makespan reconstructed from the streamed task_end
         events must equal the trace's bit-for-bit (same hook, same floats). *)
      let streamed_makespan =
        List.fold_left
          (fun acc (e : Events.event) ->
            if e.Events.name = "task_end" then
              match Option.bind (List.assoc_opt "at" e.Events.fields) Jsonlite.to_float with
              | Some t -> Float.max acc t
              | None -> acc
            else acc)
          0. (Events.ring_events ring)
      in
      Report.section doc "Execution";
      Report.table doc ~headers:[ "quantity"; "value" ]
        ([
           [ "matrix"; Printf.sprintf "n=%d (nb=%d)" n run_nb ];
           [ "workers"; string_of_int !resources ];
           [ "makespan"; sec (Trace.makespan trace) ];
           [ "wall clock"; Printf.sprintf "%.3f s" wall ];
           [ "utilisation"; pct (Trace.utilisation trace ~resources:!resources) ];
           [ "tasks"; string_of_int prof.Profile.tasks ];
           [ "event log reconstructs makespan";
             (if streamed_makespan = Trace.makespan trace then "yes (bit-identical)"
              else Printf.sprintf "NO (%.9f vs %.9f)" streamed_makespan
                     (Trace.makespan trace)) ];
         ]
        @
        match events_readback with
        | None -> []
        | Some (intact, skipped) ->
          [
            [ "events file intact lines"; string_of_int intact ];
            [ "events file damaged lines skipped"; string_of_int skipped ];
          ]);
      (match events_readback with
      | None -> ()
      | Some (intact, skipped) ->
        Report.attach doc ~key:"events_file"
          (Jsonlite.Obj
             [
               ("intact", Jsonlite.Num (float_of_int intact));
               ("skipped", Jsonlite.Num (float_of_int skipped));
             ]));
      Report.para doc "Occupancy (rows = workers, glyph = precision tag):";
      Report.code doc (Trace.gantt trace ~resources:!resources ~width:72);
      Report.section doc "Critical path";
      Report.para doc
        (Printf.sprintf
           "Critical path %s = %s of the %s makespan (busy %s over %d workers); \
            %d of %d tasks have zero slack.  Lower bound at this worker count: \
            %s (predicted speedup %.2fx against measured)."
           (sec prof.Profile.cp_length) (pct prof.Profile.cp_frac)
           (sec prof.Profile.makespan) (sec prof.Profile.busy) prof.Profile.workers
           (Array.fold_left (fun acc s -> if s = 0. then acc + 1 else acc) 0
              prof.Profile.slack)
           prof.Profile.tasks
           (sec (Profile.lower_bound prof ~workers:!resources))
           (Profile.predicted_speedup prof ~workers:!resources));
      Report.para doc
        ("Chain: " ^ String.concat " → " prof.Profile.cp_chain_labels);
      let bucket_rows buckets =
        List.map
          (fun (b : Profile.bucket) ->
            [ b.Profile.key; sec b.Profile.busy; string_of_int b.Profile.tasks;
              pct (if prof.Profile.busy > 0. then b.Profile.busy /. prof.Profile.busy else 0.) ])
          buckets
      in
      Report.para doc "Time attribution by kernel class:";
      Report.table doc ~headers:[ "class"; "busy"; "tasks"; "share" ]
        (bucket_rows prof.Profile.by_class);
      Report.para doc "Time attribution by execution precision:";
      Report.table doc ~headers:[ "precision"; "busy"; "tasks"; "share" ]
        (bucket_rows prof.Profile.by_precision);
      Report.para doc "What-if (critical-path / work lower bounds):";
      Report.table doc ~headers:[ "workers"; "lower bound"; "predicted speedup" ]
        (List.map
           (fun w ->
             [ string_of_int w; sec (Profile.lower_bound prof ~workers:w);
               Printf.sprintf "%.2fx" (Profile.predicted_speedup prof ~workers:w) ])
           [ 1; 2; 4; 8 ]);
      Report.attach doc ~key:"profile" (Profile.to_json prof);
      Report.section doc "Metrics";
      Report.code doc (Metrics.to_table (Metrics.snapshot reg));
      let recovery =
        let snap = Metrics.snapshot reg in
        List.filter_map
          (fun name ->
            match Metrics.find snap name with
            | Some (Metrics.Counter n) -> Some [ name; string_of_int n ]
            | _ -> None)
          [ "cholesky.retries"; "cholesky.restores"; "recovery.band_escalations" ]
      in
      if recovery <> [] then begin
        Report.para doc "Recovery counters:";
        Report.table doc ~headers:[ "counter"; "value" ] recovery
      end;
      (* ABFT coverage of the instrumented run: how much was guarded and
         whether anything tripped (a clean run shows zero detections). *)
      let module Guard = Geomix_integrity.Guard in
      Report.section doc "Tile integrity";
      Report.table doc ~headers:[ "quantity"; "value" ]
        [
          [ "tile stamps"; string_of_int (Guard.stamped guard) ];
          [ "verifications"; string_of_int (Guard.verified guard) ];
          [ "bytes hashed"; fb (float_of_int (Guard.hashed_bytes guard)) ];
          [ "SDC detected"; string_of_int (Guard.detected guard) ];
          [ "SDC recovered"; string_of_int (Guard.recovered guard) ];
          [ "unrecovered violations"; string_of_int (Guard.violations guard) ];
        ];
      Report.attach doc ~key:"integrity"
        (Jsonlite.Obj
           [
             ("stamped", Jsonlite.Num (float_of_int (Guard.stamped guard)));
             ("verified", Jsonlite.Num (float_of_int (Guard.verified guard)));
             ("hashed_bytes", Jsonlite.Num (float_of_int (Guard.hashed_bytes guard)));
             ("detected", Jsonlite.Num (float_of_int (Guard.detected guard)));
             ("recovered", Jsonlite.Num (float_of_int (Guard.recovered guard)));
           ])
    end;
    let text =
      match format with
      | `Md -> Report.to_markdown doc
      | `Json -> Jsonlite.to_string ~indent:true (Report.to_json doc) ^ "\n"
    in
    match out with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "report written to %s\n" path
  in
  let nt_arg = Arg.(value & opt int 8 & info [ "nt" ] ~doc:"Tiles per dimension.") in
  let config_arg =
    Arg.(
      value
      & opt config_conv `Mixed16_32
      & info [ "config" ] ~doc:"fp64|fp32|fp64-fp16|fp64-fp16-32.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "CI preset: a fixed small instrumented run (NT=8, nb=16, serial \
             pool) — implies $(b,--run).")
  in
  let run_arg =
    Arg.(
      value & flag
      & info [ "run" ]
          ~doc:
            "Execute a real instrumented factorization and include execution, \
             critical-path and metrics sections (without it, the report holds \
             the static precision-map and data-motion analysis only).")
  in
  let run_nb_arg =
    Arg.(value & opt int 32 & info [ "run-nb" ] ~doc:"Tile size of the real --run matrix.")
  in
  let workers_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~doc:"Pool worker domains for --run (default: cores - 1).")
  in
  let format_arg =
    Arg.(
      value
      & opt (Arg.enum [ ("md", `Md); ("json", `Json) ]) `Md
      & info [ "format" ] ~doc:"Report output: md (GitHub-flavoured Markdown) or json.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~doc:"Write the report to this file instead of stdout.")
  in
  let events_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~doc:"Write the run's full telemetry stream to this JSONL file.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a run report: precision-map composition, STC/TTC data motion, \
          and (with --run) occupancy, critical-path attribution and metrics of \
          a real instrumented factorization")
    Term.(
      const run $ smoke_arg $ run_arg $ nt_arg $ config_arg $ nb_arg $ run_nb_arg
      $ workers_arg $ format_arg $ out_arg $ events_arg $ verbose_arg)

(* autotune subcommand *)

let autotune_cmd =
  let module Px = Geomix_autotune.Pareto_explorer in
  let run smoke nt nb seed targets machine_name format out json_out verbose =
    let nt, nb = if smoke then (8, 16) else (nt, nb) in
    let machine =
      match machine_name with
      | `A100 -> Geomix_gpusim.Machine.single_gpu Geomix_gpusim.Gpu_specs.A100
      | `V100 -> Geomix_gpusim.Machine.single_gpu Geomix_gpusim.Gpu_specs.V100
      | `H100 -> Geomix_gpusim.Machine.single_gpu Geomix_gpusim.Gpu_specs.H100
    in
    let f = Px.sweep ?targets ~machine ~nt ~nb ~seed () in
    let text =
      match format with `Md -> Px.to_markdown f | `Json -> Px.to_json_string f
    in
    (match out with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "frontier written to %s\n" path);
    (match json_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Px.to_json_string f);
      close_out oc;
      if verbose then Printf.eprintf "frontier JSON written to %s\n%!" path);
    (* Exit contract: 0 only when every swept point passes the differential
       oracle — and, under --smoke, when the sweep covers ≥ 5 targets and
       some point ships FP8 with strictly fewer STC bytes than the
       norm-rule map. *)
    if not (Px.all_within_bound f) then begin
      Printf.eprintf "geomix autotune: an advised map exceeded its accuracy bound\n";
      exit 1
    end;
    if smoke then begin
      if List.length f.Px.points < 5 then begin
        Printf.eprintf "geomix autotune: smoke sweep covers fewer than 5 targets\n";
        exit 1
      end;
      if not (Px.fp8_motion_win f) then begin
        Printf.eprintf
          "geomix autotune: no swept point ships FP8 with an STC byte win\n";
        exit 1
      end
    end
  in
  let nt_arg = Arg.(value & opt int 8 & info [ "nt" ] ~doc:"Tiles per dimension.") in
  let nb_small_arg =
    Arg.(value & opt int 16 & info [ "nb" ] ~doc:"Tile size of the pilot matrix.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "CI preset (NT=8, nb=16) with the acceptance checks armed: every \
             advised map must satisfy its accuracy bound, the sweep must cover \
             at least 5 targets, and some point must ship FP8 with strictly \
             fewer STC bytes than the norm-rule map.")
  in
  let targets_arg =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "targets" ]
          ~doc:"Comma-separated accuracy targets (default 1e-2 … 1e-12).")
  in
  let machine_arg =
    Arg.(
      value
      & opt (Arg.enum [ ("v100", `V100); ("a100", `A100); ("h100", `H100) ]) `A100
      & info [ "gpu" ] ~doc:"Simulated GPU for the energy/makespan axis.")
  in
  let format_arg =
    Arg.(
      value
      & opt (Arg.enum [ ("md", `Md); ("json", `Json) ]) `Md
      & info [ "format" ] ~doc:"Frontier output: md or json.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~doc:"Write the frontier to this file instead of stdout.")
  in
  let json_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~doc:"Additionally write the frontier JSON artifact here.")
  in
  let exits =
    Cmd.Exit.info 1
      ~doc:
        "an advised map exceeded its differential-oracle accuracy bound, or a \
         $(b,--smoke) acceptance check failed."
    :: Cmd.Exit.info 2
         ~doc:"the pilot factorization failed (e.g. not positive definite)."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "autotune" ~exits
       ~doc:
         "Range-driven precision autotuning: pilot-instrument a factorization, \
          advise per-tile transfer formats (down to FP8) from measured ranges, \
          and sweep accuracy targets into an accuracy-vs-motion/energy Pareto \
          frontier")
    Term.(
      const run $ smoke_arg $ nt_arg $ nb_small_arg $ seed_arg $ targets_arg
      $ machine_arg $ format_arg $ out_arg $ json_out_arg $ verbose_arg)

(* serve subcommand *)

let serve_cmd =
  let module Server = Geomix_serve.Server in
  let module Cache = Geomix_serve.Cache in
  let module Fault = Geomix_fault.Fault in
  let run socket workers max_inflight queue_capacity cache_capacity max_requests
      drain_deadline integrity retry_attempts trace_sample stats_socket
      telemetry_out chaos_seed chaos_rate chaos_pivot_rate chaos_sdc verbose =
    let bus = stderr_bus_of ~verbose in
    let obs = Geomix_obs.Metrics.create () in
    let faults =
      match chaos_seed with
      | None -> None
      | Some seed ->
        let kinds =
          if chaos_sdc then [ Fault.Transient; Fault.Sdc ]
          else [ Fault.Transient ]
        in
        Some
          (Fault.plan ~obs ?bus ~rate:chaos_rate ~kinds
             ~pivot_rate:chaos_pivot_rate ~seed ())
    in
    let retry =
      if retry_attempts <= 1 then None
      else Some { Geomix_fault.Retry.default with max_attempts = retry_attempts }
    in
    (* SDC injection without a guard would serve silently wrong numbers —
       the one configuration the serving layer must never run in. *)
    let integrity = integrity || chaos_sdc in
    Geomix_parallel.Pool.with_pool ~obs ?bus ?num_workers:workers (fun pool ->
        let server =
          Server.create ~obs ?bus ~max_inflight ~queue_capacity ~cache_capacity
            ?faults ?retry ~integrity ~drain_deadline_s:drain_deadline
            ~trace_sample ~pool ()
        in
        Server.install_drain_signals ();
        Printf.printf
          "geomix serve: listening on %s (%d worker domains, %d slots, queue %d)\n%!"
          socket
          (Geomix_parallel.Pool.num_workers pool)
          max_inflight queue_capacity;
        let telemetry =
          Option.map
            (fun path -> Geomix_obs.Expo.snapshotter ~path ())
            telemetry_out
        in
        let outcome =
          Fun.protect
            ~finally:(fun () -> Option.iter Geomix_obs.Expo.close telemetry)
            (fun () ->
              Server.serve_unix server ~path:socket ?max_requests
                ?stats_path:stats_socket ?telemetry ())
        in
        let s = Cache.stats (Server.cache server) in
        let h = Server.health server in
        Printf.printf
          "geomix serve: stopped (%s) after %d requests (cache: %d hits, %d \
           misses, %d evictions; recovered %d, escalated %d, shed %d)\n%!"
          (Server.outcome_name outcome)
          (Server.served server) s.Cache.hits s.Cache.misses s.Cache.evictions
          h.Geomix_serve.Protocol.recovered h.Geomix_serve.Protocol.escalated
          h.Geomix_serve.Protocol.shed;
        match outcome with
        | Server.Served | Server.Drained -> ()
        | Server.Drain_expired -> exit 3
        | Server.Forced -> exit 4)
  in
  let socket_arg =
    Arg.(
      value
      & opt string "/tmp/geomix.sock"
      & info [ "socket" ] ~doc:"Unix-domain socket path to listen on.")
  in
  let workers_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~doc:"Pool worker domains (default: cores - 1).")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int 4
      & info [ "max-inflight" ]
          ~doc:"Concurrent requests executing on the pool.")
  in
  let queue_capacity_arg =
    Arg.(
      value & opt int 16
      & info [ "queue-capacity" ]
          ~doc:
            "Admission queue depth; requests beyond it are rejected with a \
             saturated error.")
  in
  let cache_capacity_arg =
    Arg.(
      value & opt int 32
      & info [ "cache-capacity" ]
          ~doc:"Shape-keyed artifact cache entries (LRU beyond this).")
  in
  let max_requests_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-requests" ]
          ~doc:"Stop after answering this many requests (smoke tests).")
  in
  let drain_deadline_arg =
    Arg.(
      value & opt float 5.0
      & info [ "drain-deadline" ]
          ~doc:
            "Seconds the first SIGTERM/SIGINT lets queued and in-flight \
             requests finish before the run gives up (exit 3); a second \
             signal forces an immediate stop (exit 4).")
  in
  let integrity_arg =
    Arg.(
      value & flag
      & info [ "integrity" ]
          ~doc:
            "Guard every request's factorization with per-tile ABFT \
             checksums: silent data corruption is detected, quarantined and \
             repaired in place (forced on under $(b,--chaos-sdc)).")
  in
  let retry_attempts_arg =
    Arg.(
      value & opt int 3
      & info [ "retry-attempts" ]
          ~doc:
            "Bounded supervised-retry attempts per kernel (jittered \
             exponential backoff); 1 disables retry.")
  in
  let trace_sample_arg =
    Arg.(
      value & opt float 0.
      & info [ "trace-sample" ]
          ~doc:
            "Fraction of requests to trace end to end (0 disables, 1 traces \
             every request).  Sampling is a deterministic function of the \
             request id; a traced request's terminal reply carries a \
             telemetry footer with per-request bytes moved, modeled energy \
             and critical-path attribution.")
  in
  let stats_socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-socket" ]
          ~doc:
            "Bind a second Unix socket that answers every connection with \
             one Prometheus text exposition of the server's metrics \
             registry — a scrape endpoint independent of admission.")
  in
  let telemetry_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry-out" ]
          ~doc:
            "Append rolling registry snapshots (one JSON line per second) \
             to this file, size-rotated to PATH.1..PATH.3.")
  in
  let chaos_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-seed" ]
          ~doc:
            "Arm a seeded fault plan inside the server's execution stack — \
             the chaos-under-load harness.  Decisions are pure functions of \
             the seed, so a run is replayable bit for bit.")
  in
  let chaos_rate_arg =
    Arg.(
      value & opt float 0.05
      & info [ "chaos-rate" ]
          ~doc:"Injection probability per task attempt under $(b,--chaos-seed).")
  in
  let chaos_pivot_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "chaos-pivot-rate" ]
          ~doc:
            "Forced pivot-failure probability — drives band-to-FP64 \
             escalation, surfaced to clients as an $(i,escalated) status.")
  in
  let chaos_sdc_arg =
    Arg.(
      value & flag
      & info [ "chaos-sdc" ]
          ~doc:
            "Additionally inject silent data corruption (implies \
             $(b,--integrity) so every corruption is caught and repaired).")
  in
  let exits =
    Cmd.Exit.info 0
      ~doc:
        "the run ended by a $(i,shutdown) request, $(b,--max-requests), or a \
         drain that finished every queued and in-flight request before \
         $(b,--drain-deadline)."
    :: Cmd.Exit.info 3
         ~doc:
           "a drain (first SIGTERM/SIGINT) expired with requests still in \
            flight."
    :: Cmd.Exit.info 4
         ~doc:"a second SIGTERM/SIGINT forced an immediate stop."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:
         "Run the model service: a Unix-domain-socket server evaluating \
          likelihood, kriging prediction and Monte-Carlo likelihood batches \
          over a shared domain pool, with a shape-keyed cache of precision \
          maps, communication maps, DAG schedules and autotune advice; \
          requests execute under supervised retry, integrity guards and \
          precision-escalation recovery, with graceful SIGTERM drain and \
          overload brown-out")
    Term.(
      const run $ socket_arg $ workers_arg $ max_inflight_arg
      $ queue_capacity_arg $ cache_capacity_arg $ max_requests_arg
      $ drain_deadline_arg $ integrity_arg $ retry_attempts_arg
      $ trace_sample_arg $ stats_socket_arg $ telemetry_out_arg
      $ chaos_seed_arg $ chaos_rate_arg $ chaos_pivot_rate_arg $ chaos_sdc_arg
      $ verbose_arg)

(* top subcommand *)

let top_cmd =
  let module P = Geomix_serve.Protocol in
  let module Metrics = Geomix_obs.Metrics in
  let module Jsonlite = Geomix_obs.Jsonlite in
  let fb = Geomix_util.Table.fmt_bytes in
  (* One poll = one connection: Health plus a Stats(json) scrape over the
     framed protocol, so `top` exercises exactly the surface any other
     operator tooling would. *)
  let poll socket =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_UNIX socket);
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let roundtrip payload =
          P.write_frame oc
            (P.request_to_json
               { P.id = "top"; priority = P.High; timeout_s = None; payload });
          let rec await () =
            match P.read_frame ic with
            | Error m -> failwith ("read_frame: " ^ m)
            | Ok j -> (
              match P.frame_of_json j with
              | Ok (P.Reply { reply; _ }) -> reply
              | Ok (P.Progress _) -> await ()
              | Error m -> failwith ("frame_of_json: " ^ m))
          in
          await ()
        in
        let health =
          match roundtrip P.Health with
          | P.Health_r h -> h
          | _ -> failwith "unexpected reply to Health"
        in
        let snap =
          match roundtrip (P.Stats P.Stats_json) with
          | P.Stats_r { body; _ } -> (
            match Jsonlite.of_string body with
            | Error m -> failwith ("stats body: " ^ m)
            | Ok j -> (
              match Metrics.of_json j with
              | Ok s -> s
              | Error m -> failwith ("stats snapshot: " ^ m)))
          | _ -> failwith "unexpected reply to Stats"
        in
        (health, snap))
  in
  let counter snap name =
    match Metrics.find snap name with Some (Metrics.Counter c) -> c | _ -> 0
  in
  let gauge snap name =
    match Metrics.find snap name with Some (Metrics.Gauge g) -> g | _ -> 0.
  in
  let shipped_prefix = "cholesky.shipped_bytes." in
  let by_precision snap =
    List.filter_map
      (fun (name, v) ->
        let pl = String.length shipped_prefix in
        if String.length name > pl && String.sub name 0 pl = shipped_prefix then
          match v with
          | Metrics.Counter c -> Some (String.sub name pl (String.length name - pl), c)
          | _ -> None
        else None)
      snap
  in
  let render ~socket ~clear ~dt ~prev (h, snap) =
    if clear then print_string "\027[2J\027[H";
    let p50, p99 =
      match Metrics.find snap "serve.latency_s" with
      | Some (Metrics.Histogram hs) when hs.Metrics.count > 0 ->
        (Metrics.quantile hs 0.5 *. 1e3, Metrics.quantile hs 0.99 *. 1e3)
      | _ -> (nan, nan)
    in
    let lookups = h.P.cache_hits + h.P.cache_misses in
    let hit_rate =
      if lookups = 0 then 0. else float_of_int h.P.cache_hits /. float_of_int lookups
    in
    Printf.printf "geomix top — %s%s\n\n" socket
      (if h.P.draining then "  [DRAINING]" else "");
    Printf.printf "  requests   served %-8d inflight %-4d queued %-4d peak %g\n"
      h.P.served h.P.inflight h.P.queued
      (gauge snap "serve.queue_peak");
    Printf.printf "  latency    p50 %.2f ms   p99 %.2f ms\n" p50 p99;
    Printf.printf "  cache      %.1f%% hit (%d/%d, %d evictions)\n"
      (100. *. hit_rate) h.P.cache_hits lookups h.P.cache_evictions;
    Printf.printf "  breaker    %s (%d trips, %d shed)  queue-mean %.2f  miss-mean %.2f\n"
      (if h.P.brownout then "OPEN" else "closed")
      (counter snap "serve.brownout_trips")
      h.P.shed
      (gauge snap "serve.brownout_queue_mean")
      (gauge snap "serve.brownout_miss_mean");
    Printf.printf "  recovery   recovered %d  escalated %d  retries %d\n"
      h.P.recovered h.P.escalated
      (counter snap "cholesky.retries");
    let total = counter snap "cholesky.shipped_bytes" in
    let total_fp64 = counter snap "cholesky.shipped_bytes_fp64" in
    Printf.printf "  motion     %s shipped STC (%s FP64-equivalent%s)\n"
      (fb (float_of_int total))
      (fb (float_of_int total_fp64))
      (if total_fp64 > 0 then
         Printf.sprintf ", %.1f%% saved"
           (100. *. (1. -. (float_of_int total /. float_of_int total_fp64)))
       else "");
    let prev_total = Option.fold ~none:0 ~some:(fun p -> counter p "cholesky.shipped_bytes") prev in
    if dt > 0. && prev <> None then
      Printf.printf "  rate       %s/s\n" (fb (float_of_int (total - prev_total) /. dt));
    let split = by_precision snap in
    if split <> [] then begin
      print_string "  by precision:\n";
      List.iter
        (fun (prec, bytes) ->
          let prev_bytes =
            match prev with Some p -> counter p (shipped_prefix ^ prec) | None -> 0
          in
          Printf.printf "    %-6s %10s%s\n" prec
            (fb (float_of_int bytes))
            (if dt > 0. && prev <> None then
               Printf.sprintf "  %s/s" (fb (float_of_int (bytes - prev_bytes) /. dt))
             else ""))
        split
    end;
    flush Stdlib.stdout
  in
  let run socket interval count once max_stale =
    if interval <= 0. then begin
      prerr_endline "geomix top: --interval must be positive";
      exit 2
    end;
    let rounds = if once then 1 else Option.value count ~default:max_int in
    let prev = ref None in
    let code = ref 0 in
    let backoff = ref 0.5 in
    let stale_since = ref None in
    (try
       let i = ref 0 in
       while !i < rounds && !code = 0 do
         match poll socket with
         | h, snap ->
           backoff := 0.5;
           if !stale_since <> None then begin
             stale_since := None;
             print_endline "geomix top: reconnected"
           end;
           render ~socket ~clear:(not once && rounds > 1) ~dt:interval ~prev:!prev
             (h, snap);
           prev := Some snap;
           incr i;
           if !i < rounds then Unix.sleepf interval
         | exception (Unix.Unix_error _ | Failure _ | Sys_error _)
           when (not once) && !prev <> None ->
           (* The server went away mid-watch.  Don't die: banner the data
              on screen as stale and retry with bounded exponential
              backoff until it comes back or the stale budget runs out. *)
           let now = Unix.gettimeofday () in
           let since =
             match !stale_since with
             | Some t -> t
             | None ->
               stale_since := Some now;
               now
           in
           let age = now -. since in
           if age > max_stale then begin
             Printf.eprintf
               "geomix top: %s unreachable for %.0f s (limit %.0f s) — giving up\n"
               socket age max_stale;
             code := 1
           end
           else begin
             Printf.printf
               "geomix top: [STALE %.0f s] %s unreachable — retrying in %.1f s\n"
               age socket !backoff;
             flush Stdlib.stdout;
             Unix.sleepf !backoff;
             backoff := Float.min 8.0 (!backoff *. 2.)
           end
       done
     with
    | Unix.Unix_error (e, _, _) ->
      Printf.eprintf "geomix top: cannot reach %s: %s\n" socket (Unix.error_message e);
      code := 1
    | Failure m | Sys_error m ->
      Printf.eprintf "geomix top: %s\n" m;
      code := 1);
    if !code <> 0 then exit !code
  in
  let socket_arg =
    Arg.(
      value
      & opt string "/tmp/geomix.sock"
      & info [ "socket" ] ~doc:"Unix-domain socket of the running server.")
  in
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~doc:"Seconds between refreshes.")
  in
  let count_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "count" ] ~doc:"Stop after this many refreshes (default: forever).")
  in
  let once_arg =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Print a single snapshot without clearing the screen and exit.")
  in
  let max_stale_arg =
    Arg.(
      value & opt float 60.
      & info [ "max-stale" ]
          ~doc:
            "Seconds to keep retrying (with 0.5 s → 8 s exponential \
             backoff, the on-screen data bannered STALE) after the server \
             stops answering mid-watch, before exiting nonzero.  A server \
             restart inside this window reconnects seamlessly.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live operator view of a running $(b,geomix serve): polls the \
          server's $(i,stats) and $(i,health) requests and renders inflight \
          and queue depth, latency quantiles, cache hit rate, brown-out \
          breaker state and data-motion rates by transfer precision; a \
          server that goes away mid-watch is retried with bounded backoff \
          under a STALE banner instead of killing the view")
    Term.(
      const run $ socket_arg $ interval_arg $ count_arg $ once_arg
      $ max_stale_arg)

let () =
  let doc = "mixed-precision geospatial modeling toolkit (CLUSTER 2023 reproduction)" in
  let group =
    Cmd.group (Cmd.info "geomix" ~version:"1.0.0" ~doc)
      [
        precision_map_cmd; simulate_cmd; stats_cmd; mle_cmd; gemm_cmd; chaos_cmd;
        ooc_cmd; report_cmd; autotune_cmd; serve_cmd; top_cmd;
      ]
  in
  (* CLI error boundary: domain failures exit 2 with a one-line diagnostic
     instead of an uncaught-exception backtrace. *)
  let code =
    try Cmd.eval ~catch:false group with
    | Geomix_linalg.Blas.Not_positive_definite p ->
      Printf.eprintf "geomix: matrix is not positive definite (pivot %d); try a larger nugget or u-req\n" p;
      2
    | Geomix_integrity.Guard.Corrupt { key; task; reason } ->
      Printf.eprintf
        "geomix: unrecoverable data corruption detected (tile key %d in %s: %s)\n"
        key task reason;
      2
    | Geomix_ooc.Store.Store_error e ->
      Printf.eprintf "geomix: tile store failure: %s\n"
        (Geomix_ooc.Store.error_to_string e);
      2
    | Sys_error msg ->
      Printf.eprintf "geomix: %s\n" msg;
      2
  in
  exit code
