module Mat = Geomix_linalg.Mat
module Blas = Geomix_linalg.Blas
module Tiled = Geomix_tile.Tiled
module Mp_cholesky = Geomix_core.Mp_cholesky
module Precision_map = Geomix_core.Precision_map
module Fpformat = Geomix_precision.Fpformat

type engine =
  | Exact
  | Mixed of { u_req : float; nb : int; options : Mp_cholesky.options }
  | Tlr of { tol : float; nb : int; u_req : float option }

let mixed ?(options = Mp_cholesky.default_options) ~u_req ~nb () =
  Mixed { u_req; nb; options }

type status =
  | Clean
  | Escalated of Mp_cholesky.escalation list
  | Indefinite

type evaluation = {
  loglik : float;
  log_det : float;
  quad_form : float;
  precision_fractions : (Fpformat.t * float) list;
  status : status;
}

let assemble ?(status = Clean) ~n ~log_det ~quad_form ~precision_fractions () =
  let loglik =
    (-0.5 *. float_of_int n *. log (2. *. Float.pi)) -. (0.5 *. log_det)
    -. (0.5 *. quad_form)
  in
  { loglik; log_det; quad_form; precision_fractions; status }

let indefinite_evaluation ~precision_fractions =
  {
    loglik = neg_infinity;
    log_det = nan;
    quad_form = nan;
    precision_fractions;
    status = Indefinite;
  }

let evaluate engine ~cov ~locs ~z =
  let n = Locations.count locs in
  assert (Array.length z = n);
  match engine with
  | Exact ->
    let l = Covariance.build_dense cov locs in
    Blas.potrf_lower l;
    let y = Blas.trsv_lower ~l z in
    let quad_form = Array.fold_left (fun acc v -> acc +. (v *. v)) 0. y in
    assemble ~n ~log_det:(Blas.log_det_from_chol l) ~quad_form
      ~precision_fractions:[ (Fpformat.Fp64, 1.) ]
      ()
  | Mixed { u_req; nb; options } ->
    let a = Covariance.build_tiled cov locs ~nb in
    let pmap = Precision_map.of_tiled ~u_req a in
    Mp_cholesky.factorize ~options ~pmap a;
    let y = Mp_cholesky.solve_lower a z in
    let quad_form = Array.fold_left (fun acc v -> acc +. (v *. v)) 0. y in
    assemble ~n ~log_det:(Mp_cholesky.log_det a) ~quad_form
      ~precision_fractions:(Precision_map.fractions pmap)
      ()
  | Tlr { tol; nb; u_req } ->
    let a = Covariance.build_tiled cov locs ~nb in
    let precision, fractions =
      match u_req with
      | Some u ->
        let pmap = Precision_map.of_tiled ~u_req:u a in
        (Some pmap, Precision_map.fractions pmap)
      | None -> (None, [ (Fpformat.Fp64, 1.) ])
    in
    let t = Geomix_tlr.Tlr.compress ?precision ~tol a in
    Geomix_tlr.Tlr.cholesky t;
    let y = Geomix_tlr.Tlr.solve_lower t z in
    let quad_form = Array.fold_left (fun acc v -> acc +. (v *. v)) 0. y in
    assemble ~n ~log_det:(Geomix_tlr.Tlr.log_det t) ~quad_form
      ~precision_fractions:fractions ()

let evaluate_robust ?faults ?retry ?obs ?max_band_escalations engine ~cov ~locs
    ~z =
  let n = Locations.count locs in
  assert (Array.length z = n);
  match engine with
  | Mixed { u_req; nb; options } ->
    let a = Covariance.build_tiled cov locs ~nb in
    let pmap = Precision_map.of_tiled ~u_req a in
    let report =
      Mp_cholesky.factorize_robust ~options ?faults ?retry ?obs
        ?max_band_escalations ~pmap a
    in
    (match report.Mp_cholesky.outcome with
    | Mp_cholesky.Indefinite _ ->
      indefinite_evaluation
        ~precision_fractions:(Precision_map.fractions report.Mp_cholesky.pmap)
    | Mp_cholesky.Factorized ->
      let status =
        match report.Mp_cholesky.escalations with
        | [] -> Clean
        | es -> Escalated es
      in
      let y = Mp_cholesky.solve_lower a z in
      let quad_form = Array.fold_left (fun acc v -> acc +. (v *. v)) 0. y in
      assemble ~status ~n ~log_det:(Mp_cholesky.log_det a) ~quad_form
        ~precision_fractions:(Precision_map.fractions report.Mp_cholesky.pmap)
        ())
  | Exact | Tlr _ -> (
    (* No precision to escalate: indefiniteness at FP64 (or under the TLR
       compression) is reported, not raised, matching the Mixed path. *)
    match evaluate engine ~cov ~locs ~z with
    | e -> e
    | exception Blas.Not_positive_definite _ ->
      indefinite_evaluation ~precision_fractions:[ (Fpformat.Fp64, 1.) ])

let loglik engine ~cov ~locs ~z =
  (evaluate_robust engine ~cov ~locs ~z).loglik
