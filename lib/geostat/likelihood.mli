(** The Gaussian log-likelihood of Eq. (1):

    {v ℓ(θ) = −(n/2)·log 2π − ½·log|Σ(θ)| − ½·Zᵀ·Σ(θ)⁻¹·Z v}

    evaluated through a Cholesky factorization of Σ(θ) — exact FP64, or the
    adaptive mixed-precision tile factorization under a given accuracy
    [u_req] (which is precisely what the paper accelerates). *)

type engine =
  | Exact
      (** dense FP64 — the "exact" reference of Figs 5–6 *)
  | Mixed of {
      u_req : float;                     (** accuracy of the norm rule *)
      nb : int;                          (** tile size *)
      options : Geomix_core.Mp_cholesky.options;
    }
  | Tlr of {
      tol : float;                       (** TLR compression tolerance *)
      nb : int;
      u_req : float option;              (** also apply the precision map *)
    }
      (** tile low-rank factorization (the paper's future-work extension),
          optionally composed with the adaptive precision map *)

val mixed : ?options:Geomix_core.Mp_cholesky.options -> u_req:float -> nb:int -> unit -> engine
(** [Mixed] with {!Geomix_core.Mp_cholesky.default_options}. *)

type status =
  | Clean  (** factorized under the originally requested precision map *)
  | Escalated of Geomix_core.Mp_cholesky.escalation list
      (** factorized, but only after precision escalation — the reported
          [precision_fractions] are those of the escalated map actually
          used *)
  | Indefinite
      (** Σ(θ) is indefinite even at full FP64; [loglik] is
          [neg_infinity] and [log_det]/[quad_form] are [nan] *)

type evaluation = {
  loglik : float;
  log_det : float;
  quad_form : float;         (** Zᵀ·Σ⁻¹·Z *)
  precision_fractions : (Geomix_precision.Fpformat.t * float) list;
      (** tile precision mix used ([\[(Fp64, 1.)\]] for [Exact]) *)
  status : status;
}

val assemble :
  ?status:status ->
  n:int ->
  log_det:float ->
  quad_form:float ->
  precision_fractions:(Geomix_precision.Fpformat.t * float) list ->
  unit ->
  evaluation
(** Combine the two factorization-derived terms into Eq. (1)'s
    log-likelihood ([status] defaults to [Clean]).  The entry point for
    callers that drive the factorization themselves — the request server
    evaluates many replicates against one factor this way. *)

val evaluate : engine -> cov:Covariance.t -> locs:Locations.t -> z:float array -> evaluation
(** Evaluate with no recovery: the factorization runs once under the map the
    norm rule produces, and [status] is always [Clean].
    @raise Geomix_linalg.Blas.Not_positive_definite when Σ(θ) is
    numerically indefinite at the working precision. *)

val evaluate_robust :
  ?faults:Geomix_fault.Fault.t ->
  ?retry:Geomix_fault.Retry.policy ->
  ?obs:Geomix_obs.Metrics.t ->
  ?max_band_escalations:int ->
  engine ->
  cov:Covariance.t ->
  locs:Locations.t ->
  z:float array ->
  evaluation
(** Evaluate through {!Geomix_core.Mp_cholesky.factorize_robust}: a
    mixed-precision factorization that loses positive definiteness is
    escalated (band, then full FP64) instead of failing, and the result's
    [status] says what happened.  Only genuinely indefinite Σ(θ) yields
    [Indefinite] — reported in the [evaluation], never raised.  [?faults]
    and [?retry] additionally arm fault injection and supervised task retry
    inside the factorization (chaos testing); [?obs] collects the recovery
    counters.  For [Exact] and [Tlr] engines there is no precision to
    escalate: indefiniteness is mapped to [Indefinite] directly. *)

val loglik : engine -> cov:Covariance.t -> locs:Locations.t -> z:float array -> float
(** [(evaluate_robust ...).loglik]: indefiniteness yields [neg_infinity] so
    optimisers treat such θ as infeasible, and recoverable precision
    failures are escalated transparently rather than discarding the
    candidate. *)
