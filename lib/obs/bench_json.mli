(** The [BENCH_*.json] artifact: a flat named-metric schema emitted by the
    bench harness ([bench/main.exe --smoke --json]) and consumed by the CI
    regression gate.

    The committed baseline ([bench/BENCH_baseline.json]) is compared
    against the freshly produced artifact with {!compare}: each metric
    declares which direction is better, and the gate fails only when a
    metric moves past the tolerance in its bad direction.  Missing
    counterparts are skipped (adding a metric must not break the gate;
    removing one requires a baseline refresh, which is a reviewed
    commit). *)

type direction = Lower_is_better | Higher_is_better

type metric = { name : string; value : float; units : string; direction : direction }

type t = { schema_version : int; suite : string; metrics : metric list }

val schema_version : int

val make : suite:string -> metric list -> t

val metric : ?units:string -> ?direction:direction -> string -> float -> metric
(** Defaults: no units, [Lower_is_better]. *)

val find : t -> string -> metric option

val to_json : t -> Jsonlite.t
val to_json_string : t -> string
val of_json : Jsonlite.t -> (t, string) result
val of_json_string : string -> (t, string) result

val write : path:string -> t -> unit
val read : path:string -> (t, string) result

(** {1 Regression gate} *)

type verdict = {
  metric_name : string;
  baseline : float;
  current : float;
  ratio : float;   (** current / baseline; [nan] when baseline is 0 *)
  regressed : bool;
}

val compare :
  ?expect:(string -> bool) -> tolerance:float -> baseline:t -> current:t ->
  unit -> verdict list
(** One verdict per baseline metric present in [current].  With
    [tolerance = 0.2], a [Lower_is_better] metric regresses when
    [current > 1.2 × baseline] and a [Higher_is_better] one when
    [current < baseline / 1.2] — the reciprocal bound, so even tolerances
    at or above 1 keep a real floor.

    [expect] (default: nothing) names the baseline namespace this gate
    owns: a baseline metric matching the predicate but absent from
    [current] yields a regressed verdict with [current = nan] (rendered
    [MISSING FROM CANDIDATE]) instead of being skipped, so a producer
    that silently stops emitting a gated metric fails the gate.
    Non-matching absences keep the subset-gate behaviour: suites gating
    only their own slice of a shared baseline skip the rest.
    @raise Invalid_argument on a negative tolerance. *)

val any_regressed : verdict list -> bool

val missing : verdict list -> string list
(** Names of the [expect]ed baseline metrics absent from the candidate
    (the [current = nan] verdicts), for explicit failure messages. *)

val report_verdicts : verdict list -> string
(** Human-readable verdict lines (one per metric, marked [ok] /
    [REGRESSED]). *)
