type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else
    (* Shortest representation that round-trips a binary64. *)
    let s = Printf.sprintf "%.17g" x in
    let shorter = Printf.sprintf "%.15g" x in
    if float_of_string shorter = x then shorter else s

let rec emit buf indent level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x ->
    if Float.is_nan x || Float.abs x = Float.infinity then Buffer.add_string buf "null"
    else Buffer.add_string buf (number_to_string x)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
    Buffer.add_char buf '[';
    nl ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          nl ()
        end;
        pad (level + 1);
        emit buf indent (level + 1) item)
      items;
    nl ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    nl ();
    List.iteri
      (fun i (k, item) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          nl ()
        end;
        pad (level + 1);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf (if indent then "\": " else "\":");
        emit buf indent (level + 1) item)
      fields;
    nl ();
    pad level;
    Buffer.add_char buf '}'

let to_string ?(indent = true) v =
  let buf = Buffer.create 256 in
  emit buf indent 0 v;
  if indent then Buffer.add_char buf '\n';
  Buffer.contents buf

(* Recursive-descent parser, sufficient for the BENCH schema (and any JSON
   without \u surrogate pairs — escapes decode to Latin-1 code points). *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some 'n' -> Buffer.add_char buf '\n'; advance c
      | Some 't' -> Buffer.add_char buf '\t'; advance c
      | Some 'r' -> Buffer.add_char buf '\r'; advance c
      | Some 'b' -> Buffer.add_char buf '\b'; advance c
      | Some 'f' -> Buffer.add_char buf '\012'; advance c
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.text then fail c "bad \\u escape";
        let hex = String.sub c.text c.pos 4 in
        let code = try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape" in
        c.pos <- c.pos + 4;
        Buffer.add_char buf (Char.chr (code land 0xff))
      | Some ch -> Buffer.add_char buf ch; advance c
      | None -> fail c "unterminated escape");
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  if c.pos = start then fail c "expected number";
  match float_of_string_opt (String.sub c.text start (c.pos - start)) with
  | Some x -> Num x
  | None -> fail c "malformed number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some '{' -> parse_obj c
  | Some '[' -> parse_arr c
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c
  | None -> fail c "unexpected end of input"

and parse_obj c =
  expect c '{';
  skip_ws c;
  if peek c = Some '}' then begin
    advance c;
    Obj []
  end
  else begin
    let fields = ref [] in
    let rec go () =
      skip_ws c;
      let k = parse_string c in
      skip_ws c;
      expect c ':';
      let v = parse_value c in
      fields := (k, v) :: !fields;
      skip_ws c;
      match peek c with
      | Some ',' -> advance c; go ()
      | Some '}' -> advance c
      | _ -> fail c "expected ',' or '}'"
    in
    go ();
    Obj (List.rev !fields)
  end

and parse_arr c =
  expect c '[';
  skip_ws c;
  if peek c = Some ']' then begin
    advance c;
    Arr []
  end
  else begin
    let items = ref [] in
    let rec go () =
      let v = parse_value c in
      items := v :: !items;
      skip_ws c;
      match peek c with
      | Some ',' -> advance c; go ()
      | Some ']' -> advance c
      | _ -> fail c "expected ',' or ']'"
    in
    go ();
    Arr (List.rev !items)
  end

let of_string s =
  let c = { text = s; pos = 0 } in
  try
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage"
    else Ok v
  with Parse_error msg -> Error msg

(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num x -> Some x | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
