(* Prometheus text exposition (version 0.0.4) of a Metrics snapshot, a
   matching parser/linter for the gate scripts, and a size-rotating JSONL
   snapshotter for continuous telemetry capture. *)

(* {1 Name and value formatting} *)

let sanitize_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
  | _ -> '_'

let sanitize name = String.map sanitize_char name

let metric_name ?(namespace = "geomix") name =
  let base = sanitize name in
  if namespace = "" then base else namespace ^ "_" ^ base

let fmt_value v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

(* {1 Exposition} *)

let add_histogram buf name (h : Metrics.hist_snapshot) =
  Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
  (* The snapshot keeps per-bucket counts with the sub-[lo] mass in a
     separate underflow cell; Prometheus buckets are cumulative from
     -inf, so the underflow folds into every bucket and the +Inf bucket
     equals the total count. *)
  let cum = ref h.Metrics.underflow in
  Array.iter
    (fun (upper, c) ->
      cum := !cum + c;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (fmt_value upper) !cum))
    h.Metrics.buckets;
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name h.Metrics.count);
  Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" name (fmt_value h.Metrics.sum));
  Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name h.Metrics.count)

let to_prometheus ?namespace (snap : Metrics.snapshot) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (raw_name, v) ->
      let name = metric_name ?namespace raw_name in
      match v with
      | Metrics.Counter n ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
        Buffer.add_string buf (Printf.sprintf "%s %d\n" name n)
      | Metrics.Gauge x ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
        Buffer.add_string buf (Printf.sprintf "%s %s\n" name (fmt_value x))
      | Metrics.Histogram h -> add_histogram buf name h)
    snap;
  Buffer.contents buf

(* {1 Parsing} *)

type sample = { name : string; labels : (string * string) list; value : float }

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_name s =
  String.length s > 0
  && is_name_start s.[0]
  && String.for_all is_name_char s

let parse_float s =
  match s with
  | "+Inf" | "Inf" -> Some Float.infinity
  | "-Inf" -> Some Float.neg_infinity
  | "NaN" -> Some Float.nan
  | _ -> float_of_string_opt s

(* One label body: comma-separated key=<quoted value> pairs; values use
   the exposition-format escapes (backslash, quote, newline). *)
let parse_labels s =
  let n = String.length s in
  let pos = ref 0 in
  let labels = ref [] in
  let ok = ref true in
  while !ok && !pos < n do
    let start = !pos in
    while !pos < n && is_name_char s.[!pos] do incr pos done;
    let key = String.sub s start (!pos - start) in
    if key = "" || !pos >= n || s.[!pos] <> '=' then ok := false
    else begin
      incr pos;
      if !pos >= n || s.[!pos] <> '"' then ok := false
      else begin
        incr pos;
        let buf = Buffer.create 16 in
        let closed = ref false in
        while (not !closed) && !pos < n do
          (match s.[!pos] with
          | '\\' when !pos + 1 < n ->
            incr pos;
            Buffer.add_char buf
              (match s.[!pos] with 'n' -> '\n' | c -> c)
          | '"' -> closed := true
          | c -> Buffer.add_char buf c);
          incr pos
        done;
        if not !closed then ok := false
        else begin
          labels := (key, Buffer.contents buf) :: !labels;
          if !pos < n && s.[!pos] = ',' then incr pos
        end
      end
    end
  done;
  if !ok then Some (List.rev !labels) else None

let parse_sample_line line =
  let line = String.trim line in
  match String.index_opt line '{' with
  | Some i -> (
    let name = String.sub line 0 i in
    match String.rindex_opt line '}' with
    | None -> Error (Printf.sprintf "unclosed label set: %s" line)
    | Some j -> (
      let body = String.sub line (i + 1) (j - i - 1) in
      let rest = String.trim (String.sub line (j + 1) (String.length line - j - 1)) in
      match (valid_name name, parse_labels body, parse_float rest) with
      | true, Some labels, Some value -> Ok { name; labels; value }
      | false, _, _ -> Error (Printf.sprintf "invalid metric name: %s" name)
      | _, None, _ -> Error (Printf.sprintf "invalid labels: %s" body)
      | _, _, None -> Error (Printf.sprintf "invalid value: %s" rest)))
  | None -> (
    match String.index_opt line ' ' with
    | None -> Error (Printf.sprintf "no value on line: %s" line)
    | Some i -> (
      let name = String.sub line 0 i in
      let rest = String.trim (String.sub line i (String.length line - i)) in
      match (valid_name name, parse_float rest) with
      | true, Some value -> Ok { name; labels = []; value }
      | false, _ -> Error (Printf.sprintf "invalid metric name: %s" name)
      | _, None -> Error (Printf.sprintf "invalid value: %s" rest)))

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let t = String.trim line in
      if t = "" || (String.length t > 0 && t.[0] = '#') then go acc rest
      else begin
        match parse_sample_line t with
        | Ok s -> go (s :: acc) rest
        | Error e -> Error e
      end
  in
  go [] lines

let find samples name = List.find_opt (fun s -> s.name = name) samples

(* {1 Linting} *)

let strip_suffix name =
  let drop suf =
    let ls = String.length suf and ln = String.length name in
    if ln > ls && String.sub name (ln - ls) ls = suf then
      Some (String.sub name 0 (ln - ls))
    else None
  in
  match drop "_bucket" with
  | Some base -> (base, `Bucket)
  | None -> (
    match drop "_sum" with
    | Some base -> (base, `Sum)
    | None -> (
      match drop "_count" with
      | Some base -> (base, `Count)
      | None -> (name, `Plain)))

let lint text =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let types = Hashtbl.create 32 in
  (* First pass: TYPE declarations and line syntax. *)
  let samples = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let t = String.trim line in
      if t = "" then ()
      else if String.length t > 0 && t.[0] = '#' then begin
        match String.split_on_char ' ' t with
        | "#" :: "TYPE" :: name :: kind :: [] ->
          if not (valid_name name) then err "line %d: invalid TYPE name %s" lineno name;
          if not (List.mem kind [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
          then err "line %d: unknown TYPE kind %s" lineno kind;
          if Hashtbl.mem types name then err "line %d: duplicate TYPE for %s" lineno name
          else Hashtbl.add types name kind
        | "#" :: "TYPE" :: _ -> err "line %d: malformed TYPE line" lineno
        | _ -> () (* HELP and free comments pass *)
      end
      else begin
        match parse_sample_line t with
        | Ok s -> samples := s :: !samples
        | Error e -> err "line %d: %s" lineno e
      end)
    (String.split_on_char '\n' text);
  let samples = List.rev !samples in
  (* Second pass: every sample is covered by a TYPE declaration, and
     histogram families are internally consistent. *)
  List.iter
    (fun s ->
      let base, suffix = strip_suffix s.name in
      let declared name = Hashtbl.find_opt types name in
      match suffix with
      | `Plain ->
        if declared s.name = None then err "sample %s has no TYPE declaration" s.name
      | `Bucket | `Sum | `Count ->
        if declared base = None && declared s.name = None then
          err "sample %s has no TYPE declaration" s.name)
    samples;
  Hashtbl.iter
    (fun name kind ->
      if kind = "histogram" then begin
        let buckets =
          List.filter (fun s -> s.name = name ^ "_bucket") samples
        in
        if buckets = [] then err "histogram %s has no buckets" name;
        let prev = ref Float.neg_infinity and prev_v = ref 0. and mono = ref true in
        let has_inf = ref false and inf_v = ref 0. in
        List.iter
          (fun s ->
            match List.assoc_opt "le" s.labels with
            | None -> err "histogram %s bucket without le label" name
            | Some le -> (
              match parse_float le with
              | None -> err "histogram %s: unparseable le %S" name le
              | Some edge ->
                if edge = Float.infinity then begin
                  has_inf := true;
                  inf_v := s.value
                end;
                if edge < !prev then err "histogram %s: le values not ascending" name;
                if s.value < !prev_v then mono := false;
                prev := edge;
                prev_v := s.value))
          buckets;
        if not !mono then err "histogram %s: bucket counts not cumulative" name;
        if not !has_inf then err "histogram %s: missing +Inf bucket" name
        else begin
          match find samples (name ^ "_count") with
          | Some c when c.value <> !inf_v ->
            err "histogram %s: _count %s <> +Inf bucket %s" name
              (fmt_value c.value) (fmt_value !inf_v)
          | Some _ -> ()
          | None -> err "histogram %s: missing _count" name
        end;
        if find samples (name ^ "_sum") = None then
          err "histogram %s: missing _sum" name
      end)
    types;
  List.rev !errors

(* {1 JSONL snapshotter} *)

type snapshotter = {
  path : string;
  max_bytes : int;
  keep : int;
  now : unit -> float;
  mutable oc : out_channel;
  mutable size : int;
  smutex : Mutex.t;
}

let open_append path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  (oc, out_channel_length oc)

let snapshotter ?(max_bytes = 1024 * 1024) ?(keep = 3) ?(now = Unix.gettimeofday)
    ~path () =
  if max_bytes <= 0 || keep < 1 then invalid_arg "Expo.snapshotter";
  let oc, size = open_append path in
  { path; max_bytes; keep; now; oc; size; smutex = Mutex.create () }

let rotated_path t i = Printf.sprintf "%s.%d" t.path i

let rotate_locked t =
  (* Make the full archive durable before it moves, then shift the
     retained generations with atomic renames and fsync the directory
     entry afterwards: a crash anywhere in the window leaves every
     generation either fully old or fully shifted — never a lost or torn
     archive (same idiom as {!Geomix_util.Durable.write_atomic}). *)
  flush t.oc;
  Geomix_util.Durable.fsync_fd (Unix.descr_of_out_channel t.oc);
  close_out t.oc;
  for i = t.keep - 1 downto 1 do
    let src = rotated_path t i in
    if Sys.file_exists src then Sys.rename src (rotated_path t (i + 1))
  done;
  Sys.rename t.path (rotated_path t 1);
  Geomix_util.Durable.fsync_dir (Filename.dirname t.path);
  let oc, size = open_append t.path in
  t.oc <- oc;
  t.size <- size

let snap t metrics =
  let line =
    Jsonlite.to_string ~indent:false
      (Jsonlite.Obj
         [ ("t", Jsonlite.Num (t.now ())); ("metrics", Metrics.to_json metrics) ])
  in
  Mutex.lock t.smutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.smutex)
    (fun () ->
      output_string t.oc line;
      output_char t.oc '\n';
      flush t.oc;
      t.size <- t.size + String.length line + 1;
      if t.size > t.max_bytes then rotate_locked t)

let snapshotter_path t = t.path

let close t =
  Mutex.lock t.smutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.smutex)
    (fun () -> close_out t.oc)
