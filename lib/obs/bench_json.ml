type direction = Lower_is_better | Higher_is_better

type metric = { name : string; value : float; units : string; direction : direction }

type t = { schema_version : int; suite : string; metrics : metric list }

let schema_version = 1

let make ~suite metrics = { schema_version; suite; metrics }

let metric ?(units = "") ?(direction = Lower_is_better) name value =
  { name; value; units; direction }

let find t name = List.find_opt (fun m -> m.name = name) t.metrics

let direction_to_string = function
  | Lower_is_better -> "lower"
  | Higher_is_better -> "higher"

let direction_of_string = function
  | "lower" -> Some Lower_is_better
  | "higher" -> Some Higher_is_better
  | _ -> None

let to_json t =
  Jsonlite.Obj
    [
      ("schema_version", Jsonlite.Num (float_of_int t.schema_version));
      ("suite", Jsonlite.Str t.suite);
      ( "metrics",
        Jsonlite.Arr
          (List.map
             (fun m ->
               Jsonlite.Obj
                 [
                   ("name", Jsonlite.Str m.name);
                   ("value", Jsonlite.Num m.value);
                   ("units", Jsonlite.Str m.units);
                   ("better", Jsonlite.Str (direction_to_string m.direction));
                 ])
             t.metrics) );
    ]

let to_json_string t = Jsonlite.to_string (to_json t)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field_err name = Error (Printf.sprintf "BENCH json: missing or ill-typed %S" name)

let req_float json name =
  match Option.bind (Jsonlite.member name json) Jsonlite.to_float with
  | Some v -> Ok v
  | None -> field_err name

let req_str json name =
  match Option.bind (Jsonlite.member name json) Jsonlite.to_str with
  | Some v -> Ok v
  | None -> field_err name

let metric_of_json json =
  let* name = req_str json "name" in
  let* value = req_float json "value" in
  let* units = req_str json "units" in
  let* better = req_str json "better" in
  match direction_of_string better with
  | Some direction -> Ok { name; value; units; direction }
  | None -> Error (Printf.sprintf "BENCH json: bad direction %S on %S" better name)

let of_json json =
  let* v = req_float json "schema_version" in
  let version = int_of_float v in
  if version <> schema_version then
    Error (Printf.sprintf "BENCH json: schema_version %d, expected %d" version schema_version)
  else
    let* suite = req_str json "suite" in
    match Option.bind (Jsonlite.member "metrics" json) Jsonlite.to_list with
    | None -> field_err "metrics"
    | Some items ->
      let rec go acc = function
        | [] -> Ok { schema_version = version; suite; metrics = List.rev acc }
        | item :: rest ->
          let* m = metric_of_json item in
          go (m :: acc) rest
      in
      go [] items

let of_json_string s =
  let* json = Jsonlite.of_string s in
  of_json json

let write ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json_string t))

let read ~path =
  match
    In_channel.with_open_text path (fun ic -> In_channel.input_all ic)
  with
  | s -> of_json_string s
  | exception Sys_error msg -> Error msg

(* Regression comparison.  A metric regresses when it moves past the
   tolerance in its bad direction; improvements and missing counterparts
   never fail the gate (a baseline refresh is a deliberate, reviewed
   commit). *)

type verdict = {
  metric_name : string;
  baseline : float;
  current : float;
  ratio : float; (* current / baseline, nan when baseline = 0 *)
  regressed : bool;
}

let compare_metric ~tolerance (base : metric) (cur : metric) =
  let ratio = if base.value = 0. then Float.nan else cur.value /. base.value in
  let regressed =
    match base.direction with
    | Lower_is_better ->
      if base.value = 0. then cur.value > 0.
      else cur.value > base.value *. (1. +. tolerance)
    | Higher_is_better ->
      (* Dual of the Lower_is_better bound.  A multiplicative floor of
         base·(1 − tolerance) goes non-positive once tolerance ≥ 1, which
         would silently turn wide gates vacuous for higher-is-better
         metrics; dividing keeps every tolerance meaningful. *)
      cur.value < base.value /. (1. +. tolerance)
  in
  { metric_name = base.name; baseline = base.value; current = cur.value; ratio; regressed }

let compare ?(expect = fun _ -> false) ~tolerance ~baseline ~current () =
  if tolerance < 0. then invalid_arg "Bench_json.compare";
  List.filter_map
    (fun base ->
      match find current base.name with
      | Some cur -> Some (compare_metric ~tolerance base cur)
      | None when expect base.name ->
        (* A gate that owns this metric's namespace must not silently pass
           when its producer stops emitting it — that is how a broken
           bench quietly stops gating anything. *)
        Some
          {
            metric_name = base.name;
            baseline = base.value;
            current = Float.nan;
            ratio = Float.nan;
            regressed = true;
          }
      | None -> None)
    baseline.metrics

let any_regressed verdicts = List.exists (fun v -> v.regressed) verdicts

let missing verdicts =
  List.filter_map
    (fun v -> if Float.is_nan v.current then Some v.metric_name else None)
    verdicts

let report_verdicts verdicts =
  let buf = Buffer.create 256 in
  List.iter
    (fun v ->
      Buffer.add_string buf
        (if Float.is_nan v.current then
           Printf.sprintf "  %-28s base %-12s MISSING FROM CANDIDATE\n"
             v.metric_name
             (Geomix_util.Table.fmt_float ~digits:5 v.baseline)
         else
           Printf.sprintf "  %-28s base %-12s cur %-12s %s%s\n" v.metric_name
             (Geomix_util.Table.fmt_float ~digits:5 v.baseline)
             (Geomix_util.Table.fmt_float ~digits:5 v.current)
             (if Float.is_nan v.ratio then ""
              else Printf.sprintf "(%+.1f%%) " ((v.ratio -. 1.) *. 100.))
             (if v.regressed then "REGRESSED" else "ok")))
    verdicts;
  Buffer.contents buf
