type measure = {
  id : int;
  label : string;
  cls : string;
  prec : string;
  worker : int;
  start : float;
  stop : float;
}

let class_of_label label =
  match String.index_opt label '(' with
  | Some i -> String.sub label 0 i
  | None -> label

(* Collection: an append-only vector behind a mutex — the recording hooks
   fire from worker domains concurrently. *)

type collector = { mutable items : measure list; mutex : Mutex.t }

let collector () = { items = []; mutex = Mutex.create () }

let record c m =
  Mutex.lock c.mutex;
  c.items <- m :: c.items;
  Mutex.unlock c.mutex

let measures c =
  Mutex.lock c.mutex;
  let items = List.rev c.items in
  Mutex.unlock c.mutex;
  items

(* Analysis *)

type bucket = { key : string; busy : float; tasks : int }

type worker_stat = { worker : int; wbusy : float; wtasks : int }

type t = {
  tasks : int;
  spans : int;
  makespan : float;
  busy : float;
  cp_length : float;
  cp_chain : int list;
  cp_chain_labels : string list;
  cp_frac : float;
  slack : float array;
  by_class : bucket list;
  by_precision : bucket list;
  by_worker : worker_stat list;
  workers : int;
}

let buckets_of key_of ms : bucket list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let key = key_of m in
      let busy, tasks =
        match Hashtbl.find_opt tbl key with Some x -> x | None -> (0., 0)
      in
      Hashtbl.replace tbl key (busy +. (m.stop -. m.start), tasks + 1))
    ms;
  Hashtbl.fold (fun key (busy, tasks) acc -> { key; busy; tasks } :: acc) tbl []
  |> List.sort (fun (a : bucket) (b : bucket) ->
         match compare b.busy a.busy with 0 -> compare a.key b.key | c -> c)

let analyze ~preds ms =
  let n = Array.length preds in
  let dur = Array.make n 0. in
  let labels = Array.make n "" in
  let measured = Array.make n false in
  List.iter
    (fun m ->
      if m.id < 0 || m.id >= n then
        invalid_arg "Profile.analyze: measure id outside the graph";
      if m.stop < m.start then invalid_arg "Profile.analyze: negative span";
      dur.(m.id) <- dur.(m.id) +. (m.stop -. m.start);
      labels.(m.id) <- m.label;
      measured.(m.id) <- true)
    ms;
  (* Topological order by Kahn over the predecessor lists. *)
  let succs = Array.make n [] in
  let indeg = Array.make n 0 in
  Array.iteri
    (fun id ps ->
      List.iter
        (fun p ->
          if p < 0 || p >= n then
            invalid_arg "Profile.analyze: predecessor outside the graph";
          succs.(p) <- id :: succs.(p);
          indeg.(id) <- indeg.(id) + 1)
        ps)
    preds;
  let order = Array.make n 0 in
  let queue = Queue.create () in
  Array.iteri (fun id d -> if d = 0 then Queue.push id queue) indeg;
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order.(!filled) <- id;
    incr filled;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.push s queue)
      succs.(id)
  done;
  if !filled <> n then invalid_arg "Profile.analyze: cyclic predecessor relation";
  (* Forward pass: earliest finish under the duration weights; track the
     predecessor that realises each maximum for chain extraction. *)
  let ef = Array.make n 0. in
  let via = Array.make n (-1) in
  Array.iter
    (fun id ->
      let best = ref 0. and best_p = ref (-1) in
      List.iter
        (fun p ->
          if ef.(p) > !best then begin
            best := ef.(p);
            best_p := p
          end)
        preds.(id);
      ef.(id) <- !best +. dur.(id);
      via.(id) <- !best_p)
    order;
  let cp_length = Array.fold_left Float.max 0. ef in
  let cp_end =
    let best = ref (-1) in
    Array.iteri (fun id v -> if !best < 0 || v > ef.(!best) then best := id) ef;
    !best
  in
  let cp_chain =
    if n = 0 then []
    else begin
      let rec back id acc = if id < 0 then acc else back via.(id) (id :: acc) in
      back cp_end []
    end
  in
  (* Backward pass: latest finish with the chain length as horizon; slack
     is the float of each task against the critical path. *)
  let lf = Array.make n cp_length in
  for i = n - 1 downto 0 do
    let id = order.(i) in
    List.iter
      (fun s -> if lf.(s) -. dur.(s) < lf.(id) then lf.(id) <- lf.(s) -. dur.(s))
      succs.(id)
  done;
  let slack = Array.init n (fun id -> Float.max 0. (lf.(id) -. ef.(id))) in
  let makespan = List.fold_left (fun acc m -> Float.max acc m.stop) 0. ms in
  let busy = Array.fold_left ( +. ) 0. dur in
  let worker_tbl = Hashtbl.create 8 in
  List.iter
    (fun (m : measure) ->
      let b, c =
        match Hashtbl.find_opt worker_tbl m.worker with
        | Some x -> x
        | None -> (0., 0)
      in
      Hashtbl.replace worker_tbl m.worker (b +. (m.stop -. m.start), c + 1))
    ms;
  let by_worker =
    Hashtbl.fold
      (fun worker (wbusy, wtasks) acc -> { worker; wbusy; wtasks } :: acc)
      worker_tbl []
    |> List.sort (fun a b -> compare a.worker b.worker)
  in
  {
    tasks = Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0 measured;
    spans = List.length ms;
    makespan;
    busy;
    cp_length;
    cp_chain;
    cp_chain_labels =
      List.map
        (fun id ->
          if labels.(id) = "" then Printf.sprintf "task %d" id else labels.(id))
        cp_chain;
    cp_frac = (if makespan > 0. then cp_length /. makespan else 0.);
    slack;
    by_class = buckets_of (fun m -> m.cls) ms;
    by_precision = buckets_of (fun m -> m.prec) ms;
    by_worker;
    workers = List.length by_worker;
  }

let lower_bound t ~workers =
  if workers < 1 then invalid_arg "Profile.lower_bound";
  Float.max t.cp_length (t.busy /. float_of_int workers)

let predicted_speedup t ~workers =
  let lb = lower_bound t ~workers in
  if lb > 0. then t.makespan /. lb else 1.

let to_json t =
  let bucket_json b =
    Jsonlite.Obj
      [
        ("key", Jsonlite.Str b.key);
        ("busy_s", Jsonlite.Num b.busy);
        ("tasks", Jsonlite.Num (float_of_int b.tasks));
      ]
  in
  Jsonlite.Obj
    [
      ("tasks", Jsonlite.Num (float_of_int t.tasks));
      ("spans", Jsonlite.Num (float_of_int t.spans));
      ("makespan_s", Jsonlite.Num t.makespan);
      ("busy_s", Jsonlite.Num t.busy);
      ("critical_path_s", Jsonlite.Num t.cp_length);
      ("critical_path_frac", Jsonlite.Num t.cp_frac);
      ( "critical_path",
        Jsonlite.Arr (List.map (fun l -> Jsonlite.Str l) t.cp_chain_labels) );
      ("by_class", Jsonlite.Arr (List.map bucket_json t.by_class));
      ("by_precision", Jsonlite.Arr (List.map bucket_json t.by_precision));
      ( "by_worker",
        Jsonlite.Arr
          (List.map
             (fun w ->
               Jsonlite.Obj
                 [
                   ("worker", Jsonlite.Num (float_of_int w.worker));
                   ("busy_s", Jsonlite.Num w.wbusy);
                   ("tasks", Jsonlite.Num (float_of_int w.wtasks));
                   ("idle_s", Jsonlite.Num (Float.max 0. (t.makespan -. w.wbusy)));
                 ])
             t.by_worker) );
      ( "lower_bounds",
        Jsonlite.Obj
          (List.map
             (fun w ->
               (string_of_int w, Jsonlite.Num (lower_bound t ~workers:w)))
             [ 1; 2; 4; 8 ]) );
    ]
