(** Critical-path profiler: turn measured task spans plus a dependence
    graph into the attribution the paper's evaluation is narrated from —
    where the time of a run went (per kernel class, per precision, per
    worker), how long the inherent sequential chain is, and what adding
    workers could buy (the Fig 9-style analysis, for the {e real} executor
    rather than the gpusim model).

    The module is deliberately runtime-agnostic: a {!measure} is plain
    data, and {!analyze} takes the predecessor lists of the executed DAG
    as an array.  The runtime layer ({!Geomix_runtime.Obs_bridge}) adapts
    its executors' observability hooks into a {!collector}, and
    [Cholesky_dag]/[Dtd] both expose the graph shape {!analyze} needs. *)

type measure = {
  id : int;  (** task id in the executed DAG *)
  label : string;  (** ["GEMM(5,3,1)"]-style task name *)
  cls : string;  (** kernel class bucket, e.g. ["GEMM"] or ["conversion"] *)
  prec : string;  (** precision bucket, [""] when unknown *)
  worker : int;  (** resource that ran the task *)
  start : float;  (** seconds, relative to the run origin *)
  stop : float;
}

val class_of_label : string -> string
(** The label up to the first ['(']: ["GEMM(5,3,1)"] → ["GEMM"]. *)

(** {1 Collection} *)

type collector
(** A thread-safe append-only store of measures, fed by executor hooks. *)

val collector : unit -> collector
val record : collector -> measure -> unit
val measures : collector -> measure list
(** In record order. *)

(** {1 Analysis} *)

type bucket = { key : string; busy : float; tasks : int }

type worker_stat = { worker : int; wbusy : float; wtasks : int }

type t = {
  tasks : int;  (** distinct task ids measured *)
  spans : int;  (** measures analysed (> [tasks] under retry rounds) *)
  makespan : float;  (** latest measured [stop] *)
  busy : float;  (** total measured task time, all workers *)
  cp_length : float;  (** duration-weighted critical path through the DAG *)
  cp_chain : int list;  (** the task ids of one heaviest chain, in order *)
  cp_chain_labels : string list;
  cp_frac : float;  (** [cp_length / makespan]; 0 on an empty run *)
  slack : float array;
      (** per task id: how much the task could slip without lengthening the
          critical path (0 on the chain itself) *)
  by_class : bucket list;  (** busiest first; busy sums to [busy] *)
  by_precision : bucket list;  (** busiest first; busy sums to [busy] *)
  by_worker : worker_stat list;
      (** ascending worker index; idle of a worker is
          [makespan - wbusy] *)
  workers : int;  (** distinct workers observed (>= 1 on a non-empty run) *)
}

val analyze : preds:int list array -> measure list -> t
(** [analyze ~preds measures] — [preds.(id)] lists the DAG predecessors of
    task [id]; every measured id must be within [preds].  Tasks of the
    graph that were never measured contribute zero duration (the chain may
    pass through them).  Multiple measures of one id (retry rounds) add up.
    @raise Invalid_argument on a measure id outside the graph, a negative
    span, or a cyclic predecessor relation. *)

(** {1 What-if estimation}

    Classic critical-path/work bounds: with [w] workers the makespan can
    never beat [max cp_length (busy / w)].  Comparing the bound against the
    measured makespan says how much headroom the schedule left. *)

val lower_bound : t -> workers:int -> float
(** @raise Invalid_argument when [workers < 1]. *)

val predicted_speedup : t -> workers:int -> float
(** [makespan / lower_bound ~workers] — the most extra workers could
    possibly pay off; 1 when the run is already at a bound. *)

val to_json : t -> Jsonlite.t
(** Structured export for run reports (chain, buckets, bounds for 1, 2, 4
    and 8 workers). *)
