(* A span is touched from worker domains (kernel read hooks, pool run
   hooks) concurrently with the request thread, so all accumulators sit
   behind one per-span mutex.  Updates are a handful of integer adds —
   microseconds of total overhead per request next to the tile kernels
   they attribute. *)

let id_counter = Atomic.make 0

let default_trace_id () =
  (* Process-unique, allocation-light: pid + a monotonic counter.  Trace
     ids only need to distinguish requests within one service run and be
     greppable across the JSONL stream. *)
  Printf.sprintf "t%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add id_counter 1)

type t = {
  trace_id : string;
  request_id : string;
  span_id : int;
  parent : int option;
  mutex : Mutex.t;
  mutable bytes_stc : int;
  mutable bytes_fp64 : int;
  mutable by_precision : (string * int) list;
  mutable edges : int;
  mutable tasks : int;
  mutable retries : int;
  mutable queue_s : float;
  mutable busy_s : float;
}

let create ?parent ?trace_id ~request_id () =
  let trace_id = match trace_id with Some t -> t | None -> default_trace_id () in
  {
    trace_id;
    request_id;
    span_id = Atomic.fetch_and_add id_counter 1;
    parent;
    mutex = Mutex.create ();
    bytes_stc = 0;
    bytes_fp64 = 0;
    by_precision = [];
    edges = 0;
    tasks = 0;
    retries = 0;
    queue_s = 0.;
    busy_s = 0.;
  }

let child t ~request_id =
  create ~parent:t.span_id ~trace_id:t.trace_id ~request_id ()

let trace_id t = t.trace_id
let request_id t = t.request_id
let span_id t = t.span_id
let parent t = t.parent

let locked t f =
  Mutex.lock t.mutex;
  let r = f () in
  Mutex.unlock t.mutex;
  r

let note_transfer ?prec t ~bytes ~fp64_bytes =
  locked t (fun () ->
      t.bytes_stc <- t.bytes_stc + bytes;
      t.bytes_fp64 <- t.bytes_fp64 + fp64_bytes;
      t.edges <- t.edges + 1;
      match prec with
      | None -> ()
      | Some p ->
        t.by_precision <-
          (match List.assoc_opt p t.by_precision with
          | Some b -> (p, b + bytes) :: List.remove_assoc p t.by_precision
          | None -> (p, bytes) :: t.by_precision))

let note_task t = locked t (fun () -> t.tasks <- t.tasks + 1)
let note_retry t = locked t (fun () -> t.retries <- t.retries + 1)

let note_exec t ~queue_s ~run_s =
  locked t (fun () ->
      t.queue_s <- t.queue_s +. queue_s;
      t.busy_s <- t.busy_s +. run_s)

(* Summaries *)

type summary = {
  s_trace_id : string;
  s_request_id : string;
  s_span_id : int;
  s_parent : int option;
  s_bytes_stc : int;
  s_bytes_fp64 : int;
  s_by_precision : (string * int) list;  (* sorted by precision name *)
  s_edges : int;
  s_tasks : int;
  s_retries : int;
  s_queue_s : float;
  s_busy_s : float;
}

let summary t =
  locked t (fun () ->
      {
        s_trace_id = t.trace_id;
        s_request_id = t.request_id;
        s_span_id = t.span_id;
        s_parent = t.parent;
        s_bytes_stc = t.bytes_stc;
        s_bytes_fp64 = t.bytes_fp64;
        s_by_precision =
          List.sort (fun (a, _) (b, _) -> compare a b) t.by_precision;
        s_edges = t.edges;
        s_tasks = t.tasks;
        s_retries = t.retries;
        s_queue_s = t.queue_s;
        s_busy_s = t.busy_s;
      })

let fields t =
  [
    ("trace", Jsonlite.Str t.trace_id);
    ("request", Jsonlite.Str t.request_id);
    ("span", Jsonlite.Num (float_of_int t.span_id));
  ]

let summary_to_json (s : summary) =
  let base =
    [
      ("trace", Jsonlite.Str s.s_trace_id);
      ("request", Jsonlite.Str s.s_request_id);
      ("span", Jsonlite.Num (float_of_int s.s_span_id));
    ]
  in
  let parent =
    match s.s_parent with
    | None -> []
    | Some p -> [ ("parent", Jsonlite.Num (float_of_int p)) ]
  in
  Jsonlite.Obj
    (base @ parent
    @ [
        ("bytes_stc", Jsonlite.Num (float_of_int s.s_bytes_stc));
        ("bytes_fp64", Jsonlite.Num (float_of_int s.s_bytes_fp64));
        ( "by_precision",
          Jsonlite.Obj
            (List.map
               (fun (p, b) -> (p, Jsonlite.Num (float_of_int b)))
               s.s_by_precision) );
        ("edges", Jsonlite.Num (float_of_int s.s_edges));
        ("tasks", Jsonlite.Num (float_of_int s.s_tasks));
        ("retries", Jsonlite.Num (float_of_int s.s_retries));
        ("queue_s", Jsonlite.Num s.s_queue_s);
        ("busy_s", Jsonlite.Num s.s_busy_s);
      ])

let int_field obj name =
  match Jsonlite.member name obj with
  | Some (Jsonlite.Num x) -> Some (int_of_float x)
  | _ -> None

let num_field obj name =
  match Jsonlite.member name obj with Some (Jsonlite.Num x) -> Some x | _ -> None

let str_field obj name =
  match Jsonlite.member name obj with Some (Jsonlite.Str s) -> Some s | _ -> None

let summary_of_json j =
  let ( let* ) o f = match o with Some v -> f v | None -> Error "Span.summary_of_json: bad field" in
  match j with
  | Jsonlite.Obj _ ->
    let* trace = str_field j "trace" in
    let* request = str_field j "request" in
    let* span = int_field j "span" in
    let* bytes_stc = int_field j "bytes_stc" in
    let* bytes_fp64 = int_field j "bytes_fp64" in
    let* edges = int_field j "edges" in
    let* tasks = int_field j "tasks" in
    let* retries = int_field j "retries" in
    let* queue_s = num_field j "queue_s" in
    let* busy_s = num_field j "busy_s" in
    let by_precision =
      match Jsonlite.member "by_precision" j with
      | Some (Jsonlite.Obj kvs) ->
        List.filter_map
          (fun (k, v) ->
            match v with Jsonlite.Num x -> Some (k, int_of_float x) | _ -> None)
          kvs
      | _ -> []
    in
    Ok
      {
        s_trace_id = trace;
        s_request_id = request;
        s_span_id = span;
        s_parent = int_field j "parent";
        s_bytes_stc = bytes_stc;
        s_bytes_fp64 = bytes_fp64;
        s_by_precision = by_precision;
        s_edges = edges;
        s_tasks = tasks;
        s_retries = retries;
        s_queue_s = queue_s;
        s_busy_s = busy_s;
      }
  | _ -> Error "Span.summary_of_json: expected object"
