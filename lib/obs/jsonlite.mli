(** Minimal JSON tree, emitter and parser.

    The container carries no JSON library, and the observability layer only
    needs the flat [BENCH_*.json] schema plus metric snapshots, so this is a
    deliberately small self-contained implementation: full JSON value tree,
    pretty or compact emission, and a recursive-descent parser (the one
    simplification: [\u] escapes decode to their low byte — the schema is
    ASCII). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialise; [indent] (default true) pretty-prints with 2-space nesting
    and a trailing newline.  NaN and infinities emit as [null] (JSON has no
    representation for them); integral floats emit without a decimal
    point. *)

val of_string : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
