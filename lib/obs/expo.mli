(** Prometheus text exposition of a {!Metrics} snapshot, plus the
    matching parser/linter the CI gate uses and a size-rotating JSONL
    telemetry snapshotter.

    The exposition follows the Prometheus text format (version 0.0.4):
    one [# TYPE] line per metric family, counters and gauges as single
    samples, histograms as cumulative [le]-labelled buckets ending in
    [+Inf] plus [_sum]/[_count].  The registry's separate underflow cell
    folds into every cumulative bucket, so the [+Inf] bucket always
    equals the total observation count.  Metric names are sanitized
    (every character outside [[a-zA-Z0-9_:]] becomes [_]) and prefixed
    with a namespace (default ["geomix"]): [serve.latency_s] exposes as
    [geomix_serve_latency_s]. *)

val to_prometheus : ?namespace:string -> Metrics.snapshot -> string
(** Render the whole snapshot; [namespace = ""] suppresses the prefix. *)

(** {1 Parsing and linting} *)

type sample = { name : string; labels : (string * string) list; value : float }

val parse : string -> (sample list, string) result
(** Parse exposition text back into samples, skipping comments and blank
    lines; [Error] on the first malformed sample line.  Values [+Inf],
    [-Inf] and [NaN] parse to the corresponding floats. *)

val find : sample list -> string -> sample option
(** First sample with this exact name (label-blind — bucket lookups go
    through labels on the result). *)

val lint : string -> string list
(** Format diagnostics, empty when the text is well-formed: every sample
    line parses, every family has a [# TYPE] declaration, histogram
    buckets are cumulative with ascending [le] edges, a [+Inf] bucket
    equal to [_count], and a [_sum]. *)

(** {1 JSONL snapshotter}

    Appends one compact JSON line [{"t": <unix time>, "metrics": {...}}]
    per {!snap} call to [path]; when the file exceeds [max_bytes] it
    rotates to [path.1] … [path.keep] (oldest dropped), so a long-running
    service keeps a bounded telemetry history on disk.  Rotation is
    crash-consistent: the retiring file is fsynced before the atomic
    rename chain shifts the generations and the directory entry is
    fsynced after, so a crash mid-rotation never loses or tears an
    archived generation ({!Geomix_util.Durable} idiom). *)

type snapshotter

val snapshotter :
  ?max_bytes:int -> ?keep:int -> ?now:(unit -> float) -> path:string -> unit ->
  snapshotter
(** Open (append) the snapshot file.  [max_bytes] defaults to 1 MiB,
    [keep] to 3 rotated files.  @raise Invalid_argument on a non-positive
    size or [keep < 1]. *)

val snap : snapshotter -> Metrics.snapshot -> unit
(** Append one snapshot line (flushed), rotating first the write that
    pushed the file over the limit lands in a fresh file next call.
    Thread-safe. *)

val snapshotter_path : snapshotter -> string

val close : snapshotter -> unit
