(** Named-metric registry for the execution stack.

    The simulator has always had traces ({!Geomix_runtime.Trace}); this
    registry is the equivalent for the {e real} executors — [Pool],
    [Dag_exec] and [Dtd] record what actually happened (task counts, queue
    waits, run times, bytes on the wire) into one of these, and the
    snapshot/diff/export pipeline turns it into the tables, CSVs and
    [BENCH_*.json] artifacts the CI regression gate consumes.

    Three metric kinds:
    - {e counters}: monotonic integers, atomic (safe from any domain);
    - {e gauges}: instantaneous floats;
    - {e histograms}: fixed log-spaced buckets over [[lo, lo·10^decades)]
      with explicit underflow/overflow counts — zero and negative values
      land in underflow, values at or beyond the top edge in overflow.

    A name maps to exactly one metric: re-requesting an existing name
    returns the same cell ([Invalid_argument] if the kind differs), so
    independent components can share a registry without coordination. *)

type t
(** A registry.  All operations are thread-safe. *)

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
val gauge : t -> string -> gauge

val histogram : ?lo:float -> ?decades:int -> ?per_decade:int -> t -> string -> histogram
(** Log-spaced buckets: [per_decade] (default 4) buckets per decade over
    [decades] (default 12) decades starting at [lo] (default 1e-6 — tuned
    for seconds-valued timings from microseconds up). *)

(** {1 Recording} *)

val incr : counter -> unit
val add : counter -> int -> unit
(** @raise Invalid_argument on a negative increment (counters are
    monotonic). *)

val counter_value : counter -> int
val counter_name : counter -> string

val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** Raise the gauge to [v] if [v] is larger — peak tracking. *)

val gauge_value : gauge -> float
val gauge_name : gauge -> string

val observe : histogram -> float -> unit
val time : histogram -> (unit -> 'a) -> 'a
(** Span timer: run the thunk, record its wall-clock duration in seconds
    (also on exception). *)

val histogram_name : histogram -> string

(** {1 Snapshots} *)

type hist_snapshot = {
  lo : float;              (** lower bound of the first bucket *)
  buckets : (float * int) array; (** (upper bound, count), ascending *)
  underflow : int;
  overflow : int;
  count : int;
  sum : float;
  min_v : float;           (** +inf when [count = 0] *)
  max_v : float;           (** -inf when [count = 0] *)
}

type value = Counter of int | Gauge of float | Histogram of hist_snapshot

type snapshot = (string * value) list
(** Sorted by metric name. *)

val snapshot : t -> snapshot

val find : snapshot -> string -> value option

val diff : snapshot -> snapshot -> snapshot
(** [diff after before]: counters and histogram populations (bucket counts,
    count, sum, under/overflow) subtract; gauges are instantaneous so the
    [after] value stands, and histogram [min_v]/[max_v] also carry the
    [after] values (the window's own extrema are not recoverable from two
    endpoint snapshots). *)

val mean : hist_snapshot -> float
(** [nan] when empty. *)

val quantile : hist_snapshot -> float -> float
(** Linear interpolation within the covering bucket; 0 when the quantile
    falls in underflow, the top edge when it falls in overflow, [nan] when
    empty.  @raise Invalid_argument outside [0, 1]. *)

(** {1 Exporters} *)

val to_table : snapshot -> string
(** Human-readable boxed table (counters/gauges one line; histograms with
    count, mean, p50, p99, max). *)

val to_csv : snapshot -> string
(** One row per metric with a fixed header — diffable and
    spreadsheet-ready. *)

val to_json : snapshot -> Jsonlite.t
val to_json_string : snapshot -> string

val of_json : Jsonlite.t -> (snapshot, string) result
(** Inverse of {!to_json} — reconstructs a snapshot from a stats reply
    (histogram [min]/[max] encode as [null] when empty and decode back to
    the canonical ±inf extrema).  Used by [geomix top] to compute
    quantiles client-side. *)
