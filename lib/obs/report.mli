(** Run-report document builder.

    [geomix report] assembles one artifact per instrumented run — precision
    composition, data-motion table, occupancy Gantt, critical-path
    attribution, metrics snapshot, recovery counters — and this module is
    the neutral document layer underneath it: ordered sections of markdown
    blocks (paragraphs, GFM tables, fenced code), each optionally carrying
    structured {!Jsonlite} payloads, rendered as Markdown for humans and
    as one JSON object for tooling.  It knows nothing about the numeric
    stack, so any layer (CLI, bench harness, tests) can build reports. *)

type t

val create : title:string -> t

val section : t -> string -> unit
(** Start a new section; subsequent blocks land in it.  Content added
    before the first [section] goes into an implicit preamble. *)

val para : t -> string -> unit
(** A markdown paragraph. *)

val table : t -> headers:string list -> string list list -> unit
(** A GFM pipe table.  Rows shorter than [headers] are padded. *)

val code : t -> ?lang:string -> string -> unit
(** A fenced code block. *)

val attach : t -> key:string -> Jsonlite.t -> unit
(** Attach structured data to the current section; surfaces under the
    section's ["data"] object in {!to_json} (last write per key wins). *)

val to_markdown : t -> string

val to_json : t -> Jsonlite.t
(** [{ "title"; "sections": [ { "title"; "text"; "data" } ] }] — [text] is
    the section's rendered markdown body, [data] its attachments. *)
