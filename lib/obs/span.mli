(** Per-request trace spans: the attribution context of the live
    telemetry layer.

    The serve path creates one span per sampled request and threads it
    down through the cache, the pool job, the DTD interpreter and the
    tile-Cholesky kernel hooks; every RAW-edge transfer, task execution
    and retry along the way lands in the originating request's
    accumulators.  The resulting {!summary} is the per-request analogue
    of the paper's aggregate motion accounting: bytes shipped under the
    synchronization-reducing conversion (STC) versus the FP64-equivalent
    baseline, split by transfer precision, next to task/retry counts and
    queue/busy time.

    Spans are allocation-light — one record, one mutex, integer adds —
    and safe to update from worker domains concurrently with the request
    thread.  A call site that receives no span pays only an option
    branch. *)

type t

val create : ?parent:int -> ?trace_id:string -> request_id:string -> unit -> t
(** A fresh root span (or child, when [?parent] carries the parent's
    {!span_id}).  [trace_id] defaults to a process-unique generated id. *)

val child : t -> request_id:string -> t
(** A child span sharing the parent's trace id, parented to it — used for
    sub-work fanned out on behalf of a request (e.g. Monte-Carlo
    replicate waves). *)

val trace_id : t -> string
val request_id : t -> string
val span_id : t -> int
val parent : t -> int option

(** {1 Recording} *)

val note_transfer : ?prec:string -> t -> bytes:int -> fp64_bytes:int -> unit
(** One RAW-edge transfer: [bytes] as actually shipped, [fp64_bytes] the
    FP64-equivalent footprint of the same payload.  [?prec] attributes
    the bytes to a transfer-precision bucket (a
    {!Geomix_precision.Fpformat.scalar} name on the serve path). *)

val note_task : t -> unit
val note_retry : t -> unit

val note_exec : t -> queue_s:float -> run_s:float -> unit
(** Accumulate one task's queue wait and run time (from the pool's
    per-item timestamps). *)

(** {1 Summaries} *)

type summary = {
  s_trace_id : string;
  s_request_id : string;
  s_span_id : int;
  s_parent : int option;
  s_bytes_stc : int;
  s_bytes_fp64 : int;
  s_by_precision : (string * int) list;  (** bytes by precision name, sorted *)
  s_edges : int;       (** RAW-edge transfers attributed *)
  s_tasks : int;
  s_retries : int;
  s_queue_s : float;
  s_busy_s : float;
}

val summary : t -> summary
(** A consistent snapshot of the accumulators (taken under the span
    lock). *)

val fields : t -> (string * Jsonlite.t) list
(** [trace]/[request]/[span] identity fields for stamping bus events, in
    {!Events} payload shape. *)

val summary_to_json : summary -> Jsonlite.t
val summary_of_json : Jsonlite.t -> (summary, string) result
