type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type event = {
  seq : int;
  time : float;
  level : level;
  component : string;
  name : string;
  fields : (string * Jsonlite.t) list;
}

type t = {
  min_level : level;
  origin : float;
  mutex : Mutex.t;
  mutable next_seq : int;
  mutable last_time : float; (* clamp: per-bus timestamps never go backwards *)
  mutable sinks : (event -> unit) list; (* reverse subscription order *)
}

let create ?(level = Debug) () =
  {
    min_level = level;
    origin = Unix.gettimeofday ();
    mutex = Mutex.create ();
    next_seq = 0;
    last_time = 0.;
    sinks = [];
  }

let level t = t.min_level

let enabled t lvl = level_rank lvl >= level_rank t.min_level

let on_event t sink =
  Mutex.lock t.mutex;
  t.sinks <- sink :: t.sinks;
  Mutex.unlock t.mutex

let emit ?(level = Info) t ~component ~name fields =
  if level_rank level >= level_rank t.min_level then begin
    Mutex.lock t.mutex;
    if t.sinks <> [] then begin
      let now = Unix.gettimeofday () -. t.origin in
      let time = if now > t.last_time then now else t.last_time in
      t.last_time <- time;
      let e = { seq = t.next_seq; time; level; component; name; fields } in
      t.next_seq <- t.next_seq + 1;
      (* Reverse once so sinks observe subscription order. *)
      List.iter (fun sink -> sink e) (List.rev t.sinks)
    end;
    Mutex.unlock t.mutex
  end

(* Ring buffer sink *)

type ring = { capacity : int; buf : event Queue.t }

let ring ?(capacity = 4096) t =
  if capacity < 1 then invalid_arg "Events.ring";
  let r = { capacity; buf = Queue.create () } in
  (* Called under the bus lock, so the queue needs no lock of its own. *)
  on_event t (fun e ->
      Queue.push e r.buf;
      if Queue.length r.buf > r.capacity then ignore (Queue.pop r.buf));
  r

let ring_events r = List.of_seq (Queue.to_seq r.buf)

(* Serialisation *)

let to_json e =
  Jsonlite.Obj
    ([
       ("seq", Jsonlite.Num (float_of_int e.seq));
       ("t", Jsonlite.Num e.time);
       ("level", Jsonlite.Str (level_name e.level));
       ("component", Jsonlite.Str e.component);
       ("event", Jsonlite.Str e.name);
     ]
    @ e.fields)

let to_jsonl e =
  let s = Jsonlite.to_string ~indent:false (to_json e) in
  (* Compact emission has no newline to strip, but stay defensive. *)
  String.concat "" (String.split_on_char '\n' s)

let of_json j : (event, string) result =
  let header = [ "seq"; "t"; "level"; "component"; "event" ] in
  let num key : (float, string) result =
    match Option.bind (Jsonlite.member key j) Jsonlite.to_float with
    | Some x -> Ok x
    | None -> Result.Error (Printf.sprintf "missing numeric field %S" key)
  in
  let str key : (string, string) result =
    match Option.bind (Jsonlite.member key j) Jsonlite.to_str with
    | Some s -> Ok s
    | None -> Result.Error (Printf.sprintf "missing string field %S" key)
  in
  match (num "seq", num "t", str "level", str "component", str "event", j) with
  | Ok seq, Ok time, Ok lvl, Ok component, Ok name, Jsonlite.Obj all -> (
    match level_of_string lvl with
    | None -> Result.Error (Printf.sprintf "unknown level %S" lvl)
    | Some level ->
      Ok
        {
          seq = int_of_float seq;
          time;
          level;
          component;
          name;
          fields = List.filter (fun (k, _) -> not (List.mem k header)) all;
        })
  | Result.Error e, _, _, _, _, _
  | _, Result.Error e, _, _, _, _
  | _, _, Result.Error e, _, _, _
  | _, _, _, Result.Error e, _, _
  | _, _, _, _, Result.Error e, _ -> Result.Error e
  | _ -> Result.Error "event is not a JSON object"

let of_jsonl line =
  match Jsonlite.of_string line with
  | Result.Error e -> Result.Error e
  | Ok j -> of_json j

let read_jsonl ic =
  let events = ref [] and skipped = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match of_jsonl line with
         | Ok e -> events := e :: !events
         | Result.Error _ -> incr skipped
     done
   with End_of_file -> ());
  (List.rev !events, !skipped)

(* File / stderr sinks *)

let attach_jsonl t oc =
  on_event t (fun e ->
      output_string oc (to_jsonl e);
      output_char oc '\n';
      flush oc)

let pretty e =
  let fields =
    match e.fields with
    | [] -> ""
    | fs ->
      " "
      ^ String.concat " "
          (List.map
             (fun (k, v) -> k ^ "=" ^ Jsonlite.to_string ~indent:false v)
             fs)
  in
  Printf.sprintf "[%10.6f] %-5s %s.%s%s" e.time (level_name e.level) e.component
    e.name fields

let attach_stderr ?(min_level = Info) t =
  on_event t (fun e ->
      if level_rank e.level >= level_rank min_level then begin
        output_string stderr (pretty e);
        output_char stderr '\n';
        flush stderr
      end)

let env_level () =
  match Sys.getenv_opt "GEOMIX_LOG" with
  | None -> None
  | Some s -> level_of_string (String.trim s)

let stderr_bus lvl =
  let t = create ~level:lvl () in
  attach_stderr ~min_level:lvl t;
  t

(* Payload helpers *)

let fint n = Jsonlite.Num (float_of_int n)
let fnum x = Jsonlite.Num x
let fstr s = Jsonlite.Str s
