(* Metric cells are updated concurrently by pool workers: counters are
   atomics, gauges and histograms take a per-cell mutex (observations are
   tens of nanoseconds of work; contention is negligible next to the task
   bodies they measure). *)

type counter = { cname : string; cell : int Atomic.t }

type gauge = { gname : string; mutable gvalue : float; gmutex : Mutex.t }

type histogram = {
  hname : string;
  lo : float; (* lower bound of the first bucket *)
  edges : float array; (* upper bound of each log-spaced bucket, ascending *)
  counts : int array;
  mutable underflow : int; (* values below the first bucket's lower bound *)
  mutable overflow : int; (* values at or above the last upper bound *)
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
  hmutex : Mutex.t;
}

type metric = C of counter | G of gauge | H of histogram

type t = { table : (string, metric) Hashtbl.t; rmutex : Mutex.t }

let create () = { table = Hashtbl.create 32; rmutex = Mutex.create () }

let with_registry t f =
  Mutex.lock t.rmutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.rmutex) f

let register t name make select =
  with_registry t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some m -> (
        match select m with
        | Some cell -> cell
        | None -> invalid_arg (Printf.sprintf "Metrics: %S registered with another kind" name))
      | None ->
        let cell = make () in
        Hashtbl.add t.table name cell;
        match select cell with Some c -> c | None -> assert false)

let counter t name =
  register t name
    (fun () -> C { cname = name; cell = Atomic.make 0 })
    (function C c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun () -> G { gname = name; gvalue = 0.; gmutex = Mutex.create () })
    (function G g -> Some g | _ -> None)

let default_lo = 1e-6 (* 1 µs: queue waits and task bodies both land mid-range *)
let default_decades = 12
let default_per_decade = 4

let histogram ?(lo = default_lo) ?(decades = default_decades)
    ?(per_decade = default_per_decade) t name =
  if lo <= 0. || decades < 1 || per_decade < 1 then invalid_arg "Metrics.histogram";
  register t name
    (fun () ->
      let n = decades * per_decade in
      let edges =
        Array.init n (fun i -> lo *. (10. ** (float_of_int (i + 1) /. float_of_int per_decade)))
      in
      H
        {
          hname = name;
          lo;
          edges;
          counts = Array.make n 0;
          underflow = 0;
          overflow = 0;
          hcount = 0;
          hsum = 0.;
          hmin = Float.infinity;
          hmax = Float.neg_infinity;
          hmutex = Mutex.create ();
        })
    (function H h -> Some h | _ -> None)

(* Counters *)

let incr c = Atomic.incr c.cell

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotonic";
  ignore (Atomic.fetch_and_add c.cell n)

let counter_value c = Atomic.get c.cell

let counter_name c = c.cname

(* Gauges *)

let set g v =
  Mutex.lock g.gmutex;
  g.gvalue <- v;
  Mutex.unlock g.gmutex

let set_max g v =
  Mutex.lock g.gmutex;
  if v > g.gvalue then g.gvalue <- v;
  Mutex.unlock g.gmutex

let gauge_value g =
  Mutex.lock g.gmutex;
  let v = g.gvalue in
  Mutex.unlock g.gmutex;
  v

let gauge_name g = g.gname

(* Histograms *)

let bucket_index h v =
  (* First bucket whose upper bound exceeds v; edges are few (≤ ~64), and a
     binary search keeps boundary behaviour exact. *)
  let n = Array.length h.edges in
  if v < h.lo then `Underflow
  else if v >= h.edges.(n - 1) then `Overflow
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v < h.edges.(mid) then hi := mid else lo := mid + 1
    done;
    `Bucket !lo
  end

let observe h v =
  Mutex.lock h.hmutex;
  (match bucket_index h v with
  | `Underflow -> h.underflow <- h.underflow + 1
  | `Overflow -> h.overflow <- h.overflow + 1
  | `Bucket i -> h.counts.(i) <- h.counts.(i) + 1);
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum +. v;
  if v < h.hmin then h.hmin <- v;
  if v > h.hmax then h.hmax <- v;
  Mutex.unlock h.hmutex

let time h f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe h (Unix.gettimeofday () -. t0)) f

let histogram_name h = h.hname

(* Snapshots *)

type hist_snapshot = {
  lo : float;
  buckets : (float * int) array;
  underflow : int;
  overflow : int;
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
}

type value = Counter of int | Gauge of float | Histogram of hist_snapshot

type snapshot = (string * value) list

let snapshot_metric = function
  | C c -> Counter (Atomic.get c.cell)
  | G g -> Gauge (gauge_value g)
  | H h ->
    Mutex.lock h.hmutex;
    let s =
      Histogram
        {
          lo = h.lo;
          buckets = Array.mapi (fun i e -> (e, h.counts.(i))) h.edges;
          underflow = h.underflow;
          overflow = h.overflow;
          count = h.hcount;
          sum = h.hsum;
          min_v = h.hmin;
          max_v = h.hmax;
        }
    in
    Mutex.unlock h.hmutex;
    s

let snapshot t =
  let items =
    with_registry t (fun () ->
        Hashtbl.fold (fun name m acc -> (name, snapshot_metric m) :: acc) t.table [])
  in
  List.sort (fun (a, _) (b, _) -> compare a b) items

let find snap name = List.assoc_opt name snap

(* [diff after before]: what happened between the two snapshots.  Counters
   and histogram populations subtract; gauges are instantaneous so the
   [after] value stands; histogram min/max cannot be recovered for the
   window alone, so they also carry the [after] values (documented). *)
let diff after before =
  List.map
    (fun (name, a) ->
      match (a, find before name) with
      | Counter x, Some (Counter y) -> (name, Counter (x - y))
      | Histogram x, Some (Histogram y) when Array.length x.buckets = Array.length y.buckets
        ->
        ( name,
          Histogram
            {
              x with
              buckets = Array.mapi (fun i (e, c) -> (e, c - snd y.buckets.(i))) x.buckets;
              underflow = x.underflow - y.underflow;
              overflow = x.overflow - y.overflow;
              count = x.count - y.count;
              sum = x.sum -. y.sum;
            } )
      | _, _ -> (name, a))
    after

let mean (h : hist_snapshot) = if h.count = 0 then Float.nan else h.sum /. float_of_int h.count

let quantile (h : hist_snapshot) q =
  if q < 0. || q > 1. then invalid_arg "Metrics.quantile";
  if h.count = 0 then Float.nan
  else begin
    let target = q *. float_of_int h.count in
    let seen = ref (float_of_int h.underflow) in
    if !seen >= target && h.underflow > 0 then
      (* Below the instrumented range (zeros land here): report 0. *)
      0.
    else begin
      let result = ref Float.nan in
      let n = Array.length h.buckets in
      (try
         for i = 0 to n - 1 do
           let upper, c = h.buckets.(i) in
           if c > 0 then begin
             let next = !seen +. float_of_int c in
             if next >= target then begin
               let lower = if i = 0 then h.lo else fst h.buckets.(i - 1) in
               let frac = (target -. !seen) /. float_of_int c in
               result := lower +. (frac *. (upper -. lower));
               raise Exit
             end;
             seen := next
           end
         done;
         (* Remaining mass is overflow: report the instrumented ceiling. *)
         result := fst h.buckets.(n - 1)
       with Exit -> ());
      !result
    end
  end

(* Exporters *)

let kind_of = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let fmt = Geomix_util.Table.fmt_float ~digits:4

let to_table snap =
  let rows =
    List.map
      (fun (name, v) ->
        match v with
        | Counter n -> [ name; "counter"; string_of_int n; ""; ""; ""; "" ]
        | Gauge x -> [ name; "gauge"; fmt x; ""; ""; ""; "" ]
        | Histogram h ->
          [
            name;
            "histogram";
            string_of_int h.count;
            (if h.count = 0 then "" else fmt (mean h));
            (if h.count = 0 then "" else fmt (quantile h 0.5));
            (if h.count = 0 then "" else fmt (quantile h 0.99));
            (if h.count = 0 then "" else fmt h.max_v);
          ])
      snap
  in
  Geomix_util.Table.render
    ~align:[ Geomix_util.Table.Left; Geomix_util.Table.Left ]
    ~headers:[ "metric"; "kind"; "count/value"; "mean"; "p50"; "p99"; "max" ]
    rows

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv snap =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "metric,kind,count,value,sum,mean,p50,p99,min,max\n";
  List.iter
    (fun (name, v) ->
      let cells =
        match v with
        | Counter n -> [ string_of_int n; string_of_int n; ""; ""; ""; ""; ""; "" ]
        | Gauge x -> [ ""; fmt x; ""; ""; ""; ""; ""; "" ]
        | Histogram h ->
          if h.count = 0 then [ "0"; ""; "0"; ""; ""; ""; ""; "" ]
          else
            [
              string_of_int h.count;
              "";
              fmt h.sum;
              fmt (mean h);
              fmt (quantile h 0.5);
              fmt (quantile h 0.99);
              fmt h.min_v;
              fmt h.max_v;
            ]
      in
      Buffer.add_string buf
        (String.concat "," (csv_escape name :: csv_escape (kind_of v) :: cells));
      Buffer.add_char buf '\n')
    snap;
  Buffer.contents buf

let value_to_json = function
  | Counter n -> Jsonlite.Obj [ ("kind", Jsonlite.Str "counter"); ("value", Jsonlite.Num (float_of_int n)) ]
  | Gauge x -> Jsonlite.Obj [ ("kind", Jsonlite.Str "gauge"); ("value", Jsonlite.Num x) ]
  | Histogram h ->
    Jsonlite.Obj
      [
        ("kind", Jsonlite.Str "histogram");
        ("lo", Jsonlite.Num h.lo);
        ("count", Jsonlite.Num (float_of_int h.count));
        ("sum", Jsonlite.Num h.sum);
        ("min", Jsonlite.Num (if h.count = 0 then Float.nan else h.min_v));
        ("max", Jsonlite.Num (if h.count = 0 then Float.nan else h.max_v));
        ("underflow", Jsonlite.Num (float_of_int h.underflow));
        ("overflow", Jsonlite.Num (float_of_int h.overflow));
        ( "buckets",
          Jsonlite.Arr
            (Array.to_list
               (Array.map
                  (fun (upper, c) ->
                    Jsonlite.Obj
                      [ ("le", Jsonlite.Num upper); ("count", Jsonlite.Num (float_of_int c)) ])
                  h.buckets)) );
      ]

let to_json snap = Jsonlite.Obj (List.map (fun (name, v) -> (name, value_to_json v)) snap)

let to_json_string snap = Jsonlite.to_string (to_json snap)

(* Decoder — the inverse of [value_to_json], used by [geomix top] to
   reconstruct snapshots from a stats reply.  NaN min/max emit as [null],
   so an empty histogram decodes back to the canonical ±inf extrema. *)

let value_of_json j =
  let num name =
    match Jsonlite.member name j with
    | Some (Jsonlite.Num x) -> Some x
    | _ -> None
  in
  match Jsonlite.member "kind" j with
  | Some (Jsonlite.Str "counter") -> (
    match num "value" with
    | Some v -> Ok (Counter (int_of_float v))
    | None -> Error "counter without numeric value")
  | Some (Jsonlite.Str "gauge") -> (
    match num "value" with
    | Some v -> Ok (Gauge v)
    | None -> Error "gauge without numeric value")
  | Some (Jsonlite.Str "histogram") -> (
    let buckets =
      match Jsonlite.member "buckets" j with
      | Some (Jsonlite.Arr bs) ->
        let decoded =
          List.filter_map
            (fun b ->
              match (Jsonlite.member "le" b, Jsonlite.member "count" b) with
              | Some (Jsonlite.Num le), Some (Jsonlite.Num c) ->
                Some (le, int_of_float c)
              | _ -> None)
            bs
        in
        if List.length decoded = List.length bs then Some (Array.of_list decoded)
        else None
      | _ -> None
    in
    match (num "lo", buckets, num "count", num "sum", num "underflow", num "overflow")
    with
    | Some lo, Some buckets, Some count, Some sum, Some underflow, Some overflow ->
      let count = int_of_float count in
      let extremum name default =
        match num name with Some v -> v | None -> if count = 0 then default else 0.
      in
      Ok
        (Histogram
           {
             lo;
             buckets;
             underflow = int_of_float underflow;
             overflow = int_of_float overflow;
             count;
             sum;
             min_v = extremum "min" Float.infinity;
             max_v = extremum "max" Float.neg_infinity;
           })
    | _ -> Error "histogram with missing fields")
  | _ -> Error "metric value without a known kind"

let of_json = function
  | Jsonlite.Obj kvs ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (name, v) :: rest -> (
        match value_of_json v with
        | Ok value -> go ((name, value) :: acc) rest
        | Error e -> Error (Printf.sprintf "%s: %s" name e))
    in
    go [] kvs
  | _ -> Error "Metrics.of_json: expected object"
