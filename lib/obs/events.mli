(** Unified telemetry bus for the execution stack.

    {!Geomix_obs.Metrics} answers "how much" (counters, histograms);
    this answers "what happened, when": a structured, leveled event log
    with per-bus monotonic timestamps and typed {!Jsonlite} payloads —
    the repo's analogue of PaRSEC's PINS instrumentation stream, which
    the paper's evaluation (Figs 8–10) is narrated from.

    Producers ([Pool], [Dtd], [Dag_exec] via the runtime bridge, [Fault],
    [Mp_cholesky]) take an optional [?bus] argument and emit events; the
    bus fans each event out to its subscribed sinks:

    - a {!ring} buffer (bounded in-memory history, for tests and reports);
    - a JSONL sink ({!attach_jsonl}) — one compact JSON object per line,
      machine-parseable back through {!of_jsonl};
    - a pretty stderr sink ({!attach_stderr}), the one the [GEOMIX_LOG]
      environment variable and the CLI's [--verbose] flag control.

    Cost model: a call site that passes no bus pays nothing; an emit below
    the bus level, or on a bus with no sinks, is a branch and returns.  All
    operations are thread-safe ({!emit} is called from worker domains). *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> level option
(** Case-insensitive inverse of {!level_name}. *)

type event = {
  seq : int;  (** per-bus sequence number, from 0 *)
  time : float;
      (** seconds since bus creation; non-decreasing across the bus even if
          the wall clock steps backwards *)
  level : level;
  component : string;  (** producer, e.g. ["pool"], ["dtd"], ["cholesky"] *)
  name : string;  (** event kind within the component, e.g. ["task_end"] *)
  fields : (string * Jsonlite.t) list;  (** typed payload *)
}

type t

val create : ?level:level -> unit -> t
(** A bus recording events at [level] (default [Debug]) and above. *)

val level : t -> level

val enabled : t -> level -> bool
(** Whether an emit at this level would be recorded — guard for call sites
    that build expensive payloads. *)

val emit :
  ?level:level -> t -> component:string -> name:string ->
  (string * Jsonlite.t) list -> unit
(** Emit one event (default level [Info]) to every sink.  Discarded — with
    no payload evaluation beyond the argument list — when below the bus
    level. *)

(** {1 Sinks} *)

val on_event : t -> (event -> unit) -> unit
(** Subscribe a raw sink; called in emission order under the bus lock, so
    sinks must not emit back into the same bus. *)

type ring

val ring : ?capacity:int -> t -> ring
(** Subscribe a bounded in-memory buffer keeping the most recent
    [capacity] (default 4096) events. *)

val ring_events : ring -> event list
(** Buffered events, oldest first. *)

val attach_jsonl : t -> out_channel -> unit
(** Stream every event as one compact JSON line (flushed per event, so the
    log survives a crash and tails cleanly). *)

val attach_stderr : ?min_level:level -> t -> unit
(** Human-readable one-line-per-event sink on stderr, filtered to
    [min_level] (default [Info]) and above. *)

(** {1 Environment wiring}

    [GEOMIX_LOG=debug|info|warn|error] selects the stderr sink's level for
    the CLI; unset (or unparseable) means no logging. *)

val env_level : unit -> level option
(** Parse [GEOMIX_LOG]. *)

val stderr_bus : level -> t
(** A bus at [level] with a stderr sink attached at the same level. *)

(** {1 Serialisation} *)

val to_json : event -> Jsonlite.t
val to_jsonl : event -> string
(** One compact JSON line, no trailing newline. *)

val of_json : Jsonlite.t -> (event, string) result
val of_jsonl : string -> (event, string) result

val read_jsonl : in_channel -> event list * int
(** Read a whole JSONL stream back, in order, skipping rather than failing
    on lines that do not parse as events — a log truncated mid-line by a
    crash, or interleaved foreign output, still yields every intact event.
    Blank lines are ignored silently; the second component counts the
    malformed lines that were skipped. *)

(** {1 Payload helpers} *)

val fint : int -> Jsonlite.t
val fnum : float -> Jsonlite.t
val fstr : string -> Jsonlite.t
