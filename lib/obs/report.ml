type block =
  | Para of string
  | Table of { headers : string list; rows : string list list }
  | Code of { lang : string; text : string }

type section = {
  stitle : string;
  mutable blocks : block list; (* reverse order *)
  mutable data : (string * Jsonlite.t) list; (* reverse order, last wins *)
}

type t = { title : string; mutable sections : section list (* reverse order *) }

let create ~title = { title; sections = [] }

let section t stitle = t.sections <- { stitle; blocks = []; data = [] } :: t.sections

let current t =
  match t.sections with
  | s :: _ -> s
  | [] ->
    (* Implicit preamble for content added before any section. *)
    let s = { stitle = ""; blocks = []; data = [] } in
    t.sections <- [ s ];
    s

let para t text = (current t).blocks <- Para text :: (current t).blocks

let table t ~headers rows =
  let s = current t in
  s.blocks <- Table { headers; rows } :: s.blocks

let code t ?(lang = "") text =
  let s = current t in
  s.blocks <- Code { lang; text } :: s.blocks

let attach t ~key v =
  let s = current t in
  s.data <- (key, v) :: s.data

(* Markdown rendering *)

let escape_cell s =
  (* Pipes break GFM table cells; newlines break rows. *)
  String.concat "\\|" (String.split_on_char '|' s)
  |> String.split_on_char '\n'
  |> String.concat " "

let render_table buf headers rows =
  let width = List.length headers in
  let pad row =
    let n = List.length row in
    if n >= width then row else row @ List.init (width - n) (fun _ -> "")
  in
  let line cells =
    Buffer.add_string buf "| ";
    Buffer.add_string buf (String.concat " | " (List.map escape_cell cells));
    Buffer.add_string buf " |\n"
  in
  line headers;
  line (List.map (fun _ -> "---") headers);
  List.iter (fun row -> line (pad row)) rows

let render_block buf = function
  | Para text ->
    Buffer.add_string buf text;
    Buffer.add_string buf "\n\n"
  | Table { headers; rows } ->
    render_table buf headers rows;
    Buffer.add_char buf '\n'
  | Code { lang; text } ->
    Buffer.add_string buf ("```" ^ lang ^ "\n");
    Buffer.add_string buf text;
    if text <> "" && text.[String.length text - 1] <> '\n' then
      Buffer.add_char buf '\n';
    Buffer.add_string buf "```\n\n"

let section_body s =
  let buf = Buffer.create 512 in
  List.iter (render_block buf) (List.rev s.blocks);
  Buffer.contents buf

let to_markdown t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf ("# " ^ t.title ^ "\n\n");
  List.iter
    (fun s ->
      if s.stitle <> "" then Buffer.add_string buf ("## " ^ s.stitle ^ "\n\n");
      Buffer.add_string buf (section_body s))
    (List.rev t.sections);
  Buffer.contents buf

let to_json t =
  let dedup kvs =
    (* Reverse order with last write first: keep the first occurrence. *)
    let seen = Hashtbl.create 8 in
    List.filter
      (fun (k, _) ->
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      kvs
  in
  Jsonlite.Obj
    [
      ("title", Jsonlite.Str t.title);
      ( "sections",
        Jsonlite.Arr
          (List.rev_map
             (fun s ->
               Jsonlite.Obj
                 [
                   ("title", Jsonlite.Str s.stitle);
                   ("text", Jsonlite.Str (section_body s));
                   ("data", Jsonlite.Obj (List.rev (dedup s.data)));
                 ])
             t.sections) );
    ]
