(** Dependency-driven execution of a static task DAG.

    This is the heart of the PaRSEC-style asynchronous model: a task becomes
    runnable the instant its last predecessor completes, with no global
    barriers between the "iterations" of Algorithm 1.  Tasks are identified
    by dense integer ids; the graph is given by a successor function and the
    in-degree of every task.

    {b Supervision.}  [run] optionally wraps every task body in a recovery
    envelope: a seeded fault plan ([?faults], site ["exec"]) injects
    transient exceptions, crash-after-write failures and stalls per
    attempt, and a retry policy ([?retry]) re-executes a failed attempt up
    to its bound with backoff.  Re-execution of an in-place task is only
    sound if its written data is rolled back first, so [?capture] lets the
    caller snapshot a task's written footprint: [capture id] is called
    once, before the task's first attempt, and must return a thunk that
    restores the captured state; the envelope invokes that thunk before
    every re-execution.  When the retry budget is exhausted (or the
    exception is not [retryable]) the failure propagates as before: the
    scheduler stops launching ready tasks, the pool cancels its queue, and
    the exception re-raises from [run] with its original backtrace. *)

type obs = { on_task : id:int -> worker:int -> start:float -> stop:float -> unit }
(** Real-execution hook: called once per task with the worker index that ran
    it ({!Pool.self_index}) and wall-clock start/stop in seconds relative to
    the run's origin — exactly the shape of a {!Geomix_runtime.Trace.event},
    so real runs reuse the simulator's Chrome-JSON and Gantt exporters.
    Called from worker domains concurrently; also fires when the task body
    raises (the span then covers up to the raise — under retry it covers
    every attempt and backoff). *)

val run :
  ?obs:obs ->
  ?task_name:(int -> string) ->
  ?faults:Geomix_fault.Fault.t ->
  ?retry:Geomix_fault.Retry.policy ->
  ?capture:(int -> unit -> unit) ->
  ?on_retry:(id:int -> attempt:int -> exn -> unit) ->
  ?acquire:(int -> unit) ->
  ?release:(int -> unit) ->
  ?job:Pool.job ->
  pool:Pool.t ->
  num_tasks:int ->
  in_degree:int array ->
  successors:(int -> int list) ->
  execute:(int -> unit) ->
  unit ->
  unit
(** [run ~pool ~num_tasks ~in_degree ~successors ~execute ()] executes every
    task exactly once (exactly one {e successful} attempt under [?retry]),
    never running a task before all of its predecessors have finished.  An
    exception raised by [execute] — after supervision, when enabled —
    aborts scheduling of further ready tasks and is re-raised.

    [?task_name] labels tasks for the fault plan's name-based decisions
    (default: the task id as a string).  [?capture] snapshots a task's
    written footprint for sound re-execution (see above); it is only
    invoked when a retry policy with [max_attempts > 1] is present.
    [?on_retry] observes every re-execution decision (for metrics).

    [?acquire]/[?release] bracket each task's whole supervision envelope
    (acquire before the first attempt's capture, release after the last
    attempt, also on failure): an out-of-core tile store pins the task's
    read/write footprint here so no in-flight tile is evicted under a
    kernel.  Called from worker domains, so they must be thread-safe.

    [?job] scopes the run to a {!Pool.job}: tasks are submitted under the
    job and the final wait is {!Pool.join_job} instead of
    {!Pool.wait_idle}, so {e concurrent runs sharing one pool} neither
    await nor observe each other's tasks, and a failure aborts only this
    run (its remaining ready tasks are skipped; other jobs' queued thunks
    are untouched).  Without [?job] the historical pool-wide semantics
    apply: the wait covers every pool thunk and the first error recorded
    pool-wide — possibly another caller's — is re-raised.

    @raise Invalid_argument if the graph is cyclic or in-degrees are
    inconsistent (not every task became ready). *)

val predecessors : num_tasks:int -> successors:(int -> int list) -> int list array
(** Invert the successor function once; each predecessor list comes back in
    ascending task order. *)

val check_acyclic : num_tasks:int -> successors:(int -> int list) -> bool
(** Kahn's algorithm on the successor function (recomputing in-degrees);
    [true] when the graph is a DAG. *)
