(** Dependency-driven execution of a static task DAG.

    This is the heart of the PaRSEC-style asynchronous model: a task becomes
    runnable the instant its last predecessor completes, with no global
    barriers between the "iterations" of Algorithm 1.  Tasks are identified
    by dense integer ids; the graph is given by a successor function and the
    in-degree of every task. *)

type obs = { on_task : id:int -> worker:int -> start:float -> stop:float -> unit }
(** Real-execution hook: called once per task with the worker index that ran
    it ({!Pool.self_index}) and wall-clock start/stop in seconds relative to
    the run's origin — exactly the shape of a {!Geomix_runtime.Trace.event},
    so real runs reuse the simulator's Chrome-JSON and Gantt exporters.
    Called from worker domains concurrently; also fires when the task body
    raises (the span then covers up to the raise). *)

val run :
  ?obs:obs ->
  pool:Pool.t ->
  num_tasks:int ->
  in_degree:int array ->
  successors:(int -> int list) ->
  execute:(int -> unit) ->
  unit ->
  unit
(** [run ~pool ~num_tasks ~in_degree ~successors ~execute ()] executes every
    task exactly once, never running a task before all of its predecessors
    have finished.  An exception raised by [execute] aborts scheduling of
    further ready tasks and is re-raised.

    @raise Invalid_argument if the graph is cyclic or in-degrees are
    inconsistent (not every task became ready). *)

val predecessors : num_tasks:int -> successors:(int -> int list) -> int list array
(** Invert the successor function once; each predecessor list comes back in
    ascending task order. *)

val check_acyclic : num_tasks:int -> successors:(int -> int list) -> bool
(** Kahn's algorithm on the successor function (recomputing in-degrees);
    [true] when the graph is a DAG. *)
