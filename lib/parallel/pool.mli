(** A fixed pool of worker domains with a shared run queue.

    This is the execution engine under the task runtime: PaRSEC's role of
    "execute a task as soon as its dependencies are satisfied on some
    computational resource" maps to submitting thunks here.  With
    [num_workers = 0] (the default on a single-core machine) the pool
    degrades to deferred serial execution on the calling domain, preserving
    submission order semantics without spawning domains.

    Passing [?obs] instruments the pool with real measurements (the
    simulator-side [Trace] has always had these; this is the live
    counterpart): per-worker executed-task counters
    ([pool.worker<i>.tasks]), queue-wait and run-time histograms in seconds
    ([pool.queue_wait_s], [pool.run_s]), a total counter ([pool.tasks]), an
    idle-wait counter ([pool.idle_waits] — one increment per
    condition-variable sleep), a fail-fast cancellation counter
    ([pool.cancelled]), a peak-queue-length gauge ([pool.queue_peak]) and a
    worker-count gauge ([pool.workers]).  An uninstrumented pool takes no
    clock readings at all.

    {b Failure semantics (fail fast).}  The first exception escaping a
    thunk is stored (with its backtrace) and {e cancels every
    queued-but-unstarted thunk}: a failing computation stops scheduling
    work instead of running the rest of the batch against a doomed result.
    Thunks already executing on other workers are not interrupted; their
    errors, if any, are dropped in favour of the first.  {!wait_idle} /
    {!shutdown} re-raise the stored exception {e with its original
    backtrace}, after which the pool is clean and fully reusable.

    Passing [?faults] subjects every executed thunk to the seeded fault
    plan (site ["pool"], task = the thunk's submission index) — the chaos
    entry point for the raw pool layer; the DAG executors have their own,
    task-name-aware hook.

    Passing [?bus] narrates the pool's lifecycle on the telemetry bus
    (component ["pool"]): [create]/[shutdown] at Info, per-worker
    [worker_start]/[worker_stop] at Debug, fail-fast [cancelled] batches at
    Warn and the first recorded [error] at Error. *)

type t

val create :
  ?obs:Geomix_obs.Metrics.t -> ?bus:Geomix_obs.Events.t ->
  ?faults:Geomix_fault.Fault.t -> ?num_workers:int ->
  unit -> t
(** [create ()] sizes the pool to [Domain.recommended_domain_count - 1]
    workers (never negative). *)

val num_workers : t -> int

val cancelled : t -> int
(** Thunks discarded by fail-fast cancellation over the pool's lifetime. *)

val self_index : t -> int
(** Dense index of the calling domain among this pool's workers — the
    resource id under which observability hooks record the current task.
    0 on the caller domain of a serial pool (and on any domain that is not
    a pool worker). *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a thunk.  Exceptions escaping a thunk are caught, stored
    together with their backtrace, and re-raised by the next {!wait_idle}
    or {!shutdown}; the first one also cancels all queued thunks. *)

val wait_idle : t -> unit
(** Block until every submitted thunk has finished or been cancelled (in
    the serial pool this drains the queue on the caller).  Re-raises the
    first stored thunk exception, if any, with its original backtrace. *)

val shutdown : t -> unit
(** Drain, stop and join the workers.  Idempotent. *)

val with_pool :
  ?obs:Geomix_obs.Metrics.t -> ?bus:Geomix_obs.Events.t ->
  ?faults:Geomix_fault.Fault.t -> ?num_workers:int ->
  (t -> 'a) -> 'a
(** Scoped creation: shuts the pool down on exit or exception. *)

(** {1 Job-scoped execution}

    A {!job} is a completion scope over a subset of the pool's thunks —
    the primitive that lets {e independent computations share one pool}.
    {!wait_idle} waits for every thunk the pool has ever been given and
    re-raises whichever error came first, pool-wide; a server handling
    concurrent requests on a shared pool needs neither: each request
    submits its thunks under its own job and {!join_job}s only those.

    Failure semantics are job-scoped: an exception escaping a job thunk —
    including a [?faults] injection — is stored in the {e job} (never in
    the pool's fail-fast slot), subsequent thunks {e of that job} are
    skipped instead of run, and {!join_job} re-raises the job's first
    error with its original backtrace.  Thunks of other jobs — and plain
    {!submit} thunks — are unaffected.  In the other direction, a
    pool-wide fail-fast cancellation (first error from a plain {!submit}
    thunk) discards queued job thunks but still settles their jobs'
    accounting: they count as skipped and {!join_job} returns rather than
    waiting forever. *)

type job

val new_job : ?span:Geomix_obs.Span.t -> t -> job
(** A fresh, empty completion scope.  Cheap; one per request.  With
    [?span], every item run under the job accumulates its queue-wait and
    run time into the span ({!Geomix_obs.Span.note_exec}) — the pool then
    takes the same two clock readings it takes when instrumented, shared
    between the registry histograms and the span. *)

val job_span : job -> Geomix_obs.Span.t option
(** The trace context the job was created with — executors propagate it
    to their own per-task hooks. *)

val submit_job : t -> job -> (unit -> unit) -> unit
(** Enqueue a thunk under the job's scope.  A job is {e sequentially}
    reusable: once {!join_job} has returned, the pending count is back to
    zero and the error slot is clear, so the same job may scope a further
    wave of thunks — how the server chunks Monte-Carlo fan-out under
    brown-out ({!Geomix_serve.Breaker}).  Submitting while another thread
    is still inside {!join_job} for the same job is not allowed. *)

val join_job : t -> job -> unit
(** Block until every thunk submitted under this job has finished or been
    skipped, then re-raise the job's first error, if any, with its
    original backtrace.  On a serial pool the caller drains the queue
    itself (items of other jobs encountered on the way are executed too).
    Unlike {!wait_idle}, completion or failure of {e other} jobs' thunks
    is neither awaited nor observed. *)

val job_skipped : job -> int
(** Thunks of this job discarded because the job had already failed.
    Stable once {!join_job} has returned. *)
