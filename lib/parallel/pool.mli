(** A fixed pool of worker domains with a shared run queue.

    This is the execution engine under the task runtime: PaRSEC's role of
    "execute a task as soon as its dependencies are satisfied on some
    computational resource" maps to submitting thunks here.  With
    [num_workers = 0] (the default on a single-core machine) the pool
    degrades to deferred serial execution on the calling domain, preserving
    submission order semantics without spawning domains.

    Passing [?obs] instruments the pool with real measurements (the
    simulator-side [Trace] has always had these; this is the live
    counterpart): per-worker executed-task counters
    ([pool.worker<i>.tasks]), queue-wait and run-time histograms in seconds
    ([pool.queue_wait_s], [pool.run_s]), a total counter ([pool.tasks]), an
    idle-wait counter ([pool.idle_waits] — one increment per
    condition-variable sleep), a peak-queue-length gauge
    ([pool.queue_peak]) and a worker-count gauge ([pool.workers]).  An
    uninstrumented pool takes no clock readings at all. *)

type t

val create : ?obs:Geomix_obs.Metrics.t -> ?num_workers:int -> unit -> t
(** [create ()] sizes the pool to [Domain.recommended_domain_count - 1]
    workers (never negative). *)

val num_workers : t -> int

val self_index : t -> int
(** Dense index of the calling domain among this pool's workers — the
    resource id under which observability hooks record the current task.
    0 on the caller domain of a serial pool (and on any domain that is not
    a pool worker). *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a thunk.  Exceptions escaping a thunk are caught, stored, and
    re-raised by the next {!wait_idle} or {!shutdown}. *)

val wait_idle : t -> unit
(** Block until every submitted thunk has finished (in the serial pool this
    drains the queue on the caller).  Re-raises the first stored thunk
    exception, if any. *)

val shutdown : t -> unit
(** Drain, stop and join the workers.  Idempotent. *)

val with_pool : ?obs:Geomix_obs.Metrics.t -> ?num_workers:int -> (t -> 'a) -> 'a
(** Scoped creation: shuts the pool down on exit or exception. *)
