module Metrics = Geomix_obs.Metrics
module Events = Geomix_obs.Events
module Fault = Geomix_fault.Fault

(* A job is a completion scope over a subset of the pool's thunks: its own
   pending count, its own first-error slot, its own condition variable (all
   guarded by the pool mutex).  An exception escaping a job-scoped thunk —
   including an injected fault — lands in the job, never in the pool's
   fail-fast slot, and a failed job skips its own queued thunks without
   cancelling anyone else's. *)
type job = {
  job_done : Condition.t;
  mutable pending : int;
  mutable job_error : (exn * Printexc.raw_backtrace) option;
  mutable skipped : int;
  span : Geomix_obs.Span.t option;
      (* per-request trace context: every item run under this job adds
         its queue-wait and run time to the span *)
}

type scope = Pool_scope | Job_scope of job

type item = { thunk : unit -> unit; submitted : float; seq : int; scope : scope }

(* Metric cells resolved once at pool creation so the hot path never takes
   the registry lock. *)
type obs_state = {
  tasks_total : Metrics.counter;
  queue_wait : Metrics.histogram;
  run_time : Metrics.histogram;
  idle_waits : Metrics.counter;
  queue_peak : Metrics.gauge;
  cancelled_total : Metrics.counter;
  worker_tasks : Metrics.counter array;
}

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  idle : Condition.t;
  queue : item Queue.t;
  mutable in_flight : int; (* queued + currently executing thunks *)
  mutable stopping : bool;
  mutable first_error : (exn * Printexc.raw_backtrace) option;
  mutable cancelled : int;
  mutable next_seq : int;
  mutable workers : unit Domain.t array;
  serial : bool;
  faults : Fault.t option;
  obs : obs_state option;
  bus : Events.t option;
}

let emit t ?level name fields =
  match t.bus with
  | None -> ()
  | Some bus -> Events.emit ?level bus ~component:"pool" ~name fields

let make_obs reg n =
  Metrics.set (Metrics.gauge reg "pool.workers") (float_of_int n);
  {
    tasks_total = Metrics.counter reg "pool.tasks";
    queue_wait = Metrics.histogram reg "pool.queue_wait_s";
    run_time = Metrics.histogram reg "pool.run_s";
    idle_waits = Metrics.counter reg "pool.idle_waits";
    queue_peak = Metrics.gauge reg "pool.queue_peak";
    cancelled_total = Metrics.counter reg "pool.cancelled";
    worker_tasks =
      Array.init (Stdlib.max 1 n) (fun i ->
          Metrics.counter reg (Printf.sprintf "pool.worker%d.tasks" i));
  }

(* Fail fast: the first recorded error cancels every queued-but-unstarted
   item, so a failing DAG stops scheduling work instead of running the
   rest of the graph to completion against a doomed result.  Thunks
   already executing are not interrupted (OCaml has no safe asynchronous
   cancellation); they run out and their errors, if any, are dropped in
   favour of the first. *)
let cancel_pending_locked t =
  let n = Queue.length t.queue in
  if n > 0 then begin
    (* Discarded job thunks must still settle their job's accounting, or a
       concurrent [join_job] would wait forever on the pending count. *)
    Queue.iter
      (fun it ->
        match it.scope with
        | Pool_scope -> ()
        | Job_scope job ->
          job.skipped <- job.skipped + 1;
          job.pending <- job.pending - 1;
          if job.pending = 0 then Condition.broadcast job.job_done)
      t.queue;
    Queue.clear t.queue;
    t.cancelled <- t.cancelled + n;
    (match t.obs with Some o -> Metrics.add o.cancelled_total n | None -> ());
    emit t ~level:Events.Warn "cancelled" [ ("count", Events.fint n) ];
    t.in_flight <- t.in_flight - n;
    if t.in_flight = 0 then Condition.broadcast t.idle
  end

let record_error t exn bt =
  Mutex.lock t.mutex;
  if t.first_error = None then begin
    t.first_error <- Some (exn, bt);
    emit t ~level:Events.Error "error"
      [ ("error", Events.fstr (Printexc.to_string exn)) ];
    cancel_pending_locked t
  end;
  Mutex.unlock t.mutex

let run_thunk t item =
  match t.faults with
  | None -> item.thunk ()
  | Some f ->
    Fault.wrap f ~site:"pool" ~task:(string_of_int item.seq) ~attempt:1 item.thunk

(* Execute a job-scoped item: skip when the job has already failed, catch
   the escaping exception — [run_thunk] sits inside the try, so injected
   faults land here too — in the job's error slot, and settle the pending
   count whichever way it went. *)
let run_job_item t job item =
  Mutex.lock t.mutex;
  let skip = job.job_error <> None in
  if skip then job.skipped <- job.skipped + 1;
  Mutex.unlock t.mutex;
  (if not skip then
     try run_thunk t item
     with exn ->
       let bt = Printexc.get_raw_backtrace () in
       Mutex.lock t.mutex;
       if job.job_error = None then begin
         job.job_error <- Some (exn, bt);
         emit t ~level:Events.Error "job_error"
           [ ("error", Events.fstr (Printexc.to_string exn)) ]
       end;
       Mutex.unlock t.mutex);
  Mutex.lock t.mutex;
  job.pending <- job.pending - 1;
  if job.pending = 0 then Condition.broadcast job.job_done;
  Mutex.unlock t.mutex

(* Run a dequeued item on behalf of [worker], recording queue-wait and
   run-time when the pool is instrumented. *)
let item_span item =
  match item.scope with
  | Job_scope { span = Some sp; _ } -> Some sp
  | _ -> None

let run_item t ~worker item =
  let exec () =
    match item.scope with
    | Pool_scope -> (
      try run_thunk t item
      with exn -> record_error t exn (Printexc.get_raw_backtrace ()))
    | Job_scope job -> run_job_item t job item
  in
  match (t.obs, item_span item) with
  | None, None -> exec ()
  | obs, span ->
    (* One gettimeofday pair serves both the registry histograms and the
       job's span — tracing adds no extra clock reads. *)
    let t0 = Unix.gettimeofday () in
    let queue_s = t0 -. item.submitted in
    (match obs with Some o -> Metrics.observe o.queue_wait queue_s | None -> ());
    exec ();
    let run_s = Unix.gettimeofday () -. t0 in
    (match obs with
    | Some o ->
      Metrics.observe o.run_time run_s;
      Metrics.incr o.tasks_total;
      Metrics.incr o.worker_tasks.(worker mod Array.length o.worker_tasks)
    | None -> ());
    match span with
    | Some sp -> Geomix_obs.Span.note_exec sp ~queue_s ~run_s
    | None -> ()

let worker_loop t worker () =
  emit t ~level:Events.Debug "worker_start" [ ("worker", Events.fint worker) ];
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stopping do
      (match t.obs with Some o -> Metrics.incr o.idle_waits | None -> ());
      Condition.wait t.nonempty t.mutex
    done;
    if Queue.is_empty t.queue && t.stopping then begin
      Mutex.unlock t.mutex;
      emit t ~level:Events.Debug "worker_stop" [ ("worker", Events.fint worker) ]
    end
    else begin
      let item = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      run_item t ~worker item;
      Mutex.lock t.mutex;
      t.in_flight <- t.in_flight - 1;
      if t.in_flight = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ?obs ?bus ?faults ?num_workers () =
  let n =
    match num_workers with
    | Some n -> Stdlib.max 0 n
    | None -> Stdlib.max 0 (Domain.recommended_domain_count () - 1)
  in
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      in_flight = 0;
      stopping = false;
      first_error = None;
      cancelled = 0;
      next_seq = 0;
      workers = [||];
      serial = n = 0;
      faults;
      obs = Option.map (fun reg -> make_obs reg n) obs;
      bus;
    }
  in
  emit t "create" [ ("workers", Events.fint n) ];
  if n > 0 then t.workers <- Array.init n (fun i -> Domain.spawn (worker_loop t i));
  t

let num_workers t = Array.length t.workers

let cancelled t =
  Mutex.lock t.mutex;
  let n = t.cancelled in
  Mutex.unlock t.mutex;
  n

(* Dense index of the calling domain among the pool's workers; 0 for the
   caller domain of a serial pool (and for any foreign domain). *)
let self_index t =
  let self = Domain.self () in
  let n = Array.length t.workers in
  let rec find i =
    if i >= n then 0
    else if Domain.get_id t.workers.(i) = self then i
    else find (i + 1)
  in
  find 0

let submit_scoped t ~scope thunk =
  let traced =
    match scope with Job_scope { span = Some _; _ } -> true | _ -> false
  in
  let submitted =
    if t.obs <> None || traced then Unix.gettimeofday () else 0.
  in
  Mutex.lock t.mutex;
  assert (not t.stopping);
  Queue.push { thunk; submitted; seq = t.next_seq; scope } t.queue;
  t.next_seq <- t.next_seq + 1;
  t.in_flight <- t.in_flight + 1;
  (match t.obs with
  | Some o -> Metrics.set_max o.queue_peak (float_of_int (Queue.length t.queue))
  | None -> ());
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let submit t thunk = submit_scoped t ~scope:Pool_scope thunk

let drain_serial t =
  let rec next () =
    Mutex.lock t.mutex;
    let item = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
    Mutex.unlock t.mutex;
    match item with
    | None -> ()
    | Some item ->
      run_item t ~worker:0 item;
      Mutex.lock t.mutex;
      t.in_flight <- t.in_flight - 1;
      Mutex.unlock t.mutex;
      next ()
  in
  next ()

let reraise t =
  Mutex.lock t.mutex;
  let err = t.first_error in
  t.first_error <- None;
  Mutex.unlock t.mutex;
  match err with
  | None -> ()
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt

(* {2 Job-scoped execution} *)

let new_job ?span _t =
  { job_done = Condition.create (); pending = 0; job_error = None; skipped = 0; span }

let job_span job = job.span

let job_skipped job = job.skipped

let submit_job t job thunk =
  Mutex.lock t.mutex;
  job.pending <- job.pending + 1;
  Mutex.unlock t.mutex;
  submit_scoped t ~scope:(Job_scope job) thunk

let join_job t job =
  (if t.serial then
     (* No workers: run queued items on the caller until this job's thunks
        are all done.  Items of other jobs encountered on the way are
        executed too (they would starve otherwise); if another caller
        thread is mid-run on our last item, wait for its signal. *)
     let rec loop () =
       Mutex.lock t.mutex;
       if job.pending = 0 then Mutex.unlock t.mutex
       else if not (Queue.is_empty t.queue) then begin
         let item = Queue.pop t.queue in
         Mutex.unlock t.mutex;
         run_item t ~worker:0 item;
         Mutex.lock t.mutex;
         t.in_flight <- t.in_flight - 1;
         if t.in_flight = 0 then Condition.broadcast t.idle;
         Mutex.unlock t.mutex;
         loop ()
       end
       else begin
         Condition.wait job.job_done t.mutex;
         Mutex.unlock t.mutex;
         loop ()
       end
     in
     loop ()
   else begin
     Mutex.lock t.mutex;
     while job.pending > 0 do
       Condition.wait job.job_done t.mutex
     done;
     Mutex.unlock t.mutex
   end);
  Mutex.lock t.mutex;
  let err = job.job_error in
  job.job_error <- None;
  Mutex.unlock t.mutex;
  match err with
  | None -> ()
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt

let wait_idle t =
  if t.serial then drain_serial t
  else begin
    Mutex.lock t.mutex;
    while t.in_flight > 0 do
      Condition.wait t.idle t.mutex
    done;
    Mutex.unlock t.mutex
  end;
  reraise t

let shutdown t =
  if t.serial then drain_serial t
  else begin
    Mutex.lock t.mutex;
    if not t.stopping then begin
      t.stopping <- true;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.mutex;
      Array.iter Domain.join t.workers;
      emit t "shutdown" [ ("cancelled", Events.fint (cancelled t)) ]
    end
    else Mutex.unlock t.mutex
  end;
  reraise t

let with_pool ?obs ?bus ?faults ?num_workers f =
  let t = create ?obs ?bus ?faults ?num_workers () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
