module Metrics = Geomix_obs.Metrics

type item = { thunk : unit -> unit; submitted : float }

(* Metric cells resolved once at pool creation so the hot path never takes
   the registry lock. *)
type obs_state = {
  tasks_total : Metrics.counter;
  queue_wait : Metrics.histogram;
  run_time : Metrics.histogram;
  idle_waits : Metrics.counter;
  queue_peak : Metrics.gauge;
  worker_tasks : Metrics.counter array;
}

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  idle : Condition.t;
  queue : item Queue.t;
  mutable in_flight : int; (* queued + currently executing thunks *)
  mutable stopping : bool;
  mutable first_error : exn option;
  mutable workers : unit Domain.t array;
  serial : bool;
  obs : obs_state option;
}

let make_obs reg n =
  Metrics.set (Metrics.gauge reg "pool.workers") (float_of_int n);
  {
    tasks_total = Metrics.counter reg "pool.tasks";
    queue_wait = Metrics.histogram reg "pool.queue_wait_s";
    run_time = Metrics.histogram reg "pool.run_s";
    idle_waits = Metrics.counter reg "pool.idle_waits";
    queue_peak = Metrics.gauge reg "pool.queue_peak";
    worker_tasks =
      Array.init (Stdlib.max 1 n) (fun i ->
          Metrics.counter reg (Printf.sprintf "pool.worker%d.tasks" i));
  }

let record_error t exn =
  Mutex.lock t.mutex;
  if t.first_error = None then t.first_error <- Some exn;
  Mutex.unlock t.mutex

(* Run a dequeued item on behalf of [worker], recording queue-wait and
   run-time when the pool is instrumented. *)
let run_item t ~worker item =
  match t.obs with
  | None -> ( try item.thunk () with exn -> record_error t exn)
  | Some o ->
    let t0 = Unix.gettimeofday () in
    Metrics.observe o.queue_wait (t0 -. item.submitted);
    (try item.thunk () with exn -> record_error t exn);
    Metrics.observe o.run_time (Unix.gettimeofday () -. t0);
    Metrics.incr o.tasks_total;
    Metrics.incr o.worker_tasks.(worker mod Array.length o.worker_tasks)

let worker_loop t worker () =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stopping do
      (match t.obs with Some o -> Metrics.incr o.idle_waits | None -> ());
      Condition.wait t.nonempty t.mutex
    done;
    if Queue.is_empty t.queue && t.stopping then Mutex.unlock t.mutex
    else begin
      let item = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      run_item t ~worker item;
      Mutex.lock t.mutex;
      t.in_flight <- t.in_flight - 1;
      if t.in_flight = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ?obs ?num_workers () =
  let n =
    match num_workers with
    | Some n -> Stdlib.max 0 n
    | None -> Stdlib.max 0 (Domain.recommended_domain_count () - 1)
  in
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      in_flight = 0;
      stopping = false;
      first_error = None;
      workers = [||];
      serial = n = 0;
      obs = Option.map (fun reg -> make_obs reg n) obs;
    }
  in
  if n > 0 then t.workers <- Array.init n (fun i -> Domain.spawn (worker_loop t i));
  t

let num_workers t = Array.length t.workers

(* Dense index of the calling domain among the pool's workers; 0 for the
   caller domain of a serial pool (and for any foreign domain). *)
let self_index t =
  let self = Domain.self () in
  let n = Array.length t.workers in
  let rec find i =
    if i >= n then 0
    else if Domain.get_id t.workers.(i) = self then i
    else find (i + 1)
  in
  find 0

let submit t thunk =
  let submitted = match t.obs with Some _ -> Unix.gettimeofday () | None -> 0. in
  Mutex.lock t.mutex;
  assert (not t.stopping);
  Queue.push { thunk; submitted } t.queue;
  t.in_flight <- t.in_flight + 1;
  (match t.obs with
  | Some o -> Metrics.set_max o.queue_peak (float_of_int (Queue.length t.queue))
  | None -> ());
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let drain_serial t =
  let rec next () =
    Mutex.lock t.mutex;
    let item = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
    Mutex.unlock t.mutex;
    match item with
    | None -> ()
    | Some item ->
      run_item t ~worker:0 item;
      Mutex.lock t.mutex;
      t.in_flight <- t.in_flight - 1;
      Mutex.unlock t.mutex;
      next ()
  in
  next ()

let reraise t =
  Mutex.lock t.mutex;
  let err = t.first_error in
  t.first_error <- None;
  Mutex.unlock t.mutex;
  match err with None -> () | Some exn -> raise exn

let wait_idle t =
  if t.serial then drain_serial t
  else begin
    Mutex.lock t.mutex;
    while t.in_flight > 0 do
      Condition.wait t.idle t.mutex
    done;
    Mutex.unlock t.mutex
  end;
  reraise t

let shutdown t =
  if t.serial then drain_serial t
  else begin
    Mutex.lock t.mutex;
    if not t.stopping then begin
      t.stopping <- true;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.mutex;
      Array.iter Domain.join t.workers
    end
    else Mutex.unlock t.mutex
  end;
  reraise t

let with_pool ?obs ?num_workers f =
  let t = create ?obs ?num_workers () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
