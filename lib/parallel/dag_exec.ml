module Fault = Geomix_fault.Fault
module Retry = Geomix_fault.Retry

type obs = { on_task : id:int -> worker:int -> start:float -> stop:float -> unit }

(* Wrap the task body in the supervision envelope: seeded fault injection
   around every attempt, bounded retry between attempts, and — when the
   caller can snapshot a task's written footprint — restoration of that
   footprint before each re-execution, which is what makes re-running an
   in-place task sound. *)
let supervise ~faults ~retry ~capture ~task_name ~on_retry execute =
  match (faults, retry) with
  | None, None -> execute
  | _ ->
    let policy =
      match retry with Some p -> p | None -> { Retry.default with max_attempts = 1 }
    in
    fun id ->
      let name = task_name id in
      let restore =
        if policy.Retry.max_attempts > 1 then
          Option.map (fun cap -> cap id) capture
        else None
      in
      let on_retry =
        Option.map (fun h -> fun ~attempt exn -> h ~id ~attempt exn) on_retry
      in
      (* The task id is the jitter salt: casualties of one burst back off
         on decorrelated schedules instead of re-colliding in lockstep. *)
      Retry.run ~salt:id ?on_retry ?restore policy (fun ~attempt ->
        match faults with
        | Some f -> Fault.wrap f ~site:"exec" ~task:name ~attempt (fun () -> execute id)
        | None -> execute id)

let run ?obs ?task_name ?faults ?retry ?capture ?on_retry ?acquire ?release ?job
    ~pool ~num_tasks ~in_degree ~successors ~execute () =
  if Array.length in_degree <> num_tasks then
    invalid_arg "Dag_exec.run: in_degree length mismatch";
  let task_name = Option.value task_name ~default:string_of_int in
  let execute = supervise ~faults ~retry ~capture ~task_name ~on_retry execute in
  (* Residency envelope: pin the task's footprint (out-of-core stores load
     and pin tiles here) around every attempt — outside supervision, so a
     retry's capture/restore always sees resident tiles — and unpin on the
     way out even when the task fails. *)
  let execute =
    match (acquire, release) with
    | None, None -> execute
    | _ ->
      fun id ->
        (match acquire with Some a -> a id | None -> ());
        Fun.protect
          ~finally:(fun () -> match release with Some r -> r id | None -> ())
          (fun () -> execute id)
  in
  let execute =
    match obs with
    | None -> execute
    | Some { on_task } ->
      (* Wall-clock spans relative to this run's origin, so the events line
         up with the Trace exporters' expectation of a 0-based timeline.
         Under retry the span covers every attempt and backoff of the
         task. *)
      let origin = Unix.gettimeofday () in
      fun id ->
        let worker = Pool.self_index pool in
        let start = Unix.gettimeofday () -. origin in
        Fun.protect
          ~finally:(fun () ->
            on_task ~id ~worker ~start ~stop:(Unix.gettimeofday () -. origin))
          (fun () -> execute id)
  in
  let counters = Array.map (fun d -> Atomic.make d) in_degree in
  let completed = Atomic.make 0 in
  let failed = Atomic.make false in
  (* Under a job, thunks and the final wait are scoped to this run alone:
     concurrent runs sharing the pool neither await nor observe each
     other's tasks or errors. *)
  let submit =
    match job with
    | None -> Pool.submit pool
    | Some job -> Pool.submit_job pool job
  in
  let rec launch id =
    submit (fun () ->
      if not (Atomic.get failed) then begin
        (try execute id
         with exn ->
           Atomic.set failed true;
           Atomic.incr completed;
           raise exn);
        Atomic.incr completed;
        List.iter
          (fun s ->
            if Atomic.fetch_and_add counters.(s) (-1) = 1 then launch s)
          (successors id)
      end
      else Atomic.incr completed)
  in
  (* Roots must be read from the immutable in-degrees, not the live
     counters: a root submitted early may already be executing and
     decrementing successors while this scan is still running. *)
  let roots = ref [] in
  Array.iteri (fun id d -> if d = 0 then roots := id :: !roots) in_degree;
  if num_tasks > 0 && !roots = [] then
    invalid_arg "Dag_exec.run: no source task (cyclic graph?)";
  List.iter launch !roots;
  (match job with
  | None -> Pool.wait_idle pool
  | Some job -> Pool.join_job pool job);
  if (not (Atomic.get failed)) && Atomic.get completed <> num_tasks then
    invalid_arg "Dag_exec.run: not all tasks became ready (cyclic graph?)"

(* Invert the successor function once; each list comes back in ascending
   task order. *)
let predecessors ~num_tasks ~successors =
  let preds = Array.make num_tasks [] in
  for id = num_tasks - 1 downto 0 do
    List.iter (fun s -> preds.(s) <- id :: preds.(s)) (successors id)
  done;
  preds

let check_acyclic ~num_tasks ~successors =
  let indeg = Array.make num_tasks 0 in
  for id = 0 to num_tasks - 1 do
    List.iter (fun s -> indeg.(s) <- indeg.(s) + 1) (successors id)
  done;
  let queue = Queue.create () in
  Array.iteri (fun id d -> if d = 0 then Queue.push id queue) indeg;
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    incr visited;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.push s queue)
      (successors id)
  done;
  !visited = num_tasks
