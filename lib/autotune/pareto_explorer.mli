(** Stage 3 of the range-driven autotuner: the accuracy-vs-motion/energy
    frontier.

    For each accuracy target the explorer runs the full pipeline — pilot
    factorization under the norm-rule map with {!Range_tracker}
    instrumentation, {!Type_advisor} transfer demotion, a re-factorization
    under the advised map, {!Geomix_core.Comm_map.motion} accounting and a
    {!Geomix_core.Sim_cholesky} run for energy/makespan — and emits every
    point plus its Pareto-optimal subset in (STC bytes, measured residual).
    The sweep is a deterministic function of (seed, NT, nb, targets): the
    same inputs produce byte-identical JSON. *)

module Cm = Geomix_core.Comm_map
module Machine = Geomix_gpusim.Machine

type point = {
  target : float;         (** accuracy target u_req of this sweep point *)
  residual : float;       (** measured ‖A−LLᵀ‖/‖A‖ under the advised map *)
  residual_norm : float;  (** same, under the plain norm-rule map *)
  bound : float;          (** {!Type_advisor.residual_bound} at this target *)
  ok : bool;              (** both residuals within [bound] *)
  demoted_tiles : int;
  fp8_tiles : int;
  bytes_stc : float;      (** advised-map STC bytes on the wire *)
  bytes_stc_norm : float; (** norm-rule STC bytes *)
  bytes_fp64 : float;     (** all-FP64 reference bytes *)
  energy : float;         (** simulated joules, advised map *)
  energy_norm : float;
  makespan : float;       (** simulated seconds, advised map *)
  makespan_norm : float;
}

type frontier = {
  nt : int;
  nb : int;
  seed : int;
  machine : string;
  points : point list;   (** one per target, loosest target first *)
  pareto : point list;   (** non-dominated in (bytes_stc, residual) *)
}

val default_targets : float list
(** [1e-2 … 1e-12], six log-spaced accuracy targets. *)

val synthetic_element : seed:int -> int -> int -> float
(** Seeded SPD covariance-like element function (exponential decay with
    seed-jittered rate and diagonal) — closed-form, so sweeps are
    reproducible without carrying matrices around. *)

val sweep :
  ?pool:Geomix_parallel.Pool.t ->
  ?targets:float list ->
  ?machine:Machine.t ->
  ?element:(int -> int -> float) ->
  ?c:float ->
  nt:int ->
  nb:int ->
  seed:int ->
  unit ->
  frontier
(** Run the pipeline once per target (deduplicated, swept loosest-first).
    Defaults: {!default_targets}, a single-A100 machine,
    [synthetic_element ~seed], oracle constant [c = 64].
    @raise Invalid_argument on an empty target list. *)

val pareto_front : point list -> point list

val to_json : frontier -> Geomix_obs.Jsonlite.t
val to_json_string : frontier -> string
(** Schema ["geomix-autotune-frontier/1"]; deterministic byte-for-byte for
    equal frontiers. *)

val report_section : frontier -> Geomix_obs.Report.t -> unit
(** Append the frontier as a {!Geomix_obs.Report} section (GFM table plus
    the JSON attachment under key ["autotune_frontier"]). *)

val to_markdown : frontier -> string

(** {1 Acceptance predicates} *)

val all_within_bound : frontier -> bool
(** Every swept point's measured residuals satisfy the differential-oracle
    bound. *)

val fp8_motion_win : frontier -> bool
(** Some point ships at least one tile in FP8 with strictly fewer STC bytes
    than the norm-rule map, while staying within its accuracy bound. *)
