(** Stage 2 of the range-driven autotuner: evidence-backed format advice.

    The Higham–Mary norm rule picks kernel precisions from tile norms
    alone; the advisor closes the loop with the pilot measurements of
    {!Range_tracker} and proposes {e transfer} demotions the rule has no
    evidence for — down to the FP8 formats
    ({!Geomix_precision.Fpformat.scalar} [S_fp8_e4m3]/[S_fp8_e5m2]) — as a
    {!Geomix_core.Comm_map.override} of Algorithm 2's map.  A tile may ship
    in format [s] only when all three hold:

    - [s] moves strictly fewer bytes than what Algorithm 2 already ships;
    - the scalar-level norm rule admits it:
      u(s) · ‖A_ij‖·NT/‖A‖ ≤ u_req;
    - every magnitude the pilot observed in the tile lies in [s]'s
      {e normal} range, so the conversion is a plain u(s) relative
      rounding — never a saturation or a flush to zero (which also keeps
      the ABFT conversion-tolerant fingerprints valid).

    Advice is a pure function of (recorded ranges, precision map, target),
    hence deterministic and differential-testable. *)

module Fp = Geomix_precision.Fpformat
module Pm = Geomix_core.Precision_map
module Cm = Geomix_core.Comm_map

type tile_advice = {
  i : int;
  j : int;
  base_comm : Fp.scalar;     (** what Algorithm 2 ships *)
  advised_comm : Fp.scalar;  (** the demoted transfer format *)
  ratio : float;             (** measured ‖A_ij‖·NT/‖A‖ *)
}

type t = {
  u_req : float;
  pmap : Pm.t;
  base : Cm.t;   (** Algorithm 2's map, [Cm.compute pmap] *)
  cmap : Cm.t;   (** [base] with the advised overrides applied *)
  demotions : tile_advice list;  (** tiles where advice differs, row-major *)
  rule_worst : float;
      (** max over tiles of max(ε_kernel, u(shipped)) · ratio — the
          Higham–Mary product {!residual_bound} scales *)
}

val default_chain : Fp.scalar list
(** Candidate transfer formats, narrowest first:
    [\[S_fp8_e4m3; S_fp8_e5m2; S_fp16; S_bf16\]]. *)

val advise :
  ?chain:Fp.scalar list ->
  u_req:float ->
  ranges:Range_tracker.t ->
  pmap:Pm.t ->
  unit ->
  t
(** Requires the tracker to hold input mass
    ({!Range_tracker.observe_tiled} the pilot matrix first) — the
    Higham–Mary ratios come from it.
    @raise Invalid_argument on a tile-count mismatch or an un-primed
    tracker. *)

val demoted : t -> int
val fp8_tiles : t -> int
(** Demotions whose advised format is one of the FP8 scalars. *)

val residual_bound : ?c:float -> t -> float
(** [c · NT · rule_worst + 1e-13] (default [c = 64], matching
    [Geomix_verify.Oracle.residual_bound]): the differential-oracle bound
    the measured relative residual of a factorization under [cmap] must
    satisfy. *)
