module Fp = Geomix_precision.Fpformat
module Pm = Geomix_core.Precision_map
module Cm = Geomix_core.Comm_map

type tile_advice = {
  i : int;
  j : int;
  base_comm : Fp.scalar;
  advised_comm : Fp.scalar;
  ratio : float;
}

type t = {
  u_req : float;
  pmap : Pm.t;
  base : Cm.t;
  cmap : Cm.t;
  demotions : tile_advice list;
  rule_worst : float;
}

let default_chain = [ Fp.S_fp8_e4m3; Fp.S_fp8_e5m2; Fp.S_fp16; Fp.S_bf16 ]

let shipped = Cm.shipped

let advise ?(chain = default_chain) ~u_req ~ranges ~pmap () =
  let nt = Pm.nt pmap in
  if Range_tracker.nt ranges <> nt then invalid_arg "Type_advisor.advise: nt mismatch";
  let base = Cm.compute pmap in
  let gnorm = Range_tracker.input_norm ranges in
  if gnorm <= 0. then
    invalid_arg
      "Type_advisor.advise: tracker holds no input mass — observe_tiled the pilot \
       matrix before advising";
  let fnt = float_of_int nt in
  let ratio i j = Range_tracker.input_tile_norm ranges i j *. fnt /. gnorm in
  let demotions = ref [] in
  let pick i j =
    let cur = shipped base pmap i j in
    let st = Range_tracker.stats ranges i j in
    let admissible s =
      (* Strictly narrower on the wire, *)
      Fp.scalar_bytes s < Fp.scalar_bytes cur
      (* the norm rule at the scalar level: the tile's significance
         tolerates a u(s) relative perturbation within the accuracy
         target, *)
      && ratio i j *. Fp.scalar_unit_roundoff s <= u_req
      (* and magnitude evidence: everything the pilot observed stays in
         the format's NORMAL range (margin 2^mant over the subnormal
         spacing = the smallest normal value), so the conversion is a
         plain u(s) relative rounding — no saturation, no gradual
         underflow. *)
      && Range_tracker.fits ~margin:(0.5 /. Fp.scalar_unit_roundoff s) st s
    in
    match List.find_opt admissible chain with
    | Some s ->
      demotions :=
        { i; j; base_comm = cur; advised_comm = s; ratio = ratio i j } :: !demotions;
      Some s
    | None -> None
  in
  let cmap = Cm.override base pmap ~f:pick in
  (* Worst Higham–Mary product over kernel epsilons and advised transfer
     roundoffs — the quantity the differential oracle bounds the measured
     residual by. *)
  let rule_worst = ref 0. in
  for i = 0 to nt - 1 do
    for j = 0 to i do
      let e = Fp.rule_epsilon (Pm.get pmap i j) in
      let e =
        if nt - 1 - j > 0 then
          Float.max e (Fp.scalar_unit_roundoff (shipped cmap pmap i j))
        else e
      in
      let p = e *. ratio i j in
      if p > !rule_worst then rule_worst := p
    done
  done;
  { u_req; pmap; base; cmap; demotions = List.rev !demotions; rule_worst = !rule_worst }

let demoted t = List.length t.demotions

let fp8_tiles t =
  List.length
    (List.filter
       (fun d -> d.advised_comm = Fp.S_fp8_e4m3 || d.advised_comm = Fp.S_fp8_e5m2)
       t.demotions)

let residual_bound ?(c = 64.) t =
  (c *. float_of_int (Pm.nt t.pmap) *. t.rule_worst) +. 1e-13
