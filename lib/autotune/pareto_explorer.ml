module Fp = Geomix_precision.Fpformat
module Pm = Geomix_core.Precision_map
module Cm = Geomix_core.Comm_map
module Mp = Geomix_core.Mp_cholesky
module Sim = Geomix_core.Sim_cholesky
module Mat = Geomix_linalg.Mat
module Check = Geomix_linalg.Check
module Tiled = Geomix_tile.Tiled
module Machine = Geomix_gpusim.Machine
module Gpu_specs = Geomix_gpusim.Gpu_specs
module Jsonlite = Geomix_obs.Jsonlite
module Report = Geomix_obs.Report

type point = {
  target : float;
  residual : float;
  residual_norm : float;
  bound : float;
  ok : bool;
  demoted_tiles : int;
  fp8_tiles : int;
  bytes_stc : float;
  bytes_stc_norm : float;
  bytes_fp64 : float;
  energy : float;
  energy_norm : float;
  makespan : float;
  makespan_norm : float;
}

type frontier = {
  nt : int;
  nb : int;
  seed : int;
  machine : string;
  points : point list;
  pareto : point list;
}

let default_targets = [ 1e-2; 1e-4; 1e-6; 1e-8; 1e-10; 1e-12 ]

(* A seeded SPD covariance-like test matrix in closed form: exponential
   decay off the diagonal with seed-dependent decay rate and diagonal
   boost.  A pure function of (seed, i, j), so the whole sweep — and its
   JSON — is reproducible byte for byte. *)
let synthetic_element ~seed i j =
  let beta = 0.04 +. (0.002 *. float_of_int (seed land 7)) in
  let diag = if i = j then 1.0 +. (0.01 *. float_of_int ((seed lsr 3) land 15)) else 0. in
  diag +. exp (-.beta *. float_of_int (abs (i - j)))

(* Non-dominated subset under (bytes_stc, residual), both minimized. *)
let pareto_front points =
  List.filter
    (fun p ->
      not
        (List.exists
           (fun q ->
             q != p
             && q.bytes_stc <= p.bytes_stc
             && q.residual <= p.residual
             && (q.bytes_stc < p.bytes_stc || q.residual < p.residual))
           points))
    points

let explore_target ?pool ?(c = 64.) ~machine ~element ~nt ~nb target =
  let n = nt * nb in
  let a0 = Tiled.init ~n ~nb element in
  let dense = Tiled.to_dense a0 in
  let pmap = Pm.of_tiled ~u_req:target a0 in
  (* Pilot: one norm-rule factorization instrumented with the range
     tracker, primed with the input tiles so the advisor has the
     Higham–Mary ratios.  The pilot doubles as the norm-rule accuracy
     measurement. *)
  let tracker = Range_tracker.create ~nt in
  Range_tracker.observe_tiled tracker a0;
  let pilot = Tiled.copy a0 in
  Mp.factorize ?pool ~observe:(Range_tracker.hook tracker) ~pmap pilot;
  let residual_of t =
    let l = Tiled.to_dense t in
    Mat.zero_upper l;
    Check.cholesky_residual ~a:dense ~l
  in
  let residual_norm = residual_of pilot in
  (* Advise, then factorize under the advised transfer formats. *)
  let advice = Type_advisor.advise ~u_req:target ~ranges:tracker ~pmap () in
  let advised = Tiled.copy a0 in
  Mp.factorize ?pool ~cmap:advice.Type_advisor.cmap ~pmap advised;
  let residual = residual_of advised in
  let bound = Type_advisor.residual_bound ~c advice in
  (* Motion and simulated energy/makespan, advised vs norm-rule. *)
  let m_adv = Cm.motion advice.Type_advisor.cmap pmap ~nb in
  let m_norm = Cm.motion advice.Type_advisor.base pmap ~nb in
  let sim_adv = Sim.run ~cmap:advice.Type_advisor.cmap ~machine ~pmap ~nb () in
  let sim_norm = Sim.run ~machine ~pmap ~nb () in
  {
    target;
    residual;
    residual_norm;
    bound;
    ok = residual <= bound && residual_norm <= bound;
    demoted_tiles = Type_advisor.demoted advice;
    fp8_tiles = Type_advisor.fp8_tiles advice;
    bytes_stc = m_adv.Cm.bytes_stc;
    bytes_stc_norm = m_norm.Cm.bytes_stc;
    bytes_fp64 = m_norm.Cm.bytes_fp64;
    energy = sim_adv.Sim.energy.Geomix_gpusim.Energy.energy_joules;
    energy_norm = sim_norm.Sim.energy.Geomix_gpusim.Energy.energy_joules;
    makespan = sim_adv.Sim.makespan;
    makespan_norm = sim_norm.Sim.makespan;
  }

let sweep ?pool ?(targets = default_targets) ?machine ?element ?c ~nt ~nb ~seed () =
  if targets = [] then invalid_arg "Pareto_explorer.sweep: empty target list";
  let machine =
    match machine with Some m -> m | None -> Machine.single_gpu Gpu_specs.A100
  in
  let element =
    match element with Some f -> f | None -> synthetic_element ~seed
  in
  let targets = List.sort_uniq (fun a b -> compare b a) targets in
  let points =
    List.map (fun t -> explore_target ?pool ?c ~machine ~element ~nt ~nb t) targets
  in
  { nt; nb; seed; machine = machine.Machine.name; points; pareto = pareto_front points }

(* --- rendering --------------------------------------------------------- *)

let point_json p =
  Jsonlite.Obj
    [
      ("target", Jsonlite.Num p.target);
      ("residual", Jsonlite.Num p.residual);
      ("residual_norm_rule", Jsonlite.Num p.residual_norm);
      ("bound", Jsonlite.Num p.bound);
      ("ok", Jsonlite.Bool p.ok);
      ("demoted_tiles", Jsonlite.Num (float_of_int p.demoted_tiles));
      ("fp8_tiles", Jsonlite.Num (float_of_int p.fp8_tiles));
      ("bytes_stc", Jsonlite.Num p.bytes_stc);
      ("bytes_stc_norm_rule", Jsonlite.Num p.bytes_stc_norm);
      ("bytes_fp64", Jsonlite.Num p.bytes_fp64);
      ("energy_joules", Jsonlite.Num p.energy);
      ("energy_joules_norm_rule", Jsonlite.Num p.energy_norm);
      ("makespan_s", Jsonlite.Num p.makespan);
      ("makespan_s_norm_rule", Jsonlite.Num p.makespan_norm);
    ]

let to_json f =
  Jsonlite.Obj
    [
      ("schema", Jsonlite.Str "geomix-autotune-frontier/1");
      ("nt", Jsonlite.Num (float_of_int f.nt));
      ("nb", Jsonlite.Num (float_of_int f.nb));
      ("seed", Jsonlite.Num (float_of_int f.seed));
      ("machine", Jsonlite.Str f.machine);
      ("points", Jsonlite.Arr (List.map point_json f.points));
      ("pareto", Jsonlite.Arr (List.map point_json f.pareto));
    ]

let to_json_string f = Jsonlite.to_string ~indent:true (to_json f)

let on_pareto f p = List.exists (fun q -> q == p) f.pareto

let report_section f report =
  Report.section report "Autotune Pareto frontier";
  Report.para report
    (Printf.sprintf
       "Range-driven precision autotuner: NT=%d, nb=%d, seed=%d on %s. Each row \
        sweeps one accuracy target: a norm-rule pilot factorization is \
        range-instrumented, the type advisor demotes transfer formats (down to \
        FP8-E4M3/E5M2) where measured ranges and the scalar-level norm rule both \
        allow it, and the advised map is re-factorized and simulated. '*' marks \
        points on the accuracy-vs-motion Pareto front."
       f.nt f.nb f.seed f.machine);
  Report.table report
    ~headers:
      [
        "target"; "residual"; "bound"; "ok"; "demoted"; "fp8"; "STC bytes";
        "norm-rule bytes"; "energy (J)"; "front";
      ]
    (List.map
       (fun p ->
         [
           Printf.sprintf "%.0e" p.target;
           Printf.sprintf "%.3e" p.residual;
           Printf.sprintf "%.3e" p.bound;
           (if p.ok then "yes" else "NO");
           string_of_int p.demoted_tiles;
           string_of_int p.fp8_tiles;
           Printf.sprintf "%.0f" p.bytes_stc;
           Printf.sprintf "%.0f" p.bytes_stc_norm;
           Printf.sprintf "%.3e" p.energy;
           (if on_pareto f p then "*" else "");
         ])
       f.points);
  Report.attach report ~key:"autotune_frontier" (to_json f)

let to_markdown f =
  let r = Report.create ~title:"geomix autotune" in
  report_section f r;
  Report.to_markdown r

(* Acceptance predicates for the CLI exit contract and the test suite. *)

let all_within_bound f = List.for_all (fun p -> p.ok) f.points

let fp8_motion_win f =
  List.exists (fun p -> p.ok && p.fp8_tiles > 0 && p.bytes_stc < p.bytes_stc_norm) f.points
