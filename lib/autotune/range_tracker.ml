module Fpformat = Geomix_precision.Fpformat
module Mat = Geomix_linalg.Mat
module Tiled = Geomix_tile.Tiled

(* Unbiased binary64 exponents live in [-1074, 1023]; the histogram offsets
   them into one flat array per tile. *)
let e_lo = -1074
let e_hi = 1023
let e_span = e_hi - e_lo + 1

type tile = {
  mutable observations : int;
  mutable zeros : int;
  mutable nonfinite : int;
  mutable min_mag : float; (* +inf until a nonzero finite value is seen *)
  mutable max_mag : float;
  hist : int array; (* count per unbiased exponent, offset by -e_lo *)
  (* Input-pilot accumulators: Frobenius mass of the tile as first handed
     to the tracker, feeding the Higham–Mary ratio of the advisor. *)
  mutable input_sumsq : float;
}

type t = { nt : int; tiles : tile array }

let pidx i j = (i * (i + 1) / 2) + j

let create ~nt =
  if nt <= 0 then invalid_arg "Range_tracker.create: nt must be positive";
  {
    nt;
    tiles =
      Array.init
        (nt * (nt + 1) / 2)
        (fun _ ->
          {
            observations = 0;
            zeros = 0;
            nonfinite = 0;
            min_mag = infinity;
            max_mag = 0.;
            hist = Array.make e_span 0;
            input_sumsq = 0.;
          });
  }

let nt t = t.nt

let tile_of t i j =
  if j > i || j < 0 || i >= t.nt then invalid_arg "Range_tracker: tile out of range";
  t.tiles.(pidx i j)

let note tl x =
  tl.observations <- tl.observations + 1;
  if x = 0. then tl.zeros <- tl.zeros + 1
  else if not (Float.is_finite x) then tl.nonfinite <- tl.nonfinite + 1
  else begin
    let m = Float.abs x in
    if m < tl.min_mag then tl.min_mag <- m;
    if m > tl.max_mag then tl.max_mag <- m;
    (* x = f·2^e, |f| ∈ [0.5, 1): unbiased exponent e−1, i.e. 2^eu ≤ |x| < 2^(eu+1). *)
    let _, e = Float.frexp x in
    let b = e - 1 - e_lo in
    tl.hist.(b) <- tl.hist.(b) + 1
  end

let observe_value t ~i ~j x = note (tile_of t i j) x

let observe t ~i ~j m =
  let tl = tile_of t i j in
  for r = 0 to Mat.rows m - 1 do
    for c = 0 to Mat.cols m - 1 do
      note tl (Mat.get m r c)
    done
  done

let observe_input t ~i ~j m =
  let tl = tile_of t i j in
  for r = 0 to Mat.rows m - 1 do
    for c = 0 to Mat.cols m - 1 do
      let x = Mat.get m r c in
      tl.input_sumsq <- tl.input_sumsq +. (x *. x);
      note tl x
    done
  done

let observe_tiled t a =
  if Tiled.nt a <> t.nt then invalid_arg "Range_tracker.observe_tiled: nt mismatch";
  Tiled.iter_lower a (fun ~i ~j m -> observe_input t ~i ~j m)

let hook t ~i ~j m = observe t ~i ~j m

type stats = {
  observations : int;
  zeros : int;
  nonfinite : int;
  min_mag : float;
  max_mag : float;
  exponents : (int * int) list;
}

let stats t i j =
  let tl = tile_of t i j in
  let exponents = ref [] in
  for b = e_span - 1 downto 0 do
    if tl.hist.(b) > 0 then exponents := (b + e_lo, tl.hist.(b)) :: !exponents
  done;
  {
    observations = tl.observations;
    zeros = tl.zeros;
    nonfinite = tl.nonfinite;
    min_mag = tl.min_mag;
    max_mag = tl.max_mag;
    exponents = !exponents;
  }

let observations t =
  Array.fold_left (fun acc (tl : tile) -> acc + tl.observations) 0 t.tiles

let input_tile_norm t i j = sqrt (tile_of t i j).input_sumsq

let input_norm t =
  sqrt (Array.fold_left (fun acc tl -> acc +. tl.input_sumsq) 0. t.tiles)

(* A value in exponent bucket eu satisfies 2^eu ≤ |x| < 2^(eu+1).  The
   bucket flushes to zero under [round s] for certain iff its upper edge is
   at or below half the smallest subnormal: 2^(eu+1) ≤ 2^(emin−mant−1). *)
let underflows st s =
  (* tiny = 2^(emin−mant); recover its exponent with frexp. *)
  let tiny_e =
    let _, e = Float.frexp (Fpformat.scalar_min_subnormal s) in
    e - 1
  in
  List.fold_left
    (fun acc (eu, n) -> if eu + 1 <= tiny_e - 1 then acc + n else acc)
    0 st.exponents

(* A bucket overflows for certain iff its lower edge already exceeds the
   largest finite value: 2^eu > max(s). *)
let overflows st s =
  let max_v = Fpformat.scalar_max_value s in
  List.fold_left
    (fun acc (eu, n) -> if Float.ldexp 1. eu > max_v then acc + n else acc)
    0 st.exponents

let fits ?(margin = 1.) st s =
  st.nonfinite = 0
  && st.max_mag <= Fpformat.scalar_max_value s
  && (st.min_mag = infinity
     || st.min_mag >= margin *. Fpformat.scalar_min_subnormal s)
