(** Stage 1 of the range-driven autotuner: pilot instrumentation.

    A tracker records, per lower-triangle tile, the distribution of the
    values the tile actually holds during a pilot factorization — minimum
    and maximum nonzero magnitude, a histogram over unbiased binary
    exponents, zero and non-finite counts — via the [?observe] hooks of
    {!Geomix_core.Mp_cholesky.factorize} and
    {!Geomix_runtime.Dtd.execute}.  The mirror of the [scale_tracker] /
    instrumented-type pass of the mixed-precision-SDK pipeline
    (SNIPPETS.md #3): observation is read-only and the pilot run's tiles
    stay bit-identical.

    Per-tile accumulators are independent, so concurrent observation of
    {e distinct} tiles from pool workers is race-free (writes to the same
    tile are serialized by the factorization DAG). *)

module Fpformat = Geomix_precision.Fpformat

type t

val create : nt:int -> t
(** Fresh tracker for an [nt × nt] lower-triangular tile grid. *)

val nt : t -> int

(** {1 Observation} *)

val observe : t -> i:int -> j:int -> Geomix_linalg.Mat.t -> unit
(** Fold every entry of a working tile into tile (i, j)'s statistics. *)

val observe_value : t -> i:int -> j:int -> float -> unit

val observe_input : t -> i:int -> j:int -> Geomix_linalg.Mat.t -> unit
(** Like {!observe}, additionally accumulating the tile's Frobenius mass —
    use for the {e input} matrix before the pilot runs, so the advisor can
    evaluate the Higham–Mary ratio ‖A_ij‖·NT/‖A‖ from tracker state
    alone. *)

val observe_tiled : t -> Geomix_tile.Tiled.t -> unit
(** {!observe_input} over the whole lower triangle.
    @raise Invalid_argument on a tile-count mismatch. *)

val hook : t -> i:int -> j:int -> Geomix_linalg.Mat.t -> unit
(** The tracker as an [?observe] callback for
    {!Geomix_core.Mp_cholesky.factorize}. *)

(** {1 Recorded ranges} *)

type stats = {
  observations : int;  (** total values folded into this tile *)
  zeros : int;
  nonfinite : int;     (** NaN or ±inf observations *)
  min_mag : float;     (** smallest nonzero finite magnitude; [+inf] if none *)
  max_mag : float;     (** largest finite magnitude; [0.] if none *)
  exponents : (int * int) list;
      (** histogram: [(eu, count)] with 2{^eu} ≤ |x| < 2{^eu+1}, ascending
          [eu], only nonempty buckets.  Invariant:
          Σcounts + zeros + nonfinite = observations. *)
}

val stats : t -> int -> int -> stats

val observations : t -> int
(** Total observations across all tiles. *)

val input_tile_norm : t -> int -> int -> float
(** ‖A_ij‖_F of the mass recorded through {!observe_input}. *)

val input_norm : t -> float
(** ‖A‖_F over all {!observe_input} mass. *)

(** {1 Format queries} *)

val underflows : stats -> Fpformat.scalar -> int
(** Observations that would {e certainly} flush to zero when rounded to the
    format (whole exponent buckets at or below half the smallest
    subnormal — a conservative count, boundary buckets are not split). *)

val overflows : stats -> Fpformat.scalar -> int
(** Observations that would certainly overflow (saturate, for FP8) — whole
    buckets beyond the largest finite value. *)

val fits : ?margin:float -> stats -> Fpformat.scalar -> bool
(** No observed value leaves the format's finite range: nothing non-finite,
    [max_mag] at most the largest finite value, and every nonzero magnitude
    at least [margin] (default 1) times the smallest subnormal — so
    rounding neither saturates nor flushes, which also keeps the
    conversion-tolerant integrity fingerprints
    ({!Geomix_integrity.Checksum.matches_scalar}) valid for the format. *)
