(** Bounded-attempt supervision with exponential backoff.

    A {!policy} says how many times a task body may run, which exceptions
    are worth re-executing for, how long to wait between attempts, and on
    which clock.  The clock is an injected [sleep] function so the same
    policy runs against the real wall clock ([Unix.sleepf]) or a virtual
    one ({!virtual_clock}) that merely accumulates the simulated delay —
    tests of backoff arithmetic never actually sleep.

    Retrying a task is only sound when re-execution is idempotent.  For
    tasks that mutate data in place (every Cholesky update kernel), the
    caller provides a [restore] thunk capturing the task's written
    footprint before the first attempt; {!run} invokes it before every
    re-execution, which is what makes crash-after-write recovery exact —
    see {!Geomix_parallel.Dag_exec.run} and {!Geomix_runtime.Dtd.execute}. *)

type policy = {
  max_attempts : int;       (** total attempts, [>= 1]; [1] = no retry *)
  base_delay : float;       (** seconds before the first re-execution *)
  factor : float;           (** multiplier per further attempt *)
  max_delay : float;        (** backoff cap, seconds — holds even after
                                jitter *)
  jitter : float;           (** decorrelation fraction in [0, 1]: each
                                delay is scaled by a seeded draw from
                                [1 − jitter, 1]; [0] = deterministic *)
  sleep : float -> unit;    (** the clock backoff runs on *)
  retryable : exn -> bool;  (** exceptions worth re-executing for *)
}

val default : policy
(** 3 attempts, 1 ms base delay doubling to a 100 ms cap on the real clock
    ([Unix.sleepf]), jitter [0.5]; every exception retryable.  The jitter
    decorrelates contemporaries: when one fault (a stalled node, a burst
    of transients) fells many tasks at once, identical backoff would march
    them back in lockstep and re-collide them on the same resource; the
    per-task salt spreads the herd across half the backoff window. *)

val immediate : ?max_attempts:int -> unit -> policy
(** [default] with zero delays (no sleeping at all), zero jitter and
    [max_attempts] (default 3) — the policy test suites and chaos sweeps
    use. *)

val virtual_clock : unit -> (float -> unit) * (unit -> float)
(** [let sleep, elapsed = virtual_clock ()]: a simulated clock — [sleep d]
    adds [d] to an accumulator, [elapsed ()] reads it. *)

val delay_for : ?salt:int -> policy -> attempt:int -> float
(** Backoff after failed attempt [n] (1-based):
    [min max_delay (base_delay · factor^(n−1) · s)] where the jitter scale
    [s] is a pure hash of [(salt, n)] uniform in [1 − jitter, 1].  Without
    [?salt] (or with [jitter = 0]) the delay is the exact deterministic
    schedule; the cap applies after jitter, so [max_delay] is a hard
    ceiling either way. *)

val run :
  ?salt:int ->
  ?on_retry:(attempt:int -> exn -> unit) ->
  ?restore:(unit -> unit) ->
  policy ->
  (attempt:int -> 'a) ->
  'a
(** [run policy f] calls [f ~attempt:1]; while the attempt raises a
    [retryable] exception and attempts remain, it reports the failure to
    [on_retry], sleeps the backoff (jittered by [?salt] — executors pass a
    per-task identity so concurrent casualties decorrelate), runs
    [restore] (when given) to roll the written footprint back, and
    re-executes with the next attempt number.  A non-retryable exception,
    or the failure of the final attempt, propagates with its original
    backtrace.

    @raise Invalid_argument when [max_attempts < 1] or [jitter] is outside
    [0, 1]. *)
