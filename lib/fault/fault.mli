(** Deterministic, seeded fault injection for the execution stack.

    A {!t} is a {e plan}: a pure function from [(site, task name, attempt)]
    to a fault decision, derived by hashing the triple together with the
    plan's seed.  No global state and no OS scheduler enters the decision,
    so a chaos run is replayable bit-for-bit from its seed alone — the same
    tasks fault, in the same way, under any schedule and any worker count.
    The executors ({!Geomix_parallel.Pool}, {!Geomix_parallel.Dag_exec},
    {!Geomix_runtime.Dtd}) and the numeric layer
    ({!Geomix_core.Mp_cholesky}) accept a plan through an optional
    [?faults] argument.

    Three execution-level fault kinds, applied by {!wrap} around a task
    body, plus a numeric one ({!pivot_failure}) consumed by the
    mixed-precision Cholesky:

    - {!Transient}: the attempt raises {!Injected} {e before} the body
      runs — a task that died without side effects;
    - {!Crash_after_write}: the body runs to completion and {e then}
      {!Injected} is raised — a worker that crashed after applying its
      writes but before reporting completion.  Re-executing such a task
      without restoring its written footprint double-applies the work
      (fatal for accumulation kernels such as SYRK/GEMM), which is exactly
      what the snapshot/restore machinery of the supervised retry exists
      to prevent;
    - {!Stall}: the attempt is delayed by the plan's stall duration before
      the body runs — a slow worker, not an error;
    - {!Sdc}: silent data corruption — {e not} injected by {!wrap}, because
      an SDC by definition raises nothing.  A plan listing [Sdc] answers
      {!sdc_decide} instead, and the data-plane layer that owns the tiles
      ({!Geomix_core.Mp_cholesky}'s publish path, driven by
      [geomix chaos --sdc]) applies the returned corruption to the payload
      it just produced.  Detection is then entirely the integrity layer's
      job ({!Geomix_integrity.Guard}). *)

type kind = Transient | Crash_after_write | Stall | Sdc

type sdc =
  | Bitflip of { bit : int; lane : int }
      (** flip bit [bit] (44–62: high-order mantissa or exponent of the
          binary64 image) of element [lane mod n] of the payload *)
  | Tile_swap of { lane : int }
      (** replace the payload with another tile of the same shape — a
          misrouted message; [lane] selects the impostor *)

type disk_op = Dwrite | Dread
(** Which side of the store's syscall seam a {!disk_decide} query guards. *)

type disk =
  | Short_write of { frac : float }
      (** the spill image is truncated at [frac] of its bytes before the
          write "succeeds" — a torn write surviving to the atomic-rename
          seam.  The store's checksum header must catch it on read-back. *)
  | Enospc
      (** the write raises [ENOSPC] after creating the temp file — a full
          disk mid-spill. *)
  | Read_bit_flip of { bit : int; lane : int }
      (** on-disk bit rot: flip bit [bit mod 8] of byte [lane mod size] of
          the payload as it is read back. *)

exception Injected of { task : string; attempt : int; kind : kind }
(** The exception raised by injected [Transient] / [Crash_after_write]
    faults.  Registered with a human-readable printer. *)

type t

val plan :
  ?obs:Geomix_obs.Metrics.t ->
  ?bus:Geomix_obs.Events.t ->
  ?rate:float ->
  ?kinds:kind list ->
  ?pivot_rate:float ->
  ?disk_rate:float ->
  ?stall:float ->
  ?sleep:(float -> unit) ->
  ?fail_attempts:int ->
  ?only:(string -> bool) ->
  seed:int ->
  unit ->
  t
(** [plan ~seed ()] builds a fault plan.

    - [rate] (default [0.]): probability that a given [(site, task,
      attempt)] triple faults under {!wrap}; [1.] faults every eligible
      attempt.
    - [kinds] (default [[Transient]]): the fault kinds injected by
      {!wrap}; when several are given the kind is itself chosen by hash.
      [Sdc] is special: it never fires from {!wrap} (listing it does not
      dilute the hash choice among the execution kinds) and instead arms
      {!sdc_decide}.
    - [pivot_rate] (default [0.]): probability that {!pivot_failure}
      answers [true] — forced low-precision pivot failures, consumed by
      {!Geomix_core.Mp_cholesky}.
    - [disk_rate] (default [0.]): probability that {!disk_decide} grants a
      disk fault to a given [(op, path, attempt)] — consumed by the
      out-of-core tile store's syscall seam ({!Geomix_ooc.Store}).
    - [stall] (default [1e-3] s) and [sleep] (default [Unix.sleepf]): the
      duration and clock of [Stall] faults; pass a virtual sleep in tests.
    - [fail_attempts] (default [1]): attempts [<= fail_attempts] are
      eligible for injection.  The default makes every fault transient in
      the recovery sense — the first retry of a task is guaranteed clean —
      so bounded-attempt supervision always converges.  Raise it (with
      [rate = 1.]) to test give-up paths.
    - [only] (default: everything): task-name filter selecting the
      eligible tasks, e.g. [(fun n -> String.length n > 0 && n.[0] = 'G')]
      to fault only GEMMs.

    When built with [?bus], every granted injection is narrated on the
    telemetry bus at Warn (component ["fault"]): [inject] with
    [site]/[task]/[attempt]/[kind] fields, and [pivot] with
    [task]/[attempt].

    @raise Invalid_argument on rates outside [0, 1], a negative stall, a
    non-positive [fail_attempts] or an empty [kinds] list. *)

val seed : t -> int

val decide : t -> site:string -> task:string -> attempt:int -> kind option
(** The pure decision function: [Some kind] when this attempt of this task
    faults at this site.  Purely a hash of [(seed, site, task, attempt)] —
    no internal state advances, so executors at different sites draw
    independent, individually replayable decisions. *)

val wrap : t -> site:string -> task:string -> attempt:int -> (unit -> unit) -> unit
(** Run a task body under the plan: applies {!decide} and injects the
    chosen fault ([Transient] raises before the body, [Crash_after_write]
    after it, [Stall] sleeps then runs it).  Counts every injection. *)

val pivot_failure : t -> task:string -> attempt:int -> bool
(** Whether a forced pivot failure fires for this task/attempt (decided at
    the dedicated ["pivot"] site under [pivot_rate]).  Counts when
    [true]. *)

val sdc_decide : t -> task:string -> attempt:int -> sdc option
(** Whether this task's published payload is silently corrupted, and how
    (decided at the dedicated ["sdc"] site under [rate]; [None] unless the
    plan lists [Sdc]).  Like every decision, a pure hash of the plan seed
    and [(site, task, attempt)] — the same corruptions strike the same
    payloads on every replay.  Counts (as kind [Sdc]) and narrates on the
    bus when [Some]. *)

val sdc_name : sdc -> string

val disk_decide : t -> op:disk_op -> path:string -> attempt:int -> disk option
(** Whether this disk operation faults, and how (decided at the dedicated
    ["disk:write"] / ["disk:read"] site under [disk_rate]; [path] plays
    the task role in the hash so each spill file draws independently).
    Write ops draw {!Short_write} or {!Enospc}; read ops draw
    {!Read_bit_flip}.  Attempts above [fail_attempts] never fault, so the
    store's bounded rewrite/re-read retry always converges.  Counts and
    narrates on the bus when [Some]. *)

val disk_name : disk -> string

(** {1 Injection accounting}

    Monotonic counters over the plan's lifetime (atomic — {!wrap} is
    called from worker domains).  When the plan was built with [?obs],
    the same counts are mirrored into the registry as [fault.injected],
    [fault.transient], [fault.crashes], [fault.stalls], [fault.sdc] and
    [fault.pivots]. *)

val injected : t -> int
(** Total faults injected by {!wrap}, {!sdc_decide} and {!disk_decide}
    (all kinds). *)

val pivots : t -> int
(** Forced pivot failures granted by {!pivot_failure}. *)

val disk_faults : t -> int
(** Disk faults granted by {!disk_decide} (mirrored as [fault.disk]). *)

val by_kind : t -> (kind * int) list
(** Injection count per execution-level kind, in declaration order. *)

val kind_name : kind -> string
