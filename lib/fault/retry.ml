type policy = {
  max_attempts : int;
  base_delay : float;
  factor : float;
  max_delay : float;
  sleep : float -> unit;
  retryable : exn -> bool;
}

let default =
  {
    max_attempts = 3;
    base_delay = 1e-3;
    factor = 2.;
    max_delay = 0.1;
    sleep = Unix.sleepf;
    retryable = (fun _ -> true);
  }

let immediate ?(max_attempts = 3) () =
  { default with max_attempts; base_delay = 0.; max_delay = 0.; sleep = ignore }

let virtual_clock () =
  let elapsed = ref 0. in
  ((fun d -> elapsed := !elapsed +. d), fun () -> !elapsed)

let delay_for policy ~attempt =
  Float.min policy.max_delay
    (policy.base_delay *. (policy.factor ** float_of_int (attempt - 1)))

let run ?on_retry ?restore policy f =
  if policy.max_attempts < 1 then invalid_arg "Retry.run: max_attempts < 1";
  let rec go attempt =
    try f ~attempt
    with exn when attempt < policy.max_attempts && policy.retryable exn ->
      (match on_retry with Some h -> h ~attempt exn | None -> ());
      let d = delay_for policy ~attempt in
      if d > 0. then policy.sleep d;
      (match restore with Some r -> r () | None -> ());
      go (attempt + 1)
  in
  go 1
