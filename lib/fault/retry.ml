type policy = {
  max_attempts : int;
  base_delay : float;
  factor : float;
  max_delay : float;
  jitter : float;
  sleep : float -> unit;
  retryable : exn -> bool;
}

let default =
  {
    max_attempts = 3;
    base_delay = 1e-3;
    factor = 2.;
    max_delay = 0.1;
    jitter = 0.5;
    sleep = Unix.sleepf;
    retryable = (fun _ -> true);
  }

let immediate ?(max_attempts = 3) () =
  {
    default with
    max_attempts;
    base_delay = 0.;
    max_delay = 0.;
    jitter = 0.;
    sleep = ignore;
  }

let virtual_clock () =
  let elapsed = ref 0. in
  ((fun d -> elapsed := !elapsed +. d), fun () -> !elapsed)

(* splitmix64 finalizer, as in {!Fault} — the jitter draw is a pure
   function of (salt, attempt), so replays back off identically. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let u01 h = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

let jitter_draw ~salt ~attempt =
  u01 (mix64 (Int64.add (mix64 (Int64.of_int salt)) (Int64.of_int attempt)))

let delay_for ?salt policy ~attempt =
  let d = policy.base_delay *. (policy.factor ** float_of_int (attempt - 1)) in
  let d =
    match salt with
    | Some salt when policy.jitter > 0. ->
      d *. (1. -. (policy.jitter *. jitter_draw ~salt ~attempt))
    | _ -> d
  in
  Float.min policy.max_delay d

let run ?salt ?on_retry ?restore policy f =
  if policy.max_attempts < 1 then invalid_arg "Retry.run: max_attempts < 1";
  if not (policy.jitter >= 0. && policy.jitter <= 1.) then
    invalid_arg "Retry.run: jitter outside [0, 1]";
  let rec go attempt =
    try f ~attempt
    with exn when attempt < policy.max_attempts && policy.retryable exn ->
      (match on_retry with Some h -> h ~attempt exn | None -> ());
      let d = delay_for ?salt policy ~attempt in
      if d > 0. then policy.sleep d;
      (match restore with Some r -> r () | None -> ());
      go (attempt + 1)
  in
  go 1
