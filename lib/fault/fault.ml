module Metrics = Geomix_obs.Metrics
module Events = Geomix_obs.Events

type kind = Transient | Crash_after_write | Stall | Sdc

type sdc = Bitflip of { bit : int; lane : int } | Tile_swap of { lane : int }

type disk_op = Dwrite | Dread

type disk =
  | Short_write of { frac : float }
  | Enospc
  | Read_bit_flip of { bit : int; lane : int }

exception Injected of { task : string; attempt : int; kind : kind }

let kind_name = function
  | Transient -> "transient"
  | Crash_after_write -> "crash-after-write"
  | Stall -> "stall"
  | Sdc -> "sdc"

let sdc_name = function
  | Bitflip { bit; lane } -> Printf.sprintf "bitflip(bit %d, lane %d)" bit lane
  | Tile_swap { lane } -> Printf.sprintf "tile-swap(lane %d)" lane

let disk_name = function
  | Short_write { frac } -> Printf.sprintf "short-write(%.2f)" frac
  | Enospc -> "enospc"
  | Read_bit_flip { bit; lane } ->
    Printf.sprintf "read-bit-flip(bit %d, lane %d)" bit lane

let () =
  Printexc.register_printer (function
    | Injected { task; attempt; kind } ->
      Some
        (Printf.sprintf "Geomix_fault.Fault.Injected(%s fault in %s, attempt %d)"
           (kind_name kind) task attempt)
    | _ -> None)

type obs_state = {
  m_injected : Metrics.counter;
  m_transient : Metrics.counter;
  m_crashes : Metrics.counter;
  m_stalls : Metrics.counter;
  m_sdc : Metrics.counter;
  m_pivots : Metrics.counter;
  m_disk : Metrics.counter;
}

type t = {
  seed : int;
  rate : float;
  kinds : kind array;
  exec_kinds : kind array; (* [kinds] minus [Sdc] — what {!wrap} may inject *)
  pivot_rate : float;
  disk_rate : float;
  stall : float;
  sleep : float -> unit;
  fail_attempts : int;
  only : string -> bool;
  n_injected : int Atomic.t;
  n_pivots : int Atomic.t;
  n_disk : int Atomic.t;
  n_by_kind : int Atomic.t array; (* indexed like [kinds] *)
  obs : obs_state option;
  bus : Events.t option;
}

(* splitmix64 finalizer — the same mixing the Rng seeder uses, applied here
   as a stateless hash so decisions are a pure function of the plan seed
   and the (site, task, attempt) triple, independent of call order. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let hash_string h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := mix64 (Int64.add (Int64.mul !h 0x100000001b3L) (Int64.of_int (Char.code c))))
    s;
  !h

let hash_triple ~seed ~site ~task ~attempt =
  let h = mix64 (Int64.of_int seed) in
  let h = hash_string h site in
  let h = hash_string (mix64 h) task in
  mix64 (Int64.add h (Int64.of_int attempt))

(* Top 53 bits as a uniform draw in [0, 1). *)
let u01 h = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

let plan ?obs ?bus ?(rate = 0.) ?(kinds = [ Transient ]) ?(pivot_rate = 0.)
    ?(disk_rate = 0.) ?(stall = 1e-3) ?(sleep = Unix.sleepf) ?(fail_attempts = 1)
    ?(only = fun _ -> true) ~seed () =
  if not (rate >= 0. && rate <= 1.) then invalid_arg "Fault.plan: rate outside [0, 1]";
  if not (pivot_rate >= 0. && pivot_rate <= 1.) then
    invalid_arg "Fault.plan: pivot_rate outside [0, 1]";
  if not (disk_rate >= 0. && disk_rate <= 1.) then
    invalid_arg "Fault.plan: disk_rate outside [0, 1]";
  if not (stall >= 0.) then invalid_arg "Fault.plan: negative stall";
  if fail_attempts < 1 then invalid_arg "Fault.plan: fail_attempts < 1";
  if kinds = [] then invalid_arg "Fault.plan: empty kinds";
  {
    seed;
    rate;
    kinds = Array.of_list kinds;
    exec_kinds = Array.of_list (List.filter (fun k -> k <> Sdc) kinds);
    pivot_rate;
    disk_rate;
    stall;
    sleep;
    fail_attempts;
    only;
    n_injected = Atomic.make 0;
    n_pivots = Atomic.make 0;
    n_disk = Atomic.make 0;
    n_by_kind = Array.init (List.length kinds) (fun _ -> Atomic.make 0);
    obs =
      Option.map
        (fun reg ->
          {
            m_injected = Metrics.counter reg "fault.injected";
            m_transient = Metrics.counter reg "fault.transient";
            m_crashes = Metrics.counter reg "fault.crashes";
            m_stalls = Metrics.counter reg "fault.stalls";
            m_sdc = Metrics.counter reg "fault.sdc";
            m_pivots = Metrics.counter reg "fault.pivots";
            m_disk = Metrics.counter reg "fault.disk";
          })
        obs;
    bus;
  }

let seed t = t.seed

let decide t ~site ~task ~attempt =
  let n = Array.length t.exec_kinds in
  if n = 0 || t.rate <= 0. || attempt > t.fail_attempts || not (t.only task) then
    None
  else
    let h = hash_triple ~seed:t.seed ~site ~task ~attempt in
    if u01 h < t.rate then begin
      let idx = if n = 1 then 0 else Int64.to_int (Int64.rem (Int64.shift_right_logical (mix64 h) 1) (Int64.of_int n)) in
      Some t.exec_kinds.(idx)
    end
    else None

let kind_index t k =
  let rec go i = if t.kinds.(i) = k then i else go (i + 1) in
  go 0

let record t k =
  Atomic.incr t.n_injected;
  Atomic.incr t.n_by_kind.(kind_index t k);
  match t.obs with
  | None -> ()
  | Some o ->
    Metrics.incr o.m_injected;
    Metrics.incr
      (match k with
      | Transient -> o.m_transient
      | Crash_after_write -> o.m_crashes
      | Stall -> o.m_stalls
      | Sdc -> o.m_sdc)

let emit_inject t ~site ~task ~attempt kind =
  match t.bus with
  | None -> ()
  | Some bus ->
    Events.emit ~level:Events.Warn bus ~component:"fault" ~name:"inject"
      [
        ("site", Events.fstr site);
        ("task", Events.fstr task);
        ("attempt", Events.fint attempt);
        ("kind", Events.fstr (kind_name kind));
      ]

let wrap t ~site ~task ~attempt body =
  match decide t ~site ~task ~attempt with
  | None -> body ()
  | Some Transient ->
    record t Transient;
    emit_inject t ~site ~task ~attempt Transient;
    raise (Injected { task; attempt; kind = Transient })
  | Some Stall ->
    record t Stall;
    emit_inject t ~site ~task ~attempt Stall;
    t.sleep t.stall;
    body ()
  | Some Crash_after_write ->
    body ();
    record t Crash_after_write;
    emit_inject t ~site ~task ~attempt Crash_after_write;
    raise (Injected { task; attempt; kind = Crash_after_write })
  | Some Sdc -> assert false (* never drawn: [decide] picks from exec_kinds *)

let pivot_failure t ~task ~attempt =
  if t.pivot_rate <= 0. || attempt > t.fail_attempts || not (t.only task) then false
  else
    let h = hash_triple ~seed:t.seed ~site:"pivot" ~task ~attempt in
    let fire = u01 h < t.pivot_rate in
    if fire then begin
      Atomic.incr t.n_pivots;
      (match t.obs with None -> () | Some o -> Metrics.incr o.m_pivots);
      match t.bus with
      | None -> ()
      | Some bus ->
        Events.emit ~level:Events.Warn bus ~component:"fault" ~name:"pivot"
          [ ("task", Events.fstr task); ("attempt", Events.fint attempt) ]
    end;
    fire

let has_sdc t = Array.exists (fun k -> k = Sdc) t.kinds

let sdc_decide t ~task ~attempt =
  if (not (has_sdc t)) || t.rate <= 0. || attempt > t.fail_attempts
     || not (t.only task)
  then None
  else
    let h = hash_triple ~seed:t.seed ~site:"sdc" ~task ~attempt in
    if u01 h >= t.rate then None
    else begin
      let h2 = mix64 h in
      (* lane: a nonnegative index the injection site reduces modulo its own
         element count; bit: high-order mantissa (44..51) or exponent
         (52..62) positions, the ones a norm fingerprint must catch. *)
      let lane = Int64.to_int (Int64.shift_right_logical h2 40) in
      let sdc =
        if Int64.to_int (Int64.logand h2 3L) = 0 then Tile_swap { lane }
        else
          let bit =
            44 + Int64.to_int (Int64.rem (Int64.shift_right_logical h2 2) 19L)
          in
          Bitflip { bit; lane }
      in
      record t Sdc;
      (match t.bus with
      | None -> ()
      | Some bus ->
        Events.emit ~level:Events.Warn bus ~component:"fault" ~name:"inject"
          [
            ("site", Events.fstr "sdc");
            ("task", Events.fstr task);
            ("attempt", Events.fint attempt);
            ("kind", Events.fstr (kind_name Sdc));
            ("detail", Events.fstr (sdc_name sdc));
          ]);
      Some sdc
    end

let disk_op_name = function Dwrite -> "write" | Dread -> "read"

let disk_decide t ~op ~path ~attempt =
  if t.disk_rate <= 0. || attempt > t.fail_attempts || not (t.only path) then
    None
  else
    let site = "disk:" ^ disk_op_name op in
    let h = hash_triple ~seed:t.seed ~site ~task:path ~attempt in
    if u01 h >= t.disk_rate then None
    else begin
      let h2 = mix64 h in
      let fault =
        match op with
        | Dwrite ->
          if Int64.to_int (Int64.logand h2 1L) = 0 then Enospc
          else
            (* truncate somewhere strictly inside the image: [0.1, 0.9) of
               the payload survives, so both the header and the tail are
               exercised as torn points. *)
            Short_write { frac = 0.1 +. (0.8 *. u01 (mix64 h2)) }
        | Dread ->
          let lane = Int64.to_int (Int64.shift_right_logical h2 40) in
          let bit =
            44 + Int64.to_int (Int64.rem (Int64.shift_right_logical h2 2) 19L)
          in
          Read_bit_flip { bit; lane }
      in
      Atomic.incr t.n_disk;
      Atomic.incr t.n_injected;
      (match t.obs with
      | None -> ()
      | Some o ->
        Metrics.incr o.m_injected;
        Metrics.incr o.m_disk);
      (match t.bus with
      | None -> ()
      | Some bus ->
        Events.emit ~level:Events.Warn bus ~component:"fault" ~name:"inject"
          [
            ("site", Events.fstr site);
            ("task", Events.fstr path);
            ("attempt", Events.fint attempt);
            ("kind", Events.fstr "disk");
            ("detail", Events.fstr (disk_name fault));
          ]);
      Some fault
    end

let injected t = Atomic.get t.n_injected
let pivots t = Atomic.get t.n_pivots
let disk_faults t = Atomic.get t.n_disk

let by_kind t =
  Array.to_list (Array.mapi (fun i k -> (k, Atomic.get t.n_by_kind.(i))) t.kinds)
