(** Floating-point formats and bit-accurate software rounding.

    OCaml only has native IEEE-754 binary64, so every lower precision the
    paper exploits (FP32, TF32, FP16, BF16 and the tensor-core mixed modes
    FP16_32 / BF16_32) is emulated by rounding binary64 values to the target
    format with round-to-nearest-even, including subnormal handling and
    overflow to infinity.  This reproduces the *numerical* behaviour of the
    GPU kernels exactly at the value level.

    Two layers of vocabulary, mirroring the paper:

    - {!scalar} is a storage/transfer format — how many bytes a value takes
      on a wire or in memory and to which grid it rounds;
    - {!t} is a {e kernel} (operation) precision — the label attached to a
      tile by the adaptive strategy.  Mixed modes such as [Fp16_32] read
      FP16 inputs but accumulate in FP32, hence they map to {e two} scalars
      ({!input_scalar} and {!accum_scalar}). *)

(** {1 Scalar formats} *)

type scalar = S_fp64 | S_fp32 | S_tf32 | S_bf16 | S_fp16 | S_fp8_e4m3 | S_fp8_e5m2
(** [S_fp8_e4m3] and [S_fp8_e5m2] are the OCP 8-bit formats: E4M3
    (4 exponent / 3 mantissa bits, bias 7, max finite 448, no infinities,
    NaN only at S.1111.111) and E5M2 (5/2, bias 15, max finite 57344,
    IEEE-structured inf/NaN).  Both round to nearest even and {e saturate}
    on finite overflow instead of producing an infinity. *)

val all_scalars : scalar list

val round : scalar -> float -> float
(** [round s x] is the nearest value of format [s] to [x] (ties to even),
    with gradual underflow and overflow to [infinity] — except the FP8
    formats, which saturate finite overflow to ±{!scalar_max_value}.  NaN
    and infinities pass through; [round S_fp64] is the identity on finite
    floats. *)

val scalar_bytes : scalar -> int
(** Storage/transfer footprint per element (TF32 occupies 4 bytes). *)

val scalar_unit_roundoff : scalar -> float
(** Unit roundoff [u = 2^-p] where [p] is the significand length. *)

val scalar_min_subnormal : scalar -> float
(** Smallest positive representable value, [2^(emin - mant)] — the spacing
    of the subnormal grid.  Rounding a binary64 value into format [s] moves
    it by at most [u·|x|] in the normal range and by at most half this
    spacing under gradual underflow; the integrity layer's
    conversion-tolerant fingerprints use both bounds. *)

val scalar_max_value : scalar -> float
(** Largest finite representable magnitude. *)

val scalar_rank : scalar -> int
(** Total order by "amount of information":
    FP64 > FP32 > TF32 > FP16 > BF16 > FP8-E4M3 > FP8-E5M2.
    Used to pick the highest precision among successors in Algorithm 2. *)

val higher_scalar : scalar -> scalar -> scalar
(** Maximum under {!scalar_rank}. *)

val refines : scalar -> scalar -> bool
(** [refines t s] iff every value representable in [s] is also
    representable in [t] (at least as many significand bits, wider
    exponent range).  A partial order, not the {!scalar_rank} chain: FP16
    and BF16 are incomparable.  Rounding to [s] then to [t] is the
    identity on the result exactly when this holds. *)

val scalar_name : scalar -> string
val scalar_of_string : string -> scalar option
val pp_scalar : Format.formatter -> scalar -> unit

(** {1 FP8 byte codec}

    The two FP8 formats are small enough to enumerate, so the test suite
    round-trips every one of the 256 bit patterns through this codec. *)

val fp8_decode : scalar -> int -> float
(** [fp8_decode s b] is the value of bit pattern [b] (0–255, sign bit at
    0x80) under FP8 format [s].  E5M2 decodes S.11111.00 to ±inf and
    nonzero-mantissa all-ones-exponent patterns to NaN; E4M3 decodes only
    S.1111.111 to NaN.  Raises [Invalid_argument] if [s] is not an FP8
    scalar or [b] is out of range. *)

val fp8_encode : scalar -> float -> int
(** [fp8_encode s x] is the bit pattern of [round s x]: round to nearest
    even, saturate finite overflow to the max-finite pattern, preserve the
    sign of zeros.  NaN encodes to the canonical quiet NaN of [s]
    (E4M3: S.1111.111; E5M2: S.11111.10); ±inf to E5M2's infinity patterns
    and to E4M3's ±448 (it has none).  [fp8_decode s (fp8_encode s x) =
    round s x] for all non-NaN [x]. *)

(** {1 Kernel (operation) precisions} *)

type t = Fp64 | Fp32 | Tf32 | Fp16_32 | Bf16_32 | Fp16
(** The precision labels of the paper's adaptive framework.  The framework
    of Sections V–VI uses the chain [Fp64 > Fp32 > Fp16_32 > Fp16]; [Tf32]
    and [Bf16_32] are retained for the GEMM benchmark (Fig 1) and the BF16
    ablation. *)

val all : t list
val framework_chain : t list
(** [\[Fp64; Fp32; Fp16_32; Fp16\]] — the precisions admitted into the
    adaptive framework (Section IV conclusion). *)

val input_scalar : t -> scalar
(** Format of the A/B operands a kernel of this precision consumes
    ([Fp16_32] consumes FP16 inputs). *)

val accum_scalar : t -> scalar
(** Format in which products are accumulated ([Fp16_32], [Bf16_32] and
    [Tf32] accumulate in FP32; [Fp16] accumulates in FP16). *)

val storage_scalar : t -> scalar
(** Format in which a tile of this kernel precision is {e stored}: FP64
    tiles in FP64; everything else in FP32, because TRSM cannot execute
    below FP32 on the target GPUs (Section V, Fig 2b). *)

val rule_epsilon : t -> float
(** The [u_low] plugged into the Higham–Mary tile rule.  Format constants
    for pure formats; for [Fp16_32]/[Bf16_32] the paper determines the
    effective epsilon experimentally — we calibrate once with the emulated
    GEMM error study and fix 2{^-13} / 2{^-10}. *)

val rank : t -> int
(** Chain position, [Fp16] lowest. *)

val compare_precision : t -> t -> int
val name : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
