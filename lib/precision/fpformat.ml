type scalar = S_fp64 | S_fp32 | S_tf32 | S_bf16 | S_fp16 | S_fp8_e4m3 | S_fp8_e5m2

let all_scalars = [ S_fp64; S_fp32; S_tf32; S_bf16; S_fp16; S_fp8_e4m3; S_fp8_e5m2 ]

type spec = { mant : int; emin : int; emax : int }
(* [mant] is the number of explicitly stored significand bits; representable
   normal values are ±(1.m)·2^e with emin ≤ e ≤ emax, subnormals below. *)

let spec_of = function
  | S_fp64 -> { mant = 52; emin = -1022; emax = 1023 }
  | S_fp32 -> { mant = 23; emin = -126; emax = 127 }
  | S_tf32 -> { mant = 10; emin = -126; emax = 127 }
  | S_bf16 -> { mant = 7; emin = -126; emax = 127 }
  | S_fp16 -> { mant = 10; emin = -14; emax = 15 }
  | S_fp8_e4m3 -> { mant = 3; emin = -6; emax = 8 }
  | S_fp8_e5m2 -> { mant = 2; emin = -14; emax = 15 }

(* Round to nearest integer, ties to even.  [Float.round] rounds ties away
   from zero, so ties are detected and nudged back to the even neighbour. *)
let round_half_even x =
  let f = Float.round x in
  if Float.abs (x -. Float.trunc x) = 0.5 then
    if Float.rem f 2. <> 0. then f -. Float.copy_sign 1. x else f
  else f

let scalar_max_value = function
  (* OCP FP8 E4M3 reserves the all-ones pattern (S.1111.111) for NaN, so
     the largest finite magnitude is 1.110·2^8 = 448, not the generic
     (2 − 2^-3)·2^8 = 480. *)
  | S_fp8_e4m3 -> 448.
  | s ->
    let { mant; emax; _ } = spec_of s in
    Float.ldexp (2. -. Float.ldexp 1. (-mant)) emax

(* The FP8 formats saturate on finite overflow (OCP spec / saturating
   casts): anything rounding past the largest finite value clamps to it
   instead of producing an infinity E4M3 doesn't even have. *)
let saturating = function S_fp8_e4m3 | S_fp8_e5m2 -> true | _ -> false

let round s x =
  match s with
  | S_fp64 -> x
  | _ ->
    if x = 0. || not (Float.is_finite x) then x
    else begin
      let { mant; emin; emax } = spec_of s in
      let overflow () =
        if saturating s then Float.copy_sign (scalar_max_value s) x
        else Float.copy_sign infinity x
      in
      let _, e = Float.frexp x in
      (* x = m·2^e with |m| ∈ [0.5, 1); unbiased exponent is e-1 *)
      let eu = e - 1 in
      if eu > emax then overflow ()
      else begin
        let p = mant + 1 in
        let p = if eu < emin then p - (emin - eu) else p in
        if p <= 0 then begin
          (* Below the subnormal grid: round to 0 or the smallest subnormal. *)
          let tiny = Float.ldexp 1. (emin - mant) in
          if Float.abs x > tiny /. 2. then Float.copy_sign tiny x
          else Float.copy_sign 0. x
        end
        else begin
          let shift = p - e in
          let scaled = Float.ldexp x shift in
          let y = Float.ldexp (round_half_even scaled) (-shift) in
          if Float.abs y > scalar_max_value s then overflow () else y
        end
      end
    end

let scalar_bytes = function
  | S_fp64 -> 8
  | S_fp32 | S_tf32 -> 4
  | S_bf16 | S_fp16 -> 2
  | S_fp8_e4m3 | S_fp8_e5m2 -> 1

let scalar_unit_roundoff s =
  let { mant; _ } = spec_of s in
  Float.ldexp 1. (-(mant + 1))

let scalar_min_subnormal s =
  let { mant; emin; _ } = spec_of s in
  Float.ldexp 1. (emin - mant)

let scalar_rank = function
  | S_fp64 -> 7
  | S_fp32 -> 6
  | S_tf32 -> 5
  | S_fp16 -> 4
  | S_bf16 -> 3
  | S_fp8_e4m3 -> 2
  | S_fp8_e5m2 -> 1

let higher_scalar a b = if scalar_rank a >= scalar_rank b then a else b

(* [refines t s]: every value representable in [s] is also representable in
   [t] — at least as many significand bits and a wider exponent range on
   both sides.  Note this is a partial order, not the [scalar_rank] chain:
   FP16 and BF16 are incomparable (more mantissa vs more range). *)
let refines t s =
  let a = spec_of t and b = spec_of s in
  a.mant >= b.mant && a.emin <= b.emin && a.emax >= b.emax

let scalar_name = function
  | S_fp64 -> "FP64"
  | S_fp32 -> "FP32"
  | S_tf32 -> "TF32"
  | S_bf16 -> "BF16"
  | S_fp16 -> "FP16"
  | S_fp8_e4m3 -> "FP8_E4M3"
  | S_fp8_e5m2 -> "FP8_E5M2"

let scalar_of_string s =
  match String.uppercase_ascii s with
  | "FP64" -> Some S_fp64
  | "FP32" -> Some S_fp32
  | "TF32" -> Some S_tf32
  | "BF16" -> Some S_bf16
  | "FP16" -> Some S_fp16
  | "FP8_E4M3" | "E4M3" -> Some S_fp8_e4m3
  | "FP8_E5M2" | "E5M2" -> Some S_fp8_e5m2
  | _ -> None

let pp_scalar ppf s = Format.pp_print_string ppf (scalar_name s)

(* --- FP8 byte codec ---------------------------------------------------- *)

(* (exponent bits, mantissa bits, bias).  E4M3 follows the OCP variant: no
   infinities, NaN only at S.1111.111; E5M2 is IEEE-structured with ±inf at
   S.11111.00 and NaNs at nonzero mantissa under the all-ones exponent. *)
let fp8_params = function
  | S_fp8_e4m3 -> (4, 3, 7)
  | S_fp8_e5m2 -> (5, 2, 15)
  | s -> invalid_arg ("Fpformat.fp8: not an FP8 scalar: " ^ scalar_name s)

let fp8_decode s b =
  if b < 0 || b > 255 then invalid_arg "Fpformat.fp8_decode: byte out of range";
  let ebits, mbits, bias = fp8_params s in
  let sign = if b land 0x80 <> 0 then -1. else 1. in
  let e = (b lsr mbits) land ((1 lsl ebits) - 1) in
  let m = b land ((1 lsl mbits) - 1) in
  let e_ones = (1 lsl ebits) - 1 in
  if e = 0 then sign *. Float.ldexp (float_of_int m) (1 - bias - mbits)
  else if s = S_fp8_e5m2 && e = e_ones then
    if m = 0 then sign *. infinity else Float.copy_sign nan sign
  else if s = S_fp8_e4m3 && e = e_ones && m = (1 lsl mbits) - 1 then
    Float.copy_sign nan sign
  else sign *. Float.ldexp (float_of_int ((1 lsl mbits) lor m)) (e - bias - mbits)

let fp8_encode s x =
  let ebits, mbits, bias = fp8_params s in
  let e_ones = (1 lsl ebits) - 1 in
  let sign_bit = if Float.sign_bit x then 0x80 else 0 in
  if Float.is_nan x then
    (* Canonical quiet NaN: E4M3's single pattern; E5M2's quiet bit set. *)
    if s = S_fp8_e4m3 then sign_bit lor (e_ones lsl mbits) lor ((1 lsl mbits) - 1)
    else sign_bit lor (e_ones lsl mbits) lor (1 lsl (mbits - 1))
  else begin
    let y = round s x in
    if y = 0. then sign_bit
    else if Float.is_finite y then begin
      let m, e = Float.frexp (Float.abs y) in
      let eu = e - 1 in
      let emin = 1 - bias in
      if eu < emin then
        (* Subnormal: field = |y| / 2^(emin - mbits). *)
        sign_bit lor int_of_float (Float.ldexp (Float.abs y) (bias - 1 + mbits))
      else
        sign_bit
        lor ((eu + bias) lsl mbits)
        lor int_of_float (Float.ldexp (m -. 0.5) (mbits + 1))
    end
    else if s = S_fp8_e5m2 then sign_bit lor (e_ones lsl mbits) (* ±inf *)
    else sign_bit lor (e_ones lsl mbits) lor ((1 lsl mbits) - 2) (* ±448: E4M3 has no inf *)
  end

type t = Fp64 | Fp32 | Tf32 | Fp16_32 | Bf16_32 | Fp16

let all = [ Fp64; Fp32; Tf32; Fp16_32; Bf16_32; Fp16 ]
let framework_chain = [ Fp64; Fp32; Fp16_32; Fp16 ]

let input_scalar = function
  | Fp64 -> S_fp64
  | Fp32 -> S_fp32
  | Tf32 -> S_tf32
  | Fp16_32 -> S_fp16
  | Bf16_32 -> S_bf16
  | Fp16 -> S_fp16

let accum_scalar = function
  | Fp64 -> S_fp64
  | Fp32 | Tf32 | Fp16_32 | Bf16_32 -> S_fp32
  | Fp16 -> S_fp16

let storage_scalar = function Fp64 -> S_fp64 | Fp32 | Tf32 | Fp16_32 | Bf16_32 | Fp16 -> S_fp32

let rule_epsilon = function
  | Fp64 -> Float.ldexp 1. (-53)
  | Fp32 -> Float.ldexp 1. (-24)
  | Tf32 -> Float.ldexp 1. (-11)
  | Fp16_32 -> Float.ldexp 1. (-13)
  | Bf16_32 -> Float.ldexp 1. (-10)
  | Fp16 -> Float.ldexp 1. (-11)

let rank = function
  | Fp64 -> 6
  | Fp32 -> 5
  | Tf32 -> 4
  | Fp16_32 -> 3
  | Bf16_32 -> 2
  | Fp16 -> 1

let compare_precision a b = Int.compare (rank a) (rank b)

let name = function
  | Fp64 -> "FP64"
  | Fp32 -> "FP32"
  | Tf32 -> "TF32"
  | Fp16_32 -> "FP16_32"
  | Bf16_32 -> "BF16_32"
  | Fp16 -> "FP16"

let of_string s =
  match String.uppercase_ascii s with
  | "FP64" -> Some Fp64
  | "FP32" -> Some Fp32
  | "TF32" -> Some Tf32
  | "FP16_32" -> Some Fp16_32
  | "BF16_32" -> Some Bf16_32
  | "FP16" -> Some Fp16
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (name t)
