type scalar = S_fp64 | S_fp32 | S_tf32 | S_bf16 | S_fp16

let all_scalars = [ S_fp64; S_fp32; S_tf32; S_bf16; S_fp16 ]

type spec = { mant : int; emin : int; emax : int }
(* [mant] is the number of explicitly stored significand bits; representable
   normal values are ±(1.m)·2^e with emin ≤ e ≤ emax, subnormals below. *)

let spec_of = function
  | S_fp64 -> { mant = 52; emin = -1022; emax = 1023 }
  | S_fp32 -> { mant = 23; emin = -126; emax = 127 }
  | S_tf32 -> { mant = 10; emin = -126; emax = 127 }
  | S_bf16 -> { mant = 7; emin = -126; emax = 127 }
  | S_fp16 -> { mant = 10; emin = -14; emax = 15 }

(* Round to nearest integer, ties to even.  [Float.round] rounds ties away
   from zero, so ties are detected and nudged back to the even neighbour. *)
let round_half_even x =
  let f = Float.round x in
  if Float.abs (x -. Float.trunc x) = 0.5 then
    if Float.rem f 2. <> 0. then f -. Float.copy_sign 1. x else f
  else f

let scalar_max_value s =
  let { mant; emax; _ } = spec_of s in
  Float.ldexp (2. -. Float.ldexp 1. (-mant)) emax

let round s x =
  match s with
  | S_fp64 -> x
  | _ ->
    if x = 0. || not (Float.is_finite x) then x
    else begin
      let { mant; emin; emax } = spec_of s in
      let _, e = Float.frexp x in
      (* x = m·2^e with |m| ∈ [0.5, 1); unbiased exponent is e-1 *)
      let eu = e - 1 in
      if eu > emax then Float.copy_sign infinity x
      else begin
        let p = mant + 1 in
        let p = if eu < emin then p - (emin - eu) else p in
        if p <= 0 then begin
          (* Below the subnormal grid: round to 0 or the smallest subnormal. *)
          let tiny = Float.ldexp 1. (emin - mant) in
          if Float.abs x > tiny /. 2. then Float.copy_sign tiny x
          else Float.copy_sign 0. x
        end
        else begin
          let shift = p - e in
          let scaled = Float.ldexp x shift in
          let y = Float.ldexp (round_half_even scaled) (-shift) in
          if Float.abs y > scalar_max_value s then Float.copy_sign infinity x else y
        end
      end
    end

let scalar_bytes = function
  | S_fp64 -> 8
  | S_fp32 | S_tf32 -> 4
  | S_bf16 | S_fp16 -> 2

let scalar_unit_roundoff s =
  let { mant; _ } = spec_of s in
  Float.ldexp 1. (-(mant + 1))

let scalar_min_subnormal s =
  let { mant; emin; _ } = spec_of s in
  Float.ldexp 1. (emin - mant)

let scalar_rank = function
  | S_fp64 -> 5
  | S_fp32 -> 4
  | S_tf32 -> 3
  | S_fp16 -> 2
  | S_bf16 -> 1

let higher_scalar a b = if scalar_rank a >= scalar_rank b then a else b

(* [refines t s]: every value representable in [s] is also representable in
   [t] — at least as many significand bits and a wider exponent range on
   both sides.  Note this is a partial order, not the [scalar_rank] chain:
   FP16 and BF16 are incomparable (more mantissa vs more range). *)
let refines t s =
  let a = spec_of t and b = spec_of s in
  a.mant >= b.mant && a.emin <= b.emin && a.emax >= b.emax

let scalar_name = function
  | S_fp64 -> "FP64"
  | S_fp32 -> "FP32"
  | S_tf32 -> "TF32"
  | S_bf16 -> "BF16"
  | S_fp16 -> "FP16"

let scalar_of_string s =
  match String.uppercase_ascii s with
  | "FP64" -> Some S_fp64
  | "FP32" -> Some S_fp32
  | "TF32" -> Some S_tf32
  | "BF16" -> Some S_bf16
  | "FP16" -> Some S_fp16
  | _ -> None

let pp_scalar ppf s = Format.pp_print_string ppf (scalar_name s)

type t = Fp64 | Fp32 | Tf32 | Fp16_32 | Bf16_32 | Fp16

let all = [ Fp64; Fp32; Tf32; Fp16_32; Bf16_32; Fp16 ]
let framework_chain = [ Fp64; Fp32; Fp16_32; Fp16 ]

let input_scalar = function
  | Fp64 -> S_fp64
  | Fp32 -> S_fp32
  | Tf32 -> S_tf32
  | Fp16_32 -> S_fp16
  | Bf16_32 -> S_bf16
  | Fp16 -> S_fp16

let accum_scalar = function
  | Fp64 -> S_fp64
  | Fp32 | Tf32 | Fp16_32 | Bf16_32 -> S_fp32
  | Fp16 -> S_fp16

let storage_scalar = function Fp64 -> S_fp64 | Fp32 | Tf32 | Fp16_32 | Bf16_32 | Fp16 -> S_fp32

let rule_epsilon = function
  | Fp64 -> Float.ldexp 1. (-53)
  | Fp32 -> Float.ldexp 1. (-24)
  | Tf32 -> Float.ldexp 1. (-11)
  | Fp16_32 -> Float.ldexp 1. (-13)
  | Bf16_32 -> Float.ldexp 1. (-10)
  | Fp16 -> Float.ldexp 1. (-11)

let rank = function
  | Fp64 -> 6
  | Fp32 -> 5
  | Tf32 -> 4
  | Fp16_32 -> 3
  | Bf16_32 -> 2
  | Fp16 -> 1

let compare_precision a b = Int.compare (rank a) (rank b)

let name = function
  | Fp64 -> "FP64"
  | Fp32 -> "FP32"
  | Tf32 -> "TF32"
  | Fp16_32 -> "FP16_32"
  | Bf16_32 -> "BF16_32"
  | Fp16 -> "FP16"

let of_string s =
  match String.uppercase_ascii s with
  | "FP64" -> Some Fp64
  | "FP32" -> Some Fp32
  | "TF32" -> Some Tf32
  | "FP16_32" -> Some Fp16_32
  | "BF16_32" -> Some Bf16_32
  | "FP16" -> Some Fp16
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (name t)
