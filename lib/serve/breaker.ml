module Metrics = Geomix_obs.Metrics
module Events = Geomix_obs.Events

type config = {
  window : int;
  min_samples : int;
  queue_high : float;
  queue_low : float;
  miss_high : float;
  miss_low : float;
  hold_s : float;
  mc_chunk : int;
}

let default_config =
  {
    window = 32;
    min_samples = 8;
    queue_high = 0.75;
    queue_low = 0.25;
    miss_high = 0.5;
    miss_low = 0.1;
    hold_s = 1.0;
    mc_chunk = 4;
  }

type state = Closed | Open

(* A fixed-capacity ring of float samples with a running sum, so the
   sliding-window mean is O(1) per observation. *)
type ring = {
  buf : float array;
  mutable len : int;
  mutable next : int;
  mutable sum : float;
}

let ring n = { buf = Array.make n 0.; len = 0; next = 0; sum = 0. }

let ring_push r v =
  if r.len < Array.length r.buf then begin
    r.buf.(r.next) <- v;
    r.len <- r.len + 1;
    r.sum <- r.sum +. v
  end
  else begin
    r.sum <- r.sum -. r.buf.(r.next) +. v;
    r.buf.(r.next) <- v
  end;
  r.next <- (r.next + 1) mod Array.length r.buf

let ring_mean r = if r.len = 0 then 0. else r.sum /. float_of_int r.len

let ring_clear r =
  r.len <- 0;
  r.next <- 0;
  r.sum <- 0.

type t = {
  config : config;
  now : unit -> float;
  mutex : Mutex.t;
  queue : ring;
  misses : ring;
  mutable state : state;
  mutable tripped_at : float;
  mutable trips : int;
  m_trips : Metrics.counter option;
  m_open : Metrics.gauge option;
  m_queue_mean : Metrics.gauge option;
  m_miss_mean : Metrics.gauge option;
  bus : Events.t option;
}

let validate c =
  if c.window < 1 then invalid_arg "Breaker.create: window must be >= 1";
  if c.min_samples < 1 then invalid_arg "Breaker.create: min_samples must be >= 1";
  if c.mc_chunk < 1 then invalid_arg "Breaker.create: mc_chunk must be >= 1";
  if c.queue_low > c.queue_high then
    invalid_arg "Breaker.create: queue_low must be <= queue_high";
  if c.miss_low > c.miss_high then
    invalid_arg "Breaker.create: miss_low must be <= miss_high";
  if c.hold_s < 0. then invalid_arg "Breaker.create: hold_s must be >= 0"

let create ?obs ?bus ?(config = default_config) ~now () =
  validate config;
  {
    config;
    now;
    mutex = Mutex.create ();
    queue = ring config.window;
    misses = ring config.window;
    state = Closed;
    tripped_at = neg_infinity;
    trips = 0;
    m_trips = Option.map (fun r -> Metrics.counter r "serve.brownout_trips") obs;
    m_open = Option.map (fun r -> Metrics.gauge r "serve.brownout") obs;
    m_queue_mean =
      Option.map (fun r -> Metrics.gauge r "serve.brownout_queue_mean") obs;
    m_miss_mean =
      Option.map (fun r -> Metrics.gauge r "serve.brownout_miss_mean") obs;
    bus;
  }

let config t = t.config

let emit t name fields =
  match t.bus with
  | None -> ()
  | Some bus ->
    Events.emit ~level:Events.Warn bus ~component:"serve" ~name fields

let set_open_gauge t v =
  match t.m_open with None -> () | Some g -> Metrics.set g v

(* Lock held.  Re-evaluate the state against the window means.  Trip on
   either signal crossing its high-water mark; recover only when the hold
   time has elapsed AND both signals sit at or below their low-water marks
   — the hysteresis that keeps a saturated server from flapping. *)
let update_locked t =
  let qm = ring_mean t.queue and mm = ring_mean t.misses in
  (* Export the window means the trip decisions are made from — an
     operator watching the scrape sees the same signals the breaker
     sees. *)
  (match t.m_queue_mean with None -> () | Some g -> Metrics.set g qm);
  (match t.m_miss_mean with None -> () | Some g -> Metrics.set g mm);
  match t.state with
  | Closed ->
    let q_trip =
      t.queue.len >= t.config.min_samples && qm >= t.config.queue_high
    in
    let m_trip =
      t.misses.len >= t.config.min_samples && mm >= t.config.miss_high
    in
    if q_trip || m_trip then begin
      t.state <- Open;
      t.tripped_at <- t.now ();
      t.trips <- t.trips + 1;
      (match t.m_trips with None -> () | Some c -> Metrics.incr c);
      set_open_gauge t 1.;
      emit t "brownout_trip"
        [
          ("queue_mean", Events.fnum qm);
          ("miss_rate", Events.fnum mm);
          ("trips", Events.fint t.trips);
        ]
    end
  | Open ->
    if
      t.now () -. t.tripped_at >= t.config.hold_s
      && qm <= t.config.queue_low
      && mm <= t.config.miss_low
    then begin
      t.state <- Closed;
      (* A fresh window after recovery: stale saturation samples must not
         re-trip the breaker on the first post-recovery observation. *)
      ring_clear t.queue;
      ring_clear t.misses;
      set_open_gauge t 0.;
      emit t "brownout_recover"
        [ ("queue_mean", Events.fnum qm); ("miss_rate", Events.fnum mm) ]
    end

let note_queue t ~frac =
  Mutex.lock t.mutex;
  ring_push t.queue (Float.max 0. (Float.min 1. frac));
  update_locked t;
  Mutex.unlock t.mutex

let note_outcome t ~missed =
  Mutex.lock t.mutex;
  ring_push t.misses (if missed then 1. else 0.);
  update_locked t;
  Mutex.unlock t.mutex

let state t =
  Mutex.lock t.mutex;
  (* Time alone may satisfy the recovery condition; re-check so readers
     never see a stale Open after the window has gone quiet. *)
  update_locked t;
  let s = t.state in
  Mutex.unlock t.mutex;
  s

let tripped t = state t = Open

let trips t =
  Mutex.lock t.mutex;
  let n = t.trips in
  Mutex.unlock t.mutex;
  n

let mc_chunk t ~replicates =
  if replicates < 1 then replicates
  else if tripped t then min replicates t.config.mc_chunk
  else replicates
