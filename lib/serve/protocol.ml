module J = Geomix_obs.Jsonlite
module Covariance = Geomix_geostat.Covariance

(* {2 Wire model} *)

type priority = High | Normal | Low

let priority_rank = function High -> 0 | Normal -> 1 | Low -> 2
let priority_name = function High -> "high" | Normal -> "normal" | Low -> "low"

let priority_of_string = function
  | "high" -> Some High
  | "normal" -> Some Normal
  | "low" -> Some Low
  | _ -> None

type spec = {
  n : int;
  nb : int;
  u_req : float;
  family : Covariance.family;
  sigma2 : float;
  beta : float;
  nu : float;
  nugget : float;
  locs_seed : int;
  data_seed : int;
}

let family_name = function
  | Covariance.Sqexp -> "sqexp"
  | Covariance.Matern -> "matern"
  | Covariance.Powexp -> "powexp"
  | Covariance.Spherical -> "spherical"

let family_of_string = function
  | "sqexp" -> Some Covariance.Sqexp
  | "matern" -> Some Covariance.Matern
  | "powexp" -> Some Covariance.Powexp
  | "spherical" -> Some Covariance.Spherical
  | _ -> None

type stats_format = Stats_json | Stats_prom

let stats_format_name = function Stats_json -> "json" | Stats_prom -> "prom"

let stats_format_of_string = function
  | "json" -> Some Stats_json
  | "prom" -> Some Stats_prom
  | _ -> None

type payload =
  | Ping
  | Health
  | Stats of stats_format
  | Likelihood of spec
  | Predict of { spec : spec; n_new : int; pred_seed : int }
  | Mc_batch of { spec : spec; replicates : int }
  | Shutdown

type request = {
  id : string;
  priority : priority;
  timeout_s : float option;
  payload : payload;
}

let op_name = function
  | Ping -> "ping"
  | Health -> "health"
  | Stats _ -> "stats"
  | Likelihood _ -> "likelihood"
  | Predict _ -> "predict"
  | Mc_batch _ -> "mc_batch"
  | Shutdown -> "shutdown"

type status = Clean | Escalated of int | Indefinite | Corrupt_recovered of int

type error_code = Saturated | Deadline_exceeded | Bad_request | Internal

let error_code_name = function
  | Saturated -> "saturated"
  | Deadline_exceeded -> "deadline"
  | Bad_request -> "bad_request"
  | Internal -> "internal"

let error_code_of_string = function
  | "saturated" -> Some Saturated
  | "deadline" -> Some Deadline_exceeded
  | "bad_request" -> Some Bad_request
  | "internal" -> Some Internal
  | _ -> None

type health = {
  inflight : int;
  queued : int;
  served : int;
  draining : bool;
  brownout : bool;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  recovered : int;
  escalated : int;
  shed : int;
}

type reply =
  | Pong
  | Health_r of health
  | Stats_r of { format : stats_format; body : string }
  | Likelihood_r of {
      loglik : float;
      log_det : float;
      quad_form : float;
      status : status;
      cache_hit : bool;
    }
  | Predict_r of { mean : float array; variance : float array; cache_hit : bool }
  | Mc_r of {
      logliks : float array;
      mean_loglik : float;
      status : status;
      cache_hit : bool;
    }
  | Shutdown_r
  | Error_r of { code : error_code; message : string }

(* The per-request telemetry footer: the span summary plus the derived
   quantities the server computes at reply time.  It rides on the reply
   frame under a ["telemetry"] key, so untraced clients decode frames
   exactly as before. *)
type footer = {
  f_span : Geomix_obs.Span.summary;
  f_energy_j : float;
  f_cp_s : float;
  f_wall_s : float;
  f_cache_hit : bool;
  f_sdc_detected : int;
  f_sdc_recovered : int;
  f_status : string;
}

type frame =
  | Progress of { id : string; completed : int; total : int }
  | Reply of { id : string; reply : reply; footer : footer option }

(* {2 Encoding} *)

let spec_to_json s =
  J.Obj
    [
      ("n", J.Num (float_of_int s.n));
      ("nb", J.Num (float_of_int s.nb));
      ("u_req", J.Num s.u_req);
      ("family", J.Str (family_name s.family));
      ("sigma2", J.Num s.sigma2);
      ("beta", J.Num s.beta);
      ("nu", J.Num s.nu);
      ("nugget", J.Num s.nugget);
      ("locs_seed", J.Num (float_of_int s.locs_seed));
      ("data_seed", J.Num (float_of_int s.data_seed));
    ]

let request_to_json r =
  let base =
    [
      ("id", J.Str r.id);
      ("op", J.Str (op_name r.payload));
      ("priority", J.Str (priority_name r.priority));
    ]
  in
  let timeout =
    match r.timeout_s with None -> [] | Some t -> [ ("timeout_s", J.Num t) ]
  in
  let body =
    match r.payload with
    | Ping | Health | Shutdown -> []
    | Stats fmt -> [ ("format", J.Str (stats_format_name fmt)) ]
    | Likelihood spec -> [ ("spec", spec_to_json spec) ]
    | Predict { spec; n_new; pred_seed } ->
      [
        ("spec", spec_to_json spec);
        ("n_new", J.Num (float_of_int n_new));
        ("pred_seed", J.Num (float_of_int pred_seed));
      ]
    | Mc_batch { spec; replicates } ->
      [ ("spec", spec_to_json spec); ("replicates", J.Num (float_of_int replicates)) ]
  in
  J.Obj (base @ timeout @ body)

(* An indefinite evaluation carries loglik = -inf and log_det/quad_form =
   nan; Jsonlite emits all three as [null], so the ["status"] field — not
   the numbers — is the authoritative encoding of indefiniteness.  Decoding
   reconstructs the canonical non-finite values from it. *)
let status_name = function
  | Clean -> "clean"
  | Escalated _ -> "escalated"
  | Indefinite -> "indefinite"
  | Corrupt_recovered _ -> "corrupt_recovered"

let status_fields = function
  | Clean -> [ ("status", J.Str "clean") ]
  | Escalated k ->
    [ ("status", J.Str "escalated"); ("escalations", J.Num (float_of_int k)) ]
  | Indefinite -> [ ("status", J.Str "indefinite") ]
  | Corrupt_recovered k ->
    [
      ("status", J.Str "corrupt_recovered");
      ("recoveries", J.Num (float_of_int k));
    ]

let float_array_to_json a =
  J.Arr (Array.to_list a |> List.map (fun v -> J.Num v))

let reply_to_json ~id reply =
  let base op = [ ("id", J.Str id); ("kind", J.Str "reply"); ("op", J.Str op) ] in
  match reply with
  | Pong -> J.Obj (base "ping")
  | Health_r h ->
    J.Obj
      (base "health"
      @ [
          ("inflight", J.Num (float_of_int h.inflight));
          ("queued", J.Num (float_of_int h.queued));
          ("served", J.Num (float_of_int h.served));
          ("draining", J.Bool h.draining);
          ("brownout", J.Bool h.brownout);
          ("cache_hits", J.Num (float_of_int h.cache_hits));
          ("cache_misses", J.Num (float_of_int h.cache_misses));
          ("cache_evictions", J.Num (float_of_int h.cache_evictions));
          ("recovered", J.Num (float_of_int h.recovered));
          ("escalated", J.Num (float_of_int h.escalated));
          ("shed", J.Num (float_of_int h.shed));
        ])
  | Stats_r { format; body } ->
    J.Obj
      (base "stats"
      @ [ ("format", J.Str (stats_format_name format)); ("body", J.Str body) ])
  | Shutdown_r -> J.Obj (base "shutdown")
  | Error_r { code; message } ->
    J.Obj
      (base "error"
      @ [ ("code", J.Str (error_code_name code)); ("message", J.Str message) ])
  | Likelihood_r { loglik; log_det; quad_form; status; cache_hit } ->
    J.Obj
      (base "likelihood" @ status_fields status
      @ [
          ("loglik", J.Num loglik);
          ("log_det", J.Num log_det);
          ("quad_form", J.Num quad_form);
          ("cache_hit", J.Bool cache_hit);
        ])
  | Predict_r { mean; variance; cache_hit } ->
    J.Obj
      (base "predict"
      @ [
          ("mean", float_array_to_json mean);
          ("variance", float_array_to_json variance);
          ("cache_hit", J.Bool cache_hit);
        ])
  | Mc_r { logliks; mean_loglik; status; cache_hit } ->
    J.Obj
      (base "mc_batch" @ status_fields status
      @ [
          ("logliks", float_array_to_json logliks);
          ("mean_loglik", J.Num mean_loglik);
          ("cache_hit", J.Bool cache_hit);
        ])

let footer_to_json f =
  J.Obj
    [
      ("span", Geomix_obs.Span.summary_to_json f.f_span);
      ("energy_j", J.Num f.f_energy_j);
      ("cp_s", J.Num f.f_cp_s);
      ("wall_s", J.Num f.f_wall_s);
      ("cache_hit", J.Bool f.f_cache_hit);
      ("sdc_detected", J.Num (float_of_int f.f_sdc_detected));
      ("sdc_recovered", J.Num (float_of_int f.f_sdc_recovered));
      ("status", J.Str f.f_status);
    ]

let frame_to_json = function
  | Reply { id; reply; footer } -> (
    match (reply_to_json ~id reply, footer) with
    | J.Obj kvs, Some f -> J.Obj (kvs @ [ ("telemetry", footer_to_json f) ])
    | json, _ -> json)
  | Progress { id; completed; total } ->
    J.Obj
      [
        ("id", J.Str id);
        ("kind", J.Str "progress");
        ("completed", J.Num (float_of_int completed));
        ("total", J.Num (float_of_int total));
      ]

(* {2 Decoding} *)

let ( let* ) = Result.bind

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str_field name j =
  let* v = field name j in
  match J.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S is not a string" name)

let num_field name j =
  let* v = field name j in
  match J.to_float v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "field %S is not a number" name)

let int_field name j =
  let* x = num_field name j in
  if Float.is_integer x then Ok (int_of_float x)
  else Error (Printf.sprintf "field %S is not an integer" name)

let bool_field name j =
  let* v = field name j in
  match v with
  | J.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S is not a bool" name)

(* A numeric field whose value may have been a non-finite float: Jsonlite
   emitted it as [null], so [null] (or absence) decodes to [fallback]. *)
let lossy_num_field name ~fallback j =
  match J.member name j with
  | None | Some J.Null -> Ok fallback
  | Some v -> (
    match J.to_float v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "field %S is not a number" name))

let spec_of_json j =
  let* n = int_field "n" j in
  let* nb = int_field "nb" j in
  let* u_req = num_field "u_req" j in
  let* family_s = str_field "family" j in
  let* family =
    match family_of_string family_s with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "unknown family %S" family_s)
  in
  let* sigma2 = num_field "sigma2" j in
  let* beta = num_field "beta" j in
  let* nu = num_field "nu" j in
  let* nugget = num_field "nugget" j in
  let* locs_seed = int_field "locs_seed" j in
  let* data_seed = int_field "data_seed" j in
  Ok { n; nb; u_req; family; sigma2; beta; nu; nugget; locs_seed; data_seed }

let request_of_json j =
  let* id = str_field "id" j in
  let* op = str_field "op" j in
  let* priority =
    match J.member "priority" j with
    | None -> Ok Normal
    | Some v -> (
      match Option.bind (J.to_str v) priority_of_string with
      | Some p -> Ok p
      | None -> Error "bad priority")
  in
  let* timeout_s =
    match J.member "timeout_s" j with
    | None -> Ok None
    | Some v -> (
      match J.to_float v with
      | Some t -> Ok (Some t)
      | None -> Error "field \"timeout_s\" is not a number")
  in
  let spec () = Result.bind (field "spec" j) spec_of_json in
  let* payload =
    match op with
    | "ping" -> Ok Ping
    | "health" -> Ok Health
    | "stats" ->
      let* format =
        match J.member "format" j with
        | None -> Ok Stats_json
        | Some v -> (
          match Option.bind (J.to_str v) stats_format_of_string with
          | Some f -> Ok f
          | None -> Error "bad stats format")
      in
      Ok (Stats format)
    | "shutdown" -> Ok Shutdown
    | "likelihood" ->
      let* s = spec () in
      Ok (Likelihood s)
    | "predict" ->
      let* s = spec () in
      let* n_new = int_field "n_new" j in
      let* pred_seed = int_field "pred_seed" j in
      Ok (Predict { spec = s; n_new; pred_seed })
    | "mc_batch" ->
      let* s = spec () in
      let* replicates = int_field "replicates" j in
      Ok (Mc_batch { spec = s; replicates })
    | other -> Error (Printf.sprintf "unknown op %S" other)
  in
  Ok { id; priority; timeout_s; payload }

let status_of_json j =
  let* s = str_field "status" j in
  match s with
  | "clean" -> Ok Clean
  | "indefinite" -> Ok Indefinite
  | "escalated" ->
    let* k = int_field "escalations" j in
    Ok (Escalated k)
  | "corrupt_recovered" ->
    let* k = int_field "recoveries" j in
    Ok (Corrupt_recovered k)
  | other -> Error (Printf.sprintf "unknown status %S" other)

let float_array_of_json name j =
  let* v = field name j in
  match J.to_list v with
  | None -> Error (Printf.sprintf "field %S is not an array" name)
  | Some items ->
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      (* [null] entries are non-finite logliks (indefinite replicates). *)
      | J.Null :: rest -> go (neg_infinity :: acc) rest
      | item :: rest -> (
        match J.to_float item with
        | Some x -> go (x :: acc) rest
        | None -> Error (Printf.sprintf "field %S has a non-number entry" name))
    in
    go [] items

let reply_of_json j =
  let* op = str_field "op" j in
  match op with
  | "ping" -> Ok Pong
  | "health" ->
    let* inflight = int_field "inflight" j in
    let* queued = int_field "queued" j in
    let* served = int_field "served" j in
    let* draining = bool_field "draining" j in
    let* brownout = bool_field "brownout" j in
    let* cache_hits = int_field "cache_hits" j in
    let* cache_misses = int_field "cache_misses" j in
    let* cache_evictions = int_field "cache_evictions" j in
    let* recovered = int_field "recovered" j in
    let* escalated = int_field "escalated" j in
    let* shed = int_field "shed" j in
    Ok
      (Health_r
         {
           inflight;
           queued;
           served;
           draining;
           brownout;
           cache_hits;
           cache_misses;
           cache_evictions;
           recovered;
           escalated;
           shed;
         })
  | "stats" ->
    let* format_s = str_field "format" j in
    let* format =
      match stats_format_of_string format_s with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "unknown stats format %S" format_s)
    in
    let* body = str_field "body" j in
    Ok (Stats_r { format; body })
  | "shutdown" -> Ok Shutdown_r
  | "error" ->
    let* code_s = str_field "code" j in
    let* code =
      match error_code_of_string code_s with
      | Some c -> Ok c
      | None -> Error (Printf.sprintf "unknown error code %S" code_s)
    in
    let* message = str_field "message" j in
    Ok (Error_r { code; message })
  | "likelihood" ->
    let* status = status_of_json j in
    let* cache_hit = bool_field "cache_hit" j in
    let* loglik = lossy_num_field "loglik" ~fallback:neg_infinity j in
    let* log_det = lossy_num_field "log_det" ~fallback:nan j in
    let* quad_form = lossy_num_field "quad_form" ~fallback:nan j in
    Ok (Likelihood_r { loglik; log_det; quad_form; status; cache_hit })
  | "predict" ->
    let* mean = float_array_of_json "mean" j in
    let* variance = float_array_of_json "variance" j in
    let* cache_hit = bool_field "cache_hit" j in
    Ok (Predict_r { mean; variance; cache_hit })
  | "mc_batch" ->
    let* status = status_of_json j in
    let* cache_hit = bool_field "cache_hit" j in
    let* logliks = float_array_of_json "logliks" j in
    let* mean_loglik = lossy_num_field "mean_loglik" ~fallback:neg_infinity j in
    Ok (Mc_r { logliks; mean_loglik; status; cache_hit })
  | other -> Error (Printf.sprintf "unknown reply op %S" other)

let frame_of_json j =
  let* id = str_field "id" j in
  let* kind = str_field "kind" j in
  match kind with
  | "progress" ->
    let* completed = int_field "completed" j in
    let* total = int_field "total" j in
    Ok (Progress { id; completed; total })
  | "reply" ->
    let* reply = reply_of_json j in
    let* footer =
      match J.member "telemetry" j with
      | None -> Ok None
      | Some fj ->
        let* span =
          Result.bind (field "span" fj) Geomix_obs.Span.summary_of_json
        in
        let* energy_j = num_field "energy_j" fj in
        let* cp_s = num_field "cp_s" fj in
        let* wall_s = num_field "wall_s" fj in
        let* cache_hit = bool_field "cache_hit" fj in
        let* sdc_detected = int_field "sdc_detected" fj in
        let* sdc_recovered = int_field "sdc_recovered" fj in
        let* status = str_field "status" fj in
        Ok
          (Some
             {
               f_span = span;
               f_energy_j = energy_j;
               f_cp_s = cp_s;
               f_wall_s = wall_s;
               f_cache_hit = cache_hit;
               f_sdc_detected = sdc_detected;
               f_sdc_recovered = sdc_recovered;
               f_status = status;
             })
    in
    Ok (Reply { id; reply; footer })
  | other -> Error (Printf.sprintf "unknown frame kind %S" other)

(* {2 Framing} *)

let max_frame_bytes = 16 * 1024 * 1024

let write_frame oc json =
  let body = J.to_string ~indent:false json in
  let n = String.length body in
  if n > max_frame_bytes then
    invalid_arg "Protocol.write_frame: frame exceeds 16 MiB";
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set hdr 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set hdr 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr (n land 0xff));
  output_bytes oc hdr;
  output_string oc body;
  flush oc

let read_frame ic =
  (* The header is read with an explicit loop so a connection closed
     cleanly between frames (0 bytes) stays distinguishable from one cut
     mid-header (1–3 bytes) — the latter is a framing error, like a
     truncated body. *)
  let hdr = Bytes.create 4 in
  let rec fill pos =
    if pos >= 4 then 4
    else
      match input ic hdr pos (4 - pos) with 0 -> pos | k -> fill (pos + k)
  in
  match fill 0 with
  | exception Sys_error m -> Error m
  | 0 -> Error "eof"
  | p when p < 4 -> Error "truncated frame"
  | _ ->
    let b k = Char.code (Bytes.get hdr k) in
    let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if n > max_frame_bytes then Error "oversized frame"
    else (
      match really_input_string ic n with
      | exception End_of_file -> Error "truncated frame"
      | exception Sys_error m -> Error m
      | body -> J.of_string body)

let frame_to_string json =
  let body = J.to_string ~indent:false json in
  let n = String.length body in
  if n > max_frame_bytes then
    invalid_arg "Protocol.frame_to_string: frame exceeds 16 MiB";
  let buf = Buffer.create (n + 4) in
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_string buf body;
  Buffer.contents buf
