(** Shape-keyed memo cache of the expensive per-problem artifacts.

    The costly pre-work of a request — sites, the Higham–Mary precision
    map, Algorithm 2's communication map, the static Cholesky DAG and the
    range-driven autotune advice — is a pure function of the problem
    {e shape} (everything in {!Protocol.spec} except [data_seed]), so the
    server memoizes it: requests that differ only in their measurement
    seed share one build.

    {b Single-flight.}  Concurrent misses on one key build {e once}: the
    first requester installs a building marker and constructs outside the
    lock; the rest wait on a condition variable and read the published
    artifact.  Exactly one miss is counted per distinct key under any
    interleaving — what makes the smoke workload's hit rate deterministic
    enough for the CI gate.  If the build raises, the marker is withdrawn,
    waiters retry (one becomes the next builder) and the exception
    propagates to the requester that built.

    {b No torn publication.}  The table is only mutated under the cache
    mutex, and an artifact becomes visible only as one fully-constructed
    immutable record; a reader can never observe a partially-built entry
    (the interleaving-replay suite in [test_serve] drives exactly this
    through {!Geomix_verify.Explore}).

    Eviction is LRU over published entries ([Building] markers are never
    evicted — a waiter is parked on them), with hit/miss/eviction counters
    on {!Geomix_obs.Metrics} ([serve.cache.*]) and [cache_hit] /
    [cache_miss] / [cache_evict] events on the telemetry bus (component
    ["serve"]). *)

type key = {
  n : int;
  nb : int;
  u_req : float;
  family : Geomix_geostat.Covariance.family;
  sigma2 : float;
  beta : float;
  nu : float;
  nugget : float;
  locs_seed : int;
}

val key_of_spec : Protocol.spec -> key
(** The shape of a request: every field of the spec but [data_seed]. *)

val key_label : key -> string
(** Compact human-readable form for events and logs. *)

type artifact = {
  locs : Geomix_geostat.Locations.t;
      (** Morton-sorted sites, deterministic from [(n, locs_seed)] *)
  pmap : Geomix_core.Precision_map.t;   (** norm-rule kernel precisions *)
  cmap : Geomix_core.Comm_map.t;        (** Algorithm 2's transfer map *)
  dag : Geomix_runtime.Cholesky_dag.t;  (** static task graph, [nt × nt] *)
  advice : Geomix_autotune.Type_advisor.t;
      (** range-driven transfer advice from the input-mass pilot *)
}

type stats = { hits : int; misses : int; evictions : int }

type t

val create :
  ?obs:Geomix_obs.Metrics.t ->
  ?bus:Geomix_obs.Events.t ->
  ?capacity:int ->
  unit ->
  t
(** [capacity] (default 32) bounds the number of {e published} entries.
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : t -> int

val find_or_build :
  ?span:Geomix_obs.Span.t -> t -> key -> build:(key -> artifact) -> artifact * bool
(** The memoized lookup; the boolean is [true] on a hit.  [build] runs
    outside the cache lock and must be a pure function of the key.  With
    [?span], the [cache_hit]/[cache_miss] event carries the request's
    trace correlation fields ({!Geomix_obs.Span.fields}). *)

val find : t -> key -> artifact option
(** Non-blocking probe; refreshes recency on a hit but never waits on a
    concurrent build and never counts toward hit/miss statistics. *)

val invalidate : t -> key -> bool
(** Remove a {e published} entry, counting [serve.cache.invalidations]
    and emitting a [cache_invalidate] event; [true] when one was removed.
    The server calls this when a factorization escalated — a degraded
    artifact must not be laundered into later requests through a warm
    hit.  A concurrent [Building] marker is left untouched (its builder
    owns publication) and yields [false]. *)

val length : t -> int
(** Published entries currently resident. *)

val stats : t -> stats

val hit_fraction : t -> float
(** [hits / (hits + misses)]; 0 before any lookup. *)
