(** Overload brown-out breaker: turns saturation into graceful degradation.

    The server feeds the breaker two sliding-window signals — the admission
    queue's depth (as a fraction of its capacity, one sample per request)
    and the deadline-miss outcome of every completed request.  When either
    window mean crosses its high-water mark the breaker {e trips} ([Open]):
    the server sheds [Low]-priority requests at admission with a
    [Saturated] reply instead of queueing them, and caps the replicate
    fan-out of Monte-Carlo batches ({!mc_chunk}) so one big batch cannot
    monopolize the pool while it is already behind.

    Recovery is hysteretic: the breaker closes only after [hold_s] seconds
    on the injected clock {e and} both window means have fallen to their
    (strictly lower) low-water marks, and the windows are cleared on
    recovery so stale saturation samples cannot immediately re-trip it.
    All decisions run on the injected [now] clock — the whole policy is
    deterministic under {!Geomix_fault.Retry.virtual_clock}.

    Thread-safe: observations arrive concurrently from handler threads. *)

type config = {
  window : int;        (** sliding-window capacity, samples *)
  min_samples : int;   (** samples required in a window before it can trip *)
  queue_high : float;  (** mean queue-depth fraction that trips *)
  queue_low : float;   (** mean the queue must fall to before recovery *)
  miss_high : float;   (** deadline-miss rate that trips *)
  miss_low : float;    (** miss rate required for recovery *)
  hold_s : float;      (** minimum seconds Open before recovery is allowed *)
  mc_chunk : int;      (** Monte-Carlo fan-out cap while Open *)
}

val default_config : config
(** window 32, min_samples 8, queue 0.75/0.25, miss 0.5/0.1, hold 1 s,
    mc_chunk 4. *)

type state = Closed | Open

type t

val create :
  ?obs:Geomix_obs.Metrics.t ->
  ?bus:Geomix_obs.Events.t ->
  ?config:config ->
  now:(unit -> float) ->
  unit ->
  t
(** [?obs] registers [serve.brownout_trips] (counter), [serve.brownout]
    (gauge, 1 while Open) and the sliding-window signal gauges
    [serve.brownout_queue_mean] / [serve.brownout_miss_mean] (the exact
    means the trip decisions are made from, refreshed on every
    observation); [?bus] narrates [brownout_trip] / [brownout_recover] at
    Warn on component ["serve"].
    @raise Invalid_argument on a non-positive window, [min_samples] or
    [mc_chunk], a low-water mark above its high-water mark, or a negative
    [hold_s]. *)

val config : t -> config

val note_queue : t -> frac:float -> unit
(** Record one admission-time queue-depth sample (clamped to [0, 1]). *)

val note_outcome : t -> missed:bool -> unit
(** Record one request completion: [missed = true] when it expired. *)

val state : t -> state
(** Current state; re-evaluates time-based recovery, so a quiet window
    plus an elapsed hold reads [Closed] without a new observation. *)

val tripped : t -> bool
(** [state t = Open]. *)

val trips : t -> int
(** Closed→Open transitions over the breaker's lifetime. *)

val mc_chunk : t -> replicates:int -> int
(** The replicate fan-out to use for a batch of [replicates]: the batch
    size when Closed, [min replicates config.mc_chunk] when Open. *)
