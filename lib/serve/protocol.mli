(** Wire protocol of the model service: typed requests/replies, their
    {!Geomix_obs.Jsonlite} codecs, and length-prefixed framing.

    One message on the socket is a {e frame}: a 4-byte big-endian payload
    length followed by that many bytes of compact JSON.  A client sends one
    request frame and reads frames back until it sees the terminal [reply]
    frame for its request id; a long-running Monte-Carlo batch interleaves
    [progress] frames before the reply.

    {b Non-finite floats.}  An indefinite likelihood carries
    [loglik = -inf] and [log_det]/[quad_form] = [nan]; JSON has no
    representation for either, so {!Geomix_obs.Jsonlite} emits them as
    [null].  The [status] field is therefore the authoritative encoding —
    decoders reconstruct the canonical non-finite values from it, and a
    codec round-trip is exact on every reply the server produces. *)

module Covariance = Geomix_geostat.Covariance

(** {1 Requests} *)

type priority = High | Normal | Low

val priority_rank : priority -> int
(** 0 (high) … 2 (low) — the admission queue orders by rank, then FIFO. *)

val priority_name : priority -> string
val priority_of_string : string -> priority option

(** The problem shape: everything a request needs to (re)construct its
    covariance problem deterministically.  [locs_seed] seeds the site
    generator, [data_seed] the measurement synthesis — two requests sharing
    every field but [data_seed] share all cacheable artifacts. *)
type spec = {
  n : int;            (** sites / matrix order *)
  nb : int;           (** tile size *)
  u_req : float;      (** accuracy target of the norm rule *)
  family : Covariance.family;
  sigma2 : float;
  beta : float;
  nu : float;
  nugget : float;
  locs_seed : int;
  data_seed : int;
}

val family_name : Covariance.family -> string
val family_of_string : string -> Covariance.family option

(** Body format of a [Stats] request/reply: the metrics-registry JSON
    snapshot ({!Geomix_obs.Metrics.to_json}) or the Prometheus text
    exposition ({!Geomix_obs.Expo.to_prometheus}). *)
type stats_format = Stats_json | Stats_prom

val stats_format_name : stats_format -> string
(** ["json"] or ["prom"]. *)

val stats_format_of_string : string -> stats_format option

type payload =
  | Ping  (** health check — also the client's readiness barrier *)
  | Health
      (** readiness probe: inflight/queued/cache/recovery counters,
          answered before admission so it works while draining *)
  | Stats of stats_format
      (** full metrics-registry scrape, answered before admission like
          [Health] — the pull surface [geomix top] and Prometheus poll *)
  | Likelihood of spec
      (** one mixed-precision log-likelihood evaluation *)
  | Predict of { spec : spec; n_new : int; pred_seed : int }
      (** kriging at [n_new] fresh sites drawn from [pred_seed] *)
  | Mc_batch of { spec : spec; replicates : int }
      (** [replicates] likelihood replicas sharing one factorization,
          fanned out as a pool-level job with streamed progress *)
  | Shutdown  (** finish in-flight work and stop accepting *)

type request = {
  id : string;           (** client-chosen, echoed on every frame *)
  priority : priority;
  timeout_s : float option;
      (** per-request deadline, seconds from admission on the server's
          clock; expiry yields a [Deadline_exceeded] error reply *)
  payload : payload;
}

val op_name : payload -> string

(** {1 Replies} *)

type status =
  | Clean
  | Escalated of int
      (** factorization succeeded after [k] band→FP64 escalations — the
          precision map is degraded, so the artifact is never cached *)
  | Indefinite
  | Corrupt_recovered of int
      (** integrity guards detected and recovered [k] corrupt tiles; the
          numbers are bitwise-identical to a fault-free run *)

val status_name : status -> string
(** The wire tag: ["clean"], ["escalated"], ["indefinite"] or
    ["corrupt_recovered"]. *)

(** Snapshot returned by a [Health] request. *)
type health = {
  inflight : int;
  queued : int;
  served : int;
  draining : bool;
  brownout : bool;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  recovered : int;   (** requests whose status was [Corrupt_recovered] *)
  escalated : int;   (** requests whose status was [Escalated] *)
  shed : int;        (** requests shed by the brown-out breaker *)
}

type error_code =
  | Saturated          (** admission queue full — the 429 of the service *)
  | Deadline_exceeded
  | Bad_request
  | Internal

val error_code_name : error_code -> string
val error_code_of_string : string -> error_code option

type reply =
  | Pong
  | Health_r of health
  | Stats_r of { format : stats_format; body : string }
      (** the rendered registry snapshot in the requested format *)
  | Likelihood_r of {
      loglik : float;
      log_det : float;
      quad_form : float;
      status : status;
      cache_hit : bool;
    }
  | Predict_r of { mean : float array; variance : float array; cache_hit : bool }
  | Mc_r of {
      logliks : float array;  (** per replicate, [-inf] when indefinite *)
      mean_loglik : float;
      status : status;
      cache_hit : bool;
    }
  | Shutdown_r
  | Error_r of { code : error_code; message : string }

(** Per-request telemetry footer attached to the terminal reply frame of
    a traced request (under a ["telemetry"] key on the wire — untraced
    clients and old decoders are unaffected): the request's
    {!Geomix_obs.Span.summary} (bytes moved STC vs FP64-equivalent, by
    transfer precision, tasks/retries, queue/busy time) plus the derived
    quantities the server computes at reply time. *)
type footer = {
  f_span : Geomix_obs.Span.summary;
  f_energy_j : float;  (** modeled energy of the request's execution, J *)
  f_cp_s : float;      (** critical-path length of the task DAG, s *)
  f_wall_s : float;    (** admission-to-reply wall time, s *)
  f_cache_hit : bool;
  f_sdc_detected : int;
  f_sdc_recovered : int;
  f_status : string;   (** {!status_name} of the carried reply *)
}

type frame =
  | Progress of { id : string; completed : int; total : int }
  | Reply of { id : string; reply : reply; footer : footer option }

(** {1 Codecs} *)

val request_to_json : request -> Geomix_obs.Jsonlite.t
val request_of_json : Geomix_obs.Jsonlite.t -> (request, string) result

val frame_to_json : frame -> Geomix_obs.Jsonlite.t
val frame_of_json : Geomix_obs.Jsonlite.t -> (frame, string) result

(** {1 Framing} *)

val max_frame_bytes : int
(** 16 MiB — frames beyond this are refused on both ends. *)

val write_frame : out_channel -> Geomix_obs.Jsonlite.t -> unit
(** Emit one frame (flushes).  @raise Invalid_argument on an oversized
    payload. *)

val read_frame : in_channel -> (Geomix_obs.Jsonlite.t, string) result
(** Read one frame; [Error "eof"] on clean end-of-stream before the
    header, [Error _] on truncation, oversize, a JSON parse failure or an
    I/O error on the stream (e.g. a connection reset) — never raises on
    stream damage. *)

val frame_to_string : Geomix_obs.Jsonlite.t -> string
(** The exact byte sequence {!write_frame} would emit — for tests and
    in-memory transports. *)
