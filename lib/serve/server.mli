(** The model service: a long-lived request server multiplexing
    likelihood, prediction and Monte-Carlo work onto one shared domain
    pool.

    This is the serving half of the paper's batched-MLE workload: an
    optimizer (or many) evaluates the Gaussian log-likelihood for a stream
    of parameter points over a fixed problem shape, so the expensive
    shape-level pre-work — precision map, Algorithm 2 communication map,
    static DAG, autotune advice — is memoized in a {!Cache} and every
    evaluation reuses it.

    {b Concurrency.}  Each admitted request factorizes under its own
    {!Geomix_parallel.Pool.job}, so concurrent requests share the pool's
    workers without sharing completion or failure ({!Geomix_parallel.Pool}
    job semantics).  Admission is a bounded priority queue in front of
    [max_inflight] execution slots: strict priority rank, FIFO within a
    class, and a [Saturated] (429-style) rejection when both the slots and
    the queue are full.

    {b Deadlines.}  The clock is injected ([?now]), and deadlines are
    evaluated at admission entry, at slot grant and between Monte-Carlo
    replicates — never inside a timed wait — so expiry behaviour is
    deterministic under the virtual clock
    ({!Geomix_fault.Retry.virtual_clock}) the tests drive.

    {b Resilience.}  Every factorizing request runs through
    {!Geomix_core.Mp_cholesky.factorize_robust} under the server's
    configured stack: a seeded fault plan ([?faults]) injects, bounded
    retry ([?retry]) re-executes transient casualties from pre-attempt
    snapshots, a {e per-request} integrity guard ([?integrity], snapshots
    on) quarantines and repairs silent data corruption, and pivot
    failures escalate precision bands to FP64 instead of erroring.  The
    reply's {!Protocol.status} is the authoritative account: [Escalated]
    degradation invalidates the cached artifact (a warm hit never
    launders a degraded precision map), and a [Corrupt_recovered] reply
    is bitwise-identical to the fault-free run.

    {b Overload brown-out.}  A {!Breaker} watches queue depth and
    deadline-miss rate over sliding windows; while tripped the server
    sheds [Low]-priority requests at admission ([Saturated]) and caps
    Monte-Carlo replicate fan-out, recovering hysteretically.

    {b Graceful lifecycle.}  {!request_drain} stops admission and lets
    queued plus in-flight work finish until a deadline on the injected
    clock; {!drain_status} is a pure, non-blocking probe of that state
    machine, and {!install_drain_signals} wires SIGTERM/SIGINT so one
    signal drains and a second forces an immediate stop ({!outcome}).

    {b Telemetry.}  With [?obs]: [serve.requests], [serve.rejected],
    [serve.deadline_expired], [serve.errors], [serve.mc_replicates],
    [serve.recovered], [serve.escalated], [serve.indefinite],
    [serve.shed], [serve.brownout_trips] counters; [serve.inflight],
    [serve.queue_depth], [serve.queue_peak], [serve.brownout] gauges; a
    [serve.latency_s] histogram; and the cache's [serve.cache.*]
    counters.  With [?bus], the request lifecycle is narrated on
    component ["serve"].

    {b Per-request tracing.}  With [trace_sample > 0], a sampled request
    gets a {!Geomix_obs.Span} that every instrumented layer below —
    cache lookup events, pool job timing, the factorization's RAW-edge
    byte accounting, supervised retries — credits its activity to, and
    the terminal reply carries a {!Protocol.footer}: bytes moved as
    shipped vs the FP64-equivalent baseline (split by transfer
    precision), modeled energy and duration-weighted critical path from
    a per-request profile, queue/busy time, SDC detect/recover counts
    and the reply status.  Sampling is a deterministic function of the
    request id, so the same id traces identically on every replica; at
    [trace_sample = 1.0] the footers' summed byte counts equal the
    registry's [cholesky.shipped_bytes] aggregate exactly.  The [Stats]
    request ({!Protocol.payload}) and the [?stats_path] listener of
    {!serve_unix} are the matching pull surfaces. *)

type t

val create :
  ?obs:Geomix_obs.Metrics.t ->
  ?bus:Geomix_obs.Events.t ->
  ?now:(unit -> float) ->
  ?max_inflight:int ->
  ?queue_capacity:int ->
  ?cache_capacity:int ->
  ?max_order:int ->
  ?max_replicates:int ->
  ?faults:Geomix_fault.Fault.t ->
  ?retry:Geomix_fault.Retry.policy ->
  ?integrity:bool ->
  ?drain_deadline_s:float ->
  ?trace_sample:float ->
  ?breaker_config:Breaker.config ->
  pool:Geomix_parallel.Pool.t ->
  unit ->
  t
(** Defaults: wall clock, 4 in-flight slots, 16 queue entries, cache
    capacity 32, [max_order] 4096 (largest accepted matrix order),
    [max_replicates] 1024; no fault plan, no retry policy, integrity
    guards off, a 5 s drain deadline, [trace_sample = 0] (per-request
    tracing off) and {!Breaker.default_config}.
    @raise Invalid_argument when [max_inflight < 1], [queue_capacity < 0],
    [drain_deadline_s] is negative or non-finite, [trace_sample] is
    outside [0, 1], or the breaker config is invalid. *)

val cache : t -> Cache.t
val metrics : t -> Geomix_obs.Metrics.t
val pool : t -> Geomix_parallel.Pool.t
val breaker : t -> Breaker.t

val served : t -> int
(** Requests completed through the socket front end. *)

val handle :
  t ->
  ?on_progress:(completed:int -> total:int -> unit) ->
  Protocol.request ->
  Protocol.reply
(** Process one request end to end: validate, admit (blocking while
    queued), execute on the pool, release.  Never raises on request
    failure — validation, saturation, deadline expiry and internal errors
    all come back as {!Protocol.Error_r}.  [on_progress] fires once per
    completed Monte-Carlo replicate, possibly concurrently from pool
    worker domains (completion counts may arrive out of order; track the
    maximum).  Thread-safe: the socket front end calls this from one
    thread per connection. *)

val handle_traced :
  t ->
  ?on_progress:(completed:int -> total:int -> unit) ->
  Protocol.request ->
  Protocol.reply * Protocol.footer option
(** {!handle} plus the telemetry footer of a sampled request ([None] for
    an unsampled request, for pre-admission replies — [Ping], [Health],
    [Stats], [Shutdown] — and for requests rejected before execution).
    The socket front end uses this and attaches the footer to the
    terminal reply frame. *)

val build_artifact : Cache.key -> Cache.artifact
(** The memoized pre-work, exposed for tests: a pure function of the
    shape key (sites, precision map, communication map, static DAG,
    advice).  The advice pilot observes the input matrix only — no pilot
    factorization. *)

(** {1 Admission control}

    The raw admission primitives, exposed so tests can saturate the
    server deterministically without timing races.  [handle] uses them
    internally; production callers never need them. *)

val admit : t -> rank:int -> [ `Admitted | `Saturated ]
(** Take an execution slot, blocking in the priority queue while the
    server is busy; [`Saturated] when slots and queue are both full.
    Every [`Admitted] must be paired with a {!release}. *)

val release : t -> unit

val inflight : t -> int
val queued : t -> int

(** {1 Graceful lifecycle}

    The drain machinery is a pure state machine on the injected clock —
    nothing here blocks, so every path is testable under
    {!Geomix_fault.Retry.virtual_clock}. *)

val request_drain : t -> bool
(** Begin draining: admission starts refusing new work ([Saturated],
    message ["server draining…"]) while queued and in-flight requests
    keep running until [now + drain_deadline_s].  Idempotent — [true]
    only for the call that actually started the drain. *)

val force_stop : t -> unit
(** Terminal: the lifecycle moves to stopped immediately.  In-flight
    pool work is not interrupted (OCaml has no safe asynchronous
    cancellation); the socket front end stops accepting and its caller —
    the CLI — exits the process, which is the cancellation. *)

val draining : t -> bool
(** [true] once {!request_drain} or {!force_stop} has been called. *)

val drain_status :
  t ->
  [ `Running  (** no drain requested *)
  | `Draining of float  (** seconds left before the deadline *)
  | `Drained  (** drain requested and no work queued or in flight *)
  | `Expired  (** deadline passed with work still in flight *)
  | `Stopped  (** {!force_stop} was called *) ]
(** A pure, non-blocking probe of the drain state machine against the
    injected clock.  [`Drained] wins over [`Expired] when the last
    request finished after the deadline but before the probe. *)

val health : t -> Protocol.health
(** The readiness snapshot a [Health] request returns, answered before
    admission — probes work while saturated or draining. *)

(** {1 Unix-domain-socket front end} *)

type outcome =
  | Served  (** a [Shutdown] request or [max_requests] ended the run *)
  | Drained  (** one signal; every queued and in-flight request finished *)
  | Drain_expired
      (** one signal; the drain deadline passed with work in flight *)
  | Forced  (** a second signal forced an immediate stop *)

val outcome_name : outcome -> string

val install_drain_signals : unit -> unit
(** Install the SIGTERM/SIGINT handler that feeds {!serve_unix}'s drain
    policy: the first signal begins a drain, a second forces an immediate
    stop.  Idempotent — concurrent and repeated calls install exactly
    once, so a signal arriving while a handler is being (re)installed is
    never lost to a handler race. *)

val notify_signal : unit -> unit
(** The handler body: record one delivered signal.  Exposed so tests can
    drive the drain and second-signal paths without raw signals. *)

val serve_unix :
  t ->
  path:string ->
  ?backlog:int ->
  ?max_requests:int ->
  ?stats_path:string ->
  ?telemetry:Geomix_obs.Expo.snapshotter ->
  ?telemetry_interval_s:float ->
  unit ->
  outcome
(** Bind [path] (an existing socket file is replaced), accept one thread
    per connection, and serve length-prefixed {!Protocol} frames until a
    [Shutdown] request arrives, [max_requests] requests have been
    answered, or a signal recorded by {!notify_signal} ends the run (the
    pending signal count is cleared on entry).  Requests on one
    connection are handled sequentially; concurrency comes from
    concurrent connections.  SIGPIPE is ignored process-wide on entry,
    so a client that disconnects mid-stream costs only its own dropped
    frames, never the server.  Shutdown closes the read side of every
    open connection (idle clients see EOF; in-flight replies still
    flush).  On [Served] and [Drained] every connection thread has been
    joined; on [Drain_expired] and [Forced] the run returns {e without}
    joining — in-flight factorizations cannot be interrupted and the
    caller is expected to exit the process.  The socket file is removed
    on the way out.

    [?stats_path] binds a {e second} Unix listener that answers every
    connection with one full Prometheus text exposition
    ({!Geomix_obs.Expo.to_prometheus}) of the server's registry and
    closes — a scrape endpoint independent of the framed protocol and
    of admission, so it keeps answering while the server is saturated
    or draining.  [?telemetry] appends one compact registry-snapshot
    JSON line per [telemetry_interval_s] (default 1 s, on the injected
    clock) to the rolling snapshotter, plus a terminal line when the
    run ends; rotation is the snapshotter's
    ({!Geomix_obs.Expo.snapshotter}).  Both surfaces are removed/closed
    by their owners — the stats socket file on the way out, the
    snapshotter by its creator. *)
