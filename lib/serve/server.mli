(** The model service: a long-lived request server multiplexing
    likelihood, prediction and Monte-Carlo work onto one shared domain
    pool.

    This is the serving half of the paper's batched-MLE workload: an
    optimizer (or many) evaluates the Gaussian log-likelihood for a stream
    of parameter points over a fixed problem shape, so the expensive
    shape-level pre-work — precision map, Algorithm 2 communication map,
    static DAG, autotune advice — is memoized in a {!Cache} and every
    evaluation reuses it.

    {b Concurrency.}  Each admitted request factorizes under its own
    {!Geomix_parallel.Pool.job}, so concurrent requests share the pool's
    workers without sharing completion or failure ({!Geomix_parallel.Pool}
    job semantics).  Admission is a bounded priority queue in front of
    [max_inflight] execution slots: strict priority rank, FIFO within a
    class, and a [Saturated] (429-style) rejection when both the slots and
    the queue are full.

    {b Deadlines.}  The clock is injected ([?now]), and deadlines are
    evaluated at admission entry, at slot grant and between Monte-Carlo
    replicates — never inside a timed wait — so expiry behaviour is
    deterministic under the virtual clock
    ({!Geomix_fault.Retry.virtual_clock}) the tests drive.

    {b Telemetry.}  With [?obs]: [serve.requests], [serve.rejected],
    [serve.deadline_expired], [serve.errors], [serve.mc_replicates]
    counters; [serve.inflight], [serve.queue_depth], [serve.queue_peak]
    gauges; a [serve.latency_s] histogram; and the cache's
    [serve.cache.*] counters.  With [?bus], the request lifecycle is
    narrated on component ["serve"]. *)

type t

val create :
  ?obs:Geomix_obs.Metrics.t ->
  ?bus:Geomix_obs.Events.t ->
  ?now:(unit -> float) ->
  ?max_inflight:int ->
  ?queue_capacity:int ->
  ?cache_capacity:int ->
  ?max_order:int ->
  ?max_replicates:int ->
  pool:Geomix_parallel.Pool.t ->
  unit ->
  t
(** Defaults: wall clock, 4 in-flight slots, 16 queue entries, cache
    capacity 32, [max_order] 4096 (largest accepted matrix order),
    [max_replicates] 1024.  @raise Invalid_argument when
    [max_inflight < 1] or [queue_capacity < 0]. *)

val cache : t -> Cache.t
val metrics : t -> Geomix_obs.Metrics.t
val pool : t -> Geomix_parallel.Pool.t

val served : t -> int
(** Requests completed through the socket front end. *)

val handle :
  t ->
  ?on_progress:(completed:int -> total:int -> unit) ->
  Protocol.request ->
  Protocol.reply
(** Process one request end to end: validate, admit (blocking while
    queued), execute on the pool, release.  Never raises on request
    failure — validation, saturation, deadline expiry and internal errors
    all come back as {!Protocol.Error_r}.  [on_progress] fires once per
    completed Monte-Carlo replicate, possibly concurrently from pool
    worker domains (completion counts may arrive out of order; track the
    maximum).  Thread-safe: the socket front end calls this from one
    thread per connection. *)

val build_artifact : Cache.key -> Cache.artifact
(** The memoized pre-work, exposed for tests: a pure function of the
    shape key (sites, precision map, communication map, static DAG,
    advice).  The advice pilot observes the input matrix only — no pilot
    factorization. *)

(** {1 Admission control}

    The raw admission primitives, exposed so tests can saturate the
    server deterministically without timing races.  [handle] uses them
    internally; production callers never need them. *)

val admit : t -> rank:int -> [ `Admitted | `Saturated ]
(** Take an execution slot, blocking in the priority queue while the
    server is busy; [`Saturated] when slots and queue are both full.
    Every [`Admitted] must be paired with a {!release}. *)

val release : t -> unit

val inflight : t -> int
val queued : t -> int

(** {1 Unix-domain-socket front end} *)

val serve_unix :
  t -> path:string -> ?backlog:int -> ?max_requests:int -> unit -> unit
(** Bind [path] (an existing socket file is replaced), accept one thread
    per connection, and serve length-prefixed {!Protocol} frames until a
    [Shutdown] request arrives or [max_requests] requests have been
    answered.  Requests on one connection are handled sequentially;
    concurrency comes from concurrent connections.  SIGPIPE is ignored
    process-wide on entry, so a client that disconnects mid-stream costs
    only its own dropped frames, never the server.  Shutdown closes the
    read side of every open connection (idle clients see EOF; in-flight
    replies still flush) and returns after every connection thread has
    drained; the socket file is removed on the way out. *)
