module Metrics = Geomix_obs.Metrics
module Events = Geomix_obs.Events

type key = {
  n : int;
  nb : int;
  u_req : float;
  family : Geomix_geostat.Covariance.family;
  sigma2 : float;
  beta : float;
  nu : float;
  nugget : float;
  locs_seed : int;
}

let key_of_spec (s : Protocol.spec) =
  {
    n = s.Protocol.n;
    nb = s.Protocol.nb;
    u_req = s.Protocol.u_req;
    family = s.Protocol.family;
    sigma2 = s.Protocol.sigma2;
    beta = s.Protocol.beta;
    nu = s.Protocol.nu;
    nugget = s.Protocol.nugget;
    locs_seed = s.Protocol.locs_seed;
  }

let key_label k =
  Printf.sprintf "%s:n%d:nb%d:u%.3g:s%d" (Protocol.family_name k.family) k.n
    k.nb k.u_req k.locs_seed

type artifact = {
  locs : Geomix_geostat.Locations.t;
  pmap : Geomix_core.Precision_map.t;
  cmap : Geomix_core.Comm_map.t;
  dag : Geomix_runtime.Cholesky_dag.t;
  advice : Geomix_autotune.Type_advisor.t;
}

(* A [Building] entry is the single-flight marker: the first requester of a
   key installs it (under the lock), builds outside the lock, then
   publishes the finished artifact and broadcasts.  Every concurrent
   requester of the same key waits on [published] instead of building —
   exactly one miss per distinct key, which is what makes the smoke
   workload's hit rate deterministic enough to gate in CI. *)
type entry = Ready of { artifact : artifact; mutable tick : int } | Building

type stats = { hits : int; misses : int; evictions : int }

type t = {
  capacity : int;
  table : (key, entry) Hashtbl.t;
  mutex : Mutex.t;
  published : Condition.t;
  mutable tick : int;
  mutable ready_count : int;
  hits : Metrics.counter;
  misses : Metrics.counter;
  evictions : Metrics.counter;
  invalidations : Metrics.counter;
  bus : Events.t option;
}

let create ?obs ?bus ?(capacity = 32) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  let reg = match obs with Some r -> r | None -> Metrics.create () in
  {
    capacity;
    table = Hashtbl.create 64;
    mutex = Mutex.create ();
    published = Condition.create ();
    tick = 0;
    ready_count = 0;
    hits = Metrics.counter reg "serve.cache.hits";
    misses = Metrics.counter reg "serve.cache.misses";
    evictions = Metrics.counter reg "serve.cache.evictions";
    invalidations = Metrics.counter reg "serve.cache.invalidations";
    bus;
  }

let emit t ?(level = Events.Debug) name fields =
  match t.bus with
  | None -> ()
  | Some bus -> Events.emit ~level bus ~component:"serve" ~name fields

let capacity t = t.capacity

(* Callers hold the lock. *)
let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

(* Evict least-recently-used [Ready] entries until the cache fits.
   [Building] markers are never evicted — a waiter is parked on them.
   Callers hold the lock. *)
let enforce_capacity t =
  while t.ready_count > t.capacity do
    let victim = ref None in
    Hashtbl.iter
      (fun k e ->
        match e with
        | Building -> ()
        | Ready { tick; _ } -> (
          match !victim with
          | Some (_, best) when best <= tick -> ()
          | _ -> victim := Some (k, tick)))
      t.table;
    match !victim with
    | None -> t.ready_count <- 0 (* unreachable: ready_count counts Ready *)
    | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.ready_count <- t.ready_count - 1;
      Metrics.incr t.evictions;
      emit t "cache_evict" [ ("key", Events.fstr (key_label k)) ]
  done

let find_or_build ?span t key ~build =
  (* Trace attribution rides on the lookup events: a traced request's
     cache_hit/cache_miss carry its trace/request/span ids. *)
  let trace_fields =
    match span with
    | None -> []
    | Some sp -> Geomix_obs.Span.fields sp
  in
  Mutex.lock t.mutex;
  let rec await () =
    match Hashtbl.find_opt t.table key with
    | Some (Ready e) ->
      e.tick <- next_tick t;
      Metrics.incr t.hits;
      emit t "cache_hit"
        (("key", Events.fstr (key_label key)) :: trace_fields);
      Mutex.unlock t.mutex;
      (e.artifact, true)
    | Some Building ->
      Condition.wait t.published t.mutex;
      await ()
    | None -> (
      Hashtbl.replace t.table key Building;
      Metrics.incr t.misses;
      emit t "cache_miss"
        (("key", Events.fstr (key_label key)) :: trace_fields);
      Mutex.unlock t.mutex;
      match build key with
      | artifact ->
        Mutex.lock t.mutex;
        Hashtbl.replace t.table key (Ready { artifact; tick = next_tick t });
        t.ready_count <- t.ready_count + 1;
        enforce_capacity t;
        Condition.broadcast t.published;
        Mutex.unlock t.mutex;
        (artifact, false)
      | exception exn ->
        (* Withdraw the marker so waiters retry (one becomes the next
           builder) instead of parking forever on a failed build. *)
        Mutex.lock t.mutex;
        Hashtbl.remove t.table key;
        Condition.broadcast t.published;
        Mutex.unlock t.mutex;
        raise exn)
  in
  await ()

let find t key =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.table key with
    | Some (Ready e) ->
      e.tick <- next_tick t;
      Some e.artifact
    | Some Building | None -> None
  in
  Mutex.unlock t.mutex;
  r

(* Drop a published entry so a later request rebuilds it.  [Building]
   markers are left alone — the in-flight builder owns them and waiters
   are parked on the condition; the builder's publish supersedes us. *)
let invalidate t key =
  Mutex.lock t.mutex;
  let removed =
    match Hashtbl.find_opt t.table key with
    | Some (Ready _) ->
      Hashtbl.remove t.table key;
      t.ready_count <- t.ready_count - 1;
      Metrics.incr t.invalidations;
      true
    | Some Building | None -> false
  in
  Mutex.unlock t.mutex;
  if removed then
    emit t ~level:Events.Info "cache_invalidate"
      [ ("key", Events.fstr (key_label key)) ];
  removed

let length t =
  Mutex.lock t.mutex;
  let n = t.ready_count in
  Mutex.unlock t.mutex;
  n

let stats t =
  {
    hits = Metrics.counter_value t.hits;
    misses = Metrics.counter_value t.misses;
    evictions = Metrics.counter_value t.evictions;
  }

let hit_fraction t =
  let s = stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total
