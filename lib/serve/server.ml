module Metrics = Geomix_obs.Metrics
module Events = Geomix_obs.Events
module Pool = Geomix_parallel.Pool
module Heap = Geomix_util.Heap
module Rng = Geomix_util.Rng
module Locations = Geomix_geostat.Locations
module Covariance = Geomix_geostat.Covariance
module Field = Geomix_geostat.Field
module Likelihood = Geomix_geostat.Likelihood
module Prediction = Geomix_geostat.Prediction
module Mp_cholesky = Geomix_core.Mp_cholesky
module Precision_map = Geomix_core.Precision_map
module Comm_map = Geomix_core.Comm_map
module Cholesky_dag = Geomix_runtime.Cholesky_dag
module Range_tracker = Geomix_autotune.Range_tracker
module Type_advisor = Geomix_autotune.Type_advisor
module Tiled = Geomix_tile.Tiled
module P = Protocol

(* A waiter in the admission queue.  Ordering is (priority rank, arrival
   sequence): strict priority, FIFO within a class. *)
type ticket = { rank : int; seq : int; mutable granted : bool }

type t = {
  pool : Pool.t;
  cache : Cache.t;
  now : unit -> float;
  max_inflight : int;
  queue_capacity : int;
  max_order : int;
  max_replicates : int;
  mutex : Mutex.t;
  turn : Condition.t;
  waiting : ticket Heap.t;
  mutable waiting_count : int;
  mutable running : int;
  mutable seq : int;
  mutable served : int;
  mutable stop : (unit -> unit) option;
  obs : Metrics.t;
  bus : Events.t option;
  m_requests : Metrics.counter;
  m_rejected : Metrics.counter;
  m_expired : Metrics.counter;
  m_errors : Metrics.counter;
  m_mc_replicates : Metrics.counter;
  m_inflight : Metrics.gauge;
  m_queue_depth : Metrics.gauge;
  m_queue_peak : Metrics.gauge;
  m_latency : Metrics.histogram;
}

let create ?obs ?bus ?(now = Unix.gettimeofday) ?(max_inflight = 4)
    ?(queue_capacity = 16) ?(cache_capacity = 32) ?(max_order = 4096)
    ?(max_replicates = 1024) ~pool () =
  if max_inflight < 1 then invalid_arg "Server.create: max_inflight must be >= 1";
  if queue_capacity < 0 then
    invalid_arg "Server.create: queue_capacity must be >= 0";
  let obs = match obs with Some r -> r | None -> Metrics.create () in
  let cache = Cache.create ~obs ?bus ~capacity:cache_capacity () in
  let cmp a b =
    if a.rank <> b.rank then compare a.rank b.rank else compare a.seq b.seq
  in
  {
    pool;
    cache;
    now;
    max_inflight;
    queue_capacity;
    max_order;
    max_replicates;
    mutex = Mutex.create ();
    turn = Condition.create ();
    waiting = Heap.create ~cmp;
    waiting_count = 0;
    running = 0;
    seq = 0;
    served = 0;
    stop = None;
    obs;
    bus;
    m_requests = Metrics.counter obs "serve.requests";
    m_rejected = Metrics.counter obs "serve.rejected";
    m_expired = Metrics.counter obs "serve.deadline_expired";
    m_errors = Metrics.counter obs "serve.errors";
    m_mc_replicates = Metrics.counter obs "serve.mc_replicates";
    m_inflight = Metrics.gauge obs "serve.inflight";
    m_queue_depth = Metrics.gauge obs "serve.queue_depth";
    m_queue_peak = Metrics.gauge obs "serve.queue_peak";
    m_latency = Metrics.histogram obs "serve.latency_s";
  }

let cache t = t.cache
let metrics t = t.obs
let pool t = t.pool

let emit ?(level = Events.Info) t name fields =
  match t.bus with
  | None -> ()
  | Some bus -> Events.emit ~level bus ~component:"serve" ~name fields

let served t =
  Mutex.lock t.mutex;
  let n = t.served in
  Mutex.unlock t.mutex;
  n

let note_served t =
  Mutex.lock t.mutex;
  t.served <- t.served + 1;
  let n = t.served in
  Mutex.unlock t.mutex;
  n

(* {2 Admission control}

   A bounded priority queue in front of [max_inflight] execution slots.
   Waiters never block on a timed wait — deadlines are evaluated against
   the injected clock at admission entry, at slot grant and between
   Monte-Carlo replicates, so the whole policy is deterministic under the
   virtual clock the tests drive. *)

(* Lock held.  Hand free slots to the best waiters; their [granted] flag
   flips under the lock and the condition broadcast wakes them. *)
let pump t =
  let granted = ref false in
  let continue = ref true in
  while !continue && t.running < t.max_inflight do
    match Heap.pop t.waiting with
    | None -> continue := false
    | Some tk ->
      t.waiting_count <- t.waiting_count - 1;
      tk.granted <- true;
      t.running <- t.running + 1;
      granted := true
  done;
  if !granted then Condition.broadcast t.turn

let admit t ~rank =
  Mutex.lock t.mutex;
  if t.running < t.max_inflight && Heap.is_empty t.waiting then begin
    t.running <- t.running + 1;
    Metrics.set t.m_inflight (float_of_int t.running);
    Mutex.unlock t.mutex;
    `Admitted
  end
  else if t.waiting_count >= t.queue_capacity then begin
    Mutex.unlock t.mutex;
    `Saturated
  end
  else begin
    t.seq <- t.seq + 1;
    let tk = { rank; seq = t.seq; granted = false } in
    Heap.push t.waiting tk;
    t.waiting_count <- t.waiting_count + 1;
    Metrics.set t.m_queue_depth (float_of_int t.waiting_count);
    Metrics.set_max t.m_queue_peak (float_of_int t.waiting_count);
    pump t;
    while not tk.granted do
      Condition.wait t.turn t.mutex
    done;
    Metrics.set t.m_inflight (float_of_int t.running);
    Metrics.set t.m_queue_depth (float_of_int t.waiting_count);
    Mutex.unlock t.mutex;
    `Admitted
  end

let release t =
  Mutex.lock t.mutex;
  t.running <- t.running - 1;
  pump t;
  Metrics.set t.m_inflight (float_of_int t.running);
  Metrics.set t.m_queue_depth (float_of_int t.waiting_count);
  Mutex.unlock t.mutex

let inflight t =
  Mutex.lock t.mutex;
  let n = t.running in
  Mutex.unlock t.mutex;
  n

let queued t =
  Mutex.lock t.mutex;
  let n = t.waiting_count in
  Mutex.unlock t.mutex;
  n

let deadline_passed t = function
  | None -> false
  | Some d -> t.now () > d

(* {2 Problem construction} *)

let cov_of (k : Cache.key) =
  let { Cache.family; sigma2; beta; nu; nugget; _ } = k in
  match family with
  | Covariance.Sqexp -> Covariance.sqexp ~nugget ~sigma2 ~beta ()
  | Covariance.Matern -> Covariance.matern ~nugget ~sigma2 ~beta ~nu ()
  | Covariance.Powexp -> Covariance.powexp ~nugget ~sigma2 ~beta ~power:nu ()
  | Covariance.Spherical -> Covariance.spherical ~nugget ~sigma2 ~beta ()

let sites ~n ~seed =
  Locations.morton_sort
    (Locations.jittered_grid_2d ~rng:(Rng.create ~seed) ~n)

(* The memoized pre-work: a pure function of the shape key.  The advice
   pilot observes the input matrix only ([observe_tiled] records per-tile
   ranges and Frobenius mass), so a miss costs one covariance assembly and
   three O(NT²)–O(NT³) map constructions — no pilot factorization. *)
let build_artifact (key : Cache.key) : Cache.artifact =
  let cov = cov_of key in
  let locs = sites ~n:key.Cache.n ~seed:key.Cache.locs_seed in
  let a = Covariance.build_tiled cov locs ~nb:key.Cache.nb in
  let pmap = Precision_map.of_tiled ~u_req:key.Cache.u_req a in
  let cmap = Comm_map.compute pmap in
  let dag = Cholesky_dag.create ~nt:(Tiled.nt a) in
  let ranges = Range_tracker.create ~nt:(Tiled.nt a) in
  Range_tracker.observe_tiled ranges a;
  let advice = Type_advisor.advise ~u_req:key.Cache.u_req ~ranges ~pmap () in
  { Cache.locs; pmap; cmap; dag; advice }

let validate_spec t (s : P.spec) =
  let finite_pos x = Float.is_finite x && x > 0. in
  if s.P.n < 1 || s.P.n > t.max_order then
    Error (Printf.sprintf "n must be in [1, %d]" t.max_order)
  else if s.P.nb < 1 || s.P.nb > s.P.n then Error "nb must be in [1, n]"
  else if not (finite_pos s.P.u_req) then Error "u_req must be finite and positive"
  else if not (finite_pos s.P.sigma2) then Error "sigma2 must be finite and positive"
  else if not (finite_pos s.P.beta) then Error "beta must be finite and positive"
  else if not (Float.is_finite s.P.nugget) || s.P.nugget < 0. then
    Error "nugget must be finite and non-negative"
  else if not (Float.is_finite s.P.nu) then Error "nu must be finite"
  else Ok ()

let validate t = function
  | P.Ping | P.Shutdown -> Ok ()
  | P.Likelihood s -> validate_spec t s
  | P.Predict { spec; n_new; _ } ->
    Result.bind (validate_spec t spec) (fun () ->
        if n_new < 1 || n_new > t.max_order then
          Error (Printf.sprintf "n_new must be in [1, %d]" t.max_order)
        else Ok ())
  | P.Mc_batch { spec; replicates } ->
    Result.bind (validate_spec t spec) (fun () ->
        if replicates < 1 || replicates > t.max_replicates then
          Error (Printf.sprintf "replicates must be in [1, %d]" t.max_replicates)
        else Ok ())

(* {2 Request execution} *)

(* Factorize a fresh covariance assembly under the memoized maps, scoped
   to its own pool job so concurrent requests sharing the pool neither
   await nor observe each other.  The cached [cmap] equals what the
   factorization would derive itself (Algorithm 2 is deterministic), so a
   warm-cache run is bitwise identical to a cold one — the property the
   test suite pins. *)
let factorized_problem t (key : Cache.key) =
  let art, hit = Cache.find_or_build t.cache key ~build:build_artifact in
  let cov = cov_of key in
  let a = Covariance.build_tiled cov art.Cache.locs ~nb:key.Cache.nb in
  let job = Pool.new_job t.pool in
  match
    Mp_cholesky.factorize ~pool:t.pool ~job ~cmap:art.Cache.cmap
      ~pmap:art.Cache.pmap a
  with
  | () -> (art, a, hit, true)
  | exception Geomix_linalg.Blas.Not_positive_definite _ -> (art, a, hit, false)

let quad_form y = Array.fold_left (fun acc v -> acc +. (v *. v)) 0. y

let indefinite_likelihood ~cache_hit =
  P.Likelihood_r
    {
      loglik = neg_infinity;
      log_det = nan;
      quad_form = nan;
      status = P.Indefinite;
      cache_hit;
    }

let run_likelihood t (spec : P.spec) =
  let key = Cache.key_of_spec spec in
  let art, a, hit, ok = factorized_problem t key in
  if not ok then indefinite_likelihood ~cache_hit:hit
  else
    let cov = cov_of key in
    let z =
      Field.synthesize ~rng:(Rng.create ~seed:spec.P.data_seed) ~cov
        art.Cache.locs
    in
    let y = Mp_cholesky.solve_lower a z in
    let ev =
      Likelihood.assemble ~n:spec.P.n ~log_det:(Mp_cholesky.log_det a)
        ~quad_form:(quad_form y)
        ~precision_fractions:(Precision_map.fractions art.Cache.pmap)
        ()
    in
    P.Likelihood_r
      {
        loglik = ev.Likelihood.loglik;
        log_det = ev.Likelihood.log_det;
        quad_form = ev.Likelihood.quad_form;
        status = P.Clean;
        cache_hit = hit;
      }

let run_predict t (spec : P.spec) ~n_new ~pred_seed =
  let key = Cache.key_of_spec spec in
  let art, hit = Cache.find_or_build t.cache key ~build:build_artifact in
  let cov = cov_of key in
  let z =
    Field.synthesize ~rng:(Rng.create ~seed:spec.P.data_seed) ~cov
      art.Cache.locs
  in
  let new_locs = Locations.uniform_2d ~rng:(Rng.create ~seed:pred_seed) ~n:n_new in
  let p = Prediction.predict ~cov ~obs_locs:art.Cache.locs ~z ~new_locs in
  P.Predict_r
    { mean = p.Prediction.mean; variance = p.Prediction.variance; cache_hit = hit }

let run_mc t ~req_id ~deadline ~on_progress (spec : P.spec) ~replicates =
  let key = Cache.key_of_spec spec in
  let art, a, hit, ok = factorized_problem t key in
  if not ok then
    P.Mc_r
      {
        logliks = Array.make replicates neg_infinity;
        mean_loglik = neg_infinity;
        status = P.Indefinite;
        cache_hit = hit;
      }
  else begin
    let cov = cov_of key in
    let zs =
      Field.synthesize_many
        ~rng:(Rng.create ~seed:spec.P.data_seed)
        ~cov ~replicas:replicates art.Cache.locs
    in
    let log_det = Mp_cholesky.log_det a in
    let fractions = Precision_map.fractions art.Cache.pmap in
    let logliks = Array.make replicates nan in
    let completed = Atomic.make 0 in
    let expired = Atomic.make false in
    (* One pool-level job fans the batch out; every replicate solves
       against the shared factor (triangular solves only read it) and
       streams its completion.  The deadline is re-checked per replicate:
       an expired batch stops doing work instead of finishing late. *)
    let job = Pool.new_job t.pool in
    for r = 0 to replicates - 1 do
      Pool.submit_job t.pool job (fun () ->
          if deadline_passed t deadline then Atomic.set expired true
          else begin
            let y = Mp_cholesky.solve_lower a zs.(r) in
            let ev =
              Likelihood.assemble ~n:spec.P.n ~log_det
                ~quad_form:(quad_form y) ~precision_fractions:fractions ()
            in
            logliks.(r) <- ev.Likelihood.loglik;
            Metrics.incr t.m_mc_replicates;
            let c = 1 + Atomic.fetch_and_add completed 1 in
            emit ~level:Events.Debug t "mc_replicate"
              [
                ("id", Events.fstr req_id);
                ("completed", Events.fint c);
                ("total", Events.fint replicates);
              ];
            on_progress ~completed:c ~total:replicates
          end)
    done;
    Pool.join_job t.pool job;
    if Atomic.get expired then
      P.Error_r
        { code = P.Deadline_exceeded; message = "deadline expired mid-batch" }
    else begin
      let sum = Array.fold_left ( +. ) 0. logliks in
      P.Mc_r
        {
          logliks;
          mean_loglik = sum /. float_of_int replicates;
          status = P.Clean;
          cache_hit = hit;
        }
    end
  end

let run_payload t ~req_id ~deadline ~on_progress = function
  | P.Ping | P.Shutdown -> assert false (* handled before admission *)
  | P.Likelihood spec -> run_likelihood t spec
  | P.Predict { spec; n_new; pred_seed } -> run_predict t spec ~n_new ~pred_seed
  | P.Mc_batch { spec; replicates } ->
    run_mc t ~req_id ~deadline ~on_progress spec ~replicates

let handle t ?(on_progress = fun ~completed:_ ~total:_ -> ()) (req : P.request) =
  match req.P.payload with
  | P.Ping -> P.Pong
  | P.Shutdown ->
    emit t "shutdown" [ ("id", Events.fstr req.P.id) ];
    (match t.stop with Some stop -> stop () | None -> ());
    P.Shutdown_r
  | payload -> (
    Metrics.incr t.m_requests;
    emit ~level:Events.Debug t "request"
      [
        ("id", Events.fstr req.P.id);
        ("op", Events.fstr (P.op_name payload));
        ("priority", Events.fstr (P.priority_name req.P.priority));
      ];
    match validate t payload with
    | Error message ->
      Metrics.incr t.m_errors;
      emit ~level:Events.Warn t "bad_request"
        [ ("id", Events.fstr req.P.id); ("error", Events.fstr message) ];
      P.Error_r { code = P.Bad_request; message }
    | Ok () ->
      let t0 = t.now () in
      let deadline = Option.map (fun s -> t0 +. s) req.P.timeout_s in
      if deadline_passed t deadline then begin
        Metrics.incr t.m_expired;
        emit ~level:Events.Warn t "deadline_expired"
          [ ("id", Events.fstr req.P.id); ("where", Events.fstr "admission") ];
        P.Error_r
          { code = P.Deadline_exceeded; message = "deadline expired at admission" }
      end
      else
        match admit t ~rank:(P.priority_rank req.P.priority) with
        | `Saturated ->
          Metrics.incr t.m_rejected;
          emit ~level:Events.Warn t "rejected"
            [ ("id", Events.fstr req.P.id) ];
          P.Error_r
            {
              code = P.Saturated;
              message =
                Printf.sprintf "server saturated (%d in flight, %d queued)"
                  t.max_inflight t.queue_capacity;
            }
        | `Admitted ->
          Fun.protect
            ~finally:(fun () -> release t)
            (fun () ->
              if deadline_passed t deadline then begin
                Metrics.incr t.m_expired;
                emit ~level:Events.Warn t "deadline_expired"
                  [ ("id", Events.fstr req.P.id); ("where", Events.fstr "grant") ];
                P.Error_r
                  {
                    code = P.Deadline_exceeded;
                    message = "deadline expired while queued";
                  }
              end
              else
                match
                  run_payload t ~req_id:req.P.id ~deadline ~on_progress payload
                with
                | reply ->
                  let dt = t.now () -. t0 in
                  Metrics.observe t.m_latency dt;
                  (match reply with
                  | P.Error_r { code = P.Deadline_exceeded; _ } ->
                    Metrics.incr t.m_expired
                  | _ -> ());
                  emit ~level:Events.Debug t "done"
                    [
                      ("id", Events.fstr req.P.id);
                      ("latency_s", Events.fnum dt);
                    ];
                  reply
                | exception exn ->
                  Metrics.incr t.m_errors;
                  let message = Printexc.to_string exn in
                  emit ~level:Events.Error t "internal_error"
                    [
                      ("id", Events.fstr req.P.id);
                      ("error", Events.fstr message);
                    ];
                  P.Error_r { code = P.Internal; message }))

(* {2 Unix-domain-socket front end} *)

let serve_unix t ~path ?(backlog = 64) ?max_requests () =
  (* A client gone mid-stream must surface as Sys_error (EPIPE) in
     [try_write], not deliver a process-killing SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd backlog;
  let closed = ref false in
  let cmutex = Mutex.create () in
  (* Open connection fds, guarded by [cmutex]; shutdown must wake their
     reader threads or the final join would wait on idle clients. *)
  let conns : (Unix.file_descr, unit) Hashtbl.t = Hashtbl.create 16 in
  let is_closed () =
    Mutex.lock cmutex;
    let c = !closed in
    Mutex.unlock cmutex;
    c
  in
  let close_listener () =
    Mutex.lock cmutex;
    if not !closed then begin
      closed := true;
      (* Closing a listening fd does not wake a thread blocked in accept(2);
         shutdown does.  The accept loop owns the actual close. *)
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      (* Receive side only: blocked readers see EOF and drain, while
         in-flight replies (the Shutdown_r handshake) still flush. *)
      Hashtbl.iter
        (fun conn () ->
          try Unix.shutdown conn Unix.SHUTDOWN_RECEIVE
          with Unix.Unix_error _ -> ())
        conns
    end;
    Mutex.unlock cmutex
  in
  t.stop <- Some close_listener;
  emit t "listening" [ ("path", Events.fstr path) ];
  let threads = ref [] in
  let handle_conn conn =
    let ic = Unix.in_channel_of_descr conn in
    let oc = Unix.out_channel_of_descr conn in
    let wmutex = Mutex.create () in
    let write_frame frame =
      Mutex.lock wmutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock wmutex)
        (fun () -> P.write_frame oc (P.frame_to_json frame))
    in
    let try_write frame = try write_frame frame with Sys_error _ -> () in
    let bad_request ~id message =
      try_write
        (P.Reply { id; reply = P.Error_r { code = P.Bad_request; message } })
    in
    let rec loop () =
      match P.read_frame ic with
      | Error "eof" -> ()
      | Error message ->
        (* Framing is unrecoverable mid-stream: answer once, hang up. *)
        bad_request ~id:"" message
      | Ok json -> (
        match P.request_of_json json with
        | Error message ->
          bad_request ~id:"" message;
          loop ()
        | Ok req ->
          let on_progress ~completed ~total =
            try_write (P.Progress { id = req.P.id; completed; total })
          in
          let reply = handle t ~on_progress req in
          try_write (P.Reply { id = req.P.id; reply });
          let n = note_served t in
          (match max_requests with
          | Some m when n >= m -> close_listener ()
          | _ -> ());
          (match reply with P.Shutdown_r -> () | _ -> loop ()))
    in
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock cmutex;
        Hashtbl.remove conns conn;
        Mutex.unlock cmutex;
        try Unix.close conn with Unix.Unix_error _ -> ())
      loop
  in
  while not (is_closed ()) do
    let readable =
      match Unix.select [ fd ] [] [] 0.2 with
      | r, _, _ -> r <> []
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if readable then
      match Unix.accept fd with
      | conn, _ ->
        Mutex.lock cmutex;
        Hashtbl.replace conns conn ();
        (* A shutdown may have raced this accept; wake the reader too. *)
        if !closed then
          (try Unix.shutdown conn Unix.SHUTDOWN_RECEIVE
           with Unix.Unix_error _ -> ());
        Mutex.unlock cmutex;
        threads := Thread.create handle_conn conn :: !threads
      | exception Unix.Unix_error _ -> close_listener ()
  done;
  close_listener ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  List.iter Thread.join !threads;
  t.stop <- None;
  (try Sys.remove path with Sys_error _ -> ());
  emit t "stopped" [ ("served", Events.fint (served t)) ]
