module Metrics = Geomix_obs.Metrics
module Events = Geomix_obs.Events
module Pool = Geomix_parallel.Pool
module Heap = Geomix_util.Heap
module Rng = Geomix_util.Rng
module Locations = Geomix_geostat.Locations
module Covariance = Geomix_geostat.Covariance
module Field = Geomix_geostat.Field
module Likelihood = Geomix_geostat.Likelihood
module Prediction = Geomix_geostat.Prediction
module Mp_cholesky = Geomix_core.Mp_cholesky
module Precision_map = Geomix_core.Precision_map
module Comm_map = Geomix_core.Comm_map
module Cholesky_dag = Geomix_runtime.Cholesky_dag
module Range_tracker = Geomix_autotune.Range_tracker
module Type_advisor = Geomix_autotune.Type_advisor
module Tiled = Geomix_tile.Tiled
module Guard = Geomix_integrity.Guard
module Span = Geomix_obs.Span
module Profile = Geomix_obs.Profile
module Expo = Geomix_obs.Expo
module Energy = Geomix_gpusim.Energy
module Gpu_specs = Geomix_gpusim.Gpu_specs
module Flops = Geomix_precision.Flops
module Fpformat = Geomix_precision.Fpformat
module Dag_exec = Geomix_parallel.Dag_exec
module P = Protocol

(* A waiter in the admission queue.  Ordering is (priority rank, arrival
   sequence): strict priority, FIFO within a class. *)
type ticket = { rank : int; seq : int; mutable granted : bool }

(* The graceful-shutdown state machine.  [Running] accepts; [Draining d]
   refuses new work but lets queued and in-flight requests finish until
   the absolute deadline [d] on the injected clock; [Stopped] is terminal
   (a forced stop, or a drain that ran its course). *)
type lifecycle = Running | Draining of float | Stopped

type t = {
  pool : Pool.t;
  cache : Cache.t;
  now : unit -> float;
  max_inflight : int;
  queue_capacity : int;
  max_order : int;
  max_replicates : int;
  faults : Geomix_fault.Fault.t option;
  retry : Geomix_fault.Retry.policy option;
  integrity : bool;
  drain_deadline_s : float;
  trace_sample : float;
  breaker : Breaker.t;
  mutex : Mutex.t;
  turn : Condition.t;
  waiting : ticket Heap.t;
  mutable waiting_count : int;
  mutable running : int;
  mutable seq : int;
  mutable served : int;
  mutable lifecycle : lifecycle;
  mutable stop : (unit -> unit) option;
  obs : Metrics.t;
  bus : Events.t option;
  m_requests : Metrics.counter;
  m_rejected : Metrics.counter;
  m_expired : Metrics.counter;
  m_errors : Metrics.counter;
  m_mc_replicates : Metrics.counter;
  m_recovered : Metrics.counter;
  m_escalated : Metrics.counter;
  m_indefinite : Metrics.counter;
  m_shed : Metrics.counter;
  m_inflight : Metrics.gauge;
  m_queue_depth : Metrics.gauge;
  m_queue_peak : Metrics.gauge;
  m_latency : Metrics.histogram;
}

let create ?obs ?bus ?(now = Unix.gettimeofday) ?(max_inflight = 4)
    ?(queue_capacity = 16) ?(cache_capacity = 32) ?(max_order = 4096)
    ?(max_replicates = 1024) ?faults ?retry ?(integrity = false)
    ?(drain_deadline_s = 5.0) ?(trace_sample = 0.) ?breaker_config ~pool () =
  if max_inflight < 1 then invalid_arg "Server.create: max_inflight must be >= 1";
  if queue_capacity < 0 then
    invalid_arg "Server.create: queue_capacity must be >= 0";
  if not (Float.is_finite drain_deadline_s) || drain_deadline_s < 0. then
    invalid_arg "Server.create: drain_deadline_s must be finite and >= 0";
  if not (Float.is_finite trace_sample) || trace_sample < 0. || trace_sample > 1.
  then invalid_arg "Server.create: trace_sample must be in [0, 1]";
  let obs = match obs with Some r -> r | None -> Metrics.create () in
  let cache = Cache.create ~obs ?bus ~capacity:cache_capacity () in
  let breaker = Breaker.create ~obs ?bus ?config:breaker_config ~now () in
  let cmp a b =
    if a.rank <> b.rank then compare a.rank b.rank else compare a.seq b.seq
  in
  {
    pool;
    cache;
    now;
    max_inflight;
    queue_capacity;
    max_order;
    max_replicates;
    faults;
    retry;
    integrity;
    drain_deadline_s;
    trace_sample;
    breaker;
    mutex = Mutex.create ();
    turn = Condition.create ();
    waiting = Heap.create ~cmp;
    waiting_count = 0;
    running = 0;
    seq = 0;
    served = 0;
    lifecycle = Running;
    stop = None;
    obs;
    bus;
    m_requests = Metrics.counter obs "serve.requests";
    m_rejected = Metrics.counter obs "serve.rejected";
    m_expired = Metrics.counter obs "serve.deadline_expired";
    m_errors = Metrics.counter obs "serve.errors";
    m_mc_replicates = Metrics.counter obs "serve.mc_replicates";
    m_recovered = Metrics.counter obs "serve.recovered";
    m_escalated = Metrics.counter obs "serve.escalated";
    m_indefinite = Metrics.counter obs "serve.indefinite";
    m_shed = Metrics.counter obs "serve.shed";
    m_inflight = Metrics.gauge obs "serve.inflight";
    m_queue_depth = Metrics.gauge obs "serve.queue_depth";
    m_queue_peak = Metrics.gauge obs "serve.queue_peak";
    m_latency = Metrics.histogram obs "serve.latency_s";
  }

let cache t = t.cache
let metrics t = t.obs
let pool t = t.pool
let breaker t = t.breaker

let emit ?(level = Events.Info) t name fields =
  match t.bus with
  | None -> ()
  | Some bus -> Events.emit ~level bus ~component:"serve" ~name fields

let served t =
  Mutex.lock t.mutex;
  let n = t.served in
  Mutex.unlock t.mutex;
  n

let note_served t =
  Mutex.lock t.mutex;
  t.served <- t.served + 1;
  let n = t.served in
  Mutex.unlock t.mutex;
  n

(* {2 Admission control}

   A bounded priority queue in front of [max_inflight] execution slots.
   Waiters never block on a timed wait — deadlines are evaluated against
   the injected clock at admission entry, at slot grant and between
   Monte-Carlo replicates, so the whole policy is deterministic under the
   virtual clock the tests drive. *)

(* Lock held.  Hand free slots to the best waiters; their [granted] flag
   flips under the lock and the condition broadcast wakes them. *)
let pump t =
  let granted = ref false in
  let continue = ref true in
  while !continue && t.running < t.max_inflight do
    match Heap.pop t.waiting with
    | None -> continue := false
    | Some tk ->
      t.waiting_count <- t.waiting_count - 1;
      tk.granted <- true;
      t.running <- t.running + 1;
      granted := true
  done;
  if !granted then Condition.broadcast t.turn

let admit t ~rank =
  Mutex.lock t.mutex;
  if t.running < t.max_inflight && Heap.is_empty t.waiting then begin
    t.running <- t.running + 1;
    Metrics.set t.m_inflight (float_of_int t.running);
    Mutex.unlock t.mutex;
    `Admitted
  end
  else if t.waiting_count >= t.queue_capacity then begin
    Mutex.unlock t.mutex;
    `Saturated
  end
  else begin
    t.seq <- t.seq + 1;
    let tk = { rank; seq = t.seq; granted = false } in
    Heap.push t.waiting tk;
    t.waiting_count <- t.waiting_count + 1;
    Metrics.set t.m_queue_depth (float_of_int t.waiting_count);
    Metrics.set_max t.m_queue_peak (float_of_int t.waiting_count);
    pump t;
    while not tk.granted do
      Condition.wait t.turn t.mutex
    done;
    Metrics.set t.m_inflight (float_of_int t.running);
    Metrics.set t.m_queue_depth (float_of_int t.waiting_count);
    Mutex.unlock t.mutex;
    `Admitted
  end

let release t =
  Mutex.lock t.mutex;
  t.running <- t.running - 1;
  pump t;
  Metrics.set t.m_inflight (float_of_int t.running);
  Metrics.set t.m_queue_depth (float_of_int t.waiting_count);
  Mutex.unlock t.mutex

let inflight t =
  Mutex.lock t.mutex;
  let n = t.running in
  Mutex.unlock t.mutex;
  n

let queued t =
  Mutex.lock t.mutex;
  let n = t.waiting_count in
  Mutex.unlock t.mutex;
  n

let deadline_passed t = function
  | None -> false
  | Some d -> t.now () > d

(* {2 Graceful lifecycle}

   Drain is a pure state machine on the injected clock: {!request_drain}
   flips [Running] to [Draining (now + drain_deadline_s)] once (further
   calls are no-ops — the idempotence the signal handler relies on), and
   {!drain_status} merely reads the state against the clock, never
   blocking — so the whole drain policy is testable on the virtual
   clock. *)

let request_drain t =
  Mutex.lock t.mutex;
  let started =
    match t.lifecycle with
    | Running ->
      t.lifecycle <- Draining (t.now () +. t.drain_deadline_s);
      true
    | Draining _ | Stopped -> false
  in
  Mutex.unlock t.mutex;
  if started then
    emit ~level:Events.Warn t "drain_begin"
      [ ("deadline_s", Events.fnum t.drain_deadline_s) ];
  started

let force_stop t =
  Mutex.lock t.mutex;
  let was = t.lifecycle in
  t.lifecycle <- Stopped;
  Mutex.unlock t.mutex;
  if was <> Stopped then emit ~level:Events.Warn t "force_stop" []

let draining t =
  Mutex.lock t.mutex;
  let d = t.lifecycle <> Running in
  Mutex.unlock t.mutex;
  d

let drain_status t =
  Mutex.lock t.mutex;
  let st =
    match t.lifecycle with
    | Running -> `Running
    | Stopped -> `Stopped
    | Draining d ->
      if t.running = 0 && t.waiting_count = 0 then `Drained
      else if t.now () > d then `Expired
      else `Draining (d -. t.now ())
  in
  Mutex.unlock t.mutex;
  st

(* {2 Problem construction} *)

let cov_of (k : Cache.key) =
  let { Cache.family; sigma2; beta; nu; nugget; _ } = k in
  match family with
  | Covariance.Sqexp -> Covariance.sqexp ~nugget ~sigma2 ~beta ()
  | Covariance.Matern -> Covariance.matern ~nugget ~sigma2 ~beta ~nu ()
  | Covariance.Powexp -> Covariance.powexp ~nugget ~sigma2 ~beta ~power:nu ()
  | Covariance.Spherical -> Covariance.spherical ~nugget ~sigma2 ~beta ()

let sites ~n ~seed =
  Locations.morton_sort
    (Locations.jittered_grid_2d ~rng:(Rng.create ~seed) ~n)

(* The memoized pre-work: a pure function of the shape key.  The advice
   pilot observes the input matrix only ([observe_tiled] records per-tile
   ranges and Frobenius mass), so a miss costs one covariance assembly and
   three O(NT²)–O(NT³) map constructions — no pilot factorization. *)
let build_artifact (key : Cache.key) : Cache.artifact =
  let cov = cov_of key in
  let locs = sites ~n:key.Cache.n ~seed:key.Cache.locs_seed in
  let a = Covariance.build_tiled cov locs ~nb:key.Cache.nb in
  let pmap = Precision_map.of_tiled ~u_req:key.Cache.u_req a in
  let cmap = Comm_map.compute pmap in
  let dag = Cholesky_dag.create ~nt:(Tiled.nt a) in
  let ranges = Range_tracker.create ~nt:(Tiled.nt a) in
  Range_tracker.observe_tiled ranges a;
  let advice = Type_advisor.advise ~u_req:key.Cache.u_req ~ranges ~pmap () in
  { Cache.locs; pmap; cmap; dag; advice }

let validate_spec t (s : P.spec) =
  let finite_pos x = Float.is_finite x && x > 0. in
  if s.P.n < 1 || s.P.n > t.max_order then
    Error (Printf.sprintf "n must be in [1, %d]" t.max_order)
  else if s.P.nb < 1 || s.P.nb > s.P.n then Error "nb must be in [1, n]"
  else if not (finite_pos s.P.u_req) then Error "u_req must be finite and positive"
  else if not (finite_pos s.P.sigma2) then Error "sigma2 must be finite and positive"
  else if not (finite_pos s.P.beta) then Error "beta must be finite and positive"
  else if not (Float.is_finite s.P.nugget) || s.P.nugget < 0. then
    Error "nugget must be finite and non-negative"
  else if not (Float.is_finite s.P.nu) then Error "nu must be finite"
  else Ok ()

let validate t = function
  | P.Ping | P.Health | P.Stats _ | P.Shutdown -> Ok ()
  | P.Likelihood s -> validate_spec t s
  | P.Predict { spec; n_new; _ } ->
    Result.bind (validate_spec t spec) (fun () ->
        if n_new < 1 || n_new > t.max_order then
          Error (Printf.sprintf "n_new must be in [1, %d]" t.max_order)
        else Ok ())
  | P.Mc_batch { spec; replicates } ->
    Result.bind (validate_spec t spec) (fun () ->
        if replicates < 1 || replicates > t.max_replicates then
          Error (Printf.sprintf "replicates must be in [1, %d]" t.max_replicates)
        else Ok ())

(* {2 Request execution} *)

(* The result of one resilient factorization: the memoized artifact, the
   factored (or restored) matrix, the authoritative reply status and the
   precision map the surviving round actually ran under — escalated
   rounds degrade it, and the likelihood's precision fractions must
   describe the factor that was computed, not the map that failed. *)
type factorized = {
  art : Cache.artifact;
  a : Tiled.t;
  hit : bool;
  status : P.status;
  fmap : Precision_map.t;
}

(* Everything a traced request accumulates on its way down the stack: the
   span the instrumented layers credit their transfers/tasks/retries to, a
   per-request profile collector for critical-path and energy attribution,
   and the shape/SDC facts the footer is assembled from at reply time. *)
type trace_ctx = {
  span : Span.t;
  prof : Profile.collector;
  mutable dag : Cholesky_dag.t option;  (* set once a factorization ran *)
  mutable t_nb : int;
  mutable sdc_detected : int;
  mutable sdc_recovered : int;
}

let make_trace t (req : P.request) =
  (* Deterministic per-request sampling on the id hash: the same request
     id samples identically on every replica, and [trace_sample = 1.0]
     traces everything. *)
  if
    t.trace_sample > 0.
    && Hashtbl.hash req.P.id land 0xFFFF
       < int_of_float (t.trace_sample *. 65536.)
  then
    Some
      {
        span = Span.create ~request_id:req.P.id ();
        prof = Profile.collector ();
        dag = None;
        t_nb = 0;
        sdc_detected = 0;
        sdc_recovered = 0;
      }
  else None

(* Factorize a fresh covariance assembly under the memoized maps, scoped
   to its own pool job so concurrent requests sharing the pool neither
   await nor observe each other.  The cached [cmap] equals what the
   factorization would derive itself (Algorithm 2 is deterministic), so a
   warm-cache run is bitwise identical to a cold one — the property the
   test suite pins.

   The run goes through [factorize_robust], so the server's configured
   resilience stack applies per request: the seeded fault plan injects,
   bounded retry re-executes transients from pre-attempt snapshots, a
   per-request integrity guard (snapshots on) quarantines and repairs
   SDC, and pivot failures escalate precision instead of erroring.  The
   guard is per-request — stamps from concurrent requests must not mix —
   while the [integrity.*] counters it registers are shared through the
   registry (counter registration is idempotent by name).

   Status precedence: a failed all-FP64 round is [Indefinite]; a run that
   needed band/full escalation is [Escalated] even if it also repaired
   corruption (precision degradation is the part the client must see);
   a clean-map run that repaired SDC in place is [Corrupt_recovered] —
   its numbers are bitwise-identical to a fault-free run; else [Clean].
   Escalated and indefinite runs invalidate the cached artifact so a
   warm hit can never launder a degraded precision map into a later
   request. *)
let factorized_problem ?trace t (key : Cache.key) =
  let span = Option.map (fun c -> c.span) trace in
  let art, hit = Cache.find_or_build ?span t.cache key ~build:build_artifact in
  let cov = cov_of key in
  let a = Covariance.build_tiled cov art.Cache.locs ~nb:key.Cache.nb in
  let job = Pool.new_job ?span t.pool in
  let guard =
    if t.integrity then Some (Guard.create ~obs:t.obs ?bus:t.bus ~snapshots:true ())
    else None
  in
  let report =
    Mp_cholesky.factorize_robust ~pool:t.pool ~job ?bus:t.bus ?span
      ?profile:(Option.map (fun c -> c.prof) trace)
      ?faults:t.faults ?retry:t.retry ?integrity:guard ~obs:t.obs
      ~cmap:art.Cache.cmap ~pmap:art.Cache.pmap a
  in
  (match trace with
  | None -> ()
  | Some c ->
    c.dag <- Some art.Cache.dag;
    c.t_nb <- key.Cache.nb;
    (match guard with
    | Some g ->
      c.sdc_detected <- c.sdc_detected + Guard.detected g;
      c.sdc_recovered <- c.sdc_recovered + Guard.recovered g
    | None -> ()));
  let recovered = match guard with Some g -> Guard.recovered g | None -> 0 in
  let escalations = List.length report.Mp_cholesky.escalations in
  let status =
    match report.Mp_cholesky.outcome with
    | Mp_cholesky.Indefinite _ -> P.Indefinite
    | Mp_cholesky.Factorized ->
      if escalations > 0 then P.Escalated escalations
      else if recovered > 0 then P.Corrupt_recovered recovered
      else P.Clean
  in
  (match status with
  | P.Escalated k ->
    Metrics.incr t.m_escalated;
    ignore (Cache.invalidate t.cache key);
    emit ~level:Events.Warn t "escalated"
      [
        ("key", Events.fstr (Cache.key_label key));
        ("escalations", Events.fint k);
        ("rounds", Events.fint report.Mp_cholesky.rounds);
      ]
  | P.Indefinite ->
    Metrics.incr t.m_indefinite;
    ignore (Cache.invalidate t.cache key)
  | P.Corrupt_recovered k ->
    Metrics.incr t.m_recovered;
    emit ~level:Events.Warn t "recovered"
      [
        ("key", Events.fstr (Cache.key_label key));
        ("recoveries", Events.fint k);
      ]
  | P.Clean -> ());
  { art; a; hit; status; fmap = report.Mp_cholesky.pmap }

let quad_form y = Array.fold_left (fun acc v -> acc +. (v *. v)) 0. y

let indefinite_likelihood ~cache_hit =
  P.Likelihood_r
    {
      loglik = neg_infinity;
      log_det = nan;
      quad_form = nan;
      status = P.Indefinite;
      cache_hit;
    }

let run_likelihood ?trace t (spec : P.spec) =
  let key = Cache.key_of_spec spec in
  let f = factorized_problem ?trace t key in
  if f.status = P.Indefinite then indefinite_likelihood ~cache_hit:f.hit
  else
    let cov = cov_of key in
    let z =
      Field.synthesize ~rng:(Rng.create ~seed:spec.P.data_seed) ~cov
        f.art.Cache.locs
    in
    let y = Mp_cholesky.solve_lower f.a z in
    let ev =
      Likelihood.assemble ~n:spec.P.n ~log_det:(Mp_cholesky.log_det f.a)
        ~quad_form:(quad_form y)
        ~precision_fractions:(Precision_map.fractions f.fmap)
        ()
    in
    P.Likelihood_r
      {
        loglik = ev.Likelihood.loglik;
        log_det = ev.Likelihood.log_det;
        quad_form = ev.Likelihood.quad_form;
        status = f.status;
        cache_hit = f.hit;
      }

let run_predict ?trace t (spec : P.spec) ~n_new ~pred_seed =
  let key = Cache.key_of_spec spec in
  let span = Option.map (fun c -> c.span) trace in
  let art, hit = Cache.find_or_build ?span t.cache key ~build:build_artifact in
  let cov = cov_of key in
  let z =
    Field.synthesize ~rng:(Rng.create ~seed:spec.P.data_seed) ~cov
      art.Cache.locs
  in
  let new_locs = Locations.uniform_2d ~rng:(Rng.create ~seed:pred_seed) ~n:n_new in
  let p = Prediction.predict ~cov ~obs_locs:art.Cache.locs ~z ~new_locs in
  P.Predict_r
    { mean = p.Prediction.mean; variance = p.Prediction.variance; cache_hit = hit }

let run_mc ?trace t ~req_id ~deadline ~on_progress (spec : P.spec) ~replicates =
  let key = Cache.key_of_spec spec in
  let f = factorized_problem ?trace t key in
  if f.status = P.Indefinite then
    P.Mc_r
      {
        logliks = Array.make replicates neg_infinity;
        mean_loglik = neg_infinity;
        status = P.Indefinite;
        cache_hit = f.hit;
      }
  else begin
    let cov = cov_of key in
    let zs =
      Field.synthesize_many
        ~rng:(Rng.create ~seed:spec.P.data_seed)
        ~cov ~replicas:replicates f.art.Cache.locs
    in
    let log_det = Mp_cholesky.log_det f.a in
    let fractions = Precision_map.fractions f.fmap in
    let logliks = Array.make replicates nan in
    let completed = Atomic.make 0 in
    let expired = Atomic.make false in
    (* One pool-level job fans the batch out; every replicate solves
       against the shared factor (triangular solves only read it) and
       streams its completion.  The deadline is re-checked per replicate:
       an expired batch stops doing work instead of finishing late.

       Under brown-out the fan-out is capped: replicates are submitted in
       waves of [Breaker.mc_chunk] and the job is joined between waves
       (jobs are sequentially reusable), so one big batch cannot
       monopolize the pool while the server is already behind.  Each
       replicate is independent, so chunking changes scheduling only —
       the logliks are identical to the unchunked run. *)
    let job = Pool.new_job ?span:(Option.map (fun c -> c.span) trace) t.pool in
    let submit r =
      Pool.submit_job t.pool job (fun () ->
          if deadline_passed t deadline then Atomic.set expired true
          else begin
            let y = Mp_cholesky.solve_lower f.a zs.(r) in
            let ev =
              Likelihood.assemble ~n:spec.P.n ~log_det
                ~quad_form:(quad_form y) ~precision_fractions:fractions ()
            in
            logliks.(r) <- ev.Likelihood.loglik;
            Metrics.incr t.m_mc_replicates;
            let c = 1 + Atomic.fetch_and_add completed 1 in
            emit ~level:Events.Debug t "mc_replicate"
              [
                ("id", Events.fstr req_id);
                ("completed", Events.fint c);
                ("total", Events.fint replicates);
              ];
            on_progress ~completed:c ~total:replicates
          end)
    in
    let next = ref 0 in
    while !next < replicates && not (Atomic.get expired) do
      let chunk = Breaker.mc_chunk t.breaker ~replicates:(replicates - !next) in
      let upto = min replicates (!next + chunk) in
      for r = !next to upto - 1 do
        submit r
      done;
      Pool.join_job t.pool job;
      next := upto
    done;
    if Atomic.get expired then
      P.Error_r
        { code = P.Deadline_exceeded; message = "deadline expired mid-batch" }
    else begin
      let sum = Array.fold_left ( +. ) 0. logliks in
      P.Mc_r
        {
          logliks;
          mean_loglik = sum /. float_of_int replicates;
          status = f.status;
          cache_hit = f.hit;
        }
    end
  end

let run_payload ?trace t ~req_id ~deadline ~on_progress = function
  | P.Ping | P.Health | P.Stats _ | P.Shutdown ->
    assert false (* handled before admission *)
  | P.Likelihood spec -> run_likelihood ?trace t spec
  | P.Predict { spec; n_new; pred_seed } ->
    run_predict ?trace t spec ~n_new ~pred_seed
  | P.Mc_batch { spec; replicates } ->
    run_mc ?trace t ~req_id ~deadline ~on_progress spec ~replicates

(* The readiness snapshot, answered before admission so probes work while
   the server is saturated or draining. *)
let health t =
  let s = Cache.stats t.cache in
  {
    P.inflight = inflight t;
    queued = queued t;
    served = served t;
    draining = draining t;
    brownout = Breaker.tripped t.breaker;
    cache_hits = s.Cache.hits;
    cache_misses = s.Cache.misses;
    cache_evictions = s.Cache.evictions;
    recovered = Metrics.counter_value t.m_recovered;
    escalated = Metrics.counter_value t.m_escalated;
    shed = Metrics.counter_value t.m_shed;
  }

(* The pull surface: the whole registry rendered in the requested format.
   Answered before admission (like [Health]) so [geomix top] and a
   Prometheus poller keep seeing the server while it is saturated or
   draining. *)
let stats_body t = function
  | P.Stats_json -> Metrics.to_json_string (Metrics.snapshot t.obs)
  | P.Stats_prom -> Expo.to_prometheus (Metrics.snapshot t.obs)

(* Assemble the reply footer of a traced request: the span's raw motion
   accounting plus the derived quantities — duration-weighted critical
   path and modeled energy from the per-request profile (A100 power model,
   busy seconds bucketed by kernel precision), SDC counts from the
   per-request guard, and the carried reply's status/cache facts. *)
let footer_of t c ~wall reply =
  let cp_s, energy_j =
    match (c.dag, Profile.measures c.prof) with
    | Some dag, (_ :: _ as ms) ->
      let preds =
        Dag_exec.predecessors
          ~num_tasks:(Cholesky_dag.num_tasks dag)
          ~successors:(Cholesky_dag.successors dag)
      in
      let prof = Profile.analyze ~preds ms in
      let busy =
        List.filter_map
          (fun (b : Profile.bucket) ->
            Option.map (fun f -> (f, b.Profile.busy))
              (Fpformat.of_string b.Profile.key))
          prof.Profile.by_precision
      in
      let flops = Flops.cholesky_tiled ~nt:(Cholesky_dag.nt dag) ~nb:c.t_nb in
      let e =
        Energy.of_busy Gpu_specs.a100 ~makespan:prof.Profile.makespan
          ~ngpus:(max 1 (Pool.num_workers t.pool))
          ~flops ~busy
      in
      (prof.Profile.cp_length, e.Energy.energy_joules)
    | _ -> (0., 0.)
  in
  let cache_hit, status =
    match reply with
    | P.Likelihood_r { status; cache_hit; _ } | P.Mc_r { status; cache_hit; _ }
      ->
      (cache_hit, P.status_name status)
    | P.Predict_r { cache_hit; _ } -> (cache_hit, P.status_name P.Clean)
    | P.Error_r { code; _ } -> (false, P.error_code_name code)
    | P.Pong | P.Health_r _ | P.Stats_r _ | P.Shutdown_r -> (false, "clean")
  in
  {
    P.f_span = Span.summary c.span;
    f_energy_j = energy_j;
    f_cp_s = cp_s;
    f_wall_s = wall;
    f_cache_hit = cache_hit;
    f_sdc_detected = c.sdc_detected;
    f_sdc_recovered = c.sdc_recovered;
    f_status = status;
  }

let handle_traced t ?(on_progress = fun ~completed:_ ~total:_ -> ())
    (req : P.request) =
  match req.P.payload with
  | P.Ping -> (P.Pong, None)
  | P.Health -> (P.Health_r (health t), None)
  | P.Stats fmt -> (P.Stats_r { format = fmt; body = stats_body t fmt }, None)
  | P.Shutdown ->
    emit t "shutdown" [ ("id", Events.fstr req.P.id) ];
    (match t.stop with Some stop -> stop () | None -> ());
    (P.Shutdown_r, None)
  | payload -> (
    Metrics.incr t.m_requests;
    emit ~level:Events.Debug t "request"
      [
        ("id", Events.fstr req.P.id);
        ("op", Events.fstr (P.op_name payload));
        ("priority", Events.fstr (P.priority_name req.P.priority));
      ];
    match validate t payload with
    | Error message ->
      Metrics.incr t.m_errors;
      emit ~level:Events.Warn t "bad_request"
        [ ("id", Events.fstr req.P.id); ("error", Events.fstr message) ];
      (P.Error_r { code = P.Bad_request; message }, None)
    | Ok () ->
      let t0 = t.now () in
      let deadline = Option.map (fun s -> t0 +. s) req.P.timeout_s in
      (* Admission-time queue-depth sample for the brown-out breaker. *)
      Breaker.note_queue t.breaker
        ~frac:
          (float_of_int (queued t) /. float_of_int (max 1 t.queue_capacity));
      if draining t then begin
        Metrics.incr t.m_rejected;
        emit ~level:Events.Warn t "rejected"
          [ ("id", Events.fstr req.P.id); ("why", Events.fstr "draining") ];
        ( P.Error_r
            { code = P.Saturated; message = "server draining, not accepting work" },
          None )
      end
      else if deadline_passed t deadline then begin
        Metrics.incr t.m_expired;
        emit ~level:Events.Warn t "deadline_expired"
          [ ("id", Events.fstr req.P.id); ("where", Events.fstr "admission") ];
        ( P.Error_r
            {
              code = P.Deadline_exceeded;
              message = "deadline expired at admission";
            },
          None )
      end
      else if Breaker.tripped t.breaker && req.P.priority = P.Low then begin
        (* Brown-out: shed the lowest class at admission so the work the
           server does accept still meets its deadlines. *)
        Metrics.incr t.m_shed;
        Metrics.incr t.m_rejected;
        emit ~level:Events.Warn t "shed" [ ("id", Events.fstr req.P.id) ];
        ( P.Error_r
            { code = P.Saturated; message = "brown-out: low-priority request shed" },
          None )
      end
      else
        match admit t ~rank:(P.priority_rank req.P.priority) with
        | `Saturated ->
          Metrics.incr t.m_rejected;
          emit ~level:Events.Warn t "rejected"
            [ ("id", Events.fstr req.P.id) ];
          ( P.Error_r
              {
                code = P.Saturated;
                message =
                  Printf.sprintf "server saturated (%d in flight, %d queued)"
                    t.max_inflight t.queue_capacity;
              },
            None )
        | `Admitted ->
          Fun.protect
            ~finally:(fun () -> release t)
            (fun () ->
              if deadline_passed t deadline then begin
                Metrics.incr t.m_expired;
                Breaker.note_outcome t.breaker ~missed:true;
                emit ~level:Events.Warn t "deadline_expired"
                  [ ("id", Events.fstr req.P.id); ("where", Events.fstr "grant") ];
                ( P.Error_r
                    {
                      code = P.Deadline_exceeded;
                      message = "deadline expired while queued";
                    },
                  None )
              end
              else
                let trace = make_trace t req in
                match
                  run_payload ?trace t ~req_id:req.P.id ~deadline ~on_progress
                    payload
                with
                | reply ->
                  let dt = t.now () -. t0 in
                  Metrics.observe t.m_latency dt;
                  let missed =
                    match reply with
                    | P.Error_r { code = P.Deadline_exceeded; _ } ->
                      Metrics.incr t.m_expired;
                      true
                    | _ -> false
                  in
                  Breaker.note_outcome t.breaker ~missed;
                  emit ~level:Events.Debug t "done"
                    [
                      ("id", Events.fstr req.P.id);
                      ("latency_s", Events.fnum dt);
                    ];
                  (reply, Option.map (fun c -> footer_of t c ~wall:dt reply) trace)
                | exception exn ->
                  Metrics.incr t.m_errors;
                  let message = Printexc.to_string exn in
                  emit ~level:Events.Error t "internal_error"
                    [
                      ("id", Events.fstr req.P.id);
                      ("error", Events.fstr message);
                    ];
                  (P.Error_r { code = P.Internal; message }, None)))

let handle t ?on_progress req = fst (handle_traced t ?on_progress req)

(* {2 Unix-domain-socket front end} *)

type outcome = Served | Drained | Drain_expired | Forced

let outcome_name = function
  | Served -> "served"
  | Drained -> "drained"
  | Drain_expired -> "drain_expired"
  | Forced -> "forced"

(* Signal plumbing.  A handler may only do async-signal-safe work, so it
   just bumps a module-global counter; the accept loop polls it between
   selects.  One signal begins a drain, a second forces immediate stop.
   [notify_signal] is the handler body, exposed so tests can drive the
   exact same path without delivering real signals. *)

let signal_count = Atomic.make 0
let notify_signal () = Atomic.incr signal_count
let signals_installed = Atomic.make false

let install_drain_signals () =
  if not (Atomic.exchange signals_installed true) then begin
    let h = Sys.Signal_handle (fun _ -> notify_signal ()) in
    (try Sys.set_signal Sys.sigterm h with Invalid_argument _ | Sys_error _ -> ());
    (try Sys.set_signal Sys.sigint h with Invalid_argument _ | Sys_error _ -> ())
  end

let serve_unix t ~path ?(backlog = 64) ?max_requests ?stats_path ?telemetry
    ?(telemetry_interval_s = 1.0) () =
  (* A client gone mid-stream must surface as Sys_error (EPIPE) in
     [try_write], not deliver a process-killing SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* A signal delivered before this serve run belongs to a previous run
     (or to the launcher); the drain policy starts from a clean slate. *)
  Atomic.set signal_count 0;
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd backlog;
  let closed = ref false in
  let cmutex = Mutex.create () in
  (* Open connection fds, guarded by [cmutex]; shutdown must wake their
     reader threads or the final join would wait on idle clients. *)
  let conns : (Unix.file_descr, unit) Hashtbl.t = Hashtbl.create 16 in
  let is_closed () =
    Mutex.lock cmutex;
    let c = !closed in
    Mutex.unlock cmutex;
    c
  in
  let close_listener () =
    Mutex.lock cmutex;
    if not !closed then begin
      closed := true;
      (* Closing a listening fd does not wake a thread blocked in accept(2);
         shutdown does.  The accept loop owns the actual close. *)
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      (* Receive side only: blocked readers see EOF and drain, while
         in-flight replies (the Shutdown_r handshake) still flush. *)
      Hashtbl.iter
        (fun conn () ->
          try Unix.shutdown conn Unix.SHUTDOWN_RECEIVE
          with Unix.Unix_error _ -> ())
        conns
    end;
    Mutex.unlock cmutex
  in
  t.stop <- Some close_listener;
  emit t "listening" [ ("path", Events.fstr path) ];
  (* The scrape surface: a second Unix listener that answers every
     connection with one full Prometheus exposition of the registry and
     hangs up — the curl/Prometheus-friendly pull endpoint, independent of
     the framed request protocol (and of admission, so scrapes keep
     working while the server is saturated or draining). *)
  let stats_thread =
    Option.map
      (fun spath ->
        if Sys.file_exists spath then Sys.remove spath;
        let sfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind sfd (Unix.ADDR_UNIX spath);
        Unix.listen sfd 16;
        emit t "stats_listening" [ ("path", Events.fstr spath) ];
        Thread.create
          (fun () ->
            while not (is_closed ()) do
              let readable =
                match Unix.select [ sfd ] [] [] 0.2 with
                | r, _, _ -> r <> []
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
              in
              if readable && not (is_closed ()) then
                match Unix.accept sfd with
                | conn, _ ->
                  let oc = Unix.out_channel_of_descr conn in
                  (try
                     output_string oc
                       (Expo.to_prometheus (Metrics.snapshot t.obs));
                     flush oc
                   with Sys_error _ -> ());
                  (try Unix.close conn with Unix.Unix_error _ -> ())
                | exception Unix.Unix_error _ -> ()
            done;
            (try Unix.close sfd with Unix.Unix_error _ -> ());
            try Sys.remove spath with Sys_error _ -> ())
          ())
      stats_path
  in
  (* Rolling telemetry: one registry snapshot line per interval on the
     injected clock, rotated by the snapshotter itself. *)
  let last_snap = ref neg_infinity in
  let maybe_snap () =
    match telemetry with
    | None -> ()
    | Some s ->
      if t.now () -. !last_snap >= telemetry_interval_s then begin
        last_snap := t.now ();
        Expo.snap s (Metrics.snapshot t.obs)
      end
  in
  let threads = ref [] in
  let handle_conn conn =
    let ic = Unix.in_channel_of_descr conn in
    let oc = Unix.out_channel_of_descr conn in
    let wmutex = Mutex.create () in
    let write_frame frame =
      Mutex.lock wmutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock wmutex)
        (fun () -> P.write_frame oc (P.frame_to_json frame))
    in
    let try_write frame = try write_frame frame with Sys_error _ -> () in
    let bad_request ~id message =
      try_write
        (P.Reply
           {
             id;
             reply = P.Error_r { code = P.Bad_request; message };
             footer = None;
           })
    in
    let rec loop () =
      match P.read_frame ic with
      | Error "eof" -> ()
      | Error message ->
        (* Framing is unrecoverable mid-stream: answer once, hang up. *)
        bad_request ~id:"" message
      | Ok json -> (
        match P.request_of_json json with
        | Error message ->
          bad_request ~id:"" message;
          loop ()
        | Ok req ->
          let on_progress ~completed ~total =
            try_write (P.Progress { id = req.P.id; completed; total })
          in
          let reply, footer = handle_traced t ~on_progress req in
          try_write (P.Reply { id = req.P.id; reply; footer });
          let n = note_served t in
          (match max_requests with
          | Some m when n >= m -> close_listener ()
          | _ -> ());
          (match reply with P.Shutdown_r -> () | _ -> loop ()))
    in
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock cmutex;
        Hashtbl.remove conns conn;
        Mutex.unlock cmutex;
        try Unix.close conn with Unix.Unix_error _ -> ())
      loop
  in
  let drain_started = ref false in
  let begin_drain () =
    if not !drain_started then begin
      drain_started := true;
      ignore (request_drain t);
      (* Stop accepting and EOF idle readers; queued and in-flight
         requests keep running and their replies still flush. *)
      close_listener ()
    end
  in
  let check_signals () =
    match Atomic.get signal_count with
    | 0 -> ()
    | 1 -> begin_drain ()
    | _ ->
      force_stop t;
      close_listener ()
  in
  while not (is_closed ()) do
    check_signals ();
    maybe_snap ();
    let readable =
      (not (is_closed ()))
      &&
      match Unix.select [ fd ] [] [] 0.2 with
      | r, _, _ -> r <> []
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if readable then
      match Unix.accept fd with
      | conn, _ ->
        Mutex.lock cmutex;
        Hashtbl.replace conns conn ();
        (* A shutdown may have raced this accept; wake the reader too. *)
        if !closed then
          (try Unix.shutdown conn Unix.SHUTDOWN_RECEIVE
           with Unix.Unix_error _ -> ());
        Mutex.unlock cmutex;
        threads := Thread.create handle_conn conn :: !threads
      | exception Unix.Unix_error _ -> close_listener ()
  done;
  close_listener ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (* Decide how this run ends.  A forced stop (second signal) and an
     expired drain must not join the connection threads — an in-flight
     factorization cannot be interrupted, and the caller (the CLI) exits
     the process, which is the cancellation. *)
  let outcome =
    if Atomic.get signal_count >= 2 then Forced
    else if !drain_started then begin
      let rec await () =
        if Atomic.get signal_count >= 2 then begin
          force_stop t;
          Forced
        end
        else
          match drain_status t with
          | `Drained | `Running | `Stopped ->
            (* [`Running]/[`Stopped] are unreachable here (drain was
               requested and nothing re-opens it); join and finish. *)
            List.iter Thread.join !threads;
            Drained
          | `Expired -> Drain_expired
          | `Draining _ ->
            Thread.delay 0.02;
            await ()
      in
      await ()
    end
    else begin
      List.iter Thread.join !threads;
      Served
    end
  in
  t.stop <- None;
  Option.iter Thread.join stats_thread;
  (* A terminal snapshot so even a run shorter than the interval leaves
     one line of telemetry behind. *)
  (match telemetry with
  | None -> ()
  | Some s -> Expo.snap s (Metrics.snapshot t.obs));
  (try Sys.remove path with Sys_error _ -> ());
  emit t "stopped"
    [
      ("served", Events.fint (served t));
      ("outcome", Events.fstr (outcome_name outcome));
    ];
  outcome
