module Fpformat = Geomix_precision.Fpformat
module Mat = Geomix_linalg.Mat

type t = { fnv : int64; fro : float; rows : int; cols : int }

(* FNV-1a over the 8-byte binary64 images of the entries, column-major —
   the order the Bigarray stores them, so the hash is a pure function of
   the tile's byte image.  The dimensions are folded in first so two tiles
   whose flattened payloads coincide but whose shapes differ still hash
   apart. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let[@inline] fnv_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int b)) fnv_prime

let fnv_int64 h bits =
  let h = ref h in
  for k = 0 to 7 do
    h := fnv_byte !h (Int64.to_int (Int64.shift_right_logical bits (8 * k)) land 0xff)
  done;
  !h

let hash m =
  let rows = Mat.rows m and cols = Mat.cols m in
  let h = ref (fnv_int64 (fnv_int64 fnv_offset (Int64.of_int rows)) (Int64.of_int cols)) in
  for j = 0 to cols - 1 do
    for i = 0 to rows - 1 do
      h := fnv_int64 !h (Int64.bits_of_float (Mat.unsafe_get m i j))
    done
  done;
  !h

let stamp m = { fnv = hash m; fro = Mat.frobenius m; rows = Mat.rows m; cols = Mat.cols m }

let bytes t = 8 * t.rows * t.cols

let dims_match t m = t.rows = Mat.rows m && t.cols = Mat.cols m

let matches t m = dims_match t m && Int64.equal t.fnv (hash m)

let default_safety = 2.

(* Rounding every entry of A into a format with unit roundoff u and
   subnormal spacing d moves each entry by at most u·|a_ij| (normal range)
   plus d/2 (gradual underflow), so
   |‖round(A)‖_F − ‖A‖_F| ≤ ‖round(A) − A‖_F ≤ u·‖A‖_F + (d/2)·√(rows·cols).
   The safety factor absorbs the binary64 rounding of the norm computation
   itself. *)
let conv_tolerance ?(safety = default_safety) ~u_low ?(tiny = 0.) t =
  safety
  *. ((u_low *. t.fro) +. (0.5 *. tiny *. sqrt (float_of_int (t.rows * t.cols))))

let matches_converted ?safety ~u_low ?tiny t m =
  dims_match t m
  &&
  let fro = Mat.frobenius m in
  Float.is_finite fro
  && Float.abs (fro -. t.fro) <= conv_tolerance ?safety ~u_low ?tiny t

let matches_scalar ?safety t ~scalar m =
  match scalar with
  | Fpformat.S_fp64 -> matches t m
  | s ->
    matches_converted ?safety
      ~u_low:(Fpformat.scalar_unit_roundoff s)
      ~tiny:(Fpformat.scalar_min_subnormal s)
      t m

let to_string t =
  Printf.sprintf "{fnv=%Lx; fro=%.17g; %dx%d}" t.fnv t.fro t.rows t.cols
