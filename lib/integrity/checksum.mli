(** Per-tile checksums: an exact byte-image hash plus a Frobenius-norm
    fingerprint that tolerates precision conversion.

    A {!t} is stamped from a tile at a {e producer} boundary and checked at
    a {e consumer} boundary.  Two verification disciplines, one per hop
    kind:

    - {!matches}: FNV-1a over the tile's binary64 byte image — the ABFT
      check for hops that must preserve the tile bit-for-bit (a broadcast
      payload between a publish and its reads, a stored tile between its
      writer and the next kernel that touches it).  Any flipped bit, any
      swapped tile, fails.
    - {!matches_converted} / {!matches_scalar}: the Frobenius fingerprint
      within a tolerance derived from the target format's unit roundoff
      [u_low] (the Higham–Mary quantity the precision map is built from) —
      the check for hops that legitimately change the bytes, i.e. the
      down-conversions of the automated-precision pipeline (FP64 working
      tile → FP32-class storage, storage → Algorithm 2's STC transfer
      format).  A lawful rounding moves the norm by at most
      [u_low·‖A‖_F + (d/2)·√n] (d the subnormal spacing), so it passes; a
      corruption that touches a high-order mantissa or exponent bit moves
      the norm far beyond it and fails.

    The norm fingerprint is deliberately the {e weak}, conversion-tolerant
    half of the scheme: its detection floor is a magnitude change of order
    [u_low·‖A‖_F].  The exact hash — re-stamped immediately {e after} each
    conversion — is the strong half that catches everything in between
    conversions.  Checksum computation never mutates the tile. *)

type t = {
  fnv : int64;  (** FNV-1a 64 over dims + byte image, column-major *)
  fro : float;  (** Frobenius norm, computed in binary64 *)
  rows : int;
  cols : int;
}

val stamp : Geomix_linalg.Mat.t -> t

val hash : Geomix_linalg.Mat.t -> int64
(** The byte-image hash alone. *)

val bytes : t -> int
(** Bytes covered by the stamp ([8·rows·cols]) — the unit the integrity
    metrics account overhead in. *)

val matches : t -> Geomix_linalg.Mat.t -> bool
(** Exact verification: dimensions and byte-image hash both match. *)

val matches_converted :
  ?safety:float -> u_low:float -> ?tiny:float -> t -> Geomix_linalg.Mat.t -> bool
(** Conversion-tolerant verification of a tile that was rounded into a
    format with unit roundoff [u_low] and smallest positive value [tiny]
    (default [0.]) since the stamp was taken: dimensions match and the
    Frobenius norm moved by at most {!conv_tolerance}.  A non-finite norm
    (overflow to infinity in transit) always fails. *)

val matches_scalar :
  ?safety:float -> t -> scalar:Geomix_precision.Fpformat.scalar ->
  Geomix_linalg.Mat.t -> bool
(** {!matches_converted} with [u_low] and [tiny] taken from the scalar
    format's {!Geomix_precision.Fpformat.scalar_unit_roundoff} and
    {!Geomix_precision.Fpformat.scalar_min_subnormal}; [S_fp64] (the
    identity conversion) degrades to the exact check. *)

val conv_tolerance : ?safety:float -> u_low:float -> ?tiny:float -> t -> float
(** [safety·(u_low·fro + (tiny/2)·√(rows·cols))], [safety] default 2 —
    the error-analysis bound on the norm movement of a lawful rounding,
    with the safety factor absorbing the binary64 rounding of the norm
    computation itself. *)

val default_safety : float

val to_string : t -> string
(** Debug rendering. *)
