module Metrics = Geomix_obs.Metrics
module Events = Geomix_obs.Events
module Mat = Geomix_linalg.Mat
module Fpformat = Geomix_precision.Fpformat

type violation = { key : int; task : string; reason : string }

exception Corrupt of violation

let () =
  Printexc.register_printer (function
    | Corrupt { key; task; reason } ->
      Some
        (Printf.sprintf "Geomix_integrity.Guard.Corrupt(key %d in %s: %s)" key
           task reason)
    | _ -> None)

type obs_state = {
  m_stamped : Metrics.counter;
  m_verified : Metrics.counter;
  m_detected : Metrics.counter;
  m_recovered : Metrics.counter;
  m_violations : Metrics.counter;
  m_bytes : Metrics.counter;
}

type entry = { cs : Checksum.t; snap : Mat.t option }

type t = {
  safety : float;
  snapshots : bool;
  mutex : Mutex.t;
  table : (int, entry) Hashtbl.t;
  n_stamped : int Atomic.t;
  n_verified : int Atomic.t;
  n_detected : int Atomic.t;
  n_recovered : int Atomic.t;
  n_violations : int Atomic.t;
  n_bytes : int Atomic.t;
  obs : obs_state option;
  bus : Events.t option;
}

let create ?obs ?bus ?(snapshots = false) ?(safety = Checksum.default_safety) () =
  {
    safety;
    snapshots;
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    n_stamped = Atomic.make 0;
    n_verified = Atomic.make 0;
    n_detected = Atomic.make 0;
    n_recovered = Atomic.make 0;
    n_violations = Atomic.make 0;
    n_bytes = Atomic.make 0;
    obs =
      Option.map
        (fun reg ->
          {
            m_stamped = Metrics.counter reg "integrity.stamped";
            m_verified = Metrics.counter reg "integrity.verified";
            m_detected = Metrics.counter reg "integrity.sdc_detected";
            m_recovered = Metrics.counter reg "integrity.sdc_recovered";
            m_violations = Metrics.counter reg "integrity.violations";
            m_bytes = Metrics.counter reg "integrity.hashed_bytes";
          })
        obs;
    bus;
  }

let snapshots t = t.snapshots

let reset t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.table;
  Mutex.unlock t.mutex

let find t ~key =
  Mutex.lock t.mutex;
  let e = Hashtbl.find_opt t.table key in
  Mutex.unlock t.mutex;
  Option.map (fun e -> e.cs) e

let count_bytes t n =
  Atomic.fetch_and_add t.n_bytes n |> ignore;
  match t.obs with None -> () | Some o -> Metrics.add o.m_bytes n

let put t ~key cs snap =
  Mutex.lock t.mutex;
  Hashtbl.replace t.table key { cs; snap };
  Mutex.unlock t.mutex;
  Atomic.incr t.n_stamped;
  count_bytes t (Checksum.bytes cs);
  match t.obs with None -> () | Some o -> Metrics.incr o.m_stamped

let stamp t ~key m =
  put t ~key (Checksum.stamp m) (if t.snapshots then Some (Mat.copy m) else None)

let check t ~key m =
  Atomic.incr t.n_verified;
  count_bytes t (8 * Mat.rows m * Mat.cols m);
  (match t.obs with None -> () | Some o -> Metrics.incr o.m_verified);
  match find t ~key with None -> true | Some cs -> Checksum.matches cs m

let note_detected t ~key ~task =
  Atomic.incr t.n_detected;
  (match t.obs with None -> () | Some o -> Metrics.incr o.m_detected);
  match t.bus with
  | None -> ()
  | Some bus ->
    Events.emit ~level:Events.Warn bus ~component:"integrity" ~name:"sdc_detected"
      [ ("key", Events.fint key); ("task", Events.fstr task) ]

let note_recovered t ~key ~task =
  Atomic.incr t.n_recovered;
  (match t.obs with None -> () | Some o -> Metrics.incr o.m_recovered);
  match t.bus with
  | None -> ()
  | Some bus ->
    Events.emit ~level:Events.Warn bus ~component:"integrity" ~name:"sdc_recovered"
      [ ("key", Events.fint key); ("task", Events.fstr task) ]

let corrupt t ~key ~task reason =
  Atomic.incr t.n_violations;
  (match t.obs with None -> () | Some o -> Metrics.incr o.m_violations);
  (match t.bus with
  | None -> ()
  | Some bus ->
    Events.emit ~level:Events.Error bus ~component:"integrity" ~name:"corrupt"
      [
        ("key", Events.fint key);
        ("task", Events.fstr task);
        ("reason", Events.fstr reason);
      ]);
  raise (Corrupt { key; task; reason })

let verify t ~key ~task m =
  if not (check t ~key m) then begin
    note_detected t ~key ~task;
    corrupt t ~key ~task "checksum mismatch"
  end

let restore t ~key dst =
  Mutex.lock t.mutex;
  let snap = Option.bind (Hashtbl.find_opt t.table key) (fun e -> e.snap) in
  Mutex.unlock t.mutex;
  match snap with
  | Some s when Mat.rows s = Mat.rows dst && Mat.cols s = Mat.cols dst ->
    Mat.blit ~src:s ~dst;
    true
  | _ -> false

let derive t ~from_key ~key ~scalar ~task m =
  match find t ~key:from_key with
  | None -> stamp t ~key m
  | Some cs ->
    Atomic.incr t.n_verified;
    count_bytes t (8 * Mat.rows m * Mat.cols m);
    (match t.obs with None -> () | Some o -> Metrics.incr o.m_verified);
    if Checksum.matches_scalar ~safety:t.safety cs ~scalar m then stamp t ~key m
    else begin
      note_detected t ~key ~task;
      corrupt t ~key ~task
        (Printf.sprintf "conversion fingerprint out of tolerance (to %s)"
           (Fpformat.scalar_name scalar))
    end

let stamped t = Atomic.get t.n_stamped
let verified t = Atomic.get t.n_verified
let detected t = Atomic.get t.n_detected
let recovered t = Atomic.get t.n_recovered
let violations t = Atomic.get t.n_violations
let hashed_bytes t = Atomic.get t.n_bytes
