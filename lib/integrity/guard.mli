(** The tile-integrity guard: a registry of {!Checksum.t} stamps keyed by
    tile identity, shared by every producer and consumer boundary of a run.

    Producers {!stamp} (or, across a precision conversion, {!derive}) a
    tile; consumers {!check} or {!verify} it.  A failed check is a detected
    silent data corruption: the caller either recovers — {!restore} from a
    snapshot, or recompute the payload — and calls {!note_recovered}, or
    escalates with {!corrupt}, which raises {!Corrupt}.  {!Corrupt} is
    deliberately {e not} retryable: re-running a task on corrupted inputs
    reproduces the wrong answer, so the supervised-retry layer treats it
    like [Not_positive_definite] and lets it surface to the robust driver.

    All operations are thread-safe (the executor verifies and stamps from
    worker domains).  Counters are monotonic across {!reset}, which clears
    only the stamps — one guard can account an entire multi-round
    escalation run. *)

type violation = { key : int; task : string; reason : string }

exception Corrupt of violation
(** An integrity violation that could not be recovered in place. *)

type t

val create :
  ?obs:Geomix_obs.Metrics.t ->
  ?bus:Geomix_obs.Events.t ->
  ?snapshots:bool ->
  ?safety:float ->
  unit -> t
(** [?obs] registers the [integrity.*] counters ([stamped], [verified],
    [sdc_detected], [sdc_recovered], [violations], [hashed_bytes]);
    [?bus] receives [integrity/sdc_detected], [integrity/sdc_recovered]
    (both [Warn]) and [integrity/corrupt] ([Error]) events.
    [?snapshots] (default [false]) keeps a private copy of every stamped
    tile so {!restore} can repair in place; [?safety] (default
    {!Checksum.default_safety}) scales the conversion tolerance used by
    {!derive}. *)

val snapshots : t -> bool

val stamp : t -> key:int -> Geomix_linalg.Mat.t -> unit
(** Record the tile's exact checksum (and snapshot, if enabled) at [key],
    replacing any previous stamp. *)

val derive :
  t -> from_key:int -> key:int -> scalar:Geomix_precision.Fpformat.scalar ->
  task:string -> Geomix_linalg.Mat.t -> unit
(** Carry a stamp across a precision conversion: verify the tile against
    the stamp at [from_key] with the conversion-tolerant fingerprint for
    [scalar] ({!Checksum.matches_scalar}), then {!stamp} the converted
    bytes at [key].  No stamp at [from_key] degrades to a plain {!stamp}.
    An out-of-tolerance tile raises {!Corrupt} — a conversion hop has no
    local recovery; the producer must republish. *)

val check : t -> key:int -> Geomix_linalg.Mat.t -> bool
(** Exact verification against the stamp at [key]; [true] when no stamp
    exists (unguarded data is trusted). *)

val verify : t -> key:int -> task:string -> Geomix_linalg.Mat.t -> unit
(** {!check}, raising {!Corrupt} (after {!note_detected}) on mismatch. *)

val restore : t -> key:int -> Geomix_linalg.Mat.t -> bool
(** Overwrite the tile with the snapshot taken at the last {!stamp} of
    [key].  [false] when snapshots are off, no stamp exists, or the
    dimensions disagree — the caller must then recover some other way. *)

val note_detected : t -> key:int -> task:string -> unit
(** Count (and publish on the bus) one detected corruption.  Called by
    {!verify} on failure; call it directly when a plain {!check} fails and
    recovery is attempted. *)

val note_recovered : t -> key:int -> task:string -> unit
(** Count one corruption repaired in place (restored or recomputed and
    re-verified). *)

val corrupt : t -> key:int -> task:string -> string -> 'a
(** Count an unrecoverable violation and raise {!Corrupt}. *)

val reset : t -> unit
(** Forget all stamps and snapshots; counters are preserved. *)

val find : t -> key:int -> Checksum.t option

(** {1 Counters} (monotonic, thread-safe) *)

val stamped : t -> int
val verified : t -> int
val detected : t -> int
val recovered : t -> int
val violations : t -> int

val hashed_bytes : t -> int
(** Bytes run through the hash/fingerprint by stamps and verifications —
    numerator of the [integrity.verify_overhead_frac] bench metric. *)
