(** Footprint race checker for superscalar (PaRSEC DTD-style) task graphs.

    A DTD program declares, per task, the data it reads and writes; the
    runtime derives a DAG that must order every conflicting pair of tasks
    (RAW, WAR and WAW on any datum).  This module recomputes the
    must-happen-before relation directly from the declared footprints and
    checks that the derived DAG covers it: any conflicting pair left
    unordered is reported as a race, together with a witness — a valid
    schedule of the (buggy) DAG that executes the later-inserted task of
    the pair before the earlier one, i.e. an interleaving the pool is
    allowed to produce that breaks sequential semantics. *)

type kind = Raw | War | Waw

val kind_name : kind -> string

type race = {
  first : int;  (** insertion order: [first < second] *)
  second : int;
  key : int;  (** the datum the pair conflicts on *)
  kind : kind;
  witness : int array;
      (** a valid schedule of the DAG running [second] before [first] *)
}

val check :
  num_tasks:int ->
  footprint:(int -> int list * int list) ->
  successors:(int -> int list) ->
  race list
(** All conflicting-but-unordered pairs of the graph, sorted by
    (first, second).  An empty list means the DAG covers the full
    must-happen-before relation of the footprints. *)

val check_dtd : ?drop:int * int -> Geomix_runtime.Dtd.t -> race list
(** Race-check a DTD graph against its own declared footprints.
    [drop:(src, dst)] removes one derived edge first — the standard way to
    seed a bug and assert the checker catches it. *)

val to_string : ?name:(int -> string) -> race -> string
(** Human-readable one-liner, with task names when [name] is given. *)
