(** Deterministic schedule exploration for task DAGs.

    [Pool] executes a DAG under whatever interleaving the OS scheduler
    happens to produce, so a test that runs a graph once through the pool
    observes a single schedule out of the exponentially many the
    superscalar semantics permits.  The virtual executors here replay the
    same [(num_tasks, in_degree, successors)] graph that [Dag_exec.run]
    consumes under seeded-random or exhaustive (bounded depth-first)
    interleavings of the ready set, asserting every explored linearization
    is a topological order.  Failures reproduce exactly from the printed
    seed — no thread scheduler involved. *)

type graph = {
  num_tasks : int;
  in_degree : int array;
  successors : int -> int list;
}

val graph :
  num_tasks:int -> in_degree:int array -> successors:(int -> int list) -> graph
(** @raise Invalid_argument on an in-degree length mismatch. *)

val of_dtd : Geomix_runtime.Dtd.t -> graph
(** The derived DAG of a DTD program, in the executor's graph shape. *)

val predecessors : graph -> int list array
(** Inverted successor function; lists in ascending task order. *)

val is_topological : graph -> int array -> bool
(** [true] iff the array is a permutation of all task ids in which every
    task precedes all of its successors. *)

val schedule_with : pick:(int array -> int -> int) -> graph -> int array
(** One pass of the virtual executor.  [pick ready n] selects an index in
    [0, n) of the ready array; the pick policy is the only source of
    nondeterminism.  @raise Invalid_argument on a cyclic graph. *)

val random_schedule : graph -> seed:int -> int array
(** The linearization obtained by resolving every ready-set choice with a
    xoshiro stream seeded with [seed] — deterministic per seed. *)

val sequential_schedule : graph -> int array
(** Always pick the smallest ready id.  For a DTD graph (edges go from
    lower to higher insertion id) this is exactly the sequential insertion
    order — the reference schedule. *)

val run_schedule : graph -> order:int array -> execute:(int -> unit) -> unit
(** Execute tasks in the given order after validating it is topological. *)

val run_random : graph -> seed:int -> execute:(int -> unit) -> int array
(** [run_schedule] under [random_schedule ~seed]; returns the order used. *)

val for_each_seed : ?seeds:int -> graph -> (seed:int -> int array -> unit) -> unit
(** Replay a check under [seeds] seeded interleavings (seed = 0, 1, ...,
    default 10).  Every schedule is asserted topological before the
    callback sees it. *)

type exploration = { explored : int; complete : bool }

val explore_systematic : ?limit:int -> graph -> f:(int array -> unit) -> exploration
(** Depth-first enumeration of every linearization of the DAG, calling [f]
    on each, truncated after [limit] (default 20_000) complete schedules.
    [complete] is [true] iff the whole space was visited. *)
