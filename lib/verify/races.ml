(* Footprint race checker for superscalar (PaRSEC DTD-style) task graphs.

   A DTD program declares, per task, the data it reads and writes; the
   runtime derives a DAG that must order every conflicting pair of tasks
   (RAW, WAR and WAW on any datum) consistently with insertion order.  This
   module recomputes the must-happen-before relation directly from the
   declared footprints and checks that the derived DAG covers it: any
   conflicting pair left unordered is reported as a race together with a
   minimal witness — a valid schedule of the (buggy) DAG that executes the
   later-inserted task of the pair before the earlier one, i.e. an
   interleaving the pool is allowed to produce that breaks sequential
   semantics. *)

module Dtd = Geomix_runtime.Dtd

type kind = Raw | War | Waw

let kind_name = function Raw -> "RAW" | War -> "WAR" | Waw -> "WAW"

type race = {
  first : int; (* insertion order: first < second *)
  second : int;
  key : int; (* the datum the pair conflicts on *)
  kind : kind;
  witness : int array; (* schedule of the DAG running [second] before [first] *)
}

(* Dense reachability by DFS from every source: O(V·(V+E)), plenty for the
   graph sizes the test suites explore. *)
let reachability ~num_tasks ~successors =
  let reach = Array.make_matrix num_tasks num_tasks false in
  let visited = Array.make num_tasks false in
  for src = 0 to num_tasks - 1 do
    Array.fill visited 0 num_tasks false;
    let rec visit id =
      List.iter
        (fun s ->
          if not visited.(s) then begin
            visited.(s) <- true;
            reach.(src).(s) <- true;
            visit s
          end)
        (successors id)
    in
    visit src
  done;
  reach

(* The kind of conflict between tasks [a] and [b] (insertion order a < b),
   if any.  Keys are scanned in sorted order; for a given key WAW dominates
   RAW dominates WAR. *)
let conflict_kind ~footprint a b =
  let ra, wa = footprint a and rb, wb = footprint b in
  let pick k =
    if List.mem k wa && List.mem k wb then Some (k, Waw)
    else if List.mem k wa && List.mem k rb then Some (k, Raw)
    else if List.mem k ra && List.mem k wb then Some (k, War)
    else None
  in
  List.fold_left
    (fun acc k -> match acc with Some _ -> acc | None -> pick k)
    None
    (List.sort_uniq compare (wa @ wb))

(* A witness schedule: Kahn's algorithm that postpones [delay] while any
   other task is ready.  If (delay, other) is an unordered pair this yields
   a valid linearization of the DAG with [other] before [delay] — were the
   pair ordered, [delay] would necessarily have been forced first. *)
let witness_for ~num_tasks ~successors ~delay =
  let indeg = Array.make num_tasks 0 in
  for id = 0 to num_tasks - 1 do
    List.iter (fun s -> indeg.(s) <- indeg.(s) + 1) (successors id)
  done;
  let ready = ref [] in
  Array.iteri (fun id d -> if d = 0 then ready := id :: !ready) indeg;
  let order = Array.make num_tasks (-1) in
  let filled = ref 0 in
  while !ready <> [] do
    let id =
      match List.filter (fun x -> x <> delay) (List.sort compare !ready) with
      | x :: _ -> x
      | [] -> delay
    in
    ready := List.filter (fun x -> x <> id) !ready;
    order.(!filled) <- id;
    incr filled;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then ready := s :: !ready)
      (successors id)
  done;
  if !filled <> num_tasks then invalid_arg "Races: cyclic graph";
  order

(* Check that [successors] orders every conflicting pair of [footprint].
   Races come back sorted by (first, second). *)
let check ~num_tasks ~footprint ~successors =
  let reach = reachability ~num_tasks ~successors in
  let races = ref [] in
  for b = num_tasks - 1 downto 1 do
    for a = b - 1 downto 0 do
      match conflict_kind ~footprint a b with
      | Some (key, kind) when (not reach.(a).(b)) && not reach.(b).(a) ->
        races :=
          {
            first = a;
            second = b;
            key;
            kind;
            witness = witness_for ~num_tasks ~successors ~delay:a;
          }
          :: !races
      | _ -> ()
    done
  done;
  !races

(* Race-check a DTD graph against its own declared footprints.  [drop]
   removes one derived edge first — the standard way to seed a bug and
   assert the checker catches it. *)
let check_dtd ?drop g =
  let successors =
    match drop with
    | None -> Dtd.successors g
    | Some (src, dst) ->
      fun id ->
        let ss = Dtd.successors g id in
        if id = src then List.filter (fun s -> s <> dst) ss else ss
  in
  check ~num_tasks:(Dtd.num_tasks g) ~footprint:(Dtd.footprint g) ~successors

let to_string ?name r =
  let task i =
    match name with
    | None -> Printf.sprintf "#%d" i
    | Some f -> Printf.sprintf "%s(#%d)" (f i) i
  in
  Printf.sprintf
    "%s race on datum %d: %s and %s are unordered; witness schedule runs %s before %s: [%s]"
    (kind_name r.kind) r.key (task r.first) (task r.second) (task r.second) (task r.first)
    (String.concat " " (List.map string_of_int (Array.to_list r.witness)))
