(** Shared QCheck generators for the property suites.

    Every generated object is described by a small integer {e spec} (sizes
    plus an Rng seed) and materialized by a pure [..._of_spec] function:
    QCheck prints and shrinks plain specs, every counterexample reproduces
    from its printed spec, and the slow systematic suites can rebuild the
    same objects outside QCheck. *)

(** {1 Random task DAGs} *)

type dag_spec = { tasks : int; density : float; seed : int }

val dag_of_spec : dag_spec -> Explore.graph
(** Edges only go from lower to higher id (the same shape [Dtd] derives),
    so the graph is acyclic by construction. *)

val dag_spec : ?max_tasks:int -> unit -> dag_spec QCheck.arbitrary

(** {1 Random DTD programs} *)

type op = { reads : int list; writes : int list }

type program_spec = { ops : int; keys : int; pseed : int }

val program_of_spec : program_spec -> op list

val dtd_of_program : ?body:(int -> unit) -> op list -> Geomix_runtime.Dtd.t
(** Insert the program into a fresh DTD graph; [body] (given the op index)
    becomes the task body, so the same program can be replayed
    numerically. *)

val program_spec :
  ?max_ops:int -> ?max_keys:int -> unit -> program_spec QCheck.arbitrary

(** {1 Random SPD matrices} *)

type spd_spec = { n : int; mseed : int }

val spd_of_spec : spd_spec -> Geomix_linalg.Mat.t
(** Well-conditioned I + GGᵀ/n, G Gaussian. *)

val spd_spec : ?min_n:int -> ?max_n:int -> unit -> spd_spec QCheck.arbitrary

(** {1 Random kernel-precision maps} *)

type pmap_spec = { nt : int; kseed : int }

val pmap_of_spec : pmap_spec -> Geomix_core.Precision_map.t
(** Uniformly random precision per lower-triangle tile — adversarial
    inputs the norm rule would never produce. *)

val pmap_spec : ?max_nt:int -> unit -> pmap_spec QCheck.arbitrary

(** {1 Random execution traces} *)

type trace_spec = { resources : int; events_per_resource : int; tseed : int }

val trace_of_spec : trace_spec -> Geomix_runtime.Trace.t
(** Per-resource sequential events (random gaps and durations) — the shape
    a real executor produces: no two events overlap on one resource. *)

val trace_spec :
  ?max_resources:int -> ?max_events:int -> unit -> trace_spec QCheck.arbitrary

(** {1 Scalar formats} *)

val scalar : Geomix_precision.Fpformat.scalar QCheck.arbitrary
val precision : Geomix_precision.Fpformat.t QCheck.arbitrary
