(** Differential oracles: independent re-derivations of the paper's core
    results, used by the property suites to cross-check the optimized
    implementations. *)

module Fpformat = Geomix_precision.Fpformat

val comm_reference :
  Geomix_core.Precision_map.t ->
  int ->
  int ->
  Fpformat.scalar * Geomix_core.Comm_map.strategy
(** Deliberately naive O(NT) per tile (O(NT³) total) reimplementation of
    Algorithm 2 for broadcast tile (i, j), i ≥ j: enumerate {e all}
    consumer kernels, take the highest input format any of them needs, cap
    at the storage format, STC iff strictly below storage. *)

val comm_mismatches :
  Geomix_core.Precision_map.t ->
  (int
  * int
  * (Fpformat.scalar * Geomix_core.Comm_map.strategy)
  * (Fpformat.scalar * Geomix_core.Comm_map.strategy))
  list
(** Tiles where [Comm_map.compute] disagrees with [comm_reference]:
    (i, j, expected, got).  Empty on a correct implementation. *)

val comm_map_agrees : Geomix_core.Precision_map.t -> bool

val residual_bound : ?c:float -> pmap:Geomix_core.Precision_map.t -> Geomix_tile.Tiled.t -> float
(** Higham–Mary-style bound on the relative Cholesky residual
    ‖A − LLᵀ‖/‖A‖ of a factorization executing tile (i,j) with rule
    epsilon ε(i,j):  c · NT · max_ij ε(i,j)·‖A_ij‖/‖A‖ + FP64 floor
    (c defaults to 64). *)

val factor_residual :
  ?options:Geomix_core.Mp_cholesky.options ->
  ?pool:Geomix_parallel.Pool.t ->
  pmap:Geomix_core.Precision_map.t ->
  nb:int ->
  Geomix_linalg.Mat.t ->
  float
(** Relative residual of the mixed-precision factorization of a dense SPD
    matrix under [pmap]. *)

val check_cholesky :
  ?c:float ->
  ?options:Geomix_core.Mp_cholesky.options ->
  pmap:Geomix_core.Precision_map.t ->
  nb:int ->
  Geomix_linalg.Mat.t ->
  float * float * float
(** The differential check: factorize under [pmap], compute the bound, and
    factorize in pure FP64.  Returns (mixed residual, bound, fp64
    residual); the caller asserts residual ≤ bound and fp64 residual ≤ the
    FP64 floor. *)
