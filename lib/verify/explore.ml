(* Deterministic schedule exploration for task DAGs.

   [Pool] executes a DAG under whatever interleaving the OS scheduler
   happens to produce, so a test that runs a graph once through the pool
   observes a single schedule out of the exponentially many the superscalar
   semantics permits.  The virtual executors below replay the same
   [(num_tasks, in_degree, successors)] graph that [Dag_exec.run] consumes
   under seeded-random or exhaustive (bounded depth-first) interleavings of
   the ready set.  Every explored linearization is checked to be a
   topological order, and any failing invariant can be reproduced exactly
   from the printed seed — no thread scheduler involved. *)

module Rng = Geomix_util.Rng
module Dtd = Geomix_runtime.Dtd

type graph = {
  num_tasks : int;
  in_degree : int array;
  successors : int -> int list;
}

let graph ~num_tasks ~in_degree ~successors =
  if Array.length in_degree <> num_tasks then
    invalid_arg "Explore.graph: in_degree length mismatch";
  { num_tasks; in_degree; successors }

let of_dtd g =
  {
    num_tasks = Dtd.num_tasks g;
    in_degree = Dtd.in_degree g;
    successors = Dtd.successors g;
  }

let predecessors g =
  Geomix_parallel.Dag_exec.predecessors ~num_tasks:g.num_tasks ~successors:g.successors

(* A linearization is valid iff it is a permutation of 0..num_tasks-1 in
   which every task precedes all of its successors. *)
let is_topological g order =
  Array.length order = g.num_tasks
  && begin
       let pos = Array.make g.num_tasks (-1) in
       let injective = ref true in
       Array.iteri
         (fun i id ->
           if id < 0 || id >= g.num_tasks || pos.(id) >= 0 then injective := false
           else pos.(id) <- i)
         order;
       !injective
       &&
       let respects = ref true in
       for id = 0 to g.num_tasks - 1 do
         List.iter (fun s -> if pos.(s) <= pos.(id) then respects := false) (g.successors id)
       done;
       !respects
     end

(* One pass of the virtual executor.  [pick ready n] selects an index in
   [0, n) of the ready array; the choice policy is the only source of
   nondeterminism, so a deterministic [pick] yields a deterministic
   schedule. *)
let schedule_with ~pick g =
  let counters = Array.copy g.in_degree in
  let ready = Array.make (Stdlib.max 1 g.num_tasks) 0 in
  let nready = ref 0 in
  let push id =
    ready.(!nready) <- id;
    incr nready
  in
  Array.iteri (fun id d -> if d = 0 then push id) counters;
  let order = Array.make g.num_tasks (-1) in
  let filled = ref 0 in
  while !nready > 0 do
    let i = pick ready !nready in
    assert (i >= 0 && i < !nready);
    let id = ready.(i) in
    decr nready;
    ready.(i) <- ready.(!nready);
    order.(!filled) <- id;
    incr filled;
    List.iter
      (fun s ->
        counters.(s) <- counters.(s) - 1;
        if counters.(s) = 0 then push s)
      (g.successors id)
  done;
  if !filled <> g.num_tasks then
    invalid_arg "Explore: not all tasks became ready (cyclic graph?)";
  order

let random_schedule g ~seed =
  let rng = Rng.create ~seed in
  schedule_with g ~pick:(fun _ n -> Rng.int rng n)

(* Always pick the smallest ready id: for a DTD graph (edges go from lower
   to higher insertion id) this is exactly the sequential insertion order,
   the reference schedule every other linearization must be equivalent to. *)
let sequential_schedule g =
  schedule_with g ~pick:(fun ready n ->
    let best = ref 0 in
    for i = 1 to n - 1 do
      if ready.(i) < ready.(!best) then best := i
    done;
    !best)

let run_schedule g ~order ~execute =
  if not (is_topological g order) then
    invalid_arg "Explore.run_schedule: order is not a topological order";
  Array.iter execute order

let run_random g ~seed ~execute =
  let order = random_schedule g ~seed in
  run_schedule g ~order ~execute;
  order

(* Replay [f] under [seeds] seeded interleavings (seed = 0, 1, ...).  Each
   schedule is asserted to be a topological order before [f] sees it; a
   failure inside [f] should mention [seed] so the exact interleaving can
   be rebuilt with [random_schedule ~seed]. *)
let for_each_seed ?(seeds = 10) g f =
  for seed = 0 to seeds - 1 do
    let order = random_schedule g ~seed in
    if not (is_topological g order) then
      failwith (Printf.sprintf "Explore: seed %d produced a non-topological schedule" seed);
    f ~seed order
  done

type exploration = { explored : int; complete : bool }

(* Systematic bounded-DFS enumeration: visit every linearization of the
   DAG (i.e. every maximal sequence of ready-set choices) in depth-first
   order, calling [f] on each, stopping after [limit] complete schedules.
   State is mutated in place with explicit undo, so exploration is
   allocation-light even for graphs with many linear extensions. *)
let explore_systematic ?(limit = 20_000) g ~f =
  let counters = Array.copy g.in_degree in
  let ready = Array.make (Stdlib.max 1 g.num_tasks) 0 in
  let order = Array.make g.num_tasks (-1) in
  let explored = ref 0 and truncated = ref false in
  let nready0 = ref 0 in
  Array.iteri
    (fun id d ->
      if d = 0 then begin
        ready.(!nready0) <- id;
        incr nready0
      end)
    counters;
  let rec dfs depth nready =
    if !explored >= limit then truncated := true
    else if depth = g.num_tasks then begin
      incr explored;
      f (Array.copy order)
    end
    else begin
      if nready = 0 then
        invalid_arg "Explore: not all tasks became ready (cyclic graph?)";
      let i = ref 0 in
      while !i < nready && not !truncated do
        let id = ready.(!i) in
        (* Choose ready.(i): swap-remove it, then append the successors it
           unblocks at the vacated tail. *)
        ready.(!i) <- ready.(nready - 1);
        order.(depth) <- id;
        let pushed = ref 0 in
        List.iter
          (fun s ->
            counters.(s) <- counters.(s) - 1;
            if counters.(s) = 0 then begin
              ready.(nready - 1 + !pushed) <- s;
              incr pushed
            end)
          (g.successors id);
        dfs (depth + 1) (nready - 1 + !pushed);
        (* Undo: restore counters, then the two swapped slots. *)
        List.iter (fun s -> counters.(s) <- counters.(s) + 1) (g.successors id);
        ready.(nready - 1) <- ready.(!i);
        ready.(!i) <- id;
        incr i
      done
    end
  in
  dfs 0 !nready0;
  { explored = !explored; complete = not !truncated }
