(* Shared QCheck generators for the property suites.

   Every generated object is described by a small integer *spec* (sizes +
   an Rng seed) and materialized by a pure [..._of_spec] function.  That
   keeps QCheck printing/shrinking trivial (specs are just ints), makes
   every counterexample reproducible from its printed spec, and lets the
   slow systematic suites rebuild the same objects outside QCheck. *)

module Q = QCheck
module Rng = Geomix_util.Rng
module Fp = Geomix_precision.Fpformat
module Pm = Geomix_core.Precision_map
module Mat = Geomix_linalg.Mat
module Check = Geomix_linalg.Check
module Dtd = Geomix_runtime.Dtd
module Trace = Geomix_runtime.Trace

(* --- random task DAGs ----------------------------------------------- *)

(* Edges only go from lower to higher id, so the graph is acyclic by
   construction (the same shape [Dtd] derives). *)
type dag_spec = { tasks : int; density : float; seed : int }

let dag_of_spec { tasks; density; seed } =
  let rng = Rng.create ~seed in
  let succs = Array.make tasks [] in
  for a = 0 to tasks - 2 do
    for b = a + 1 to tasks - 1 do
      if Rng.float rng < density then succs.(a) <- b :: succs.(a)
    done;
    succs.(a) <- List.rev succs.(a)
  done;
  let in_degree = Array.make tasks 0 in
  Array.iter (List.iter (fun s -> in_degree.(s) <- in_degree.(s) + 1)) succs;
  Explore.graph ~num_tasks:tasks ~in_degree ~successors:(fun id -> succs.(id))

let dag_spec ?(max_tasks = 30) () =
  Q.make
    ~print:(fun { tasks; density; seed } ->
      Printf.sprintf "{ tasks = %d; density = %g; seed = %d }" tasks density seed)
    Q.Gen.(
      triple (int_range 1 max_tasks) (int_range 0 10) (int_range 0 1_000_000)
      >|= fun (tasks, d, seed) -> { tasks; density = float_of_int d /. 10.; seed })

(* --- random DTD programs -------------------------------------------- *)

type op = { reads : int list; writes : int list }

type program_spec = { ops : int; keys : int; pseed : int }

let program_of_spec { ops; keys; pseed } =
  let rng = Rng.create ~seed:pseed in
  List.init ops (fun _ ->
    let reads = List.init (Rng.int rng 3) (fun _ -> Rng.int rng keys) in
    (* Three quarters of the ops write somewhere; pure readers keep the
       reader-set bookkeeping honest. *)
    let writes =
      if Rng.int rng 4 = 0 then []
      else List.init (1 + Rng.int rng 2) (fun _ -> Rng.int rng keys)
    in
    { reads; writes })

(* Build the DTD graph of a program.  [body] (given the op index) becomes
   the task body, so the same program can be replayed numerically. *)
let dtd_of_program ?(body = fun _ -> ()) prog =
  let g = Dtd.create () in
  List.iteri
    (fun i { reads; writes } ->
      ignore
        (Dtd.insert g ~name:(Printf.sprintf "op%d" i) ~reads ~writes (fun () -> body i)))
    prog;
  g

let program_spec ?(max_ops = 40) ?(max_keys = 8) () =
  Q.make
    ~print:(fun { ops; keys; pseed } ->
      Printf.sprintf "{ ops = %d; keys = %d; pseed = %d }" ops keys pseed)
    Q.Gen.(
      triple (int_range 1 max_ops) (int_range 1 max_keys) (int_range 0 1_000_000)
      >|= fun (ops, keys, pseed) -> { ops; keys; pseed })

(* --- random SPD / covariance-like matrices --------------------------- *)

type spd_spec = { n : int; mseed : int }

let spd_of_spec { n; mseed } = Check.spd_random ~rng:(Rng.create ~seed:mseed) ~n

let spd_spec ?(min_n = 4) ?(max_n = 64) () =
  Q.make
    ~print:(fun { n; mseed } -> Printf.sprintf "{ n = %d; mseed = %d }" n mseed)
    Q.Gen.(
      pair (int_range min_n max_n) (int_range 0 1_000_000)
      >|= fun (n, mseed) -> { n; mseed })

(* --- random kernel-precision maps ------------------------------------ *)

type pmap_spec = { nt : int; kseed : int }

let pmap_of_spec { nt; kseed } =
  let rng = Rng.create ~seed:kseed in
  let all = Array.of_list Fp.all in
  Pm.of_fn ~nt (fun _ _ -> all.(Rng.int rng (Array.length all)))

let pmap_spec ?(max_nt = 12) () =
  Q.make
    ~print:(fun { nt; kseed } -> Printf.sprintf "{ nt = %d; kseed = %d }" nt kseed)
    Q.Gen.(
      pair (int_range 1 max_nt) (int_range 0 1_000_000)
      >|= fun (nt, kseed) -> { nt; kseed })

(* --- random execution traces ----------------------------------------- *)

(* Per-resource sequential events (random gaps and durations), the shape a
   real executor produces: no two events overlap on the same resource. *)
type trace_spec = { resources : int; events_per_resource : int; tseed : int }

let trace_of_spec { resources; events_per_resource; tseed } =
  let rng = Rng.create ~seed:tseed in
  let t = Trace.create () in
  for r = 0 to resources - 1 do
    let clock = ref 0. in
    for e = 0 to events_per_resource - 1 do
      let gap = Rng.uniform rng ~lo:0. ~hi:0.5 in
      let dur = Rng.uniform rng ~lo:0.01 ~hi:1.0 in
      let start = !clock +. gap in
      let stop = start +. dur in
      clock := stop;
      Trace.add t
        { Trace.label = Printf.sprintf "r%d.e%d" r e; resource = r; start; stop; tag = "k" }
    done
  done;
  t

let trace_spec ?(max_resources = 4) ?(max_events = 8) () =
  Q.make
    ~print:(fun { resources; events_per_resource; tseed } ->
      Printf.sprintf "{ resources = %d; events_per_resource = %d; tseed = %d }" resources
        events_per_resource tseed)
    Q.Gen.(
      triple (int_range 1 max_resources) (int_range 0 max_events) (int_range 0 1_000_000)
      >|= fun (resources, events_per_resource, tseed) ->
      { resources; events_per_resource; tseed })

(* --- scalar formats --------------------------------------------------- *)

let scalar = Q.oneofl Fp.all_scalars

let precision = Q.oneofl Fp.all
