(* Differential oracles.

   Two independent re-derivations of the paper's core results, used by the
   property suites to cross-check the optimized implementations:

   - [comm_reference] is a deliberately naive O(NT³) reimplementation of
     Algorithm 2: for every broadcasting tile it enumerates *all* consumer
     kernels, takes the highest input format any of them needs, caps at the
     storage format and declares STC iff the result is strictly below
     storage.  [Comm_map.compute] short-circuits those scans; the two must
     agree tile-for-tile on any precision map.

   - [factor_residual] / [residual_bound] check the mixed-precision
     Cholesky against the FP64 reference: the relative residual
     ‖A − LLᵀ‖/‖A‖ of a factorization that executes tile (i,j) with rule
     epsilon ε(i,j) is bounded (Higham–Mary-style, as the paper's norm rule
     presumes) by c · NT · max_ij ε(i,j)·‖A_ij‖/‖A‖ plus the FP64 floor. *)

module Fpformat = Geomix_precision.Fpformat
module Fp = Fpformat
module Pm = Geomix_core.Precision_map
module Cm = Geomix_core.Comm_map
module Mp = Geomix_core.Mp_cholesky
module Mat = Geomix_linalg.Mat
module Blas = Geomix_linalg.Blas
module Check = Geomix_linalg.Check
module Tiled = Geomix_tile.Tiled

(* --- Algorithm 2, brute force ----------------------------------------- *)

(* Shipped format and strategy of broadcast tile (i, j) ≥ diagonal, by
   direct enumeration of every consumer. *)
let comm_reference pmap i j =
  let nt = Pm.nt pmap in
  let storage = Pm.storage pmap i j in
  let cap c =
    if Fp.scalar_rank c < Fp.scalar_rank storage then (c, Cm.Stc) else (storage, Cm.Ttc)
  in
  if i = j then begin
    let k = i in
    if k = nt - 1 then (storage, Cm.Ttc) (* no successors: nothing ships *)
    else begin
      (* POTRF(k) feeds every TRSM(m,k); TRSM never executes below FP32. *)
      let c = ref Fp.S_fp32 in
      for m = k + 1 to nt - 1 do
        let trsm_in =
          match Pm.get pmap m k with Fp.Fp64 -> Fp.S_fp64 | _ -> Fp.S_fp32
        in
        c := Fp.higher_scalar !c trsm_in
      done;
      cap !c
    end
  end
  else begin
    let m = i and k = j in
    (* TRSM(m,k) feeds SYRK(m,k) (which consumes whatever ships), the row
       GEMMs (m,n,k) for k < n < m and the column GEMMs (m',m,k) for
       m < m' < NT.  The floor is the tile's own input significance. *)
    let c = ref (Fp.input_scalar (Pm.get pmap m k)) in
    for n = k + 1 to m - 1 do
      c := Fp.higher_scalar !c (Fp.input_scalar (Pm.get pmap m n))
    done;
    for m' = m + 1 to nt - 1 do
      c := Fp.higher_scalar !c (Fp.input_scalar (Pm.get pmap m' m))
    done;
    cap !c
  end

(* Tiles where [Comm_map.compute] disagrees with the brute-force rule:
   (i, j, (scalar, strategy) expected, (scalar, strategy) got). *)
let comm_mismatches pmap =
  let cm = Cm.compute pmap in
  let out = ref [] in
  for i = Pm.nt pmap - 1 downto 0 do
    for j = i downto 0 do
      let expected = comm_reference pmap i j in
      let got = (Cm.comm_scalar cm i j, Cm.strategy cm i j) in
      if expected <> got then out := (i, j, expected, got) :: !out
    done
  done;
  !out

let comm_map_agrees pmap = comm_mismatches pmap = []

(* --- mixed-precision Cholesky vs the FP64 reference -------------------- *)

let residual_bound ?(c = 64.) ~pmap tiled =
  let nt = Tiled.nt tiled in
  let gnorm = Tiled.frobenius tiled in
  let worst = ref 0. in
  for i = 0 to nt - 1 do
    for j = 0 to i do
      let e = Fp.rule_epsilon (Pm.get pmap i j) in
      let r = Tiled.tile_frobenius tiled i j /. gnorm in
      if e *. r > !worst then worst := e *. r
    done
  done;
  (c *. float_of_int nt *. !worst) +. 1e-13

(* Relative residual ‖A − LLᵀ‖/‖A‖ of the mixed-precision factorization of
   [dense] under [pmap]. *)
let factor_residual ?options ?pool ~pmap ~nb dense =
  let a = Tiled.of_dense ~nb dense in
  Mp.factorize ?options ?pool ~pmap a;
  let l = Tiled.to_dense a in
  Mat.zero_upper l;
  Check.cholesky_residual ~a:dense ~l

(* The differential check itself: factorize under [pmap], factorize in pure
   FP64, return (mixed residual, bound, fp64 residual).  The caller asserts
   residual ≤ bound and fp64_residual ≤ the FP64 floor. *)
let check_cholesky ?c ?options ~pmap ~nb dense =
  let residual = factor_residual ?options ~pmap ~nb dense in
  let bound = residual_bound ?c ~pmap (Tiled.of_dense ~nb dense) in
  let nt = Pm.nt pmap in
  let fp64 = factor_residual ~pmap:(Pm.uniform ~nt Fp.Fp64) ~nb dense in
  (residual, bound, fp64)
