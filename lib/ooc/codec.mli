(** Byte codecs for spilled tiles, one per {!Geomix_precision.Fpformat}
    scalar format.

    The out-of-core store spills a tile in the narrowest format that
    represents its entries {e losslessly} ({!narrowest}), so disk traffic
    tracks the precision map instead of paying binary64 for everything: a
    tile the runtime has already rounded to FP32-class storage spills at
    4 B/element, and a shipped transfer image on an FP16/FP8 grid spills
    at 2/1 B/element — the 2410.09819 observation that low-precision
    storage turns directly into I/O bandwidth.

    Losslessness is the contract that makes this compatible with the
    bitwise-identical crash-recovery gate: for every matrix [m] whose
    entries all lie on the grid of scalar [s],
    [decode s ~rows ~cols (encode s m)] reproduces [m] bit-for-bit
    (signed zeros included; NaN payloads force [S_fp64], whose codec is
    the raw binary64 image). *)

val payload_bytes : Geomix_precision.Fpformat.scalar -> rows:int -> cols:int -> int
(** Encoded payload size: [scalar_bytes s · rows · cols], except TF32
    which packs as FP32 (4 B — its grid is an FP32 subset). *)

val narrowest : Geomix_linalg.Mat.t -> Geomix_precision.Fpformat.scalar
(** The cheapest scalar format whose grid contains every entry of the
    matrix, probed by bit-exact round-trip through
    {!Geomix_precision.Fpformat.round} — FP8 (1 B), then FP16/BF16 (2 B),
    then FP32 (4 B), falling back to [S_fp64].  Any NaN entry forces
    [S_fp64]. *)

val encode : Geomix_precision.Fpformat.scalar -> Geomix_linalg.Mat.t -> Bytes.t
(** Column-major little-endian payload.  Entries off the scalar's grid
    are silently rounded ({!narrowest} exists to avoid that); use a
    lossless scalar when bit-identity matters. *)

val decode :
  Geomix_precision.Fpformat.scalar -> rows:int -> cols:int -> Bytes.t ->
  Geomix_linalg.Mat.t
(** Inverse of {!encode}.
    @raise Invalid_argument when the payload length does not match
    {!payload_bytes}. *)
