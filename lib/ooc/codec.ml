module Mat = Geomix_linalg.Mat
module Fpformat = Geomix_precision.Fpformat

let payload_bytes s ~rows ~cols =
  let per = match s with Fpformat.S_tf32 -> 4 | _ -> Fpformat.scalar_bytes s in
  per * rows * cols

(* IEEE binary16 bit codec.  Only exact values reach [fp16_bits] (the
   store encodes after a lossless-grid probe), so no rounding logic is
   needed: the value is sign · mant · 2^e with a 10-bit significand. *)

let fp16_bits x =
  if Float.is_nan x then 0x7e00
  else
    let sign = if 1. /. x < 0. then 0x8000 else 0 in
    let a = Float.abs x in
    if a = Float.infinity then sign lor 0x7c00
    else if a = 0. then sign
    else if a >= 0x1p-14 then
      let m, e = Float.frexp a in
      (* a = m·2^e, m ∈ [0.5, 1) → value = 1.f·2^(e-1) *)
      let mant = int_of_float (((m *. 2.) -. 1.) *. 1024.) in
      sign lor ((e - 1 + 15) lsl 10) lor mant
    else sign lor int_of_float (a *. 0x1p24)

let fp16_of_bits b =
  let sign = if b land 0x8000 <> 0 then -1. else 1. in
  let e = (b lsr 10) land 0x1f
  and m = b land 0x3ff in
  if e = 0x1f then if m = 0 then sign *. Float.infinity else Float.nan
  else if e = 0 then sign *. float_of_int m *. 0x1p-24
  else sign *. (1. +. (float_of_int m /. 1024.)) *. Float.ldexp 1. (e - 15)

(* BF16 is the top half of the FP32 image; both halves of the probe are
   exact because encoding happens only on-grid. *)
let bf16_bits x = Int32.to_int (Int32.shift_right_logical (Int32.bits_of_float x) 16) land 0xffff
let bf16_of_bits b = Int32.float_of_bits (Int32.shift_left (Int32.of_int b) 16)

let narrowest m =
  let rows = Mat.rows m and cols = Mat.cols m in
  let exact s =
    try
      for j = 0 to cols - 1 do
        for i = 0 to rows - 1 do
          let x = Mat.unsafe_get m i j in
          if Float.is_nan x
             || Int64.bits_of_float (Fpformat.round s x) <> Int64.bits_of_float x
          then raise Exit
        done
      done;
      true
    with Exit -> false
  in
  let rec first = function
    | [] -> Fpformat.S_fp64
    | s :: rest -> if exact s then s else first rest
  in
  (* by byte cost; TF32 omitted (same 4 B as FP32, coarser grid) *)
  first [ Fpformat.S_fp8_e4m3; S_fp8_e5m2; S_fp16; S_bf16; S_fp32 ]

let encode s m =
  let rows = Mat.rows m and cols = Mat.cols m in
  let buf = Bytes.create (payload_bytes s ~rows ~cols) in
  let idx = ref 0 in
  (match s with
  | Fpformat.S_fp64 ->
    for j = 0 to cols - 1 do
      for i = 0 to rows - 1 do
        Bytes.set_int64_le buf !idx (Int64.bits_of_float (Mat.unsafe_get m i j));
        idx := !idx + 8
      done
    done
  | S_fp32 | S_tf32 ->
    for j = 0 to cols - 1 do
      for i = 0 to rows - 1 do
        Bytes.set_int32_le buf !idx (Int32.bits_of_float (Mat.unsafe_get m i j));
        idx := !idx + 4
      done
    done
  | S_fp16 ->
    for j = 0 to cols - 1 do
      for i = 0 to rows - 1 do
        Bytes.set_uint16_le buf !idx (fp16_bits (Mat.unsafe_get m i j));
        idx := !idx + 2
      done
    done
  | S_bf16 ->
    for j = 0 to cols - 1 do
      for i = 0 to rows - 1 do
        Bytes.set_uint16_le buf !idx (bf16_bits (Mat.unsafe_get m i j));
        idx := !idx + 2
      done
    done
  | (S_fp8_e4m3 | S_fp8_e5m2) as s8 ->
    for j = 0 to cols - 1 do
      for i = 0 to rows - 1 do
        Bytes.set_uint8 buf !idx (Fpformat.fp8_encode s8 (Mat.unsafe_get m i j));
        incr idx
      done
    done);
  buf

let decode s ~rows ~cols buf =
  let expect = payload_bytes s ~rows ~cols in
  if Bytes.length buf <> expect then
    invalid_arg
      (Printf.sprintf "Codec.decode: %d payload bytes, expected %d"
         (Bytes.length buf) expect);
  let m = Mat.create ~rows ~cols in
  let idx = ref 0 in
  (match s with
  | Fpformat.S_fp64 ->
    for j = 0 to cols - 1 do
      for i = 0 to rows - 1 do
        Mat.unsafe_set m i j (Int64.float_of_bits (Bytes.get_int64_le buf !idx));
        idx := !idx + 8
      done
    done
  | S_fp32 | S_tf32 ->
    for j = 0 to cols - 1 do
      for i = 0 to rows - 1 do
        Mat.unsafe_set m i j (Int32.float_of_bits (Bytes.get_int32_le buf !idx));
        idx := !idx + 4
      done
    done
  | S_fp16 ->
    for j = 0 to cols - 1 do
      for i = 0 to rows - 1 do
        Mat.unsafe_set m i j (fp16_of_bits (Bytes.get_uint16_le buf !idx));
        idx := !idx + 2
      done
    done
  | S_bf16 ->
    for j = 0 to cols - 1 do
      for i = 0 to rows - 1 do
        Mat.unsafe_set m i j (bf16_of_bits (Bytes.get_uint16_le buf !idx));
        idx := !idx + 2
      done
    done
  | (S_fp8_e4m3 | S_fp8_e5m2) as s8 ->
    for j = 0 to cols - 1 do
      for i = 0 to rows - 1 do
        Mat.unsafe_set m i j (Fpformat.fp8_decode s8 (Bytes.get_uint8 buf !idx));
        incr idx
      done
    done);
  m
