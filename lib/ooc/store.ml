module Mat = Geomix_linalg.Mat
module Fpformat = Geomix_precision.Fpformat
module Checksum = Geomix_integrity.Checksum
module Fault = Geomix_fault.Fault
module Metrics = Geomix_obs.Metrics
module Jsonlite = Geomix_obs.Jsonlite
module Durable = Geomix_util.Durable

type key = int

type error =
  | Spill_failed of { key : key; attempts : int; reason : string }
  | Read_failed of { key : key; attempts : int; reason : string }
  | No_manifest of string
  | Pinned_evict of { key : key }

exception Store_error of error

let error_to_string = function
  | Spill_failed { key; attempts; reason } ->
    Printf.sprintf "spill of tile %d failed after %d attempts: %s" key attempts
      reason
  | Read_failed { key; attempts; reason } ->
    Printf.sprintf "read of tile %d failed after %d attempts: %s" key attempts
      reason
  | No_manifest dir -> Printf.sprintf "no committed manifest in %s" dir
  | Pinned_evict { key } -> Printf.sprintf "attempt to evict pinned tile %d" key

let () =
  Printexc.register_printer (function
    | Store_error e -> Some ("Geomix_ooc.Store.Store_error(" ^ error_to_string e ^ ")")
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Spill record format: a 47-byte header followed by the Codec payload.
   The header duplicates the manifest's identity fields so a record is
   self-validating even before the manifest is consulted. *)

let magic = "GOOC"
let format_version = 1
let header_len = 47

let scalar_tag = function
  | Fpformat.S_fp64 -> 0
  | S_fp32 -> 1
  | S_tf32 -> 2
  | S_bf16 -> 3
  | S_fp16 -> 4
  | S_fp8_e4m3 -> 5
  | S_fp8_e5m2 -> 6

let scalar_of_tag = function
  | 0 -> Some Fpformat.S_fp64
  | 1 -> Some Fpformat.S_fp32
  | 2 -> Some Fpformat.S_tf32
  | 3 -> Some Fpformat.S_bf16
  | 4 -> Some Fpformat.S_fp16
  | 5 -> Some Fpformat.S_fp8_e4m3
  | 6 -> Some Fpformat.S_fp8_e5m2
  | _ -> None

let make_header ~key ~scalar ~payload (sum : Checksum.t) =
  let b = Bytes.create header_len in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_uint16_le b 4 format_version;
  Bytes.set_int64_le b 6 (Int64.of_int key);
  Bytes.set_int32_le b 14 (Int32.of_int sum.rows);
  Bytes.set_int32_le b 18 (Int32.of_int sum.cols);
  Bytes.set_uint8 b 22 (scalar_tag scalar);
  Bytes.set_int64_le b 23 (Int64.of_int payload);
  Bytes.set_int64_le b 31 sum.fnv;
  Bytes.set_int64_le b 39 (Int64.bits_of_float sum.fro);
  b

type header = {
  h_key : int;
  h_scalar : Fpformat.scalar;
  h_payload : int;
  h_sum : Checksum.t;
}

let parse_header b =
  if Bytes.length b < header_len then Error "record shorter than header"
  else if Bytes.sub_string b 0 4 <> magic then Error "bad magic"
  else if Bytes.get_uint16_le b 4 <> format_version then Error "bad format version"
  else
    match scalar_of_tag (Bytes.get_uint8 b 22) with
    | None -> Error "bad scalar tag"
    | Some h_scalar ->
      let rows = Int32.to_int (Bytes.get_int32_le b 14)
      and cols = Int32.to_int (Bytes.get_int32_le b 18) in
      if rows <= 0 || cols <= 0 then Error "bad dimensions"
      else
        Ok
          {
            h_key = Int64.to_int (Bytes.get_int64_le b 6);
            h_scalar;
            h_payload = Int64.to_int (Bytes.get_int64_le b 23);
            h_sum =
              {
                fnv = Bytes.get_int64_le b 31;
                fro = Int64.float_of_bits (Bytes.get_int64_le b 39);
                rows;
                cols;
              };
          }

(* ------------------------------------------------------------------ *)

type spill_meta = {
  file : string;
  scalar : Fpformat.scalar;
  payload : int;
  sum : Checksum.t;
}

type entry = {
  ekey : int;
  mutable mat : Mat.t option;
  mutable pins : int;
  mutable dirty : bool;
  mutable next_version : int;
  mutable spill : spill_meta option;
  mutable committed : spill_meta option;
  mutable last_use : int;
}

type obs_cells = {
  c_spills : Metrics.counter;
  c_loads : Metrics.counter;
  c_evictions : Metrics.counter;
  c_spilled_bytes : Metrics.counter;
  c_reread_bytes : Metrics.counter;
  c_spill_retries : Metrics.counter;
  c_read_retries : Metrics.counter;
  c_quarantined : Metrics.counter;
  c_checkpoints : Metrics.counter;
}

type t = {
  dirpath : string;
  mutable budget_v : int;
  max_attempts : int;
  faults : Fault.t option;
  entries : (key, entry) Hashtbl.t;
  mutable priority : (key -> int) option;
  mutable clock : int;
  mutable resident_v : int;
  mutable epoch_v : int;
  mutable meta_v : (string * string) list;
  mutable ops_v : int;
  mutable hook : (int -> unit) option;
  mutable n_spills : int;
  mutable n_loads : int;
  mutable n_evictions : int;
  mutable n_spilled_bytes : int;
  mutable n_spilled_fp64 : int;
  mutable n_reread_bytes : int;
  mutable n_spill_retries : int;
  mutable n_read_retries : int;
  mutable n_quarantined : int;
  mutable n_checkpoints : int;
  by_scalar : int array; (* indexed by scalar_tag *)
  obs : obs_cells option;
  lock : Mutex.t;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let mk_obs reg =
  {
    c_spills = Metrics.counter reg "ooc.spills";
    c_loads = Metrics.counter reg "ooc.loads";
    c_evictions = Metrics.counter reg "ooc.evictions";
    c_spilled_bytes = Metrics.counter reg "ooc.spilled_bytes";
    c_reread_bytes = Metrics.counter reg "ooc.reread_bytes";
    c_spill_retries = Metrics.counter reg "ooc.spill_retries";
    c_read_retries = Metrics.counter reg "ooc.read_retries";
    c_quarantined = Metrics.counter reg "ooc.quarantined";
    c_checkpoints = Metrics.counter reg "ooc.checkpoints";
  }

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let create ?obs ?faults ?(budget = max_int) ?(max_attempts = 3) ~dir () =
  if budget < 0 then invalid_arg "Store.create: negative budget";
  if max_attempts < 1 then invalid_arg "Store.create: max_attempts < 1";
  mkdir_p dir;
  {
    dirpath = dir;
    budget_v = budget;
    max_attempts;
    faults;
    entries = Hashtbl.create 64;
    priority = None;
    clock = 0;
    resident_v = 0;
    epoch_v = 0;
    meta_v = [];
    ops_v = 0;
    hook = None;
    n_spills = 0;
    n_loads = 0;
    n_evictions = 0;
    n_spilled_bytes = 0;
    n_spilled_fp64 = 0;
    n_reread_bytes = 0;
    n_spill_retries = 0;
    n_read_retries = 0;
    n_quarantined = 0;
    n_checkpoints = 0;
    by_scalar = Array.make 7 0;
    obs = Option.map mk_obs obs;
    lock = Mutex.create ();
  }

let dir t = t.dirpath
let budget t = t.budget_v

(* Advance the disk-op counter and run the kill hook — the seeded points
   where the kill-matrix harness SIGKILLs the process. *)
let tick t =
  t.ops_v <- t.ops_v + 1;
  match t.hook with None -> () | Some h -> h t.ops_v

(* ---------------- raw file IO -------------------------------------- *)

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)

let write_bytes_durable path b n =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_bytes oc (if n = Bytes.length b then b else Bytes.sub b 0 n);
      flush oc;
      Durable.fsync_fd (Unix.descr_of_out_channel oc))

(* The syscall seam: every spill write and every record read consults the
   fault plan.  A short write truncates the image but "succeeds" (caught
   by the read-back verification); ENOSPC leaves a partial temp file and
   raises like the kernel would; a read bit-flip corrupts the in-memory
   buffer after the read (caught by the checksum, clean on re-read). *)

let write_image t ~file ~path ~attempt image =
  match
    Option.bind t.faults (fun f ->
        Fault.disk_decide f ~op:Fault.Dwrite ~path:file ~attempt)
  with
  | Some Fault.Enospc ->
    write_bytes_durable path image (Bytes.length image / 2);
    raise (Unix.Unix_error (Unix.ENOSPC, "write", path))
  | Some (Fault.Short_write { frac }) ->
    let n =
      max 1 (int_of_float (frac *. float_of_int (Bytes.length image)))
    in
    write_bytes_durable path image n
  | Some (Fault.Read_bit_flip _) | None ->
    write_bytes_durable path image (Bytes.length image)

let read_image t ~file ~path ~attempt =
  let b = read_whole_file path in
  (match
     Option.bind t.faults (fun f ->
         Fault.disk_decide f ~op:Fault.Dread ~path:file ~attempt)
   with
  | Some (Fault.Read_bit_flip { bit; lane }) when Bytes.length b > 0 ->
    let idx = lane mod Bytes.length b in
    let v = Bytes.get_uint8 b idx in
    Bytes.set_uint8 b idx (v lxor (1 lsl (bit mod 8)))
  | _ -> ());
  b

(* ---------------- record validation -------------------------------- *)

let validate_record ~key ~expect b =
  match parse_header b with
  | Error e -> Error e
  | Ok h ->
    if h.h_key <> key then Error "key mismatch"
    else if Bytes.length b <> header_len + h.h_payload then
      Error
        (Printf.sprintf "payload truncated: %d of %d bytes"
           (Bytes.length b - header_len) h.h_payload)
    else begin
      match expect with
      | Some (m : spill_meta)
        when m.sum.fnv <> h.h_sum.fnv || m.sum.rows <> h.h_sum.rows
             || m.sum.cols <> h.h_sum.cols || m.scalar <> h.h_scalar ->
        Error "header disagrees with manifest"
      | _ -> (
        match
          Codec.decode h.h_scalar ~rows:h.h_sum.rows ~cols:h.h_sum.cols
            (Bytes.sub b header_len h.h_payload)
        with
        | exception Invalid_argument e -> Error e
        | m ->
          if Checksum.matches h.h_sum m then Ok (h, m)
          else Error "checksum mismatch")
    end

(* ---------------- spill / load ------------------------------------- *)

let bump_counter o f = match o with None -> () | Some cells -> f cells

let spill_locked t e =
  let m = match e.mat with
    | Some m -> m
    | None -> assert false (* dirty implies resident *)
  in
  let scalar = Codec.narrowest m in
  let sum = Checksum.stamp m in
  let payload = Codec.encode scalar m in
  let image = Bytes.cat (make_header ~key:e.ekey ~scalar ~payload:(Bytes.length payload) sum) payload in
  let rec attempt_write attempt =
    if attempt > t.max_attempts then
      raise
        (Store_error
           (Spill_failed
              { key = e.ekey; attempts = t.max_attempts; reason = "retries exhausted" }));
    let file = Printf.sprintf "tile_%d.v%d" e.ekey e.next_version in
    let path = Filename.concat t.dirpath file in
    let tmp = path ^ ".tmp" in
    let retry reason =
      t.n_spill_retries <- t.n_spill_retries + 1;
      bump_counter t.obs (fun c -> Metrics.incr c.c_spill_retries);
      (try Sys.remove tmp with Sys_error _ -> ());
      (try Sys.remove path with Sys_error _ -> ());
      ignore reason;
      attempt_write (attempt + 1)
    in
    match write_image t ~file ~path:tmp ~attempt image with
    | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> retry "enospc"
    | () ->
      tick t;
      Durable.rename_durable ~src:tmp ~dst:path;
      tick t;
      (* read-back verification: a short write that survived to the
         rename is caught here, at the seam that produced it. *)
      (match validate_record ~key:e.ekey ~expect:None (read_whole_file path) with
      | Error reason -> retry reason
      | Ok _ ->
        e.next_version <- e.next_version + 1;
        e.spill <- Some { file; scalar; payload = Bytes.length payload; sum };
        e.dirty <- false;
        t.n_spills <- t.n_spills + 1;
        t.n_spilled_bytes <- t.n_spilled_bytes + Bytes.length payload;
        t.n_spilled_fp64 <- t.n_spilled_fp64 + (8 * sum.rows * sum.cols);
        t.by_scalar.(scalar_tag scalar) <-
          t.by_scalar.(scalar_tag scalar) + Bytes.length payload;
        bump_counter t.obs (fun c ->
            Metrics.incr c.c_spills;
            Metrics.add c.c_spilled_bytes (Bytes.length payload)))
  in
  attempt_write 1

let load_record t ~key (meta : spill_meta) =
  let path = Filename.concat t.dirpath meta.file in
  let rec attempt_read attempt =
    if attempt > t.max_attempts then
      raise
        (Store_error
           (Read_failed
              { key; attempts = t.max_attempts; reason = "retries exhausted" }));
    let retry () =
      t.n_read_retries <- t.n_read_retries + 1;
      bump_counter t.obs (fun c -> Metrics.incr c.c_read_retries);
      attempt_read (attempt + 1)
    in
    match read_image t ~file:meta.file ~path ~attempt with
    | exception Sys_error e ->
      raise (Store_error (Read_failed { key; attempts = attempt; reason = e }))
    | b -> (
      match validate_record ~key ~expect:(Some meta) b with
      | Ok (_, m) -> m
      | Error _ -> retry ())
  in
  attempt_read 1

(* ---------------- eviction ----------------------------------------- *)

let entry_bytes e =
  match e.mat with None -> 0 | Some m -> 8 * Mat.rows m * Mat.cols m

let evict_one t =
  let better a b =
    (* [a] beats [b] as a victim *)
    match t.priority with
    | Some p ->
      let pa = p a.ekey and pb = p b.ekey in
      pa > pb || (pa = pb && a.last_use < b.last_use)
    | None -> a.last_use < b.last_use
  in
  let victim =
    Hashtbl.fold
      (fun _ e best ->
        if e.mat = None || e.pins > 0 then best
        else
          match best with
          | None -> Some e
          | Some b -> if better e b then Some e else best)
      t.entries None
  in
  match victim with
  | None -> false
  | Some e ->
    if e.pins > 0 then raise (Store_error (Pinned_evict { key = e.ekey }));
    if e.dirty then spill_locked t e;
    t.resident_v <- t.resident_v - entry_bytes e;
    e.mat <- None;
    t.n_evictions <- t.n_evictions + 1;
    bump_counter t.obs (fun c -> Metrics.incr c.c_evictions);
    true

let evict_to_budget t =
  let continue = ref true in
  while t.resident_v > t.budget_v && !continue do
    continue := evict_one t
  done

(* ---------------- residency API ------------------------------------ *)

let touch t e =
  t.clock <- t.clock + 1;
  e.last_use <- t.clock

let put t key m =
  with_lock t (fun () ->
      let e =
        match Hashtbl.find_opt t.entries key with
        | Some e ->
          t.resident_v <- t.resident_v - entry_bytes e;
          e
        | None ->
          let e =
            {
              ekey = key;
              mat = None;
              pins = 0;
              dirty = false;
              next_version = 0;
              spill = None;
              committed = None;
              last_use = 0;
            }
          in
          Hashtbl.replace t.entries key e;
          e
      in
      e.mat <- Some m;
      e.dirty <- true;
      t.resident_v <- t.resident_v + entry_bytes e;
      touch t e;
      evict_to_budget t)

let acquire t key =
  with_lock t (fun () ->
      let e = Hashtbl.find t.entries key in
      touch t e;
      e.pins <- e.pins + 1;
      match e.mat with
      | Some m -> m
      | None ->
        let meta = match e.spill with
          | Some meta -> meta
          | None -> assert false (* no image and no spill: impossible *)
        in
        (match load_record t ~key meta with
        | exception e2 ->
          e.pins <- e.pins - 1;
          raise e2
        | m ->
          e.mat <- Some m;
          t.resident_v <- t.resident_v + entry_bytes e;
          t.n_loads <- t.n_loads + 1;
          t.n_reread_bytes <- t.n_reread_bytes + meta.payload;
          bump_counter t.obs (fun c ->
              Metrics.incr c.c_loads;
              Metrics.add c.c_reread_bytes meta.payload);
          evict_to_budget t;
          m))

let release t ?(dirty = false) key =
  with_lock t (fun () ->
      let e = Hashtbl.find t.entries key in
      if e.pins <= 0 then invalid_arg "Store.release: tile not pinned";
      e.pins <- e.pins - 1;
      if dirty then e.dirty <- true;
      evict_to_budget t)

let mem t key = with_lock t (fun () -> Hashtbl.mem t.entries key)

let resident t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.entries key with
      | Some e -> e.mat <> None
      | None -> false)

let keys t =
  with_lock t (fun () ->
      Hashtbl.fold (fun k _ acc -> k :: acc) t.entries [] |> List.sort compare)

let resident_bytes t = with_lock t (fun () -> t.resident_v)
let set_priority t p = with_lock t (fun () -> t.priority <- p)

(* ---------------- manifest ----------------------------------------- *)

let manifest_file = "MANIFEST.json"

let scalar_json s = Jsonlite.Str (Fpformat.scalar_name s)

let hex64 v = Printf.sprintf "%016Lx" v

let manifest_json t =
  let tiles =
    Hashtbl.fold
      (fun _ e acc ->
        match e.committed with
        | None -> acc
        | Some m ->
          Jsonlite.Obj
            [
              ("key", Jsonlite.Num (float_of_int e.ekey));
              ("file", Jsonlite.Str m.file);
              ("rows", Jsonlite.Num (float_of_int m.sum.rows));
              ("cols", Jsonlite.Num (float_of_int m.sum.cols));
              ("scalar", scalar_json m.scalar);
              ("payload", Jsonlite.Num (float_of_int m.payload));
              ("fnv", Jsonlite.Str (hex64 m.sum.fnv));
              ("fro_bits", Jsonlite.Str (hex64 (Int64.bits_of_float m.sum.fro)));
            ]
          :: acc)
      t.entries []
  in
  let tiles =
    List.sort
      (fun a b ->
        compare (Jsonlite.member "key" a) (Jsonlite.member "key" b))
      tiles
  in
  Jsonlite.Obj
    [
      ("version", Jsonlite.Num 1.);
      ("epoch", Jsonlite.Num (float_of_int t.epoch_v));
      ("meta", Jsonlite.Obj (List.map (fun (k, v) -> (k, Jsonlite.Str v)) t.meta_v));
      ("tiles", Jsonlite.Arr tiles);
    ]

let flush_locked t =
  Hashtbl.iter (fun _ e -> if e.dirty then spill_locked t e) t.entries

let flush t = with_lock t (fun () -> flush_locked t)

(* Version files superseded by the committed manifest (and stray temp
   files) are uncommitted garbage: delete them so the directory holds
   exactly the committed state plus quarantine forensics. *)
let gc_locked t =
  let committed = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ e ->
      match e.committed with
      | Some m -> Hashtbl.replace committed m.file ()
      | None -> ())
    t.entries;
  Array.iter
    (fun f ->
      let stale =
        Filename.check_suffix f ".tmp"
        || (String.length f > 5
            && String.sub f 0 5 = "tile_"
            && not (Hashtbl.mem committed f)
            && not (Filename.check_suffix f ".quarantined"))
      in
      if stale then
        try Sys.remove (Filename.concat t.dirpath f) with Sys_error _ -> ())
    (Sys.readdir t.dirpath)

let checkpoint t ?(meta = []) ~epoch () =
  with_lock t (fun () ->
      flush_locked t;
      t.epoch_v <- epoch;
      t.meta_v <- meta;
      Hashtbl.iter (fun _ e -> e.committed <- e.spill) t.entries;
      let path = Filename.concat t.dirpath manifest_file in
      Durable.write_atomic ~path (fun oc ->
          output_string oc (Jsonlite.to_string ~indent:false (manifest_json t)));
      tick t;
      t.n_checkpoints <- t.n_checkpoints + 1;
      bump_counter t.obs (fun c -> Metrics.incr c.c_checkpoints);
      gc_locked t)

let epoch t = with_lock t (fun () -> t.epoch_v)
let meta t = with_lock t (fun () -> t.meta_v)

(* ---------------- recovery ----------------------------------------- *)

type recovery = {
  rec_epoch : int;
  rec_meta : (string * string) list;
  present : key list;
  quarantined : key list;
}

let parse_version_of_file file =
  (* "tile_<key>.v<n>" -> n *)
  match String.rindex_opt file 'v' with
  | Some i -> (
    match int_of_string_opt (String.sub file (i + 1) (String.length file - i - 1)) with
    | Some n -> n
    | None -> 0)
  | None -> 0

let parse_manifest dir text =
  let fail fmt = Printf.ksprintf (fun s -> raise (Store_error (No_manifest (dir ^ ": " ^ s)))) fmt in
  match Jsonlite.of_string text with
  | Error e -> fail "unparseable manifest: %s" e
  | Ok j ->
    let num name obj =
      match Option.bind (Jsonlite.member name obj) Jsonlite.to_float with
      | Some v -> int_of_float v
      | None -> fail "missing numeric field %S" name
    in
    let str name obj =
      match Option.bind (Jsonlite.member name obj) Jsonlite.to_str with
      | Some v -> v
      | None -> fail "missing string field %S" name
    in
    if num "version" j <> 1 then fail "unsupported manifest version";
    let meta =
      match Jsonlite.member "meta" j with
      | Some (Jsonlite.Obj kvs) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun s -> (k, s)) (Jsonlite.to_str v))
          kvs
      | _ -> []
    in
    let tiles =
      match Option.bind (Jsonlite.member "tiles" j) Jsonlite.to_list with
      | Some l -> l
      | None -> fail "missing tiles array"
    in
    let tile obj =
      let scalar =
        match Fpformat.scalar_of_string (str "scalar" obj) with
        | Some s -> s
        | None -> fail "bad scalar name"
      in
      let hex name =
        match Int64.of_string_opt ("0x" ^ str name obj) with
        | Some v -> v
        | None -> fail "bad hex field %S" name
      in
      ( num "key" obj,
        {
          file = str "file" obj;
          scalar;
          payload = num "payload" obj;
          sum =
            {
              Checksum.fnv = hex "fnv";
              fro = Int64.float_of_bits (hex "fro_bits");
              rows = num "rows" obj;
              cols = num "cols" obj;
            };
        } )
    in
    (num "epoch" j, meta, List.map tile tiles)

let recover ?obs ?faults ?budget ?max_attempts ~dir () =
  let manifest_path = Filename.concat dir manifest_file in
  if not (Sys.file_exists manifest_path) then
    raise (Store_error (No_manifest dir));
  let epoch_v, meta_v, tiles =
    parse_manifest dir (Bytes.to_string (read_whole_file manifest_path))
  in
  let t = create ?obs ?faults ?budget ?max_attempts ~dir () in
  t.epoch_v <- epoch_v;
  t.meta_v <- meta_v;
  let present = ref [] and quarantined = ref [] in
  List.iter
    (fun (key, (m : spill_meta)) ->
      let e =
        {
          ekey = key;
          mat = None;
          pins = 0;
          dirty = false;
          next_version = parse_version_of_file m.file + 1;
          spill = Some m;
          committed = Some m;
          last_use = 0;
        }
      in
      match load_record t ~key m with
      | _ -> (
        Hashtbl.replace t.entries key e;
        present := key :: !present)
      | exception Store_error (Read_failed _) ->
        (* persistent rot: quarantine the record for forensics and hand
           the key back to the caller for recomputation *)
        let path = Filename.concat dir m.file in
        (try Sys.rename path (path ^ ".quarantined") with Sys_error _ -> ());
        t.n_quarantined <- t.n_quarantined + 1;
        bump_counter t.obs (fun c -> Metrics.incr c.c_quarantined);
        quarantined := key :: !quarantined)
    tiles;
  gc_locked t;
  ( t,
    {
      rec_epoch = epoch_v;
      rec_meta = meta_v;
      present = List.sort compare !present;
      quarantined = List.sort compare !quarantined;
    } )

(* ---------------- kill points & accounting ------------------------- *)

let ops t = t.ops_v
let set_op_hook t h = t.hook <- h
let spills t = t.n_spills
let loads t = t.n_loads
let evictions t = t.n_evictions
let spilled_bytes t = t.n_spilled_bytes
let reread_bytes t = t.n_reread_bytes
let spilled_bytes_fp64 t = t.n_spilled_fp64
let spill_retries t = t.n_spill_retries
let read_retries t = t.n_read_retries
let quarantined_count t = t.n_quarantined
let checkpoints t = t.n_checkpoints

let spilled_by_scalar t =
  List.filter_map
    (fun s ->
      let b = t.by_scalar.(scalar_tag s) in
      if b = 0 then None else Some (s, b))
    Fpformat.all_scalars
