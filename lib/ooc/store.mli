(** Crash-consistent file-backed tile store with a bounded residency
    window — the out-of-core substrate of ROADMAP item 1.

    A store owns a directory of spill records and a set of keyed tiles,
    each either {e resident} (a live {!Geomix_linalg.Mat.t}) or {e
    spilled} (a durable file in its narrowest lossless scalar format, see
    {!Codec}).  Resident bytes are bounded by a budget: inserting or
    loading past it evicts unpinned tiles — least-recently-used by
    default, or farthest-next-use when the caller installs the static
    DAG-derived priority ({!set_priority}, the I/O-aware schedule of
    arXiv 2410.09819).  Kernels pin their operands ({!acquire} /
    {!release}) so an in-flight tile is never evicted under them.

    {b Crash consistency.}  Every spill is write-temp → fsync →
    atomic-rename into a fresh {e versioned} file ([tile_<key>.v<n>]),
    then read back and checksum-verified, so the previous version is
    never overwritten in place and a torn write is caught at the seam
    that produced it.  A {!checkpoint} flushes all dirty tiles and then
    atomically replaces [MANIFEST.json], which names exactly one durable
    version per tile together with its {!Geomix_integrity.Checksum}.
    Files not named by the committed manifest are uncommitted orphans;
    {!recover} deletes them and re-verifies every surviving tile against
    its manifest checksum, quarantining (not silently repairing) any that
    fail.  A crash at {e any} instruction therefore leaves the store
    recoverable to the last checkpoint — old or new tile image, never a
    torn one.

    {b Fault seam.}  All file reads and writes pass through a seam that
    consults an optional {!Geomix_fault} plan ({!Geomix_fault.Fault.disk_decide}):
    injected short writes and ENOSPC are caught by the write-back
    verification and retried (bounded), injected read bit-flips are
    caught by the checksum and re-read — typed recoveries, counted in
    [ooc.*] metrics, never wrong results. *)

type key = int

type error =
  | Spill_failed of { key : key; attempts : int; reason : string }
  | Read_failed of { key : key; attempts : int; reason : string }
  | No_manifest of string
  | Pinned_evict of { key : key }  (** internal-misuse guard *)

exception Store_error of error

val error_to_string : error -> string

type t

val create :
  ?obs:Geomix_obs.Metrics.t ->
  ?faults:Geomix_fault.Fault.t ->
  ?budget:int ->
  ?max_attempts:int ->
  dir:string ->
  unit ->
  t
(** Open a store over [dir] (created if missing).  [budget] (bytes,
    default unlimited) bounds resident binary64 bytes; [max_attempts]
    (default 3) bounds the rewrite/re-read retry loops at the fault seam.
    [?obs] mirrors the accounting below as [ooc.*] metrics. *)

val dir : t -> string
val budget : t -> int

(** {1 Residency} *)

val put : t -> key -> Geomix_linalg.Mat.t -> unit
(** Insert (or replace) a tile as resident and dirty.  The store takes
    ownership of the matrix — the caller must not alias it after [put].
    May evict other unpinned tiles to make room. *)

val acquire : t -> key -> Geomix_linalg.Mat.t
(** Pin the tile and return its resident image, loading (and
    checksum-verifying) it from its spill record if evicted.  Pins nest.
    The returned matrix is the store's resident image: a kernel that
    writes it must {!release} with [~dirty:true].
    @raise Store_error ([Read_failed]) when the spill record stays
    corrupt past the retry budget, [Not_found] on an unknown key. *)

val release : t -> ?dirty:bool -> key -> unit
(** Drop one pin; [~dirty:true] (default [false]) marks the resident
    image newer than its spill record.  May evict once the pin count
    reaches zero. *)

val mem : t -> key -> bool
val resident : t -> key -> bool
val keys : t -> key list
val resident_bytes : t -> int

val set_priority : t -> (key -> int) option -> unit
(** Install (or clear) the static eviction priority: higher = next use
    farther away = evicted first, ties broken least-recently-used.
    [None] reverts to pure LRU. *)

(** {1 Durability} *)

val flush : t -> unit
(** Spill every dirty tile (resident images stay resident). *)

val checkpoint : t -> ?meta:(string * string) list -> epoch:int -> unit -> unit
(** {!flush}, then atomically commit [MANIFEST.json] naming the current
    durable version and checksum of every tile, then delete superseded
    version files.  After a crash, {!recover} returns to exactly this
    state. *)

val epoch : t -> int
(** The last committed (or recovered) manifest epoch; 0 before any
    checkpoint. *)

val meta : t -> (string * string) list
(** The metadata committed with the last checkpoint. *)

type recovery = {
  rec_epoch : int;
  rec_meta : (string * string) list;
  present : key list;  (** tiles that verified against their checksums *)
  quarantined : key list;
      (** tiles whose records stayed corrupt past the retry budget; their
          files are kept beside the store as [*.quarantined] for
          forensics, and the keys must be recomputed by the caller *)
}

val recover :
  ?obs:Geomix_obs.Metrics.t ->
  ?faults:Geomix_fault.Fault.t ->
  ?budget:int ->
  ?max_attempts:int ->
  dir:string ->
  unit ->
  t * recovery
(** Reopen a store from its last committed manifest: parse
    [MANIFEST.json], delete uncommitted orphan files, verify every
    manifest tile's record against its checksum (through the fault seam,
    with bounded re-read), and quarantine the rest.  All surviving tiles
    start spilled (nothing resident).
    @raise Store_error ([No_manifest]) when [dir] has no manifest — the
    caller restarts from scratch. *)

(** {1 Kill points}

    The disk-op counter advances at every durable transition (temp image
    written, rename committed, manifest committed).  The hook lets a
    harness SIGKILL the process at a seeded op index — the kill-matrix
    gate — or a test raise to simulate the crash in-process. *)

val ops : t -> int
val set_op_hook : t -> (int -> unit) option -> unit

(** {1 Accounting} (mirrored as [ooc.*] metrics when built with [?obs]) *)

val spills : t -> int
val loads : t -> int
val evictions : t -> int

val spilled_bytes : t -> int
(** Cumulative payload bytes written by spills — the store-traffic
    numerator; compare {!spilled_bytes_fp64} for the win. *)

val reread_bytes : t -> int
(** Cumulative payload bytes read back by loads. *)

val spilled_bytes_fp64 : t -> int
(** What the same spills would have cost at 8 B/element — the
    FP64-equivalent accounting the bench gate compares against. *)

val spilled_by_scalar : t -> (Geomix_precision.Fpformat.scalar * int) list
(** Cumulative spilled payload bytes per scalar format (omits zeros). *)

val spill_retries : t -> int
val read_retries : t -> int
val quarantined_count : t -> int
val checkpoints : t -> int
