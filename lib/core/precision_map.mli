(** Tile-level kernel-precision assignment (Section V).

    Off-diagonal tile (i, j) runs its kernels in the lowest precision [p]
    of the admitted chain whose unit roundoff still satisfies the
    Higham–Mary rule

    {v ‖A_ij‖_F · NT / ‖A‖_F  ≤  u_req / u_low(p) v}

    and diagonal tiles always run FP64 (they carry the strongest
    correlations and host POTRF/SYRK).  The resulting map is what Figs 2a
    and 7 visualise. *)

module Fpformat = Geomix_precision.Fpformat

type t

val nt : t -> int
val u_req : t -> float
(** The application accuracy the map was built for (nan for synthetic
    maps). *)

val get : t -> int -> int -> Fpformat.t
(** Kernel precision of tile (i, j), i ≥ j. *)

val storage : t -> int -> int -> Fpformat.scalar
(** Storage format of tile (i, j): FP64 tiles in FP64, all others FP32
    (Fig 2b). *)

val of_tile_norms :
  ?chain:Fpformat.t list ->
  u_req:float ->
  nt:int ->
  global_norm:float ->
  (int -> int -> float) ->
  t
(** Build from exact tile Frobenius norms.  [chain] defaults to
    {!Fpformat.framework_chain}. *)

val of_tiled : ?chain:Fpformat.t list -> u_req:float -> Geomix_tile.Tiled.t -> t
(** Exact norms of an in-memory tiled matrix. *)

val of_element_fn :
  ?chain:Fpformat.t list ->
  ?samples_per_tile:int ->
  u_req:float ->
  n:int ->
  nb:int ->
  (int -> int -> float) ->
  t
(** Sampled norm estimator for matrices too large to materialise: each
    tile's Frobenius norm is estimated from an s × s stratified subsample
    of its entries ([samples_per_tile = s², default s = 8]), scaled by the
    tile area.  This is the "sampling technologies can preprocess the
    dataset" route the paper points to (Section VII-F) and is how the
    paper-scale precision maps (Fig 7, matrix order 409 600) are produced
    here. *)

val of_fn : nt:int -> (int -> int -> Fpformat.t) -> t
(** Arbitrary per-tile assignment (i ≥ j), bypassing the norm rule —
    [u_req] is nan.  Property suites use this to build adversarial/random
    kernel-precision maps. *)

val uniform : nt:int -> Fpformat.t -> t
(** Every tile (including the diagonal) at one precision — the FP64 and
    FP32 baselines of Figs 8, 11, 12. *)

val two_level : nt:int -> off_diag:Fpformat.t -> t
(** Diagonal FP64, all off-diagonal tiles at [off_diag] — the extreme
    FP64/FP16_32 and FP64/FP16 configurations of Fig 8. *)

val escalate_band : t -> int -> t
(** [escalate_band t k] promotes the row/column band through diagonal block
    [k] — tiles (k, j) for j ≤ k and (i, k) for i ≥ k — to FP64, leaving
    every other assignment (and [u_req]) unchanged.  This is the recovery
    move of the precision-escalation fallback: when the mixed-precision
    factorization loses positive definiteness at block [k], the band that
    feeds block [k]'s updates is re-run at full precision (cf. the banded
    fallback of Abdulah et al., "Geostatistical Modeling and Prediction
    Using Mixed-Precision Tile Cholesky Factorization"). *)

val all_fp64 : t -> bool
(** Every tile (diagonal included) assigned FP64 — no further escalation
    is possible; a failure under such a map is true indefiniteness. *)

val fractions : t -> (Fpformat.t * float) list
(** Fraction of lower-triangle tiles per precision, the Fig 7 annotation
    (only precisions present in the map are listed). *)

val render : t -> string
(** ASCII heat-map with legend (Figs 2a / 7). *)
