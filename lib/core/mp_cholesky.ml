open Geomix_tile
module Fpformat = Geomix_precision.Fpformat
module Mat = Geomix_linalg.Mat
module Blas = Geomix_linalg.Blas
module Blas_emul = Geomix_linalg.Blas_emul
module Pool = Geomix_parallel.Pool
module Dag_exec = Geomix_parallel.Dag_exec
module Task = Geomix_runtime.Task
module Cholesky_dag = Geomix_runtime.Cholesky_dag
module Fault = Geomix_fault.Fault
module Retry = Geomix_fault.Retry
module Metrics = Geomix_obs.Metrics
module Events = Geomix_obs.Events
module Span = Geomix_obs.Span
module Guard = Geomix_integrity.Guard
module Store = Geomix_ooc.Store

type strategy = Automatic | Always_ttc

type options = {
  fidelity : Blas_emul.fidelity;
  strategy : strategy;
  model_comm_rounding : bool;
}

let default_options =
  { fidelity = Blas_emul.Boundary; strategy = Automatic; model_comm_rounding = true }

let pidx i j = (i * (i + 1) / 2) + j

let factorize ?(options = default_options) ?pool ?trace ?bus ?profile ?faults
    ?retry ?obs ?span ?integrity ?cmap ?store ?observe ?(fault_round = 1) ?job
    ~pmap a =
  let ntiles = Tiled.nt a in
  if Precision_map.nt pmap <> ntiles then
    invalid_arg "Mp_cholesky.factorize: precision map / matrix tile mismatch";
  (match cmap with
  | Some cm when Comm_map.nt cm <> ntiles ->
    invalid_arg "Mp_cholesky.factorize: comm map / matrix tile mismatch"
  | _ -> ());
  let nb = Tiled.nb a in
  let dag = Cholesky_dag.create ~nt:ntiles in
  let cmap =
    if options.model_comm_rounding && options.strategy = Automatic then
      Some (match cmap with Some cm -> cm | None -> Comm_map.compute pmap)
    else None
  in
  (* Range instrumentation: hand each kernel's freshly written FP64 working
     tile to the observer (before any storage/transfer rounding), leaving
     the factorization itself bit-identical. *)
  let note_range =
    match observe with None -> fun ~i:_ ~j:_ _ -> () | Some f -> f
  in
  let kernel_precision i j = Precision_map.get pmap i j in
  let exec_prec kind = Task.exec_precision ~kernel_precision kind in
  (* Shipped form of each broadcast tile: what consumers read.  Written once
     by the producing POTRF/TRSM and read concurrently afterwards — the DAG
     ordering makes this race-free. *)
  let npairs = ntiles * (ntiles + 1) / 2 in
  let shipped : Mat.t option array = Array.make npairs None in
  (* Tile identities for the integrity guard: stored tiles in [0, npairs),
     broadcast (shipped) forms offset by npairs.  Stamps from a previous
     factorization of different data are meaningless, hence the reset. *)
  let stored_key i j = pidx i j in
  let ship_key i j = npairs + pidx i j in
  (match integrity with Some g -> Guard.reset g | None -> ());
  (* The conversion a publish applies to produce the broadcast form:
     [None] means consumers read the stored tile itself (TTC, or
     communication modelling off). *)
  let comm_conversion i j =
    if not options.model_comm_rounding then None
    else
      match (options.strategy, cmap) with
      | Always_ttc, _ | Automatic, None -> None
      | Automatic, Some cm ->
        if Comm_map.strategy cm i j = Comm_map.Stc then
          Some (Comm_map.comm_scalar cm i j)
        else None
  in
  let shipped_form i j =
    let tile = Tiled.tile a i j in
    match comm_conversion i j with None -> tile | Some s -> Mat.rounded s tile
  in
  let publish i j =
    let tile = Tiled.tile a i j in
    let storage = Precision_map.storage pmap i j in
    let task = Printf.sprintf "publish(%d,%d)" i j in
    (* Stamp the FP64 working values, then carry the stamp across each
       lawful conversion with the conversion-tolerant fingerprint and
       re-stamp the exact bytes on the far side — the storage
       down-convert, and (under STC) Algorithm 2's transfer format. *)
    (match integrity with
    | None -> ()
    | Some g -> Guard.stamp g ~key:(stored_key i j) tile);
    Mat.round_inplace storage tile;
    (match integrity with
    | None -> ()
    | Some g ->
      Guard.derive g ~from_key:(stored_key i j) ~key:(stored_key i j)
        ~scalar:storage ~task tile);
    let form = shipped_form i j in
    (match integrity with
    | None -> ()
    | Some g ->
      let scalar =
        match comm_conversion i j with None -> Fpformat.S_fp64 | Some s -> s
      in
      Guard.derive g ~from_key:(stored_key i j) ~key:(ship_key i j) ~scalar ~task
        form);
    shipped.(pidx i j) <- Some form
  in
  (* Detected corruption of a stored tile: repair from the guard snapshot
     and re-verify, else escalate — Corrupt is non-retryable by design. *)
  let recover_stored g ~task i j =
    let key = stored_key i j in
    let tile = Tiled.tile a i j in
    if not (Guard.check g ~key tile) then begin
      Guard.note_detected g ~key ~task;
      if Guard.restore g ~key tile && Guard.check g ~key tile then
        Guard.note_recovered g ~key ~task
      else Guard.corrupt g ~key ~task "stored tile corrupted"
    end
  in
  (* Detected corruption of a broadcast payload: recompute it from the
     (separately guarded) stored tile — the republish a distributed
     runtime would request from the producer — and re-verify. *)
  let recover_shipped g ~task i j m =
    let key = ship_key i j in
    if Guard.check g ~key m then m
    else begin
      Guard.note_detected g ~key ~task;
      let fresh = shipped_form i j in
      if Guard.check g ~key fresh then begin
        shipped.(pidx i j) <- Some fresh;
        Guard.note_recovered g ~key ~task;
        fresh
      end
      else Guard.corrupt g ~key ~task "broadcast payload unrecoverable"
    end
  in
  let verify_inout kind i j =
    match integrity with
    | None -> ()
    | Some g -> recover_stored g ~task:(Task.name kind) i j
  in
  let stamp_stored i j =
    match integrity with
    | None -> ()
    | Some g -> Guard.stamp g ~key:(stored_key i j) (Tiled.tile a i j)
  in
  (* RAW-edge motion accounting at the consumption site: every [read] of
     a broadcast payload ships [scalar_bytes] per element in the form
     Algorithm 2 selected (the storage scalar under TTC), against an
     8-byte FP64-equivalent baseline.  The registry counters and the
     per-request span increment from the same call with the same values,
     so a fully-sampled traced run conserves the aggregate totals
     bitwise. *)
  let shipped_scalar i j =
    match comm_conversion i j with
    | Some s -> s
    | None -> Precision_map.storage pmap i j
  in
  let note_ship =
    let span_note =
      match span with
      | None -> fun ~scalar:_ ~bytes:_ ~fp64:_ -> ()
      | Some sp ->
        fun ~scalar ~bytes ~fp64 ->
          Span.note_transfer ~prec:(Fpformat.scalar_name scalar) sp ~bytes
            ~fp64_bytes:fp64
    in
    match obs with
    | None -> (
      match span with None -> None | Some _ -> Some span_note)
    | Some reg ->
      let shipped_b = Metrics.counter reg "cholesky.shipped_bytes" in
      let shipped_fp64 = Metrics.counter reg "cholesky.shipped_bytes_fp64" in
      let edges = Metrics.counter reg "cholesky.shipped_edges" in
      let per_scalar =
        List.map
          (fun s ->
            ( s,
              Metrics.counter reg
                ("cholesky.shipped_bytes." ^ Fpformat.scalar_name s) ))
          Fpformat.all_scalars
      in
      Some
        (fun ~scalar ~bytes ~fp64 ->
          Metrics.add shipped_b bytes;
          Metrics.add shipped_fp64 fp64;
          Metrics.incr edges;
          (match List.assoc_opt scalar per_scalar with
          | Some c -> Metrics.add c bytes
          | None -> ());
          span_note ~scalar ~bytes ~fp64)
  in
  let read i j =
    let m =
      match shipped.(pidx i j) with
      | Some m -> (
        match integrity with
        | None -> m
        | Some g -> recover_shipped g ~task:(Printf.sprintf "read(%d,%d)" i j) i j m)
      | None -> assert false (* DAG ordering guarantees the producer ran *)
    in
    (match note_ship with
    | None -> ()
    | Some f ->
      let el = Mat.rows m * Mat.cols m in
      let scalar = shipped_scalar i j in
      f ~scalar ~bytes:(Fpformat.scalar_bytes scalar * el) ~fp64:(8 * el));
    m
  in
  (* Silent-data-corruption injection (chaos --sdc).  A drawn corruption is
     always applied to a fresh copy whose pointer replaces the slot: under
     TTC the slot aliases the stored tile, and in-place damage would
     corrupt the factor itself rather than the payload in transit. *)
  let flip_bit m ~bit ~lane =
    let rows = Mat.rows m in
    let k = lane mod (rows * Mat.cols m) in
    let i = k mod rows and j = k / rows in
    let bits = Int64.bits_of_float (Mat.get m i j) in
    Mat.set m i j (Int64.float_of_bits (Int64.logxor bits (Int64.shift_left 1L bit)))
  in
  let corrupt_shipped kind i j =
    match faults with
    | None -> ()
    | Some f -> (
      match Fault.sdc_decide f ~task:(Task.name kind) ~attempt:fault_round with
      | None -> ()
      | Some sdc ->
        let p = pidx i j in
        let current = match shipped.(p) with Some m -> m | None -> assert false in
        let bitflipped bit lane =
          let c = Mat.copy current in
          flip_bit c ~bit ~lane;
          c
        in
        let bad =
          match sdc with
          | Fault.Bitflip { bit; lane } -> bitflipped bit lane
          | Fault.Tile_swap { lane } -> (
            (* A deterministic impostor: a broadcast form this task's DAG
               predecessors are guaranteed to have published — TRSM(m,k)
               misroutes its panel (k,k), POTRF(k>0) its band tile
               (k,k−1).  Shape mismatch (ragged last tile) or POTRF(0)
               degrade to a bit flip. *)
            let cand =
              if i <> j then shipped.(pidx j j)
              else if i > 0 then shipped.(pidx i (i - 1))
              else None
            in
            match cand with
            | Some m'
              when Mat.rows m' = Mat.rows current && Mat.cols m' = Mat.cols current
              ->
              Mat.copy m'
            | _ -> bitflipped 52 lane)
        in
        shipped.(p) <- Some bad)
  in
  (* SYRK/GEMM publish nothing; their SDC strikes the accumulator tile in
     memory instead (in place — that is the corruption).  [Tile_swap] has
     no payload to misroute here and degrades to an exponent-bit flip. *)
  let corrupt_stored kind i j =
    match faults with
    | None -> ()
    | Some f -> (
      match Fault.sdc_decide f ~task:(Task.name kind) ~attempt:fault_round with
      | None -> ()
      | Some (Fault.Bitflip { bit; lane }) -> flip_bit (Tiled.tile a i j) ~bit ~lane
      | Some (Fault.Tile_swap { lane }) -> flip_bit (Tiled.tile a i j) ~bit:52 ~lane)
  in
  (* A pivot failure is plausibly precision-caused only when block k's row
     band carries sub-FP64 work; forced injections respect the same gate,
     so escalating the band to FP64 genuinely cures them. *)
  let band_low_precision k =
    let low = ref (Precision_map.get pmap k k <> Fpformat.Fp64) in
    for j = 0 to k - 1 do
      if Precision_map.get pmap k j <> Fpformat.Fp64 then low := true
    done;
    !low
  in
  let fidelity = options.fidelity in
  let emit ?level name fields =
    match bus with
    | None -> ()
    | Some b -> Events.emit ?level b ~component:"cholesky" ~name fields
  in
  let execute id =
    match Cholesky_dag.kind_of dag id with
    | Task.Potrf k ->
      (match faults with
      | Some f
        when band_low_precision k
             && Fault.pivot_failure f ~task:(Task.name (Task.Potrf k))
                  ~attempt:fault_round ->
        raise (Blas.Not_positive_definite (k * nb))
      | _ -> ());
      let tile = Tiled.tile a k k in
      verify_inout (Task.Potrf k) k k;
      (* Re-raise pivot failures with the global row index, so recovery can
         identify the offending diagonal block as [pivot / nb]. *)
      (try Blas_emul.potrf_lower ~fidelity ~prec:(exec_prec (Task.Potrf k)) tile
       with Blas.Not_positive_definite p ->
         raise (Blas.Not_positive_definite ((k * nb) + p)));
      note_range ~i:k ~j:k tile;
      publish k k;
      corrupt_shipped (Task.Potrf k) k k;
      (* The panel factorization completing is the milestone that releases
         the whole trailing update of step [k]. *)
      emit "panel"
        [
          ("k", Events.fint k);
          ("prec", Events.fstr (Fpformat.name (exec_prec (Task.Potrf k))));
        ]
    | Task.Trsm (m, k) ->
      let b = Tiled.tile a m k in
      verify_inout (Task.Trsm (m, k)) m k;
      Blas_emul.trsm_right_lower_trans ~fidelity
        ~prec:(exec_prec (Task.Trsm (m, k)))
        ~l:(read k k) b;
      note_range ~i:m ~j:k b;
      publish m k;
      corrupt_shipped (Task.Trsm (m, k)) m k
    | Task.Syrk (m, k) ->
      let c = Tiled.tile a m m in
      verify_inout (Task.Syrk (m, k)) m m;
      Blas_emul.syrk_lower ~fidelity
        ~prec:(exec_prec (Task.Syrk (m, k)))
        ~alpha:(-1.) (read m k) ~beta:1. c;
      note_range ~i:m ~j:m c;
      stamp_stored m m;
      corrupt_stored (Task.Syrk (m, k)) m m
    | Task.Gemm (m, n, k) ->
      let c = Tiled.tile a m n in
      verify_inout (Task.Gemm (m, n, k)) m n;
      Blas_emul.gemm_nt ~fidelity
        ~prec:(exec_prec (Task.Gemm (m, n, k)))
        ~alpha:(-1.) (read m k) (read n k) ~beta:1. c;
      note_range ~i:m ~j:n c;
      stamp_stored m n;
      corrupt_stored (Task.Gemm (m, n, k)) m n
  in
  let task_label id = Task.name (Cholesky_dag.kind_of dag id) in
  let task_prec id = Fpformat.name (exec_prec (Cholesky_dag.kind_of dag id)) in
  let dag_obs =
    let module Bridge = Geomix_runtime.Obs_bridge in
    let hooks =
      List.filter_map Fun.id
        [
          Option.map (fun tr -> Bridge.recorder ~name:task_label ~tag:task_prec tr) trace;
          Option.map
            (fun b -> Bridge.bus_recorder ~name:task_label ~component:"cholesky" b)
            bus;
          Option.map
            (fun c -> Bridge.profile_recorder ~name:task_label ~tag:task_prec c)
            profile;
          Option.map
            (fun sp ->
              {
                Dag_exec.on_task =
                  (fun ~id:_ ~worker:_ ~start:_ ~stop:_ -> Span.note_task sp);
              })
            span;
        ]
    in
    match hooks with [] -> None | [ h ] -> Some h | hs -> Some (Bridge.fanout hs)
  in
  (* Indefiniteness is deterministic under restore-and-re-run, so retrying
     it burns the budget for nothing: it is a precision problem, handled by
     escalation above this level, not an execution fault. *)
  let retry =
    Option.map
      (fun p ->
        {
          p with
          Retry.retryable =
            (fun e ->
              match e with
              | Blas.Not_positive_definite _ -> false
              (* Re-running a consumer on corrupted inputs reproduces the
                 wrong answer — integrity violations escalate instead. *)
              | Guard.Corrupt _ -> false
              | e -> p.Retry.retryable e);
        })
      retry
  in
  let metric_retry, note_restore =
    match obs with
    | None -> (None, fun _ -> ())
    | Some reg ->
      let retries = Metrics.counter reg "cholesky.retries" in
      let restores = Metrics.counter reg "cholesky.restores" in
      let restored = Metrics.counter reg "cholesky.restored_bytes" in
      ( Some (fun ~id:_ ~attempt:_ _ -> Metrics.incr retries),
        fun (m : Mat.t) ->
          Metrics.incr restores;
          Metrics.add restored (8 * Mat.rows m * Mat.cols m) )
  in
  let note_retry =
    match (metric_retry, bus, span) with
    | None, None, None -> None
    | _ ->
      Some
        (fun ~id ~attempt exn ->
          (match metric_retry with Some f -> f ~id ~attempt exn | None -> ());
          (match span with Some sp -> Span.note_retry sp | None -> ());
          emit ~level:Events.Warn "retry"
            ([
               ("task", Events.fstr (task_label id));
               ("attempt", Events.fint attempt);
               ("error", Events.fstr (Printexc.to_string exn));
             ]
            @
            match retry with
            | None -> []
            | Some p -> [ ("backoff_s", Events.fnum (Retry.delay_for p ~attempt)) ]))
  in
  (* Snapshot of a task's written footprint: its single INOUT tile.  The
     shipped form needs no capture — a re-run republishes it from the
     restored tile. *)
  let capture id =
    let i, j = Task.write_tile (Cholesky_dag.kind_of dag id) in
    (* Verify — and if corrupted, repair — the tile before snapshotting it:
       the snapshot is blitted back and re-stamped on retry, so capturing a
       corrupted tile here would launder the corruption past the guard. *)
    (match integrity with
    | None -> ()
    | Some g ->
      recover_stored g ~task:(Task.name (Cholesky_dag.kind_of dag id)) i j);
    let saved = Mat.copy (Tiled.tile a i j) in
    fun () ->
      Mat.blit ~src:saved ~dst:(Tiled.tile a i j);
      (* The rollback invalidates whatever stamp the failed attempt left on
         this tile; re-stamp the restored bytes so the re-execution's
         inbound verification doesn't read the crash as a corruption. *)
      (match integrity with
      | None -> ()
      | Some g -> Guard.stamp g ~key:(stored_key i j) (Tiled.tile a i j));
      note_restore saved
  in
  (* Out-of-core mirror mode: the store owns residency of every stored
     tile.  Each task's acquire hook pins its declared footprint —
     loading evicted records back through the checksum-verified fault
     seam — and re-points the tiled matrix at the store's resident
     images; release unpins, marking the written tile dirty so its next
     eviction respills the new values.  Broadcast (shipped) forms stay in
     memory: they are immutable once published, so a stale alias of an
     evicted-and-reloaded stored tile carries bit-identical values and
     the factor is bitwise the same as an in-core run. *)
  let footprint kind =
    let w = Task.write_tile kind in
    w :: List.filter (fun c -> c <> w) (Task.read_tiles kind)
  in
  let store_acquire, store_release =
    match store with
    | None -> (None, None)
    | Some st ->
      Tiled.iter_lower a (fun ~i ~j m -> Store.put st (stored_key i j) m);
      let acquire id =
        List.iter
          (fun (i, j) -> Tiled.set_tile a i j (Store.acquire st (stored_key i j)))
          (footprint (Cholesky_dag.kind_of dag id))
      in
      let release id =
        let kind = Cholesky_dag.kind_of dag id in
        let w = Task.write_tile kind in
        List.iter
          (fun (i, j) -> Store.release st ~dirty:((i, j) = w) (stored_key i j))
          (footprint kind)
      in
      (Some acquire, Some release)
  in
  let run pool =
    Dag_exec.run ?obs:dag_obs
      ~task_name:(fun id -> Task.name (Cholesky_dag.kind_of dag id))
      ?faults ?retry ~capture ?on_retry:note_retry ?acquire:store_acquire
      ?release:store_release ?job ~pool
      ~num_tasks:(Cholesky_dag.num_tasks dag)
      ~in_degree:(Cholesky_dag.in_degree dag)
      ~successors:(Cholesky_dag.successors dag)
      ~execute ()
  in
  (match pool with
  | Some pool -> run pool
  | None -> Pool.with_pool ~num_workers:0 run);
  (* Materialize every stored tile back into the tiled matrix (pinned, so
     the terminal sweep and the upper-triangle scrub below operate on the
     store's current resident images, not stale pre-eviction aliases). *)
  (match store with
  | None -> ()
  | Some st ->
    for i = 0 to ntiles - 1 do
      for j = 0 to i do
        Tiled.set_tile a i j (Store.acquire st (stored_key i j))
      done
    done);
  (* Terminal ABFT sweep: every stored tile of the factor, and every
     broadcast payload still in flight, re-verified before the result is
     handed back — a corruption whose consumer never ran (a payload with no
     remaining readers) cannot escape silently. *)
  (match integrity with
  | None -> ()
  | Some g ->
    for i = 0 to ntiles - 1 do
      for j = 0 to i do
        let task = Printf.sprintf "final(%d,%d)" i j in
        recover_stored g ~task i j;
        match shipped.(pidx i j) with
        | None -> ()
        | Some m -> ignore (recover_shipped g ~task i j m)
      done
    done);
  (* Clear the stale upper triangles of the diagonal tiles so the tiled
     matrix now represents the factor L alone. *)
  for k = 0 to ntiles - 1 do
    Mat.zero_upper (Tiled.tile a k k)
  done;
  (* Unpin the materialized factor.  Diagonal tiles release dirty — the
     scrub above changed their bytes — so a later flush/checkpoint spills
     the factor as the caller now sees it. *)
  match store with
  | None -> ()
  | Some st ->
    for i = 0 to ntiles - 1 do
      for j = 0 to i do
        Store.release st ~dirty:(i = j) (stored_key i j)
      done
    done

(* Precision-escalation recovery. *)

type scope = Band | Full
type escalation = { block : int; scope : scope }
type outcome = Factorized | Indefinite of int

type report = {
  outcome : outcome;
  escalations : escalation list;
  rounds : int;
  pmap : Precision_map.t;
}

let restore_tiles ~from a =
  Tiled.iter_lower from (fun ~i ~j m -> Mat.blit ~src:m ~dst:(Tiled.tile a i j))

let factorize_robust ?options ?pool ?trace ?bus ?profile ?faults ?retry ?obs
    ?span ?integrity ?cmap ?store ?(max_band_escalations = 4) ?job ~pmap a =
  let note_band, note_full, note_indefinite =
    match obs with
    | None -> (ignore, ignore, ignore)
    | Some reg ->
      let band = Metrics.counter reg "recovery.band_escalations" in
      let full = Metrics.counter reg "recovery.full_escalations" in
      let indef = Metrics.counter reg "recovery.indefinite" in
      ( (fun () -> Metrics.incr band),
        (fun () -> Metrics.incr full),
        fun () -> Metrics.incr indef )
  in
  let emit ?level name fields =
    match bus with
    | None -> ()
    | Some b -> Events.emit ?level b ~component:"recovery" ~name fields
  in
  let original = Tiled.copy a in
  let rec go round pmap events bands =
    (* The caller's memoized communication map matches the original
       precision map only; escalated rounds run under a promoted map and
       must re-derive their transfers. *)
    let cmap = if round = 1 then cmap else None in
    match
      factorize ?options ?pool ?trace ?bus ?profile ?faults ?retry ?obs ?span
        ?integrity ?cmap ?store ~fault_round:round ?job ~pmap a
    with
    | () -> { outcome = Factorized; escalations = List.rev events; rounds = round; pmap }
    | exception exn -> (
      let bt = Printexc.get_raw_backtrace () in
      (* Leave the input unchanged on every failure path: recovery re-runs
         from the pristine matrix, and a caller that sees Indefinite (or a
         propagated execution fault) gets its matrix back. *)
      restore_tiles ~from:original a;
      match exn with
      | Blas.Not_positive_definite p ->
        if Precision_map.all_fp64 pmap then begin
          note_indefinite ();
          emit ~level:Events.Error "indefinite" [ ("pivot", Events.fint p) ];
          {
            outcome = Indefinite p;
            escalations = List.rev events;
            rounds = round;
            pmap;
          }
        end
        else
          let k = p / Tiled.nb a in
          if List.mem k bands || List.length events >= max_band_escalations then begin
            note_full ();
            emit ~level:Events.Warn "escalate"
              [
                ("block", Events.fint k);
                ("scope", Events.fstr "full");
                ("round", Events.fint round);
              ];
            go (round + 1)
              (Precision_map.uniform ~nt:(Precision_map.nt pmap) Fpformat.Fp64)
              ({ block = k; scope = Full } :: events)
              bands
          end
          else begin
            note_band ();
            emit ~level:Events.Warn "escalate"
              [
                ("block", Events.fint k);
                ("scope", Events.fstr "band");
                ("round", Events.fint round);
              ];
            go (round + 1)
              (Precision_map.escalate_band pmap k)
              ({ block = k; scope = Band } :: events)
              (k :: bands)
          end
      | exn -> Printexc.raise_with_backtrace exn bt)
  in
  go 1 pmap [] []

let solve_lower l b =
  let ntiles = Tiled.nt l and nb = Tiled.nb l in
  assert (Array.length b = Tiled.n l);
  let y = Array.copy b in
  for i = 0 to ntiles - 1 do
    let ri = i * nb and rows = Tiled.tile_rows l i in
    let bi = Array.sub y ri rows in
    for j = 0 to i - 1 do
      let xj = Array.sub y (j * nb) (Tiled.tile_rows l j) in
      let contrib = Mat.matvec (Tiled.tile l i j) xj in
      Array.iteri (fun p v -> bi.(p) <- bi.(p) -. v) contrib
    done;
    let yi = Geomix_linalg.Blas.trsv_lower ~l:(Tiled.tile l i i) bi in
    Array.blit yi 0 y ri rows
  done;
  y

let solve_lower_trans l b =
  let ntiles = Tiled.nt l and nb = Tiled.nb l in
  assert (Array.length b = Tiled.n l);
  let x = Array.copy b in
  for i = ntiles - 1 downto 0 do
    let ri = i * nb and rows = Tiled.tile_rows l i in
    let bi = Array.sub x ri rows in
    for j = i + 1 to ntiles - 1 do
      (* Tile (j, i) of L contributes L(j,i)ᵀ·x_j to row block i of Lᵀx. *)
      let xj = Array.sub x (j * nb) (Tiled.tile_rows l j) in
      let contrib = Mat.matvec_trans (Tiled.tile l j i) xj in
      Array.iteri (fun p v -> bi.(p) <- bi.(p) -. v) contrib
    done;
    let xi = Geomix_linalg.Blas.trsv_lower_trans ~l:(Tiled.tile l i i) bi in
    Array.blit xi 0 x ri rows
  done;
  x

let log_det l =
  let acc = ref 0. in
  for i = 0 to Tiled.nt l - 1 do
    let tile = Tiled.tile l i i in
    for p = 0 to Mat.rows tile - 1 do
      acc := !acc +. log (Mat.get tile p p)
    done
  done;
  2. *. !acc
