open Geomix_tile
module Fpformat = Geomix_precision.Fpformat
module Mat = Geomix_linalg.Mat
module Blas_emul = Geomix_linalg.Blas_emul
module Pool = Geomix_parallel.Pool
module Dag_exec = Geomix_parallel.Dag_exec
module Task = Geomix_runtime.Task
module Cholesky_dag = Geomix_runtime.Cholesky_dag

type strategy = Automatic | Always_ttc

type options = {
  fidelity : Blas_emul.fidelity;
  strategy : strategy;
  model_comm_rounding : bool;
}

let default_options =
  { fidelity = Blas_emul.Boundary; strategy = Automatic; model_comm_rounding = true }

let pidx i j = (i * (i + 1) / 2) + j

let factorize ?(options = default_options) ?pool ?trace ~pmap a =
  let ntiles = Tiled.nt a in
  if Precision_map.nt pmap <> ntiles then
    invalid_arg "Mp_cholesky.factorize: precision map / matrix tile mismatch";
  let dag = Cholesky_dag.create ~nt:ntiles in
  let cmap =
    if options.model_comm_rounding && options.strategy = Automatic then
      Some (Comm_map.compute pmap)
    else None
  in
  let kernel_precision i j = Precision_map.get pmap i j in
  let exec_prec kind = Task.exec_precision ~kernel_precision kind in
  (* Shipped form of each broadcast tile: what consumers read.  Written once
     by the producing POTRF/TRSM and read concurrently afterwards — the DAG
     ordering makes this race-free. *)
  let shipped : Mat.t option array = Array.make (ntiles * (ntiles + 1) / 2) None in
  let publish i j =
    let tile = Tiled.tile a i j in
    let storage = Precision_map.storage pmap i j in
    Mat.round_inplace storage tile;
    let form =
      if not options.model_comm_rounding then tile
      else
        match (options.strategy, cmap) with
        | Always_ttc, _ | Automatic, None -> tile
        | Automatic, Some cm ->
          if Comm_map.strategy cm i j = Comm_map.Stc then
            Mat.rounded (Comm_map.comm_scalar cm i j) tile
          else tile
    in
    shipped.(pidx i j) <- Some form
  in
  let read i j =
    match shipped.(pidx i j) with
    | Some m -> m
    | None -> assert false (* DAG ordering guarantees the producer ran *)
  in
  let fidelity = options.fidelity in
  let execute id =
    match Cholesky_dag.kind_of dag id with
    | Task.Potrf k ->
      let tile = Tiled.tile a k k in
      Blas_emul.potrf_lower ~fidelity ~prec:(exec_prec (Task.Potrf k)) tile;
      publish k k
    | Task.Trsm (m, k) ->
      let b = Tiled.tile a m k in
      Blas_emul.trsm_right_lower_trans ~fidelity
        ~prec:(exec_prec (Task.Trsm (m, k)))
        ~l:(read k k) b;
      publish m k
    | Task.Syrk (m, k) ->
      let c = Tiled.tile a m m in
      Blas_emul.syrk_lower ~fidelity
        ~prec:(exec_prec (Task.Syrk (m, k)))
        ~alpha:(-1.) (read m k) ~beta:1. c
    | Task.Gemm (m, n, k) ->
      let c = Tiled.tile a m n in
      Blas_emul.gemm_nt ~fidelity
        ~prec:(exec_prec (Task.Gemm (m, n, k)))
        ~alpha:(-1.) (read m k) (read n k) ~beta:1. c
  in
  let dag_obs =
    Option.map
      (fun tr ->
        Geomix_runtime.Obs_bridge.recorder
          ~name:(fun id -> Task.name (Cholesky_dag.kind_of dag id))
          ~tag:(fun id -> Fpformat.name (exec_prec (Cholesky_dag.kind_of dag id)))
          tr)
      trace
  in
  let run pool =
    Dag_exec.run ?obs:dag_obs ~pool
      ~num_tasks:(Cholesky_dag.num_tasks dag)
      ~in_degree:(Cholesky_dag.in_degree dag)
      ~successors:(Cholesky_dag.successors dag)
      ~execute ()
  in
  (match pool with
  | Some pool -> run pool
  | None -> Pool.with_pool ~num_workers:0 run);
  (* Clear the stale upper triangles of the diagonal tiles so the tiled
     matrix now represents the factor L alone. *)
  for k = 0 to ntiles - 1 do
    Mat.zero_upper (Tiled.tile a k k)
  done

let solve_lower l b =
  let ntiles = Tiled.nt l and nb = Tiled.nb l in
  assert (Array.length b = Tiled.n l);
  let y = Array.copy b in
  for i = 0 to ntiles - 1 do
    let ri = i * nb and rows = Tiled.tile_rows l i in
    let bi = Array.sub y ri rows in
    for j = 0 to i - 1 do
      let xj = Array.sub y (j * nb) (Tiled.tile_rows l j) in
      let contrib = Mat.matvec (Tiled.tile l i j) xj in
      Array.iteri (fun p v -> bi.(p) <- bi.(p) -. v) contrib
    done;
    let yi = Geomix_linalg.Blas.trsv_lower ~l:(Tiled.tile l i i) bi in
    Array.blit yi 0 y ri rows
  done;
  y

let solve_lower_trans l b =
  let ntiles = Tiled.nt l and nb = Tiled.nb l in
  assert (Array.length b = Tiled.n l);
  let x = Array.copy b in
  for i = ntiles - 1 downto 0 do
    let ri = i * nb and rows = Tiled.tile_rows l i in
    let bi = Array.sub x ri rows in
    for j = i + 1 to ntiles - 1 do
      (* Tile (j, i) of L contributes L(j,i)ᵀ·x_j to row block i of Lᵀx. *)
      let xj = Array.sub x (j * nb) (Tiled.tile_rows l j) in
      let contrib = Mat.matvec_trans (Tiled.tile l j i) xj in
      Array.iteri (fun p v -> bi.(p) <- bi.(p) -. v) contrib
    done;
    let xi = Geomix_linalg.Blas.trsv_lower_trans ~l:(Tiled.tile l i i) bi in
    Array.blit xi 0 x ri rows
  done;
  x

let log_det l =
  let acc = ref 0. in
  for i = 0 to Tiled.nt l - 1 do
    let tile = Tiled.tile l i i in
    for p = 0 to Mat.rows tile - 1 do
      acc := !acc +. log (Mat.get tile p p)
    done
  done;
  2. *. !acc
