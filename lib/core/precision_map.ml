module Fpformat = Geomix_precision.Fpformat
module Tiled = Geomix_tile.Tiled
module Heatmap = Geomix_util.Heatmap

type t = { nt : int; u_req : float; prec : Fpformat.t array }

let pidx i j = (i * (i + 1) / 2) + j

let nt t = t.nt
let u_req t = t.u_req

let get t i j =
  assert (i >= j && j >= 0 && i < t.nt);
  t.prec.(pidx i j)

let storage t i j = Fpformat.storage_scalar (get t i j)

(* Lowest-precision-first candidate order: FP16 before FP16_32 before FP32;
   FP64 is the fallback and need not be listed. *)
let candidates chain =
  chain
  |> List.filter (fun p -> p <> Fpformat.Fp64)
  |> List.sort (fun a b -> Fpformat.compare_precision a b)

let select ~cands ~u_req ratio =
  let ok p = ratio <= u_req /. Fpformat.rule_epsilon p in
  match List.find_opt ok cands with Some p -> p | None -> Fpformat.Fp64

let of_tile_norms ?(chain = Fpformat.framework_chain) ~u_req ~nt ~global_norm tile_norm =
  assert (nt > 0 && u_req > 0. && global_norm > 0.);
  let cands = candidates chain in
  let prec = Array.make (nt * (nt + 1) / 2) Fpformat.Fp64 in
  for i = 0 to nt - 1 do
    for j = 0 to i - 1 do
      let ratio = tile_norm i j *. float_of_int nt /. global_norm in
      prec.(pidx i j) <- select ~cands ~u_req ratio
    done
  done;
  { nt; u_req; prec }

let of_tiled ?chain ~u_req tiled =
  of_tile_norms ?chain ~u_req ~nt:(Tiled.nt tiled) ~global_norm:(Tiled.frobenius tiled)
    (fun i j -> Tiled.tile_frobenius tiled i j)

let of_element_fn ?chain ?(samples_per_tile = 64) ~u_req ~n ~nb element =
  assert (n > 0 && nb > 0 && samples_per_tile > 0);
  let nt = (n + nb - 1) / nb in
  let s = Stdlib.max 1 (int_of_float (sqrt (float_of_int samples_per_tile))) in
  (* Stratified subsample of tile (i, j): an s×s grid of entries, norm
     scaled by (tile area / sample count). *)
  let est_norm i j =
    let rows = Stdlib.min nb (n - (i * nb)) and cols = Stdlib.min nb (n - (j * nb)) in
    let sr = Stdlib.min s rows and sc = Stdlib.min s cols in
    let acc = ref 0. in
    for a = 0 to sr - 1 do
      for b = 0 to sc - 1 do
        let r = (i * nb) + (a * rows / sr) + (rows / (2 * sr)) in
        let c = (j * nb) + (b * cols / sc) + (cols / (2 * sc)) in
        let v = element r c in
        acc := !acc +. (v *. v)
      done
    done;
    let area = float_of_int rows *. float_of_int cols in
    sqrt (!acc *. area /. float_of_int (sr * sc))
  in
  let norms = Array.make (nt * (nt + 1) / 2) 0. in
  let gsq = ref 0. in
  for i = 0 to nt - 1 do
    for j = 0 to i do
      let v = est_norm i j in
      norms.(pidx i j) <- v;
      let w = if i = j then 1. else 2. in
      gsq := !gsq +. (w *. v *. v)
    done
  done;
  of_tile_norms ?chain ~u_req ~nt ~global_norm:(sqrt !gsq) (fun i j -> norms.(pidx i j))

(* Arbitrary per-tile assignment, bypassing the norm rule.  Property suites
   use this to build adversarial/random kernel-precision maps. *)
let of_fn ~nt f =
  assert (nt > 0);
  let prec = Array.make (nt * (nt + 1) / 2) Fpformat.Fp64 in
  for i = 0 to nt - 1 do
    for j = 0 to i do
      prec.(pidx i j) <- f i j
    done
  done;
  { nt; u_req = nan; prec }

let uniform ~nt p = { nt; u_req = nan; prec = Array.make (nt * (nt + 1) / 2) p }

let two_level ~nt ~off_diag =
  let t = uniform ~nt off_diag in
  for k = 0 to nt - 1 do
    t.prec.(pidx k k) <- Fpformat.Fp64
  done;
  t

(* Recovery escalation: promote the row/column band through diagonal block
   [k] to FP64 (tiles (k, j) for j <= k and (i, k) for i >= k), leaving
   the rest of the map — and the u_req it was built for — untouched. *)
let escalate_band t k =
  assert (k >= 0 && k < t.nt);
  let prec = Array.copy t.prec in
  for j = 0 to k do
    prec.(pidx k j) <- Fpformat.Fp64
  done;
  for i = k to t.nt - 1 do
    prec.(pidx i k) <- Fpformat.Fp64
  done;
  { t with prec }

let all_fp64 t = Array.for_all (fun p -> p = Fpformat.Fp64) t.prec

let fractions t =
  let total = float_of_int (Array.length t.prec) in
  Fpformat.all
  |> List.filter_map (fun p ->
       let c = Array.fold_left (fun acc q -> if q = p then acc + 1 else acc) 0 t.prec in
       if c = 0 then None else Some (p, float_of_int c /. total))

let render t =
  (* Drawing characters: FP64 '6', FP32 '3', TF32 't', FP16_32 'h',
     BF16_32 'b', FP16 '1'. *)
  let cats =
    List.map2
      (fun p ch -> (Fpformat.name p, ch))
      Fpformat.all
      [ '6'; '3'; 't'; 'h'; 'b'; '1' ]
  in
  let hm = Heatmap.create ~nt:t.nt ~categories:cats in
  let index_of p =
    let rec go i = function
      | [] -> assert false
      | q :: rest -> if q = p then i else go (i + 1) rest
    in
    go 0 Fpformat.all
  in
  Heatmap.render hm ~cell:(fun ~row ~col ->
    if col > row then None else Some (index_of (get t row col)))
