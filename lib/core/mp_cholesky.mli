(** Numeric adaptive mixed-precision tile Cholesky (Algorithm 1 under the
    precision maps of Sections V–VI).

    The factorization executes the task DAG of {!Geomix_runtime.Cholesky_dag}
    on a {!Geomix_parallel.Pool}, each kernel running through the
    precision-emulated {!Geomix_linalg.Blas_emul} at the precision the map
    assigns to its tile.  When communication modelling is on, consumers of a
    broadcast tile read the {e shipped} form of the data: under STC that is
    the tile down-converted once to the communication format of Algorithm 2,
    so the accuracy consequences of the automated conversion strategy — not
    just its speed — are reproduced. *)

open Geomix_tile
module Blas_emul = Geomix_linalg.Blas_emul

type strategy =
  | Automatic   (** the paper's contribution: per-tile STC/TTC (Algorithm 2) *)
  | Always_ttc  (** prior art (refs [18], [38]): always ship storage precision *)

type options = {
  fidelity : Blas_emul.fidelity;
  strategy : strategy;
  model_comm_rounding : bool;
      (** when false, consumers read full storage-precision data regardless
          of strategy (isolates kernel-precision error from transfer
          error — the [ablation_stc] experiment) *)
}

val default_options : options
(** [Boundary] fidelity, [Automatic] strategy, communication rounding on. *)

val factorize :
  ?options:options ->
  ?pool:Geomix_parallel.Pool.t ->
  ?trace:Geomix_runtime.Trace.t ->
  ?bus:Geomix_obs.Events.t ->
  ?profile:Geomix_obs.Profile.collector ->
  ?faults:Geomix_fault.Fault.t ->
  ?retry:Geomix_fault.Retry.policy ->
  ?obs:Geomix_obs.Metrics.t ->
  ?span:Geomix_obs.Span.t ->
  ?integrity:Geomix_integrity.Guard.t ->
  ?cmap:Comm_map.t ->
  ?store:Geomix_ooc.Store.t ->
  ?observe:(i:int -> j:int -> Geomix_linalg.Mat.t -> unit) ->
  ?fault_round:int ->
  ?job:Geomix_parallel.Pool.job ->
  pmap:Precision_map.t ->
  Tiled.t ->
  unit
(** In-place lower Cholesky of the tiled symmetric matrix (upper triangles
    of diagonal tiles are left untouched).  The precision map must have the
    matrix's tile count.

    [?cmap] substitutes a caller-supplied communication map for the
    [Comm_map.compute pmap] the factorization would otherwise derive — the
    entry point for range-driven transfer formats such as the autotuner's
    FP8 overrides ({!Comm_map.override}) and the request server's memoized
    maps ({!Geomix_serve.Cache}).  Only consulted when the [Automatic]
    strategy models communication rounding; must have the matrix's tile
    count.

    [?store] runs the factorization {e out of core} over a
    {!Geomix_ooc.Store}: every stored tile of the matrix is adopted into
    the store up front, each task's declared footprint is pinned resident
    for the duration of its supervision envelope (acquired before the
    first attempt's snapshot, released — written tile dirty — after the
    last, also on failure), and tiles past the store's residency budget
    are spilled to disk in their narrowest lossless format and reloaded
    through the checksum-verified fault seam on next use.  Broadcast
    payloads stay in memory (they are immutable once published), so the
    factor is {e bitwise identical} to an in-core run under any budget.
    On return the tiled matrix holds the store's resident images of the
    factor, and the store's keys are the packed lower-tile indices
    [i·(i+1)/2 + j].

    [?job] scopes the execution to a {!Geomix_parallel.Pool.job}, so
    concurrent factorizations sharing one pool neither await nor observe
    each other's tasks or failures — how the request server multiplexes
    requests over the shared domain pool.

    [?observe] is the range-instrumentation hook (the [?obs]-style pilot
    pass of the autotuner): after each kernel writes tile (i, j), the
    callback receives the {e FP64 working values} — before any
    storage/transfer rounding — of that tile.  POTRF and TRSM observe the
    freshly factored/solved tile once; each SYRK/GEMM observes the
    accumulator after its update.  Observers must not mutate the matrix;
    the factorization is bit-identical with or without the hook.  Distinct
    tiles may be observed concurrently by different pool workers (writes to
    the {e same} tile are serialized by the DAG), so observer state must be
    per-tile or synchronized — {!Geomix_autotune.Range_tracker} keeps
    per-tile accumulators.

    [?trace] records one {e real} wall-clock event per task (label =
    ["GEMM(5,3,1)"]-style task name, tag = its kernel precision, resource =
    the pool worker that ran it), viewable through the existing Chrome-JSON
    and Gantt exporters — the measured counterpart of the simulator's
    schedule traces.

    [?bus] streams the same execution onto the telemetry bus (component
    ["cholesky"]): Debug [task_begin]/[task_end] pairs carrying the measured
    run-relative span in field ["at"] (the same floats [?trace] records, so
    the streamed log reconstructs the trace's makespan exactly), an Info
    [panel] event per completed POTRF(k) with its precision, and Warn
    [retry] events per supervised re-execution (task, attempt, error and —
    when [?retry] is given — the backoff applied).  [?profile] collects one
    {!Geomix_obs.Profile} measure per task (label = task name, class =
    kernel, precision = its execution precision) for critical-path
    analysis against {!Geomix_runtime.Cholesky_dag} predecessors.

    {b Supervised recovery.}  [?faults] subjects every kernel to the seeded
    fault plan (site ["exec"], keyed by the ["POTRF(3)"]-style task name) and
    [?retry] re-executes failed attempts with bounded backoff, after
    restoring the task's written tile from a pre-attempt snapshot — so a
    retried SYRK/GEMM never double-applies its accumulation.  Fault decisions
    are pure functions of (seed, task name, attempt): a faulted run that
    recovers produces bitwise-identical tiles to the fault-free run, under
    any worker count.  [Blas.Not_positive_definite] is never retried — it is
    deterministic under restore-and-re-run and belongs to precision recovery
    ({!factorize_robust}), not execution recovery.  With [?obs], recovery
    records [cholesky.retries], [cholesky.restores] and
    [cholesky.restored_bytes].

    {b Motion accounting.}  With [?obs], every consumer [read] of a
    broadcast payload records the RAW-edge transfer at the byte level:
    [cholesky.shipped_bytes] (as actually shipped — the Algorithm 2
    transfer scalar under STC, the storage scalar under TTC),
    [cholesky.shipped_bytes_fp64] (the 8-byte-per-element FP64-equivalent
    baseline), [cholesky.shipped_edges], and a
    [cholesky.shipped_bytes.<scalar>] counter per transfer format.
    [?span] attributes the very same quantities — same call site, same
    values — to a per-request trace span ({!Geomix_obs.Span}), along with
    task completions and supervised retries, so a fully-sampled traced
    run conserves the aggregate counters bitwise.

    [?faults] additionally arms forced pivot failures (site ["pivot"],
    {!Geomix_fault.Fault.pivot_failure}): an armed POTRF(k) whose row band
    carries sub-FP64 work raises [Not_positive_definite (k·nb)] before
    touching its tile, emulating the precision-induced loss of positive
    definiteness the escalation fallback exists for.  Blocks whose band is
    already entirely FP64 never fire — an escalated re-run genuinely cures
    the injection.  [?fault_round] (default 1) feeds the pivot decision's
    attempt slot so each {!factorize_robust} round redraws independently.

    {b ABFT tile integrity.}  [?integrity] guards every producer/consumer
    boundary of the factorization with per-tile checksums
    ({!Geomix_integrity.Guard}; any previous stamps are reset on entry):

    - a kernel verifies its INOUT tile before touching it, and SYRK/GEMM
      re-stamp the accumulator after their update;
    - [publish] stamps the FP64 working tile, then carries the stamp
      across the storage down-convert and (under STC, per
      {!Comm_map.strategy}) across Algorithm 2's transfer conversion with
      the conversion-tolerant Frobenius fingerprint, re-stamping the exact
      bytes on the far side of each hop — so a lawful rounding passes
      while a flipped high-order bit fails;
    - every [read] of a broadcast payload is verified exactly (TTC
      consumers included) before the kernel consumes it;
    - a terminal sweep re-verifies all stored tiles and in-flight payloads
      before the factor is handed back.

    Detected corruptions are repaired in place — stored tiles from the
    guard's snapshots (enable them via [Guard.create ~snapshots:true]),
    broadcast payloads by recomputation from the guarded stored tile — and
    re-verified; an unrecoverable one raises
    {!Geomix_integrity.Guard.Corrupt}, which is deliberately never
    retried (re-running a consumer on corrupted inputs reproduces the
    wrong answer) and propagates through {!factorize_robust} with the
    matrix restored.  With faults disabled, a guarded factorization is
    bitwise identical to an unguarded one.

    When [?faults] lists {!Geomix_fault.Fault.Sdc}, each task additionally
    draws a seeded silent corruption ({!Geomix_fault.Fault.sdc_decide},
    keyed like pivot injection by [?fault_round]): POTRF/TRSM corrupt the
    broadcast payload they just published (a fresh corrupted copy replaces
    the slot — a transit corruption, never damage to the stored factor),
    SYRK/GEMM flip a bit of their accumulator tile in memory.  Injection
    happens whether or not a guard is attached; without one the corruption
    propagates silently into the result — which is the point of the
    [geomix chaos --sdc] experiment.

    @raise Geomix_linalg.Blas.Not_positive_definite when a diagonal pivot
    fails; the payload is the {e global} row index (block [k], local pivot
    [p] report [k·nb + p]), so recovery can locate the offending block as
    [pivot / nb]. *)

(** {1 Precision-escalation recovery}

    The numeric fallback of the fault-tolerance layer: when the
    mixed-precision factorization loses positive definiteness — a known
    failure mode of aggressive precision maps on ill-conditioned
    covariances — the offending diagonal block's row/column band is promoted
    to FP64 ({!Precision_map.escalate_band}) and the factorization is re-run
    from a pristine copy.  If band escalations stop making progress (same
    block fails twice, or the escalation budget is exhausted) the whole map
    is promoted to FP64; failure under an all-FP64 map is true
    indefiniteness, reported rather than raised. *)

type scope =
  | Band  (** one diagonal block's row/column band promoted to FP64 *)
  | Full  (** the whole map promoted to FP64 *)

type escalation = { block : int; scope : scope }

type outcome =
  | Factorized
  | Indefinite of int
      (** global pivot index that failed under the all-FP64 map *)

type report = {
  outcome : outcome;
  escalations : escalation list;  (** in the order they were applied *)
  rounds : int;  (** factorization attempts, ≥ 1 *)
  pmap : Precision_map.t;  (** the map the final round ran under *)
}

val factorize_robust :
  ?options:options ->
  ?pool:Geomix_parallel.Pool.t ->
  ?trace:Geomix_runtime.Trace.t ->
  ?bus:Geomix_obs.Events.t ->
  ?profile:Geomix_obs.Profile.collector ->
  ?faults:Geomix_fault.Fault.t ->
  ?retry:Geomix_fault.Retry.policy ->
  ?obs:Geomix_obs.Metrics.t ->
  ?span:Geomix_obs.Span.t ->
  ?integrity:Geomix_integrity.Guard.t ->
  ?cmap:Comm_map.t ->
  ?store:Geomix_ooc.Store.t ->
  ?max_band_escalations:int ->
  ?job:Geomix_parallel.Pool.job ->
  pmap:Precision_map.t ->
  Tiled.t ->
  report
(** {!factorize} with automatic precision escalation.  [?cmap] is the
    caller's memoized communication map for the {e original} [pmap]; it
    feeds round 1 only — escalated rounds run under a promoted map, so
    they re-derive their transfers as {!factorize} would.  On [Factorized] the
    matrix holds the factor computed under [report.pmap]; on [Indefinite]
    (and on any propagated execution fault) the matrix is restored to its
    input values.  [max_band_escalations] (default 4) bounds the number of
    band-scoped retries before promoting the full map.  With [?obs], records
    [recovery.band_escalations], [recovery.full_escalations] and
    [recovery.indefinite].  With [?bus], escalation decisions are narrated
    on component ["recovery"]: a Warn [escalate] event per promotion (with
    the offending block, scope and round) and an Error [indefinite] event
    when the all-FP64 map still fails.  [?bus] and [?profile] are also
    passed through to every {!factorize} round, so a multi-round recovery
    produces one continuous event stream and a profile whose per-task
    durations accumulate across rounds.  Never raises
    [Not_positive_definite]. *)

val solve_lower : Tiled.t -> float array -> float array
(** Forward substitution [L·y = b] on a factorized tiled matrix (FP64). *)

val solve_lower_trans : Tiled.t -> float array -> float array
(** Backward substitution [Lᵀ·x = y]. *)

val log_det : Tiled.t -> float
(** [log |A| = 2·Σ log L_ii] of a factorized matrix. *)
