(** Numeric adaptive mixed-precision tile Cholesky (Algorithm 1 under the
    precision maps of Sections V–VI).

    The factorization executes the task DAG of {!Geomix_runtime.Cholesky_dag}
    on a {!Geomix_parallel.Pool}, each kernel running through the
    precision-emulated {!Geomix_linalg.Blas_emul} at the precision the map
    assigns to its tile.  When communication modelling is on, consumers of a
    broadcast tile read the {e shipped} form of the data: under STC that is
    the tile down-converted once to the communication format of Algorithm 2,
    so the accuracy consequences of the automated conversion strategy — not
    just its speed — are reproduced. *)

open Geomix_tile
module Blas_emul = Geomix_linalg.Blas_emul

type strategy =
  | Automatic   (** the paper's contribution: per-tile STC/TTC (Algorithm 2) *)
  | Always_ttc  (** prior art (refs [18], [38]): always ship storage precision *)

type options = {
  fidelity : Blas_emul.fidelity;
  strategy : strategy;
  model_comm_rounding : bool;
      (** when false, consumers read full storage-precision data regardless
          of strategy (isolates kernel-precision error from transfer
          error — the [ablation_stc] experiment) *)
}

val default_options : options
(** [Boundary] fidelity, [Automatic] strategy, communication rounding on. *)

val factorize :
  ?options:options ->
  ?pool:Geomix_parallel.Pool.t ->
  ?trace:Geomix_runtime.Trace.t ->
  pmap:Precision_map.t ->
  Tiled.t ->
  unit
(** In-place lower Cholesky of the tiled symmetric matrix (upper triangles
    of diagonal tiles are left untouched).  The precision map must have the
    matrix's tile count.

    [?trace] records one {e real} wall-clock event per task (label =
    ["GEMM(5,3,1)"]-style task name, tag = its kernel precision, resource =
    the pool worker that ran it), viewable through the existing Chrome-JSON
    and Gantt exporters — the measured counterpart of the simulator's
    schedule traces.
    @raise Geomix_linalg.Blas.Not_positive_definite when a diagonal pivot
    fails, exactly as the FP64 algorithm would. *)

val solve_lower : Tiled.t -> float array -> float array
(** Forward substitution [L·y = b] on a factorized tiled matrix (FP64). *)

val solve_lower_trans : Tiled.t -> float array -> float array
(** Backward substitution [Lᵀ·x = y]. *)

val log_det : Tiled.t -> float
(** [log |A| = 2·Σ log L_ii] of a factorized matrix. *)
