open Geomix_tile
module Mat = Geomix_linalg.Mat
module Blas = Geomix_linalg.Blas
module Blas_emul = Geomix_linalg.Blas_emul
module Task = Geomix_runtime.Task
module Store = Geomix_ooc.Store

let pidx i j = (i * (i + 1) / 2) + j

(* Inverse of [pidx]: recover (row, col) from a packed lower-triangle
   index — the eviction priority is called per store key. *)
let unpack p =
  let i = int_of_float ((sqrt ((8. *. float_of_int p) +. 1.) -. 1.) /. 2.) in
  let i =
    if pidx i 0 > p then i - 1 else if pidx (i + 1) 0 <= p then i + 1 else i
  in
  (i, p - pidx i 0)

type outcome =
  | Resumed of { from_column : int; reshipped : int }
  | Restarted of { quarantined : Store.key list }

type ctx = {
  st : Store.t;
  pmap : Precision_map.t;
  options : Mp_cholesky.options;
  cmap : Comm_map.t option;
  nt : int;
  nb : int;
  n : int;
  npairs : int;
  every : int;
  cur : int ref;  (* current column — drives the farthest-next-use order *)
}

let mk_ctx ?(options = Mp_cholesky.default_options) ?cmap ?(checkpoint_every = 1)
    ~store ~pmap ~nt ~nb ~n () =
  if checkpoint_every < 1 then
    invalid_arg "Ooc_cholesky: checkpoint_every < 1";
  (match cmap with
  | Some cm when Comm_map.nt cm <> nt ->
    invalid_arg "Ooc_cholesky: comm map / matrix tile mismatch"
  | _ -> ());
  (* Same derivation as Mp_cholesky.factorize: the communication map only
     exists when the Automatic strategy models transfer rounding. *)
  let cmap =
    if
      options.Mp_cholesky.model_comm_rounding
      && options.Mp_cholesky.strategy = Mp_cholesky.Automatic
    then Some (match cmap with Some cm -> cm | None -> Comm_map.compute pmap)
    else None
  in
  {
    st = store;
    pmap;
    options;
    cmap;
    nt;
    nb;
    n;
    npairs = nt * (nt + 1) / 2;
    every = checkpoint_every;
    cur = ref 0;
  }

(* The conversion a publish applies to produce the broadcast form —
   bitwise the same decision Mp_cholesky makes, so the shipped operands
   (and hence the factor) are bit-identical. *)
let comm_conversion ctx i j =
  match ctx.cmap with
  | None -> None
  | Some cm ->
    if Comm_map.strategy cm i j = Comm_map.Stc then
      Some (Comm_map.comm_scalar cm i j)
    else None

(* Farthest-next-use eviction order of the left-looking schedule (the
   I/O-aware static order of arXiv 2410.09819).  A key's priority is the
   distance, in columns, to its next read at the current column: stored
   input (i, j) is next read at step j; a broadcast form of tile (i, k)
   feeds steps k+1 .. i; anything never read again (the finished factor,
   consumed broadcasts) is first out the door. *)
let install_priority ctx =
  let far = max_int / 2 in
  Store.set_priority ctx.st
    (Some
       (fun key ->
         let c = !(ctx.cur) in
         if key < ctx.npairs then
           let _, j = unpack key in
           if j >= c then j - c else far
         else
           let i, k = unpack (key - ctx.npairs) in
           if i = k then (if c > k then far else k - c)
           else if c > i then far
           else max c (k + 1) - c))

(* What a consumer reads of tile (i, j)'s broadcast: the stored (storage
   precision) tile under TTC, the separately spilled transfer-format form
   under STC — so the store's disk traffic tracks the communication map
   down to FP16/FP8 records. *)
let read_ship ctx i j =
  let key =
    if comm_conversion ctx i j = None then pidx i j else ctx.npairs + pidx i j
  in
  (Store.acquire ctx.st key, key)

let publish ctx i j m =
  Mat.round_inplace (Precision_map.storage ctx.pmap i j) m;
  match comm_conversion ctx i j with
  | Some s -> Store.put ctx.st (ctx.npairs + pidx i j) (Mat.rounded s m)
  | None -> ()

(* One left-looking step: column [j] receives all of its trailing updates
   (each per-tile chain in the same k-ascending order the DAG serializes
   it in), then the panel factorizes.  Only column [j] is written, so the
   on-disk state between steps is always a consistent prefix. *)
let step ctx j =
  ctx.cur := j;
  let fidelity = ctx.options.Mp_cholesky.fidelity in
  let kernel_precision i j = Precision_map.get ctx.pmap i j in
  let prec kind = Task.exec_precision ~kernel_precision kind in
  let c = Store.acquire ctx.st (pidx j j) in
  for k = 0 to j - 1 do
    let mk, kk = read_ship ctx j k in
    Blas_emul.syrk_lower ~fidelity
      ~prec:(prec (Task.Syrk (j, k)))
      ~alpha:(-1.) mk ~beta:1. c;
    Store.release ctx.st kk
  done;
  (* Re-raise pivot failures with the global row index, as Mp_cholesky. *)
  (try Blas_emul.potrf_lower ~fidelity ~prec:(prec (Task.Potrf j)) c
   with Blas.Not_positive_definite p ->
     Store.release ctx.st (pidx j j);
     raise (Blas.Not_positive_definite ((j * ctx.nb) + p)));
  publish ctx j j c;
  Store.release ctx.st ~dirty:true (pidx j j);
  for i = j + 1 to ctx.nt - 1 do
    let b = Store.acquire ctx.st (pidx i j) in
    for k = 0 to j - 1 do
      let aik, k1 = read_ship ctx i k in
      let ajk, k2 = read_ship ctx j k in
      Blas_emul.gemm_nt ~fidelity
        ~prec:(prec (Task.Gemm (i, j, k)))
        ~alpha:(-1.) aik ajk ~beta:1. b;
      Store.release ctx.st k2;
      Store.release ctx.st k1
    done;
    let l, kl = read_ship ctx j j in
    Blas_emul.trsm_right_lower_trans ~fidelity
      ~prec:(prec (Task.Trsm (i, j)))
      ~l b;
    Store.release ctx.st kl;
    publish ctx i j b;
    Store.release ctx.st ~dirty:true (pidx i j)
  done

let meta_of ctx ~completed ~finalized =
  [
    ("completed", string_of_int completed);
    ("nt", string_of_int ctx.nt);
    ("nb", string_of_int ctx.nb);
    ("n", string_of_int ctx.n);
    ("finalized", if finalized then "true" else "false");
  ]

let ckpt ctx ~completed ~finalized =
  Store.checkpoint ctx.st
    ~meta:(meta_of ctx ~completed ~finalized)
    ~epoch:(Store.epoch ctx.st + 1)
    ()

let run_columns ctx ~from =
  for j = from to ctx.nt - 1 do
    step ctx j;
    if (j + 1) mod ctx.every = 0 || j = ctx.nt - 1 then
      ckpt ctx ~completed:(j + 1) ~finalized:false
  done

(* Materialize the factor into the tiled matrix, scrub the stale upper
   triangles (idempotent — a crash in this window just re-runs it from
   the completed=nt checkpoint), and commit the finalized manifest. *)
let finalize ctx a =
  ctx.cur := ctx.nt;
  for i = 0 to ctx.nt - 1 do
    for j = 0 to i do
      Tiled.set_tile a i j (Store.acquire ctx.st (pidx i j))
    done
  done;
  for k = 0 to ctx.nt - 1 do
    Mat.zero_upper (Tiled.tile a k k)
  done;
  for i = 0 to ctx.nt - 1 do
    for j = 0 to i do
      Store.release ctx.st ~dirty:(i = j) (pidx i j)
    done
  done;
  ckpt ctx ~completed:ctx.nt ~finalized:true

let factorize ?options ?cmap ?checkpoint_every ~store ~pmap a =
  let nt = Tiled.nt a in
  if Precision_map.nt pmap <> nt then
    invalid_arg "Ooc_cholesky.factorize: precision map / matrix tile mismatch";
  let ctx =
    mk_ctx ?options ?cmap ?checkpoint_every ~store ~pmap ~nt ~nb:(Tiled.nb a)
      ~n:(Tiled.n a) ()
  in
  install_priority ctx;
  Tiled.iter_lower a (fun ~i ~j m -> Store.put store (pidx i j) m);
  (* The epoch-1 checkpoint makes the pristine input durable: a crash at
     any later instruction recovers to a committed prefix, never to an
     empty directory. *)
  ckpt ctx ~completed:0 ~finalized:false;
  run_columns ctx ~from:0;
  finalize ctx a

let resume ?options ?cmap ?checkpoint_every ?obs ?faults ?budget ?max_attempts
    ~dir ~init ~pmap () =
  let st, rcv = Store.recover ?obs ?faults ?budget ?max_attempts ~dir () in
  let geti key default =
    match List.assoc_opt key rcv.Store.rec_meta with
    | Some v -> ( match int_of_string_opt v with Some n -> n | None -> default)
    | None -> default
  in
  let nt = geti "nt" (Precision_map.nt pmap) in
  if nt <> Precision_map.nt pmap then
    invalid_arg "Ooc_cholesky.resume: manifest / precision map tile mismatch";
  let nb = geti "nb" 0 and n = geti "n" 0 in
  let completed = geti "completed" 0 in
  let finalized = List.assoc_opt "finalized" rcv.Store.rec_meta = Some "true" in
  let npairs = nt * (nt + 1) / 2 in
  if List.exists (fun k -> k < npairs) rcv.Store.quarantined then begin
    (* A stored record rotted: the factor prefix itself is untrusted, so
       nothing short of recomputation is sound.  Re-adopt the input and
       run from scratch; stale broadcast records are overwritten as their
       columns republish and never read before that. *)
    let a = init () in
    if Tiled.nt a <> nt then
      invalid_arg "Ooc_cholesky.resume: init () tile count mismatch";
    let ctx =
      mk_ctx ?options ?cmap ?checkpoint_every ~store:st ~pmap ~nt
        ~nb:(Tiled.nb a) ~n:(Tiled.n a) ()
    in
    install_priority ctx;
    Tiled.iter_lower a (fun ~i ~j m -> Store.put st (pidx i j) m);
    ckpt ctx ~completed:0 ~finalized:false;
    run_columns ctx ~from:0;
    finalize ctx a;
    (st, a, Restarted { quarantined = rcv.Store.quarantined })
  end
  else begin
    let a = if n > 0 && nb > 0 then Tiled.create ~n ~nb else init () in
    let ctx =
      mk_ctx ?options ?cmap ?checkpoint_every ~store:st ~pmap ~nt
        ~nb:(Tiled.nb a) ~n:(Tiled.n a) ()
    in
    install_priority ctx;
    (* Quarantined broadcast records are pure derivations of the verified
       stored factor: recompute them exactly as publish would. *)
    let reshipped = ref 0 in
    List.iter
      (fun key ->
        let i, k = unpack (key - npairs) in
        if k < completed then
          match comm_conversion ctx i k with
          | Some s ->
            let m = Store.acquire st (pidx i k) in
            Store.put st key (Mat.rounded s m);
            Store.release st (pidx i k);
            incr reshipped
          | None -> ())
      rcv.Store.quarantined;
    if !reshipped > 0 then ckpt ctx ~completed ~finalized;
    if finalized && completed >= nt then begin
      (* Nothing left to compute: hand back the committed factor. *)
      for i = 0 to nt - 1 do
        for j = 0 to i do
          Tiled.set_tile a i j (Store.acquire st (pidx i j))
        done
      done;
      for i = 0 to nt - 1 do
        for j = 0 to i do
          Store.release st (pidx i j)
        done
      done
    end
    else begin
      run_columns ctx ~from:completed;
      finalize ctx a
    end;
    (st, a, Resumed { from_column = completed; reshipped = !reshipped })
  end
