(** Out-of-core tile Cholesky: a left-looking, checkpointed driver over
    the crash-consistent {!Geomix_ooc.Store}.

    Where {!Mp_cholesky.factorize} keeps every tile resident and runs the
    task DAG asynchronously, this driver streams the factorization column
    by column under a bounded residency budget: step [j] pulls column
    [j]'s tiles through the store, applies all of their trailing updates
    (reading the {e shipped} broadcast forms of earlier columns — under
    STC those live in the store in Algorithm 2's transfer format, so
    spilled bytes track the communication map), factorizes the panel, and
    publishes.  Because each per-tile update chain is applied in the same
    [k]-ascending order the DAG serializes it in, with bit-identical
    operands, the factor is {e bitwise identical} to
    {!Mp_cholesky.factorize} under the same options, precision map and
    communication map — the property the parity tests pin.

    {b Eviction order.}  The driver installs the I/O-aware static
    priority of the left-looking schedule (the farthest-next-use order of
    arXiv 2410.09819): a broadcast form needed soonest by the current
    column stays resident, a finished factor column is first out the
    door.

    {b Crash consistency.}  After every [checkpoint_every] completed
    columns (and on entry, and at the end) the driver checkpoints the
    store with [completed], [nt], [nb], [n] metadata.  Left-looking steps
    touch only column [j], so every checkpoint is a consistent prefix:
    columns [< completed] hold the final factor, columns [≥ completed]
    the pristine input.  Any spill between checkpoints lands in an
    uncommitted versioned file that {!Geomix_ooc.Store.recover} discards,
    so a crash — at {e any} instruction, including mid-rename — resumes
    from the last checkpoint and completes to the bitwise-identical
    factor.  The terminal upper-triangle scrub is idempotent and
    re-applied by {!resume} when the crash hit the finalization window. *)

open Geomix_tile
module Store = Geomix_ooc.Store

val factorize :
  ?options:Mp_cholesky.options ->
  ?cmap:Comm_map.t ->
  ?checkpoint_every:int ->
  store:Store.t ->
  pmap:Precision_map.t ->
  Tiled.t ->
  unit
(** In-place lower Cholesky of the tiled matrix through [store] (fresh or
    empty; its directory becomes the factorization's durable image).  All
    tiles are adopted into the store up front and an epoch-1 checkpoint
    makes the input durable; on return the matrix holds the store's
    resident images of the factor and the final checkpoint carries
    [finalized = true].  [checkpoint_every] (default 1) is the column
    stride between intermediate checkpoints.
    @raise Geomix_linalg.Blas.Not_positive_definite with the global pivot
    index, as {!Mp_cholesky.factorize}.
    @raise Geomix_ooc.Store.Store_error when the disk seam exhausts its
    retry budget — resume from the directory with {!resume}. *)

type outcome =
  | Resumed of { from_column : int; reshipped : int }
      (** continued from the recovered checkpoint; [reshipped] broadcast
          records were quarantined and recomputed from the stored factor *)
  | Restarted of { quarantined : Store.key list }
      (** a {e stored} tile's record was quarantined — the factor prefix
          itself is untrusted, so the run restarted from [init ()] *)

val resume :
  ?options:Mp_cholesky.options ->
  ?cmap:Comm_map.t ->
  ?checkpoint_every:int ->
  ?obs:Geomix_obs.Metrics.t ->
  ?faults:Geomix_fault.Fault.t ->
  ?budget:int ->
  ?max_attempts:int ->
  dir:string ->
  init:(unit -> Tiled.t) ->
  pmap:Precision_map.t ->
  unit ->
  Store.t * Tiled.t * outcome
(** Recover the store from [dir]'s last committed manifest and complete
    the factorization.  Every surviving record is checksum-verified by
    {!Geomix_ooc.Store.recover}; quarantined {e broadcast} records are
    recomputed from the (verified) stored factor, while a quarantined
    {e stored} record invalidates the prefix and restarts from [init ()]
    — a typed recovery in both cases, never a wrong result.  [init] must
    rebuild the original input matrix (it is also consulted for shape
    validation against the manifest metadata).  Returns the recovered
    store, the factored matrix and how completion was achieved.
    @raise Geomix_ooc.Store.Store_error ([No_manifest]) when [dir] holds
    no committed manifest — nothing durable exists, start with
    {!factorize}. *)
