module Fpformat = Geomix_precision.Fpformat
module Flops = Geomix_precision.Flops
module Layout = Geomix_tile.Layout
module Task = Geomix_runtime.Task
module Cholesky_dag = Geomix_runtime.Cholesky_dag
module Trace = Geomix_runtime.Trace
module Gpu_specs = Geomix_gpusim.Gpu_specs
module Machine = Geomix_gpusim.Machine
module Device = Geomix_gpusim.Device
module Exec_model = Geomix_gpusim.Exec_model
module Energy = Geomix_gpusim.Energy
module Heap = Geomix_util.Heap

type strategy = Stc_auto | Ttc_always

type options = { strategy : strategy; collect_trace : bool; cache_fraction : float }

let default_options = { strategy = Stc_auto; collect_trace = false; cache_fraction = 0.88 }

type report = {
  machine_name : string;
  n : int;
  nb : int;
  ngpus : int;
  strategy : strategy;
  makespan : float;
  total_flops : float;
  tflops : float;
  bytes_h2d : float;
  bytes_d2d : float;
  bytes_nic : float;
  conversions : int;
  utilisation : float;
  energy : Energy.report;
  trace : Trace.t option;
}

let pidx i j = (i * (i + 1) / 2) + j

(* Scheduling priority: earlier iterations first, then the critical
   POTRF → TRSM panel ahead of the trailing updates. *)
let priority kind =
  let k, cls, a =
    match (kind : Task.kind) with
    | Task.Potrf k -> (k, 0, 0)
    | Task.Trsm (m, k) -> (k, 1, m)
    | Task.Syrk (m, k) -> (k, 2, m)
    | Task.Gemm (m, n, k) -> (k, 3, (m * 4096) + n)
  in
  (((k * 4) + cls) * (4096 * 4096)) + a

let run ?(options = default_options) ?cmap ~machine ~pmap ~nb () =
  let nt = Precision_map.nt pmap in
  let n = nt * nb in
  let dag = Cholesky_dag.create ~nt in
  (match cmap with
  | Some cm when Comm_map.nt cm <> Precision_map.nt pmap ->
    invalid_arg "Sim_cholesky.run: comm map / precision map tile mismatch"
  | _ -> ());
  let cmap =
    match options.strategy with
    | Stc_auto ->
      Some (match cmap with Some cm -> cm | None -> Comm_map.compute pmap)
    | Ttc_always -> None
  in
  let ngpus = Machine.total_gpus machine in
  let gpu = machine.Machine.gpu in
  let devices =
    Array.init ngpus (fun _ ->
      Device.create ~gpu ~capacity_bytes:(options.cache_fraction *. gpu.Gpu_specs.mem_bytes))
  in
  (* Full-duplex NICs: independent injection and reception timelines. *)
  let nic_out_free = Array.make machine.Machine.nodes 0. in
  let nic_in_free = Array.make machine.Machine.nodes 0. in
  let grid = Layout.squarest_grid ngpus in
  let owner i j = Layout.owner grid ~i ~j in
  let kernel_precision i j = Precision_map.get pmap i j in
  let ntile = nt * (nt + 1) / 2 in
  (* Per-tile simulation state. *)
  let storage = Array.init ntile (fun _ -> Fpformat.S_fp64) in
  for i = 0 to nt - 1 do
    for j = 0 to i do
      storage.(pidx i j) <- Precision_map.storage pmap i j
    done
  done;
  let transfer_scalar = Array.copy storage in
  let is_stc = Array.make ntile false in
  let materialised = Array.make ntile false in
  (* Simulated time at which the final (broadcastable) version of a tile
     exists: PaRSEC forwards data eagerly, so transfers may start here
     rather than when the consumer becomes ready. *)
  let produced_at = Array.make ntile infinity in
  (* Accounting. *)
  let bytes_h2d = ref 0. and bytes_d2d = ref 0. and bytes_nic = ref 0. in
  let conversions = ref 0 in
  let busy : (Fpformat.t, float ref) Hashtbl.t = Hashtbl.create 8 in
  let add_busy prec dur =
    match Hashtbl.find_opt busy prec with
    | Some r -> r := !r +. dur
    | None -> Hashtbl.add busy prec (ref dur)
  in
  let trace = if options.collect_trace then Some (Trace.create ()) else None in
  let tile_bytes scalar = Flops.tile_bytes ~nb ~scalar in
  (* Transfers.  Each occupies the copy streams of the devices involved (and
     the node NICs when crossing nodes); they overlap compute. *)
  let h2d dev ~bytes ~earliest =
    bytes_h2d := !bytes_h2d +. bytes;
    let dur =
      Exec_model.transfer_time ~bw:machine.Machine.h2d_bw
        ~latency:machine.Machine.h2d_latency ~bytes
    in
    Device.busy_link dev ~start:earliest ~dur
  in
  let d2d src dst ~bytes ~earliest =
    let start = Float.max earliest (Float.max (Device.link_free src) (Device.link_free dst)) in
    bytes_d2d := !bytes_d2d +. bytes;
    let dur =
      Exec_model.transfer_time ~bw:machine.Machine.d2d_bw
        ~latency:machine.Machine.d2d_latency ~bytes
    in
    let fin = Device.busy_link src ~start ~dur in
    ignore (Device.busy_link dst ~start ~dur);
    fin
  in
  (* Inter-node messages are host-staged RDMA: they occupy the two NICs for
     the wire time, and the destination GPU link only for the final
     host-to-device hop. *)
  let internode src src_node dst dst_node ~bytes ~earliest =
    ignore src;
    let start =
      List.fold_left Float.max earliest
        [ nic_out_free.(src_node); nic_in_free.(dst_node) ]
    in
    bytes_nic := !bytes_nic +. bytes;
    let dur =
      Exec_model.transfer_time ~bw:machine.Machine.nic_bw
        ~latency:machine.Machine.nic_latency ~bytes
    in
    let fin = start +. dur in
    nic_out_free.(src_node) <- fin;
    nic_in_free.(dst_node) <- fin;
    let h2d_dur =
      Exec_model.transfer_time ~bw:machine.Machine.h2d_bw
        ~latency:machine.Machine.h2d_latency ~bytes
    in
    Device.busy_link dst ~start:fin ~dur:h2d_dur
  in
  let write_back dev ~bytes = ignore (h2d dev ~bytes ~earliest:0.) in
  (* Devices currently holding a copy of each tile (kept in sync with the
     LRU caches) — the pool of candidate broadcast sources. *)
  let holders : int list array = Array.make ntile [] in
  let handle_evictions d_idx victims =
    List.iter
      (fun (key, bytes, dirty) ->
        holders.(key) <- List.filter (fun d -> d <> d_idx) holders.(key);
        if dirty then write_back devices.(d_idx) ~bytes)
      victims
  in
  let record_holder d_idx key =
    if not (List.mem d_idx holders.(key)) then holders.(key) <- d_idx :: holders.(key)
  in
  (* Broadcast source selection, PaRSEC-style: a same-node peer that already
     received the tile forwards it over NVLink, and among candidate sources
     the least-loaded link is used — consumers fan out across earlier
     receivers exactly as a broadcast tree does, instead of serialising on
     the producer. Only the first consumer on a node pays the inter-node
     hop. *)
  let find_source ~d_idx ~d_node key =
    let same_node, remote =
      List.partition (fun h -> Machine.node_of_gpu machine h = d_node) holders.(key)
    in
    let pick ~load candidates =
      List.fold_left
        (fun best h ->
          if h = d_idx || not (Device.mem devices.(h) ~key) then best
          else begin
            match best with
            | Some b when load b <= load h -> best
            | _ -> Some h
          end)
        None candidates
    in
    (* Intra-node forwards queue on the peer's NVLink stream; inter-node
       pulls queue on the source node's NIC injection. *)
    match pick ~load:(fun h -> Device.link_free devices.(h)) same_node with
    | Some h -> Some (h, true)
    | None -> (
      match
        pick ~load:(fun h -> nic_out_free.(Machine.node_of_gpu machine h)) remote
      with
      | Some h -> Some (h, false)
      | None -> None)
  in
  (* Available data form of a finalised broadcast tile. *)
  let available_scalar idx = if is_stc.(idx) then transfer_scalar.(idx) else storage.(idx) in
  (* Per-task bookkeeping. *)
  let num_tasks = Cholesky_dag.num_tasks dag in
  let remaining = Cholesky_dag.in_degree dag in
  let ready_time = Array.make num_tasks 0. in
  (* Among tasks becoming ready within the same scheduling epoch, pick the
     most critical (panel-first, iteration order) — the priority policy
     PaRSEC applies to tile Cholesky; the epoch quantisation keeps the
     simulated link timelines causally reasonable. *)
  let epoch =
    4. *. Exec_model.kernel_time gpu (Task.Gemm (2, 1, 0)) ~prec:Fpformat.Fp64 ~nb
  in
  let cmp (ta, pa, _) (tb, pb, _) =
    let ea = int_of_float (ta /. epoch) and eb = int_of_float (tb /. epoch) in
    match Int.compare ea eb with
    | 0 -> ( match Int.compare pa pb with 0 -> Float.compare ta tb | c -> c)
    | c -> c
  in
  let heap : (float * int * int) Heap.t = Heap.create ~cmp in
  Array.iteri
    (fun id d -> if d = 0 then Heap.push heap (0., priority (Cholesky_dag.kind_of dag id), id))
    remaining;
  let makespan = ref 0. in
  let processed = ref 0 in
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (_, _, id) ->
      let kind = Cholesky_dag.kind_of dag id in
      let wi, wj = Task.write_tile kind in
      let widx = pidx wi wj in
      let d_idx = owner wi wj in
      let dev = devices.(d_idx) in
      let t0 = ready_time.(id) in
      let data_ready = ref t0 in
      (* Write tile: resident, regenerated, or refetched. *)
      if not (Device.resident dev ~key:widx) then begin
        let bytes = tile_bytes storage.(widx) in
        if materialised.(widx) then
          data_ready := Float.max !data_ready (h2d dev ~bytes ~earliest:t0)
        else materialised.(widx) <- true;
        handle_evictions d_idx (Device.insert dev ~key:widx ~bytes ~dirty:true);
        record_holder d_idx widx
      end;
      (* Read tiles. *)
      let conv_time = ref 0. in
      let exec_prec = Task.exec_precision ~kernel_precision kind in
      let needed = Fpformat.input_scalar exec_prec in
      List.iter
        (fun (ri, rj) ->
          let ridx = pidx ri rj in
          let avail = available_scalar ridx in
          if not (Device.resident dev ~key:ridx) then begin
            let bytes = tile_bytes avail in
            let d_node = Machine.node_of_gpu machine d_idx in
            (* Eager forwarding: the transfer may start as soon as the
               producer finished, overlapping the consumer's other
               predecessors. *)
            let earliest = Float.min produced_at.(ridx) t0 in
            let fin =
              match find_source ~d_idx ~d_node ridx with
              | Some (h, true) -> d2d devices.(h) dev ~bytes ~earliest
              | Some (h, false) ->
                internode devices.(h)
                  (Machine.node_of_gpu machine h)
                  dev d_node ~bytes ~earliest
              | None -> h2d dev ~bytes ~earliest
            in
            data_ready := Float.max !data_ready fin;
            handle_evictions d_idx (Device.insert dev ~key:ridx ~bytes ~dirty:false);
            record_holder d_idx ridx
          end;
          if avail <> needed then begin
            incr conversions;
            conv_time :=
              !conv_time +. Exec_model.conversion_time gpu ~nb ~from:avail ~into:needed
          end)
        (Task.read_tiles kind);
      (* Producer-side STC conversion: once, when the broadcast tile is
         finalised below at a lower communication precision. *)
      let finalises =
        match kind with Task.Potrf _ | Task.Trsm _ -> true | Task.Syrk _ | Task.Gemm _ -> false
      in
      let stc_conv =
        if finalises then begin
          match cmap with
          | Some cm when Comm_map.strategy cm wi wj = Comm_map.Stc ->
            incr conversions;
            Exec_model.conversion_time gpu ~nb ~from:storage.(widx)
              ~into:(Comm_map.comm_scalar cm wi wj)
          | _ -> 0.
        end
        else 0.
      in
      let dur = Exec_model.kernel_time gpu kind ~prec:exec_prec ~nb +. !conv_time +. stc_conv in
      let start = Float.max (Device.compute_free dev) !data_ready in
      let finish = Device.busy_compute dev ~start ~dur in
      add_busy exec_prec dur;
      (match trace with
      | Some tr ->
        Trace.add tr
          {
            Trace.label = Task.name kind;
            resource = d_idx;
            start;
            stop = finish;
            tag = Fpformat.name exec_prec;
          }
      | None -> ());
      makespan := Float.max !makespan finish;
      if finalises then begin
        produced_at.(widx) <- finish;
        match cmap with
        | Some cm when Comm_map.strategy cm wi wj = Comm_map.Stc ->
          is_stc.(widx) <- true;
          transfer_scalar.(widx) <- Comm_map.comm_scalar cm wi wj
        | _ -> ()
      end;
      incr processed;
      List.iter
        (fun s ->
          ready_time.(s) <- Float.max ready_time.(s) finish;
          remaining.(s) <- remaining.(s) - 1;
          if remaining.(s) = 0 then
            Heap.push heap (ready_time.(s), priority (Cholesky_dag.kind_of dag s), s))
        (Cholesky_dag.successors dag id);
      loop ()
  in
  loop ();
  assert (!processed = num_tasks);
  let total_flops = Flops.cholesky_tiled ~nt ~nb in
  let busy_list = Hashtbl.fold (fun p r acc -> (p, !r) :: acc) busy [] in
  let total_busy = List.fold_left (fun acc (_, s) -> acc +. s) 0. busy_list in
  let energy =
    Energy.of_busy gpu ~makespan:!makespan ~ngpus ~flops:total_flops ~busy:busy_list
  in
  {
    machine_name = machine.Machine.name;
    n;
    nb;
    ngpus;
    strategy = options.strategy;
    makespan = !makespan;
    total_flops;
    tflops = (if !makespan > 0. then total_flops /. !makespan /. 1e12 else 0.);
    bytes_h2d = !bytes_h2d;
    bytes_d2d = !bytes_d2d;
    bytes_nic = !bytes_nic;
    conversions = !conversions;
    utilisation = (if !makespan > 0. then total_busy /. (!makespan *. float_of_int ngpus) else 0.);
    energy;
    trace;
  }

let efficiency r ~peak_flops_per_gpu =
  r.total_flops /. r.makespan /. (peak_flops_per_gpu *. float_of_int r.ngpus)
