(** Automated precision conversion (Section VI, Algorithm 2).

    For every tile that broadcasts data — diagonal tiles through POTRF,
    off-diagonal tiles through TRSM — this computes:

    - [comm_scalar]: the format the data travels in, and
    - the conversion strategy: {e STC} (sender/source task conversion: the
      producer down-converts once and ships fewer bytes) exactly when every
      successor consumes a strictly lower precision than the tile's storage
      format, otherwise {e TTC} (receiver/target task conversion: ship the
      storage format, each consumer converts).

    The scan follows Algorithm 2 of the paper: a POTRF(k,k) broadcast
    starts at FP32 (TRSM cannot execute below FP32) and is raised to FP64
    if any TRSM in column k runs FP64; a TRSM(m,k) broadcast starts at the
    tile's own input significance level (the paper's FP16 floor, for the
    FP16-class tiles it discusses) and is raised to the highest {e input}
    format among the GEMMs of row m and column m, capped at the tile's
    storage format.  Two clarifications over the paper's pseudocode, both
    recorded in DESIGN.md: the row scan covers the GEMM tiles
    n = k+1 .. m−1 (the always-FP64 diagonal SYRK consumes whatever ships,
    per Fig 4a — harmless because the floor already preserves every bit the
    norm rule found significant), and each GEMM contributes the format of
    the {e operands} it reads (an FP16_32 GEMM consumes FP16 inputs). *)

module Fpformat = Geomix_precision.Fpformat

type strategy = Stc | Ttc

type t

val compute : Precision_map.t -> t
(** Runs Algorithm 2 over the kernel-precision map — O(NT³) like the
    paper's, and embarrassingly parallel per tile. *)

val nt : t -> int

val comm_scalar : t -> int -> int -> Fpformat.scalar
(** Transfer format of broadcasts issued from tile (i, j), i ≥ j. *)

val strategy : t -> int -> int -> strategy

val equal : t -> t -> bool
(** Tile-for-tile equality of transfer formats and strategies. *)

val shipped : t -> Precision_map.t -> int -> int -> Fpformat.scalar
(** What tile (i, j)'s broadcast actually puts on the wire: the transfer
    format under STC, the storage format under TTC ([pmap] must be the map
    the [t] was computed from). *)

val override : t -> Precision_map.t -> f:(int -> int -> Fpformat.scalar option) -> t
(** [override cm pmap ~f] is [cm] with the shipped format of broadcasting
    tile (i, j) replaced by [s] (as STC: the producer converts once)
    wherever [f i j = Some s] names a format with {e strictly fewer} bytes
    per element than what [cm] already ships for that tile.  All other
    tiles — including any [Some s] that would not shrink the transfer —
    keep Algorithm 2's verdict; an override can narrow communication, never
    widen it.  This is how the range-driven autotuner
    ({!module:Geomix_autotune.Type_advisor}) injects FP8 transfers it has
    measured evidence for.
    @raise Invalid_argument on a tile-count mismatch. *)

val consumers : t -> int -> int -> int
(** Broadcast fan-out of tile (i, j) under Algorithm 1: the TRSMs of the
    column for a diagonal tile; SYRK plus row and column GEMMs for an
    off-diagonal tile.  Both equal [nt − 1 − j]; 0 means the tile never
    ships. *)

(** {1 Data-motion accounting}

    The paper's headline measurement (Figs 8–12): how many bytes the
    broadcasts of one factorization put on the wire, per conversion
    strategy, on uniform [nb²]-element tiles.  One broadcast of tile
    (i, j) costs [consumers × nb² × scalar_bytes(shipped)]. *)

type motion = {
  bytes_stc : float;  (** automated conversion: Algorithm 2's format where
                          it grants STC, storage format elsewhere *)
  bytes_ttc : float;  (** always-TTC baseline: every broadcast ships the
                          storage format *)
  bytes_fp64 : float; (** all-FP64 reference: 8 bytes per element *)
  conv_stc : int;     (** conversion kernels under automated conversion:
                          one per STC producer plus one per consumer whose
                          input format differs from the shipped form *)
  conv_ttc : int;     (** conversion kernels under always-TTC *)
  transfers : int;    (** broadcast consumer-edges (strategy-independent) *)
}

val motion : t -> Precision_map.t -> nb:int -> motion
(** [motion cm pmap ~nb] — [pmap] must be the map [cm] was computed from.
    @raise Invalid_argument on a tile-count mismatch. *)

val stc_fraction : t -> float
(** Fraction of broadcasting tiles using STC (tiles with no successors
    count as TTC). *)

val render : t -> string
(** ASCII map of communication precisions, upper-cased cells for STC
    tiles — the Fig 4b view. *)
