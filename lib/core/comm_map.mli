(** Automated precision conversion (Section VI, Algorithm 2).

    For every tile that broadcasts data — diagonal tiles through POTRF,
    off-diagonal tiles through TRSM — this computes:

    - [comm_scalar]: the format the data travels in, and
    - the conversion strategy: {e STC} (sender/source task conversion: the
      producer down-converts once and ships fewer bytes) exactly when every
      successor consumes a strictly lower precision than the tile's storage
      format, otherwise {e TTC} (receiver/target task conversion: ship the
      storage format, each consumer converts).

    The scan follows Algorithm 2 of the paper: a POTRF(k,k) broadcast
    starts at FP32 (TRSM cannot execute below FP32) and is raised to FP64
    if any TRSM in column k runs FP64; a TRSM(m,k) broadcast starts at the
    tile's own input significance level (the paper's FP16 floor, for the
    FP16-class tiles it discusses) and is raised to the highest {e input}
    format among the GEMMs of row m and column m, capped at the tile's
    storage format.  Two clarifications over the paper's pseudocode, both
    recorded in DESIGN.md: the row scan covers the GEMM tiles
    n = k+1 .. m−1 (the always-FP64 diagonal SYRK consumes whatever ships,
    per Fig 4a — harmless because the floor already preserves every bit the
    norm rule found significant), and each GEMM contributes the format of
    the {e operands} it reads (an FP16_32 GEMM consumes FP16 inputs). *)

module Fpformat = Geomix_precision.Fpformat

type strategy = Stc | Ttc

type t

val compute : Precision_map.t -> t
(** Runs Algorithm 2 over the kernel-precision map — O(NT³) like the
    paper's, and embarrassingly parallel per tile. *)

val nt : t -> int

val comm_scalar : t -> int -> int -> Fpformat.scalar
(** Transfer format of broadcasts issued from tile (i, j), i ≥ j. *)

val strategy : t -> int -> int -> strategy

val equal : t -> t -> bool
(** Tile-for-tile equality of transfer formats and strategies. *)

val stc_fraction : t -> float
(** Fraction of broadcasting tiles using STC (tiles with no successors
    count as TTC). *)

val render : t -> string
(** ASCII map of communication precisions, upper-cased cells for STC
    tiles — the Fig 4b view. *)
