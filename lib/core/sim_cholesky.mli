(** Discrete-event simulation of the mixed-precision tile Cholesky on a
    modelled GPU machine — the engine behind every performance, data-motion
    and energy figure of the reproduction (Figs 8–12).

    The simulator executes the task DAG of Algorithm 1 under greedy
    owner-computes list scheduling (2-D block-cyclic tile ownership over
    the flattened GPUs), with:

    - per-GPU serialised compute and copy streams (transfers overlap
      computation, as on the real runtime);
    - per-GPU LRU residency over the device memory, with dirty write-backs
      — the source of the host↔device traffic that dominates the
      memory-pressured single-GPU runs of Fig 8;
    - broadcast transfers at the precision the conversion strategy
      dictates: storage precision under TTC, the Algorithm 2 communication
      precision under STC (converted once at the producer);
    - per-consumer datatype-conversion charges whenever the available form
      differs from the kernel's input format (TTC's repeated conversions
      vs STC's single one — Section VI);
    - inter-node transfers through per-node NIC timelines;
    - energy integration at per-precision busy powers. *)

module Machine = Geomix_gpusim.Machine
module Energy = Geomix_gpusim.Energy
module Trace = Geomix_runtime.Trace

type strategy =
  | Stc_auto    (** automated conversion: STC wherever Algorithm 2 allows *)
  | Ttc_always  (** baseline of refs [18]/[38]: always ship storage precision *)

type options = {
  strategy : strategy;
  collect_trace : bool;   (** keep per-task events (occupancy/power plots);
                              off by default — large runs have millions of
                              tasks *)
  cache_fraction : float; (** usable fraction of device memory (default 0.88) *)
}

val default_options : options

type report = {
  machine_name : string;
  n : int;
  nb : int;
  ngpus : int;
  strategy : strategy;
  makespan : float;          (** seconds *)
  total_flops : float;       (** algorithmic flop count of the factorization *)
  tflops : float;            (** total_flops / makespan / 1e12 *)
  bytes_h2d : float;         (** host↔device traffic (fetches + write-backs) *)
  bytes_d2d : float;         (** intra-node peer traffic *)
  bytes_nic : float;         (** inter-node traffic *)
  conversions : int;         (** datatype-conversion kernels executed *)
  utilisation : float;       (** aggregate busy / (makespan · ngpus) *)
  energy : Energy.report;
  trace : Trace.t option;
}

val run :
  ?options:options ->
  ?cmap:Comm_map.t ->
  machine:Machine.t ->
  pmap:Precision_map.t ->
  nb:int ->
  unit ->
  report
(** Simulate the factorization of an [nt·nb] matrix whose tile precisions
    are given by [pmap] on [machine].  [?cmap] substitutes a caller-built
    communication map (e.g. the autotuner's FP8 overrides,
    {!Comm_map.override}) for the [Comm_map.compute pmap] default; only
    consulted under [Stc_auto], and its tile count must match [pmap]'s. *)

val efficiency : report -> peak_flops_per_gpu:float -> float
(** Fraction of the aggregate theoretical peak achieved. *)
