module Fpformat = Geomix_precision.Fpformat

type strategy = Stc | Ttc

type t = {
  nt : int;
  comm : Fpformat.scalar array; (* packed lower triangle *)
  strat : strategy array;
}

let pidx i j = (i * (i + 1) / 2) + j

let nt t = t.nt

let comm_scalar t i j =
  assert (i >= j && j >= 0 && i < t.nt);
  t.comm.(pidx i j)

let strategy t i j =
  assert (i >= j && j >= 0 && i < t.nt);
  t.strat.(pidx i j)

(* Input format consumed by the GEMM kernel running on a tile of the given
   kernel precision. *)
let gemm_input_scalar pmap m n = Fpformat.input_scalar (Precision_map.get pmap m n)

(* Input format consumed by TRSM(m,k), which never executes below FP32. *)
let trsm_input_scalar pmap m k =
  match Precision_map.get pmap m k with
  | Fpformat.Fp64 -> Fpformat.S_fp64
  | _ -> Fpformat.S_fp32

let compute pmap =
  let n = Precision_map.nt pmap in
  let size = n * (n + 1) / 2 in
  let comm = Array.make size Fpformat.S_fp64 in
  let strat = Array.make size Ttc in
  let finish idx ~storage c =
    (* Cap at the storage format: data cannot ship above the precision it
       exists in; STC iff strictly below it. *)
    if Fpformat.scalar_rank c < Fpformat.scalar_rank storage then begin
      comm.(idx) <- c;
      strat.(idx) <- Stc
    end
    else begin
      comm.(idx) <- storage;
      strat.(idx) <- Ttc
    end
  in
  (* Diagonal tiles (k,k): POTRF(k) broadcasts to the TRSMs of column k. *)
  for k = 0 to n - 1 do
    let storage = Precision_map.storage pmap k k in
    if k = n - 1 then begin
      (* No successors: nothing ever ships. *)
      comm.(pidx k k) <- storage;
      strat.(pidx k k) <- Ttc
    end
    else begin
      let c = ref Fpformat.S_fp32 in
      for m = k + 1 to n - 1 do
        c := Fpformat.higher_scalar !c (trsm_input_scalar pmap m k)
      done;
      finish (pidx k k) ~storage !c
    end
  done;
  (* Off-diagonal tiles (m,k): TRSM(m,k) broadcasts to GEMMs of row m and
     column m (and to SYRK(m,k), which consumes whatever ships).  The
     broadcast floor is the tile's own input significance level: a tile the
     norm rule classified as FP16-class carries FP16-worth of information,
     so shipping it at FP16 to an FP64 SYRK loses nothing the rule did not
     already discard — this is why the paper can accept "the recipient
     might still require conversion". *)
  for k = 0 to n - 2 do
    for m = k + 1 to n - 1 do
      let storage = Precision_map.storage pmap m k in
      let c = ref (Fpformat.input_scalar (Precision_map.get pmap m k)) in
      let capped = ref false in
      (* Row broadcast: GEMM(m,n,k) for k < n < m. *)
      let nn = ref (k + 1) in
      while (not !capped) && !nn < m do
        c := Fpformat.higher_scalar !c (gemm_input_scalar pmap m !nn);
        if Fpformat.scalar_rank !c >= Fpformat.scalar_rank storage then capped := true;
        incr nn
      done;
      (* Column broadcast: GEMM(m',m,k) for m < m' < NT. *)
      let mm = ref (m + 1) in
      while (not !capped) && !mm < n do
        c := Fpformat.higher_scalar !c (gemm_input_scalar pmap !mm m);
        if Fpformat.scalar_rank !c >= Fpformat.scalar_rank storage then capped := true;
        incr mm
      done;
      finish (pidx m k) ~storage !c
    done
  done;
  { nt = n; comm; strat }

let equal a b = a.nt = b.nt && a.comm = b.comm && a.strat = b.strat

(* Shipped format of tile (i, j) under map [t]: the transfer format for STC
   tiles, the storage format for TTC tiles (which ship as stored). *)
let shipped t pmap i j =
  if t.strat.(pidx i j) = Stc then t.comm.(pidx i j) else Precision_map.storage pmap i j

let override t pmap ~f =
  if Precision_map.nt pmap <> t.nt then invalid_arg "Comm_map.override: nt mismatch";
  let comm = Array.copy t.comm and strat = Array.copy t.strat in
  let n = t.nt in
  for i = 0 to n - 1 do
    for j = 0 to i do
      if n - 1 - j > 0 then begin
        (* Only broadcasting tiles; an override must move strictly fewer
           bytes than what Algorithm 2 already ships, else it is ignored —
           never silently widened. *)
        match f i j with
        | Some s
          when Fpformat.scalar_bytes s < Fpformat.scalar_bytes (shipped t pmap i j) ->
          comm.(pidx i j) <- s;
          strat.(pidx i j) <- Stc
        | _ -> ()
      end
    done
  done;
  { nt = n; comm; strat }

(* Broadcast fan-out of tile (i, j) in Algorithm 1.  A diagonal tile (k,k)
   feeds the TRSMs of column k: nt−1−k consumers.  An off-diagonal tile
   (m,k) feeds SYRK(m,k), the row GEMMs (k < n < m) and the column GEMMs
   (m < m' < nt): 1 + (m−k−1) + (nt−1−m) = nt−1−k consumers.  Both reduce
   to nt−1−column. *)
let consumers t i j =
  assert (i >= j && j >= 0 && i < t.nt);
  t.nt - 1 - j

(* The input format each consumer of broadcast tile (i, j) reads at — the
   same reader set Algorithm 2 scans, plus the diagonal SYRK (which the
   broadcast-format scan deliberately excludes, Fig 4a, but which still
   pays a conversion when the shipped form differs from its input). *)
let consumer_input_scalars pmap i j =
  let n = Precision_map.nt pmap in
  if i = j then List.init (n - 1 - i) (fun d -> trsm_input_scalar pmap (i + 1 + d) i)
  else begin
    let m = i and k = j in
    let syrk = Fpformat.input_scalar (Precision_map.get pmap m m) in
    let row = List.init (m - k - 1) (fun d -> gemm_input_scalar pmap m (k + 1 + d)) in
    let col = List.init (n - 1 - m) (fun d -> gemm_input_scalar pmap (m + 1 + d) m) in
    syrk :: (row @ col)
  end

type motion = {
  bytes_stc : float;
  bytes_ttc : float;
  bytes_fp64 : float;
  conv_stc : int;
  conv_ttc : int;
  transfers : int;
}

let motion t pmap ~nb =
  if Precision_map.nt pmap <> t.nt then invalid_arg "Comm_map.motion: nt mismatch";
  let elems = float_of_int (nb * nb) in
  let b_stc = ref 0. and b_ttc = ref 0. and b_64 = ref 0. in
  let c_stc = ref 0 and c_ttc = ref 0 and edges = ref 0 in
  for i = 0 to t.nt - 1 do
    for j = 0 to i do
      let rs = consumer_input_scalars pmap i j in
      let c = List.length rs in
      if c > 0 then begin
        edges := !edges + c;
        let storage = Precision_map.storage pmap i j in
        let fc = float_of_int c in
        (* TTC baseline: ship the storage format; every consumer whose
           input format differs runs its own conversion kernel. *)
        b_ttc := !b_ttc +. (fc *. elems *. float_of_int (Fpformat.scalar_bytes storage));
        List.iter (fun r -> if r <> storage then incr c_ttc) rs;
        (* Automated conversion: Algorithm 2's transfer format where it
           grants STC (one conversion at the producer), TTC elsewhere. *)
        let shipped = if t.strat.(pidx i j) = Stc then t.comm.(pidx i j) else storage in
        b_stc := !b_stc +. (fc *. elems *. float_of_int (Fpformat.scalar_bytes shipped));
        if t.strat.(pidx i j) = Stc then incr c_stc;
        List.iter (fun r -> if r <> shipped then incr c_stc) rs;
        (* All-FP64 reference: what the run would move with no precision
           adaptation at all. *)
        b_64 := !b_64 +. (fc *. elems *. 8.)
      end
    done
  done;
  {
    bytes_stc = !b_stc;
    bytes_ttc = !b_ttc;
    bytes_fp64 = !b_64;
    conv_stc = !c_stc;
    conv_ttc = !c_ttc;
    transfers = !edges;
  }

let stc_fraction t =
  let stc = Array.fold_left (fun acc s -> if s = Stc then acc + 1 else acc) 0 t.strat in
  float_of_int stc /. float_of_int (Array.length t.strat)

let render t =
  let buf = Buffer.create ((t.nt + 2) * (t.nt + 2)) in
  let char_of = function
    | Fpformat.S_fp64 -> '6'
    | Fpformat.S_fp32 -> '3'
    | Fpformat.S_tf32 -> 't'
    | Fpformat.S_bf16 -> 'b'
    | Fpformat.S_fp16 -> '1'
    | Fpformat.S_fp8_e4m3 -> '8'
    | Fpformat.S_fp8_e5m2 -> '5'
  in
  for i = 0 to t.nt - 1 do
    Buffer.add_string buf "  ";
    for j = 0 to t.nt - 1 do
      if j > i then Buffer.add_string buf ". "
      else begin
        let idx = pidx i j in
        let c = char_of t.comm.(idx) in
        Buffer.add_char buf (if t.strat.(idx) = Stc then Char.uppercase_ascii c else c);
        Buffer.add_char buf (if t.strat.(idx) = Stc then '*' else ' ')
      end
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf
    (Printf.sprintf
       "  cells: 6=FP64 3=FP32 1=FP16 8=FP8_E4M3 5=FP8_E5M2 (comm precision); '*' \
        marks STC tiles (%.1f%% STC)\n"
       (100. *. stc_fraction t));
  Buffer.contents buf
