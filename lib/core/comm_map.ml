module Fpformat = Geomix_precision.Fpformat

type strategy = Stc | Ttc

type t = {
  nt : int;
  comm : Fpformat.scalar array; (* packed lower triangle *)
  strat : strategy array;
}

let pidx i j = (i * (i + 1) / 2) + j

let nt t = t.nt

let comm_scalar t i j =
  assert (i >= j && j >= 0 && i < t.nt);
  t.comm.(pidx i j)

let strategy t i j =
  assert (i >= j && j >= 0 && i < t.nt);
  t.strat.(pidx i j)

(* Input format consumed by the GEMM kernel running on a tile of the given
   kernel precision. *)
let gemm_input_scalar pmap m n = Fpformat.input_scalar (Precision_map.get pmap m n)

(* Input format consumed by TRSM(m,k), which never executes below FP32. *)
let trsm_input_scalar pmap m k =
  match Precision_map.get pmap m k with
  | Fpformat.Fp64 -> Fpformat.S_fp64
  | _ -> Fpformat.S_fp32

let compute pmap =
  let n = Precision_map.nt pmap in
  let size = n * (n + 1) / 2 in
  let comm = Array.make size Fpformat.S_fp64 in
  let strat = Array.make size Ttc in
  let finish idx ~storage c =
    (* Cap at the storage format: data cannot ship above the precision it
       exists in; STC iff strictly below it. *)
    if Fpformat.scalar_rank c < Fpformat.scalar_rank storage then begin
      comm.(idx) <- c;
      strat.(idx) <- Stc
    end
    else begin
      comm.(idx) <- storage;
      strat.(idx) <- Ttc
    end
  in
  (* Diagonal tiles (k,k): POTRF(k) broadcasts to the TRSMs of column k. *)
  for k = 0 to n - 1 do
    let storage = Precision_map.storage pmap k k in
    if k = n - 1 then begin
      (* No successors: nothing ever ships. *)
      comm.(pidx k k) <- storage;
      strat.(pidx k k) <- Ttc
    end
    else begin
      let c = ref Fpformat.S_fp32 in
      for m = k + 1 to n - 1 do
        c := Fpformat.higher_scalar !c (trsm_input_scalar pmap m k)
      done;
      finish (pidx k k) ~storage !c
    end
  done;
  (* Off-diagonal tiles (m,k): TRSM(m,k) broadcasts to GEMMs of row m and
     column m (and to SYRK(m,k), which consumes whatever ships).  The
     broadcast floor is the tile's own input significance level: a tile the
     norm rule classified as FP16-class carries FP16-worth of information,
     so shipping it at FP16 to an FP64 SYRK loses nothing the rule did not
     already discard — this is why the paper can accept "the recipient
     might still require conversion". *)
  for k = 0 to n - 2 do
    for m = k + 1 to n - 1 do
      let storage = Precision_map.storage pmap m k in
      let c = ref (Fpformat.input_scalar (Precision_map.get pmap m k)) in
      let capped = ref false in
      (* Row broadcast: GEMM(m,n,k) for k < n < m. *)
      let nn = ref (k + 1) in
      while (not !capped) && !nn < m do
        c := Fpformat.higher_scalar !c (gemm_input_scalar pmap m !nn);
        if Fpformat.scalar_rank !c >= Fpformat.scalar_rank storage then capped := true;
        incr nn
      done;
      (* Column broadcast: GEMM(m',m,k) for m < m' < NT. *)
      let mm = ref (m + 1) in
      while (not !capped) && !mm < n do
        c := Fpformat.higher_scalar !c (gemm_input_scalar pmap !mm m);
        if Fpformat.scalar_rank !c >= Fpformat.scalar_rank storage then capped := true;
        incr mm
      done;
      finish (pidx m k) ~storage !c
    done
  done;
  { nt = n; comm; strat }

let equal a b = a.nt = b.nt && a.comm = b.comm && a.strat = b.strat

let stc_fraction t =
  let stc = Array.fold_left (fun acc s -> if s = Stc then acc + 1 else acc) 0 t.strat in
  float_of_int stc /. float_of_int (Array.length t.strat)

let render t =
  let buf = Buffer.create ((t.nt + 2) * (t.nt + 2)) in
  let char_of = function
    | Fpformat.S_fp64 -> '6'
    | Fpformat.S_fp32 -> '3'
    | Fpformat.S_tf32 -> 't'
    | Fpformat.S_bf16 -> 'b'
    | Fpformat.S_fp16 -> '1'
  in
  for i = 0 to t.nt - 1 do
    Buffer.add_string buf "  ";
    for j = 0 to t.nt - 1 do
      if j > i then Buffer.add_string buf ". "
      else begin
        let idx = pidx i j in
        let c = char_of t.comm.(idx) in
        Buffer.add_char buf (if t.strat.(idx) = Stc then Char.uppercase_ascii c else c);
        Buffer.add_char buf (if t.strat.(idx) = Stc then '*' else ' ')
      end
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf
    (Printf.sprintf
       "  cells: 6=FP64 3=FP32 1=FP16 (comm precision); '*' marks STC tiles \
        (%.1f%% STC)\n"
       (100. *. stc_fraction t));
  Buffer.contents buf
