(** Crash-durability helpers shared by the out-of-core tile store and the
    telemetry snapshotter: the write-temp → fsync → atomic-rename →
    fsync-directory idiom.

    POSIX [rename(2)] atomically replaces the destination, so after a
    crash a reader observes either the old file image or the new one —
    never a torn mixture — provided the new image was fsynced before the
    rename and the directory entry is fsynced after it. *)

val fsync_fd : Unix.file_descr -> unit
(** [fsync(2)] on an open descriptor.  [EINVAL]/[ENOTSUP] (e.g. special
    files in test sandboxes) are swallowed; real I/O errors propagate. *)

val fsync_dir : string -> unit
(** Open the directory read-only and fsync it, making renames and new
    directory entries durable.  Errors from platforms that refuse to
    fsync directories are swallowed. *)

val write_atomic :
  ?fsync:bool -> ?temp_suffix:string -> path:string -> (out_channel -> unit) ->
  unit
(** [write_atomic ~path f] writes the file image produced by [f] into
    [path ^ temp_suffix] (default [".tmp"]), flushes and (by default)
    fsyncs it, atomically renames it over [path], and fsyncs the parent
    directory.  On any exception from [f] or the syscalls the temp file
    is unlinked and the exception re-raised; [path] is left untouched.
    [?fsync:false] skips both fsyncs (for tests that only need
    atomicity). *)

val rename_durable : src:string -> dst:string -> unit
(** Atomic [Sys.rename src dst] followed by an fsync of [dst]'s parent
    directory. *)
