(* Write-temp → fsync → atomic-rename → fsync-directory.  See the .mli
   for the crash-consistency argument. *)

let ignorable = function
  | Unix.EINVAL | Unix.EOPNOTSUPP | Unix.EBADF | Unix.EISDIR | Unix.EACCES ->
    true
  | _ -> false

let fsync_fd fd =
  try Unix.fsync fd with Unix.Unix_error (e, _, _) when ignorable e -> ()

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (e, _, _) when ignorable e -> ()
  | fd ->
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> fsync_fd fd)

let rename_durable ~src ~dst =
  Sys.rename src dst;
  fsync_dir (Filename.dirname dst)

let write_atomic ?(fsync = true) ?(temp_suffix = ".tmp") ~path f =
  let tmp = path ^ temp_suffix in
  let oc = open_out_bin tmp in
  (match
     f oc;
     flush oc;
     if fsync then fsync_fd (Unix.descr_of_out_channel oc)
   with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  match Sys.rename tmp path with
  | () -> if fsync then fsync_dir (Filename.dirname path)
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e
