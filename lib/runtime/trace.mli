(** Execution traces (task begin/end per resource), the simulator-side
    equivalent of PaRSEC's instrumentation: occupancy plots (Fig 9) and
    power profiles (Fig 10) are computed from these records. *)

type event = {
  label : string;    (** task name, e.g. ["GEMM(5,3,1)"] *)
  resource : int;    (** device index the task ran on *)
  start : float;     (** seconds *)
  stop : float;      (** seconds *)
  tag : string;      (** free-form classification, e.g. the precision name *)
}

type t

val create : unit -> t
val add : t -> event -> unit
val events : t -> event list
(** In insertion order. *)

val makespan : t -> float
(** Latest [stop] over all events (0 when empty). *)

val busy_time : t -> resource:int -> float
(** Total busy seconds of one resource. *)

val occupancy_series : t -> resources:int -> window:float -> (float * float) array
(** [(t, occ)] samples: fraction of [resources] busy during each window of
    the makespan — the Fig 9 measurement.  Returns [[||]] on an empty trace
    (zero makespan).  @raise Invalid_argument when [window <= 0.] (including
    NaN) or [resources <= 0]. *)

val utilisation : t -> resources:int -> float
(** Busy time over (makespan × resources). *)

val to_chrome_json : ?resource_name:(int -> string) -> t -> string
(** Serialise as Chrome trace-event JSON (load in chrome://tracing or
    Perfetto): one complete event per task, one thread row per resource,
    timestamps in microseconds. *)

val gantt : t -> resources:int -> width:int -> string
(** ASCII Gantt chart: one row per resource, [width] time columns; a cell
    shows the first letter of the dominating event's tag, '.' when idle.
    Returns [""] on an empty trace (zero makespan); [width = 1] degrades to
    a single busy/idle column per resource.
    @raise Invalid_argument when [resources <= 0] or [width <= 0]. *)
