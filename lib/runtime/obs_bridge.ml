module Dag_exec = Geomix_parallel.Dag_exec
module Events = Geomix_obs.Events
module Profile = Geomix_obs.Profile

let recorder ?(name = fun id -> Printf.sprintf "task %d" id) ?(tag = fun _ -> "") trace =
  (* Trace.add mutates a plain list; the hook fires from worker domains
     concurrently, so serialise appends. *)
  let mutex = Mutex.create () in
  {
    Dag_exec.on_task =
      (fun ~id ~worker ~start ~stop ->
        Mutex.lock mutex;
        Trace.add trace
          { Trace.label = name id; resource = worker; start; stop; tag = tag id };
        Mutex.unlock mutex);
  }

let bus_recorder ?(name = fun id -> Printf.sprintf "task %d" id)
    ?(component = "dag") bus =
  {
    Dag_exec.on_task =
      (fun ~id ~worker ~start ~stop ->
        (* Both events are emitted at completion time (the hook only fires
           once a task finishes) but carry the {e measured} run-relative
           span in ["at"] (["t"] is the bus's own timestamp header), so
           replaying the log reconstructs exactly the same timeline a Trace
           recorded from the same hook. *)
        let base =
          [ ("task", Events.fint id);
            ("label", Events.fstr (name id));
            ("worker", Events.fint worker) ]
        in
        Events.emit ~level:Events.Debug bus ~component ~name:"task_begin"
          (base @ [ ("at", Events.fnum start) ]);
        Events.emit ~level:Events.Debug bus ~component ~name:"task_end"
          (base @ [ ("at", Events.fnum stop); ("dur", Events.fnum (stop -. start)) ]));
  }

let profile_recorder ~name ?cls ?(tag = fun _ -> "") collector =
  let cls = match cls with Some f -> f | None -> fun id -> Profile.class_of_label (name id) in
  {
    Dag_exec.on_task =
      (fun ~id ~worker ~start ~stop ->
        Profile.record collector
          {
            Profile.id;
            label = name id;
            cls = cls id;
            prec = tag id;
            worker;
            start;
            stop;
          });
  }

let fanout hooks =
  {
    Dag_exec.on_task =
      (fun ~id ~worker ~start ~stop ->
        List.iter (fun h -> h.Dag_exec.on_task ~id ~worker ~start ~stop) hooks);
  }
