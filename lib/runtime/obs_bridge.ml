module Dag_exec = Geomix_parallel.Dag_exec

let recorder ?(name = fun id -> Printf.sprintf "task %d" id) ?(tag = fun _ -> "") trace =
  (* Trace.add mutates a plain list; the hook fires from worker domains
     concurrently, so serialise appends. *)
  let mutex = Mutex.create () in
  {
    Dag_exec.on_task =
      (fun ~id ~worker ~start ~stop ->
        Mutex.lock mutex;
        Trace.add trace
          { Trace.label = name id; resource = worker; start; stop; tag = tag id };
        Mutex.unlock mutex);
  }
