type event = { label : string; resource : int; start : float; stop : float; tag : string }

type t = { mutable events : event list; mutable count : int }

let create () = { events = []; count = 0 }

let add t e =
  assert (e.stop >= e.start);
  t.events <- e :: t.events;
  t.count <- t.count + 1

let events t = List.rev t.events

let makespan t = List.fold_left (fun acc e -> Float.max acc e.stop) 0. t.events

let busy_time t ~resource =
  List.fold_left
    (fun acc e -> if e.resource = resource then acc +. (e.stop -. e.start) else acc)
    0. t.events

let occupancy_series t ~resources ~window =
  if not (window > 0.) then
    invalid_arg "Trace.occupancy_series: window must be positive";
  if resources <= 0 then
    invalid_arg "Trace.occupancy_series: resources must be positive";
  let horizon = makespan t in
  if horizon = 0. then [||]
  else begin
    let nwin = int_of_float (Float.ceil (horizon /. window)) in
    let busy = Array.make nwin 0. in
    List.iter
      (fun e ->
        (* Spread the event's busy time over the windows it overlaps. *)
        let w0 = int_of_float (e.start /. window) in
        let w1 = Stdlib.min (nwin - 1) (int_of_float (e.stop /. window)) in
        for w = w0 to w1 do
          let lo = Float.max e.start (float_of_int w *. window) in
          let hi = Float.min e.stop (float_of_int (w + 1) *. window) in
          if hi > lo then busy.(w) <- busy.(w) +. (hi -. lo)
        done)
      t.events;
    Array.mapi
      (fun w b ->
        (float_of_int w *. window, b /. (window *. float_of_int resources)))
      busy
  end

let utilisation t ~resources =
  let horizon = makespan t in
  if horizon = 0. then 0.
  else begin
    let busy = List.fold_left (fun acc e -> acc +. (e.stop -. e.start)) 0. t.events in
    busy /. (horizon *. float_of_int resources)
  end

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json ?(resource_name = fun r -> Printf.sprintf "GPU %d" r) t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let resources = Hashtbl.create 8 in
  let first = ref true in
  let emit s =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf s
  in
  List.iter
    (fun e ->
      if not (Hashtbl.mem resources e.resource) then begin
        Hashtbl.add resources e.resource ();
        emit
          (Printf.sprintf
             {|{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"%s"}}|}
             e.resource
             (json_escape (resource_name e.resource)))
      end;
      emit
        (Printf.sprintf
           {|{"name":"%s","cat":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d,"args":{"tag":"%s"}}|}
           (json_escape e.label) (json_escape e.tag) (e.start *. 1e6)
           ((e.stop -. e.start) *. 1e6)
           e.resource (json_escape e.tag)))
    (events t);
  Buffer.add_string buf "]\n";
  Buffer.contents buf

let gantt t ~resources ~width =
  if resources <= 0 then invalid_arg "Trace.gantt: resources must be positive";
  if width <= 0 then invalid_arg "Trace.gantt: width must be positive";
  let horizon = makespan t in
  if horizon = 0. then ""
  else begin
    (* For each cell keep the tag of the event covering most of it. *)
    let cover = Array.make_matrix resources width 0. in
    let glyph = Array.make_matrix resources width '.' in
    List.iter
      (fun e ->
        if e.resource >= 0 && e.resource < resources then begin
          let cell = horizon /. float_of_int width in
          let c0 = int_of_float (e.start /. cell) in
          let c1 = Stdlib.min (width - 1) (int_of_float (e.stop /. cell)) in
          for c = c0 to c1 do
            let lo = Float.max e.start (float_of_int c *. cell) in
            let hi = Float.min e.stop (float_of_int (c + 1) *. cell) in
            let w = hi -. lo in
            if w > cover.(e.resource).(c) then begin
              cover.(e.resource).(c) <- w;
              glyph.(e.resource).(c) <- (if e.tag = "" then '#' else e.tag.[0])
            end
          done
        end)
      t.events;
    let buf = Buffer.create (resources * (width + 16)) in
    for r = 0 to resources - 1 do
      Buffer.add_string buf (Printf.sprintf "%4d |" r);
      Array.iter (Buffer.add_char buf) glyph.(r);
      Buffer.add_string buf "|\n"
    done;
    Buffer.add_string buf
      (Printf.sprintf "      0%*s\n" width (Printf.sprintf "%.3fs" horizon));
    Buffer.contents buf
  end
