(** Dynamic Task Discovery — the second PaRSEC DSL the paper describes
    (Section III-B): tasks are inserted sequentially with declared data
    footprints, and the runtime derives the dataflow DAG from superscalar
    semantics (RAW, WAR and WAW dependencies on each datum), then executes
    it asynchronously.

    Data are identified by caller-chosen integer keys (e.g. packed tile
    indices).  Insertion order defines the sequential semantics the
    parallel execution must preserve. *)

type t
type task_id = int

val create : ?bus:Geomix_obs.Events.t -> unit -> t
(** [create ()] builds an empty graph.  With [?bus], graph construction
    and execution are narrated on the telemetry bus (component ["dtd"]):
    {!insert} emits a Debug [submit] event per task, and {!execute}
    defaults its own [?bus] to this one. *)

val insert :
  t -> name:string -> reads:int list -> writes:int list -> (unit -> unit) -> task_id
(** Append a task that reads and writes the given data keys.  Dependencies
    on earlier tasks are derived automatically:
    - a read depends on the datum's last writer (RAW);
    - a write depends on the last writer (WAW) and on every reader since
      (WAR), and becomes the new last writer. *)

val num_tasks : t -> int
val name : t -> task_id -> string

val footprint : t -> task_id -> int list * int list
(** The declared (reads, writes) keys of a task, sorted and deduplicated.
    The verify layer (Geomix_verify.Races) rederives the must-happen-before
    relation from footprints and cross-checks the derived DAG against it. *)

val execute_task : t -> task_id -> unit
(** Run one task body directly.  Virtual executors
    (Geomix_verify.Explore) use this to replay the graph under a chosen
    linearization without a pool. *)

val predecessors : t -> task_id -> task_id list
(** Deduplicated, in insertion order. *)

val successors : t -> task_id -> task_id list
val in_degree : t -> int array

(** {1 Bytes-on-the-wire accounting}

    A task fetches each datum it reads from that datum's last writer: one
    RAW edge is one transfer, sized by [datum_bytes] (default 1 per datum —
    pass e.g. tile byte sizes from
    {!Geomix_precision.Fpformat.scalar_bytes}).  The volume is a pure
    function of the inserted program, so it is identical under every
    schedule the derived DAG admits — the property suites replay seeded
    interleavings to assert exactly that. *)

val raw_sources : t -> task_id -> (int * task_id) list
(** The [(datum, writer)] RAW edges into a task, in the task's read
    order. *)

val task_in_bytes : ?datum_bytes:(int -> int) -> t -> task_id -> int
(** Bytes this task fetches over its RAW edges. *)

val comm_volume : ?datum_bytes:(int -> int) -> t -> int
(** Total bytes over all RAW edges of the program. *)

val execute :
  ?pool:Geomix_parallel.Pool.t ->
  ?obs:Geomix_obs.Metrics.t ->
  ?span:Geomix_obs.Span.t ->
  ?datum_bytes:(int -> int) ->
  ?trace:Trace.t ->
  ?bus:Geomix_obs.Events.t ->
  ?profile:Geomix_obs.Profile.collector ->
  ?faults:Geomix_fault.Fault.t ->
  ?retry:Geomix_fault.Retry.policy ->
  ?snapshot:(int -> unit -> unit) ->
  ?integrity:Geomix_integrity.Guard.t ->
  ?datum_mat:(int -> Geomix_linalg.Mat.t option) ->
  ?observe:(key:int -> Geomix_linalg.Mat.t -> unit) ->
  ?acquire:(task_id -> unit) ->
  ?release:(task_id -> unit) ->
  ?job:Geomix_parallel.Pool.job ->
  t ->
  unit
(** Run every inserted task under the derived dependencies (serial pool by
    default).  The graph is reusable: executing twice runs the bodies
    twice.

    [?obs] records real execution metrics: [dtd.tasks] (task bodies run —
    under retry, re-executions count again), [dtd.raw_edges] (RAW
    transfers) and [dtd.raw_bytes] (their volume under [datum_bytes]).
    [?trace] appends one wall-clock event per task (label = task name,
    resource = pool worker index) — feed it to {!Trace.to_chrome_json} or
    {!Trace.gantt} for a real-run timeline.

    [?span] attributes the execution to a per-request trace span
    ({!Geomix_obs.Span}): one {!Geomix_obs.Span.note_transfer} per RAW
    edge (bytes under [datum_bytes]; Dtd data carry no transfer scalar, so
    the FP64-equivalent equals the shipped volume), one task completion
    per body run, and a retry note per supervised re-execution — the same
    quantities [?obs] accumulates in [dtd.raw_bytes]/[dtd.raw_edges],
    credited to the originating request.

    [?bus] (default: the bus the graph was created with, if any) streams
    the same execution onto the telemetry bus (component ["dtd"]): Debug
    [task_begin]/[task_end] pairs carrying the measured run-relative span
    in field ["at"] (identical to what [?trace] records — see
    {!Obs_bridge.bus_recorder}), a Debug [complete] per task with its
    RAW-edge count and byte volume under [datum_bytes], and a Warn [retry]
    per supervised re-execution with the attempt number, the failed
    exception and (when [?retry] is given) the backoff applied.
    [?profile] collects one {!Geomix_obs.Profile} measure per completed
    task for critical-path analysis — pass the result to
    {!Geomix_obs.Profile.analyze} with [~preds] from {!predecessors}.

    {b Supervised recovery.}  [?faults] subjects every task body to the
    seeded fault plan (site ["exec"], keyed by the task's {e name}), and
    [?retry] re-executes failed attempts with bounded backoff.  Sound
    re-execution needs the task's written footprint rolled back first:
    [snapshot key] must capture the current value of datum [key] and
    return a thunk restoring it — e.g. for tile data,
    [fun key -> let saved = Mat.copy (tile key) in
     fun () -> Mat.blit ~src:saved ~dst:(tile key)].  Before a task's
    first attempt each of its written data is captured; before every
    re-execution they are all restored, so a retried task re-runs against
    exactly the state its first attempt saw.  With [?obs], recovery adds
    [dtd.retries], [dtd.restores] and [dtd.restored_bytes] (volume under
    [datum_bytes] of the written footprints rolled back).

    {b ABFT tile integrity.}  [?integrity] (with [?datum_mat] mapping a
    datum key to its tile payload, [None] for non-tile data) guards both
    ends of every RAW edge: before a task body runs, each payload it reads
    is verified against its producer's checksum — a mismatch is a detected
    silent corruption, repaired in place from the guard's snapshot when
    one exists and re-verified, otherwise escalated as
    {!Geomix_integrity.Guard.Corrupt} (non-retryable by design; re-running
    a consumer on corrupted inputs reproduces the wrong answer).  After
    the body, each written payload is (re-)stamped, covering the next hop.
    Counters and [sdc_detected]/[sdc_recovered] events land on the guard's
    own registry/bus.

    {b Range instrumentation.}  [?observe] (with [?datum_mat], same key
    resolution as the integrity guard) is the autotuner's pilot hook: after
    a task body runs, the callback receives each tile datum the task wrote,
    at full working precision and before any later consumer touches it.
    Observers must not mutate payloads; execution is bit-identical with or
    without the hook.  Tasks writing {e distinct} data may be observed
    concurrently under a parallel pool, so observer state must be per-datum
    or synchronized ({!Geomix_autotune.Range_tracker} keeps per-tile
    accumulators).

    {b Out-of-core residency.}  [?acquire]/[?release] bracket each task's
    supervision envelope (forwarded to {!Geomix_parallel.Dag_exec.run}):
    an out-of-core tile store pins the task's declared footprint — from
    {!footprint} — so no in-flight tile is evicted under a kernel, and
    unpins it after the last attempt, also on failure.  Called from worker
    domains, so they must be thread-safe.

    {b Shared pools.}  [?job] scopes the run to a
    {!Geomix_parallel.Pool.job}: concurrent [execute] calls sharing one
    pool neither await nor observe each other's tasks or failures — the
    contract the request server ({!Geomix_serve.Server}) relies on.
    Without it, the final wait covers every pool thunk (pool-wide
    fail-fast semantics). *)

val critical_path_length : t -> int
(** Longest dependency chain, in tasks — the inherent sequential depth of
    the inserted program. *)
