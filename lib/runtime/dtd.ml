module Pool = Geomix_parallel.Pool
module Dag_exec = Geomix_parallel.Dag_exec
module Metrics = Geomix_obs.Metrics
module Events = Geomix_obs.Events
module Guard = Geomix_integrity.Guard

type task_id = int

type task = {
  name : string;
  body : unit -> unit;
  reads : int list; (* declared footprint, sorted and deduplicated *)
  writes : int list;
  raw_srcs : (int * task_id) list; (* (datum, writer) RAW edges into this task *)
  mutable preds : task_id list; (* reverse insertion order while building *)
  mutable succs : task_id list;
  mutable indeg : int;
}

type datum_state = {
  mutable last_writer : task_id option;
  mutable readers_since : task_id list;
}

type t = {
  mutable tasks : task array;
  mutable count : int;
  data : (int, datum_state) Hashtbl.t;
  bus : Events.t option;
}

let create ?bus () = { tasks = [||]; count = 0; data = Hashtbl.create 64; bus }

let datum t key =
  match Hashtbl.find_opt t.data key with
  | Some d -> d
  | None ->
    let d = { last_writer = None; readers_since = [] } in
    Hashtbl.add t.data key d;
    d

let grow t task =
  if t.count = Array.length t.tasks then begin
    let cap = Stdlib.max 16 (2 * Array.length t.tasks) in
    let tasks = Array.make cap task in
    Array.blit t.tasks 0 tasks 0 t.count;
    t.tasks <- tasks
  end

let add_dep t ~on ~target =
  let tgt = t.tasks.(target) and src = t.tasks.(on) in
  if on <> target && not (List.mem on tgt.preds) then begin
    tgt.preds <- on :: tgt.preds;
    src.succs <- target :: src.succs;
    tgt.indeg <- tgt.indeg + 1
  end

let insert t ~name ~reads ~writes body =
  let id = t.count in
  let reads = List.sort_uniq compare reads in
  let writes = List.sort_uniq compare writes in
  (* RAW edges are the data that actually travels: each read of a datum
     with a live writer is one transfer of that datum (a write-only access
     overwrites without fetching). *)
  let raw_srcs =
    List.filter_map
      (fun key ->
        match (datum t key).last_writer with Some w -> Some (key, w) | None -> None)
      reads
  in
  let task = { name; body; reads; writes; raw_srcs; preds = []; succs = []; indeg = 0 } in
  grow t task;
  t.tasks.(t.count) <- task;
  t.count <- t.count + 1;
  List.iter
    (fun key ->
      let d = datum t key in
      (match d.last_writer with Some w -> add_dep t ~on:w ~target:id | None -> ());
      d.readers_since <- id :: d.readers_since)
    reads;
  List.iter
    (fun key ->
      let d = datum t key in
      (match d.last_writer with Some w -> add_dep t ~on:w ~target:id | None -> ());
      List.iter (fun r -> add_dep t ~on:r ~target:id) d.readers_since;
      d.last_writer <- Some id;
      d.readers_since <- [])
    writes;
  (match t.bus with
  | None -> ()
  | Some bus ->
    Events.emit ~level:Events.Debug bus ~component:"dtd" ~name:"submit"
      [
        ("task", Events.fint id);
        ("label", Events.fstr name);
        ("reads", Events.fint (List.length reads));
        ("writes", Events.fint (List.length writes));
        ("raw_edges", Events.fint (List.length raw_srcs));
      ]);
  id

let num_tasks t = t.count

let check_id t id = if id < 0 || id >= t.count then invalid_arg "Dtd: bad task id"

let name t id =
  check_id t id;
  t.tasks.(id).name

(* Declared (reads, writes) footprint, as normalized at insertion.  The
   verify layer rederives the must-happen-before relation from this and
   cross-checks it against the edges [insert] actually created. *)
let footprint t id =
  check_id t id;
  (t.tasks.(id).reads, t.tasks.(id).writes)

(* Run one task body directly.  Virtual executors (Geomix_verify.Explore)
   use this to replay the graph under a chosen linearization without a
   pool. *)
let execute_task t id =
  check_id t id;
  t.tasks.(id).body ()

(* Bytes-on-the-wire accounting.  A task fetches every datum it reads from
   that datum's last writer (one RAW edge = one transfer), so the volume is
   a pure function of the inserted program — independent of the schedule
   the executor happens to produce, which the property suites assert. *)

let default_datum_bytes _ = 1

let raw_sources t id =
  check_id t id;
  t.tasks.(id).raw_srcs

let task_in_bytes ?(datum_bytes = default_datum_bytes) t id =
  check_id t id;
  List.fold_left (fun acc (key, _) -> acc + datum_bytes key) 0 t.tasks.(id).raw_srcs

let comm_volume ?(datum_bytes = default_datum_bytes) t =
  let acc = ref 0 in
  for id = 0 to t.count - 1 do
    acc := !acc + task_in_bytes ~datum_bytes t id
  done;
  !acc

let predecessors t id =
  check_id t id;
  List.rev t.tasks.(id).preds

let successors t id =
  check_id t id;
  List.rev t.tasks.(id).succs

let in_degree t = Array.init t.count (fun id -> t.tasks.(id).indeg)

let execute ?pool ?obs ?span ?(datum_bytes = default_datum_bytes) ?trace ?bus
    ?profile ?faults ?retry ?snapshot ?integrity ?datum_mat ?observe ?acquire
    ?release ?job t =
  (* The executing bus defaults to the one the graph was built with, so a
     Dtd created with [?bus] narrates submission and execution on the same
     stream without repeating the argument. *)
  let bus = match bus with Some _ -> bus | None -> t.bus in
  let record =
    match obs with
    | None -> fun _ -> ()
    | Some reg ->
      let tasks = Metrics.counter reg "dtd.tasks" in
      let bytes = Metrics.counter reg "dtd.raw_bytes" in
      let edges = Metrics.counter reg "dtd.raw_edges" in
      fun id ->
        Metrics.incr tasks;
        Metrics.add bytes (task_in_bytes ~datum_bytes t id);
        Metrics.add edges (List.length t.tasks.(id).raw_srcs)
  in
  (* Request attribution: the same RAW-edge volume the registry counters
     accumulate, credited to the originating request's span.  Dtd data have
     no transfer scalar, so bytes and the FP64-equivalent coincide. *)
  let span_note =
    match span with
    | None -> fun _ -> ()
    | Some sp ->
      fun id ->
        List.iter
          (fun (key, _writer) ->
            let b = datum_bytes key in
            Geomix_obs.Span.note_transfer sp ~bytes:b ~fp64_bytes:b)
          t.tasks.(id).raw_srcs;
        Geomix_obs.Span.note_task sp
  in
  let note_complete =
    match bus with
    | None -> fun _ -> ()
    | Some bus ->
      fun id ->
        Events.emit ~level:Events.Debug bus ~component:"dtd" ~name:"complete"
          [
            ("task", Events.fint id);
            ("label", Events.fstr t.tasks.(id).name);
            ("raw_bytes", Events.fint (task_in_bytes ~datum_bytes t id));
            ("raw_edges", Events.fint (List.length t.tasks.(id).raw_srcs));
          ]
  in
  let task_label id = t.tasks.(id).name in
  let dag_obs =
    let hooks =
      List.filter_map Fun.id
        [
          Option.map (fun tr -> Obs_bridge.recorder ~name:task_label tr) trace;
          Option.map (fun b -> Obs_bridge.bus_recorder ~name:task_label ~component:"dtd" b) bus;
          Option.map (fun c -> Obs_bridge.profile_recorder ~name:task_label c) profile;
        ]
    in
    match hooks with [] -> None | [ h ] -> Some h | hs -> Some (Obs_bridge.fanout hs)
  in
  (* Recovery metrics: re-executions and the footprint data rolled back to
     make them sound. *)
  let metric_retry, note_restore =
    match obs with
    | None -> (None, fun _ -> ())
    | Some reg ->
      let retries = Metrics.counter reg "dtd.retries" in
      let restores = Metrics.counter reg "dtd.restores" in
      let restored = Metrics.counter reg "dtd.restored_bytes" in
      ( Some (fun ~id:_ ~attempt:_ _ -> Metrics.incr retries),
        fun id ->
          Metrics.incr restores;
          Metrics.add restored
            (List.fold_left (fun acc k -> acc + datum_bytes k) 0 t.tasks.(id).writes) )
  in
  let bus_retry =
    match bus with
    | None -> None
    | Some bus ->
      Some
        (fun ~id ~attempt exn ->
          Events.emit ~level:Events.Warn bus ~component:"dtd" ~name:"retry"
            ([
               ("task", Events.fint id);
               ("label", Events.fstr t.tasks.(id).name);
               ("attempt", Events.fint attempt);
               ("error", Events.fstr (Printexc.to_string exn));
             ]
            @
            match retry with
            | None -> []
            | Some p ->
              [ ("backoff_s", Events.fnum (Geomix_fault.Retry.delay_for p ~attempt)) ]))
  in
  let note_retry =
    match (metric_retry, bus_retry, span) with
    | None, None, None -> None
    | _ ->
      Some
        (fun ~id ~attempt exn ->
          (match metric_retry with Some f -> f ~id ~attempt exn | None -> ());
          (match span with Some sp -> Geomix_obs.Span.note_retry sp | None -> ());
          match bus_retry with Some f -> f ~id ~attempt exn | None -> ())
  in
  (* A task's restorable state is exactly its declared written footprint:
     capture each written datum through the caller's [snapshot] before the
     first attempt, restore them all before a re-execution. *)
  let capture =
    Option.map
      (fun snap id ->
        let restorers = List.map snap t.tasks.(id).writes in
        fun () ->
          List.iter (fun r -> r ()) restorers;
          note_restore id)
      snapshot
  in
  (* ABFT boundaries.  A consumer verifies every RAW-edge payload it is
     about to read against the producer's stamp (detect), repairing from
     the guard's snapshot when possible (recover) and escalating with
     [Guard.Corrupt] — deliberately non-retryable: re-running a task on
     corrupted inputs reproduces the wrong answer — otherwise.  A producer
     stamps every datum it wrote, so the next consumer hop is covered. *)
  let verify_in, stamp_out =
    match (integrity, datum_mat) with
    | Some g, Some dm ->
      ( (fun id ->
          List.iter
            (fun (key, _writer) ->
              match dm key with
              | None -> ()
              | Some m ->
                if not (Guard.check g ~key m) then begin
                  let task = t.tasks.(id).name in
                  Guard.note_detected g ~key ~task;
                  if Guard.restore g ~key m && Guard.check g ~key m then
                    Guard.note_recovered g ~key ~task
                  else Guard.corrupt g ~key ~task "raw-edge payload corrupted"
                end)
            t.tasks.(id).raw_srcs),
        fun id ->
          List.iter
            (fun key ->
              match dm key with None -> () | Some m -> Guard.stamp g ~key m)
            t.tasks.(id).writes )
    | _ -> ((fun _ -> ()), fun _ -> ())
  in
  (* Range instrumentation: after a task body runs, hand each datum it
     wrote (resolved through [datum_mat]) to the observer.  Read-only — the
     execution is bit-identical with or without the hook. *)
  let observe_out =
    match (observe, datum_mat) with
    | Some f, Some dm ->
      fun id ->
        List.iter
          (fun key -> match dm key with None -> () | Some m -> f ~key m)
          t.tasks.(id).writes
    | _ -> fun _ -> ()
  in
  let run pool =
    Dag_exec.run ?obs:dag_obs ~task_name:(fun id -> t.tasks.(id).name) ?faults ?retry
      ?capture ?on_retry:note_retry ?acquire ?release ?job ~pool ~num_tasks:t.count
      ~in_degree:(in_degree t)
      ~successors:(fun id -> t.tasks.(id).succs)
      ~execute:(fun id ->
        record id;
        span_note id;
        verify_in id;
        t.tasks.(id).body ();
        observe_out id;
        stamp_out id;
        note_complete id)
      ()
  in
  match pool with Some pool -> run pool | None -> Pool.with_pool ~num_workers:0 run

let critical_path_length t =
  (* Insertion order is a topological order: preds always have smaller ids. *)
  let depth = Array.make (Stdlib.max t.count 1) 0 in
  for id = 0 to t.count - 1 do
    let d =
      List.fold_left (fun acc p -> Stdlib.max acc (depth.(p) + 1)) 1 t.tasks.(id).preds
    in
    depth.(id) <- d
  done;
  if t.count = 0 then 0 else Array.fold_left Stdlib.max 0 (Array.sub depth 0 t.count)
