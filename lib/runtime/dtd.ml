module Pool = Geomix_parallel.Pool
module Dag_exec = Geomix_parallel.Dag_exec
module Metrics = Geomix_obs.Metrics

type task_id = int

type task = {
  name : string;
  body : unit -> unit;
  reads : int list; (* declared footprint, sorted and deduplicated *)
  writes : int list;
  raw_srcs : (int * task_id) list; (* (datum, writer) RAW edges into this task *)
  mutable preds : task_id list; (* reverse insertion order while building *)
  mutable succs : task_id list;
  mutable indeg : int;
}

type datum_state = {
  mutable last_writer : task_id option;
  mutable readers_since : task_id list;
}

type t = {
  mutable tasks : task array;
  mutable count : int;
  data : (int, datum_state) Hashtbl.t;
}

let create () = { tasks = [||]; count = 0; data = Hashtbl.create 64 }

let datum t key =
  match Hashtbl.find_opt t.data key with
  | Some d -> d
  | None ->
    let d = { last_writer = None; readers_since = [] } in
    Hashtbl.add t.data key d;
    d

let grow t task =
  if t.count = Array.length t.tasks then begin
    let cap = Stdlib.max 16 (2 * Array.length t.tasks) in
    let tasks = Array.make cap task in
    Array.blit t.tasks 0 tasks 0 t.count;
    t.tasks <- tasks
  end

let add_dep t ~on ~target =
  let tgt = t.tasks.(target) and src = t.tasks.(on) in
  if on <> target && not (List.mem on tgt.preds) then begin
    tgt.preds <- on :: tgt.preds;
    src.succs <- target :: src.succs;
    tgt.indeg <- tgt.indeg + 1
  end

let insert t ~name ~reads ~writes body =
  let id = t.count in
  let reads = List.sort_uniq compare reads in
  let writes = List.sort_uniq compare writes in
  (* RAW edges are the data that actually travels: each read of a datum
     with a live writer is one transfer of that datum (a write-only access
     overwrites without fetching). *)
  let raw_srcs =
    List.filter_map
      (fun key ->
        match (datum t key).last_writer with Some w -> Some (key, w) | None -> None)
      reads
  in
  let task = { name; body; reads; writes; raw_srcs; preds = []; succs = []; indeg = 0 } in
  grow t task;
  t.tasks.(t.count) <- task;
  t.count <- t.count + 1;
  List.iter
    (fun key ->
      let d = datum t key in
      (match d.last_writer with Some w -> add_dep t ~on:w ~target:id | None -> ());
      d.readers_since <- id :: d.readers_since)
    reads;
  List.iter
    (fun key ->
      let d = datum t key in
      (match d.last_writer with Some w -> add_dep t ~on:w ~target:id | None -> ());
      List.iter (fun r -> add_dep t ~on:r ~target:id) d.readers_since;
      d.last_writer <- Some id;
      d.readers_since <- [])
    writes;
  id

let num_tasks t = t.count

let check_id t id = if id < 0 || id >= t.count then invalid_arg "Dtd: bad task id"

let name t id =
  check_id t id;
  t.tasks.(id).name

(* Declared (reads, writes) footprint, as normalized at insertion.  The
   verify layer rederives the must-happen-before relation from this and
   cross-checks it against the edges [insert] actually created. *)
let footprint t id =
  check_id t id;
  (t.tasks.(id).reads, t.tasks.(id).writes)

(* Run one task body directly.  Virtual executors (Geomix_verify.Explore)
   use this to replay the graph under a chosen linearization without a
   pool. *)
let execute_task t id =
  check_id t id;
  t.tasks.(id).body ()

(* Bytes-on-the-wire accounting.  A task fetches every datum it reads from
   that datum's last writer (one RAW edge = one transfer), so the volume is
   a pure function of the inserted program — independent of the schedule
   the executor happens to produce, which the property suites assert. *)

let default_datum_bytes _ = 1

let raw_sources t id =
  check_id t id;
  t.tasks.(id).raw_srcs

let task_in_bytes ?(datum_bytes = default_datum_bytes) t id =
  check_id t id;
  List.fold_left (fun acc (key, _) -> acc + datum_bytes key) 0 t.tasks.(id).raw_srcs

let comm_volume ?(datum_bytes = default_datum_bytes) t =
  let acc = ref 0 in
  for id = 0 to t.count - 1 do
    acc := !acc + task_in_bytes ~datum_bytes t id
  done;
  !acc

let predecessors t id =
  check_id t id;
  List.rev t.tasks.(id).preds

let successors t id =
  check_id t id;
  List.rev t.tasks.(id).succs

let in_degree t = Array.init t.count (fun id -> t.tasks.(id).indeg)

let execute ?pool ?obs ?(datum_bytes = default_datum_bytes) ?trace ?faults ?retry
    ?snapshot t =
  let record =
    match obs with
    | None -> fun _ -> ()
    | Some reg ->
      let tasks = Metrics.counter reg "dtd.tasks" in
      let bytes = Metrics.counter reg "dtd.raw_bytes" in
      let edges = Metrics.counter reg "dtd.raw_edges" in
      fun id ->
        Metrics.incr tasks;
        Metrics.add bytes (task_in_bytes ~datum_bytes t id);
        Metrics.add edges (List.length t.tasks.(id).raw_srcs)
  in
  let dag_obs =
    Option.map (fun tr -> Obs_bridge.recorder ~name:(fun id -> t.tasks.(id).name) tr) trace
  in
  (* Recovery metrics: re-executions and the footprint data rolled back to
     make them sound. *)
  let note_retry, note_restore =
    match obs with
    | None -> (None, fun _ -> ())
    | Some reg ->
      let retries = Metrics.counter reg "dtd.retries" in
      let restores = Metrics.counter reg "dtd.restores" in
      let restored = Metrics.counter reg "dtd.restored_bytes" in
      ( Some (fun ~id:_ ~attempt:_ _ -> Metrics.incr retries),
        fun id ->
          Metrics.incr restores;
          Metrics.add restored
            (List.fold_left (fun acc k -> acc + datum_bytes k) 0 t.tasks.(id).writes) )
  in
  (* A task's restorable state is exactly its declared written footprint:
     capture each written datum through the caller's [snapshot] before the
     first attempt, restore them all before a re-execution. *)
  let capture =
    Option.map
      (fun snap id ->
        let restorers = List.map snap t.tasks.(id).writes in
        fun () ->
          List.iter (fun r -> r ()) restorers;
          note_restore id)
      snapshot
  in
  let run pool =
    Dag_exec.run ?obs:dag_obs ~task_name:(fun id -> t.tasks.(id).name) ?faults ?retry
      ?capture ?on_retry:note_retry ~pool ~num_tasks:t.count ~in_degree:(in_degree t)
      ~successors:(fun id -> t.tasks.(id).succs)
      ~execute:(fun id ->
        record id;
        t.tasks.(id).body ())
      ()
  in
  match pool with Some pool -> run pool | None -> Pool.with_pool ~num_workers:0 run

let critical_path_length t =
  (* Insertion order is a topological order: preds always have smaller ids. *)
  let depth = Array.make (Stdlib.max t.count 1) 0 in
  for id = 0 to t.count - 1 do
    let d =
      List.fold_left (fun acc p -> Stdlib.max acc (depth.(p) + 1)) 1 t.tasks.(id).preds
    in
    depth.(id) <- d
  done;
  if t.count = 0 then 0 else Array.fold_left Stdlib.max 0 (Array.sub depth 0 t.count)
