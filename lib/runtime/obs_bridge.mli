(** Bridge from the real executor's observability hook to the passive
    observability backends: {!Trace}, the telemetry bus
    ({!Geomix_obs.Events}) and the critical-path profiler's collector
    ({!Geomix_obs.Profile}).

    {!Trace} was built for the simulator; {!recorder} turns a trace into a
    {!Geomix_parallel.Dag_exec.obs} hook so a {e real} pool run produces the
    same event records — worker domains play the role of resources — and
    every existing exporter ({!Trace.to_chrome_json}, {!Trace.gantt},
    {!Trace.occupancy_series}) works on measured executions unchanged.
    {!bus_recorder} and {!profile_recorder} do the same for the other two
    backends, and {!fanout} combines any number of hooks so one run can
    feed all of them from a single [?obs] argument. *)

val recorder :
  ?name:(int -> string) ->
  ?tag:(int -> string) ->
  Trace.t ->
  Geomix_parallel.Dag_exec.obs
(** [recorder ~name ~tag trace] appends one event per completed task:
    label [name id] (default ["task <id>"]), tag [tag id] (default [""]),
    resource = the worker index that ran it.  Thread-safe. *)

val bus_recorder :
  ?name:(int -> string) ->
  ?component:string ->
  Geomix_obs.Events.t ->
  Geomix_parallel.Dag_exec.obs
(** [bus_recorder bus] emits a Debug [task_begin]/[task_end] event pair per
    completed task on [component] (default ["dag"]).  Both events carry the
    {e measured} run-relative timestamp in field ["at"] (start and stop
    respectively — the exact floats the hook received, which are also what
    a {!recorder} on the same run stores in its {!Trace}; the bus's own
    ["t"] header is the emission time), plus [task], [label], [worker], and
    [dur] on [task_end]; reconstructing the makespan from the streamed log
    therefore reproduces {!Trace.makespan} exactly.  Thread-safe (the bus
    serialises emission). *)

val profile_recorder :
  name:(int -> string) ->
  ?cls:(int -> string) ->
  ?tag:(int -> string) ->
  Geomix_obs.Profile.collector ->
  Geomix_parallel.Dag_exec.obs
(** [profile_recorder ~name collector] records one {!Geomix_obs.Profile}
    measure per completed task: label [name id], kernel class [cls id]
    (default: {!Geomix_obs.Profile.class_of_label} of the label, i.e. the
    prefix before ['(']), precision [tag id] (default [""]).  Thread-safe
    (the collector serialises appends). *)

val fanout :
  Geomix_parallel.Dag_exec.obs list -> Geomix_parallel.Dag_exec.obs
(** [fanout hooks] calls every hook in list order for each completed task.
    [fanout []] is a no-op hook. *)
