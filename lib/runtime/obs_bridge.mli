(** Bridge from the real executor's observability hook to {!Trace}.

    {!Trace} was built for the simulator; {!recorder} turns a trace into a
    {!Geomix_parallel.Dag_exec.obs} hook so a {e real} pool run produces the
    same event records — worker domains play the role of resources — and
    every existing exporter ({!Trace.to_chrome_json}, {!Trace.gantt},
    {!Trace.occupancy_series}) works on measured executions unchanged. *)

val recorder :
  ?name:(int -> string) ->
  ?tag:(int -> string) ->
  Trace.t ->
  Geomix_parallel.Dag_exec.obs
(** [recorder ~name ~tag trace] appends one event per completed task:
    label [name id] (default ["task <id>"]), tag [tag id] (default [""]),
    resource = the worker index that ran it.  Thread-safe. *)
