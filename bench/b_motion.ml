(* Data-motion accounting: the paper's central claim as one table.  For
   each precision configuration, the exact bytes the factorization's
   broadcasts put on the wire under the automated conversion strategy
   (STC), the always-TTC baseline and the all-FP64 reference — computed
   analytically from Algorithm 2's communication map (Comm_map.motion), no
   simulation involved.  Also exports the deterministic metric set of the
   CI bench gate (BENCH_smoke.json). *)

open Common
module Cm = Geomix_core.Comm_map
module Bench_json = Geomix_obs.Bench_json

let motion_row (cname, pmap) ~nb =
  let cm = Cm.compute pmap in
  let m = Cm.motion cm pmap ~nb in
  [
    cname;
    string_of_int m.Cm.transfers;
    Table.fmt_bytes m.Cm.bytes_stc;
    Table.fmt_bytes m.Cm.bytes_ttc;
    Table.fmt_bytes m.Cm.bytes_fp64;
    Table.fmt_pct (1. -. (m.Cm.bytes_stc /. m.Cm.bytes_ttc));
    Table.fmt_pct (1. -. (m.Cm.bytes_stc /. m.Cm.bytes_fp64));
    string_of_int m.Cm.conv_stc;
    string_of_int m.Cm.conv_ttc;
    Table.fmt_pct (Cm.stc_fraction cm);
  ]

let print_motion_table ~nb configs =
  let rows = List.map (fun config -> motion_row config ~nb) configs in
  Table.print
    ~align:[ Table.Left ]
    ~headers:
      [
        "config";
        "transfers";
        "bytes STC";
        "bytes TTC";
        "bytes FP64";
        "STC vs TTC";
        "STC vs FP64";
        "conv STC";
        "conv TTC";
        "STC tiles";
      ]
    rows

let run (scale : scale) =
  let ntiles = if scale.full then 100 else 24 in
  section "motion" "Data motion: STC vs TTC vs all-FP64 bytes on the wire";
  note "NT=%d, nb=%d; analytic per-broadcast accounting (Comm_map.motion)" ntiles nb;
  print_motion_table ~nb (fig8_configs ntiles);
  (* The adaptive maps of the three evaluation applications. *)
  let n = ntiles * nb in
  let app_configs =
    List.map (fun app -> (app.app_name, app_precision_map app ~n)) applications
  in
  print_motion_table ~nb app_configs;
  paper
    "Fig 8/11/12 attribute the mixed-precision speedup primarily to moving \
     fewer bytes; STC ships the Algorithm 2 format once instead of the \
     storage format to every consumer."

(* The deterministic metric set behind BENCH_smoke.json: an H100
   discrete-event simulation of the FP64/FP16_32 configuration (the paper's
   adaptive sweet spot) under both conversion strategies, plus the analytic
   motion accounting.  Everything here is a pure function of the model —
   wall-clock never enters, so the 20% CI gate cannot flap. *)
let rec smoke_metrics () =
  let ntiles = 24 in
  (* Two Summit nodes: small enough to simulate in milliseconds, large
     enough that the d2d/nic byte counters are exercised. *)
  let machine = Machine.summit ~nodes:2 () in
  let pmap = Pm.two_level ~nt:ntiles ~off_diag:Fp.Fp16_32 in
  let stc = run_sim ~strategy:Sim.Stc_auto ~machine pmap in
  let ttc = run_sim ~strategy:Sim.Ttc_always ~machine pmap in
  let cm = Cm.compute pmap in
  let m = Cm.motion cm pmap ~nb in
  let open Bench_json in
  [
    metric ~units:"s" "makespan_stc" stc.Sim.makespan;
    metric ~units:"s" "makespan_ttc" ttc.Sim.makespan;
    metric ~units:"Tflop/s" ~direction:Higher_is_better "tflops_stc" stc.Sim.tflops;
    metric ~units:"B" "sim_bytes_stc"
      (stc.Sim.bytes_h2d +. stc.Sim.bytes_d2d +. stc.Sim.bytes_nic);
    metric ~units:"B" "sim_bytes_ttc"
      (ttc.Sim.bytes_h2d +. ttc.Sim.bytes_d2d +. ttc.Sim.bytes_nic);
    metric ~units:"" "sim_conversions_stc" (float_of_int stc.Sim.conversions);
    metric ~units:"B" "motion_bytes_stc" m.Cm.bytes_stc;
    metric ~units:"B" "motion_bytes_ttc" m.Cm.bytes_ttc;
    metric ~units:"B" "motion_bytes_fp64" m.Cm.bytes_fp64;
    metric ~units:"" "motion_conv_stc" (float_of_int m.Cm.conv_stc);
    metric ~units:"" "motion_conv_ttc" (float_of_int m.Cm.conv_ttc);
    metric ~units:"J" "energy_stc" stc.Sim.energy.Geomix_gpusim.Energy.energy_joules;
  ]
  @ recovery_metrics ()
  @ integrity_metrics ()
  @ profile_metrics ()
  @ autotune_metrics ()

(* Recovery counters of the fault-injection layer: one seeded chaos
   factorization (transient + crash-after-write faults at 30%, supervised
   retry with snapshot restore) and one forced pivot-failure run driving a
   band escalation, both on the serial pool.  Fault decisions are pure
   hashes of (seed, task name, attempt), so every count — and the
   bitwise-equality check — is deterministic and the CI gate cannot flap. *)
and recovery_metrics () =
  let module Tiled = Geomix_tile.Tiled in
  let module Fault = Geomix_fault.Fault in
  let module Retry = Geomix_fault.Retry in
  let module Metrics = Geomix_obs.Metrics in
  let module Chol = Geomix_core.Mp_cholesky in
  let ntiles = 6 and nb = 8 in
  let spd () =
    Tiled.init ~n:(ntiles * nb) ~nb (fun i j ->
      (if i = j then 1.0 else 0.) +. exp (-0.05 *. float_of_int (abs (i - j))))
  in
  let pmap = Pm.two_level ~nt:ntiles ~off_diag:Fp.Fp16_32 in
  let reference = spd () in
  Chol.factorize ~pmap reference;
  let reg = Metrics.create () in
  let a = spd () in
  let faults =
    Fault.plan ~obs:reg ~rate:0.3
      ~kinds:[ Fault.Transient; Fault.Crash_after_write ]
      ~sleep:ignore ~seed:7 ()
  in
  Geomix_parallel.Pool.with_pool ~num_workers:0 (fun pool ->
    Chol.factorize ~pool ~faults ~retry:(Retry.immediate ()) ~obs:reg ~pmap a);
  let exact = if Geomix_tile.Tiled.rel_diff a ~reference = 0. then 1. else 0. in
  let b = spd () in
  let pfaults = Fault.plan ~pivot_rate:1. ~sleep:ignore ~seed:7 () in
  let report = Chol.factorize_robust ~faults:pfaults ~obs:reg ~pmap b in
  let counter name =
    match Metrics.find (Metrics.snapshot reg) name with
    | Some (Metrics.Counter c) -> float_of_int c
    | _ -> 0.
  in
  let open Bench_json in
  [
    metric ~units:"" "recovery_injected" (float_of_int (Fault.injected faults));
    metric ~units:"" "recovery_retries" (counter "cholesky.retries");
    metric ~units:"B" "recovery_restored_bytes" (counter "cholesky.restored_bytes");
    metric ~units:"" "recovery_band_escalations" (counter "recovery.band_escalations");
    metric ~units:"" ~direction:Higher_is_better "recovery_exact" exact;
    metric ~units:"" ~direction:Higher_is_better "recovery_converged"
      (match report.Chol.outcome with Chol.Factorized -> 1. | Chol.Indefinite _ -> 0.);
  ]

(* ABFT integrity-guard accounting: a guarded fault-free factorization
   (bitwise identical to the unguarded one, by construction) and a seeded
   SDC chaos run.  The overhead fraction relates the bytes the guard hashes
   to the bytes the kernels touch (8·flops at FP64) — an analytic proxy
   for the checksum cost relative to compute, free of wall-clock noise.
   Stamp/verification counts, hash volume and the SDC detect/recover
   counters are all pure functions of (seed, DAG, precision map), so the
   CI gate cannot flap. *)
and integrity_metrics () =
  let module Tiled = Geomix_tile.Tiled in
  let module Fault = Geomix_fault.Fault in
  let module Retry = Geomix_fault.Retry in
  let module Metrics = Geomix_obs.Metrics in
  let module Guard = Geomix_integrity.Guard in
  let module Chol = Geomix_core.Mp_cholesky in
  let module Cdag = Geomix_runtime.Cholesky_dag in
  let module Task = Geomix_runtime.Task in
  let ntiles = 6 and nb = 8 in
  let spd () =
    Tiled.init ~n:(ntiles * nb) ~nb (fun i j ->
      (if i = j then 1.0 else 0.) +. exp (-0.05 *. float_of_int (abs (i - j))))
  in
  let pmap = Pm.two_level ~nt:ntiles ~off_diag:Fp.Fp16_32 in
  let reference = spd () in
  Chol.factorize ~pmap reference;
  (* Guarded, fault-free: must match the unguarded factor bit for bit. *)
  let reg = Metrics.create () in
  let guard = Guard.create ~obs:reg ~snapshots:true () in
  let a = spd () in
  Chol.factorize ~integrity:guard ~pmap a;
  let exact = if Tiled.rel_diff a ~reference = 0. then 1. else 0. in
  let counter name =
    match Metrics.find (Metrics.snapshot reg) name with
    | Some (Metrics.Counter c) -> float_of_int c
    | _ -> 0.
  in
  let hashed = counter "integrity.hashed_bytes" in
  let g = Cdag.create ~nt:ntiles in
  let flops = ref 0. in
  for id = 0 to Cdag.num_tasks g - 1 do
    flops := !flops +. Task.flops ~nb (Cdag.kind_of g id)
  done;
  let overhead = hashed /. (hashed +. (8. *. !flops)) in
  (* Seeded SDC chaos: every injected corruption must be detected and
     recovered, and the recovered factor must again be bitwise exact. *)
  let b = spd () in
  let faults =
    Fault.plan ~obs:reg ~rate:0.5
      ~kinds:[ Fault.Transient; Fault.Crash_after_write; Fault.Sdc ]
      ~sleep:ignore ~seed:11 ()
  in
  Geomix_parallel.Pool.with_pool ~num_workers:0 (fun pool ->
    Chol.factorize ~pool ~faults ~retry:(Retry.immediate ()) ~integrity:guard
      ~obs:reg ~pmap b);
  let sdc_exact = if Tiled.rel_diff b ~reference = 0. then 1. else 0. in
  let open Bench_json in
  [
    metric ~units:"" "integrity.stamps" (counter "integrity.stamped");
    metric ~units:"" "integrity.verifications" (counter "integrity.verified");
    metric ~units:"B" "integrity.hashed_bytes" hashed;
    metric ~units:"" "integrity.verify_overhead_frac" overhead;
    metric ~units:"" ~direction:Higher_is_better "integrity_exact" exact;
    metric ~units:"" "integrity.sdc_detected" (counter "integrity.sdc_detected");
    metric ~units:"" "integrity.sdc_recovered"
      (counter "integrity.sdc_recovered");
    metric ~units:"" ~direction:Higher_is_better "integrity_sdc_exact" sdc_exact;
  ]

(* Critical-path fraction of the NT=24 Cholesky DAG under flop-weighted
   task durations: a pure function of the graph shape and Task.flops, so a
   change in either the DAG's dependence relations or the profiler's
   longest-path analysis moves it and trips the gate.  (Measured runs
   carry wall-clock noise; this uses the analytic weights instead.) *)
and profile_metrics () =
  let module Cdag = Geomix_runtime.Cholesky_dag in
  let module Task = Geomix_runtime.Task in
  let module Profile = Geomix_obs.Profile in
  let g = Cdag.create ~nt:24 in
  let n = Cdag.num_tasks g in
  let preds =
    Geomix_parallel.Dag_exec.predecessors ~num_tasks:n
      ~successors:(Cdag.successors g)
  in
  (* Serial layout: makespan = Σ durations, so cp_frac is the inherent
     sequential fraction of the flop-weighted DAG. *)
  let clock = ref 0. in
  let measures =
    List.init n (fun id ->
      let kind = Cdag.kind_of g id in
      let label = Task.name kind in
      let start = !clock in
      clock := !clock +. (Task.flops ~nb kind /. 1e12);
      {
        Profile.id;
        label;
        cls = Profile.class_of_label label;
        prec = "";
        worker = 0;
        start;
        stop = !clock;
      })
  in
  let p = Profile.analyze ~preds measures in
  let open Bench_json in
  [
    metric ~units:"" "profile.critical_path_frac" p.Profile.cp_frac;
    metric ~units:"" ~direction:Higher_is_better "profile.predicted_speedup_8w"
      (Profile.predicted_speedup p ~workers:8);
  ]

(* The range-driven autotuner's frontier on the fixed smoke instance
   (NT=8, nb=16, seed 42, default targets): how many points the Pareto
   front keeps, and the best advised-map STC volume relative to the
   norm-rule map among the points whose measured residual satisfies the
   differential-oracle bound.  The sweep is a pure function of the seed,
   so the gate cannot flap; the fraction dropping below 1 is the paper's
   data-motion claim extended to FP8 transfers. *)
and autotune_metrics () =
  let module Pe = Geomix_autotune.Pareto_explorer in
  let f = Pe.sweep ~nt:8 ~nb:16 ~seed:42 () in
  let motion_frac =
    List.fold_left
      (fun acc p ->
        if p.Pe.ok && p.Pe.bytes_stc_norm > 0. then
          Float.min acc (p.Pe.bytes_stc /. p.Pe.bytes_stc_norm)
        else acc)
      1. f.Pe.points
  in
  let open Bench_json in
  [
    metric ~units:"" ~direction:Higher_is_better "pareto_points"
      (float_of_int (List.length f.Pe.pareto));
    metric ~units:"" "advisor_vs_norm_motion_frac" motion_frac;
    metric ~units:"" ~direction:Higher_is_better "autotune_within_bound"
      (if Pe.all_within_bound f then 1. else 0.);
    metric ~units:"" ~direction:Higher_is_better "autotune_fp8_tiles"
      (float_of_int
         (List.fold_left (fun acc p -> max acc p.Pe.fp8_tiles) 0 f.Pe.points));
  ]
