(* Reproduction harness: one runner per table/figure of the paper's
   evaluation plus the ablations.  `dune exec bench/main.exe` runs all of
   them at laptop scale; `--full` switches to paper-scale parameters;
   `--only id1,id2` selects a subset.  The experiment index lives in
   DESIGN.md; measured-vs-paper comparisons are recorded in EXPERIMENTS.md.

   CI mode: `--smoke --json [PATH]` runs the deterministic smoke metric set
   (B_motion.smoke_metrics) and writes the BENCH_*.json artifact;
   `--compare BASELINE` additionally gates the run against a committed
   baseline (exit 1 when any metric regresses by more than the
   tolerance). *)

module Bench_json = Geomix_obs.Bench_json

let experiments : (string * string * (Common.scale -> unit)) list =
  [
    ("table1", "Table I: GPU peak performance", B_table1.run);
    ("fig1", "Fig 1: GEMM accuracy & performance", B_fig1.run);
    ("table2", "Table II: tile move / GEMM times on V100", B_table2.run);
    ("fig2_4", "Figs 2 & 4: precision / storage / communication maps", B_fig2_4.run);
    ("fig5", "Fig 5: 2D Monte-Carlo MLE boxplots", B_fig5.run);
    ("fig6", "Fig 6: 3D Monte-Carlo MLE boxplots", B_fig6.run);
    ("fig7", "Fig 7: precision composition per application", B_fig7.run);
    ("fig8", "Fig 8: STC vs TTC on one GPU", B_fig8.run);
    ("fig9", "Fig 9: H100 occupancy", B_fig9.run);
    ("fig10", "Fig 10: power & energy", B_fig10.run);
    ("fig11", "Fig 11: single-node multi-GPU", B_fig11.run);
    ("fig12", "Fig 12: Summit scalability", B_fig12.run);
    ("motion", "Data motion: STC vs TTC vs FP64 bytes on the wire", B_motion.run);
    ("ablations", "Ablations: STC accuracy, rule sweep, BF16 chain", B_ablation.run);
    ("kernels", "Bechamel kernel micro-benchmarks", B_kernels.run);
  ]

let usage () =
  print_endline
    "usage: main.exe [--full] [--only id1,id2,...] [--list]\n\
    \       main.exe --smoke [--json PATH] [--compare BASELINE] [--tolerance F]";
  print_endline "experiments:";
  List.iter (fun (id, descr, _) -> Printf.printf "  %-10s %s\n" id descr) experiments

(* The CI bench gate.  Always writes the artifact (uploaded by the
   workflow even on failure), then compares against the baseline if one
   was given. *)
let run_smoke ~json_path ~compare_with ~tolerance =
  let t0 = Unix.gettimeofday () in
  let metrics = B_motion.smoke_metrics () in
  let bench = Bench_json.make ~suite:"smoke" metrics in
  let path = Option.value json_path ~default:"BENCH_smoke.json" in
  Bench_json.write ~path bench;
  Printf.printf "bench smoke: %d metrics -> %s (%.1fs)\n" (List.length metrics) path
    (Unix.gettimeofday () -. t0);
  List.iter
    (fun m ->
      Printf.printf "  %-24s %s %s\n" m.Bench_json.name
        (Geomix_util.Table.fmt_float ~digits:5 m.Bench_json.value)
        m.Bench_json.units)
    metrics;
  match compare_with with
  | None -> 0
  | Some base_path -> (
    match Bench_json.read ~path:base_path with
    | Error msg ->
      Printf.eprintf "cannot read baseline %s: %s\n" base_path msg;
      1
    | Ok baseline ->
      (* The smoke run owns every baseline metric outside the serve / obs /
         ooc suites (which gate their own slices in b_serve / b_ooc): a
         baseline metric this run stops emitting is a hard failure, not a
         skip. *)
      let expect n =
        let owned_elsewhere p = String.starts_with ~prefix:p n in
        not
          (owned_elsewhere "serve_" || owned_elsewhere "obs_"
         || owned_elsewhere "ooc_")
      in
      let verdicts = Bench_json.compare ~expect ~tolerance ~baseline ~current:bench () in
      Printf.printf "\nregression gate vs %s (tolerance %.0f%%):\n%s" base_path
        (100. *. tolerance)
        (Bench_json.report_verdicts verdicts);
      if Bench_json.any_regressed verdicts then begin
        (match Bench_json.missing verdicts with
        | [] -> ()
        | names ->
          Printf.eprintf "bench gate: baseline metrics missing from this run: %s\n"
            (String.concat ", " names));
        Printf.eprintf "bench gate FAILED: metrics regressed beyond %.0f%%\n"
          (100. *. tolerance);
        1
      end
      else begin
        Printf.printf "bench gate passed.\n";
        0
      end)

let () =
  let full = ref false in
  let only = ref None in
  let smoke = ref false in
  let json_path = ref None in
  let compare_with = ref None in
  let tolerance = ref 0.20 in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest ->
      full := true;
      parse rest
    | "--only" :: ids :: rest ->
      only := Some (String.split_on_char ',' ids);
      parse rest
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--json" :: path :: rest when String.length path > 0 && path.[0] <> '-' ->
      json_path := Some path;
      parse rest
    | "--json" :: rest ->
      (* bare --json: default artifact name *)
      json_path := Some "BENCH_smoke.json";
      parse rest
    | "--compare" :: path :: rest ->
      compare_with := Some path;
      parse rest
    | "--tolerance" :: f :: rest ->
      (match float_of_string_opt f with
      | Some t when t >= 0. -> tolerance := t
      | _ ->
        Printf.eprintf "bad --tolerance %S\n" f;
        exit 2);
      parse rest
    | ("--list" | "--help" | "-h") :: _ ->
      usage ();
      exit 0
    | arg :: _ ->
      Printf.eprintf "unknown argument %S\n" arg;
      usage ();
      exit 2
  in
  parse (List.tl args);
  if !smoke then
    exit (run_smoke ~json_path:!json_path ~compare_with:!compare_with ~tolerance:!tolerance)
  else begin
    let scale = { Common.full = !full } in
    let selected =
      match !only with
      | None -> experiments
      | Some ids ->
        List.iter
          (fun id ->
            if not (List.exists (fun (i, _, _) -> i = id) experiments) then begin
              Printf.eprintf "unknown experiment %S\n" id;
              usage ();
              exit 2
            end)
          ids;
        List.filter (fun (id, _, _) -> List.mem id ids) experiments
    in
    Printf.printf
      "GeoMix reproduction harness — %s scale\n\
       Paper: Reducing Data Motion and Energy Consumption of Geospatial Modeling\n\
       Applications Using Automated Precision Conversion (CLUSTER 2023)\n"
      (if !full then "paper (--full)" else "reduced (default)");
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (_, _, run) ->
        let t = Unix.gettimeofday () in
        run scale;
        Printf.printf "  [%.1fs]\n%!" (Unix.gettimeofday () -. t))
      selected;
    Printf.printf "\nAll selected experiments completed in %.1fs.\n"
      (Unix.gettimeofday () -. t0)
  end
