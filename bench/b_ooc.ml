(* Out-of-core bench: spill traffic, re-read fraction and crash-resume
   exactness of the crash-consistent tile store (the ROADMAP item 1
   gate).

   One deterministic workload, three gated metrics:
   - ooc_spill_bytes: payload bytes written by spills under the mixed
     precision map — must sit strictly below the FP64-equivalent
     accounting (the paper's data-motion win carried to disk);
   - ooc_reread_frac: bytes re-read per byte spilled under the static
     farthest-next-use eviction order;
   - ooc_resume_exact: 1.0 iff a factorization crashed mid-run resumes
     from its manifest to a factor bitwise identical to the in-core run.

   `--json PATH` writes the BENCH artifact; `--compare BASELINE` gates the
   ooc_* slice of the shared baseline (missing metrics fail loudly). *)

module Bench_json = Geomix_obs.Bench_json
module Tiled = Geomix_tile.Tiled
module Chol = Geomix_core.Mp_cholesky
module Ooc = Geomix_core.Ooc_cholesky
module Store = Geomix_ooc.Store
module Pm = Geomix_core.Precision_map
module Fp = Geomix_precision.Fpformat

exception Crash

let nt = 8
let nb = 16
let n = nt * nb
let budget = 4 * nb * nb * 8

(* Past the initial input checkpoint (2·NT(NT+1)/2 + 1 = 73 disk ops for
   NT = 8) and into the panel updates, so the resume path exercises a real
   committed prefix rather than the no-manifest restart. *)
let kill_at = 150
let spd i j = (if i = j then 1.0 else 0.) +. exp (-0.05 *. float_of_int (abs (i - j)))
let init () = Tiled.init ~n ~nb spd
let pmap = Pm.two_level ~nt ~off_diag:Fp.Fp16_32

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_scratch f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "geomix-b-ooc-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let run ~json_path ~compare_with ~tolerance =
  with_scratch (fun scratch ->
    let reference = init () in
    Chol.factorize ~pmap reference;
    (* Uninterrupted out-of-core run: the traffic numbers. *)
    let st = Store.create ~budget ~dir:(Filename.concat scratch "run") () in
    let a = init () in
    Ooc.factorize ~store:st ~pmap a;
    let exact_run = Tiled.rel_diff a ~reference = 0. in
    let spill = Store.spilled_bytes st in
    let spill_fp64 = Store.spilled_bytes_fp64 st in
    let reread_frac =
      if spill = 0 then 0.
      else float_of_int (Store.reread_bytes st) /. float_of_int spill
    in
    Printf.printf
      "ooc bench: NT=%d nb=%d budget %d B — %d B spilled (%d B FP64-equivalent, %.1f%% saved), re-read frac %.3f\n"
      nt nb budget spill spill_fp64
      (100. *. (1. -. (float_of_int spill /. float_of_int spill_fp64)))
      reread_frac;
    List.iter
      (fun (s, b) -> Printf.printf "  %-10s %8d B spilled\n" (Fp.scalar_name s) b)
      (Store.spilled_by_scalar st);
    (* Crash mid-run at a fixed disk op, then resume from the manifest:
       the recovered factor must be bitwise identical to the in-core
       run. *)
    let kdir = Filename.concat scratch "crash" in
    let st2 = Store.create ~budget ~dir:kdir () in
    Store.set_op_hook st2 (Some (fun k -> if k >= kill_at then raise Crash));
    let crashed =
      match Ooc.factorize ~store:st2 ~pmap (init ()) with
      | () -> false
      | exception Crash -> true
    in
    let exact_resume =
      crashed
      &&
      let _, r, outcome = Ooc.resume ~budget ~dir:kdir ~init ~pmap () in
      (match outcome with
      | Ooc.Resumed { from_column; reshipped } ->
        Printf.printf "crash at disk op %d: resumed from column %d (%d reshipped)\n"
          kill_at from_column reshipped
      | Ooc.Restarted { quarantined } ->
        Printf.printf "crash at disk op %d: restarted (%d quarantined)\n"
          kill_at (List.length quarantined));
      Tiled.rel_diff r ~reference = 0.
    in
    let metrics =
      [
        Bench_json.metric ~units:"B" "ooc_spill_bytes" (float_of_int spill);
        Bench_json.metric "ooc_reread_frac" reread_frac;
        Bench_json.metric ~direction:Bench_json.Higher_is_better
          "ooc_resume_exact"
          (if exact_run && exact_resume then 1. else 0.);
      ]
    in
    let bench = Bench_json.make ~suite:"ooc" metrics in
    (match json_path with
    | None -> ()
    | Some path ->
      Bench_json.write ~path bench;
      Printf.printf "wrote %s\n" path);
    let failures = ref [] in
    let check cond msg = if not cond then failures := msg :: !failures in
    check exact_run "out-of-core factor diverged from the in-core run";
    check crashed "op hook never fired (workload too small?)";
    check exact_resume "resumed factor diverged from the in-core run";
    check (spill < spill_fp64)
      "narrowed spill records did not beat FP64-equivalent accounting";
    List.iter (fun m -> Printf.eprintf "ooc bench FAILED: %s\n" m) !failures;
    let gate_code =
      match compare_with with
      | None -> 0
      | Some base_path -> (
        match Bench_json.read ~path:base_path with
        | Error msg ->
          Printf.eprintf "cannot read baseline %s: %s\n" base_path msg;
          1
        | Ok baseline ->
          let verdicts =
            Bench_json.compare
              ~expect:(String.starts_with ~prefix:"ooc_")
              ~tolerance ~baseline ~current:bench ()
          in
          Printf.printf "\nregression gate vs %s (tolerance %.0f%%):\n%s"
            base_path (100. *. tolerance)
            (Bench_json.report_verdicts verdicts);
          if Bench_json.any_regressed verdicts then begin
            (match Bench_json.missing verdicts with
            | [] -> ()
            | names ->
              Printf.eprintf "ooc gate: baseline metrics missing: %s\n"
                (String.concat ", " names));
            Printf.eprintf "ooc gate FAILED: metrics regressed beyond %.0f%%\n"
              (100. *. tolerance);
            1
          end
          else begin
            Printf.printf "ooc gate passed.\n";
            0
          end)
    in
    if !failures <> [] then 1 else gate_code)

let () =
  let json_path = ref None in
  let compare_with = ref None in
  let tolerance = ref 0.20 in
  let rec parse = function
    | [] -> ()
    | "--json" :: path :: rest when String.length path > 0 && path.[0] <> '-' ->
      json_path := Some path;
      parse rest
    | "--json" :: rest ->
      json_path := Some "BENCH_ooc.json";
      parse rest
    | "--compare" :: path :: rest ->
      compare_with := Some path;
      parse rest
    | "--tolerance" :: f :: rest ->
      (match float_of_string_opt f with
      | Some t when t >= 0. -> tolerance := t
      | _ ->
        Printf.eprintf "bad --tolerance %S\n" f;
        exit 2);
      parse rest
    | ("--help" | "-h") :: _ ->
      print_endline
        "usage: b_ooc.exe [--json PATH] [--compare BASELINE] [--tolerance F]";
      exit 0
    | arg :: _ ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  exit
    (run ~json_path:!json_path ~compare_with:!compare_with ~tolerance:!tolerance)
