(* Service load generator: an in-process `geomix serve` instance plus N
   concurrent socket clients, measuring end-to-end request latency,
   throughput and the artifact-cache hit rate through the real
   length-prefixed protocol.

   CI mode (`--smoke`): 8 clients drive >= 200 requests over 4 problem
   shapes after a sequential warm-up pass, so the expected cache behaviour
   is deterministic (exactly one miss per shape, single-flight).  The
   acceptance checks are armed: every request must receive its reply
   (zero dropped), no error replies, a hit rate above 0.5, and Monte-Carlo
   progress frames must stream.  `--json` writes the BENCH_serve.json
   artifact; `--compare BASELINE` gates serve_p50_ms / serve_p99_ms /
   serve_cache_hit_frac against the committed baseline. *)

module Bench_json = Geomix_obs.Bench_json
module Pool = Geomix_parallel.Pool
module Server = Geomix_serve.Server
module Cache = Geomix_serve.Cache
module P = Geomix_serve.Protocol
module Covariance = Geomix_geostat.Covariance

type cfg = {
  smoke : bool;
  clients : int;
  requests : int; (* main-phase total, split across clients *)
  json_path : string option;
  compare_with : string option;
  tolerance : float;
}

let default_cfg =
  {
    smoke = false;
    clients = 8;
    requests = 200;
    json_path = None;
    compare_with = None;
    tolerance = 3.0;
  }

(* The four problem shapes of the workload: one cache artifact each. *)
let shapes ~n ~nb =
  [|
    { P.n; nb; u_req = 1e-6; family = Covariance.Sqexp; sigma2 = 1.0;
      beta = 0.1; nu = 0.5; nugget = Covariance.default_nugget;
      locs_seed = 42; data_seed = 0 };
    { P.n; nb; u_req = 1e-4; family = Covariance.Sqexp; sigma2 = 1.0;
      beta = 0.2; nu = 0.5; nugget = Covariance.default_nugget;
      locs_seed = 42; data_seed = 0 };
    { P.n; nb; u_req = 1e-6; family = Covariance.Matern; sigma2 = 1.0;
      beta = 0.1; nu = 0.5; nugget = Covariance.default_nugget;
      locs_seed = 7; data_seed = 0 };
    { P.n; nb; u_req = 1e-8; family = Covariance.Powexp; sigma2 = 1.5;
      beta = 0.15; nu = 1.0; nugget = Covariance.default_nugget;
      locs_seed = 7; data_seed = 0 };
  |]

(* {2 Socket client} *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let rec connect_retry path attempts =
  match connect path with
  | conn -> conn
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
    when attempts > 1 ->
    Unix.sleepf 0.05;
    connect_retry path (attempts - 1)

(* One request over an open connection: write the frame, read frames until
   the terminal reply for our id.  Returns the reply and the number of
   progress frames seen. *)
let roundtrip ic oc (req : P.request) =
  P.write_frame oc (P.request_to_json req);
  let progress = ref 0 in
  let rec await () =
    match P.read_frame ic with
    | Error msg -> Error msg
    | Ok json -> (
      match P.frame_of_json json with
      | Error msg -> Error msg
      | Ok (P.Progress { id; _ }) when id = req.P.id ->
        incr progress;
        await ()
      | Ok (P.Progress _) -> await ()
      | Ok (P.Reply { id; reply }) ->
        if id = req.P.id then Ok reply
        else Error (Printf.sprintf "reply for %S while awaiting %S" id req.P.id))
  in
  let r = await () in
  (r, !progress)

type outcome = {
  latency_s : float;
  ok : bool; (* a non-error reply *)
  cache_hit : bool;
  progress : int;
}

let cache_hit_of = function
  | P.Likelihood_r { cache_hit; _ }
  | P.Predict_r { cache_hit; _ }
  | P.Mc_r { cache_hit; _ } ->
    Some cache_hit
  | P.Pong | P.Shutdown_r | P.Error_r _ -> None

let issue ic oc req =
  let t0 = Unix.gettimeofday () in
  let r, progress = roundtrip ic oc req in
  let latency_s = Unix.gettimeofday () -. t0 in
  match r with
  | Error msg ->
    prerr_endline ("b_serve: transport error: " ^ msg);
    { latency_s; ok = false; cache_hit = false; progress }
  | Ok (P.Error_r { code; message }) ->
    Printf.eprintf "b_serve: %s error: %s\n%!" (P.error_code_name code) message;
    { latency_s; ok = false; cache_hit = false; progress }
  | Ok reply ->
    {
      latency_s;
      ok = true;
      cache_hit = Option.value (cache_hit_of reply) ~default:false;
      progress;
    }

(* The request mix, deterministic per (client, slot): mostly likelihoods,
   every 5th a Monte-Carlo batch, every 7th a kriging prediction. *)
let request_for ~shapes ~client ~slot =
  let k = (client + slot) mod Array.length shapes in
  let spec = { (shapes.(k)) with P.data_seed = (client * 1000) + slot } in
  let id = Printf.sprintf "c%d-%d" client slot in
  let priority =
    match slot mod 3 with 0 -> P.High | 1 -> P.Normal | _ -> P.Low
  in
  let payload =
    if slot mod 5 = 4 then P.Mc_batch { spec; replicates = 4 }
    else if slot mod 7 = 6 then
      P.Predict { spec; n_new = 8; pred_seed = 100 + slot }
    else P.Likelihood spec
  in
  { P.id; priority; timeout_s = None; payload }

(* {2 Harness} *)

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

let run cfg =
  let n, nb = if cfg.smoke then (64, 16) else (256, 32) in
  let shapes = shapes ~n ~nb in
  let path = Printf.sprintf "/tmp/geomix-serve-bench-%d.sock" (Unix.getpid ()) in
  let obs = Geomix_obs.Metrics.create () in
  let pool = Pool.create ~obs () in
  let server =
    Server.create ~obs ~max_inflight:4
      ~queue_capacity:(max 16 (2 * cfg.clients))
      ~cache_capacity:32 ~pool ()
  in
  let server_thread =
    Thread.create (fun () -> Server.serve_unix server ~path ()) ()
  in
  (* Readiness barrier: connect (with retry while the listener binds) and
     ping. *)
  let fd0, ic0, oc0 = connect_retry path 100 in
  (match
     roundtrip ic0 oc0
       { P.id = "ready"; priority = P.Normal; timeout_s = None; payload = P.Ping }
   with
  | Ok P.Pong, _ -> ()
  | _ -> failwith "b_serve: server did not answer ping");
  (* Warm-up: one request per shape, sequential, so the cache is populated
     with exactly one miss per shape before the measured phase. *)
  let warm =
    Array.to_list shapes
    |> List.mapi (fun i spec ->
           issue ic0 oc0
             {
               P.id = Printf.sprintf "warm-%d" i;
               priority = P.Normal;
               timeout_s = None;
               payload = P.Likelihood { spec with P.data_seed = 999 };
             })
  in
  let per_client = (cfg.requests + cfg.clients - 1) / cfg.clients in
  let results = Array.make (cfg.clients * per_client) None in
  let t_start = Unix.gettimeofday () in
  let client_thread c =
    let fd, ic, oc = connect path in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        for slot = 0 to per_client - 1 do
          let req = request_for ~shapes ~client:c ~slot in
          results.((c * per_client) + slot) <- Some (issue ic oc req)
        done)
  in
  let threads = List.init cfg.clients (fun c -> Thread.create client_thread c) in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t_start in
  (* Shut the server down over the wire and join it. *)
  (match
     roundtrip ic0 oc0
       {
         P.id = "stop";
         priority = P.Normal;
         timeout_s = None;
         payload = P.Shutdown;
       }
   with
  | Ok P.Shutdown_r, _ -> ()
  | _ -> prerr_endline "b_serve: shutdown handshake failed");
  (try Unix.close fd0 with Unix.Unix_error _ -> ());
  Thread.join server_thread;
  Pool.shutdown pool;
  (* {2 Aggregation} *)
  let main = Array.to_list results |> List.filter_map Fun.id in
  let sent = cfg.clients * per_client in
  let received = List.length main in
  let dropped = sent - received in
  let all = warm @ main in
  let errors = List.length (List.filter (fun o -> not o.ok) all) in
  let hits = List.length (List.filter (fun o -> o.ok && o.cache_hit) all) in
  let answered = List.length (List.filter (fun o -> o.ok) all) in
  let hit_frac =
    if answered = 0 then 0. else float_of_int hits /. float_of_int answered
  in
  let progress_frames = List.fold_left (fun acc o -> acc + o.progress) 0 all in
  let lat = List.map (fun o -> o.latency_s) main |> Array.of_list in
  Array.sort compare lat;
  let p50_ms = 1000. *. quantile lat 0.50 in
  let p99_ms = 1000. *. quantile lat 0.99 in
  let throughput = float_of_int received /. elapsed in
  let cstats = Cache.stats (Server.cache server) in
  Printf.printf
    "serve bench: %d clients, %d+%d requests (warm+main) over %s\n"
    cfg.clients (List.length warm) sent path;
  Printf.printf
    "  received %d  dropped %d  errors %d  progress frames %d\n"
    received dropped errors progress_frames;
  Printf.printf "  p50 %.2f ms  p99 %.2f ms  throughput %.1f req/s\n" p50_ms
    p99_ms throughput;
  Printf.printf "  cache: %d hits / %d misses / %d evictions (hit rate %.3f)\n"
    cstats.Cache.hits cstats.Cache.misses cstats.Cache.evictions hit_frac;
  let metrics =
    [
      Bench_json.metric ~units:"ms" "serve_p50_ms" p50_ms;
      Bench_json.metric ~units:"ms" "serve_p99_ms" p99_ms;
      Bench_json.metric ~units:"req/s" ~direction:Bench_json.Higher_is_better
        "serve_throughput_rps" throughput;
      Bench_json.metric ~direction:Bench_json.Higher_is_better
        "serve_cache_hit_frac" hit_frac;
      Bench_json.metric "serve_dropped" (float_of_int dropped);
      Bench_json.metric "serve_errors" (float_of_int errors);
      Bench_json.metric ~direction:Bench_json.Higher_is_better
        "serve_requests" (float_of_int (received + List.length warm));
    ]
  in
  let bench = Bench_json.make ~suite:"serve" metrics in
  (match cfg.json_path with
  | None -> ()
  | Some path ->
    Bench_json.write ~path bench;
    Printf.printf "wrote %s\n" path);
  (* Acceptance checks (always on; `--smoke` additionally pins the minimum
     request volume the CI job advertises). *)
  let failures = ref [] in
  let check cond msg = if not cond then failures := msg :: !failures in
  check (dropped = 0) "dropped responses";
  check (errors = 0) "error replies";
  check (hit_frac > 0.5) "cache hit rate at or below 0.5";
  check (progress_frames > 0) "no Monte-Carlo progress frames streamed";
  if cfg.smoke then check (received >= 200) "fewer than 200 main-phase requests";
  List.iter (fun m -> Printf.eprintf "serve bench FAILED: %s\n" m) !failures;
  let gate_code =
    match cfg.compare_with with
    | None -> 0
    | Some base_path -> (
      match Bench_json.read ~path:base_path with
      | Error msg ->
        Printf.eprintf "cannot read baseline %s: %s\n" base_path msg;
        1
      | Ok baseline ->
        let verdicts =
          Bench_json.compare ~tolerance:cfg.tolerance ~baseline ~current:bench
        in
        Printf.printf "\nregression gate vs %s (tolerance %.0f%%):\n%s"
          base_path (100. *. cfg.tolerance)
          (Bench_json.report_verdicts verdicts);
        if Bench_json.any_regressed verdicts then begin
          Printf.eprintf "serve gate FAILED: metrics regressed beyond %.0f%%\n"
            (100. *. cfg.tolerance);
          1
        end
        else begin
          Printf.printf "serve gate passed.\n";
          0
        end)
  in
  if !failures <> [] then 1 else gate_code

let usage () =
  print_endline
    "usage: b_serve.exe [--smoke] [--clients N] [--requests N] [--json PATH]\n\
    \       [--compare BASELINE] [--tolerance F]"

let () =
  let rec parse cfg = function
    | [] -> cfg
    | "--smoke" :: rest -> parse { cfg with smoke = true } rest
    | "--clients" :: v :: rest ->
      parse { cfg with clients = int_of_string v } rest
    | "--requests" :: v :: rest ->
      parse { cfg with requests = int_of_string v } rest
    | "--json" :: v :: rest -> parse { cfg with json_path = Some v } rest
    | "--compare" :: v :: rest -> parse { cfg with compare_with = Some v } rest
    | "--tolerance" :: v :: rest ->
      parse { cfg with tolerance = float_of_string v } rest
    | ("--help" | "-h") :: _ ->
      usage ();
      exit 0
    | arg :: _ ->
      Printf.eprintf "unknown argument %s\n" arg;
      usage ();
      exit 2
  in
  let cfg = parse default_cfg (List.tl (Array.to_list Sys.argv)) in
  exit (run cfg)
