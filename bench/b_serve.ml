(* Service load generator: an in-process `geomix serve` instance plus N
   concurrent socket clients, measuring end-to-end request latency,
   throughput and the artifact-cache hit rate through the real
   length-prefixed protocol.

   CI mode (`--smoke`): 8 clients drive >= 200 requests over 4 problem
   shapes after a sequential warm-up pass, so the expected cache behaviour
   is deterministic (exactly one miss per shape, single-flight).  The
   acceptance checks are armed: every request must receive its reply
   (zero dropped), no error replies, a hit rate above 0.5, and Monte-Carlo
   progress frames must stream.  `--json` writes the BENCH_serve.json
   artifact; `--compare BASELINE` gates serve_p50_ms / serve_p99_ms /
   serve_cache_hit_frac against the committed baseline.

   Chaos mode (`--chaos`, seeded by `--chaos-seed`): the same mixed
   traffic hammers a server whose execution stack runs under a seeded
   fault plan — transient kernel faults, silent data corruption and
   forced pivot failures — with bounded retry, per-request integrity
   guards and precision-escalation recovery armed.  The gate asserts the
   ISSUE's chaos contract: the server never crashes, every request
   resolves to a typed status (clean / escalated / recovered / Saturated
   / deadline — nothing lands in Internal or a transport error), and
   every reply whose status claims clean numbers (Clean or
   Corrupt_recovered) is bitwise-identical to a fault-free reference
   evaluation of the same request.  Escalation invalidates cache
   entries, so the hit-rate check is not armed under chaos. *)

module Bench_json = Geomix_obs.Bench_json
module Metrics = Geomix_obs.Metrics
module Expo = Geomix_obs.Expo
module Span = Geomix_obs.Span
module Pool = Geomix_parallel.Pool
module Server = Geomix_serve.Server
module Cache = Geomix_serve.Cache
module P = Geomix_serve.Protocol
module Fault = Geomix_fault.Fault
module Retry = Geomix_fault.Retry
module Covariance = Geomix_geostat.Covariance

type cfg = {
  smoke : bool;
  chaos : bool;
  chaos_seed : int;
  trace : bool;  (* per-request spans at full sampling + scrape checks *)
  clients : int;
  requests : int; (* main-phase total, split across clients *)
  json_path : string option;
  compare_with : string option;
  scrape_out : string option;    (* save the Prometheus exposition here *)
  telemetry_out : string option; (* rolling JSONL snapshot path *)
  tolerance : float;
}

let default_cfg =
  {
    smoke = false;
    chaos = false;
    chaos_seed = 1;
    trace = false;
    clients = 8;
    requests = 200;
    json_path = None;
    compare_with = None;
    scrape_out = None;
    telemetry_out = None;
    tolerance = 3.0;
  }

(* The four problem shapes of the workload: one cache artifact each. *)
let shapes ~n ~nb =
  [|
    { P.n; nb; u_req = 1e-6; family = Covariance.Sqexp; sigma2 = 1.0;
      beta = 0.1; nu = 0.5; nugget = Covariance.default_nugget;
      locs_seed = 42; data_seed = 0 };
    { P.n; nb; u_req = 1e-4; family = Covariance.Sqexp; sigma2 = 1.0;
      beta = 0.2; nu = 0.5; nugget = Covariance.default_nugget;
      locs_seed = 42; data_seed = 0 };
    { P.n; nb; u_req = 1e-6; family = Covariance.Matern; sigma2 = 1.0;
      beta = 0.1; nu = 0.5; nugget = Covariance.default_nugget;
      locs_seed = 7; data_seed = 0 };
    { P.n; nb; u_req = 1e-8; family = Covariance.Powexp; sigma2 = 1.5;
      beta = 0.15; nu = 1.0; nugget = Covariance.default_nugget;
      locs_seed = 7; data_seed = 0 };
  |]

(* {2 Socket client} *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let rec connect_retry path attempts =
  match connect path with
  | conn -> conn
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
    when attempts > 1 ->
    Unix.sleepf 0.05;
    connect_retry path (attempts - 1)

(* One request over an open connection: write the frame, read frames until
   the terminal reply for our id.  Returns the reply, the number of
   progress frames seen, and the telemetry footer when the server attached
   one (traced requests only). *)
let roundtrip ic oc (req : P.request) =
  P.write_frame oc (P.request_to_json req);
  let progress = ref 0 in
  let footer = ref None in
  let rec await () =
    match P.read_frame ic with
    | Error msg -> Error msg
    | Ok json -> (
      match P.frame_of_json json with
      | Error msg -> Error msg
      | Ok (P.Progress { id; _ }) when id = req.P.id ->
        incr progress;
        await ()
      | Ok (P.Progress _) -> await ()
      | Ok (P.Reply { id; reply; footer = f }) ->
        if id = req.P.id then begin
          footer := f;
          Ok reply
        end
        else Error (Printf.sprintf "reply for %S while awaiting %S" id req.P.id))
  in
  let r = await () in
  (r, !progress, !footer)

(* How a request resolved, after saturation retries.  Everything here is
   a *typed* resolution except [Transport] and [Err_other] — those are
   the chaos gate's definition of an unaccounted failure. *)
type klass =
  | Ok_clean
  | Ok_escalated
  | Ok_recovered
  | Ok_indefinite
  | Err_saturated  (** still saturated after bounded retries *)
  | Err_deadline
  | Err_other      (** Internal / Bad_request — never expected *)
  | Transport

let klass_ok = function
  | Ok_clean | Ok_escalated | Ok_recovered | Ok_indefinite -> true
  | Err_saturated | Err_deadline | Err_other | Transport -> false

type outcome = {
  latency_s : float;
  klass : klass;
  cache_hit : bool;
  progress : int;
  sat_retries : int;  (** Saturated replies absorbed by client backoff *)
  bitwise_ok : bool;  (** clean-claiming reply matched the reference *)
  footer : P.footer option;  (** telemetry footer of the terminal reply *)
}

let cache_hit_of = function
  | P.Likelihood_r { cache_hit; _ }
  | P.Predict_r { cache_hit; _ }
  | P.Mc_r { cache_hit; _ } ->
    Some cache_hit
  | P.Pong | P.Health_r _ | P.Stats_r _ | P.Shutdown_r | P.Error_r _ -> None

let status_of = function
  | P.Likelihood_r { status; _ } | P.Mc_r { status; _ } -> Some status
  | P.Predict_r _ -> Some P.Clean (* prediction has no factorization status *)
  | P.Pong | P.Health_r _ | P.Stats_r _ | P.Shutdown_r | P.Error_r _ -> None

(* Client-side saturation backoff: a `Retry`-style policy whose delays
   come from [Retry.delay_for] with a per-request salt, so a herd of
   clients shed at the same instant decorrelates instead of re-colliding
   on the admission queue.  [retryable] is irrelevant (we match on the
   Saturated reply, not an exception); delays are real sleeps. *)
let saturation_policy =
  {
    Retry.max_attempts = 6;
    base_delay = 0.004;
    factor = 2.0;
    max_delay = 0.1;
    jitter = 0.5;
    sleep = Unix.sleepf;
    retryable = (fun _ -> false);
  }

(* Bitwise comparison of the numeric payload of two replies — statuses
   and cache flags are allowed to differ (the faulted run reports how it
   recovered; the reference is always Clean). *)
let f64_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let arr_eq a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if not (f64_eq x b.(i)) then ok := false) a;
  !ok

let numbers_match a b =
  match (a, b) with
  | P.Likelihood_r x, P.Likelihood_r y ->
    f64_eq x.loglik y.loglik
    && f64_eq x.log_det y.log_det
    && f64_eq x.quad_form y.quad_form
  | P.Mc_r x, P.Mc_r y ->
    arr_eq x.logliks y.logliks && f64_eq x.mean_loglik y.mean_loglik
  | P.Predict_r x, P.Predict_r y ->
    arr_eq x.mean y.mean && arr_eq x.variance y.variance
  | _ -> false

(* Issue one request: bounded decorrelated-jitter retry on Saturated,
   then classify the resolution.  [verify] re-evaluates clean-claiming
   replies against the fault-free reference (chaos mode only). *)
let issue ?(verify = fun _ _ -> true) ic oc req =
  let t0 = Unix.gettimeofday () in
  let rec go attempt retries =
    let r, progress, footer = roundtrip ic oc req in
    match r with
    | Ok (P.Error_r { code = P.Saturated; _ })
      when attempt < saturation_policy.Retry.max_attempts ->
      saturation_policy.Retry.sleep
        (Retry.delay_for
           ~salt:(Hashtbl.hash req.P.id)
           saturation_policy ~attempt);
      go (attempt + 1) (retries + 1)
    | r -> (r, progress, footer, retries)
  in
  let r, progress, footer, sat_retries = go 1 0 in
  let latency_s = Unix.gettimeofday () -. t0 in
  let mk klass cache_hit bitwise_ok =
    { latency_s; klass; cache_hit; progress; sat_retries; bitwise_ok; footer }
  in
  match r with
  | Error msg ->
    prerr_endline ("b_serve: transport error: " ^ msg);
    mk Transport false true
  | Ok (P.Error_r { code = P.Saturated; _ }) -> mk Err_saturated false true
  | Ok (P.Error_r { code = P.Deadline_exceeded; _ }) ->
    mk Err_deadline false true
  | Ok (P.Error_r { code; message }) ->
    Printf.eprintf "b_serve: %s error: %s\n%!" (P.error_code_name code) message;
    mk Err_other false true
  | Ok reply ->
    let hit = Option.value (cache_hit_of reply) ~default:false in
    let klass, check_bits =
      match status_of reply with
      | Some P.Clean | None -> (Ok_clean, true)
      | Some (P.Corrupt_recovered _) -> (Ok_recovered, true)
      | Some (P.Escalated _) -> (Ok_escalated, false)
      | Some P.Indefinite -> (Ok_indefinite, false)
    in
    let bitwise_ok = (not check_bits) || verify req reply in
    if not bitwise_ok then
      Printf.eprintf
        "b_serve: CORRUPT ESCAPE: %s reply %S diverged from fault-free \
         reference\n\
         %!"
        (match klass with Ok_recovered -> "recovered" | _ -> "clean")
        req.P.id;
    mk klass hit bitwise_ok

(* The request mix, deterministic per (client, slot): mostly likelihoods,
   every 5th a Monte-Carlo batch, every 7th a kriging prediction. *)
let request_for ~shapes ~client ~slot =
  let k = (client + slot) mod Array.length shapes in
  let spec = { (shapes.(k)) with P.data_seed = (client * 1000) + slot } in
  let id = Printf.sprintf "c%d-%d" client slot in
  let priority =
    match slot mod 3 with 0 -> P.High | 1 -> P.Normal | _ -> P.Low
  in
  let payload =
    if slot mod 5 = 4 then P.Mc_batch { spec; replicates = 4 }
    else if slot mod 7 = 6 then
      P.Predict { spec; n_new = 8; pred_seed = 100 + slot }
    else P.Likelihood spec
  in
  { P.id; priority; timeout_s = None; payload }

(* {2 Harness} *)

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

let count f l = List.length (List.filter f l)

let run cfg =
  let n, nb = if cfg.smoke || cfg.chaos then (64, 16) else (256, 32) in
  let shapes = shapes ~n ~nb in
  let path = Printf.sprintf "/tmp/geomix-serve-bench-%d.sock" (Unix.getpid ()) in
  let obs = Geomix_obs.Metrics.create () in
  let pool = Pool.create ~obs () in
  (* The chaos plan injects inside the server's factorization stack only
     (sites exec/sdc/pivot through Mp_cholesky) — decisions are pure
     functions of the seed, so a failing run replays bit for bit. *)
  let faults =
    if cfg.chaos then
      Some
        (Fault.plan ~obs ~rate:0.2
           ~kinds:[ Fault.Transient; Fault.Sdc ]
           ~pivot_rate:0.05 ~seed:cfg.chaos_seed ())
    else None
  in
  let retry = if cfg.chaos then Some (Retry.immediate ~max_attempts:3 ()) else None in
  let server =
    Server.create ~obs ~max_inflight:4
      ~queue_capacity:(max 16 (2 * cfg.clients))
      ~cache_capacity:32 ?faults ?retry ~integrity:cfg.chaos
      ~trace_sample:(if cfg.trace then 1.0 else 0.)
      ~pool ()
  in
  (* Fault-free reference for the bitwise gate: its own pool and cache,
     no faults, no guards — `Server.handle` gives the ground truth the
     chaos server's clean-claiming replies must reproduce exactly. *)
  let ref_ctx =
    if cfg.chaos then begin
      let ref_pool = Pool.create () in
      let ref_server =
        Server.create ~max_inflight:(max 8 cfg.clients) ~queue_capacity:64
          ~cache_capacity:32 ~pool:ref_pool ()
      in
      Some (ref_pool, ref_server)
    end
    else None
  in
  let verify =
    match ref_ctx with
    | None -> fun _ _ -> true
    | Some (_, ref_server) ->
      fun req reply -> numbers_match reply (Server.handle ref_server req)
  in
  let stats_path = if cfg.trace then Some (path ^ ".stats") else None in
  let telemetry =
    Option.map (fun p -> Expo.snapshotter ~path:p ()) cfg.telemetry_out
  in
  let serve_outcome = ref Server.Served in
  let server_thread =
    Thread.create
      (fun () ->
        serve_outcome :=
          Server.serve_unix server ~path ?stats_path ?telemetry ())
      ()
  in
  (* Readiness barrier: connect (with retry while the listener binds) and
     ping. *)
  let fd0, ic0, oc0 = connect_retry path 100 in
  (match
     roundtrip ic0 oc0
       { P.id = "ready"; priority = P.Normal; timeout_s = None; payload = P.Ping }
   with
  | Ok P.Pong, _, _ -> ()
  | _ -> failwith "b_serve: server did not answer ping");
  (* Warm-up: one request per shape, sequential, so the cache is populated
     with exactly one miss per shape before the measured phase. *)
  let warm =
    Array.to_list shapes
    |> List.mapi (fun i spec ->
           issue ~verify ic0 oc0
             {
               P.id = Printf.sprintf "warm-%d" i;
               priority = P.Normal;
               timeout_s = None;
               payload = P.Likelihood { spec with P.data_seed = 999 };
             })
  in
  let per_client = (cfg.requests + cfg.clients - 1) / cfg.clients in
  let results = Array.make (cfg.clients * per_client) None in
  let t_start = Unix.gettimeofday () in
  let client_thread c =
    let fd, ic, oc = connect path in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        for slot = 0 to per_client - 1 do
          let req = request_for ~shapes ~client:c ~slot in
          results.((c * per_client) + slot) <- Some (issue ~verify ic oc req)
        done)
  in
  let threads = List.init cfg.clients (fun c -> Thread.create client_thread c) in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t_start in
  (* Probe health over the wire, then shut the server down and join it —
     the join returning at all is the zero-crash assertion. *)
  let health =
    match
      roundtrip ic0 oc0
        {
          P.id = "health";
          priority = P.Normal;
          timeout_s = None;
          payload = P.Health;
        }
    with
    | Ok (P.Health_r h), _, _ -> Some h
    | _ -> None
  in
  (* Over-the-wire scrape through the framed protocol: one Stats request
     in each format.  The Prometheus body must lint clean and parse, and
     its counter samples must round-trip against the live registry. *)
  let stats_prom =
    match
      roundtrip ic0 oc0
        {
          P.id = "stats-prom";
          priority = P.Normal;
          timeout_s = None;
          payload = P.Stats P.Stats_prom;
        }
    with
    | Ok (P.Stats_r { format = P.Stats_prom; body }), _, _ -> Some body
    | _ -> None
  in
  let stats_json_ok =
    match
      roundtrip ic0 oc0
        {
          P.id = "stats-json";
          priority = P.Normal;
          timeout_s = None;
          payload = P.Stats P.Stats_json;
        }
    with
    | Ok (P.Stats_r { format = P.Stats_json; body }), _, _ -> (
      match Geomix_obs.Jsonlite.of_string body with
      | Ok j -> Result.is_ok (Metrics.of_json j)
      | Error _ -> false)
    | _ -> false
  in
  (* And through the dedicated scrape listener: connect, read the whole
     exposition, EOF.  This is the path a real Prometheus poll takes. *)
  let raw_scrape =
    match stats_path with
    | None -> None
    | Some sp -> (
      try
        let fd, sic, _ = connect sp in
        let buf = Buffer.create 4096 in
        (try
           while true do
             Buffer.add_channel buf sic 1
           done
         with End_of_file -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Some (Buffer.contents buf)
      with Unix.Unix_error _ | Sys_error _ -> None)
  in
  let shutdown_ok =
    match
      roundtrip ic0 oc0
        {
          P.id = "stop";
          priority = P.Normal;
          timeout_s = None;
          payload = P.Shutdown;
        }
    with
    | Ok P.Shutdown_r, _, _ -> true
    | _ ->
      prerr_endline "b_serve: shutdown handshake failed";
      false
  in
  (try Unix.close fd0 with Unix.Unix_error _ -> ());
  Thread.join server_thread;
  Pool.shutdown pool;
  (match ref_ctx with Some (ref_pool, _) -> Pool.shutdown ref_pool | None -> ());
  Option.iter Expo.close telemetry;
  (* The registry is quiescent from here on: every aggregate below reads
     one final snapshot. *)
  let final_snap = Metrics.snapshot obs in
  let counter_of name =
    match Metrics.find final_snap name with
    | Some (Metrics.Counter c) -> c
    | _ -> 0
  in
  (* {2 Aggregation} *)
  let main = Array.to_list results |> List.filter_map Fun.id in
  let sent = cfg.clients * per_client in
  let received = List.length main in
  let dropped = sent - received in
  let all = warm @ main in
  let errors = count (fun o -> not (klass_ok o.klass)) all in
  let hits = count (fun o -> klass_ok o.klass && o.cache_hit) all in
  let answered = count (fun o -> klass_ok o.klass) all in
  let hit_frac =
    if answered = 0 then 0. else float_of_int hits /. float_of_int answered
  in
  let escalated = count (fun o -> o.klass = Ok_escalated) all in
  let recovered = count (fun o -> o.klass = Ok_recovered) all in
  let indefinite = count (fun o -> o.klass = Ok_indefinite) all in
  let saturated = count (fun o -> o.klass = Err_saturated) all in
  let deadline = count (fun o -> o.klass = Err_deadline) all in
  let unaccounted =
    count (fun o -> o.klass = Err_other || o.klass = Transport) all
  in
  let bitwise_failures = count (fun o -> not o.bitwise_ok) all in
  let sat_retries = List.fold_left (fun acc o -> acc + o.sat_retries) 0 all in
  let shed = match health with Some h -> h.P.shed | None -> 0 in
  let recovered_frac =
    if answered = 0 then 0. else float_of_int recovered /. float_of_int answered
  in
  let shed_frac = float_of_int shed /. float_of_int (max 1 sent) in
  let injected = match faults with Some f -> Fault.injected f | None -> 0 in
  let pivots = match faults with Some f -> Fault.pivots f | None -> 0 in
  let progress_frames = List.fold_left (fun acc o -> acc + o.progress) 0 all in
  let lat = List.map (fun o -> o.latency_s) main |> Array.of_list in
  Array.sort compare lat;
  let p50_ms = 1000. *. quantile lat 0.50 in
  let p99_ms = 1000. *. quantile lat 0.99 in
  let throughput = float_of_int received /. elapsed in
  let cstats = Cache.stats (Server.cache server) in
  (* {2 Trace-mode accounting}

     Conservation: at full sampling every executed request carries a
     footer, and the footers' summed shipped-byte counts must equal the
     registry's aggregate RAW-edge accounting bitwise — same call site,
     same values, different ledgers. *)
  let footers = List.filter_map (fun o -> o.footer) all in
  let footer_bytes_stc =
    List.fold_left (fun acc (f : P.footer) -> acc + f.P.f_span.Span.s_bytes_stc)
      0 footers
  in
  let footer_bytes_fp64 =
    List.fold_left
      (fun acc (f : P.footer) -> acc + f.P.f_span.Span.s_bytes_fp64)
      0 footers
  in
  let shipped_bytes = counter_of "cholesky.shipped_bytes" in
  let shipped_fp64 = counter_of "cholesky.shipped_bytes_fp64" in
  let missing_footers =
    if not cfg.trace then 0
    else count (fun o -> klass_ok o.klass && o.footer = None) main
  in
  (* Tracing overhead: median in-process request latency of a traced
     server over an untraced one, same shape, warm cache (first request
     per server is the one miss; the median is unaffected). *)
  let obs_overhead_frac =
    if not cfg.trace then None
    else begin
      let median_latency traced =
        let p = Pool.create () in
        let s =
          Server.create ~obs:(Metrics.create ()) ~max_inflight:2
            ~trace_sample:(if traced then 1.0 else 0.)
            ~pool:p ()
        in
        let m = 11 in
        let lat =
          Array.init m (fun i ->
              let req =
                {
                  P.id = Printf.sprintf "ovh%c-%d" (if traced then 't' else 'u') i;
                  priority = P.Normal;
                  timeout_s = None;
                  payload =
                    P.Likelihood { (shapes.(0)) with P.data_seed = 500 + i };
                }
              in
              let t0 = Unix.gettimeofday () in
              (match Server.handle s req with
              | P.Likelihood_r _ -> ()
              | _ -> failwith "b_serve: overhead probe did not factorize");
              Unix.gettimeofday () -. t0)
        in
        Pool.shutdown p;
        Array.sort compare lat;
        lat.(m / 2)
      in
      let plain = median_latency false in
      let traced = median_latency true in
      Some (if plain <= 0. then 0. else Float.max 0. ((traced -. plain) /. plain))
    end
  in
  (* Scrape validation: the exposition must lint clean, parse, and its
     counter samples must round-trip against the (now quiescent)
     registry — [serve.requests] only moves on admission-gated payloads,
     none of which ran after the scrape. *)
  let scrape_ok body =
    Expo.lint body = []
    &&
    match Expo.parse body with
    | Error _ -> false
    | Ok samples -> (
      match Expo.find samples "geomix_serve_requests" with
      | Some s -> s.Expo.value = float_of_int (counter_of "serve.requests")
      | None -> false)
  in
  (match (cfg.scrape_out, raw_scrape, stats_prom) with
  | Some out, Some body, _ | Some out, None, Some body ->
    let oc = open_out out in
    output_string oc body;
    close_out oc;
    Printf.printf "wrote %s\n" out
  | _ -> ());
  Printf.printf
    "serve bench%s: %d clients, %d+%d requests (warm+main) over %s\n"
    (if cfg.chaos then Printf.sprintf " [chaos seed %d]" cfg.chaos_seed else "")
    cfg.clients (List.length warm) sent path;
  Printf.printf
    "  received %d  dropped %d  errors %d  progress frames %d\n"
    received dropped errors progress_frames;
  if cfg.chaos then begin
    Printf.printf
      "  chaos: %d injected (%d pivots)  statuses: clean %d  escalated %d  \
       recovered %d  indefinite %d\n"
      injected pivots
      (count (fun o -> o.klass = Ok_clean) all)
      escalated recovered indefinite;
    Printf.printf
      "  shedding: %d shed by brown-out, %d saturated replies retried away, \
       %d final saturated, %d deadline\n"
      shed sat_retries saturated deadline
  end;
  Printf.printf "  p50 %.2f ms  p99 %.2f ms  throughput %.1f req/s\n" p50_ms
    p99_ms throughput;
  Printf.printf "  cache: %d hits / %d misses / %d evictions (hit rate %.3f)\n"
    cstats.Cache.hits cstats.Cache.misses cstats.Cache.evictions hit_frac;
  if cfg.trace then begin
    Printf.printf
      "  trace: %d footers  bytes STC %d / FP64-equivalent %d (registry %d / \
       %d)\n"
      (List.length footers) footer_bytes_stc footer_bytes_fp64 shipped_bytes
      shipped_fp64;
    (match obs_overhead_frac with
    | Some f -> Printf.printf "  trace overhead: %.4f of untraced latency\n" f
    | None -> ())
  end;
  (* End-of-run serve metrics dump: every serve.* counter/gauge plus the
     latency histogram, straight from the registry — what an operator
     reconciles the scrape against. *)
  print_endline "  serve metrics:";
  List.iter
    (fun (name, v) ->
      if String.length name >= 6 && String.sub name 0 6 = "serve." then
        match v with
        | Metrics.Counter c -> Printf.printf "    %-32s %d\n" name c
        | Metrics.Gauge g -> Printf.printf "    %-32s %g\n" name g
        | Metrics.Histogram h ->
          Printf.printf "    %-32s count=%d p50=%.4g p99=%.4g\n" name
            h.Metrics.count
            (Metrics.quantile h 0.50)
            (Metrics.quantile h 0.99))
    final_snap;
  let metrics =
    [
      Bench_json.metric ~units:"ms" "serve_p50_ms" p50_ms;
      Bench_json.metric ~units:"ms" "serve_p99_ms" p99_ms;
      Bench_json.metric ~units:"req/s" ~direction:Bench_json.Higher_is_better
        "serve_throughput_rps" throughput;
      Bench_json.metric ~direction:Bench_json.Higher_is_better
        "serve_cache_hit_frac" hit_frac;
      Bench_json.metric "serve_dropped" (float_of_int dropped);
      Bench_json.metric "serve_errors" (float_of_int errors);
      Bench_json.metric ~direction:Bench_json.Higher_is_better
        "serve_requests" (float_of_int (received + List.length warm));
      Bench_json.metric "serve_recovered_frac" recovered_frac;
      Bench_json.metric "serve_shed_frac" shed_frac;
    ]
    @
    match obs_overhead_frac with
    | Some f -> [ Bench_json.metric "obs_overhead_frac" f ]
    | None -> []
  in
  let bench = Bench_json.make ~suite:"serve" metrics in
  (match cfg.json_path with
  | None -> ()
  | Some path ->
    Bench_json.write ~path bench;
    Printf.printf "wrote %s\n" path);
  (* Acceptance checks (always on; `--smoke` additionally pins the minimum
     request volume the CI job advertises).  Chaos swaps the error checks
     for the chaos contract: zero crashes, zero corrupt escapes, every
     failure typed. *)
  let failures = ref [] in
  let check cond msg = if not cond then failures := msg :: !failures in
  check (dropped = 0) "dropped responses";
  check shutdown_ok "shutdown handshake failed (server crashed?)";
  check (!serve_outcome = Server.Served) "server run did not end cleanly";
  if cfg.chaos then begin
    check (injected > 0) "chaos plan injected nothing (gate not exercised)";
    check (unaccounted = 0)
      "unaccounted failures (Internal / Bad_request / transport)";
    check (bitwise_failures = 0)
      "corrupt escape: clean-claiming reply diverged from fault-free reference";
    check (indefinite = 0) "indefinite status on an SPD workload"
  end
  else begin
    check (errors = 0) "error replies";
    check (hit_frac > 0.5) "cache hit rate at or below 0.5"
  end;
  check (progress_frames > 0) "no Monte-Carlo progress frames streamed";
  if cfg.smoke then check (received >= 200) "fewer than 200 main-phase requests";
  if cfg.trace then begin
    check (missing_footers = 0)
      "traced request resolved without a telemetry footer";
    if dropped = 0 && unaccounted = 0 then begin
      check
        (footer_bytes_stc = shipped_bytes)
        (Printf.sprintf
           "span/counter conservation broken: footers %d bytes, registry %d"
           footer_bytes_stc shipped_bytes);
      check
        (footer_bytes_fp64 = shipped_fp64)
        "span/counter conservation broken on the FP64-equivalent ledger"
    end;
    check (footer_bytes_stc > 0) "traced run moved no attributed bytes";
    check stats_json_ok "Stats(json) body did not decode as a registry snapshot";
    (match stats_prom with
    | None -> check false "no Stats(prom) reply"
    | Some body -> check (scrape_ok body) "Stats(prom) body failed lint/round-trip");
    (match raw_scrape with
    | None -> check false "scrape listener produced no exposition"
    | Some body ->
      check (scrape_ok body) "scrape-listener exposition failed lint/round-trip");
    (match obs_overhead_frac with
    | Some f ->
      check (f <= 0.05)
        (Printf.sprintf "tracing overhead %.4f exceeds 0.05 budget" f)
    | None -> ());
    match cfg.telemetry_out with
    | None -> ()
    | Some p ->
      check
        (Sys.file_exists p
        &&
        let ic = open_in p in
        let len = in_channel_length ic in
        close_in ic;
        len > 0)
        "telemetry snapshot file missing or empty"
  end;
  List.iter (fun m -> Printf.eprintf "serve bench FAILED: %s\n" m) !failures;
  let gate_code =
    match cfg.compare_with with
    | None -> 0
    | Some base_path -> (
      match Bench_json.read ~path:base_path with
      | Error msg ->
        Printf.eprintf "cannot read baseline %s: %s\n" base_path msg;
        1
      | Ok baseline ->
        (* This gate owns the serve_* slice of the shared baseline: a
           serve metric that stops being emitted fails loudly instead of
           silently shrinking the gate. *)
        let verdicts =
          Bench_json.compare
            ~expect:(String.starts_with ~prefix:"serve_")
            ~tolerance:cfg.tolerance ~baseline ~current:bench ()
        in
        Printf.printf "\nregression gate vs %s (tolerance %.0f%%):\n%s"
          base_path (100. *. cfg.tolerance)
          (Bench_json.report_verdicts verdicts);
        if Bench_json.any_regressed verdicts then begin
          (match Bench_json.missing verdicts with
          | [] -> ()
          | names ->
            Printf.eprintf "serve gate: baseline metrics missing: %s\n"
              (String.concat ", " names));
          Printf.eprintf "serve gate FAILED: metrics regressed beyond %.0f%%\n"
            (100. *. cfg.tolerance);
          1
        end
        else begin
          Printf.printf "serve gate passed.\n";
          0
        end)
  in
  if !failures <> [] then 1 else gate_code

let usage () =
  print_endline
    "usage: b_serve.exe [--smoke] [--chaos] [--chaos-seed N] [--clients N]\n\
    \       [--requests N] [--json PATH] [--compare BASELINE] [--tolerance F]\n\
    \       [--trace] [--scrape-out PATH] [--telemetry-out PATH]"

let () =
  let rec parse cfg = function
    | [] -> cfg
    | "--smoke" :: rest -> parse { cfg with smoke = true } rest
    | "--chaos" :: rest -> parse { cfg with chaos = true } rest
    | "--chaos-seed" :: v :: rest ->
      parse { cfg with chaos_seed = int_of_string v } rest
    | "--clients" :: v :: rest ->
      parse { cfg with clients = int_of_string v } rest
    | "--requests" :: v :: rest ->
      parse { cfg with requests = int_of_string v } rest
    | "--json" :: v :: rest -> parse { cfg with json_path = Some v } rest
    | "--compare" :: v :: rest -> parse { cfg with compare_with = Some v } rest
    | "--tolerance" :: v :: rest ->
      parse { cfg with tolerance = float_of_string v } rest
    | "--trace" :: rest -> parse { cfg with trace = true } rest
    | "--scrape-out" :: v :: rest -> parse { cfg with scrape_out = Some v } rest
    | "--telemetry-out" :: v :: rest ->
      parse { cfg with telemetry_out = Some v } rest
    | ("--help" | "-h") :: _ ->
      usage ();
      exit 0
    | arg :: _ ->
      Printf.eprintf "unknown argument %s\n" arg;
      usage ();
      exit 2
  in
  let cfg = parse default_cfg (List.tl (Array.to_list Sys.argv)) in
  exit (run cfg)
