# Convenience wrappers around dune; see TESTING.md for the test layers.

.PHONY: all test check chaos report autotune serve serve-smoke serve-chaos top trace-smoke ooc ooc-crash verify-slow clean

all:
	dune build @all

# Tier-1: the full fast test suite.
test:
	dune build && dune runtest

# Tier-1 plus the seeded schedule-explorer pass over a numeric DTD Cholesky.
check: test
	dune exec test/explorer_pass.exe

# Seeded chaos runs: fault-injected factorizations that must recover to a
# bitwise-identical result (same seed matrix as the CI chaos-smoke job).
chaos:
	for seed in 1 2 3; do \
	  dune exec bin/geomix.exe -- chaos --seed $$seed --nt 6 --nb 16 --rate 0.2 || exit 1; \
	  dune exec bin/geomix.exe -- chaos --seed $$seed --nt 6 --nb 16 --rate 0.1 --pivot-rate 1.0 || exit 1; \
	  dune exec bin/geomix.exe -- chaos --seed $$seed --nt 6 --nb 16 --rate 0.3 --sdc || exit 1; \
	done

# Instrumented smoke run rendered as a Markdown run report (the CI
# report-smoke artifact): telemetry bus + critical-path profile + motion
# table for an NT=8 factorization.
report:
	dune exec bin/geomix.exe -- report --smoke --out geomix-report.md
	@echo "wrote geomix-report.md"

# Range-driven precision autotuning smoke (the CI autotune-smoke job):
# pilot-instrument an NT=8 factorization, advise FP8 transfer formats from
# the measured ranges, and sweep the accuracy-vs-motion Pareto frontier.
# Exits nonzero unless every advised map meets its accuracy bound and some
# point ships FP8 with strictly fewer STC bytes than the norm rule.
autotune:
	dune exec bin/geomix.exe -- autotune --smoke --out geomix-frontier.md \
	  --json geomix-frontier.json
	@echo "wrote geomix-frontier.md and geomix-frontier.json"

# Long-lived model service on a Unix-domain socket (ROADMAP item 2):
# likelihood / prediction / Monte-Carlo batches over a shared domain pool
# with a shape-keyed artifact cache.  Ctrl-C (or a shutdown request) stops
# it.
serve:
	dune exec bin/geomix.exe -- serve

# Service load smoke (the CI serve-smoke job): an in-process server plus
# 8 concurrent socket clients driving >= 200 requests, gated on p50/p99
# latency and the cache hit rate against the committed baseline.
serve-smoke:
	dune exec bench/b_serve.exe -- --smoke --json BENCH_serve.json \
	  --compare bench/BENCH_baseline.json
	@echo "wrote BENCH_serve.json"

# Chaos-under-load smoke (the CI serve-chaos-smoke job): 8 clients hammer
# the server while a seeded fault plan injects transient faults, forced
# pivot failures and silent data corruption into every factorization.
# Exits nonzero on any crash, any unaccounted failure, any corrupt escape
# (a Clean/Corrupt_recovered reply that is not bitwise-identical to the
# fault-free reference), or zero injections (a disarmed plan).
serve-chaos:
	for seed in 1 2 3; do \
	  dune exec bench/b_serve.exe -- --chaos --chaos-seed $$seed \
	    --json BENCH_serve_chaos_$$seed.json || exit 1; \
	done

# Live operator view of a running `make serve`: polls the server's stats
# and health requests, rendering inflight/queue depth, latency quantiles,
# cache hit rate, breaker state and bytes/s by transfer precision.
top:
	dune exec bin/geomix.exe -- top

# Traced serve smoke (the CI trace-smoke job): every request carries a
# span; gates that the summed per-request footer bytes equal the
# registry's aggregate RAW-edge accounting bitwise, that the Prometheus
# exposition (both the stats request and the scrape listener) lints and
# round-trips, and that tracing overhead stays within 5% of untraced
# latency.  Leaves the scrape and rolling telemetry JSONL as artifacts.
trace-smoke:
	dune exec bench/b_serve.exe -- --smoke --trace \
	  --scrape-out geomix-scrape.prom --telemetry-out geomix-telemetry.jsonl \
	  --json BENCH_serve_trace.json --compare bench/BENCH_baseline.json
	dune exec test/check_prom.exe -- geomix-scrape.prom
	@echo "wrote BENCH_serve_trace.json, geomix-scrape.prom, geomix-telemetry.jsonl"

# Out-of-core bench gate (the CI ooc-crash-smoke job's first leg): one
# deterministic factorization under a 4-tile residency window, gating
# spill bytes (strictly below FP64-equivalent accounting), the re-read
# fraction of the farthest-next-use eviction order, and mid-run
# crash-resume exactness against the committed baseline.
ooc:
	dune exec bench/b_ooc.exe -- --json BENCH_ooc.json \
	  --compare bench/BENCH_baseline.json
	@echo "wrote BENCH_ooc.json"

# Kill-recovery matrix over the crash-consistent tile store: forked
# children SIGKILL themselves at seeded durable disk transitions
# (mid-spill, mid-manifest), each orphaned store is recovered, and every
# resumed factorization must be bitwise identical to the uninterrupted
# run.  The on-disk bit-rot leg then flips one committed byte and
# requires the checksum quarantine + typed recovery to restore exactness.
ooc-crash:
	for seed in 1 2 3; do \
	  dune exec bin/geomix.exe -- ooc --seed $$seed --kill-matrix \
	    --dir /tmp/geomix-ooc-km-$$seed || exit 1; \
	  dune exec bin/geomix.exe -- ooc --seed $$seed --rot \
	    --dir /tmp/geomix-ooc-rot-$$seed || exit 1; \
	done

# Exhaustive schedule enumeration — minutes-scale, out of tier-1.
verify-slow:
	dune build @verify-slow

clean:
	dune clean
