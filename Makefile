# Convenience wrappers around dune; see TESTING.md for the test layers.

.PHONY: all test check chaos report verify-slow clean

all:
	dune build @all

# Tier-1: the full fast test suite.
test:
	dune build && dune runtest

# Tier-1 plus the seeded schedule-explorer pass over a numeric DTD Cholesky.
check: test
	dune exec test/explorer_pass.exe

# Seeded chaos runs: fault-injected factorizations that must recover to a
# bitwise-identical result (same seed matrix as the CI chaos-smoke job).
chaos:
	for seed in 1 2 3; do \
	  dune exec bin/geomix.exe -- chaos --seed $$seed --nt 6 --nb 16 --rate 0.2 || exit 1; \
	  dune exec bin/geomix.exe -- chaos --seed $$seed --nt 6 --nb 16 --rate 0.1 --pivot-rate 1.0 || exit 1; \
	  dune exec bin/geomix.exe -- chaos --seed $$seed --nt 6 --nb 16 --rate 0.3 --sdc || exit 1; \
	done

# Instrumented smoke run rendered as a Markdown run report (the CI
# report-smoke artifact): telemetry bus + critical-path profile + motion
# table for an NT=8 factorization.
report:
	dune exec bin/geomix.exe -- report --smoke --out geomix-report.md
	@echo "wrote geomix-report.md"

# Exhaustive schedule enumeration — minutes-scale, out of tier-1.
verify-slow:
	dune build @verify-slow

clean:
	dune clean
