# Convenience wrappers around dune; see TESTING.md for the test layers.

.PHONY: all test check verify-slow clean

all:
	dune build @all

# Tier-1: the full fast test suite.
test:
	dune build && dune runtest

# Tier-1 plus the seeded schedule-explorer pass over a numeric DTD Cholesky.
check: test
	dune exec test/explorer_pass.exe

# Exhaustive schedule enumeration — minutes-scale, out of tier-1.
verify-slow:
	dune build @verify-slow

clean:
	dune clean
