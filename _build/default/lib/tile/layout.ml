type grid = { p : int; q : int }

let squarest_grid n =
  assert (n > 0);
  let rec best p = if n mod p = 0 then p else best (p - 1) in
  let p = best (int_of_float (sqrt (float_of_int n))) in
  { p; q = n / p }

let make_grid ~p ~q =
  assert (p > 0 && q > 0);
  { p; q }

let owner g ~i ~j = ((i mod g.p) * g.q) + (j mod g.q)

let local_tiles g ~rank ~nt =
  let acc = ref [] in
  for i = nt - 1 downto 0 do
    for j = i downto 0 do
      if owner g ~i ~j = rank then acc := (i, j) :: !acc
    done
  done;
  !acc

let tile_counts g ~nt =
  let counts = Array.make (g.p * g.q) 0 in
  for i = 0 to nt - 1 do
    for j = 0 to i do
      let r = owner g ~i ~j in
      counts.(r) <- counts.(r) + 1
    done
  done;
  counts
