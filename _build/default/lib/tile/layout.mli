(** 2-D block-cyclic data distribution.

    The paper distributes tiles over a process grid P × Q "as square as
    possible" with P ≤ Q (Section VII-A); within a node, tiles are further
    cycled over the GPUs.  This module computes owners for both levels. *)

type grid = private { p : int; q : int }

val squarest_grid : int -> grid
(** [squarest_grid n] is the P × Q factorisation of [n] with P·Q = n,
    P ≤ Q, and P maximal — the paper's process-grid rule. *)

val make_grid : p:int -> q:int -> grid

val owner : grid -> i:int -> j:int -> int
(** Block-cyclic owner rank of tile (i, j): rank = (i mod P)·Q + (j mod Q). *)

val local_tiles : grid -> rank:int -> nt:int -> (int * int) list
(** All lower-triangle tile coordinates owned by [rank] (row-major). *)

val tile_counts : grid -> nt:int -> int array
(** Lower-triangle tile count per rank — the load-balance measure. *)
