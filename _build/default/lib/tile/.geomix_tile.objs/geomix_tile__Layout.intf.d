lib/tile/layout.mli:
