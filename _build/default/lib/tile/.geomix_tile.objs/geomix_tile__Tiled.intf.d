lib/tile/tiled.mli: Geomix_linalg Mat
