lib/tile/layout.ml: Array
