lib/tile/tiled.ml: Array Geomix_linalg Mat Stdlib
