(** Tile-partitioned symmetric matrices.

    The covariance matrix Σ(θ) is symmetric positive definite, and the paper
    operates on its lower triangle partitioned into [nb]×[nb] tiles (the
    last tile row/column may be ragged when [nb] does not divide [n]).
    Tile (i, j) with i ≥ j is stored as a dense {!Geomix_linalg.Mat.t};
    diagonal tiles hold the full symmetric block. *)

open Geomix_linalg

type t

val create : n:int -> nb:int -> t
(** Zero-filled lower-triangular tile storage for an [n]×[n] symmetric
    matrix with tile order [nb]. *)

val init : n:int -> nb:int -> (int -> int -> float) -> t
(** [init ~n ~nb f] fills entry (i, j) globally with [f i j]; only the lower
    triangle of each stored tile's global footprint is evaluated and [f] is
    assumed symmetric. *)

val n : t -> int
val nb : t -> int
val nt : t -> int
(** Number of tile rows/columns, ⌈n/nb⌉. *)

val tile_rows : t -> int -> int
(** Number of matrix rows covered by tile row [i]. *)

val tile : t -> int -> int -> Mat.t
(** [tile t i j] for i ≥ j — the stored tile itself (mutable, shared). *)

val set_tile : t -> int -> int -> Mat.t -> unit

val copy : t -> t

val to_dense : t -> Mat.t
(** Full symmetric dense matrix. *)

val of_dense : nb:int -> Mat.t -> t
(** Partition the lower triangle of a symmetric dense matrix. *)

val tile_frobenius : t -> int -> int -> float
(** Frobenius norm of one stored tile (diagonal tiles: norm of the full
    symmetric block). *)

val frobenius : t -> float
(** Frobenius norm of the full symmetric matrix (off-diagonal tile mass
    counted twice). *)

val rel_diff : t -> reference:t -> float
(** Relative Frobenius difference over the represented symmetric matrices. *)

val iter_lower : t -> (i:int -> j:int -> Mat.t -> unit) -> unit
(** Iterate over stored tiles, row-major, i ≥ j. *)
