open Geomix_linalg

type t = { n : int; nb : int; nt : int; tiles : Mat.t array }

let nt_of ~n ~nb = (n + nb - 1) / nb

(* Lower-triangle packed index of tile (i, j), i ≥ j. *)
let pidx i j = (i * (i + 1) / 2) + j

let tile_rows_of ~n ~nb i = Stdlib.min nb (n - (i * nb))

let create ~n ~nb =
  assert (n > 0 && nb > 0);
  let nt = nt_of ~n ~nb in
  let tiles =
    Array.init
      (nt * (nt + 1) / 2)
      (fun p ->
        (* Recover (i, j) from the packed index to size ragged tiles. *)
        let rec find i = if pidx (i + 1) 0 > p then i else find (i + 1) in
        let i = find 0 in
        let j = p - pidx i 0 in
        Mat.create ~rows:(tile_rows_of ~n ~nb i) ~cols:(tile_rows_of ~n ~nb j))
  in
  { n; nb; nt; tiles }

let n t = t.n
let nb t = t.nb
let nt t = t.nt
let tile_rows t i = tile_rows_of ~n:t.n ~nb:t.nb i

let tile t i j =
  assert (i >= j && j >= 0 && i < t.nt);
  t.tiles.(pidx i j)

let set_tile t i j m =
  assert (i >= j && j >= 0 && i < t.nt);
  assert (Mat.rows m = tile_rows t i && Mat.cols m = tile_rows t j);
  t.tiles.(pidx i j) <- m

let init ~n ~nb f =
  let t = create ~n ~nb in
  for i = 0 to t.nt - 1 do
    for j = 0 to i do
      let m = tile t i j in
      let ri = i * nb and cj = j * nb in
      for jj = 0 to Mat.cols m - 1 do
        for ii = 0 to Mat.rows m - 1 do
          Mat.unsafe_set m ii jj (f (ri + ii) (cj + jj))
        done
      done
    done
  done;
  t

let copy t = { t with tiles = Array.map Mat.copy t.tiles }

let to_dense t =
  let d = Mat.create ~rows:t.n ~cols:t.n in
  for i = 0 to t.nt - 1 do
    for j = 0 to i do
      let m = tile t i j in
      let ri = i * t.nb and cj = j * t.nb in
      for jj = 0 to Mat.cols m - 1 do
        for ii = 0 to Mat.rows m - 1 do
          let v = Mat.unsafe_get m ii jj in
          Mat.unsafe_set d (ri + ii) (cj + jj) v;
          (* Diagonal tiles carry their full block; only off-diagonal
             tiles are mirrored onto the upper triangle. *)
          if i <> j then Mat.unsafe_set d (cj + jj) (ri + ii) v
        done
      done
    done
  done;
  d

let of_dense ~nb d =
  let n = Mat.rows d in
  assert (Mat.cols d = n);
  init ~n ~nb (fun i j -> Mat.get d i j)

let tile_frobenius t i j = Mat.frobenius (tile t i j)

let frobenius t =
  let acc = ref 0. in
  for i = 0 to t.nt - 1 do
    for j = 0 to i do
      let f = tile_frobenius t i j in
      let w = if i = j then 1. else 2. in
      acc := !acc +. (w *. f *. f)
    done
  done;
  sqrt !acc

let rel_diff a ~reference =
  assert (a.n = reference.n && a.nb = reference.nb);
  let num = ref 0. and denom = ref 0. in
  for i = 0 to a.nt - 1 do
    for j = 0 to i do
      let w = if i = j then 1. else 2. in
      let d = Mat.diff_frobenius (tile a i j) (tile reference i j) in
      let r = Mat.frobenius (tile reference i j) in
      num := !num +. (w *. d *. d);
      denom := !denom +. (w *. r *. r)
    done
  done;
  if !denom = 0. then if !num = 0. then 0. else infinity else sqrt (!num /. !denom)

let iter_lower t f =
  for i = 0 to t.nt - 1 do
    for j = 0 to i do
      f ~i ~j (tile t i j)
    done
  done
