(** Low-rank tile representation [A ≈ U·Vᵀ] with [U : m×k], [V : n×k].

    This is the building block of the tile low-rank (TLR) extension the
    paper names as future work ("combining the strengths of mixed
    precisions with tile low-rank computations", Section VIII; refs [16],
    [17]).  Compression uses fully-pivoted adaptive cross approximation
    (ACA), which is exact after min(m,n) steps and converges quickly on
    the smooth covariance blocks TLR targets; recompression goes through
    thin QR of both factors and an SVD of the small core. *)

open Geomix_linalg

type t = { u : Mat.t; v : Mat.t }
(** Invariant: [Mat.cols u = Mat.cols v] (the rank). *)

val rank : t -> int
val rows : t -> int
val cols : t -> int

val to_dense : t -> Mat.t
(** [U·Vᵀ]. *)

val of_dense : tol:float -> Mat.t -> t option
(** Fully-pivoted ACA to absolute Frobenius tolerance [tol]; [None] when
    the required rank exceeds [min(m,n)/2] — the tile is not worth
    compressing (the caller keeps it dense). *)

val of_dense_exn : tol:float -> max_rank:int -> Mat.t -> t
(** Like {!of_dense} with an explicit rank cap; raises
    [Invalid_argument] when the tolerance cannot be met within it. *)

val recompress : tol:float -> t -> t
(** QR–SVD recompression to the tolerance (never increases the rank). *)

val add : ?scale:float -> t -> t -> t
(** [add a b = a + scale·b] (default 1) as a rank-(k₁+k₂) pair — callers
    usually {!recompress} the result. *)

val matvec : t -> float array -> float array
(** [U·(Vᵀx)] in O((m+n)·k). *)

val matvec_trans : t -> float array -> float array
(** [V·(Uᵀx)]. *)

val memory_floats : t -> int
(** Floats stored: [(m+n)·k]; compare against [m·n] dense. *)

val round_factors : Geomix_precision.Fpformat.scalar -> t -> t
(** Mixed-precision TLR: round both factors to a storage scalar (the
    combination the paper's future work proposes). *)
