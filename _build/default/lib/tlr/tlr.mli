(** Tile low-rank (TLR) symmetric matrices and their Cholesky
    factorization — the paper's named future-work extension (Section
    VIII), optionally combined with the adaptive precision maps.

    Diagonal tiles stay dense; each off-diagonal tile is kept dense or
    compressed to [U·Vᵀ] by ACA at a per-tile tolerance.  The
    factorization is the right-looking Algorithm 1 with the rank-aware
    kernels of HiCMA/PaRSEC-TLR (refs [16], [17]):

    - TRSM on a low-rank tile touches only its V factor;
    - SYRK forms the small [VᵀV] core before the dense update;
    - GEMM between low-rank tiles multiplies the k×k cores and accumulates
      a low-rank update, recompressed against the tile tolerance.

    With [precision] set, factors and dense tiles are additionally rounded
    to the storage scalar of the paper's precision map — mixed-precision
    TLR. *)

open Geomix_linalg
open Geomix_tile

type tile = Dense of Mat.t | Low_rank of Lowrank.t

type t

val nt : t -> int
val nb : t -> int
val n : t -> int

val tile : t -> int -> int -> tile
(** Tile (i, j), i ≥ j. *)

val compress :
  ?precision:Geomix_core.Precision_map.t ->
  tol:float ->
  Tiled.t ->
  t
(** Compress a tiled symmetric matrix: off-diagonal tiles that admit rank
    < nb/2 at the absolute per-tile tolerance [tol·‖A‖_F/NT] become
    low-rank.  With [precision], every stored value is rounded to the
    tile's storage scalar from the map — mixed-precision TLR. *)

val to_dense : t -> Mat.t
(** Reconstruct the full symmetric matrix (lower factor after
    {!cholesky}: lower triangle only). *)

val compression_ratio : t -> float
(** Stored floats / dense floats of the lower triangle (< 1 when
    compression wins). *)

val compression_ratio_bytes : t -> float
(** Stored bytes / dense-FP64 bytes — counts the storage-scalar widths of
    the precision map, so mixed-precision TLR shows both savings at
    once. *)

val mean_rank : t -> float
(** Average rank of the low-rank tiles (0 when none). *)

val low_rank_fraction : t -> float
(** Fraction of off-diagonal tiles kept in low-rank form. *)

val cholesky : ?tol:float -> t -> unit
(** In-place TLR Cholesky (lower).  [tol] is the absolute per-tile
    recompression tolerance for accumulated GEMM updates (defaults to the
    compression tolerance).
    @raise Geomix_linalg.Blas.Not_positive_definite as the dense
    algorithm would. *)

val solve_lower : t -> float array -> float array
(** Forward substitution with a TLR factor. *)

val solve_lower_trans : t -> float array -> float array

val log_det : t -> float
