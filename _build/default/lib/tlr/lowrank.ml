open Geomix_linalg
module Fpformat = Geomix_precision.Fpformat

type t = { u : Mat.t; v : Mat.t }

let rank t = Mat.cols t.u
let rows t = Mat.rows t.u
let cols t = Mat.rows t.v

let to_dense t =
  let d = Mat.create ~rows:(rows t) ~cols:(cols t) in
  Blas.gemm_nt ~alpha:1. t.u t.v ~beta:0. d;
  d

(* Fully-pivoted ACA on an explicit residual copy. *)
let aca ~tol ~max_rank a =
  let m = Mat.rows a and n = Mat.cols a in
  let r = Mat.copy a in
  let us = ref [] and vs = ref [] in
  let rec step k =
    if k > max_rank then None
    else begin
      (* Global pivot and residual norm in one pass. *)
      let bi = ref 0 and bj = ref 0 and best = ref 0. and fro2 = ref 0. in
      for j = 0 to n - 1 do
        for i = 0 to m - 1 do
          let x = Float.abs (Mat.unsafe_get r i j) in
          fro2 := !fro2 +. (x *. x);
          if x > !best then begin
            best := x;
            bi := i;
            bj := j
          end
        done
      done;
      if sqrt !fro2 <= tol then Some k
      else if k = max_rank || !best = 0. then None
      else begin
        let piv = Mat.unsafe_get r !bi !bj in
        let ucol = Array.init m (fun i -> Mat.unsafe_get r i !bj /. piv) in
        let vcol = Array.init n (fun j -> Mat.unsafe_get r !bi j) in
        us := ucol :: !us;
        vs := vcol :: !vs;
        for j = 0 to n - 1 do
          let vj = vcol.(j) in
          if vj <> 0. then
            for i = 0 to m - 1 do
              Mat.unsafe_set r i j (Mat.unsafe_get r i j -. (ucol.(i) *. vj))
            done
        done;
        step (k + 1)
      end
    end
  in
  match step 0 with
  | None -> None
  | Some k ->
    let k = Stdlib.max k 1 in
    let us = Array.of_list (List.rev !us) and vs = Array.of_list (List.rev !vs) in
    let u = Mat.create ~rows:m ~cols:k and v = Mat.create ~rows:n ~cols:k in
    for c = 0 to k - 1 do
      (* Rank 0 (exact zero matrix) keeps one zero column for regularity. *)
      if c < Array.length us then begin
        for i = 0 to m - 1 do
          Mat.unsafe_set u i c us.(c).(i)
        done;
        for j = 0 to n - 1 do
          Mat.unsafe_set v j c vs.(c).(j)
        done
      end
    done;
    Some { u; v }

let of_dense ~tol a =
  let cap = Stdlib.max 1 (Stdlib.min (Mat.rows a) (Mat.cols a) / 2) in
  aca ~tol ~max_rank:cap a

let of_dense_exn ~tol ~max_rank a =
  match aca ~tol ~max_rank a with
  | Some t -> t
  | None -> invalid_arg "Lowrank.of_dense_exn: tolerance not reached within max_rank"

let recompress ~tol t =
  let k = rank t in
  if k <= 1 then t
  else begin
    let qu, ru = Factor.qr_thin t.u in
    let qv, rv = Factor.qr_thin t.v in
    (* core = Ru·Rvᵀ is k×k. *)
    let core = Mat.create ~rows:k ~cols:k in
    Blas.gemm_nt ~alpha:1. ru rv ~beta:0. core;
    let uc, sigma, vc = Factor.svd_jacobi core in
    let r = Stdlib.min (Factor.truncate_rank ~tol sigma) k in
    (* U' = Qu·Uc·diag(σ) (first r cols), V' = Qv·Vc (first r cols). *)
    let ucr = Mat.sub_view_copy uc ~row:0 ~col:0 ~rows:k ~cols:r in
    for c = 0 to r - 1 do
      for i = 0 to k - 1 do
        Mat.unsafe_set ucr i c (Mat.unsafe_get ucr i c *. sigma.(c))
      done
    done;
    let vcr = Mat.sub_view_copy vc ~row:0 ~col:0 ~rows:k ~cols:r in
    let u' = Mat.create ~rows:(rows t) ~cols:r in
    Blas.gemm ~alpha:1. qu ucr ~beta:0. u';
    let v' = Mat.create ~rows:(cols t) ~cols:r in
    Blas.gemm ~alpha:1. qv vcr ~beta:0. v';
    { u = u'; v = v' }
  end

let add ?(scale = 1.) a b =
  assert (rows a = rows b && cols a = cols b);
  let ka = rank a and kb = rank b in
  let u = Mat.create ~rows:(rows a) ~cols:(ka + kb) in
  let v = Mat.create ~rows:(cols a) ~cols:(ka + kb) in
  Mat.set_block u ~row:0 ~col:0 a.u;
  Mat.set_block v ~row:0 ~col:0 a.v;
  let bu = Mat.copy b.u in
  Mat.scale bu scale;
  Mat.set_block u ~row:0 ~col:ka bu;
  Mat.set_block v ~row:0 ~col:ka b.v;
  { u; v }

let matvec t x = Mat.matvec t.u (Mat.matvec_trans t.v x)
let matvec_trans t x = Mat.matvec t.v (Mat.matvec_trans t.u x)

let memory_floats t = (rows t + cols t) * rank t

let round_factors scalar t =
  { u = Mat.rounded scalar t.u; v = Mat.rounded scalar t.v }
