lib/tlr/tlr.ml: Array Blas Geomix_core Geomix_linalg Geomix_precision Geomix_tile Lowrank Mat Option Stdlib Tiled
