lib/tlr/tlr.mli: Geomix_core Geomix_linalg Geomix_tile Lowrank Mat Tiled
