lib/tlr/lowrank.mli: Geomix_linalg Geomix_precision Mat
