lib/tlr/lowrank.ml: Array Blas Factor Float Geomix_linalg Geomix_precision List Mat Stdlib
