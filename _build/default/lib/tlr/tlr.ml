open Geomix_linalg
open Geomix_tile
module Pm = Geomix_core.Precision_map
module Fpformat = Geomix_precision.Fpformat

type tile = Dense of Mat.t | Low_rank of Lowrank.t

type t = {
  nt : int;
  nb : int;
  n : int;
  tile_tol : float; (* absolute per-tile Frobenius tolerance *)
  tiles : tile array; (* packed lower triangle, mutable entries *)
  scalars : Fpformat.scalar array; (* storage format per tile *)
}

let pidx i j = (i * (i + 1) / 2) + j

let nt t = t.nt
let nb t = t.nb
let n t = t.n

let tile t i j =
  assert (i >= j && j >= 0 && i < t.nt);
  t.tiles.(pidx i j)

let compress ?precision ~tol tiled =
  let ntiles = Tiled.nt tiled in
  (match precision with
  | Some pmap when Pm.nt pmap <> ntiles ->
    invalid_arg "Tlr.compress: precision map / matrix tile mismatch"
  | _ -> ());
  let tile_tol = tol *. Tiled.frobenius tiled /. float_of_int ntiles in
  let storage i j =
    match precision with Some pmap -> Pm.storage pmap i j | None -> Fpformat.S_fp64
  in
  let size = ntiles * (ntiles + 1) / 2 in
  let scalars = Array.make size Fpformat.S_fp64 in
  let tiles =
    Array.init size (fun p ->
      (* Decode (i, j) from the packed index. *)
      let rec find i = if pidx (i + 1) 0 > p then i else find (i + 1) in
      let i = find 0 in
      let j = p - pidx i 0 in
      scalars.(p) <- storage i j;
      let m = Tiled.tile tiled i j in
      if i = j then Dense (Mat.rounded (storage i j) m)
      else begin
        match Lowrank.of_dense ~tol:tile_tol m with
        | Some lr -> Low_rank (Lowrank.round_factors (storage i j) lr)
        | None -> Dense (Mat.rounded (storage i j) m)
      end)
  in
  { nt = ntiles; nb = Tiled.nb tiled; n = Tiled.n tiled; tile_tol; tiles; scalars }

let tile_dense = function Dense d -> d | Low_rank lr -> Lowrank.to_dense lr

let to_dense t =
  let d = Mat.create ~rows:t.n ~cols:t.n in
  for i = 0 to t.nt - 1 do
    for j = 0 to i do
      let m = tile_dense (tile t i j) in
      let ri = i * t.nb and cj = j * t.nb in
      for c = 0 to Mat.cols m - 1 do
        for r = 0 to Mat.rows m - 1 do
          let v = Mat.unsafe_get m r c in
          Mat.unsafe_set d (ri + r) (cj + c) v;
          if i <> j then Mat.unsafe_set d (cj + c) (ri + r) v
        done
      done
    done
  done;
  d

let dense_floats t =
  let acc = ref 0 in
  for i = 0 to t.nt - 1 do
    for j = 0 to i do
      let rows = Stdlib.min t.nb (t.n - (i * t.nb)) in
      let cols = Stdlib.min t.nb (t.n - (j * t.nb)) in
      acc := !acc + (rows * cols)
    done
  done;
  !acc

let stored_floats t =
  Array.fold_left
    (fun acc -> function
      | Dense d -> acc + (Mat.rows d * Mat.cols d)
      | Low_rank lr -> acc + Lowrank.memory_floats lr)
    0 t.tiles

let compression_ratio t = float_of_int (stored_floats t) /. float_of_int (dense_floats t)

let stored_bytes t =
  let acc = ref 0. in
  Array.iteri
    (fun p tile ->
      let width = float_of_int (Fpformat.scalar_bytes t.scalars.(p)) in
      let floats =
        match tile with
        | Dense d -> Mat.rows d * Mat.cols d
        | Low_rank lr -> Lowrank.memory_floats lr
      in
      acc := !acc +. (width *. float_of_int floats))
    t.tiles;
  !acc

let compression_ratio_bytes t =
  stored_bytes t /. (8. *. float_of_int (dense_floats t))

let mean_rank t =
  let total = ref 0 and count = ref 0 in
  Array.iter
    (function
      | Low_rank lr ->
        total := !total + Lowrank.rank lr;
        incr count
      | Dense _ -> ())
    t.tiles;
  if !count = 0 then 0. else float_of_int !total /. float_of_int !count

let low_rank_fraction t =
  let lr = ref 0 and off = ref 0 in
  for i = 0 to t.nt - 1 do
    for j = 0 to i - 1 do
      incr off;
      match tile t i j with Low_rank _ -> incr lr | Dense _ -> ()
    done
  done;
  if !off = 0 then 0. else float_of_int !lr /. float_of_int !off

(* C(dense) ← C − A·Bᵀ for tiles in any representation. *)
let gemm_into_dense c a b =
  match (a, b) with
  | Dense da, Dense db -> Blas.gemm_nt ~alpha:(-1.) da db ~beta:1. c
  | Low_rank la, Dense db ->
    (* U (V' B') = U (B V)' *)
    let w = Mat.create ~rows:(Mat.rows db) ~cols:(Lowrank.rank la) in
    Blas.gemm ~alpha:1. db la.Lowrank.v ~beta:0. w;
    Blas.gemm_nt ~alpha:(-1.) la.Lowrank.u w ~beta:1. c
  | Dense da, Low_rank lb ->
    (* A V_b U_b' *)
    let w = Mat.create ~rows:(Mat.rows da) ~cols:(Lowrank.rank lb) in
    Blas.gemm ~alpha:1. da lb.Lowrank.v ~beta:0. w;
    Blas.gemm_nt ~alpha:(-1.) w lb.Lowrank.u ~beta:1. c
  | Low_rank la, Low_rank lb ->
    (* U_a (V_a' V_b) U_b' *)
    let core = Mat.create ~rows:(Lowrank.rank la) ~cols:(Lowrank.rank lb) in
    Blas.gemm ~transa:true ~alpha:1. la.Lowrank.v lb.Lowrank.v ~beta:0. core;
    let tmat = Mat.create ~rows:(Lowrank.rows la) ~cols:(Lowrank.rank lb) in
    Blas.gemm ~alpha:1. la.Lowrank.u core ~beta:0. tmat;
    Blas.gemm_nt ~alpha:(-1.) tmat lb.Lowrank.u ~beta:1. c

(* The product A·Bᵀ as a low-rank pair, when at least one operand is. *)
let product_lowrank a b =
  match (a, b) with
  | Low_rank la, Low_rank lb ->
    let ka = Lowrank.rank la and kb = Lowrank.rank lb in
    if ka <= kb then begin
      (* (U_a) · (U_b (V_b' V_a))' : rank ka *)
      let core = Mat.create ~rows:kb ~cols:ka in
      Blas.gemm ~transa:true ~alpha:1. lb.Lowrank.v la.Lowrank.v ~beta:0. core;
      let v = Mat.create ~rows:(Lowrank.rows lb) ~cols:ka in
      Blas.gemm ~alpha:1. lb.Lowrank.u core ~beta:0. v;
      Some { Lowrank.u = Mat.copy la.Lowrank.u; v }
    end
    else begin
      let core = Mat.create ~rows:ka ~cols:kb in
      Blas.gemm ~transa:true ~alpha:1. la.Lowrank.v lb.Lowrank.v ~beta:0. core;
      let u = Mat.create ~rows:(Lowrank.rows la) ~cols:kb in
      Blas.gemm ~alpha:1. la.Lowrank.u core ~beta:0. u;
      Some { Lowrank.u; v = Mat.copy lb.Lowrank.u }
    end
  | Low_rank la, Dense db ->
    let w = Mat.create ~rows:(Mat.rows db) ~cols:(Lowrank.rank la) in
    Blas.gemm ~alpha:1. db la.Lowrank.v ~beta:0. w;
    Some { Lowrank.u = Mat.copy la.Lowrank.u; v = w }
  | Dense da, Low_rank lb ->
    let w = Mat.create ~rows:(Mat.rows da) ~cols:(Lowrank.rank lb) in
    Blas.gemm ~alpha:1. da lb.Lowrank.v ~beta:0. w;
    Some { Lowrank.u = w; v = Mat.copy lb.Lowrank.u }
  | Dense _, Dense _ -> None

let cholesky ?tol t =
  let rtol = Option.value tol ~default:t.tile_tol in
  for k = 0 to t.nt - 1 do
    (* POTRF on the dense diagonal tile. *)
    let ckk =
      match tile t k k with
      | Dense d -> d
      | Low_rank _ -> invalid_arg "Tlr.cholesky: diagonal tiles must be dense"
    in
    Blas.potrf_lower ckk;
    (* TRSM down column k. *)
    for m = k + 1 to t.nt - 1 do
      (match tile t m k with
      | Dense d -> Blas.trsm_right_lower_trans ~l:ckk d
      | Low_rank lr -> Blas.trsm_left_lower_notrans ~l:ckk lr.Lowrank.v)
    done;
    (* SYRK and GEMM updates of the trailing matrix. *)
    for m = k + 1 to t.nt - 1 do
      let amk = tile t m k in
      let cmm =
        match tile t m m with Dense d -> d | Low_rank _ -> assert false
      in
      (match amk with
      | Dense d -> Blas.syrk_lower ~alpha:(-1.) d ~beta:1. cmm
      | Low_rank _ -> gemm_into_dense cmm amk amk);
      for nn = k + 1 to m - 1 do
        let ank = tile t nn k in
        match tile t m nn with
        | Dense c -> gemm_into_dense c amk ank
        | Low_rank cl -> (
          match product_lowrank amk ank with
          | Some upd ->
            let sum = Lowrank.add ~scale:(-1.) cl upd in
            t.tiles.(pidx m nn) <- Low_rank (Lowrank.recompress ~tol:rtol sum)
          | None ->
            (* Dense·Dense update densifies the target tile. *)
            let c = Lowrank.to_dense cl in
            gemm_into_dense c amk ank;
            t.tiles.(pidx m nn) <- Dense c)
      done
    done
  done;
  (* Leave clean lower factors on the diagonal. *)
  for k = 0 to t.nt - 1 do
    match tile t k k with Dense d -> Mat.zero_upper d | Low_rank _ -> ()
  done

let block_rows t i = Stdlib.min t.nb (t.n - (i * t.nb))

let tile_matvec rep x =
  match rep with Dense d -> Mat.matvec d x | Low_rank lr -> Lowrank.matvec lr x

let tile_matvec_trans rep x =
  match rep with
  | Dense d -> Mat.matvec_trans d x
  | Low_rank lr -> Lowrank.matvec_trans lr x

let solve_lower t b =
  assert (Array.length b = t.n);
  let y = Array.copy b in
  for i = 0 to t.nt - 1 do
    let ri = i * t.nb and rows = block_rows t i in
    let bi = Array.sub y ri rows in
    for j = 0 to i - 1 do
      let xj = Array.sub y (j * t.nb) (block_rows t j) in
      let contrib = tile_matvec (tile t i j) xj in
      Array.iteri (fun p v -> bi.(p) <- bi.(p) -. v) contrib
    done;
    let dii = match tile t i i with Dense d -> d | Low_rank _ -> assert false in
    let yi = Blas.trsv_lower ~l:dii bi in
    Array.blit yi 0 y ri rows
  done;
  y

let solve_lower_trans t b =
  assert (Array.length b = t.n);
  let x = Array.copy b in
  for i = t.nt - 1 downto 0 do
    let ri = i * t.nb and rows = block_rows t i in
    let bi = Array.sub x ri rows in
    for j = i + 1 to t.nt - 1 do
      let xj = Array.sub x (j * t.nb) (block_rows t j) in
      let contrib = tile_matvec_trans (tile t j i) xj in
      Array.iteri (fun p v -> bi.(p) <- bi.(p) -. v) contrib
    done;
    let dii = match tile t i i with Dense d -> d | Low_rank _ -> assert false in
    let xi = Blas.trsv_lower_trans ~l:dii bi in
    Array.blit xi 0 x ri rows
  done;
  x

let log_det t =
  let acc = ref 0. in
  for k = 0 to t.nt - 1 do
    match tile t k k with
    | Dense d ->
      for p = 0 to Mat.rows d - 1 do
        acc := !acc +. log (Mat.get d p p)
      done
    | Low_rank _ -> assert false
  done;
  2. *. !acc
