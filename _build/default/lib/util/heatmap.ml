type t = { nt : int; categories : (string * char) array }

let create ~nt ~categories =
  assert (nt > 0 && categories <> []);
  { nt; categories = Array.of_list categories }

let counts t ~cell =
  let ncat = Array.length t.categories in
  let counts = Array.make ncat 0 in
  let total = ref 0 in
  for row = 0 to t.nt - 1 do
    for col = 0 to t.nt - 1 do
      match cell ~row ~col with
      | None -> ()
      | Some c ->
        assert (c >= 0 && c < ncat);
        counts.(c) <- counts.(c) + 1;
        incr total
    done
  done;
  (counts, !total)

let percentages t ~cell =
  let counts, total = counts t ~cell in
  let denom = Stdlib.max total 1 in
  Array.map (fun c -> float_of_int c /. float_of_int denom) counts

let render t ~cell =
  let buf = Buffer.create ((t.nt + 2) * (t.nt + 2)) in
  for row = 0 to t.nt - 1 do
    Buffer.add_string buf "  ";
    for col = 0 to t.nt - 1 do
      (match cell ~row ~col with
      | None -> Buffer.add_char buf '.'
      | Some c -> Buffer.add_char buf (snd t.categories.(c)));
      Buffer.add_char buf ' '
    done;
    Buffer.add_char buf '\n'
  done;
  let counts, total = counts t ~cell in
  let denom = Stdlib.max total 1 in
  Buffer.add_string buf "  legend:";
  Array.iteri
    (fun i (name, ch) ->
      Buffer.add_string buf
        (Printf.sprintf "  %c=%s (%.1f%%)" ch name
           (100. *. float_of_int counts.(i) /. float_of_int denom)))
    t.categories;
  Buffer.add_char buf '\n';
  Buffer.contents buf
