(** ASCII rendering of tile-level category maps.

    Used to reproduce the precision-map figures of the paper (Figs 2, 4, 7):
    each tile of an [nt] × [nt] tiled matrix carries a small category index
    (a precision, or an STC/TTC flag) drawn as one character. *)

type t

val create : nt:int -> categories:(string * char) list -> t
(** [create ~nt ~categories] prepares a map of [nt] × [nt] cells where
    category [i] is labelled and drawn by [List.nth categories i]. *)

val render : t -> cell:(row:int -> col:int -> int option) -> string
(** [render t ~cell] draws the lower-triangular map ([cell] returning [None]
    leaves a blank, e.g. for the strictly upper triangle), followed by a
    legend giving the percentage of populated cells per category — the same
    annotation as the paper's Fig 7. *)

val percentages : t -> cell:(row:int -> col:int -> int option) -> float array
(** Fraction of populated cells per category index. *)
