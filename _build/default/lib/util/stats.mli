(** Descriptive statistics used by the Monte-Carlo accuracy studies and the
    benchmark reporting (boxplot five-number summaries, quantiles, errors). *)

val mean : float array -> float
(** Arithmetic mean. Requires a non-empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for arrays of length < 2. *)

val std : float array -> float
(** Sample standard deviation. *)

val min_max : float array -> float * float
(** Smallest and largest element. Requires a non-empty array. *)

val quantile : float array -> float -> float
(** [quantile xs p] for [p] in [\[0,1\]], linear interpolation between order
    statistics (type-7, the R default). Does not mutate [xs]. *)

val median : float array -> float

type five_number = {
  low : float;   (** minimum *)
  q1 : float;    (** first quartile *)
  med : float;   (** median *)
  q3 : float;    (** third quartile *)
  high : float;  (** maximum *)
}
(** Boxplot summary, mirroring the boxplots of Figs 5 and 6. *)

val five_number : float array -> five_number

val pp_five_number : Format.formatter -> five_number -> unit
(** Renders as [min | q1 [med] q3 | max] with 4 significant digits. *)

val rmse : actual:float array -> reference:float -> float
(** Root-mean-square deviation of samples from a scalar reference value. *)

val mean_abs_dev : actual:float array -> reference:float -> float

val histogram : bins:int -> float array -> (float * float * int) array
(** [histogram ~bins xs] is an array of [(lo, hi, count)] with equal-width
    bins spanning the data range. *)
