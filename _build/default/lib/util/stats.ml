let mean xs =
  assert (Array.length xs > 0);
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)
  end

let std xs = sqrt (variance xs)

let min_max xs =
  assert (Array.length xs > 0);
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let quantile xs p =
  assert (Array.length xs > 0);
  assert (p >= 0. && p <= 1.);
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let h = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor h) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = quantile xs 0.5

type five_number = { low : float; q1 : float; med : float; q3 : float; high : float }

let five_number xs =
  let low, high = min_max xs in
  { low; q1 = quantile xs 0.25; med = median xs; q3 = quantile xs 0.75; high }

let pp_five_number ppf f =
  Format.fprintf ppf "%.4g | %.4g [%.4g] %.4g | %.4g" f.low f.q1 f.med f.q3 f.high

let rmse ~actual ~reference =
  let acc =
    Array.fold_left
      (fun acc x -> acc +. ((x -. reference) *. (x -. reference)))
      0. actual
  in
  sqrt (acc /. float_of_int (Array.length actual))

let mean_abs_dev ~actual ~reference =
  let acc = Array.fold_left (fun acc x -> acc +. Float.abs (x -. reference)) 0. actual in
  acc /. float_of_int (Array.length actual)

let histogram ~bins xs =
  assert (bins > 0);
  let lo, hi = min_max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = Stdlib.min (Stdlib.max b 0) (bins - 1) in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.mapi
    (fun i c ->
      let blo = lo +. (float_of_int i *. width) in
      (blo, blo +. width, c))
    counts
