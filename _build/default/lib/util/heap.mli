(** Binary min-heap (array-backed), used as the ready-task priority queue of
    the cluster simulator. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val peek : 'a t -> 'a option
val pop : 'a t -> 'a option
(** Removes and returns the minimum element under [cmp]. *)
