(** Plain-text table rendering for benchmark reports.

    Every reproduced paper table/figure prints through this module so that
    the benchmark output is uniform and diffable. *)

type align = Left | Right

val render :
  ?align:align list ->
  headers:string list ->
  string list list ->
  string
(** [render ~headers rows] lays out a boxed ASCII table.  Rows shorter than
    the header are padded with empty cells; [align] defaults to [Right] for
    every column. *)

val print :
  ?align:align list -> headers:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val fmt_float : ?digits:int -> float -> string
(** Compact significant-digit formatting ([%.*g], default 4 digits). *)

val fmt_bytes : float -> string
(** Human bytes: ["1.50 GB"], ["320.0 MB"], ... *)

val fmt_time : float -> string
(** Human seconds: ["12.3 us"], ["4.56 ms"], ["7.89 s"]. *)

val fmt_flops : float -> string
(** Human flop/s: ["1.23 Tflop/s"], ... *)

val fmt_pct : float -> string
(** [fmt_pct 0.123] is ["12.3%"]. *)
