lib/util/table.mli:
