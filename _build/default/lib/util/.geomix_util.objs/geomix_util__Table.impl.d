lib/util/table.ml: Buffer Float List Printf Stdlib String
