lib/util/heap.mli:
