lib/util/rng.mli:
