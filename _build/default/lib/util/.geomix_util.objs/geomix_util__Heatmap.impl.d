lib/util/heatmap.ml: Array Buffer Printf Stdlib
