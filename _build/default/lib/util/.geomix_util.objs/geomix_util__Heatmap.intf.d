lib/util/heatmap.mli:
