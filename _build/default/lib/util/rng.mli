(** Deterministic pseudo-random number generation.

    The generator is xoshiro256** seeded through splitmix64, which gives
    reproducible streams across platforms independent of the OCaml stdlib
    generator.  Every stochastic component of the library (synthetic
    locations, measurement noise, Monte-Carlo rounding) draws from an
    explicit [t] so that experiments are replayable from a single seed. *)

type t

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives a statistically independent child stream and advances
    [t].  Used to give each Monte-Carlo replica its own stream. *)

val copy : t -> t
(** Snapshot of the current state. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53-bit resolution. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller, cached pair). *)

val gaussian_vector : t -> int -> float array
(** [gaussian_vector t n] is [n] iid standard normal deviates. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
