type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~headers rows =
  let ncols = List.length headers in
  let norm row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map norm rows in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> a
    | _ -> List.init ncols (fun _ -> Right)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> Stdlib.max w (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let buf = Buffer.create 1024 in
  let sep () =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        let w = List.nth widths i and a = List.nth aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a w cell);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  sep ();
  line headers;
  sep ();
  List.iter line rows;
  sep ();
  Buffer.contents buf

let print ?align ~headers rows = print_string (render ?align ~headers rows)

let fmt_float ?(digits = 4) x = Printf.sprintf "%.*g" digits x

let scaled units base x =
  let rec go x = function
    | [ u ] -> (x, u)
    | u :: rest -> if Float.abs x < base then (x, u) else go (x /. base) rest
    | [] -> assert false
  in
  let v, u = go x units in
  Printf.sprintf "%.4g %s" v u

let fmt_bytes x = scaled [ "B"; "KB"; "MB"; "GB"; "TB"; "PB" ] 1024. x

let fmt_time x =
  if x = 0. then "0 s"
  else if Float.abs x < 1e-6 then Printf.sprintf "%.4g ns" (x *. 1e9)
  else if Float.abs x < 1e-3 then Printf.sprintf "%.4g us" (x *. 1e6)
  else if Float.abs x < 1. then Printf.sprintf "%.4g ms" (x *. 1e3)
  else Printf.sprintf "%.4g s" x

let fmt_flops x = scaled [ "flop/s"; "Kflop/s"; "Mflop/s"; "Gflop/s"; "Tflop/s"; "Pflop/s" ] 1000. x

let fmt_pct x = Printf.sprintf "%.1f%%" (100. *. x)
