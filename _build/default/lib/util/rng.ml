type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable cached_gaussian : float;
  mutable has_cached : bool;
}

let splitmix64 state =
  let ( *% ) = Int64.mul in
  let z = Int64.add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = (Int64.logxor z (Int64.shift_right_logical z 30)) *% 0xBF58476D1CE4E5B9L in
  let z = (Int64.logxor z (Int64.shift_right_logical z 27)) *% 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; cached_gaussian = 0.; has_cached = false }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (int64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; cached_gaussian = 0.; has_cached = false }

let copy t = { t with s0 = t.s0 }

let int t bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t =
  (* 53 high bits scaled to [0, 1) *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let gaussian t =
  if t.has_cached then begin
    t.has_cached <- false;
    t.cached_gaussian
  end
  else begin
    let rec draw () =
      let u = float t in
      if u <= 1e-300 then draw () else u
    in
    let u1 = draw () and u2 = float t in
    let r = sqrt (-2. *. log u1) and theta = 2. *. Float.pi *. u2 in
    t.cached_gaussian <- r *. sin theta;
    t.has_cached <- true;
    r *. cos theta
  end

let gaussian_vector t n = Array.init n (fun _ -> gaussian t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
