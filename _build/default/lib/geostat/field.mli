(** Synthetic Gaussian random field realisations: the Monte-Carlo datasets
    of Section VII-B are measurement vectors [Z = L·e] with [Σ(θ_true) =
    L·Lᵀ] and [e ~ N(0, I)], drawn at exact FP64 precision. *)

val synthesize :
  rng:Geomix_util.Rng.t -> cov:Covariance.t -> Locations.t -> float array
(** One realisation of the zero-mean field at the given sites.
    @raise Geomix_linalg.Blas.Not_positive_definite if Σ(θ) is numerically
    indefinite (increase the nugget or reduce the correlation). *)

val synthesize_many :
  rng:Geomix_util.Rng.t -> cov:Covariance.t -> replicas:int -> Locations.t ->
  float array array
(** Independent replicas sharing one factorization of Σ. *)
