module Rng = Geomix_util.Rng
module Mat = Geomix_linalg.Mat
module Blas = Geomix_linalg.Blas

let factor cov locs =
  let sigma = Covariance.build_dense cov locs in
  Blas.potrf_lower sigma;
  sigma

let draw rng l =
  let n = Mat.rows l in
  let e = Rng.gaussian_vector rng n in
  let z = Array.make n 0. in
  (* z = L·e using only the lower triangle of the factored matrix. *)
  for j = 0 to n - 1 do
    let ej = e.(j) in
    for i = j to n - 1 do
      z.(i) <- z.(i) +. (Mat.unsafe_get l i j *. ej)
    done
  done;
  z

let synthesize ~rng ~cov locs = draw rng (factor cov locs)

let synthesize_many ~rng ~cov ~replicas locs =
  assert (replicas > 0);
  let l = factor cov locs in
  Array.init replicas (fun _ -> draw rng l)
