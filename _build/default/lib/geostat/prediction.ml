module Mat = Geomix_linalg.Mat
module Blas = Geomix_linalg.Blas

type t = { mean : float array; variance : float array }

let cross_distance a i b j =
  let ca = Locations.coord a i and cb = Locations.coord b j in
  let acc = ref 0. in
  for d = 0 to Array.length ca - 1 do
    let x = ca.(d) -. cb.(d) in
    acc := !acc +. (x *. x)
  done;
  sqrt !acc

let predict ~cov ~obs_locs ~z ~new_locs =
  assert (Locations.dim obs_locs = Locations.dim new_locs);
  let n = Locations.count obs_locs and m = Locations.count new_locs in
  assert (Array.length z = n);
  let l = Covariance.build_dense cov obs_locs in
  Blas.potrf_lower l;
  (* α = Σ⁻¹z through the factor. *)
  let alpha = Blas.trsv_lower_trans ~l (Blas.trsv_lower ~l z) in
  let mean = Array.make m 0. and variance = Array.make m 0. in
  let c0 = Covariance.element cov new_locs 0 0 in
  for j = 0 to m - 1 do
    let k = Array.init n (fun i -> Covariance.eval cov (cross_distance obs_locs i new_locs j)) in
    let mu = ref 0. in
    Array.iteri (fun i ki -> mu := !mu +. (ki *. alpha.(i))) k;
    mean.(j) <- !mu;
    (* σ*² = C(0) − k*ᵀΣ⁻¹k* via one forward solve. *)
    let w = Blas.trsv_lower ~l k in
    let s = Array.fold_left (fun acc v -> acc +. (v *. v)) 0. w in
    variance.(j) <- Float.max 0. (c0 -. s)
  done;
  { mean; variance }

let mse ~predicted ~truth =
  assert (Array.length predicted = Array.length truth);
  let acc = ref 0. in
  Array.iteri
    (fun i p ->
      let d = p -. truth.(i) in
      acc := !acc +. (d *. d))
    predicted;
  !acc /. float_of_int (Array.length predicted)
