(** The Gaussian log-likelihood of Eq. (1):

    {v ℓ(θ) = −(n/2)·log 2π − ½·log|Σ(θ)| − ½·Zᵀ·Σ(θ)⁻¹·Z v}

    evaluated through a Cholesky factorization of Σ(θ) — exact FP64, or the
    adaptive mixed-precision tile factorization under a given accuracy
    [u_req] (which is precisely what the paper accelerates). *)

type engine =
  | Exact
      (** dense FP64 — the "exact" reference of Figs 5–6 *)
  | Mixed of {
      u_req : float;                     (** accuracy of the norm rule *)
      nb : int;                          (** tile size *)
      options : Geomix_core.Mp_cholesky.options;
    }
  | Tlr of {
      tol : float;                       (** TLR compression tolerance *)
      nb : int;
      u_req : float option;              (** also apply the precision map *)
    }
      (** tile low-rank factorization (the paper's future-work extension),
          optionally composed with the adaptive precision map *)

val mixed : ?options:Geomix_core.Mp_cholesky.options -> u_req:float -> nb:int -> unit -> engine
(** [Mixed] with {!Geomix_core.Mp_cholesky.default_options}. *)

type evaluation = {
  loglik : float;
  log_det : float;
  quad_form : float;         (** Zᵀ·Σ⁻¹·Z *)
  precision_fractions : (Geomix_precision.Fpformat.t * float) list;
      (** tile precision mix used ([\[(Fp64, 1.)\]] for [Exact]) *)
}

val evaluate : engine -> cov:Covariance.t -> locs:Locations.t -> z:float array -> evaluation
(** @raise Geomix_linalg.Blas.Not_positive_definite when Σ(θ) is
    numerically indefinite at the working precision. *)

val loglik : engine -> cov:Covariance.t -> locs:Locations.t -> z:float array -> float
(** [(evaluate ...).loglik], with indefiniteness mapped to [neg_infinity]
    so optimisers treat such θ as infeasible. *)
