(** Kriging prediction at unobserved sites — the downstream use the paper's
    Section VII-B motivates ("once these parameters are estimated, the
    model can be utilized for predicting future measurements").

    The simple-kriging predictor for a zero-mean field is
    [ẑ* = Σ*ᵀ·Σ⁻¹·z] with conditional variance
    [σ*² = C(0) − k*ᵀ·Σ⁻¹·k*] per site. *)

type t = {
  mean : float array;      (** predictions ẑ* *)
  variance : float array;  (** conditional variances *)
}

val predict :
  cov:Covariance.t ->
  obs_locs:Locations.t ->
  z:float array ->
  new_locs:Locations.t ->
  t
(** Exact FP64 kriging from observed measurements to the new sites (both
    location sets must share the dimension). *)

val mse : predicted:float array -> truth:float array -> float
(** Mean squared prediction error against held-out truth. *)
