module Gamma = Geomix_specfun.Gamma
module Bessel = Geomix_specfun.Bessel

type family = Sqexp | Matern | Powexp | Spherical

type t = { family : family; sigma2 : float; beta : float; nu : float; nugget : float }

let default_nugget = 1e-6

let sqexp ?(nugget = default_nugget) ~sigma2 ~beta () =
  assert (sigma2 > 0. && beta > 0.);
  { family = Sqexp; sigma2; beta; nu = nan; nugget }

let matern ?(nugget = default_nugget) ~sigma2 ~beta ~nu () =
  assert (sigma2 > 0. && beta > 0. && nu > 0.);
  { family = Matern; sigma2; beta; nu; nugget }

let powexp ?(nugget = default_nugget) ~sigma2 ~beta ~power () =
  assert (sigma2 > 0. && beta > 0. && power > 0. && power <= 2.);
  { family = Powexp; sigma2; beta; nu = power; nugget }

let spherical ?(nugget = default_nugget) ~sigma2 ~beta () =
  assert (sigma2 > 0. && beta > 0.);
  { family = Spherical; sigma2; beta; nu = nan; nugget }

let eval t h =
  assert (h >= 0.);
  match t.family with
  | Sqexp -> t.sigma2 *. exp (-.(h *. h) /. t.beta)
  | Powexp -> t.sigma2 *. exp (-.Float.pow (h /. t.beta) t.nu)
  | Spherical ->
    if h >= t.beta then 0.
    else begin
      let r = h /. t.beta in
      t.sigma2 *. (1. -. (1.5 *. r) +. (0.5 *. r *. r *. r))
    end
  | Matern ->
    if h = 0. then t.sigma2
    else begin
      let x = h /. t.beta in
      if t.nu = 0.5 then
        (* Exponential special case, and the paper's "rough field". *)
        t.sigma2 *. exp (-.x)
      else begin
        let norm = Float.exp2 (1. -. t.nu) /. Gamma.gamma t.nu in
        let v = t.sigma2 *. norm *. Float.pow x t.nu *. Bessel.bessel_k ~nu:t.nu x in
        (* K_ν underflows for large x: the covariance is then 0. *)
        if Float.is_nan v then 0. else v
      end
    end

let element t locs i j =
  if i = j then t.sigma2 +. t.nugget else eval t (Locations.distance locs i j)

let build_dense t locs =
  let n = Locations.count locs in
  let m = Geomix_linalg.Mat.create ~rows:n ~cols:n in
  for j = 0 to n - 1 do
    Geomix_linalg.Mat.unsafe_set m j j (element t locs j j);
    for i = j + 1 to n - 1 do
      let v = element t locs i j in
      Geomix_linalg.Mat.unsafe_set m i j v;
      Geomix_linalg.Mat.unsafe_set m j i v
    done
  done;
  m

let build_tiled t locs ~nb =
  Geomix_tile.Tiled.init ~n:(Locations.count locs) ~nb (fun i j -> element t locs i j)

let theta t =
  match t.family with
  | Sqexp | Spherical -> [| t.sigma2; t.beta |]
  | Matern | Powexp -> [| t.sigma2; t.beta; t.nu |]

let with_theta t v =
  match (t.family, v) with
  | (Sqexp | Spherical), [| sigma2; beta |] -> { t with sigma2; beta }
  | (Matern | Powexp), [| sigma2; beta; nu |] -> { t with sigma2; beta; nu }
  | _ -> invalid_arg "Covariance.with_theta: wrong parameter count"
