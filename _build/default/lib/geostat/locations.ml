module Rng = Geomix_util.Rng

type t = { dim : int; coords : float array array }

let dim t = t.dim
let count t = Array.length t.coords
let coord t i = t.coords.(i)

let jittered_grid ~dims ~rng ~n =
  assert (n > 0);
  let side =
    int_of_float (Float.ceil (Float.pow (float_of_int n) (1. /. float_of_int dims)))
  in
  let cell = 1. /. float_of_int side in
  let total = int_of_float (Float.pow (float_of_int side) (float_of_int dims)) in
  let all =
    Array.init total (fun c ->
      let rec digits c k acc =
        if k = 0 then acc else digits (c / side) (k - 1) ((c mod side) :: acc)
      in
      let ds = digits c dims [] in
      Array.of_list
        (List.map
           (fun d ->
             (* Uniform inside the middle 80% of the cell. *)
             (float_of_int d *. cell) +. (cell *. (0.1 +. (0.8 *. Rng.float rng))))
           ds))
  in
  (* Keep a uniformly random subset of exactly n cells. *)
  Rng.shuffle rng all;
  { dim = dims; coords = Array.sub all 0 n }

let jittered_grid_2d ~rng ~n = jittered_grid ~dims:2 ~rng ~n
let jittered_grid_3d ~rng ~n = jittered_grid ~dims:3 ~rng ~n

let uniform ~dims ~rng ~n =
  { dim = dims; coords = Array.init n (fun _ -> Array.init dims (fun _ -> Rng.float rng)) }

let uniform_2d ~rng ~n = uniform ~dims:2 ~rng ~n
let uniform_3d ~rng ~n = uniform ~dims:3 ~rng ~n

let of_coord_list ~dims coords =
  let coords = Array.of_list coords in
  Array.iter (fun c -> assert (Array.length c = dims)) coords;
  { dim = dims; coords = Array.map Array.copy coords }

let subset t idx =
  { t with coords = Array.of_list (List.map (fun i -> Array.copy t.coords.(i)) idx) }

let distance t i j =
  let a = t.coords.(i) and b = t.coords.(j) in
  let acc = ref 0. in
  for d = 0 to t.dim - 1 do
    let x = a.(d) -. b.(d) in
    acc := !acc +. (x *. x)
  done;
  sqrt !acc

(* Morton key: interleave the top 16 bits of each (quantised) coordinate. *)
let morton_key dims coords =
  let quant = Array.map (fun c ->
    let v = int_of_float (c *. 65536.) in
    Stdlib.min 65535 (Stdlib.max 0 v))
    coords
  in
  let key = ref 0 in
  for bit = 15 downto 0 do
    for d = 0 to dims - 1 do
      key := (!key lsl 1) lor ((quant.(d) lsr bit) land 1)
    done
  done;
  !key

let morton_sort t =
  let keyed = Array.map (fun c -> (morton_key t.dim c, c)) t.coords in
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) keyed;
  { t with coords = Array.map snd keyed }
