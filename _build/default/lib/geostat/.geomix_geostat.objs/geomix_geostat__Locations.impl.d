lib/geostat/locations.ml: Array Float Geomix_util Int List Stdlib
