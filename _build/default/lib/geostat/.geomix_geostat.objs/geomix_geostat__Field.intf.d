lib/geostat/field.mli: Covariance Geomix_util Locations
