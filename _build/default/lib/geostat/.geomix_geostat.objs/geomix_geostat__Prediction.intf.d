lib/geostat/prediction.mli: Covariance Locations
