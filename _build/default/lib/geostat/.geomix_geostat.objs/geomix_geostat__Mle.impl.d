lib/geostat/mle.ml: Array Covariance Float Fun Geomix_optim Likelihood List Stdlib
