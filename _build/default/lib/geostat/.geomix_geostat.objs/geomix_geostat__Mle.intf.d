lib/geostat/mle.mli: Covariance Likelihood Locations
