lib/geostat/likelihood.ml: Array Covariance Float Geomix_core Geomix_linalg Geomix_precision Geomix_tile Geomix_tlr Locations
