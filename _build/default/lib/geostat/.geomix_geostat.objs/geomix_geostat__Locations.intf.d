lib/geostat/locations.mli: Geomix_util
