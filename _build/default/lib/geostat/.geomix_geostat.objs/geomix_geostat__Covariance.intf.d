lib/geostat/covariance.mli: Geomix_linalg Geomix_tile Locations
