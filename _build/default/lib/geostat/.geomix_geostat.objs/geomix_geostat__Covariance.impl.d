lib/geostat/covariance.ml: Float Geomix_linalg Geomix_specfun Geomix_tile Locations
