lib/geostat/likelihood.mli: Covariance Geomix_core Geomix_precision Locations
