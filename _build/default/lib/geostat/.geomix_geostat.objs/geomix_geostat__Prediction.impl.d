lib/geostat/prediction.ml: Array Covariance Float Geomix_linalg Locations
