lib/geostat/field.ml: Array Covariance Geomix_linalg Geomix_util
