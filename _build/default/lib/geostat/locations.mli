(** Synthetic spatial location sets.

    The paper's synthetic datasets place n sites in the unit square (2D) or
    unit cube (3D).  Like ExaGeoStat, the default generator perturbs a
    regular √n × √n grid with uniform jitter, which keeps sites irregular
    while bounding the minimum separation (important for the conditioning
    of squared-exponential covariances). *)

type t

val dim : t -> int
val count : t -> int
val coord : t -> int -> float array
(** Coordinates of site [i] (length {!dim}). *)

val jittered_grid_2d : rng:Geomix_util.Rng.t -> n:int -> t
(** ⌈√n⌉² grid cells in the unit square, one site per cell uniformly placed
    inside a centred sub-cell; exactly [n] sites are kept. *)

val jittered_grid_3d : rng:Geomix_util.Rng.t -> n:int -> t

val uniform_2d : rng:Geomix_util.Rng.t -> n:int -> t
(** Fully uniform sites (no separation guarantee). *)

val uniform_3d : rng:Geomix_util.Rng.t -> n:int -> t

val of_coord_list : dims:int -> float array list -> t
(** Wrap explicit coordinates (each of length [dims]) — used to split
    observation/prediction sets or to import external site lists. *)

val subset : t -> int list -> t
(** Sites selected by index, in the given order. *)

val distance : t -> int -> int -> float
(** Euclidean distance between two sites. *)

val morton_sort : t -> t
(** Sites reordered along a Z-order (Morton) space-filling curve, the
    ordering ExaGeoStat applies so that nearby tiles hold nearby sites —
    this is what gives the covariance matrix the "norm decays away from
    the diagonal" structure the tile-precision rule exploits. *)
