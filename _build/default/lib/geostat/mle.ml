module Nm = Geomix_optim.Nelder_mead
module Bl = Geomix_optim.Bobyqa_lite

type optimizer = Nelder_mead | Bobyqa_lite

type settings = {
  optimizer : optimizer;
  lower : float;
  upper : float;
  tol : float;
  max_evals : int;
}

let default_settings =
  { optimizer = Nelder_mead; lower = 0.01; upper = 2.; tol = 1e-9; max_evals = 400 }

type fit = {
  cov : Covariance.t;
  theta : float array;
  loglik : float;
  evals : int;
  converged : bool;
}

let param_count = function
  | Covariance.Sqexp | Covariance.Spherical -> 2
  | Covariance.Matern | Covariance.Powexp -> 3

let start_point settings family = Array.make (param_count family) settings.lower

let template ~nugget family =
  match family with
  | Covariance.Sqexp -> Covariance.sqexp ~nugget ~sigma2:1. ~beta:1. ()
  | Covariance.Matern -> Covariance.matern ~nugget ~sigma2:1. ~beta:1. ~nu:1. ()
  | Covariance.Powexp -> Covariance.powexp ~nugget ~sigma2:1. ~beta:1. ~power:1. ()
  | Covariance.Spherical -> Covariance.spherical ~nugget ~sigma2:1. ~beta:1. ()

let fit ?(settings = default_settings) ?(nugget = Covariance.default_nugget) ~engine
    ~family ~locs ~z () =
  let dim = param_count family in
  let base = template ~nugget family in
  (* Variance, range and smoothness are scale parameters: the optimiser
     works on log-θ, where the likelihood basin occupies a healthy fraction
     of the box instead of a sliver near the lower bound. Bounds, starting
     point and tolerance are still the paper's. *)
  let lower = Array.make dim (log settings.lower) in
  let upper = Array.make dim (log settings.upper) in
  let objective logtheta =
    (* Minimise the negative log-likelihood. *)
    let cov = Covariance.with_theta base (Array.map exp logtheta) in
    -.Likelihood.loglik engine ~cov ~locs ~z
  in
  let minimize ~max_evals x0 =
    match settings.optimizer with
    | Nelder_mead ->
      let r = Nm.minimize ~max_evals ~tol:settings.tol ~lower ~upper ~x0 objective in
      (r.Nm.x, r.Nm.fval, r.Nm.evals, r.Nm.converged)
    | Bobyqa_lite ->
      let r = Bl.minimize ~max_evals ~tol:settings.tol ~lower ~upper ~x0 objective in
      (r.Bl.x, r.Bl.fval, r.Bl.evals, r.Bl.converged)
  in
  (* Projection-based simplex methods can collapse against the bounds when
     started from the paper's all-lower-bounds corner (BOBYQA, which the
     paper uses, is immune).  A deterministic coarse grid scan over log-θ
     seeds the local search with the right basin, and a refinement restart
     polishes the result. *)
  let grid_per_dim = if dim <= 2 then 4 else 3 in
  let grid_points =
    let rec build acc d =
      if d = dim then [ Array.of_list (List.rev acc) ]
      else
        List.concat_map
          (fun i ->
            let frac = (float_of_int i +. 0.5) /. float_of_int grid_per_dim in
            build ((lower.(d) +. (frac *. (upper.(d) -. lower.(d)))) :: acc) (d + 1))
          (List.init grid_per_dim Fun.id)
    in
    build [] 0
  in
  let corner = Array.map log (start_point settings family) in
  let scans = List.map (fun x -> (x, objective x)) (corner :: grid_points) in
  let scans = List.filter (fun (_, f) -> not (Float.is_nan f)) scans in
  let spent_scan = List.length scans in
  let seed, _ =
    List.fold_left (fun ((_, bf) as b) ((_, f) as r) -> if f < bf then r else b)
      (List.hd scans) (List.tl scans)
  in
  let budget = Stdlib.max 10 ((settings.max_evals - spent_scan) / 2) in
  let x1, _, e1, _ = minimize ~max_evals:budget seed in
  let x, fval, e2, converged = minimize ~max_evals:budget x1 in
  let spent = spent_scan + e1 in
  let theta = Array.map exp x in
  {
    cov = Covariance.with_theta base theta;
    theta;
    loglik = -.fval;
    evals = spent + e2;
    converged;
  }
