(** The paper's two covariance families (Section III-A):

    - squared exponential (2D or 3D): [C(h) = σ²·exp(−h²/β)];
    - 2D Matérn: [C(h) = σ²·(2^{1−ν}/Γ(ν))·(h/β)^ν·K_ν(h/β)].

    A small nugget [τ²] is added on the diagonal.  The paper relies on the
    testbed's 40 000-site spread for numerical positive-definiteness; at the
    reduced scales of this reproduction the squared-exponential family needs
    explicit regularisation, so generation and estimation consistently use
    the same fixed nugget (documented in DESIGN.md). *)

type family =
  | Sqexp      (** squared exponential: [σ²·exp(−h²/β)] *)
  | Matern     (** Matérn: [σ²·(2^{1−ν}/Γ(ν))·(h/β)^ν·K_ν(h/β)] *)
  | Powexp     (** powered exponential: [σ²·exp(−(h/β)^ν)], 0 < ν ≤ 2 *)
  | Spherical  (** spherical: [σ²·(1 − 1.5(h/β) + 0.5(h/β)³)] for h < β, else 0 *)

type t = {
  family : family;
  sigma2 : float;  (** variance σ² *)
  beta : float;    (** range β *)
  nu : float;      (** smoothness ν / power (ignored by [Sqexp], [Spherical]) *)
  nugget : float;  (** τ² added at h = 0 *)
}

val default_nugget : float
(** 1e-6 — small enough not to disturb estimation at the paper's accuracy
    levels, large enough to keep strongly-correlated squared-exponential
    matrices positive definite at reduced n. *)

val sqexp : ?nugget:float -> sigma2:float -> beta:float -> unit -> t
val matern : ?nugget:float -> sigma2:float -> beta:float -> nu:float -> unit -> t

val powexp : ?nugget:float -> sigma2:float -> beta:float -> power:float -> unit -> t
(** [power] ∈ (0, 2]; [power = 2] coincides with {!sqexp} at range β²,
    [power = 1] is the exponential (Matérn ν = ½ at the same range). *)

val spherical : ?nugget:float -> sigma2:float -> beta:float -> unit -> t
(** Compactly supported: exactly zero beyond distance β (classical in
    mining geostatistics; gives genuinely sparse far-field tiles). *)

val eval : t -> float -> float
(** Covariance at distance [h ≥ 0] (without the nugget). *)

val element : t -> Locations.t -> int -> int -> float
(** Entry (i, j) of the covariance matrix Σ(θ) (nugget included at i = j). *)

val build_dense : t -> Locations.t -> Geomix_linalg.Mat.t

val build_tiled : t -> Locations.t -> nb:int -> Geomix_tile.Tiled.t

val theta : t -> float array
(** Parameter vector: [[σ²; β]] for [Sqexp], [[σ²; β; ν]] for [Matern]. *)

val with_theta : t -> float array -> t
(** Same family/nugget, new parameter vector. *)
