(** Maximum likelihood estimation of the covariance parameters — the
    application driver of the whole paper (Section VII-B).

    Mirrors the paper's optimisation protocol: a derivative-free
    bound-constrained optimiser (BOBYQA in the paper; Nelder–Mead or the
    BOBYQA-lite substitute here), all parameters constrained to
    [\[0.01, 2\]], optimisation started from the lower bounds, tolerance
    1e-9. *)

type optimizer = Nelder_mead | Bobyqa_lite

type settings = {
  optimizer : optimizer;
  lower : float;       (** per-parameter lower bound (paper: 0.01) *)
  upper : float;       (** per-parameter upper bound (paper: 2) *)
  tol : float;         (** optimiser tolerance (paper: 1e-9) *)
  max_evals : int;
}

val default_settings : settings

type fit = {
  cov : Covariance.t;        (** covariance at the estimate *)
  theta : float array;       (** parameter estimate *)
  loglik : float;
  evals : int;               (** likelihood evaluations spent *)
  converged : bool;
}

val fit :
  ?settings:settings ->
  ?nugget:float ->
  engine:Likelihood.engine ->
  family:Covariance.family ->
  locs:Locations.t ->
  z:float array ->
  unit ->
  fit
(** Estimate θ̂ for the given family from one measurement vector.  [nugget]
    (default {!Covariance.default_nugget}) is the fixed diagonal
    regularisation of the fitted model — it must match the one used for
    generation, otherwise unexplained white noise biases the range
    estimate.  The optimiser works on log-parameters (scale parameters)
    with the paper's bounds/start/tolerance, seeded by a coarse
    deterministic grid scan because projection-based simplex methods can
    collapse on the all-lower-bounds start the paper uses with BOBYQA. *)

val start_point : settings -> Covariance.family -> float array
(** The paper's starting point: every parameter at the lower bound. *)
