(** Energy accounting over a simulated execution trace — the Fig 10
    measurement: total joules, Gflops/Watt, and a power-vs-time series
    comparable to the nvidia-smi sampling the paper plots.

    Each trace event's [tag] must be a precision name (as produced by the
    Cholesky simulator); busy power is {!Gpu_specs.busy_power} of that
    precision, idle periods draw the idle power. *)

module Trace = Geomix_runtime.Trace

type report = {
  energy_joules : float;
  makespan : float;
  avg_power : float;           (** W, over the whole run and all GPUs *)
  gflops_per_watt : float;
}

val of_trace : Gpu_specs.t -> Trace.t -> ngpus:int -> flops:float -> report

val of_busy :
  Gpu_specs.t ->
  makespan:float ->
  ngpus:int ->
  flops:float ->
  busy:(Geomix_precision.Fpformat.t * float) list ->
  report
(** Trace-free accounting from aggregate busy seconds per precision — what
    the large simulated runs use instead of materialising millions of trace
    events. *)

val power_series :
  Gpu_specs.t -> Trace.t -> ngpus:int -> window:float -> (float * float) array
(** [(t, watts)] samples of aggregate power draw (all GPUs), one per
    window. *)
