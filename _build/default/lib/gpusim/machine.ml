type t = {
  name : string;
  gpu : Gpu_specs.t;
  gpus_per_node : int;
  nodes : int;
  h2d_bw : float;
  h2d_latency : float;
  d2d_bw : float;
  d2d_latency : float;
  nic_bw : float;
  nic_latency : float;
  host_mem_bytes : float;
}

let summit ?(nodes = 1) () =
  {
    name = (if nodes = 1 then "Summit node" else Printf.sprintf "Summit (%d nodes)" nodes);
    gpu = Gpu_specs.v100;
    gpus_per_node = 6;
    nodes;
    h2d_bw = 50e9;
    h2d_latency = 10e-6;
    d2d_bw = 50e9;
    d2d_latency = 5e-6;
    nic_bw = 25e9;
    nic_latency = 1.5e-6;
    host_mem_bytes = 256e9;
  }

let guyot () =
  {
    name = "Guyot";
    gpu = Gpu_specs.a100;
    gpus_per_node = 8;
    nodes = 1;
    h2d_bw = 25e9;
    h2d_latency = 10e-6;
    d2d_bw = 250e9;
    d2d_latency = 3e-6;
    nic_bw = 25e9;
    nic_latency = 1.5e-6;
    host_mem_bytes = 2063e9;
  }

let haxane () =
  {
    name = "Haxane";
    gpu = Gpu_specs.h100;
    gpus_per_node = 1;
    nodes = 1;
    h2d_bw = 50e9;
    h2d_latency = 10e-6;
    d2d_bw = 50e9;
    d2d_latency = 5e-6;
    nic_bw = 25e9;
    nic_latency = 1.5e-6;
    host_mem_bytes = 63e9;
  }

let single_gpu generation =
  match generation with
  | Gpu_specs.V100 -> { (summit ()) with name = "1xV100"; gpus_per_node = 1 }
  | Gpu_specs.A100 -> { (guyot ()) with name = "1xA100"; gpus_per_node = 1 }
  | Gpu_specs.H100 -> { (haxane ()) with name = "1xH100" }

let total_gpus t = t.gpus_per_node * t.nodes
let node_of_gpu t g = g / t.gpus_per_node

let max_matrix_fp64 t ~nb =
  (* Lower-triangle FP64 bytes of an n×n matrix ≈ 4·n² (n²/2 tiles × 8 B),
     capped additionally by host memory holding the full generation. *)
  let gpu_budget = 0.9 *. float_of_int (total_gpus t) *. t.gpu.Gpu_specs.mem_bytes in
  let host_budget = 0.8 *. float_of_int t.nodes *. t.host_mem_bytes in
  let budget = Float.min gpu_budget host_budget in
  let n = int_of_float (sqrt (budget /. 4.)) in
  Stdlib.max nb (n / nb * nb)
