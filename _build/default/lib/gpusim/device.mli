(** Simulated GPU device state: a serialised compute stream, a serialised
    copy engine (transfers overlap compute, as the paper's "data transfers
    completely overlapped with computations" relies on), and an LRU
    resident set over the device memory.

    Tiles are identified by caller-chosen integer keys (a tile version).
    Evictions report whether the victim was dirty so the simulator can
    charge the write-back transfer. *)

type t

val create : gpu:Gpu_specs.t -> capacity_bytes:float -> t

val gpu : t -> Gpu_specs.t

(** {1 Timelines} *)

val compute_free : t -> float
val busy_compute : t -> start:float -> dur:float -> float
(** Occupy the compute stream from [max start compute_free]; returns the
    finish time. *)

val link_free : t -> float
val busy_link : t -> start:float -> dur:float -> float
(** Same for the copy engine / host link. *)

(** {1 Resident set} *)

val resident : t -> key:int -> bool
(** Presence test; refreshes LRU recency on hit. *)

val mem : t -> key:int -> bool
(** Presence test without touching recency (used when probing peer devices
    as broadcast sources). *)

val insert : t -> key:int -> bytes:float -> dirty:bool -> (int * float * bool) list
(** Make [key] resident (replacing any previous entry under the same key);
    returns the evicted [(key, bytes, dirty)] victims, least recent
    first.  A single tile larger than capacity is admitted with an empty
    cache (the simulator sizes capacities to avoid this). *)

val evict : t -> key:int -> unit
(** Drop an entry if present (invalidation of a stale version). *)

val used_bytes : t -> float
val capacity_bytes : t -> float
