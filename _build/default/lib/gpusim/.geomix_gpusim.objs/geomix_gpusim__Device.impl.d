lib/gpusim/device.ml: Float Gpu_specs Hashtbl List
