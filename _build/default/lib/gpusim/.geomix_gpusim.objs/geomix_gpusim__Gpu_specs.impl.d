lib/gpusim/gpu_specs.ml: Geomix_precision Geomix_runtime
