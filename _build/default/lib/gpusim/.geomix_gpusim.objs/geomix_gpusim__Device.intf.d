lib/gpusim/device.mli: Gpu_specs
