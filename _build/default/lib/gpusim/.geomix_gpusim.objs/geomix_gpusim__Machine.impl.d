lib/gpusim/machine.ml: Float Gpu_specs Printf Stdlib
