lib/gpusim/exec_model.mli: Geomix_precision Geomix_runtime Gpu_specs Machine
