lib/gpusim/gpu_specs.mli: Geomix_precision Geomix_runtime
