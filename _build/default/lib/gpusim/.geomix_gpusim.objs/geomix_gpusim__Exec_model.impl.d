lib/gpusim/exec_model.ml: Geomix_precision Geomix_runtime Gpu_specs Machine
