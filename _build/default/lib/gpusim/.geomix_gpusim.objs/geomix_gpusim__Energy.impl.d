lib/gpusim/energy.ml: Array Float Geomix_precision Geomix_runtime Gpu_specs List Stdlib
