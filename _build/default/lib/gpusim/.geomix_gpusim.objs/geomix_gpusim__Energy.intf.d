lib/gpusim/energy.mli: Geomix_precision Geomix_runtime Gpu_specs
