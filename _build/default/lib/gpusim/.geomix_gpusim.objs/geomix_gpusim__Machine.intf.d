lib/gpusim/machine.mli: Gpu_specs
