module Fpformat = Geomix_precision.Fpformat
module Task = Geomix_runtime.Task

type generation = V100 | A100 | H100

type t = {
  generation : generation;
  name : string;
  mem_bytes : float;
  mem_bw : float;
  tdp : float;
  idle_power : float;
}

let v100 =
  {
    generation = V100;
    name = "V100 (NVLink)";
    mem_bytes = 16e9;
    mem_bw = 900e9;
    tdp = 300.;
    idle_power = 40.;
  }

let a100 =
  {
    generation = A100;
    name = "A100 (SXM)";
    mem_bytes = 80e9;
    mem_bw = 2039e9;
    tdp = 400.;
    idle_power = 50.;
  }

let h100 =
  {
    generation = H100;
    name = "H100 (PCIe)";
    mem_bytes = 80e9;
    mem_bw = 2000e9;
    tdp = 350.;
    idle_power = 50.;
  }

let of_generation = function V100 -> v100 | A100 -> a100 | H100 -> h100
let generation_name = function V100 -> "V100" | A100 -> "A100" | H100 -> "H100"

(* Table I of the paper, in flop/s.  FP16_32 runs on the FP16 tensor units. *)
let peak_flops t prec =
  let tf = 1e12 in
  match (t.generation, prec) with
  | V100, Fpformat.Fp64 -> 7.8 *. tf
  | V100, Fpformat.Fp32 -> 15.7 *. tf
  | V100, Fpformat.Tf32 -> 15.7 *. tf (* no TF32 units: dispatched as FP32 *)
  | V100, (Fpformat.Fp16 | Fpformat.Fp16_32) -> 125. *. tf
  | V100, Fpformat.Bf16_32 -> 125. *. tf (* no BF16 units: FP16 path *)
  | A100, Fpformat.Fp64 -> 19.5 *. tf (* tensor cores *)
  | A100, Fpformat.Fp32 -> 19.5 *. tf
  | A100, Fpformat.Tf32 -> 156. *. tf
  | A100, (Fpformat.Fp16 | Fpformat.Fp16_32 | Fpformat.Bf16_32) -> 312. *. tf
  | H100, Fpformat.Fp64 -> 51.2 *. tf (* tensor cores *)
  | H100, Fpformat.Fp32 -> 51.2 *. tf
  | H100, Fpformat.Tf32 -> 378. *. tf
  | H100, (Fpformat.Fp16 | Fpformat.Fp16_32 | Fpformat.Bf16_32) -> 756. *. tf

let supports t prec =
  match (t.generation, prec) with
  | V100, (Fpformat.Tf32 | Fpformat.Bf16_32) -> false
  | _ -> true

let fp64_uses_tensor_cores t =
  match t.generation with V100 -> false | A100 | H100 -> true

(* Sustained large-GEMM fraction of peak (Fig 1 calibration; the PCIe H100
   sustains visibly less of its datasheet peak than V100/A100 — Section
   VII-D attributes its lower end-to-end efficiency to exactly this). *)
let sustained_gemm t prec =
  match (t.generation, prec) with
  | V100, Fpformat.Fp64 -> 0.95
  | V100, (Fpformat.Fp32 | Fpformat.Tf32) -> 0.93
  | V100, _ -> 0.86
  | A100, Fpformat.Fp64 -> 0.95
  | A100, Fpformat.Fp32 -> 0.93
  | A100, _ -> 0.88
  | H100, (Fpformat.Fp64 | Fpformat.Fp32) -> 0.76
  | H100, _ -> 0.74

(* End-to-end runs sustain less than the resident GEMM benchmark: kernel
   launch, stream synchronisation and runtime overheads.  Calibrated so the
   simulated FP64 Cholesky efficiency lands where Section VII-D reports
   (84.2% V100, >85% A100, ~62% H100). *)
let runtime_overhead t =
  match t.generation with V100 | A100 -> 0.92 | H100 -> 0.82

(* The non-GEMM tile kernels sustain less of peak: TRSM/SYRK are rank-nb
   updates with worse locality, POTRF is latency-bound on its O(nb³/3)
   dependent flops. *)
let kernel_efficiency t kind prec =
  let g = sustained_gemm t prec *. runtime_overhead t in
  match (kind : Task.kind) with
  | Task.Gemm _ -> g
  | Task.Syrk _ -> 0.85 *. g
  | Task.Trsm _ -> 0.80 *. g
  | Task.Potrf _ -> 0.25 *. g

(* Sustained bandwidth of datatype-conversion kernels: about half of HBM on
   V100/A100; Hopper's TMA/async bulk copies convert at full stream rate. *)
let conversion_bw t =
  match t.generation with V100 | A100 -> 0.5 *. t.mem_bw | H100 -> t.mem_bw

let busy_power t prec =
  let frac =
    match prec with
    | Fpformat.Fp64 -> 0.92
    | Fpformat.Fp32 -> 0.84
    | Fpformat.Tf32 -> 0.90
    | Fpformat.Fp16_32 | Fpformat.Bf16_32 -> 0.95
    | Fpformat.Fp16 -> 0.97
  in
  t.idle_power +. (frac *. (t.tdp -. t.idle_power))
