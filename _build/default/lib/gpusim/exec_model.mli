(** Analytic kernel / transfer / conversion cost model.

    Calibrated against the paper's own measurements: Table II's tile-move
    and GEMM times on V100 follow directly from the Table I peaks and the
    50 GB/s NVLink host link. *)

module Fpformat = Geomix_precision.Fpformat
module Task = Geomix_runtime.Task

val gemm_time :
  Gpu_specs.t -> prec:Fpformat.t -> ?include_conversion:bool -> n:int -> unit -> float
(** Square [n]×[n]×[n] GEMM execution time (Fig 1 performance model).
    [include_conversion] adds the FP64→input-format datatype conversion of
    the A/B operands that the mixed modes pay (Fig 1 accounts for it). *)

val kernel_time : Gpu_specs.t -> Task.kind -> prec:Fpformat.t -> nb:int -> float
(** Execution time of one tile kernel at the given precision. *)

val conversion_time : Gpu_specs.t -> nb:int -> from:Fpformat.scalar -> into:Fpformat.scalar -> float
(** Datatype conversion of an [nb]×[nb] tile on the device — a
    memory-bandwidth-bound elementwise kernel. *)

val transfer_time : bw:float -> latency:float -> bytes:float -> float

val tile_move_time : Machine.t -> nb:int -> scalar:Fpformat.scalar -> float
(** Host↔device move of one tile (the "Move one tile/matrix" rows of
    Table II). *)
