type entry = {
  key : int;
  bytes : float;
  mutable dirty : bool;
  mutable prev : entry option;
  mutable next : entry option;
}

type t = {
  gpu : Gpu_specs.t;
  capacity : float;
  table : (int, entry) Hashtbl.t;
  mutable head : entry option; (* most recently used *)
  mutable tail : entry option; (* least recently used *)
  mutable used : float;
  mutable compute_free_at : float;
  mutable link_free_at : float;
}

let create ~gpu ~capacity_bytes =
  {
    gpu;
    capacity = capacity_bytes;
    table = Hashtbl.create 1024;
    head = None;
    tail = None;
    used = 0.;
    compute_free_at = 0.;
    link_free_at = 0.;
  }

let gpu t = t.gpu

let compute_free t = t.compute_free_at

let busy_compute t ~start ~dur =
  let s = Float.max start t.compute_free_at in
  t.compute_free_at <- s +. dur;
  t.compute_free_at

let link_free t = t.link_free_at

let busy_link t ~start ~dur =
  let s = Float.max start t.link_free_at in
  t.link_free_at <- s +. dur;
  t.link_free_at

(* Doubly-linked LRU list maintenance. *)

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  e.prev <- None;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let resident t ~key =
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some e ->
    unlink t e;
    push_front t e;
    true

let mem t ~key = Hashtbl.mem t.table key

let remove_entry t e =
  unlink t e;
  Hashtbl.remove t.table e.key;
  t.used <- t.used -. e.bytes

let evict t ~key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some e -> remove_entry t e

let insert t ~key ~bytes ~dirty =
  evict t ~key;
  let e = { key; bytes; dirty; prev = None; next = None } in
  Hashtbl.replace t.table key e;
  push_front t e;
  t.used <- t.used +. bytes;
  let victims = ref [] in
  let rec trim () =
    if t.used > t.capacity then begin
      match t.tail with
      | Some v when v != e ->
        victims := (v.key, v.bytes, v.dirty) :: !victims;
        remove_entry t v;
        trim ()
      | _ -> () (* never evict the entry just inserted *)
    end
  in
  trim ();
  List.rev !victims

let used_bytes t = t.used
let capacity_bytes t = t.capacity
