module Trace = Geomix_runtime.Trace
module Fpformat = Geomix_precision.Fpformat

type report = {
  energy_joules : float;
  makespan : float;
  avg_power : float;
  gflops_per_watt : float;
}

let event_power gpu (e : Trace.event) =
  match Fpformat.of_string e.tag with
  | Some prec -> Gpu_specs.busy_power gpu prec
  | None -> gpu.Gpu_specs.idle_power (* transfers etc.: idle-level draw *)

let of_trace gpu trace ~ngpus ~flops =
  let makespan = Trace.makespan trace in
  let busy_energy =
    List.fold_left
      (fun acc (e : Trace.event) ->
        acc +. ((event_power gpu e -. gpu.Gpu_specs.idle_power) *. (e.stop -. e.start)))
      0. (Trace.events trace)
  in
  let idle_energy = gpu.Gpu_specs.idle_power *. makespan *. float_of_int ngpus in
  let energy_joules = busy_energy +. idle_energy in
  let avg_power = if makespan > 0. then energy_joules /. makespan else 0. in
  let gflops_per_watt = if energy_joules > 0. then flops /. 1e9 /. energy_joules else 0. in
  { energy_joules; makespan; avg_power; gflops_per_watt }

let of_busy gpu ~makespan ~ngpus ~flops ~busy =
  let busy_energy =
    List.fold_left
      (fun acc (prec, seconds) ->
        acc +. ((Gpu_specs.busy_power gpu prec -. gpu.Gpu_specs.idle_power) *. seconds))
      0. busy
  in
  let idle_energy = gpu.Gpu_specs.idle_power *. makespan *. float_of_int ngpus in
  let energy_joules = busy_energy +. idle_energy in
  let avg_power = if makespan > 0. then energy_joules /. makespan else 0. in
  let gflops_per_watt = if energy_joules > 0. then flops /. 1e9 /. energy_joules else 0. in
  { energy_joules; makespan; avg_power; gflops_per_watt }

let power_series gpu trace ~ngpus ~window =
  assert (window > 0.);
  let makespan = Trace.makespan trace in
  if makespan = 0. then [||]
  else begin
    let nwin = int_of_float (Float.ceil (makespan /. window)) in
    let extra = Array.make nwin 0. in
    List.iter
      (fun (e : Trace.event) ->
        let p_extra = event_power gpu e -. gpu.Gpu_specs.idle_power in
        let w0 = int_of_float (e.start /. window) in
        let w1 = Stdlib.min (nwin - 1) (int_of_float (e.stop /. window)) in
        for w = w0 to w1 do
          let lo = Float.max e.start (float_of_int w *. window) in
          let hi = Float.min e.stop (float_of_int (w + 1) *. window) in
          if hi > lo then extra.(w) <- extra.(w) +. (p_extra *. (hi -. lo))
        done)
      (Trace.events trace);
    Array.mapi
      (fun w e ->
        ( float_of_int w *. window,
          (gpu.Gpu_specs.idle_power *. float_of_int ngpus) +. (e /. window) ))
      extra
  end
