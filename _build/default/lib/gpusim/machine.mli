(** System descriptions of the paper's three test platforms (Section VII-A)
    — GPU type and count per node, link bandwidths, host memory — plus
    constructors for scaled configurations (Summit with N nodes). *)

type t = {
  name : string;
  gpu : Gpu_specs.t;
  gpus_per_node : int;
  nodes : int;
  h2d_bw : float;        (** host↔device bandwidth per GPU, B/s *)
  h2d_latency : float;   (** s *)
  d2d_bw : float;        (** intra-node GPU↔GPU bandwidth, B/s *)
  d2d_latency : float;
  nic_bw : float;        (** inter-node bandwidth per node, B/s *)
  nic_latency : float;
  host_mem_bytes : float;
}

val summit : ?nodes:int -> unit -> t
(** IBM AC922 nodes: 6 × V100, NVLink2 host links (50 GB/s — the measured
    Table II rate), dual-EDR InfiniBand. Default 1 node. *)

val guyot : unit -> t
(** ICL's 8 × A100-SXM4-80GB node. *)

val haxane : unit -> t
(** ICL's 1 × H100-PCIe node with 63 GB of host memory — the memory limit
    that caps the matrix sizes of Figs 8c/10. *)

val single_gpu : Gpu_specs.generation -> t
(** One GPU of the given generation on its native platform. *)

val total_gpus : t -> int
val node_of_gpu : t -> int -> int
(** Node index hosting a (flattened) GPU index. *)

val max_matrix_fp64 : t -> nb:int -> int
(** Largest matrix order (a multiple of [nb]) whose full FP64 lower
    triangle fits in the aggregate GPU memory — the sizing rule used for
    Fig 10 ("the largest one that fits in GPU memory using FP64"). *)
