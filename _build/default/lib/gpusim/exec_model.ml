module Fpformat = Geomix_precision.Fpformat
module Flops = Geomix_precision.Flops
module Task = Geomix_runtime.Task

let conversion_time gpu ~nb ~from ~into =
  if from = into then 0.
  else begin
    let bytes =
      Flops.tile_bytes ~nb ~scalar:from +. Flops.tile_bytes ~nb ~scalar:into
    in
    bytes /. Gpu_specs.conversion_bw gpu
  end

let gemm_time gpu ~prec ?(include_conversion = false) ~n () =
  let flops = Flops.gemm_full ~m:n ~n ~k:n in
  let rate = Gpu_specs.peak_flops gpu prec *. Gpu_specs.sustained_gemm gpu prec in
  let conv =
    if include_conversion then begin
      (* A and B arrive in FP64 and must be converted to the input format
         of the mixed modes; FP64/FP32 kernels consume them directly. *)
      let into = Fpformat.input_scalar prec in
      if into = Fpformat.S_fp64 || into = Fpformat.S_fp32 then 0.
      else 2. *. conversion_time gpu ~nb:n ~from:Fpformat.S_fp32 ~into
    end
    else 0.
  in
  (flops /. rate) +. conv

let kernel_time gpu kind ~prec ~nb =
  let flops = Task.flops ~nb kind in
  let rate = Gpu_specs.peak_flops gpu prec *. Gpu_specs.kernel_efficiency gpu kind prec in
  flops /. rate

let transfer_time ~bw ~latency ~bytes = latency +. (bytes /. bw)

let tile_move_time machine ~nb ~scalar =
  let bytes = Flops.tile_bytes ~nb ~scalar in
  transfer_time ~bw:machine.Machine.h2d_bw ~latency:machine.Machine.h2d_latency ~bytes
