(** Analytic models of the three NVIDIA GPU generations the paper evaluates
    (Table I), plus the measured-bandwidth and power constants the cost
    model needs.

    Peak numbers are the paper's Table I; sustained-GEMM fractions are
    calibrated so the modelled GEMM benchmark lands where Fig 1 reports
    (near-peak on V100/A100, "marginally lower" on the PCIe H100). *)

module Fpformat = Geomix_precision.Fpformat

type generation = V100 | A100 | H100

type t = {
  generation : generation;
  name : string;
  mem_bytes : float;      (** device HBM capacity *)
  mem_bw : float;         (** device memory bandwidth, B/s (datatype
                              conversions are memory-bound) *)
  tdp : float;            (** max thermal design power, W *)
  idle_power : float;     (** W *)
}

val v100 : t
(** Tesla V100 (NVLink, 16 GB) as deployed on Summit. *)

val a100 : t
(** A100-SXM4-80GB as deployed on Guyot. *)

val h100 : t
(** H100 PCIe (80 GB) as deployed on Haxane. *)

val of_generation : generation -> t
val generation_name : generation -> string

val peak_flops : t -> Fpformat.t -> float
(** Theoretical peak (flop/s) of a kernel of the given precision: FP64
    tensor cores on A100/H100, FP16 tensor for FP16/FP16_32, etc.
    Precisions the part lacks (TF32/BF16 on V100) fall back to the nearest
    supported unit, matching how a library would dispatch. *)

val sustained_gemm : t -> Fpformat.t -> float
(** Fraction of peak a large resident GEMM sustains (Fig 1 calibration). *)

val kernel_efficiency : t -> Geomix_runtime.Task.kind -> Fpformat.t -> float
(** Fraction of peak sustained by each tile kernel inside a full run: GEMM
    at {!sustained_gemm} times {!runtime_overhead}; TRSM/SYRK somewhat
    lower; POTRF latency-bound. *)

val runtime_overhead : t -> float
(** End-to-end derating (launch/synchronisation/runtime costs) applied on
    top of the resident-GEMM sustained fraction. *)

val conversion_bw : t -> float
(** Sustained bandwidth (B/s) of datatype-conversion kernels. *)

val busy_power : t -> Fpformat.t -> float
(** Average power draw (W) while executing kernels of the given precision;
    tensor-heavy kernels run closest to TDP. *)

val supports : t -> Fpformat.t -> bool
(** Whether the part has native units for the precision (the "-" entries of
    Table I: no TF32/BF16/FP64-tensor on V100). *)

val fp64_uses_tensor_cores : t -> bool
(** True on A100/H100 — which is why FP64 and FP32 share a peak there and
    why the mixed approach saves less energy on those parts (Section
    VII-E). *)
