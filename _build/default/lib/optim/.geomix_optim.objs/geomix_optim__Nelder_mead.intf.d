lib/optim/nelder_mead.mli:
