lib/optim/bobyqa_lite.mli:
