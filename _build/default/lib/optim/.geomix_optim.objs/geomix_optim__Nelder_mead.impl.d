lib/optim/nelder_mead.ml: Array Float Fun
