lib/optim/bobyqa_lite.ml: Array Float
