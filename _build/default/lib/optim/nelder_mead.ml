type result = { x : float array; fval : float; evals : int; converged : bool }

let clip lower upper x =
  Array.mapi (fun i v -> Float.min upper.(i) (Float.max lower.(i) v)) x

let minimize ?max_evals ?(tol = 1e-9) ?init_step ~lower ~upper ~x0 f =
  let dim = Array.length x0 in
  assert (dim > 0 && Array.length lower = dim && Array.length upper = dim);
  Array.iteri (fun i lo -> assert (lo <= upper.(i))) lower;
  let max_evals = match max_evals with Some m -> m | None -> 500 * dim in
  let evals = ref 0 in
  let eval x =
    incr evals;
    f x
  in
  let project x = clip lower upper x in
  (* Initial simplex: x0 plus a step along each coordinate, reflected
     inward when the step would leave the box. *)
  let x0 = project x0 in
  let step i =
    match init_step with
    | Some s -> s
    | None -> 0.25 *. (upper.(i) -. lower.(i))
  in
  let vertex i =
    if i = 0 then Array.copy x0
    else begin
      let v = Array.copy x0 in
      let j = i - 1 in
      let s = step j in
      let s = if v.(j) +. s > upper.(j) then -.s else s in
      v.(j) <- v.(j) +. s;
      project v
    end
  in
  let simplex = Array.init (dim + 1) vertex in
  let fvals = Array.map eval simplex in
  let order () =
    let idx = Array.init (dim + 1) Fun.id in
    Array.sort (fun a b -> Float.compare fvals.(a) fvals.(b)) idx;
    let s = Array.map (fun i -> simplex.(i)) idx in
    let fv = Array.map (fun i -> fvals.(i)) idx in
    Array.blit s 0 simplex 0 (dim + 1);
    Array.blit fv 0 fvals 0 (dim + 1)
  in
  let centroid () =
    let c = Array.make dim 0. in
    for i = 0 to dim - 1 do
      for j = 0 to dim - 1 do
        c.(j) <- c.(j) +. simplex.(i).(j)
      done
    done;
    Array.map (fun v -> v /. float_of_int dim) c
  in
  let combine c xr alpha =
    project (Array.init dim (fun j -> c.(j) +. (alpha *. (xr.(j) -. c.(j)))))
  in
  let converged () =
    let fspread = Float.abs (fvals.(dim) -. fvals.(0)) in
    let dspread = ref 0. in
    for i = 1 to dim do
      for j = 0 to dim - 1 do
        dspread := Float.max !dspread (Float.abs (simplex.(i).(j) -. simplex.(0).(j)))
      done
    done;
    fspread <= tol *. (1. +. Float.abs fvals.(0)) && !dspread <= tol *. (1. +. !dspread)
    || fspread <= tol && !dspread <= tol
  in
  let rec iterate () =
    order ();
    if converged () || !evals >= max_evals then ()
    else begin
      let c = centroid () in
      let worst = simplex.(dim) in
      let xr = combine c worst (-1.) in
      let fr = eval xr in
      if fr < fvals.(0) then begin
        (* Expansion. *)
        let xe = combine c worst (-2.) in
        let fe = eval xe in
        if fe < fr then begin
          simplex.(dim) <- xe;
          fvals.(dim) <- fe
        end
        else begin
          simplex.(dim) <- xr;
          fvals.(dim) <- fr
        end;
        iterate ()
      end
      else if fr < fvals.(dim - 1) then begin
        simplex.(dim) <- xr;
        fvals.(dim) <- fr;
        iterate ()
      end
      else begin
        (* Contraction (outside if the reflection helped at all). *)
        let xc =
          if fr < fvals.(dim) then combine c worst (-0.5) else combine c worst 0.5
        in
        let fc = eval xc in
        if fc < Float.min fr fvals.(dim) then begin
          simplex.(dim) <- xc;
          fvals.(dim) <- fc;
          iterate ()
        end
        else begin
          (* Shrink toward the best vertex. *)
          for i = 1 to dim do
            simplex.(i) <-
              project
                (Array.init dim (fun j ->
                   simplex.(0).(j) +. (0.5 *. (simplex.(i).(j) -. simplex.(0).(j)))));
            fvals.(i) <- eval simplex.(i)
          done;
          iterate ()
        end
      end
    end
  in
  iterate ();
  order ();
  { x = Array.copy simplex.(0); fval = fvals.(0); evals = !evals; converged = converged () }
