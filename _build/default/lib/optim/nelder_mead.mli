(** Bound-constrained Nelder–Mead simplex minimisation.

    The paper drives MLE with NLOPT's BOBYQA; this library substitutes
    derivative-free local optimisers of the same role (see DESIGN.md).
    Nelder–Mead with projection onto the box is the default engine of
    {!Geomix_geostat.Mle}; {!Bobyqa_lite} offers a quadratic-model
    alternative. *)

type result = {
  x : float array;       (** best point found *)
  fval : float;          (** objective there *)
  evals : int;           (** objective evaluations spent *)
  converged : bool;      (** simplex diameter and f-spread under [tol] *)
}

val minimize :
  ?max_evals:int ->
  ?tol:float ->
  ?init_step:float ->
  lower:float array ->
  upper:float array ->
  x0:float array ->
  (float array -> float) ->
  result
(** [minimize ~lower ~upper ~x0 f] minimises [f] over the box.  [x0] is
    clipped into the box; [init_step] (default 0.25 of each box width)
    sizes the initial simplex; [tol] (default 1e-9, the paper's NLOPT
    tolerance) bounds both the simplex size and the objective spread at
    convergence; [max_evals] defaults to 500·dim. *)
