type result = { x : float array; fval : float; evals : int; converged : bool }

let minimize ?max_evals ?(tol = 1e-9) ?(rho_begin = 0.25) ~lower ~upper ~x0 f =
  let dim = Array.length x0 in
  assert (dim > 0 && Array.length lower = dim && Array.length upper = dim);
  let max_evals = match max_evals with Some m -> m | None -> 500 * dim in
  let width = Array.init dim (fun i -> upper.(i) -. lower.(i)) in
  let min_width = Array.fold_left Float.min width.(0) width in
  let clip i v = Float.min upper.(i) (Float.max lower.(i) v) in
  let evals = ref 0 in
  let eval x =
    incr evals;
    f x
  in
  let x = Array.mapi (fun i v -> clip i v) x0 in
  let fx = ref (eval x) in
  let rho = ref (rho_begin *. min_width) in
  let rho_end = tol *. min_width in
  let converged = ref false in
  while (not !converged) && !evals + (2 * dim) + 1 <= max_evals && !rho > rho_end do
    (* Build a diagonal quadratic model from a coordinate stencil. *)
    let g = Array.make dim 0. and h = Array.make dim 0. in
    for i = 0 to dim - 1 do
      let step = Float.min !rho (0.5 *. width.(i)) in
      let xp = Array.copy x and xm = Array.copy x in
      xp.(i) <- clip i (x.(i) +. step);
      xm.(i) <- clip i (x.(i) -. step);
      let dp = xp.(i) -. x.(i) and dm = xm.(i) -. x.(i) in
      if dp = 0. && dm = 0. then ()
      else begin
        let fp = if dp = 0. then !fx else eval xp in
        let fm = if dm = 0. then !fx else eval xm in
        (* Quadratic interpolation through (dm,fm), (0,fx), (dp,fp). *)
        if dp <> 0. && dm <> 0. then begin
          g.(i) <- ((fp -. fm) /. (dp -. dm))
                   -. ((dp +. dm) *. (((fp -. !fx) /. dp) -. ((fm -. !fx) /. dm))
                      /. (dp -. dm));
          h.(i) <- 2. *. (((fp -. !fx) /. dp) -. ((fm -. !fx) /. dm)) /. (dp -. dm)
        end
        else begin
          let d = if dp <> 0. then dp else dm in
          let fv = if dp <> 0. then fp else fm in
          g.(i) <- (fv -. !fx) /. d;
          h.(i) <- 0.
        end
      end
    done;
    (* Minimise the separable model within the trust region and the box. *)
    let cand = Array.copy x in
    for i = 0 to dim - 1 do
      let d =
        if h.(i) > 1e-300 then -.g.(i) /. h.(i)
        else if g.(i) > 0. then -. !rho
        else if g.(i) < 0. then !rho
        else 0.
      in
      let d = Float.min !rho (Float.max (-. !rho) d) in
      cand.(i) <- clip i (x.(i) +. d)
    done;
    let fc = if Array.exists2 (fun a b -> a <> b) cand x then eval cand else !fx in
    if fc < !fx -. (1e-12 *. (1. +. Float.abs !fx)) then begin
      Array.blit cand 0 x 0 dim;
      fx := fc
      (* Successful step: keep the radius. *)
    end
    else rho := !rho /. 2.5;
    if !rho <= rho_end then converged := true
  done;
  { x; fval = !fx; evals = !evals; converged = !converged }
