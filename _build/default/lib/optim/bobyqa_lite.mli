(** A BOBYQA-flavoured bound-constrained minimiser.

    Like Powell's BOBYQA (which the paper uses through NLOPT), this is a
    derivative-free trust-region method over a quadratic model; unlike the
    original it keeps the model {e separable} (a diagonal quadratic rebuilt
    from a 2n+1 coordinate stencil each outer iteration), which makes it a
    few dozen lines while retaining the bound handling and trust-region
    dynamics.  Good on the smooth low-dimensional likelihood surfaces of
    the MLE problems; {!Nelder_mead} is more robust on noisy ones. *)

type result = {
  x : float array;
  fval : float;
  evals : int;
  converged : bool;  (** trust region shrank below [tol] *)
}

val minimize :
  ?max_evals:int ->
  ?tol:float ->
  ?rho_begin:float ->
  lower:float array ->
  upper:float array ->
  x0:float array ->
  (float array -> float) ->
  result
(** [rho_begin] is the initial trust radius as a fraction of the smallest
    box width (default 0.25); [tol] the final radius (default 1e-9,
    relative to box width). *)
