(** Floating-point operation counts for the tile kernels of Algorithm 1 and
    for whole factorizations.  These drive both the simulator's kernel-time
    model and the Gflop/s reporting of the benchmark harness. *)

val gemm : int -> float
(** [gemm nb] — flops of [C ← C - A·Bᵀ] on [nb]×[nb] tiles: [2·nb³]. *)

val syrk : int -> float
(** [syrk nb] — flops of [C ← C - A·Aᵀ]: [nb²·(nb+1)]. *)

val trsm : int -> float
(** [trsm nb] — flops of a triangular solve with [nb] right-hand sides:
    [nb³]. *)

val potrf : int -> float
(** [potrf nb] — flops of a tile Cholesky: [nb³/3 + O(nb²)]. *)

val cholesky : int -> float
(** [cholesky n] — flops of a full n×n Cholesky: [n³/3 + O(n²)]. *)

val cholesky_tiled : nt:int -> nb:int -> float
(** Exact flop total of the tiled Algorithm 1 with [nt]×[nt] tiles of order
    [nb] (sums the four kernel counts over the task graph). *)

val gemm_full : m:int -> n:int -> k:int -> float
(** General rectangular GEMM: [2·m·n·k] (used by the Fig 1 benchmark). *)

val tile_bytes : nb:int -> scalar:Fpformat.scalar -> float
(** Memory/transfer footprint of one [nb]×[nb] tile in the given format. *)
