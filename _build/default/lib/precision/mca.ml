module Rng = Geomix_util.Rng
module Stats = Geomix_util.Stats

type mode = Rr | Pb | Full

type t = { mode : mode; rng : Rng.t; virtual_precision : int }

let create ?(mode = Rr) ~rng ~virtual_precision () =
  assert (virtual_precision >= 1 && virtual_precision <= 52);
  { mode; rng; virtual_precision }

let stochastic_round rng ~mant_bits x =
  if x = 0. || not (Float.is_finite x) then x
  else begin
    let _, e = Float.frexp x in
    let shift = mant_bits + 1 - e in
    let scaled = Float.ldexp x shift in
    let lo = Float.floor scaled in
    let frac = scaled -. lo in
    if frac = 0. then x
    else begin
      let up = Rng.float rng < frac in
      Float.ldexp (if up then lo +. 1. else lo) (-shift)
    end
  end

let inexact rng ~virtual_precision x =
  if x = 0. || not (Float.is_finite x) then x
  else begin
    let xi = Rng.float rng -. 0.5 in
    let _, e = Float.frexp x in
    x +. Float.ldexp xi (e - virtual_precision)
  end

let perturb t x =
  match t.mode with
  | Rr -> stochastic_round t.rng ~mant_bits:(t.virtual_precision - 1) x
  | Pb -> inexact t.rng ~virtual_precision:t.virtual_precision x
  | Full ->
    stochastic_round t.rng ~mant_bits:(t.virtual_precision - 1)
      (inexact t.rng ~virtual_precision:t.virtual_precision x)

let significant_digits samples =
  let mu = Stats.mean samples in
  let sigma = Stats.std samples in
  if sigma = 0. then infinity
  else if mu = 0. then 0.
  else -.Float.log10 (sigma /. Float.abs mu)
