(** Monte-Carlo arithmetic (MCA).

    Section V of the paper uses a Monte-Carlo arithmetic method to probe how
    reduced precision perturbs the application before committing to an
    accuracy threshold [u_req].  MCA models a virtual precision of [t]
    significand bits by randomising the rounding of each value; running an
    application several times under MCA and inspecting the spread of its
    outputs reveals how many significant bits survive. *)

type mode =
  | Rr   (** random rounding: round up or down with probability proportional
             to the distance to each neighbour (unbiased) *)
  | Pb   (** precision bounding: additive uniform noise of magnitude
             2{^1-t} relative to the value (models inexact operands) *)
  | Full (** both [Rr] and [Pb] *)

type t

val create : ?mode:mode -> rng:Geomix_util.Rng.t -> virtual_precision:int -> unit -> t
(** [create ~rng ~virtual_precision:t ()] builds an MCA context simulating
    [t] significand bits (e.g. 24 for FP32-like, 11 for FP16-like). *)

val perturb : t -> float -> float
(** Apply the MCA perturbation to one value. *)

val stochastic_round : Geomix_util.Rng.t -> mant_bits:int -> float -> float
(** Stand-alone stochastic rounding to a grid with [mant_bits] explicit
    significand bits: rounds to one of the two enclosing grid points with
    probability proportional to proximity, so it is unbiased in
    expectation. *)

val significant_digits : float array -> float
(** Stott–Parker estimate of the number of significant {e decimal} digits of
    a set of MCA samples: [s = -log10 (σ / |μ|)]; [infinity] when all
    samples agree exactly. *)
