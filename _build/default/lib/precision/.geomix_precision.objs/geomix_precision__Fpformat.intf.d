lib/precision/fpformat.mli: Format
