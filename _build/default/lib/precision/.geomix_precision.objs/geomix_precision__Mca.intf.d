lib/precision/mca.mli: Geomix_util
