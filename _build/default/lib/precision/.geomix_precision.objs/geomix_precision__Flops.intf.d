lib/precision/flops.mli: Fpformat
