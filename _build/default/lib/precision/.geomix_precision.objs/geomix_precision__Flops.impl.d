lib/precision/flops.ml: Fpformat
