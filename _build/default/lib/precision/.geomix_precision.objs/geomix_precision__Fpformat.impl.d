lib/precision/fpformat.ml: Float Format Int String
