lib/precision/mca.ml: Float Geomix_util
