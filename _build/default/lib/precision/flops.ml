let cube n = float_of_int n *. float_of_int n *. float_of_int n
let square n = float_of_int n *. float_of_int n

let gemm nb = 2. *. cube nb
let syrk nb = square nb *. float_of_int (nb + 1)
let trsm nb = cube nb

let potrf nb =
  let n = float_of_int nb in
  (n *. n *. n /. 3.) +. (n *. n /. 2.) +. (n /. 6.)

let cholesky n =
  let n = float_of_int n in
  (n *. n *. n /. 3.) +. (n *. n /. 2.) +. (n /. 6.)

let cholesky_tiled ~nt ~nb =
  let total = ref 0. in
  for k = 0 to nt - 1 do
    total := !total +. potrf nb;
    for _m = k + 1 to nt - 1 do
      total := !total +. trsm nb +. syrk nb
    done;
    for m = k + 2 to nt - 1 do
      for _n = k + 1 to m - 1 do
        ignore m;
        total := !total +. gemm nb
      done
    done
  done;
  !total

let gemm_full ~m ~n ~k = 2. *. float_of_int m *. float_of_int n *. float_of_int k

let tile_bytes ~nb ~scalar = square nb *. float_of_int (Fpformat.scalar_bytes scalar)
