(** Gamma function via the Lanczos approximation (g = 7, 9 coefficients),
    accurate to ~15 significant digits over the real line away from the
    poles.  Required by the Matérn covariance normaliser [2^{1-ν}/Γ(ν)] and
    by the Temme series of {!Bessel}. *)

val lgamma : float -> float
(** [lgamma x] is [ln |Γ(x)|] for [x] not a non-positive integer. *)

val gamma : float -> float
(** [gamma x] is [Γ(x)]; uses the reflection formula for [x < 0.5] and
    returns [nan] at the poles. *)

val euler_gamma : float
(** The Euler–Mascheroni constant γ ≈ 0.5772156649. *)
