let eps = 1e-16
let fpmin = 1e-300
let maxit = 10000
let xmin = 2.

(* (1/Γ(1-μ) - 1/Γ(1+μ)) / (2μ)  and  (1/Γ(1-μ) + 1/Γ(1+μ)) / 2,
   the Temme auxiliary functions; the direct formula is safe for
   |μ| ≥ 1e-6 and the μ→0 limit (-γ, 1) below that. *)
let temme_gammas mu =
  if Float.abs mu < 1e-6 then (-.Gamma.euler_gamma, 1.)
  else begin
    let gammi = 1. /. Gamma.gamma (1. -. mu) in
    let gampl = 1. /. Gamma.gamma (1. +. mu) in
    ((gammi -. gampl) /. (2. *. mu), (gammi +. gampl) /. 2.)
  end

(* Temme's series for K_μ(x) and K_{μ+1}(x), x ≤ 2, |μ| ≤ 1/2. *)
let temme_series ~mu x =
  let x2 = x /. 2. in
  let pimu = Float.pi *. mu in
  let fact = if Float.abs pimu < eps then 1. else pimu /. sin pimu in
  let d = -.log x2 in
  let e = mu *. d in
  let fact2 = if Float.abs e < eps then 1. else sinh e /. e in
  let gam1, gam2 = temme_gammas mu in
  let gampl = gam2 -. (mu *. gam1) in
  let gammi = gam2 +. (mu *. gam1) in
  let ff = ref (fact *. ((gam1 *. cosh e) +. (gam2 *. fact2 *. d))) in
  let sum = ref !ff in
  let e = exp e in
  let p = ref (0.5 *. e /. gampl) in
  let q = ref (0.5 /. (e *. gammi)) in
  let c = ref 1. in
  let d = x2 *. x2 in
  let sum1 = ref !p in
  let mu2 = mu *. mu in
  (try
     for i = 1 to maxit do
       let fi = float_of_int i in
       ff := ((fi *. !ff) +. !p +. !q) /. ((fi *. fi) -. mu2);
       c := !c *. d /. fi;
       p := !p /. (fi -. mu);
       q := !q /. (fi +. mu);
       let del = !c *. !ff in
       sum := !sum +. del;
       let del1 = !c *. (!p -. (fi *. !ff)) in
       sum1 := !sum1 +. del1;
       if Float.abs del < Float.abs !sum *. eps then raise Exit
     done;
     invalid_arg "Bessel: Temme series failed to converge"
   with Exit -> ());
  (!sum, !sum1 *. 2. /. x)

(* Steed's CF2 for K_μ(x) and K_{μ+1}(x), x > 2, |μ| ≤ 1/2. *)
let steed_cf2 ~mu x =
  let mu2 = mu *. mu in
  let b = ref (2. *. (1. +. x)) in
  let d = ref (1. /. !b) in
  let delh = ref !d in
  let h = ref !delh in
  let q1 = ref 0. and q2 = ref 1. in
  let a1 = 0.25 -. mu2 in
  let q = ref a1 and c = ref a1 in
  let a = ref (-.a1) in
  let s = ref (1. +. (!q *. !delh)) in
  (try
     for i = 2 to maxit do
       a := !a -. (2. *. float_of_int (i - 1));
       c := -. !a *. !c /. float_of_int i;
       let qnew = (!q1 -. (!b *. !q2)) /. !a in
       q1 := !q2;
       q2 := qnew;
       q := !q +. (!c *. qnew);
       b := !b +. 2.;
       d := 1. /. (!b +. (!a *. !d));
       delh := ((!b *. !d) -. 1.) *. !delh;
       h := !h +. !delh;
       let dels = !q *. !delh in
       s := !s +. dels;
       if Float.abs (dels /. !s) < eps then raise Exit
     done;
     invalid_arg "Bessel: CF2 failed to converge"
   with Exit -> ());
  let h = a1 *. !h in
  let rkmu = sqrt (Float.pi /. (2. *. x)) *. exp (-.x) /. !s in
  let rk1 = rkmu *. (mu +. x +. 0.5 -. h) /. x in
  (rkmu, rk1)

let bessel_ik ~nu x =
  if not (x > 0.) || nu < 0. || Float.is_nan nu then
    invalid_arg "Bessel.bessel_ik: requires x > 0 and nu >= 0";
  let nl = int_of_float (nu +. 0.5) in
  let mu = nu -. float_of_int nl in
  let xi = 1. /. x in
  let xi2 = 2. *. xi in
  (* CF1 for I'_ν/I_ν. *)
  let h = ref (nu *. xi) in
  if !h < fpmin then h := fpmin;
  let b = ref (xi2 *. nu) in
  let d = ref 0. and c = ref !h in
  (try
     for _i = 1 to maxit do
       b := !b +. xi2;
       d := 1. /. (!b +. !d);
       c := !b +. (1. /. !c);
       let del = !c *. !d in
       h := !h *. del;
       if Float.abs (del -. 1.) < eps then raise Exit
     done;
     invalid_arg "Bessel: CF1 failed to converge (x too large?)"
   with Exit -> ());
  (* Downward recurrence from ν to μ on unnormalised I. *)
  let ril = ref fpmin in
  let ripl = ref (!h *. fpmin) in
  let ril1 = !ril and rip1 = !ripl in
  let fact = ref (nu *. xi) in
  for _l = nl downto 1 do
    let ritemp = (!fact *. !ril) +. !ripl in
    fact := !fact -. xi;
    ripl := (!fact *. ritemp) +. !ril;
    ril := ritemp
  done;
  let f = !ripl /. !ril in
  let rkmu, rk1 = if x < xmin then temme_series ~mu x else steed_cf2 ~mu x in
  let rkmup = (mu *. xi *. rkmu) -. rk1 in
  (* Wronskian  I_μ K'_μ - I'_μ K_μ = -1/x  normalises I. *)
  let rimu = xi /. ((f *. rkmu) -. rkmup) in
  let i_nu = rimu *. ril1 /. !ril in
  ignore rip1;
  let rkmu = ref rkmu and rk1 = ref rk1 in
  for i = 1 to nl do
    let rktemp = ((mu +. float_of_int i) *. xi2 *. !rk1) +. !rkmu in
    rkmu := !rk1;
    rk1 := rktemp
  done;
  (i_nu, !rkmu)

let bessel_k ~nu x = snd (bessel_ik ~nu x)
let bessel_i ~nu x = fst (bessel_ik ~nu x)
let bessel_k_half x = sqrt (Float.pi /. (2. *. x)) *. exp (-.x)
