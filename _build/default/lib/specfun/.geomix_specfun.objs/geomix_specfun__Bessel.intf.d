lib/specfun/bessel.mli:
