lib/specfun/bessel.ml: Float Gamma
