lib/specfun/gamma.mli:
