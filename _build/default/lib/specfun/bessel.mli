(** Modified Bessel functions of real (fractional) order.

    The 2D Matérn covariance of the paper needs [K_ν(x)] for arbitrary real
    smoothness ν ∈ (0, 2].  The implementation follows the classical
    Steed/Temme scheme (Numerical Recipes' [bessik]): CF1 for the [I] ratio,
    a Temme series ([x ≤ 2]) or Steed's CF2 ([x > 2]) for [K_μ, K_{μ+1}]
    with |μ| ≤ ½, Wronskian normalisation, and upward recurrence in the
    order.  Accuracy is ~1e-13 relative over the ranges the covariance
    evaluates. *)

val bessel_ik : nu:float -> float -> float * float
(** [bessel_ik ~nu x] is [(I_ν(x), K_ν(x))] for [nu ≥ 0] and [x > 0].
    @raise Invalid_argument on out-of-domain input. *)

val bessel_k : nu:float -> float -> float
(** [bessel_k ~nu x = snd (bessel_ik ~nu x)]. *)

val bessel_i : nu:float -> float -> float
(** [bessel_i ~nu x = fst (bessel_ik ~nu x)]. *)

val bessel_k_half : float -> float
(** Closed form [K_{1/2}(x) = √(π/(2x))·e^{-x}], used as a fast path (the
    paper's "rough field" ν = 0.5 makes Matérn exponential) and as a test
    oracle. *)
