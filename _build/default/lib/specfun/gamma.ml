let euler_gamma = 0.57721566490153286

(* Lanczos coefficients for g = 7, n = 9 (Godfrey's tabulation). *)
let lanczos_g = 7.
let lanczos_coeffs =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec lgamma x =
  if Float.is_nan x then nan
  else if x < 0.5 then
    (* Reflection: Γ(x)·Γ(1-x) = π / sin(πx). *)
    log (Float.pi /. Float.abs (sin (Float.pi *. x))) -. lgamma (1. -. x)
  else begin
    let z = x -. 1. in
    let acc = ref lanczos_coeffs.(0) in
    for i = 1 to Array.length lanczos_coeffs - 1 do
      acc := !acc +. (lanczos_coeffs.(i) /. (z +. float_of_int i))
    done;
    let t = z +. lanczos_g +. 0.5 in
    (0.5 *. log (2. *. Float.pi)) +. (((z +. 0.5) *. log t) -. t) +. log !acc
  end

let gamma x =
  if Float.is_nan x then nan
  else if x <= 0. && Float.is_integer x then nan
  else if x < 0.5 then
    (* Sign comes from the reflection formula. *)
    Float.pi /. (sin (Float.pi *. x) *. exp (lgamma (1. -. x)))
  else exp (lgamma x)
