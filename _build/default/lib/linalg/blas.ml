exception Not_positive_definite of int

let gemm_nt ~alpha a b ~beta c =
  let m = Mat.rows a and k = Mat.cols a and n = Mat.rows b in
  assert (Mat.cols b = k);
  assert (Mat.rows c = m && Mat.cols c = n);
  if beta <> 1. then Mat.scale c beta;
  for j = 0 to n - 1 do
    for p = 0 to k - 1 do
      let bjp = alpha *. Mat.unsafe_get b j p in
      if bjp <> 0. then
        for i = 0 to m - 1 do
          Mat.unsafe_set c i j (Mat.unsafe_get c i j +. (Mat.unsafe_get a i p *. bjp))
        done
    done
  done

let gemm ?(transa = false) ?(transb = false) ~alpha a b ~beta c =
  let opa i p = if transa then Mat.unsafe_get a p i else Mat.unsafe_get a i p in
  let opb p j = if transb then Mat.unsafe_get b j p else Mat.unsafe_get b p j in
  let m = if transa then Mat.cols a else Mat.rows a in
  let k = if transa then Mat.rows a else Mat.cols a in
  let n = if transb then Mat.rows b else Mat.cols b in
  assert ((if transb then Mat.cols b else Mat.rows b) = k);
  assert (Mat.rows c = m && Mat.cols c = n);
  if beta <> 1. then Mat.scale c beta;
  for j = 0 to n - 1 do
    for p = 0 to k - 1 do
      let bpj = alpha *. opb p j in
      if bpj <> 0. then
        for i = 0 to m - 1 do
          Mat.unsafe_set c i j (Mat.unsafe_get c i j +. (opa i p *. bpj))
        done
    done
  done

let syrk_lower ~alpha a ~beta c =
  let n = Mat.rows a and k = Mat.cols a in
  assert (Mat.rows c = n && Mat.cols c = n);
  if beta <> 1. then
    for j = 0 to n - 1 do
      for i = j to n - 1 do
        Mat.unsafe_set c i j (beta *. Mat.unsafe_get c i j)
      done
    done;
  for j = 0 to n - 1 do
    for p = 0 to k - 1 do
      let ajp = alpha *. Mat.unsafe_get a j p in
      if ajp <> 0. then
        for i = j to n - 1 do
          Mat.unsafe_set c i j (Mat.unsafe_get c i j +. (Mat.unsafe_get a i p *. ajp))
        done
    done
  done

let trsm_right_lower_trans ~l b =
  let n = Mat.cols b and m = Mat.rows b in
  assert (Mat.rows l = n && Mat.cols l = n);
  (* Solve X·Lᵀ = B column block by column block:
     X(:,j) = (B(:,j) − Σ_{p<j} X(:,p)·L(j,p)) / L(j,j). *)
  for j = 0 to n - 1 do
    for p = 0 to j - 1 do
      let ljp = Mat.unsafe_get l j p in
      if ljp <> 0. then
        for i = 0 to m - 1 do
          Mat.unsafe_set b i j (Mat.unsafe_get b i j -. (Mat.unsafe_get b i p *. ljp))
        done
    done;
    let d = Mat.unsafe_get l j j in
    for i = 0 to m - 1 do
      Mat.unsafe_set b i j (Mat.unsafe_get b i j /. d)
    done
  done

let trsm_left_lower_notrans ~l b =
  let m = Mat.rows b and n = Mat.cols b in
  assert (Mat.rows l = m && Mat.cols l = m);
  (* Forward substitution down each column of B. *)
  for j = 0 to n - 1 do
    for i = 0 to m - 1 do
      let s = ref (Mat.unsafe_get b i j) in
      for p = 0 to i - 1 do
        s := !s -. (Mat.unsafe_get l i p *. Mat.unsafe_get b p j)
      done;
      Mat.unsafe_set b i j (!s /. Mat.unsafe_get l i i)
    done
  done

let potrf_lower a =
  let n = Mat.rows a in
  assert (Mat.cols a = n);
  for j = 0 to n - 1 do
    (* Pivot: A(j,j) − Σ_{p<j} A(j,p)². *)
    let s = ref (Mat.unsafe_get a j j) in
    for p = 0 to j - 1 do
      let x = Mat.unsafe_get a j p in
      s := !s -. (x *. x)
    done;
    if not (!s > 0.) then raise (Not_positive_definite j);
    let d = sqrt !s in
    Mat.unsafe_set a j j d;
    for i = j + 1 to n - 1 do
      let s = ref (Mat.unsafe_get a i j) in
      for p = 0 to j - 1 do
        s := !s -. (Mat.unsafe_get a i p *. Mat.unsafe_get a j p)
      done;
      Mat.unsafe_set a i j (!s /. d)
    done
  done

let trsv_lower ~l b =
  let n = Mat.rows l in
  assert (Array.length b = n);
  let y = Array.copy b in
  for i = 0 to n - 1 do
    let s = ref y.(i) in
    for p = 0 to i - 1 do
      s := !s -. (Mat.unsafe_get l i p *. y.(p))
    done;
    y.(i) <- !s /. Mat.unsafe_get l i i
  done;
  y

let trsv_lower_trans ~l b =
  let n = Mat.rows l in
  assert (Array.length b = n);
  let x = Array.copy b in
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for p = i + 1 to n - 1 do
      s := !s -. (Mat.unsafe_get l p i *. x.(p))
    done;
    x.(i) <- !s /. Mat.unsafe_get l i i
  done;
  x

let cholesky a =
  let l = Mat.copy a in
  potrf_lower l;
  Mat.zero_upper l;
  l

let log_det_from_chol l =
  let n = Mat.rows l in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. log (Mat.unsafe_get l i i)
  done;
  2. *. !acc
