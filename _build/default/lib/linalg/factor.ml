let qr_thin a =
  let m = Mat.rows a and k = Mat.cols a in
  assert (m >= k);
  let r = Mat.copy a in
  (* Householder vectors stored per column; Q accumulated explicitly. *)
  let vs = Array.make k [||] in
  for j = 0 to k - 1 do
    (* Build the reflector annihilating r(j+1:, j). *)
    let alpha = ref 0. in
    for i = j to m - 1 do
      let x = Mat.unsafe_get r i j in
      alpha := !alpha +. (x *. x)
    done;
    let alpha = sqrt !alpha in
    let rjj = Mat.unsafe_get r j j in
    let beta = if rjj >= 0. then -.alpha else alpha in
    let v = Array.make (m - j) 0. in
    if alpha > 0. then begin
      v.(0) <- rjj -. beta;
      for i = j + 1 to m - 1 do
        v.(i - j) <- Mat.unsafe_get r i j
      done;
      let vnorm2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. v in
      if vnorm2 > 0. then begin
        (* Apply I − 2vvᵀ/‖v‖² to the trailing columns of R. *)
        for c = j to k - 1 do
          let dot = ref 0. in
          for i = j to m - 1 do
            dot := !dot +. (v.(i - j) *. Mat.unsafe_get r i c)
          done;
          let s = 2. *. !dot /. vnorm2 in
          for i = j to m - 1 do
            Mat.unsafe_set r i c (Mat.unsafe_get r i c -. (s *. v.(i - j)))
          done
        done
      end
    end;
    vs.(j) <- v
  done;
  (* Q = H_0 · … · H_{k-1} · [I_k; 0], applied column by column. *)
  let q = Mat.create ~rows:m ~cols:k in
  for c = 0 to k - 1 do
    let col = Array.make m 0. in
    col.(c) <- 1.;
    for j = k - 1 downto 0 do
      let v = vs.(j) in
      let vnorm2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. v in
      if vnorm2 > 0. then begin
        let dot = ref 0. in
        for i = j to m - 1 do
          dot := !dot +. (v.(i - j) *. col.(i))
        done;
        let s = 2. *. !dot /. vnorm2 in
        for i = j to m - 1 do
          col.(i) <- col.(i) -. (s *. v.(i - j))
        done
      end
    done;
    for i = 0 to m - 1 do
      Mat.unsafe_set q i c col.(i)
    done
  done;
  let rk = Mat.create ~rows:k ~cols:k in
  for j = 0 to k - 1 do
    for i = 0 to j do
      Mat.unsafe_set rk i j (Mat.unsafe_get r i j)
    done
  done;
  (q, rk)

let svd_jacobi ?(max_sweeps = 60) a =
  let m = Mat.rows a and n = Mat.cols a in
  let u = Mat.copy a in
  let v = Mat.identity n in
  let eps = 1e-15 in
  let converged = ref false in
  let sweeps = ref 0 in
  while (not !converged) && !sweeps < max_sweeps do
    converged := true;
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        (* Column moments of the implicit AᵀA. *)
        let app = ref 0. and aqq = ref 0. and apq = ref 0. in
        for i = 0 to m - 1 do
          let x = Mat.unsafe_get u i p and y = Mat.unsafe_get u i q in
          app := !app +. (x *. x);
          aqq := !aqq +. (y *. y);
          apq := !apq +. (x *. y)
        done;
        if Float.abs !apq > eps *. sqrt (!app *. !aqq) && !apq <> 0. then begin
          converged := false;
          let tau = (!aqq -. !app) /. (2. *. !apq) in
          let t =
            (if tau >= 0. then 1. else -1.)
            /. (Float.abs tau +. sqrt (1. +. (tau *. tau)))
          in
          let c = 1. /. sqrt (1. +. (t *. t)) in
          let s = c *. t in
          (* Rotate columns p,q of U and of V. *)
          for i = 0 to m - 1 do
            let x = Mat.unsafe_get u i p and y = Mat.unsafe_get u i q in
            Mat.unsafe_set u i p ((c *. x) -. (s *. y));
            Mat.unsafe_set u i q ((s *. x) +. (c *. y))
          done;
          for i = 0 to n - 1 do
            let x = Mat.unsafe_get v i p and y = Mat.unsafe_get v i q in
            Mat.unsafe_set v i p ((c *. x) -. (s *. y));
            Mat.unsafe_set v i q ((s *. x) +. (c *. y))
          done
        end
      done
    done
  done;
  (* Column norms are the singular values; normalise U's columns. *)
  let sigma = Array.make n 0. in
  for j = 0 to n - 1 do
    let norm = ref 0. in
    for i = 0 to m - 1 do
      let x = Mat.unsafe_get u i j in
      norm := !norm +. (x *. x)
    done;
    let norm = sqrt !norm in
    sigma.(j) <- norm;
    if norm > 0. then
      for i = 0 to m - 1 do
        Mat.unsafe_set u i j (Mat.unsafe_get u i j /. norm)
      done
  done;
  (* Sort descending, permuting U and V consistently. *)
  let order = Array.init n Fun.id in
  Array.sort (fun i j -> Float.compare sigma.(j) sigma.(i)) order;
  let u' = Mat.init ~rows:m ~cols:n (fun i j -> Mat.unsafe_get u i order.(j)) in
  let v' = Mat.init ~rows:n ~cols:n (fun i j -> Mat.unsafe_get v i order.(j)) in
  let sigma' = Array.map (fun j -> sigma.(j)) order in
  (u', sigma', v')

let truncate_rank ~tol sigma =
  let n = Array.length sigma in
  if n = 0 then 0
  else begin
    (* tail²(r) = Σ_{i≥r} σᵢ² — keep the smallest r with tail ≤ tol. *)
    let tail2 = Array.make (n + 1) 0. in
    for i = n - 1 downto 0 do
      tail2.(i) <- tail2.(i + 1) +. (sigma.(i) *. sigma.(i))
    done;
    let rec find r = if r >= n || sqrt tail2.(r) <= tol then r else find (r + 1) in
    Stdlib.max 1 (find 0)
  end
