(** Dense column-major FP64 matrices on [Bigarray] storage.

    This is the storage type every kernel ([Blas], [Blas_emul]) and the tile
    framework operate on.  Values are always held in binary64; lower
    precisions exist only as rounding disciplines applied by the emulated
    kernels ({!Blas_emul}) and conversion operators ({!round_inplace}). *)

type t

val create : rows:int -> cols:int -> t
(** Zero-initialised matrix. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t
(** [init ~rows ~cols f] fills entry (i, j) with [f i j]. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val unsafe_get : t -> int -> int -> float
val unsafe_set : t -> int -> int -> float -> unit

val fill : t -> float -> unit
val copy : t -> t
val blit : src:t -> dst:t -> unit

val of_arrays : float array array -> t
(** Row-major [float array array] to matrix. *)

val to_arrays : t -> float array array

val identity : int -> t

val map_inplace : (float -> float) -> t -> unit
val round_inplace : Geomix_precision.Fpformat.scalar -> t -> unit
(** Round every entry to the given scalar format (a datatype conversion). *)

val rounded : Geomix_precision.Fpformat.scalar -> t -> t
(** Fresh rounded copy; [rounded S_fp64] is just {!copy}. *)

val scale : t -> float -> unit
val add_scaled : t -> alpha:float -> t -> unit
(** [add_scaled acc ~alpha x] performs [acc ← acc + alpha·x]. *)

val transpose : t -> t

val sym_from_lower : t -> unit
(** Mirror the strictly lower triangle onto the upper triangle in place
    (square matrices only). *)

val zero_upper : t -> unit
(** Clear the strictly upper triangle (for comparing lower factors). *)

val frobenius : t -> float
val frobenius_lower : t -> float
(** Frobenius norm counting the lower triangle once and off-diagonal mass
    twice — the norm of the full symmetric matrix represented by its lower
    triangle. *)

val max_abs : t -> float

val diff_frobenius : t -> t -> float
(** ‖a − b‖_F. *)

val rel_diff : t -> reference:t -> float
(** ‖a − ref‖_F / ‖ref‖_F (0/0 = 0). *)

val matvec : t -> float array -> float array
(** Dense matrix–vector product. *)

val matvec_trans : t -> float array -> float array
(** [matvec_trans a x = aᵀ·x]. *)

val sub_view_copy : t -> row:int -> col:int -> rows:int -> cols:int -> t
(** Copy of a rectangular block. *)

val set_block : t -> row:int -> col:int -> t -> unit
(** Write a block back at (row, col). *)

val pp : Format.formatter -> t -> unit
(** Debug printer (small matrices only). *)
