(** Reference FP64 dense kernels — the four numerical kernels of the tile
    Cholesky of Algorithm 1 (POTRF, TRSM, SYRK, GEMM) plus the triangular
    and general building blocks the application driver needs.

    All kernels are written loop-order-aware for the column-major layout of
    {!Mat} and operate in place where BLAS would. *)

exception Not_positive_definite of int
(** Raised by {!potrf_lower} with the index of the failing pivot. *)

val gemm :
  ?transa:bool ->
  ?transb:bool ->
  alpha:float ->
  Mat.t ->
  Mat.t ->
  beta:float ->
  Mat.t ->
  unit
(** [gemm ~alpha a b ~beta c] performs [C ← α·op(A)·op(B) + β·C]. *)

val gemm_nt : alpha:float -> Mat.t -> Mat.t -> beta:float -> Mat.t -> unit
(** Specialised [C ← α·A·Bᵀ + β·C] — the Cholesky update kernel (GEMM in
    Algorithm 1 runs with α = −1, β = 1). *)

val syrk_lower : alpha:float -> Mat.t -> beta:float -> Mat.t -> unit
(** [syrk_lower ~alpha a ~beta c]: [C ← α·A·Aᵀ + β·C], touching only the
    lower triangle of the square matrix [c]. *)

val trsm_right_lower_trans : l:Mat.t -> Mat.t -> unit
(** [trsm_right_lower_trans ~l b] solves [X·Lᵀ = B] in place in [b], with
    [l] lower triangular — the TRSM of Algorithm 1. *)

val trsm_left_lower_notrans : l:Mat.t -> Mat.t -> unit
(** [trsm_left_lower_notrans ~l b] solves [L·X = B] in place in [b] — the
    panel solve the TLR TRSM applies to a tile's V factor. *)

val potrf_lower : Mat.t -> unit
(** In-place lower Cholesky factorization of a symmetric positive-definite
    matrix (only the lower triangle is read; the strict upper triangle is
    left untouched).
    @raise Not_positive_definite if a pivot is not strictly positive. *)

val trsv_lower : l:Mat.t -> float array -> float array
(** Solve [L·y = b] (forward substitution). *)

val trsv_lower_trans : l:Mat.t -> float array -> float array
(** Solve [Lᵀ·x = b] (backward substitution). *)

val cholesky : Mat.t -> Mat.t
(** Convenience: copy, factorize, zero the upper triangle; the input is a
    full symmetric matrix. *)

val log_det_from_chol : Mat.t -> float
(** [2·Σ log L_ii] — the log-determinant term of the Gaussian
    log-likelihood, Eq. (1) of the paper. *)
