module Fpformat = Geomix_precision.Fpformat
module Rng = Geomix_util.Rng

type fidelity = Per_op | Boundary

let gemm_nt_per_op ~prec ~alpha a b ~beta c =
  let si = Fpformat.input_scalar prec and sa = Fpformat.accum_scalar prec in
  let r = Fpformat.round sa in
  let ar = Mat.rounded si a and br = Mat.rounded si b in
  let m = Mat.rows a and k = Mat.cols a and n = Mat.rows b in
  for j = 0 to n - 1 do
    for i = 0 to m - 1 do
      let acc = ref (r (beta *. Mat.unsafe_get c i j)) in
      for p = 0 to k - 1 do
        (* Tensor cores form exact products of the rounded inputs and round
           only the accumulation. *)
        let prod = alpha *. Mat.unsafe_get ar i p *. Mat.unsafe_get br j p in
        acc := r (!acc +. prod)
      done;
      Mat.unsafe_set c i j !acc
    done
  done

let gemm_nt_boundary ~prec ~alpha a b ~beta c =
  let si = Fpformat.input_scalar prec and sa = Fpformat.accum_scalar prec in
  let ar = Mat.rounded si a and br = Mat.rounded si b in
  Blas.gemm_nt ~alpha ar br ~beta c;
  Mat.round_inplace sa c

let gemm_nt ~fidelity ~prec ~alpha a b ~beta c =
  match (fidelity, prec) with
  | _, Fpformat.Fp64 -> Blas.gemm_nt ~alpha a b ~beta c
  | Per_op, _ -> gemm_nt_per_op ~prec ~alpha a b ~beta c
  | Boundary, _ -> gemm_nt_boundary ~prec ~alpha a b ~beta c

let syrk_lower_per_op ~prec ~alpha a ~beta c =
  let si = Fpformat.input_scalar prec and sa = Fpformat.accum_scalar prec in
  let r = Fpformat.round sa in
  let ar = Mat.rounded si a in
  let n = Mat.rows a and k = Mat.cols a in
  for j = 0 to n - 1 do
    for i = j to n - 1 do
      let acc = ref (r (beta *. Mat.unsafe_get c i j)) in
      for p = 0 to k - 1 do
        let prod = alpha *. Mat.unsafe_get ar i p *. Mat.unsafe_get ar j p in
        acc := r (!acc +. prod)
      done;
      Mat.unsafe_set c i j !acc
    done
  done

let syrk_lower ~fidelity ~prec ~alpha a ~beta c =
  match (fidelity, prec) with
  | _, Fpformat.Fp64 -> Blas.syrk_lower ~alpha a ~beta c
  | Per_op, _ -> syrk_lower_per_op ~prec ~alpha a ~beta c
  | Boundary, _ ->
    let si = Fpformat.input_scalar prec and sa = Fpformat.accum_scalar prec in
    let ar = Mat.rounded si a in
    Blas.syrk_lower ~alpha ar ~beta c;
    Mat.round_inplace sa c

let trsm_per_op ~prec ~l b =
  let sa = Fpformat.accum_scalar prec in
  let r = Fpformat.round sa in
  let lr = Mat.rounded sa l in
  let n = Mat.cols b and m = Mat.rows b in
  for j = 0 to n - 1 do
    for p = 0 to j - 1 do
      let ljp = Mat.unsafe_get lr j p in
      if ljp <> 0. then
        for i = 0 to m - 1 do
          Mat.unsafe_set b i j
            (r (Mat.unsafe_get b i j -. r (Mat.unsafe_get b i p *. ljp)))
        done
    done;
    let d = Mat.unsafe_get lr j j in
    for i = 0 to m - 1 do
      Mat.unsafe_set b i j (r (Mat.unsafe_get b i j /. d))
    done
  done

let trsm_right_lower_trans ~fidelity ~prec ~l b =
  match (fidelity, prec) with
  | _, Fpformat.Fp64 -> Blas.trsm_right_lower_trans ~l b
  | Per_op, _ ->
    Mat.round_inplace (Fpformat.accum_scalar prec) b;
    trsm_per_op ~prec ~l b
  | Boundary, _ ->
    let sa = Fpformat.accum_scalar prec in
    let lr = Mat.rounded sa l in
    Mat.round_inplace sa b;
    Blas.trsm_right_lower_trans ~l:lr b;
    Mat.round_inplace sa b

let potrf_per_op ~prec a =
  let sa = Fpformat.accum_scalar prec in
  let r = Fpformat.round sa in
  let n = Mat.rows a in
  Mat.round_inplace sa a;
  for j = 0 to n - 1 do
    let s = ref (Mat.unsafe_get a j j) in
    for p = 0 to j - 1 do
      let x = Mat.unsafe_get a j p in
      s := r (!s -. r (x *. x))
    done;
    if not (!s > 0.) then raise (Blas.Not_positive_definite j);
    let d = r (sqrt !s) in
    Mat.unsafe_set a j j d;
    for i = j + 1 to n - 1 do
      let s = ref (Mat.unsafe_get a i j) in
      for p = 0 to j - 1 do
        s := r (!s -. r (Mat.unsafe_get a i p *. Mat.unsafe_get a j p))
      done;
      Mat.unsafe_set a i j (r (!s /. d))
    done
  done

let potrf_lower ~fidelity ~prec a =
  match (fidelity, prec) with
  | _, Fpformat.Fp64 -> Blas.potrf_lower a
  | Per_op, _ -> potrf_per_op ~prec a
  | Boundary, _ ->
    let sa = Fpformat.accum_scalar prec in
    Mat.round_inplace sa a;
    Blas.potrf_lower a;
    Mat.round_inplace sa a

let gemm_accuracy ~prec ~n ~rng =
  let a = Mat.init ~rows:n ~cols:n (fun _ _ -> Rng.float rng) in
  let b = Mat.init ~rows:n ~cols:n (fun _ _ -> Rng.float rng) in
  let c_ref = Mat.create ~rows:n ~cols:n in
  Blas.gemm_nt ~alpha:1. a b ~beta:0. c_ref;
  let c = Mat.create ~rows:n ~cols:n in
  gemm_nt ~fidelity:Per_op ~prec ~alpha:1. a b ~beta:0. c;
  Mat.rel_diff c ~reference:c_ref
