module Rng = Geomix_util.Rng

let cholesky_residual ~a ~l =
  let n = Mat.rows a in
  let ll = Mat.create ~rows:n ~cols:n in
  let lc = Mat.copy l in
  Mat.zero_upper lc;
  Blas.gemm_nt ~alpha:1. lc lc ~beta:0. ll;
  Mat.rel_diff ll ~reference:a

let solve_residual ~a ~x ~b =
  let ax = Mat.matvec a x in
  let num = ref 0. and denom = ref 0. in
  Array.iteri
    (fun i bi ->
      let d = ax.(i) -. bi in
      num := !num +. (d *. d);
      denom := !denom +. (bi *. bi))
    b;
  if !denom = 0. then sqrt !num else sqrt (!num /. !denom)

let spd_random ~rng ~n =
  let g = Mat.init ~rows:n ~cols:n (fun _ _ -> Rng.gaussian rng) in
  let a = Mat.identity n in
  Blas.gemm_nt ~alpha:(1. /. float_of_int n) g g ~beta:1. a;
  a
