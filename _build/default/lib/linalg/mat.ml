module Fpformat = Geomix_precision.Fpformat

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { data : buf; rows : int; cols : int }

let create ~rows ~cols =
  assert (rows >= 0 && cols >= 0);
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (rows * cols) in
  Bigarray.Array1.fill data 0.;
  { data; rows; cols }

let rows t = t.rows
let cols t = t.cols

(* Column-major: entry (i, j) lives at i + j·rows. *)
let idx t i j = i + (j * t.rows)

let get t i j =
  assert (i >= 0 && i < t.rows && j >= 0 && j < t.cols);
  Bigarray.Array1.get t.data (idx t i j)

let set t i j v =
  assert (i >= 0 && i < t.rows && j >= 0 && j < t.cols);
  Bigarray.Array1.set t.data (idx t i j) v

let unsafe_get t i j = Bigarray.Array1.unsafe_get t.data (i + (j * t.rows))
let unsafe_set t i j v = Bigarray.Array1.unsafe_set t.data (i + (j * t.rows)) v

let init ~rows ~cols f =
  let t = create ~rows ~cols in
  for j = 0 to cols - 1 do
    for i = 0 to rows - 1 do
      unsafe_set t i j (f i j)
    done
  done;
  t

let fill t v = Bigarray.Array1.fill t.data v

let copy t =
  let t' = create ~rows:t.rows ~cols:t.cols in
  Bigarray.Array1.blit t.data t'.data;
  t'

let blit ~src ~dst =
  assert (src.rows = dst.rows && src.cols = dst.cols);
  Bigarray.Array1.blit src.data dst.data

let of_arrays a =
  let rows = Array.length a in
  assert (rows > 0);
  let cols = Array.length a.(0) in
  init ~rows ~cols (fun i j -> a.(i).(j))

let to_arrays t = Array.init t.rows (fun i -> Array.init t.cols (fun j -> get t i j))

let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1. else 0.)

let map_inplace f t =
  let n = Bigarray.Array1.dim t.data in
  for k = 0 to n - 1 do
    Bigarray.Array1.unsafe_set t.data k (f (Bigarray.Array1.unsafe_get t.data k))
  done

let round_inplace scalar t =
  match scalar with
  | Fpformat.S_fp64 -> ()
  | _ -> map_inplace (Fpformat.round scalar) t

let rounded scalar t =
  let t' = copy t in
  round_inplace scalar t';
  t'

let scale t alpha = map_inplace (fun x -> alpha *. x) t

let add_scaled acc ~alpha x =
  assert (acc.rows = x.rows && acc.cols = x.cols);
  let n = Bigarray.Array1.dim acc.data in
  for k = 0 to n - 1 do
    Bigarray.Array1.unsafe_set acc.data k
      (Bigarray.Array1.unsafe_get acc.data k
      +. (alpha *. Bigarray.Array1.unsafe_get x.data k))
  done

let transpose t = init ~rows:t.cols ~cols:t.rows (fun i j -> unsafe_get t j i)

let sym_from_lower t =
  assert (t.rows = t.cols);
  for j = 0 to t.cols - 1 do
    for i = j + 1 to t.rows - 1 do
      unsafe_set t j i (unsafe_get t i j)
    done
  done

let zero_upper t =
  for j = 1 to t.cols - 1 do
    for i = 0 to Stdlib.min (j - 1) (t.rows - 1) do
      unsafe_set t i j 0.
    done
  done

let frobenius t =
  let n = Bigarray.Array1.dim t.data in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    let x = Bigarray.Array1.unsafe_get t.data k in
    acc := !acc +. (x *. x)
  done;
  sqrt !acc

let frobenius_lower t =
  assert (t.rows = t.cols);
  let acc = ref 0. in
  for j = 0 to t.cols - 1 do
    let d = unsafe_get t j j in
    acc := !acc +. (d *. d);
    for i = j + 1 to t.rows - 1 do
      let x = unsafe_get t i j in
      acc := !acc +. (2. *. x *. x)
    done
  done;
  sqrt !acc

let max_abs t =
  let n = Bigarray.Array1.dim t.data in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    acc := Float.max !acc (Float.abs (Bigarray.Array1.unsafe_get t.data k))
  done;
  !acc

let diff_frobenius a b =
  assert (a.rows = b.rows && a.cols = b.cols);
  let n = Bigarray.Array1.dim a.data in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    let d = Bigarray.Array1.unsafe_get a.data k -. Bigarray.Array1.unsafe_get b.data k in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let rel_diff a ~reference =
  let denom = frobenius reference in
  let num = diff_frobenius a reference in
  if denom = 0. then if num = 0. then 0. else infinity else num /. denom

let matvec t x =
  assert (Array.length x = t.cols);
  let y = Array.make t.rows 0. in
  for j = 0 to t.cols - 1 do
    let xj = x.(j) in
    for i = 0 to t.rows - 1 do
      y.(i) <- y.(i) +. (unsafe_get t i j *. xj)
    done
  done;
  y

let matvec_trans t x =
  assert (Array.length x = t.rows);
  let y = Array.make t.cols 0. in
  for j = 0 to t.cols - 1 do
    let acc = ref 0. in
    for i = 0 to t.rows - 1 do
      acc := !acc +. (unsafe_get t i j *. x.(i))
    done;
    y.(j) <- !acc
  done;
  y

let sub_view_copy t ~row ~col ~rows ~cols =
  assert (row >= 0 && col >= 0 && row + rows <= t.rows && col + cols <= t.cols);
  init ~rows ~cols (fun i j -> unsafe_get t (row + i) (col + j))

let set_block t ~row ~col block =
  assert (row + block.rows <= t.rows && col + block.cols <= t.cols);
  for j = 0 to block.cols - 1 do
    for i = 0 to block.rows - 1 do
      unsafe_set t (row + i) (col + j) (unsafe_get block i j)
    done
  done

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for i = 0 to t.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to t.cols - 1 do
      Format.fprintf ppf "% .5g " (get t i j)
    done;
    Format.fprintf ppf "@]@,"
  done;
  Format.fprintf ppf "@]"
