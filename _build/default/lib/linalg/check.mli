(** Numerical verification helpers shared by tests and benchmarks. *)

val cholesky_residual : a:Mat.t -> l:Mat.t -> float
(** ‖A − L·Lᵀ‖_F / ‖A‖_F for a lower factor [l] (upper triangle of [l]
    ignored). *)

val solve_residual : a:Mat.t -> x:float array -> b:float array -> float
(** ‖A·x − b‖₂ / ‖b‖₂. *)

val spd_random : rng:Geomix_util.Rng.t -> n:int -> Mat.t
(** A well-conditioned random symmetric positive-definite matrix
    (A = G·Gᵀ/n + I), used throughout the tests. *)
