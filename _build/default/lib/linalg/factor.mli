(** Orthogonal factorizations for the low-rank tile algebra: thin
    Householder QR for tall-skinny factor panels and a one-sided Jacobi SVD
    for the small recompression cores.  Both are classical textbook
    algorithms, sized for the k ≪ nb ranks TLR tiles carry. *)

val qr_thin : Mat.t -> Mat.t * Mat.t
(** [qr_thin a] for an m×k matrix with m ≥ k returns (Q, R) with Q m×k
    having orthonormal columns and R k×k upper triangular, A = Q·R
    (Householder, explicit Q accumulation). *)

val svd_jacobi : ?max_sweeps:int -> Mat.t -> Mat.t * float array * Mat.t
(** [svd_jacobi a] for an m×n matrix (intended small: recompression cores)
    returns (U, σ, V) with A = U·diag(σ)·Vᵀ, σ sorted descending, U m×n
    and V n×n column-orthonormal (thin SVD; one-sided Jacobi on columns). *)

val truncate_rank : tol:float -> float array -> int
(** Smallest r such that the discarded tail satisfies
    [√(Σ_{i≥r} σᵢ²) ≤ tol] — the Frobenius-norm truncation rule used for
    TLR tiles (returns at least 1 when σ is non-empty and tol < ‖σ‖). *)
