lib/linalg/blas.mli: Mat
