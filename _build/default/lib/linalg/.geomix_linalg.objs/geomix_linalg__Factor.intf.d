lib/linalg/factor.mli: Mat
