lib/linalg/check.mli: Geomix_util Mat
