lib/linalg/mat.ml: Array Bigarray Float Format Geomix_precision Stdlib
