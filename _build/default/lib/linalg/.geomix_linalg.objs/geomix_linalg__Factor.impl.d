lib/linalg/factor.ml: Array Float Fun Mat Stdlib
