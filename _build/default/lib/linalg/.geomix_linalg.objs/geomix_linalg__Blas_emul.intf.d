lib/linalg/blas_emul.mli: Geomix_precision Geomix_util Mat
