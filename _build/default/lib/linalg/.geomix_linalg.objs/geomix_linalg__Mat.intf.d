lib/linalg/mat.mli: Format Geomix_precision
