lib/linalg/blas_emul.ml: Blas Geomix_precision Geomix_util Mat
