lib/linalg/check.ml: Array Blas Geomix_util Mat
