lib/linalg/blas.ml: Array Mat
