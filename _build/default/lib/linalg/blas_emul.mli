(** Precision-emulated tile kernels.

    Each kernel mirrors its {!Blas} counterpart but executes under a kernel
    precision {!Geomix_precision.Fpformat.t}, reproducing numerically what a
    GPU kernel of that precision would compute:

    - operands are first rounded to the precision's {e input} scalar (FP16
      for the tensor-core modes FP16_32/BF16_32, TF32 for TF32, ...);
    - arithmetic accumulates in the precision's {e accumulate} scalar.

    Two fidelities trade accuracy modelling for speed:

    - [Per_op] rounds after {e every} accumulation — bit-accurate with
      respect to the modelled hardware, O(n³) roundings, used by the GEMM
      accuracy study (Fig 1) and by unit tests;
    - [Boundary] rounds operands and results at tile boundaries only and
      accumulates in binary64 — O(n²) roundings.  It preserves the dominant
      error source (operand quantisation) and is used by the Monte-Carlo
      MLE studies (Figs 5–6), as recorded in DESIGN.md. *)

type fidelity = Per_op | Boundary

val gemm_nt :
  fidelity:fidelity ->
  prec:Geomix_precision.Fpformat.t ->
  alpha:float ->
  Mat.t ->
  Mat.t ->
  beta:float ->
  Mat.t ->
  unit
(** Emulated [C ← α·A·Bᵀ + β·C]. *)

val syrk_lower :
  fidelity:fidelity ->
  prec:Geomix_precision.Fpformat.t ->
  alpha:float ->
  Mat.t ->
  beta:float ->
  Mat.t ->
  unit

val trsm_right_lower_trans :
  fidelity:fidelity -> prec:Geomix_precision.Fpformat.t -> l:Mat.t -> Mat.t -> unit

val potrf_lower : fidelity:fidelity -> prec:Geomix_precision.Fpformat.t -> Mat.t -> unit
(** @raise Blas.Not_positive_definite like the reference kernel. *)

val gemm_accuracy :
  prec:Geomix_precision.Fpformat.t -> n:int -> rng:Geomix_util.Rng.t -> float
(** The Fig 1 accuracy experiment: random uniform [n]×[n] operands, one
    [Per_op] emulated GEMM, returns ‖C_prec − C_fp64‖_F / ‖C_fp64‖_F. *)
