open Geomix_tile
module Mat = Geomix_linalg.Mat

type result = {
  x : float array;
  iterations : int;
  residual_norms : float list;
  converged : bool;
}

let matvec_sym a v =
  let n = Tiled.n a and nb = Tiled.nb a in
  assert (Array.length v = n);
  let y = Array.make n 0. in
  Tiled.iter_lower a (fun ~i ~j tile ->
    let ri = i * nb and cj = j * nb in
    let rows = Mat.rows tile and cols = Mat.cols tile in
    (* y_i += T · v_j *)
    for c = 0 to cols - 1 do
      let vc = v.(cj + c) in
      if vc <> 0. then
        for r = 0 to rows - 1 do
          y.(ri + r) <- y.(ri + r) +. (Mat.unsafe_get tile r c *. vc)
        done
    done;
    (* Off-diagonal tiles also contribute the mirrored block: y_j += Tᵀ·v_i. *)
    if i <> j then
      for c = 0 to cols - 1 do
        let acc = ref 0. in
        for r = 0 to rows - 1 do
          acc := !acc +. (Mat.unsafe_get tile r c *. v.(ri + r))
        done;
        y.(cj + c) <- y.(cj + c) +. !acc
      done);
  y

let norm2 v = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. v)

let solve ?(max_iterations = 30) ?(tolerance = 1e-12) ~a ~factor ~b () =
  let n = Tiled.n a in
  assert (Tiled.n factor = n && Array.length b = n);
  let bnorm = norm2 b in
  let denom = if bnorm = 0. then 1. else bnorm in
  let solve_with_factor rhs =
    Mp_cholesky.solve_lower_trans factor (Mp_cholesky.solve_lower factor rhs)
  in
  let x = solve_with_factor b in
  let rec iterate x iters norms =
    let ax = matvec_sym a x in
    let r = Array.mapi (fun i bi -> bi -. ax.(i)) b in
    let rel = norm2 r /. denom in
    let norms = rel :: norms in
    if rel <= tolerance then
      { x; iterations = iters; residual_norms = List.rev norms; converged = true }
    else if iters >= max_iterations
            (* Divergence guard: refinement stops helping once the update is
               in the noise of the factorization error. *)
            || (match norms with
               | cur :: prev :: _ -> cur > 0.9 *. prev
               | _ -> false)
    then { x; iterations = iters; residual_norms = List.rev norms; converged = rel <= tolerance }
    else begin
      let d = solve_with_factor r in
      let x' = Array.mapi (fun i xi -> xi +. d.(i)) x in
      iterate x' (iters + 1) norms
    end
  in
  iterate x 0 []
