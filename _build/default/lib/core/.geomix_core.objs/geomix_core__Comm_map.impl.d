lib/core/comm_map.ml: Array Buffer Char Geomix_precision Precision_map Printf
