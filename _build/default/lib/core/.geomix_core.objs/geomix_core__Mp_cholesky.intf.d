lib/core/mp_cholesky.mli: Geomix_linalg Geomix_parallel Geomix_tile Precision_map Tiled
