lib/core/sim_cholesky.mli: Geomix_gpusim Geomix_runtime Precision_map
