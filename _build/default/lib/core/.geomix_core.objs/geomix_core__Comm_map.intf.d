lib/core/comm_map.mli: Geomix_precision Precision_map
