lib/core/refine.ml: Array Geomix_linalg Geomix_tile List Mp_cholesky Tiled
