lib/core/mp_cholesky.ml: Array Comm_map Geomix_linalg Geomix_parallel Geomix_precision Geomix_runtime Geomix_tile Precision_map Tiled
