lib/core/precision_map.ml: Array Geomix_precision Geomix_tile Geomix_util List Stdlib
