lib/core/sim_cholesky.ml: Array Comm_map Float Geomix_gpusim Geomix_precision Geomix_runtime Geomix_tile Geomix_util Hashtbl Int List Precision_map
