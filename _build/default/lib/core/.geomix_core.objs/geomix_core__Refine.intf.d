lib/core/refine.mli: Geomix_tile Tiled
