lib/core/precision_map.mli: Geomix_precision Geomix_tile
