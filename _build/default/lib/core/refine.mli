(** Mixed-precision direct solve with iterative refinement.

    The paper's related work (Haidar et al., ICCS'18 — ref [33]) obtains
    energy-efficient linear solvers by factorizing in low precision and
    recovering FP64 accuracy through iterative refinement.  GeoMix composes
    the same recipe from its pieces: factorize Σ once under an adaptive
    precision map, then iterate

    {v r = b − Σ·x;   L·Lᵀ·d = r;   x ← x + d v}

    with residuals and updates in FP64.  Each sweep multiplies the error by
    roughly the factorization's relative accuracy, so a handful of sweeps
    reach FP64-level backward error while all O(n³) work stayed in reduced
    precision — without keeping matrix copies in every precision, the
    advantage the paper claims over [33]. *)

open Geomix_tile

type result = {
  x : float array;
  iterations : int;           (** refinement sweeps performed *)
  residual_norms : float list;(** ‖b − Σx‖₂/‖b‖₂ after each sweep, first-to-last *)
  converged : bool;
}

val solve :
  ?max_iterations:int ->
  ?tolerance:float ->
  a:Tiled.t ->
  factor:Tiled.t ->
  b:float array ->
  unit ->
  result
(** [solve ~a ~factor ~b ()] solves [A·x = b] where [factor] is a (possibly
    low-precision) tiled Cholesky factor of [a] (which still holds the
    original matrix).  Defaults: [max_iterations = 30],
    [tolerance = 1e-12] on the relative residual. *)

val matvec_sym : Tiled.t -> float array -> float array
(** FP64 symmetric matrix–vector product with a tiled lower-triangle
    matrix (used for the residuals; exposed for reuse and testing). *)
