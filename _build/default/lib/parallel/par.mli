(** Data-parallel helpers over a {!Pool} — used to parallelise embarrassingly
    parallel work such as Monte-Carlo replicas and tile-norm scans. *)

val parallel_for : pool:Pool.t -> ?chunk:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for ~pool ~lo ~hi f] applies [f] to every index in [\[lo, hi)],
    split into chunks (default: balanced over 4× the worker count). *)

val parallel_init : pool:Pool.t -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]. *)

val parallel_map : pool:Pool.t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
