let parallel_for ~pool ?chunk ~lo ~hi f =
  if hi > lo then begin
    let total = hi - lo in
    let chunk =
      match chunk with
      | Some c -> Stdlib.max 1 c
      | None ->
        let ways = Stdlib.max 1 (4 * Stdlib.max 1 (Pool.num_workers pool)) in
        Stdlib.max 1 ((total + ways - 1) / ways)
    in
    let start = ref lo in
    while !start < hi do
      let s = !start in
      let e = Stdlib.min hi (s + chunk) in
      Pool.submit pool (fun () ->
        for i = s to e - 1 do
          f i
        done);
      start := e
    done;
    Pool.wait_idle pool
  end

let parallel_init ~pool ?chunk n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ~pool ?chunk ~lo:0 ~hi:n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some x -> x | None -> assert false) out
  end

let parallel_map ~pool ?chunk f xs =
  parallel_init ~pool ?chunk (Array.length xs) (fun i -> f xs.(i))
