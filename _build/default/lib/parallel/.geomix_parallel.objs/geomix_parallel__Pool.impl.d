lib/parallel/pool.ml: Array Condition Domain Fun Mutex Queue Stdlib
