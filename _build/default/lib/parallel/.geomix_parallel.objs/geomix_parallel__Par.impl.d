lib/parallel/par.ml: Array Pool Stdlib
