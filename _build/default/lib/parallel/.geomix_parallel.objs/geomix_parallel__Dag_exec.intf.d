lib/parallel/dag_exec.mli: Pool
