lib/parallel/dag_exec.ml: Array Atomic List Pool Queue
