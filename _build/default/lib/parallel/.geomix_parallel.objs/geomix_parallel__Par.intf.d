lib/parallel/par.mli: Pool
