lib/parallel/pool.mli:
