type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  idle : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable in_flight : int; (* queued + currently executing thunks *)
  mutable stopping : bool;
  mutable first_error : exn option;
  mutable workers : unit Domain.t array;
  serial : bool;
}

let record_error t exn =
  Mutex.lock t.mutex;
  if t.first_error = None then t.first_error <- Some exn;
  Mutex.unlock t.mutex

let worker_loop t () =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.nonempty t.mutex
    done;
    if Queue.is_empty t.queue && t.stopping then Mutex.unlock t.mutex
    else begin
      let thunk = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      (try thunk () with exn -> record_error t exn);
      Mutex.lock t.mutex;
      t.in_flight <- t.in_flight - 1;
      if t.in_flight = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ?num_workers () =
  let n =
    match num_workers with
    | Some n -> Stdlib.max 0 n
    | None -> Stdlib.max 0 (Domain.recommended_domain_count () - 1)
  in
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      in_flight = 0;
      stopping = false;
      first_error = None;
      workers = [||];
      serial = n = 0;
    }
  in
  if n > 0 then t.workers <- Array.init n (fun _ -> Domain.spawn (worker_loop t));
  t

let num_workers t = Array.length t.workers

let submit t thunk =
  Mutex.lock t.mutex;
  assert (not t.stopping);
  Queue.push thunk t.queue;
  t.in_flight <- t.in_flight + 1;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let drain_serial t =
  let rec next () =
    Mutex.lock t.mutex;
    let thunk = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
    Mutex.unlock t.mutex;
    match thunk with
    | None -> ()
    | Some thunk ->
      (try thunk () with exn -> record_error t exn);
      Mutex.lock t.mutex;
      t.in_flight <- t.in_flight - 1;
      Mutex.unlock t.mutex;
      next ()
  in
  next ()

let reraise t =
  Mutex.lock t.mutex;
  let err = t.first_error in
  t.first_error <- None;
  Mutex.unlock t.mutex;
  match err with None -> () | Some exn -> raise exn

let wait_idle t =
  if t.serial then drain_serial t
  else begin
    Mutex.lock t.mutex;
    while t.in_flight > 0 do
      Condition.wait t.idle t.mutex
    done;
    Mutex.unlock t.mutex
  end;
  reraise t

let shutdown t =
  if t.serial then drain_serial t
  else begin
    Mutex.lock t.mutex;
    if not t.stopping then begin
      t.stopping <- true;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.mutex;
      Array.iter Domain.join t.workers
    end
    else Mutex.unlock t.mutex
  end;
  reraise t

let with_pool ?num_workers f =
  let t = create ?num_workers () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
