(** Task classes of the tile Cholesky factorization (Algorithm 1).

    Mirrors the Parameterized Task Graph view of PaRSEC: a task is a class
    name plus integer parameters; its data footprint (the tile it updates,
    the tiles it reads) and its execution precision are pure functions of
    the parameters — exactly the information a JDF file carries. *)

module Fpformat = Geomix_precision.Fpformat

type kind =
  | Potrf of int            (** POTRF(k): factorise tile (k,k) *)
  | Trsm of int * int       (** TRSM(m,k): tile (m,k) ← tile (m,k)·L(k,k)⁻ᵀ *)
  | Syrk of int * int       (** SYRK(m,k): tile (m,m) ← tile (m,m) − A(m,k)·A(m,k)ᵀ *)
  | Gemm of int * int * int (** GEMM(m,n,k): tile (m,n) ← tile (m,n) − A(m,k)·A(n,k)ᵀ *)

val name : kind -> string
(** ["POTRF(2)"], ["GEMM(5,3,1)"], ... *)

val short_name : kind -> string
(** The paper's single letters: P, T, S, G (Fig 3). *)

val write_tile : kind -> int * int
(** The tile the task updates (its INOUT datum). *)

val read_tiles : kind -> (int * int) list
(** Tiles read from other tasks (the IN data whose communication the
    automated conversion strategy manages). *)

val producer_of_read : kind -> (int * int) -> kind
(** The task that produced a given read tile in the same iteration
    (POTRF for TRSM's diagonal read; TRSM for GEMM/SYRK panel reads). *)

val exec_precision : kernel_precision:(int -> int -> Fpformat.t) -> kind -> Fpformat.t
(** Precision the kernel executes in, given the tile-level kernel-precision
    map: every kernel runs at the precision of the tile it updates, except
    TRSM which {e never runs below FP32} (hardware restriction, Section V).
    Adaptive maps pin diagonal tiles to FP64, which is how the paper's
    "POTRF and SYRK always FP64" materialises; uniform baseline maps (pure
    FP32) may legitimately run them lower. *)

val flops : nb:int -> kind -> float
(** Flop count of the task on uniform [nb]-sized tiles. *)
