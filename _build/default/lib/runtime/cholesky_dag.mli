(** Static DAG of the tile Cholesky factorization (Algorithm 1 of the
    paper) over an [nt] × [nt] tile grid.

    Tasks get dense integer ids so the graph never needs to be materialised:
    ids encode (class, parameters) arithmetically, and successor lists and
    in-degrees are computed from the dependence relations

    - POTRF(k)   ← SYRK(k, k−1)
    - TRSM(m,k)  ← POTRF(k), GEMM(m,k,k−1)
    - SYRK(m,k)  ← TRSM(m,k), SYRK(m,k−1)
    - GEMM(m,n,k)← TRSM(m,k), TRSM(n,k), GEMM(m,n,k−1)

    (the chain links on SYRK/GEMM serialise the accumulations into one tile,
    as a dataflow runtime must for an INOUT datum). *)

type t

val create : nt:int -> t

val nt : t -> int
val num_tasks : t -> int

val id_of : t -> Task.kind -> int
val kind_of : t -> int -> Task.kind
(** Inverse bijections between ids and task kinds. *)

val in_degree : t -> int array
(** Freshly allocated in-degree array (consumable by
    {!Geomix_parallel.Dag_exec.run}). *)

val successors : t -> int -> int list

val critical_path_tasks : t -> int
(** Length (in tasks) of the POTRF→TRSM→(SYRK|GEMM)→POTRF critical path:
    [3·(nt−1) + 1] — the lower bound used to sanity-check simulated
    schedules. *)

val iter : t -> (int -> Task.kind -> unit) -> unit
(** Iterate over all tasks in id order. *)
