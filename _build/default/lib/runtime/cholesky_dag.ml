type t = {
  nt : int;
  num_tasks : int;
  n_trsm : int;
  gemm_iter_base : int array; (* gemm_iter_base.(k) = #GEMMs of iterations < k *)
}

(* s nt x = Σ_{b<x} (nt-1-b): #(m,k) pairs with k < x, m > k. *)
let s nt x = (x * (nt - 1)) - (x * (x - 1) / 2)

let create ~nt =
  assert (nt > 0);
  let n_trsm = s nt nt in
  let gemm_iter_base = Array.make (nt + 1) 0 in
  for k = 0 to nt - 1 do
    let w = nt - 1 - k in
    gemm_iter_base.(k + 1) <- gemm_iter_base.(k) + (w * (w - 1) / 2)
  done;
  let num_tasks = nt + (2 * n_trsm) + gemm_iter_base.(nt) in
  { nt; num_tasks; n_trsm; gemm_iter_base }

let nt t = t.nt
let num_tasks t = t.num_tasks

let trsm_off t = t.nt
let syrk_off t = t.nt + t.n_trsm
let gemm_off t = t.nt + (2 * t.n_trsm)

let pair_idx t m k = s t.nt k + (m - k - 1)

(* Offset of the (m,n) pair inside the GEMM block of iteration k:
   pairs enumerated n = k+1.., m = n+1..; Σ_{b=k+1}^{n-1}(nt-1-b). *)
let gemm_inner t k n m = s t.nt n - s t.nt (k + 1) + (m - n - 1)

let id_of t kind =
  let check b = if not b then invalid_arg "Cholesky_dag.id_of: out of range" in
  match (kind : Task.kind) with
  | Potrf k ->
    check (k >= 0 && k < t.nt);
    k
  | Trsm (m, k) ->
    check (k >= 0 && k < m && m < t.nt);
    trsm_off t + pair_idx t m k
  | Syrk (m, k) ->
    check (k >= 0 && k < m && m < t.nt);
    syrk_off t + pair_idx t m k
  | Gemm (m, n, k) ->
    check (k >= 0 && k < n && n < m && m < t.nt);
    gemm_off t + t.gemm_iter_base.(k) + gemm_inner t k n m

(* Largest x in [lo, hi] with f x <= target, where f is nondecreasing. *)
let bsearch_le ~lo ~hi ~f target =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if f mid <= target then lo := mid else hi := mid - 1
  done;
  !lo

let decode_pair t idx =
  let k = bsearch_le ~lo:0 ~hi:(t.nt - 1) ~f:(s t.nt) idx in
  let m = k + 1 + (idx - s t.nt k) in
  (m, k)

let kind_of t id : Task.kind =
  if id < 0 || id >= t.num_tasks then invalid_arg "Cholesky_dag.kind_of";
  if id < trsm_off t then Potrf id
  else if id < syrk_off t then begin
    let m, k = decode_pair t (id - trsm_off t) in
    Trsm (m, k)
  end
  else if id < gemm_off t then begin
    let m, k = decode_pair t (id - syrk_off t) in
    Syrk (m, k)
  end
  else begin
    let idx = id - gemm_off t in
    let k = bsearch_le ~lo:0 ~hi:(t.nt - 1) ~f:(fun k -> t.gemm_iter_base.(k)) idx in
    let inner = idx - t.gemm_iter_base.(k) in
    let n =
      bsearch_le ~lo:(k + 1) ~hi:(t.nt - 1) ~f:(fun n -> gemm_inner t k n (n + 1)) inner
    in
    let m = n + 1 + (inner - gemm_inner t k n (n + 1)) in
    Gemm (m, n, k)
  end

let successors t id =
  match kind_of t id with
  | Potrf k ->
    let acc = ref [] in
    for m = t.nt - 1 downto k + 1 do
      acc := id_of t (Trsm (m, k)) :: !acc
    done;
    !acc
  | Trsm (m, k) ->
    let acc = ref [ id_of t (Syrk (m, k)) ] in
    for n = m - 1 downto k + 1 do
      acc := id_of t (Gemm (m, n, k)) :: !acc
    done;
    for m' = t.nt - 1 downto m + 1 do
      acc := id_of t (Gemm (m', m, k)) :: !acc
    done;
    !acc
  | Syrk (m, k) ->
    if k + 1 <= m - 1 then [ id_of t (Syrk (m, k + 1)) ] else [ id_of t (Potrf m) ]
  | Gemm (m, n, k) ->
    if k + 1 < n then [ id_of t (Gemm (m, n, k + 1)) ] else [ id_of t (Trsm (m, n)) ]

let in_degree t =
  let deg = Array.make t.num_tasks 0 in
  for id = 0 to t.num_tasks - 1 do
    deg.(id) <-
      (match kind_of t id with
      | Potrf k -> if k = 0 then 0 else 1
      | Trsm (_, k) -> if k = 0 then 1 else 2
      | Syrk (_, k) -> if k = 0 then 1 else 2
      | Gemm (_, _, k) -> if k = 0 then 2 else 3)
  done;
  deg

let critical_path_tasks t = (3 * (t.nt - 1)) + 1

let iter t f =
  for id = 0 to t.num_tasks - 1 do
    f id (kind_of t id)
  done
