lib/runtime/cholesky_dag.mli: Task
