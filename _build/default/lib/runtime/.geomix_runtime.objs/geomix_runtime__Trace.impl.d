lib/runtime/trace.ml: Array Buffer Char Float Hashtbl List Printf Stdlib String
