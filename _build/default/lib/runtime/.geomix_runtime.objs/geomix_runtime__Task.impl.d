lib/runtime/task.ml: Geomix_precision Printf
