lib/runtime/task.mli: Geomix_precision
