lib/runtime/cholesky_dag.ml: Array Task
