lib/runtime/dtd.mli: Geomix_parallel
