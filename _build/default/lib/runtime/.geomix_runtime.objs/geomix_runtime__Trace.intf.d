lib/runtime/trace.mli:
