lib/runtime/dtd.ml: Array Geomix_parallel Hashtbl List Stdlib
