module Fpformat = Geomix_precision.Fpformat
module Flops = Geomix_precision.Flops

type kind =
  | Potrf of int
  | Trsm of int * int
  | Syrk of int * int
  | Gemm of int * int * int

let name = function
  | Potrf k -> Printf.sprintf "POTRF(%d)" k
  | Trsm (m, k) -> Printf.sprintf "TRSM(%d,%d)" m k
  | Syrk (m, k) -> Printf.sprintf "SYRK(%d,%d)" m k
  | Gemm (m, n, k) -> Printf.sprintf "GEMM(%d,%d,%d)" m n k

let short_name = function
  | Potrf _ -> "P"
  | Trsm _ -> "T"
  | Syrk _ -> "S"
  | Gemm _ -> "G"

let write_tile = function
  | Potrf k -> (k, k)
  | Trsm (m, k) -> (m, k)
  | Syrk (m, _) -> (m, m)
  | Gemm (m, n, _) -> (m, n)

let read_tiles = function
  | Potrf _ -> []
  | Trsm (_, k) -> [ (k, k) ]
  | Syrk (m, k) -> [ (m, k) ]
  | Gemm (m, n, k) -> [ (m, k); (n, k) ]

let producer_of_read kind tile =
  match (kind, tile) with
  | Trsm (_, k), (k', k'') when k' = k && k'' = k -> Potrf k
  | Syrk (m, k), (m', k') when m' = m && k' = k -> Trsm (m, k)
  | Gemm (m, _, k), (m', k') when m' = m && k' = k -> Trsm (m, k)
  | Gemm (_, n, k), (n', k') when n' = n && k' = k -> Trsm (n, k)
  | _ -> invalid_arg "Task.producer_of_read: tile is not read by this task"

let exec_precision ~kernel_precision = function
  | Potrf k -> kernel_precision k k
  | Syrk (m, _) -> kernel_precision m m
  | Gemm (m, n, _) -> kernel_precision m n
  | Trsm (m, k) -> (
    match kernel_precision m k with
    | Fpformat.Fp16 | Fpformat.Fp16_32 | Fpformat.Bf16_32 -> Fpformat.Fp32
    | p -> p)

let flops ~nb = function
  | Potrf _ -> Flops.potrf nb
  | Trsm _ -> Flops.trsm nb
  | Syrk _ -> Flops.syrk nb
  | Gemm _ -> Flops.gemm nb
