(* Table rendering, heat-maps and the binary heap. *)
module Table = Geomix_util.Table
module Heatmap = Geomix_util.Heatmap
module Heap = Geomix_util.Heap

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_renders_all_cells () =
  let s = Table.render ~headers:[ "a"; "b" ] [ [ "1"; "2" ]; [ "33"; "444" ] ] in
  List.iter
    (fun cell -> Alcotest.(check bool) (cell ^ " present") true (contains s cell))
    [ "a"; "b"; "1"; "2"; "33"; "444" ]

let test_table_pads_short_rows () =
  let s = Table.render ~headers:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_fmt_bytes () =
  Alcotest.(check string) "gb" "1.5 GB" (Table.fmt_bytes (1.5 *. 1024. *. 1024. *. 1024.));
  Alcotest.(check string) "b" "512 B" (Table.fmt_bytes 512.)

let test_fmt_time () =
  Alcotest.(check string) "ms" "4.56 ms" (Table.fmt_time 4.56e-3);
  Alcotest.(check string) "s" "7.89 s" (Table.fmt_time 7.89);
  Alcotest.(check string) "us" "12.3 us" (Table.fmt_time 12.3e-6)

let test_fmt_flops () =
  Alcotest.(check string) "tflops" "1.23 Tflop/s" (Table.fmt_flops 1.23e12)

let test_fmt_pct () = Alcotest.(check string) "pct" "12.3%" (Table.fmt_pct 0.123)

let test_heatmap_percentages () =
  let hm = Heatmap.create ~nt:4 ~categories:[ ("x", 'x'); ("y", 'y') ] in
  let cell ~row ~col = if col > row then None else Some (if row = col then 0 else 1) in
  let pct = Heatmap.percentages hm ~cell in
  Alcotest.(check bool) "diag fraction" true (Float.abs (pct.(0) -. 0.4) < 1e-9);
  Alcotest.(check bool) "off fraction" true (Float.abs (pct.(1) -. 0.6) < 1e-9)

let test_heatmap_render () =
  let hm = Heatmap.create ~nt:2 ~categories:[ ("only", 'o') ] in
  let s = Heatmap.render hm ~cell:(fun ~row ~col -> if col > row then None else Some 0) in
  Alcotest.(check bool) "legend present" true (contains s "only");
  Alcotest.(check bool) "100%" true (contains s "100.0%")

let test_heap_sorts () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 0 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some x ->
      out := x :: !out;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 0; 1; 1; 3; 4; 5; 9 ] (List.rev !out)

let test_heap_peek () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check (option int)) "empty peek" None (Heap.peek h);
  Heap.push h 2;
  Heap.push h 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check int) "size" 2 (Heap.size h)

let prop_heap_extracts_sorted =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list (int_range (-1000) 1000))
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

let () =
  Alcotest.run "util"
    [
      ( "table",
        [
          Alcotest.test_case "renders all cells" `Quick test_table_renders_all_cells;
          Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "fmt_bytes" `Quick test_fmt_bytes;
          Alcotest.test_case "fmt_time" `Quick test_fmt_time;
          Alcotest.test_case "fmt_flops" `Quick test_fmt_flops;
          Alcotest.test_case "fmt_pct" `Quick test_fmt_pct;
        ] );
      ( "heatmap",
        [
          Alcotest.test_case "percentages" `Quick test_heatmap_percentages;
          Alcotest.test_case "render legend" `Quick test_heatmap_render;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "peek/size" `Quick test_heap_peek;
          QCheck_alcotest.to_alcotest prop_heap_extracts_sorted;
        ] );
    ]
