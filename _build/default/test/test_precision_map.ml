module Pm = Geomix_core.Precision_map
module Fp = Geomix_precision.Fpformat
module Tiled = Geomix_tile.Tiled
module Rng = Geomix_util.Rng

let prec = Alcotest.testable Fp.pp ( = )

let decay_element rate i j = exp (-.rate *. float_of_int (abs (i - j)))

let test_diagonal_always_fp64 () =
  let pmap = Pm.of_element_fn ~u_req:1e-2 ~n:512 ~nb:64 (decay_element 0.05) in
  for k = 0 to Pm.nt pmap - 1 do
    Alcotest.(check prec) "diag" Fp.Fp64 (Pm.get pmap k k)
  done

let test_rule_satisfied () =
  (* Every off-diagonal tile's assigned precision must satisfy the norm
     rule, and the next lower precision must violate it. *)
  let rng = Rng.create ~seed:1 in
  let n = 96 and nb = 16 in
  let d =
    Geomix_linalg.Mat.init ~rows:n ~cols:n (fun i j ->
      decay_element 0.08 i j *. (1. +. (0.01 *. Rng.float rng)))
  in
  (* Symmetrise. *)
  let d' = Geomix_linalg.Mat.copy d in
  Geomix_linalg.Mat.add_scaled d' ~alpha:1. (Geomix_linalg.Mat.transpose d);
  let a = Tiled.of_dense ~nb d' in
  let u_req = 1e-6 in
  let pmap = Pm.of_tiled ~u_req a in
  let ntl = Tiled.nt a in
  let global = Tiled.frobenius a in
  let chain = [ Fp.Fp16; Fp.Fp16_32; Fp.Fp32 ] in
  for i = 0 to ntl - 1 do
    for j = 0 to i - 1 do
      let ratio = Tiled.tile_frobenius a i j *. float_of_int ntl /. global in
      let p = Pm.get pmap i j in
      if p <> Fp.Fp64 then
        Alcotest.(check bool) "rule holds" true (ratio <= u_req /. Fp.rule_epsilon p);
      (* No strictly lower precision may also satisfy the rule. *)
      List.iter
        (fun q ->
          if Fp.compare_precision q p < 0 then
            Alcotest.(check bool) "assigned the lowest feasible" false
              (ratio <= u_req /. Fp.rule_epsilon q))
        chain
    done
  done

let test_stricter_accuracy_raises_precision () =
  let count_low u =
    let pmap = Pm.of_element_fn ~u_req:u ~n:1024 ~nb:64 (decay_element 0.02) in
    List.fold_left
      (fun acc (p, f) -> if p = Fp.Fp16 || p = Fp.Fp16_32 then acc +. f else acc)
      0. (Pm.fractions pmap)
  in
  let loose = count_low 1e-3 and strict = count_low 1e-10 in
  Alcotest.(check bool)
    (Printf.sprintf "low-precision share shrinks (%.2f → %.2f)" loose strict)
    true (strict < loose)

let test_faster_decay_lowers_precision () =
  let frac_low rate =
    let pmap = Pm.of_element_fn ~u_req:1e-6 ~n:1024 ~nb:64 (decay_element rate) in
    List.fold_left
      (fun acc (p, f) -> if p = Fp.Fp16 || p = Fp.Fp16_32 then acc +. f else acc)
      0. (Pm.fractions pmap)
  in
  Alcotest.(check bool) "faster decay ⇒ more FP16-class tiles" true
    (frac_low 0.05 > frac_low 0.002)

let test_uniform_and_two_level () =
  let u = Pm.uniform ~nt:5 Fp.Fp32 in
  Alcotest.(check prec) "uniform diag" Fp.Fp32 (Pm.get u 2 2);
  Alcotest.(check prec) "uniform off" Fp.Fp32 (Pm.get u 4 1);
  let t = Pm.two_level ~nt:5 ~off_diag:Fp.Fp16 in
  Alcotest.(check prec) "two-level diag" Fp.Fp64 (Pm.get t 3 3);
  Alcotest.(check prec) "two-level off" Fp.Fp16 (Pm.get t 3 1)

let test_storage () =
  let t = Pm.two_level ~nt:4 ~off_diag:Fp.Fp16 in
  Alcotest.(check bool) "diag stored fp64" true (Pm.storage t 1 1 = Fp.S_fp64);
  Alcotest.(check bool) "fp16 tile stored fp32" true (Pm.storage t 2 0 = Fp.S_fp32)

let test_fractions_sum_to_one () =
  let pmap = Pm.of_element_fn ~u_req:1e-5 ~n:512 ~nb:32 (decay_element 0.03) in
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0. (Pm.fractions pmap) in
  Alcotest.(check (float 1e-9)) "sums to 1" 1. total

let test_sampled_estimator_close_to_exact () =
  (* On a matrix small enough to materialise, the sampled map should agree
     with the exact map on nearly all tiles. *)
  let n = 256 and nb = 32 in
  let f i j = decay_element 0.04 i j in
  let a = Tiled.init ~n ~nb f in
  let exact = Pm.of_tiled ~u_req:1e-6 a in
  let sampled = Pm.of_element_fn ~samples_per_tile:256 ~u_req:1e-6 ~n ~nb f in
  let agree = ref 0 and total = ref 0 in
  for i = 0 to Pm.nt exact - 1 do
    for j = 0 to i do
      incr total;
      if Pm.get exact i j = Pm.get sampled i j then incr agree
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "agreement %d/%d" !agree !total)
    true
    (float_of_int !agree /. float_of_int !total > 0.9)

let test_chain_restriction () =
  (* Restricting the chain to {FP64, FP32} must never produce FP16 tiles. *)
  let pmap =
    Pm.of_element_fn ~chain:[ Fp.Fp64; Fp.Fp32 ] ~u_req:1e-2 ~n:512 ~nb:64
      (decay_element 0.05)
  in
  List.iter
    (fun (p, _) -> Alcotest.(check bool) "only 64/32" true (p = Fp.Fp64 || p = Fp.Fp32))
    (Pm.fractions pmap)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_render_contains_legend () =
  let pmap = Pm.two_level ~nt:4 ~off_diag:Fp.Fp16 in
  let s = Pm.render pmap in
  Alcotest.(check bool) "mentions FP64" true (contains s "FP64");
  Alcotest.(check bool) "mentions FP16" true (contains s "FP16")

let prop_map_monotone_in_u =
  QCheck.Test.make ~name:"looser u_req never raises a tile's precision" ~count:20
    (QCheck.pair (QCheck.float_range 1e-10 1e-2) (QCheck.float_range 1.5 10.))
    (fun (u, factor) ->
      let f = decay_element 0.03 in
      let a = Pm.of_element_fn ~u_req:u ~n:256 ~nb:32 f in
      let b = Pm.of_element_fn ~u_req:(u *. factor) ~n:256 ~nb:32 f in
      let ok = ref true in
      for i = 0 to Pm.nt a - 1 do
        for j = 0 to i do
          if Fp.compare_precision (Pm.get b i j) (Pm.get a i j) > 0 then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "precision_map"
    [
      ( "precision map",
        [
          Alcotest.test_case "diagonal FP64" `Quick test_diagonal_always_fp64;
          Alcotest.test_case "norm rule satisfied & minimal" `Quick test_rule_satisfied;
          Alcotest.test_case "stricter accuracy ⇒ higher precision" `Quick
            test_stricter_accuracy_raises_precision;
          Alcotest.test_case "decay structure honoured" `Quick test_faster_decay_lowers_precision;
          Alcotest.test_case "uniform/two-level" `Quick test_uniform_and_two_level;
          Alcotest.test_case "storage rule" `Quick test_storage;
          Alcotest.test_case "fractions sum" `Quick test_fractions_sum_to_one;
          Alcotest.test_case "sampled ≈ exact" `Quick test_sampled_estimator_close_to_exact;
          Alcotest.test_case "chain restriction" `Quick test_chain_restriction;
          Alcotest.test_case "render legend" `Quick test_render_contains_legend;
          QCheck_alcotest.to_alcotest prop_map_monotone_in_u;
        ] );
    ]
