module Locations = Geomix_geostat.Locations
module Covariance = Geomix_geostat.Covariance
module Field = Geomix_geostat.Field
module Prediction = Geomix_geostat.Prediction
module Mat = Geomix_linalg.Mat
module Blas = Geomix_linalg.Blas
module Stats = Geomix_util.Stats
module Rng = Geomix_util.Rng

let rng () = Rng.create ~seed:31

let test_locations_in_domain () =
  let r = rng () in
  List.iter
    (fun (locs, dims) ->
      Alcotest.(check int) "dim" dims (Locations.dim locs);
      for i = 0 to Locations.count locs - 1 do
        Array.iter
          (fun c -> Alcotest.(check bool) "in unit cube" true (c >= 0. && c <= 1.))
          (Locations.coord locs i)
      done)
    [
      (Locations.jittered_grid_2d ~rng:r ~n:100, 2);
      (Locations.jittered_grid_3d ~rng:r ~n:64, 3);
      (Locations.uniform_2d ~rng:r ~n:50, 2);
      (Locations.uniform_3d ~rng:r ~n:50, 3);
    ]

let test_locations_count () =
  let r = rng () in
  List.iter
    (fun n ->
      Alcotest.(check int) "exact count" n
        (Locations.count (Locations.jittered_grid_2d ~rng:r ~n)))
    [ 1; 10; 100; 123 ]

let test_jitter_separation () =
  (* Jittered-grid sites keep a minimum separation (the 80% inner cell). *)
  let r = rng () in
  let locs = Locations.jittered_grid_2d ~rng:r ~n:100 in
  let min_d = ref infinity in
  for i = 0 to 99 do
    for j = i + 1 to 99 do
      min_d := Float.min !min_d (Locations.distance locs i j)
    done
  done;
  Alcotest.(check bool) (Printf.sprintf "min dist %g > 0.01" !min_d) true (!min_d > 0.01)

let test_distance () =
  let r = rng () in
  let locs = Locations.uniform_2d ~rng:r ~n:5 in
  Alcotest.(check (float 0.)) "self distance" 0. (Locations.distance locs 2 2);
  Alcotest.(check (float 1e-12)) "symmetric" (Locations.distance locs 0 3)
    (Locations.distance locs 3 0)

let test_morton_sort_improves_locality () =
  let r = rng () in
  let locs = Locations.uniform_2d ~rng:r ~n:400 in
  let sorted = Locations.morton_sort locs in
  Alcotest.(check int) "count preserved" 400 (Locations.count sorted);
  (* Average distance between index-neighbours must shrink. *)
  let avg_gap l =
    let acc = ref 0. in
    for i = 0 to 398 do
      acc := !acc +. Locations.distance l i (i + 1)
    done;
    !acc /. 399.
  in
  Alcotest.(check bool) "locality improved" true (avg_gap sorted < 0.5 *. avg_gap locs)

let test_sqexp_properties () =
  let c = Covariance.sqexp ~sigma2:1.5 ~beta:0.2 () in
  Alcotest.(check (float 1e-12)) "C(0)=σ²" 1.5 (Covariance.eval c 0.);
  Alcotest.(check bool) "decreasing" true
    (Covariance.eval c 0.1 > Covariance.eval c 0.2);
  Alcotest.(check bool) "vanishing" true (Covariance.eval c 10. < 1e-10)

let test_matern_nu_half_is_exponential () =
  let c = Covariance.matern ~sigma2:2. ~beta:0.3 ~nu:0.5 () in
  List.iter
    (fun h ->
      Alcotest.(check (float 1e-10)) "exp form" (2. *. exp (-.h /. 0.3)) (Covariance.eval c h))
    [ 0.05; 0.1; 0.5; 1. ]

let test_matern_special_case_consistency () =
  (* The Bessel branch at ν=0.5±ε must agree with the closed form. *)
  let h = 0.23 in
  let c_exact = Covariance.matern ~sigma2:1. ~beta:0.1 ~nu:0.5 () in
  let c_eps = Covariance.matern ~sigma2:1. ~beta:0.1 ~nu:0.5000001 () in
  Alcotest.(check bool) "branch continuity" true
    (Float.abs (Covariance.eval c_exact h -. Covariance.eval c_eps h) < 1e-5)

let test_matern_smoothness_effect () =
  (* Higher ν ⇒ flatter near the origin (smoother field). *)
  let rough = Covariance.matern ~sigma2:1. ~beta:0.2 ~nu:0.5 () in
  let smooth = Covariance.matern ~sigma2:1. ~beta:0.2 ~nu:1.5 () in
  let h = 0.02 in
  Alcotest.(check bool) "smooth retains more correlation at tiny h" true
    (Covariance.eval smooth h > Covariance.eval rough h)

let test_powexp_properties () =
  let c = Covariance.powexp ~sigma2:1. ~beta:0.2 ~power:1. () in
  (* power = 1 is the exponential kernel. *)
  List.iter
    (fun h ->
      Alcotest.(check (float 1e-12)) "exp form" (exp (-.h /. 0.2)) (Covariance.eval c h))
    [ 0.05; 0.2; 0.7 ];
  (* power = 2 coincides with sqexp at range β². *)
  let p2 = Covariance.powexp ~sigma2:1.5 ~beta:0.3 ~power:2. () in
  let sq = Covariance.sqexp ~sigma2:1.5 ~beta:0.09 () in
  List.iter
    (fun h ->
      Alcotest.(check (float 1e-12)) "matches sqexp" (Covariance.eval sq h)
        (Covariance.eval p2 h))
    [ 0.05; 0.2; 0.7 ]

let test_spherical_properties () =
  let c = Covariance.spherical ~sigma2:2. ~beta:0.5 () in
  Alcotest.(check (float 1e-12)) "C(0)=σ²" 2. (Covariance.eval c 0.);
  Alcotest.(check (float 0.)) "compact support" 0. (Covariance.eval c 0.5);
  Alcotest.(check (float 0.)) "beyond range" 0. (Covariance.eval c 1.2);
  Alcotest.(check bool) "decreasing inside" true
    (Covariance.eval c 0.1 > Covariance.eval c 0.3);
  (* Continuity at the range. *)
  Alcotest.(check bool) "continuous at beta" true (Covariance.eval c 0.4999 < 1e-3)

let test_new_families_spd () =
  let r = rng () in
  let locs = Locations.jittered_grid_2d ~rng:r ~n:64 in
  List.iter
    (fun cov -> Blas.potrf_lower (Covariance.build_dense cov locs))
    [
      Covariance.powexp ~sigma2:1. ~beta:0.2 ~power:1.5 ();
      Covariance.spherical ~sigma2:1. ~beta:0.4 ();
    ]

let test_new_families_theta () =
  let p = Covariance.powexp ~sigma2:1. ~beta:0.2 ~power:1.5 () in
  Alcotest.(check (array (float 0.))) "powexp theta" [| 1.; 0.2; 1.5 |] (Covariance.theta p);
  let s = Covariance.spherical ~sigma2:1. ~beta:0.4 () in
  Alcotest.(check (array (float 0.))) "spherical theta" [| 1.; 0.4 |] (Covariance.theta s);
  let s' = Covariance.with_theta s [| 2.; 0.3 |] in
  Alcotest.(check (float 0.)) "updated" 2. (Covariance.eval s' 0.)

let test_element_nugget () =
  let r = rng () in
  let locs = Locations.uniform_2d ~rng:r ~n:4 in
  let c = Covariance.sqexp ~nugget:1e-3 ~sigma2:1. ~beta:0.1 () in
  Alcotest.(check (float 1e-15)) "diagonal includes nugget" (1. +. 1e-3)
    (Covariance.element c locs 2 2)

let test_build_dense_spd () =
  let r = rng () in
  let locs = Locations.jittered_grid_2d ~rng:r ~n:64 in
  List.iter
    (fun cov ->
      let m = Covariance.build_dense cov locs in
      (* Symmetric... *)
      Alcotest.(check (float 0.)) "symmetric" 0.
        (Mat.rel_diff (Mat.transpose m) ~reference:m);
      (* ...and positive definite: Cholesky succeeds. *)
      Blas.potrf_lower m)
    [
      Covariance.sqexp ~sigma2:1. ~beta:0.1 ();
      Covariance.matern ~sigma2:1. ~beta:0.1 ~nu:0.5 ();
      Covariance.matern ~sigma2:1. ~beta:0.3 ~nu:1. ();
    ]

let test_build_tiled_matches_dense () =
  let r = rng () in
  let locs = Locations.jittered_grid_2d ~rng:r ~n:48 in
  let cov = Covariance.matern ~sigma2:1. ~beta:0.2 ~nu:0.8 () in
  let d = Covariance.build_dense cov locs in
  let t = Geomix_tile.Tiled.to_dense (Covariance.build_tiled cov locs ~nb:16) in
  Alcotest.(check (float 0.)) "same matrix" 0. (Mat.rel_diff t ~reference:d)

let test_theta_roundtrip () =
  let c = Covariance.matern ~sigma2:1.2 ~beta:0.4 ~nu:0.9 () in
  let c' = Covariance.with_theta c [| 0.8; 0.2; 1.1 |] in
  Alcotest.(check (array (float 0.))) "updated" [| 0.8; 0.2; 1.1 |] (Covariance.theta c');
  Alcotest.check_raises "arity enforced"
    (Invalid_argument "Covariance.with_theta: wrong parameter count") (fun () ->
    ignore (Covariance.with_theta c [| 1. |]))

let test_field_variance () =
  (* The empirical variance of a synthesised field matches σ² roughly. *)
  let r = rng () in
  let locs = Locations.jittered_grid_2d ~rng:r ~n:400 in
  let cov = Covariance.sqexp ~sigma2:1. ~beta:0.02 () in
  let zs = Field.synthesize_many ~rng:r ~cov ~replicas:8 locs in
  let all = Array.concat (Array.to_list zs) in
  let v = Stats.variance all in
  Alcotest.(check bool) (Printf.sprintf "variance %g ≈ 1" v) true (v > 0.7 && v < 1.3)

let test_field_replicas_differ () =
  let r = rng () in
  let locs = Locations.jittered_grid_2d ~rng:r ~n:32 in
  let cov = Covariance.sqexp ~sigma2:1. ~beta:0.1 () in
  let zs = Field.synthesize_many ~rng:r ~cov ~replicas:2 locs in
  Alcotest.(check bool) "independent replicas" true (zs.(0) <> zs.(1))

let test_field_correlation_structure () =
  (* Strongly correlated field: neighbouring values nearly equal. *)
  let r = rng () in
  let locs = Locations.jittered_grid_2d ~rng:r ~n:100 in
  let strong = Field.synthesize ~rng:r ~cov:(Covariance.sqexp ~sigma2:1. ~beta:2. ()) locs in
  (* Pick the closest pair. *)
  let bi = ref 0 and bj = ref 1 and bd = ref infinity in
  for i = 0 to 99 do
    for j = i + 1 to 99 do
      let d = Locations.distance locs i j in
      if d < !bd then begin
        bd := d;
        bi := i;
        bj := j
      end
    done
  done;
  Alcotest.(check bool) "close sites close values" true
    (Float.abs (strong.(!bi) -. strong.(!bj)) < 0.2)

let test_prediction_interpolates () =
  (* Kriging at an observed site with the true covariance returns almost
     the observed value (tiny nugget). *)
  let r = rng () in
  let locs = Locations.jittered_grid_2d ~rng:r ~n:100 in
  let cov = Covariance.sqexp ~sigma2:1. ~beta:0.5 () in
  let z = Field.synthesize ~rng:r ~cov locs in
  let p = Prediction.predict ~cov ~obs_locs:locs ~z ~new_locs:locs in
  let err = Prediction.mse ~predicted:p.Prediction.mean ~truth:z in
  Alcotest.(check bool) (Printf.sprintf "mse %g tiny" err) true (err < 1e-4);
  Array.iter
    (fun v -> Alcotest.(check bool) "variance ≈ 0 at data" true (v < 1e-2))
    p.Prediction.variance

let test_prediction_variance_grows_far_away () =
  let r = rng () in
  let locs = Locations.jittered_grid_2d ~rng:r ~n:64 in
  let cov = Covariance.sqexp ~sigma2:1. ~beta:0.01 () in
  let z = Field.synthesize ~rng:r ~cov locs in
  (* A site far outside the unit square is unpredictable: σ*² → σ². *)
  let far = Locations.uniform_2d ~rng:r ~n:1 in
  (* shift it out of the domain by predicting with scaled coords *)
  let p = Prediction.predict ~cov ~obs_locs:locs ~z ~new_locs:far in
  Alcotest.(check bool) "variance below prior" true (p.Prediction.variance.(0) <= 1. +. 1e-6)

let () =
  Alcotest.run "geostat"
    [
      ( "locations",
        [
          Alcotest.test_case "domain" `Quick test_locations_in_domain;
          Alcotest.test_case "count" `Quick test_locations_count;
          Alcotest.test_case "separation" `Quick test_jitter_separation;
          Alcotest.test_case "distance" `Quick test_distance;
          Alcotest.test_case "morton locality" `Quick test_morton_sort_improves_locality;
        ] );
      ( "covariance",
        [
          Alcotest.test_case "sqexp" `Quick test_sqexp_properties;
          Alcotest.test_case "matern ν=1/2 exponential" `Quick test_matern_nu_half_is_exponential;
          Alcotest.test_case "matern branch continuity" `Quick test_matern_special_case_consistency;
          Alcotest.test_case "smoothness effect" `Quick test_matern_smoothness_effect;
          Alcotest.test_case "powexp" `Quick test_powexp_properties;
          Alcotest.test_case "spherical" `Quick test_spherical_properties;
          Alcotest.test_case "new families SPD" `Quick test_new_families_spd;
          Alcotest.test_case "new families theta" `Quick test_new_families_theta;
          Alcotest.test_case "nugget" `Quick test_element_nugget;
          Alcotest.test_case "dense SPD" `Quick test_build_dense_spd;
          Alcotest.test_case "tiled = dense" `Quick test_build_tiled_matches_dense;
          Alcotest.test_case "theta roundtrip" `Quick test_theta_roundtrip;
        ] );
      ( "field",
        [
          Alcotest.test_case "variance" `Quick test_field_variance;
          Alcotest.test_case "replicas differ" `Quick test_field_replicas_differ;
          Alcotest.test_case "correlation structure" `Quick test_field_correlation_structure;
        ] );
      ( "prediction",
        [
          Alcotest.test_case "interpolates" `Quick test_prediction_interpolates;
          Alcotest.test_case "variance bounded" `Quick test_prediction_variance_grows_far_away;
        ] );
    ]
