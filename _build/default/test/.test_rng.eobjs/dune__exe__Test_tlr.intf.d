test/test_tlr.mli:
