test/test_flops.mli:
