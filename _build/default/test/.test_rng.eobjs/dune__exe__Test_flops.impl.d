test/test_flops.ml: Alcotest Float Geomix_precision List Printf QCheck QCheck_alcotest
