test/test_gpusim.ml: Alcotest Array Float Geomix_gpusim Geomix_precision Geomix_runtime List Printf
