test/test_mca.mli:
