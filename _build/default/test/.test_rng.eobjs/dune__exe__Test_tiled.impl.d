test/test_tiled.ml: Alcotest Array Geomix_linalg Geomix_tile Geomix_util List Printf QCheck QCheck_alcotest
