test/test_parallel.ml: Alcotest Array Atomic Fun Geomix_parallel Geomix_util List Mutex QCheck QCheck_alcotest
