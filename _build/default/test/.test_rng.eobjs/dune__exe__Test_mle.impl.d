test/test_mle.ml: Alcotest Array Float Geomix_core Geomix_geostat Geomix_linalg Geomix_util List Printf
