test/test_specfun.ml: Alcotest Float Geomix_specfun List Printf QCheck QCheck_alcotest
