test/test_dtd.ml: Alcotest Array Atomic Geomix_linalg Geomix_parallel Geomix_runtime Geomix_tile Geomix_util List Printf QCheck QCheck_alcotest
