test/test_mle.mli:
