test/test_runtime.ml: Alcotest Array Fun Geomix_parallel Geomix_precision Geomix_runtime List Printf QCheck QCheck_alcotest String
