test/test_optim.ml: Alcotest Array Float Geomix_optim List Printf QCheck QCheck_alcotest
