test/test_mat.ml: Alcotest Float Geomix_linalg Geomix_precision Geomix_util List QCheck QCheck_alcotest
