test/test_comm_map.mli:
