test/test_sim_cholesky.mli:
