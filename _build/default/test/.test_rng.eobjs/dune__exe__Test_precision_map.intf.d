test/test_precision_map.mli:
