test/test_geostat.ml: Alcotest Array Float Geomix_geostat Geomix_linalg Geomix_tile Geomix_util List Printf
