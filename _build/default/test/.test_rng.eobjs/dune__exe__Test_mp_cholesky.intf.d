test/test_mp_cholesky.mli:
