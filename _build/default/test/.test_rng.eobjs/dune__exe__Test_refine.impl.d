test/test_refine.ml: Alcotest Array Geomix_core Geomix_linalg Geomix_precision Geomix_tile Geomix_util List Printf QCheck QCheck_alcotest
