test/test_comm_map.ml: Alcotest Format Geomix_core Geomix_precision QCheck QCheck_alcotest String
