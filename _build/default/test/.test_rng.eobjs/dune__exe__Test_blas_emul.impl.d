test/test_blas_emul.ml: Alcotest Geomix_linalg Geomix_precision Geomix_util List Printf QCheck QCheck_alcotest
