test/test_tlr.ml: Alcotest Array Float Geomix_core Geomix_geostat Geomix_linalg Geomix_precision Geomix_tile Geomix_tlr Geomix_util List Printf QCheck QCheck_alcotest
