test/test_mca.ml: Alcotest Array Float Geomix_precision Geomix_util List Printf QCheck QCheck_alcotest
