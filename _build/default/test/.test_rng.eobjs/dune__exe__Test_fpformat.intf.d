test/test_fpformat.mli:
