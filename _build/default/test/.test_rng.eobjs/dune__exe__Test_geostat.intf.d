test/test_geostat.mli:
