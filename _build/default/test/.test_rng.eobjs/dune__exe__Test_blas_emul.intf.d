test/test_blas_emul.mli:
