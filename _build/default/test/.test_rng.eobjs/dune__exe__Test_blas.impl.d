test/test_blas.ml: Alcotest Array Geomix_linalg Geomix_util List Printf QCheck QCheck_alcotest
