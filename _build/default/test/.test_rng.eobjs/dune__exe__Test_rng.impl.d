test/test_rng.ml: Alcotest Array Float Fun Geomix_util Int
