test/test_stats.ml: Alcotest Array Float Gen Geomix_util List Printf QCheck QCheck_alcotest
