test/test_util.ml: Alcotest Array Float Geomix_util Int List QCheck QCheck_alcotest String
