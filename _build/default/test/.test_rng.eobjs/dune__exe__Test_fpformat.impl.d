test/test_fpformat.ml: Alcotest Float Geomix_precision Int32 List Printf QCheck QCheck_alcotest
