test/test_tiled.mli:
