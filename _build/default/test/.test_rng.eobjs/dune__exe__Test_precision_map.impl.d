test/test_precision_map.ml: Alcotest Geomix_core Geomix_linalg Geomix_precision Geomix_tile Geomix_util List Printf QCheck QCheck_alcotest String
