module Mat = Geomix_linalg.Mat
module Check = Geomix_linalg.Check
module Tiled = Geomix_tile.Tiled
module Pm = Geomix_core.Precision_map
module Mp = Geomix_core.Mp_cholesky
module Refine = Geomix_core.Refine
module Fp = Geomix_precision.Fpformat
module Rng = Geomix_util.Rng

let decay_spd n =
  Mat.init ~rows:n ~cols:n (fun i j ->
    (if i = j then 1.0 else 0.) +. exp (-0.05 *. float_of_int (abs (i - j))))

let problem n nb =
  let d = decay_spd n in
  let a = Tiled.of_dense ~nb d in
  let b = Array.init n (fun i -> cos (0.3 *. float_of_int i)) in
  (d, a, b)

let factorize pmap a =
  let f = Tiled.copy a in
  Mp.factorize ~pmap f;
  f

let test_matvec_sym_matches_dense () =
  let rng = Rng.create ~seed:1 in
  List.iter
    (fun (n, nb) ->
      let d = Check.spd_random ~rng ~n in
      let a = Tiled.of_dense ~nb d in
      let v = Array.init n (fun i -> sin (float_of_int i)) in
      let y_tiled = Refine.matvec_sym a v in
      let y_dense = Mat.matvec d v in
      Array.iteri
        (fun i y ->
          Alcotest.(check (float 1e-10)) (Printf.sprintf "entry %d" i) y_dense.(i) y)
        y_tiled)
    [ (12, 4); (30, 7); (64, 16) ]

let test_fp64_factor_converges_immediately () =
  let d, a, b = problem 96 32 in
  let f = factorize (Pm.uniform ~nt:(Tiled.nt a) Fp.Fp64) a in
  let r = Refine.solve ~a ~factor:f ~b () in
  Alcotest.(check bool) "converged" true r.Refine.converged;
  Alcotest.(check bool) "no sweeps needed" true (r.Refine.iterations <= 1);
  Alcotest.(check bool) "solution solves Ax=b" true
    (Check.solve_residual ~a:d ~x:r.Refine.x ~b < 1e-12)

let test_low_precision_factor_refined_to_fp64 () =
  let d, a, b = problem 128 32 in
  (* FP16-heavy factor: direct solve only reaches ~1e-4; refinement must
     recover FP64-level accuracy. *)
  let f = factorize (Pm.two_level ~nt:(Tiled.nt a) ~off_diag:Fp.Fp16) a in
  let direct = Mp.solve_lower_trans f (Mp.solve_lower f b) in
  let direct_res = Check.solve_residual ~a:d ~x:direct ~b in
  let r = Refine.solve ~a ~factor:f ~b () in
  let refined_res = Check.solve_residual ~a:d ~x:r.Refine.x ~b in
  Alcotest.(check bool)
    (Printf.sprintf "direct %.2e -> refined %.2e" direct_res refined_res)
    true
    (r.Refine.converged && refined_res < 1e-11 && direct_res > 1e-7);
  Alcotest.(check bool) "needed a few sweeps" true
    (r.Refine.iterations >= 1 && r.Refine.iterations <= 20)

let test_residual_history_decreases () =
  let _, a, b = problem 96 32 in
  let f = factorize (Pm.two_level ~nt:(Tiled.nt a) ~off_diag:Fp.Fp16) a in
  let r = Refine.solve ~a ~factor:f ~b () in
  let rec check_decreasing = function
    | x :: (y :: _ as rest) ->
      Alcotest.(check bool) "monotone decrease" true (y < x);
      check_decreasing rest
    | _ -> ()
  in
  check_decreasing r.Refine.residual_norms

let test_adaptive_factor_refinement () =
  let d, a, b = problem 160 32 in
  let f = factorize (Pm.of_tiled ~u_req:1e-4 a) a in
  let r = Refine.solve ~a ~factor:f ~b () in
  Alcotest.(check bool) "converged to FP64 accuracy" true
    (r.Refine.converged && Check.solve_residual ~a:d ~x:r.Refine.x ~b < 1e-11)

let test_tolerance_respected () =
  let _, a, b = problem 96 32 in
  let f = factorize (Pm.two_level ~nt:(Tiled.nt a) ~off_diag:Fp.Fp16) a in
  let loose = Refine.solve ~tolerance:1e-6 ~a ~factor:f ~b () in
  let tight = Refine.solve ~tolerance:1e-13 ~a ~factor:f ~b () in
  Alcotest.(check bool) "loose stops earlier" true
    (loose.Refine.iterations <= tight.Refine.iterations)

let test_max_iterations_cap () =
  let _, a, b = problem 96 32 in
  let f = factorize (Pm.two_level ~nt:(Tiled.nt a) ~off_diag:Fp.Fp16) a in
  let r = Refine.solve ~max_iterations:0 ~tolerance:1e-300 ~a ~factor:f ~b () in
  Alcotest.(check int) "capped" 0 r.Refine.iterations;
  Alcotest.(check bool) "reported not converged" false r.Refine.converged

let prop_refined_never_worse_than_direct =
  QCheck.Test.make ~name:"refinement never increases the residual" ~count:15
    (QCheck.int_range 2 5)
    (fun ntiles ->
      let n = ntiles * 24 in
      let d, a, b = problem n 24 in
      let f = factorize (Pm.two_level ~nt:ntiles ~off_diag:Fp.Fp16_32) a in
      let direct = Mp.solve_lower_trans f (Mp.solve_lower f b) in
      let r = Refine.solve ~a ~factor:f ~b () in
      Check.solve_residual ~a:d ~x:r.Refine.x ~b
      <= Check.solve_residual ~a:d ~x:direct ~b +. 1e-15)

let () =
  Alcotest.run "refine"
    [
      ( "iterative refinement",
        [
          Alcotest.test_case "matvec_sym = dense" `Quick test_matvec_sym_matches_dense;
          Alcotest.test_case "fp64 factor immediate" `Quick test_fp64_factor_converges_immediately;
          Alcotest.test_case "fp16 factor refined" `Quick test_low_precision_factor_refined_to_fp64;
          Alcotest.test_case "residual history" `Quick test_residual_history_decreases;
          Alcotest.test_case "adaptive factor" `Quick test_adaptive_factor_refinement;
          Alcotest.test_case "tolerance respected" `Quick test_tolerance_respected;
          Alcotest.test_case "iteration cap" `Quick test_max_iterations_cap;
          QCheck_alcotest.to_alcotest prop_refined_never_worse_than_direct;
        ] );
    ]
