module Mat = Geomix_linalg.Mat
module Blas = Geomix_linalg.Blas
module Factor = Geomix_linalg.Factor
module Check = Geomix_linalg.Check
module Tiled = Geomix_tile.Tiled
module Lowrank = Geomix_tlr.Lowrank
module Tlr = Geomix_tlr.Tlr
module Pm = Geomix_core.Precision_map
module Fp = Geomix_precision.Fpformat
module Rng = Geomix_util.Rng
module Locations = Geomix_geostat.Locations
module Covariance = Geomix_geostat.Covariance

(* --- Factor: QR and SVD primitives --- *)

let test_qr_reconstructs () =
  let rng = Rng.create ~seed:1 in
  List.iter
    (fun (m, k) ->
      let a = Mat.init ~rows:m ~cols:k (fun _ _ -> Rng.gaussian rng) in
      let q, r = Factor.qr_thin a in
      let qr = Mat.create ~rows:m ~cols:k in
      Blas.gemm ~alpha:1. q r ~beta:0. qr;
      Alcotest.(check bool) (Printf.sprintf "QR=A (%dx%d)" m k) true
        (Mat.rel_diff qr ~reference:a < 1e-12);
      (* QᵀQ = I *)
      let qtq = Mat.create ~rows:k ~cols:k in
      Blas.gemm ~transa:true ~alpha:1. q q ~beta:0. qtq;
      Alcotest.(check bool) "orthonormal" true
        (Mat.rel_diff qtq ~reference:(Mat.identity k) < 1e-12))
    [ (5, 5); (12, 4); (30, 7); (8, 1) ]

let test_qr_r_upper_triangular () =
  let rng = Rng.create ~seed:2 in
  let a = Mat.init ~rows:10 ~cols:5 (fun _ _ -> Rng.gaussian rng) in
  let _, r = Factor.qr_thin a in
  for j = 0 to 4 do
    for i = j + 1 to 4 do
      Alcotest.(check (float 0.)) "strictly lower zero" 0. (Mat.get r i j)
    done
  done

let test_svd_reconstructs () =
  let rng = Rng.create ~seed:3 in
  List.iter
    (fun (m, n) ->
      let a = Mat.init ~rows:m ~cols:n (fun _ _ -> Rng.gaussian rng) in
      let u, sigma, v = Factor.svd_jacobi a in
      (* A = U diag(σ) Vᵀ *)
      let us = Mat.copy u in
      for j = 0 to n - 1 do
        for i = 0 to m - 1 do
          Mat.unsafe_set us i j (Mat.unsafe_get us i j *. sigma.(j))
        done
      done;
      let rec_a = Mat.create ~rows:m ~cols:n in
      Blas.gemm_nt ~alpha:1. us v ~beta:0. rec_a;
      Alcotest.(check bool) (Printf.sprintf "USV'=A (%dx%d)" m n) true
        (Mat.rel_diff rec_a ~reference:a < 1e-10);
      (* σ sorted descending, non-negative *)
      for j = 1 to n - 1 do
        Alcotest.(check bool) "sorted" true (sigma.(j) <= sigma.(j - 1) +. 1e-12);
        Alcotest.(check bool) "non-negative" true (sigma.(j) >= 0.)
      done)
    [ (6, 6); (10, 4); (5, 5) ]

let test_svd_known_singular_values () =
  (* diag(3, 2, 1) has exactly those singular values. *)
  let a = Mat.of_arrays [| [| 3.; 0.; 0. |]; [| 0.; 2.; 0. |]; [| 0.; 0.; 1. |] |] in
  let _, sigma, _ = Factor.svd_jacobi a in
  Alcotest.(check (array (float 1e-12))) "singular values" [| 3.; 2.; 1. |] sigma

let test_truncate_rank () =
  let sigma = [| 4.; 2.; 1.; 0.1 |] in
  Alcotest.(check int) "keep all below tiny tol" 4 (Factor.truncate_rank ~tol:1e-6 sigma);
  Alcotest.(check int) "drop tail 0.1" 3 (Factor.truncate_rank ~tol:0.2 sigma);
  Alcotest.(check int) "drop down to 2" 2 (Factor.truncate_rank ~tol:1.2 sigma);
  Alcotest.(check int) "at least one" 1 (Factor.truncate_rank ~tol:100. sigma)

(* --- Lowrank --- *)

let rank_r_matrix rng m n r =
  let u = Mat.init ~rows:m ~cols:r (fun _ _ -> Rng.gaussian rng) in
  let v = Mat.init ~rows:n ~cols:r (fun _ _ -> Rng.gaussian rng) in
  let d = Mat.create ~rows:m ~cols:n in
  Blas.gemm_nt ~alpha:1. u v ~beta:0. d;
  d

let test_aca_exact_rank () =
  let rng = Rng.create ~seed:4 in
  let d = rank_r_matrix rng 20 16 3 in
  match Lowrank.of_dense ~tol:1e-10 d with
  | None -> Alcotest.fail "rank-3 matrix must compress"
  | Some lr ->
    Alcotest.(check int) "recovers exact rank" 3 (Lowrank.rank lr);
    Alcotest.(check bool) "reconstruction" true
      (Mat.rel_diff (Lowrank.to_dense lr) ~reference:d < 1e-10)

let test_aca_tolerance_respected () =
  (* Smooth kernel matrix: numerically low rank. *)
  let d =
    Mat.init ~rows:24 ~cols:24 (fun i j ->
      let h = float_of_int (i - j) /. 24. in
      exp (-2. *. h *. h))
  in
  let tol = 1e-6 in
  match Lowrank.of_dense ~tol d with
  | None -> Alcotest.fail "smooth kernel must compress"
  | Some lr ->
    let err = Mat.diff_frobenius (Lowrank.to_dense lr) d in
    Alcotest.(check bool) (Printf.sprintf "abs error %g ≤ tol" err) true (err <= tol);
    Alcotest.(check bool) "rank below cap" true (Lowrank.rank lr <= 12)

let test_aca_rejects_full_rank () =
  let rng = Rng.create ~seed:6 in
  let d = Mat.init ~rows:16 ~cols:16 (fun _ _ -> Rng.gaussian rng) in
  Alcotest.(check bool) "random dense matrix not compressible" true
    (Lowrank.of_dense ~tol:1e-12 d = None)

let test_recompress_reduces_rank () =
  let rng = Rng.create ~seed:7 in
  let d = rank_r_matrix rng 20 20 3 in
  let lr = Lowrank.of_dense_exn ~tol:1e-12 ~max_rank:20 d in
  (* Inflate the representation: A + A has rank 3 but representation 6. *)
  let doubled = Lowrank.add lr lr in
  Alcotest.(check int) "inflated rep" 6 (Lowrank.rank doubled);
  let rc = Lowrank.recompress ~tol:1e-10 doubled in
  Alcotest.(check int) "recompressed to true rank" 3 (Lowrank.rank rc);
  let expected = Mat.copy d in
  Mat.scale expected 2.;
  Alcotest.(check bool) "values preserved" true
    (Mat.rel_diff (Lowrank.to_dense rc) ~reference:expected < 1e-9)

let test_add_subtract () =
  let rng = Rng.create ~seed:8 in
  let d1 = rank_r_matrix rng 12 10 2 and d2 = rank_r_matrix rng 12 10 2 in
  let l1 = Lowrank.of_dense_exn ~tol:1e-12 ~max_rank:12 d1 in
  let l2 = Lowrank.of_dense_exn ~tol:1e-12 ~max_rank:12 d2 in
  let diff = Lowrank.add ~scale:(-1.) l1 l2 in
  let expected = Mat.copy d1 in
  Mat.add_scaled expected ~alpha:(-1.) d2;
  Alcotest.(check bool) "a - b" true
    (Mat.rel_diff (Lowrank.to_dense diff) ~reference:expected < 1e-10)

let test_matvec () =
  let rng = Rng.create ~seed:9 in
  let d = rank_r_matrix rng 15 11 4 in
  let lr = Lowrank.of_dense_exn ~tol:1e-12 ~max_rank:15 d in
  let x = Array.init 11 (fun i -> sin (float_of_int i)) in
  let y_lr = Lowrank.matvec lr x and y_d = Mat.matvec d x in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-10)) "matvec" y_d.(i) v)
    y_lr;
  let xt = Array.init 15 (fun i -> cos (float_of_int i)) in
  let yt_lr = Lowrank.matvec_trans lr xt and yt_d = Mat.matvec_trans d xt in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-10)) "matvec_trans" yt_d.(i) v)
    yt_lr

let test_memory_floats () =
  let rng = Rng.create ~seed:10 in
  let d = rank_r_matrix rng 30 20 2 in
  let lr = Lowrank.of_dense_exn ~tol:1e-12 ~max_rank:10 d in
  Alcotest.(check int) "(m+n)k" ((30 + 20) * Lowrank.rank lr) (Lowrank.memory_floats lr);
  Alcotest.(check bool) "beats dense" true (Lowrank.memory_floats lr < 30 * 20)

(* --- TLR matrices and Cholesky --- *)

let covariance_problem ~n ~nb =
  let rng = Rng.create ~seed:11 in
  let locs = Locations.morton_sort (Locations.jittered_grid_2d ~rng ~n) in
  (* A smooth field (ν = 1.5): exactly the data-sparse regime TLR targets. *)
  let cov = Covariance.matern ~nugget:1e-4 ~sigma2:1. ~beta:0.1 ~nu:1.5 () in
  (Covariance.build_dense cov locs, Covariance.build_tiled cov locs ~nb)

let test_compress_roundtrip () =
  let dense, tiled = covariance_problem ~n:256 ~nb:64 in
  let tlr = Tlr.compress ~tol:1e-8 tiled in
  Alcotest.(check bool) "some tiles compressed" true (Tlr.low_rank_fraction tlr > 0.3);
  let back = Tlr.to_dense tlr in
  Alcotest.(check bool) "reconstruction within tolerance" true
    (Mat.rel_diff back ~reference:dense < 1e-6)

let test_compression_saves_memory () =
  let _, tiled = covariance_problem ~n:256 ~nb:64 in
  let tight = Tlr.compress ~tol:1e-10 tiled in
  let loose = Tlr.compress ~tol:1e-4 tiled in
  Alcotest.(check bool) "loose compresses harder" true
    (Tlr.compression_ratio loose < Tlr.compression_ratio tight);
  Alcotest.(check bool) "saves memory" true (Tlr.compression_ratio loose < 0.9);
  Alcotest.(check bool) "mean rank positive" true (Tlr.mean_rank loose > 0.)

let test_tlr_cholesky_residual_tracks_tol () =
  let dense, tiled = covariance_problem ~n:256 ~nb:64 in
  let residual tol =
    let tlr = Tlr.compress ~tol tiled in
    Tlr.cholesky tlr;
    let l = Tlr.to_dense tlr in
    Mat.zero_upper l;
    Check.cholesky_residual ~a:dense ~l
  in
  let r_tight = residual 1e-10 and r_loose = residual 1e-4 in
  Alcotest.(check bool) (Printf.sprintf "tight %g < 1e-7" r_tight) true (r_tight < 1e-7);
  Alcotest.(check bool) (Printf.sprintf "loose %g < 1e-2" r_loose) true (r_loose < 1e-2);
  Alcotest.(check bool) "residual ordered by tol" true (r_tight < r_loose)

let test_tlr_solve_and_logdet () =
  let dense, tiled = covariance_problem ~n:256 ~nb:64 in
  let tlr = Tlr.compress ~tol:1e-10 tiled in
  Tlr.cholesky tlr;
  let b = Array.init 256 (fun i -> sin (0.2 *. float_of_int i)) in
  let x = Tlr.solve_lower_trans tlr (Tlr.solve_lower tlr b) in
  Alcotest.(check bool) "solve residual" true
    (Check.solve_residual ~a:dense ~x ~b < 1e-6);
  let lref = Blas.cholesky dense in
  Alcotest.(check bool) "log det" true
    (Float.abs (Tlr.log_det tlr -. Blas.log_det_from_chol lref) < 1e-4)

let test_mixed_precision_tlr () =
  (* The paper's future work: TLR + the adaptive precision map. *)
  let dense, tiled = covariance_problem ~n:256 ~nb:64 in
  let pmap = Pm.of_tiled ~u_req:1e-6 tiled in
  let tlr = Tlr.compress ~precision:pmap ~tol:1e-6 tiled in
  Tlr.cholesky tlr;
  let l = Tlr.to_dense tlr in
  Mat.zero_upper l;
  let r = Check.cholesky_residual ~a:dense ~l in
  Alcotest.(check bool) (Printf.sprintf "mixed TLR residual %g" r) true
    (r > 1e-12 && r < 1e-3)

let test_tlr_not_spd () =
  let d = Mat.init ~rows:64 ~cols:64 (fun i j -> if i = j then -1. else 0.) in
  let tlr = Tlr.compress ~tol:1e-8 (Tiled.of_dense ~nb:16 d) in
  Alcotest.(check bool) "raises" true
    (try
       Tlr.cholesky tlr;
       false
     with Blas.Not_positive_definite _ -> true)

let prop_lowrank_roundtrip =
  QCheck.Test.make ~name:"ACA roundtrip on random low-rank matrices" ~count:40
    QCheck.(triple (int_range 4 20) (int_range 4 20) (int_range 1 3))
    (fun (m, n, r) ->
      QCheck.assume (r < min m n / 2);
      let rng = Rng.create ~seed:(m + (n * 31) + (r * 997)) in
      let d = rank_r_matrix rng m n r in
      match Lowrank.of_dense ~tol:1e-9 d with
      | None -> false
      | Some lr ->
        Lowrank.rank lr <= r && Mat.rel_diff (Lowrank.to_dense lr) ~reference:d < 1e-7)

let () =
  Alcotest.run "tlr"
    [
      ( "factor",
        [
          Alcotest.test_case "qr reconstructs" `Quick test_qr_reconstructs;
          Alcotest.test_case "qr upper triangular" `Quick test_qr_r_upper_triangular;
          Alcotest.test_case "svd reconstructs" `Quick test_svd_reconstructs;
          Alcotest.test_case "svd known values" `Quick test_svd_known_singular_values;
          Alcotest.test_case "truncate rank" `Quick test_truncate_rank;
        ] );
      ( "lowrank",
        [
          Alcotest.test_case "aca exact rank" `Quick test_aca_exact_rank;
          Alcotest.test_case "aca tolerance" `Quick test_aca_tolerance_respected;
          Alcotest.test_case "aca rejects full rank" `Quick test_aca_rejects_full_rank;
          Alcotest.test_case "recompress" `Quick test_recompress_reduces_rank;
          Alcotest.test_case "add/subtract" `Quick test_add_subtract;
          Alcotest.test_case "matvec" `Quick test_matvec;
          Alcotest.test_case "memory accounting" `Quick test_memory_floats;
          QCheck_alcotest.to_alcotest prop_lowrank_roundtrip;
        ] );
      ( "tlr cholesky",
        [
          Alcotest.test_case "compress roundtrip" `Quick test_compress_roundtrip;
          Alcotest.test_case "memory savings" `Quick test_compression_saves_memory;
          Alcotest.test_case "residual tracks tol" `Quick test_tlr_cholesky_residual_tracks_tol;
          Alcotest.test_case "solve & logdet" `Quick test_tlr_solve_and_logdet;
          Alcotest.test_case "mixed-precision TLR" `Quick test_mixed_precision_tlr;
          Alcotest.test_case "not SPD" `Quick test_tlr_not_spd;
        ] );
    ]
