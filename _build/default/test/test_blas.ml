module Mat = Geomix_linalg.Mat
module Blas = Geomix_linalg.Blas
module Check = Geomix_linalg.Check
module Rng = Geomix_util.Rng

let test_gemm_nt_small () =
  (* C = A·Bᵀ with A=[[1,2],[3,4]], B=[[5,6],[7,8]] ⇒ [[17,23],[39,53]]. *)
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Mat.create ~rows:2 ~cols:2 in
  Blas.gemm_nt ~alpha:1. a b ~beta:0. c;
  Alcotest.(check (array (array (float 1e-12)))) "A·Bᵀ"
    [| [| 17.; 23. |]; [| 39.; 53. |] |]
    (Mat.to_arrays c)

let test_gemm_alpha_beta () =
  let a = Mat.identity 2 and b = Mat.identity 2 in
  let c = Mat.of_arrays [| [| 1.; 1. |]; [| 1.; 1. |] |] in
  Blas.gemm_nt ~alpha:2. a b ~beta:3. c;
  Alcotest.(check (float 1e-12)) "diag" 5. (Mat.get c 0 0);
  Alcotest.(check (float 1e-12)) "off" 3. (Mat.get c 0 1)

let test_gemm_trans_variants () =
  let rng = Rng.create ~seed:5 in
  let a = Mat.init ~rows:4 ~cols:3 (fun _ _ -> Rng.gaussian rng) in
  let b = Mat.init ~rows:3 ~cols:5 (fun _ _ -> Rng.gaussian rng) in
  (* A·B via gemm, vs (via transposes) opᵀ paths. *)
  let c1 = Mat.create ~rows:4 ~cols:5 in
  Blas.gemm ~alpha:1. a b ~beta:0. c1;
  let c2 = Mat.create ~rows:4 ~cols:5 in
  Blas.gemm ~transa:true ~alpha:1. (Mat.transpose a) b ~beta:0. c2;
  Alcotest.(check (float 1e-12)) "transa path" 0. (Mat.rel_diff c2 ~reference:c1);
  let c3 = Mat.create ~rows:4 ~cols:5 in
  Blas.gemm ~transb:true ~alpha:1. a (Mat.transpose b) ~beta:0. c3;
  Alcotest.(check (float 1e-12)) "transb path" 0. (Mat.rel_diff c3 ~reference:c1)

let test_gemm_nt_consistent_with_gemm () =
  let rng = Rng.create ~seed:9 in
  let a = Mat.init ~rows:6 ~cols:4 (fun _ _ -> Rng.gaussian rng) in
  let b = Mat.init ~rows:5 ~cols:4 (fun _ _ -> Rng.gaussian rng) in
  let c1 = Mat.create ~rows:6 ~cols:5 in
  Blas.gemm_nt ~alpha:1. a b ~beta:0. c1;
  let c2 = Mat.create ~rows:6 ~cols:5 in
  Blas.gemm ~transb:true ~alpha:1. a b ~beta:0. c2;
  Alcotest.(check (float 1e-12)) "agree" 0. (Mat.rel_diff c1 ~reference:c2)

let test_syrk_lower () =
  let rng = Rng.create ~seed:11 in
  let a = Mat.init ~rows:5 ~cols:3 (fun _ _ -> Rng.gaussian rng) in
  let c = Mat.create ~rows:5 ~cols:5 in
  Blas.syrk_lower ~alpha:1. a ~beta:0. c;
  let full = Mat.create ~rows:5 ~cols:5 in
  Blas.gemm_nt ~alpha:1. a a ~beta:0. full;
  for j = 0 to 4 do
    for i = j to 4 do
      Alcotest.(check (float 1e-12)) "lower matches AAᵀ" (Mat.get full i j) (Mat.get c i j)
    done;
    for i = 0 to j - 1 do
      Alcotest.(check (float 0.)) "upper untouched" 0. (Mat.get c i j)
    done
  done

let test_potrf_identity () =
  let a = Mat.identity 4 in
  Blas.potrf_lower a;
  Alcotest.(check (float 1e-12)) "L = I" 0. (Mat.rel_diff a ~reference:(Mat.identity 4))

let test_potrf_known () =
  (* [[4,2],[2,5]] = [[2,0],[1,2]]·[[2,1],[0,2]]. *)
  let a = Mat.of_arrays [| [| 4.; 2. |]; [| 2.; 5. |] |] in
  Blas.potrf_lower a;
  Alcotest.(check (float 1e-12)) "L00" 2. (Mat.get a 0 0);
  Alcotest.(check (float 1e-12)) "L10" 1. (Mat.get a 1 0);
  Alcotest.(check (float 1e-12)) "L11" 2. (Mat.get a 1 1)

let test_potrf_residual_random () =
  let rng = Rng.create ~seed:13 in
  List.iter
    (fun n ->
      let a = Check.spd_random ~rng ~n in
      let l = Blas.cholesky a in
      Alcotest.(check bool)
        (Printf.sprintf "residual n=%d" n)
        true
        (Check.cholesky_residual ~a ~l < 1e-13))
    [ 1; 2; 5; 17; 64 ]

let test_potrf_rejects_indefinite () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  (* eigenvalues 3, −1 *)
  Alcotest.check_raises "not SPD" (Blas.Not_positive_definite 1) (fun () ->
    Blas.potrf_lower a)

let test_trsm () =
  let rng = Rng.create ~seed:17 in
  let spd = Check.spd_random ~rng ~n:6 in
  let l = Blas.cholesky spd in
  let x_true = Mat.init ~rows:4 ~cols:6 (fun _ _ -> Rng.gaussian rng) in
  (* B = X·Lᵀ, then solve back. *)
  let b = Mat.create ~rows:4 ~cols:6 in
  Blas.gemm ~transb:true ~alpha:1. x_true l ~beta:0. b;
  Blas.trsm_right_lower_trans ~l b;
  Alcotest.(check bool) "recovered X" true (Mat.rel_diff b ~reference:x_true < 1e-12)

let test_trsm_left_lower () =
  let rng = Rng.create ~seed:18 in
  let spd = Check.spd_random ~rng ~n:7 in
  let l = Blas.cholesky spd in
  let x_true = Mat.init ~rows:7 ~cols:4 (fun _ _ -> Rng.gaussian rng) in
  (* B = L·X, solve back in place. *)
  let b = Mat.create ~rows:7 ~cols:4 in
  Blas.gemm ~alpha:1. l x_true ~beta:0. b;
  Blas.trsm_left_lower_notrans ~l b;
  Alcotest.(check bool) "recovered X" true (Mat.rel_diff b ~reference:x_true < 1e-12)

let test_trsm_left_right_consistent () =
  (* Solving X·Lᵀ = B row-wise equals solving L·Xᵀ = Bᵀ column-wise. *)
  let rng = Rng.create ~seed:21 in
  let spd = Check.spd_random ~rng ~n:6 in
  let l = Blas.cholesky spd in
  let b = Mat.init ~rows:5 ~cols:6 (fun _ _ -> Rng.gaussian rng) in
  let right = Mat.copy b in
  Blas.trsm_right_lower_trans ~l right;
  let left = Mat.transpose b in
  Blas.trsm_left_lower_notrans ~l left;
  Alcotest.(check (float 1e-12)) "consistent" 0.
    (Mat.rel_diff (Mat.transpose left) ~reference:right)

let test_trsv_roundtrip () =
  let rng = Rng.create ~seed:19 in
  let a = Check.spd_random ~rng ~n:12 in
  let l = Blas.cholesky a in
  let b = Array.init 12 (fun i -> cos (float_of_int i)) in
  let y = Blas.trsv_lower ~l b in
  let x = Blas.trsv_lower_trans ~l y in
  Alcotest.(check bool) "A·x = b" true (Check.solve_residual ~a ~x ~b < 1e-12)

let test_log_det () =
  let a = Mat.of_arrays [| [| 4.; 0. |]; [| 0.; 9. |] |] in
  let l = Blas.cholesky a in
  Alcotest.(check (float 1e-12)) "log det" (log 36.) (Blas.log_det_from_chol l)

let prop_cholesky_roundtrip =
  QCheck.Test.make ~name:"L·Lᵀ reconstructs SPD input" ~count:60 (QCheck.int_range 1 40)
    (fun n ->
      let rng = Rng.create ~seed:(n * 7) in
      let a = Check.spd_random ~rng ~n in
      let l = Blas.cholesky a in
      Check.cholesky_residual ~a ~l < 1e-12)

let prop_gemm_linearity =
  QCheck.Test.make ~name:"gemm linear in alpha" ~count:60
    QCheck.(pair (int_range 1 12) (float_range (-3.) 3.))
    (fun (n, alpha) ->
      let rng = Rng.create ~seed:n in
      let a = Mat.init ~rows:n ~cols:n (fun _ _ -> Rng.gaussian rng) in
      let b = Mat.init ~rows:n ~cols:n (fun _ _ -> Rng.gaussian rng) in
      let c1 = Mat.create ~rows:n ~cols:n in
      Blas.gemm_nt ~alpha a b ~beta:0. c1;
      let c2 = Mat.create ~rows:n ~cols:n in
      Blas.gemm_nt ~alpha:1. a b ~beta:0. c2;
      Mat.scale c2 alpha;
      Mat.rel_diff c1 ~reference:c2 < 1e-12 || Mat.frobenius c2 = 0.)

let () =
  Alcotest.run "blas"
    [
      ( "kernels",
        [
          Alcotest.test_case "gemm_nt small" `Quick test_gemm_nt_small;
          Alcotest.test_case "alpha/beta" `Quick test_gemm_alpha_beta;
          Alcotest.test_case "gemm trans variants" `Quick test_gemm_trans_variants;
          Alcotest.test_case "gemm_nt = gemm transb" `Quick test_gemm_nt_consistent_with_gemm;
          Alcotest.test_case "syrk lower" `Quick test_syrk_lower;
          Alcotest.test_case "potrf identity" `Quick test_potrf_identity;
          Alcotest.test_case "potrf known 2x2" `Quick test_potrf_known;
          Alcotest.test_case "potrf residual" `Quick test_potrf_residual_random;
          Alcotest.test_case "potrf rejects indefinite" `Quick test_potrf_rejects_indefinite;
          Alcotest.test_case "trsm right lower trans" `Quick test_trsm;
          Alcotest.test_case "trsm left lower" `Quick test_trsm_left_lower;
          Alcotest.test_case "trsm left/right consistent" `Quick test_trsm_left_right_consistent;
          Alcotest.test_case "trsv roundtrip" `Quick test_trsv_roundtrip;
          Alcotest.test_case "log det" `Quick test_log_det;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_cholesky_roundtrip; prop_gemm_linearity ] );
    ]
