module Pm = Geomix_core.Precision_map
module Sim = Geomix_core.Sim_cholesky
module Machine = Geomix_gpusim.Machine
module Gpu = Geomix_gpusim.Gpu_specs
module Exec_model = Geomix_gpusim.Exec_model
module Task = Geomix_runtime.Task
module Trace = Geomix_runtime.Trace
module Flops = Geomix_precision.Flops
module Fp = Geomix_precision.Fpformat

let nb = 2048

let run ?(strategy = Sim.Stc_auto) ?(machine = Machine.single_gpu Gpu.V100)
    ?(collect_trace = false) pmap =
  Sim.run
    ~options:{ Sim.default_options with strategy; collect_trace }
    ~machine ~pmap ~nb ()

let test_flops_accounting () =
  let r = run (Pm.uniform ~nt:8 Fp.Fp64) in
  Alcotest.(check (float 1.)) "algorithmic flops" (Flops.cholesky_tiled ~nt:8 ~nb) r.Sim.total_flops;
  Alcotest.(check bool) "positive time" true (r.Sim.makespan > 0.)

let test_makespan_bounds () =
  (* Makespan ≥ total work / aggregate peak, and ≥ the critical path of
     POTRF tasks. *)
  let machine = Machine.summit () in
  let ntiles = 12 in
  let r = Sim.run ~machine ~pmap:(Pm.uniform ~nt:ntiles Fp.Fp64) ~nb () in
  let peak = Gpu.peak_flops Gpu.v100 Fp.Fp64 in
  let work_bound = r.Sim.total_flops /. (peak *. float_of_int r.Sim.ngpus) in
  Alcotest.(check bool) "≥ work bound" true (r.Sim.makespan >= work_bound);
  let cp =
    float_of_int ntiles *. Exec_model.kernel_time Gpu.v100 (Task.Potrf 0) ~prec:Fp.Fp64 ~nb
  in
  Alcotest.(check bool) "≥ potrf chain" true (r.Sim.makespan >= cp)

let test_fp64_efficiency_band () =
  (* Section VII-D: 84.2% of FP64 peak on one V100 (at memory-limit size). *)
  let r = run (Pm.uniform ~nt:30 Fp.Fp64) in
  let e = Sim.efficiency r ~peak_flops_per_gpu:(Gpu.peak_flops Gpu.v100 Fp.Fp64) in
  Alcotest.(check bool) (Printf.sprintf "efficiency %.3f in [0.78, 0.92]" e) true
    (e > 0.78 && e < 0.92)

let test_precision_ordering () =
  (* FP64 slower than FP32 slower than FP64/FP16 (Fig 8). *)
  let t pmap = (run pmap).Sim.makespan in
  let t64 = t (Pm.uniform ~nt:16 Fp.Fp64) in
  let t32 = t (Pm.uniform ~nt:16 Fp.Fp32) in
  let t16 = t (Pm.two_level ~nt:16 ~off_diag:Fp.Fp16) in
  Alcotest.(check bool) "64 > 32" true (t64 > t32);
  Alcotest.(check bool) "32 > mixed16" true (t32 > t16)

let test_stc_beats_ttc () =
  let pmap = Pm.two_level ~nt:20 ~off_diag:Fp.Fp16 in
  let stc = run ~strategy:Sim.Stc_auto pmap in
  let ttc = run ~strategy:Sim.Ttc_always pmap in
  let speedup = ttc.Sim.makespan /. stc.Sim.makespan in
  Alcotest.(check bool) (Printf.sprintf "speedup %.2f in [1.05, 1.6]" speedup) true
    (speedup > 1.05 && speedup < 1.6)

let test_stc_reduces_conversions () =
  let pmap = Pm.two_level ~nt:16 ~off_diag:Fp.Fp16_32 in
  let stc = run ~strategy:Sim.Stc_auto pmap in
  let ttc = run ~strategy:Sim.Ttc_always pmap in
  Alcotest.(check bool)
    (Printf.sprintf "conversions %d < %d" stc.Sim.conversions ttc.Sim.conversions)
    true
    (stc.Sim.conversions < ttc.Sim.conversions)

let test_memory_pressure_creates_traffic () =
  (* nt=20 FP64 fits the V100 (6.7 GB); nt=40 (27 GB) must thrash. *)
  let small = run (Pm.uniform ~nt:20 Fp.Fp64) in
  let big = run (Pm.uniform ~nt:40 Fp.Fp64) in
  Alcotest.(check (float 0.)) "no traffic when resident" 0. small.Sim.bytes_h2d;
  Alcotest.(check bool) "thrashing traffic" true (big.Sim.bytes_h2d > 100e9)

let test_stc_reduces_bytes_under_pressure () =
  (* LRU dynamics differ slightly between the strategies (STC inserts
     smaller received copies), so allow a small tolerance on the comparison
     while still requiring STC not to move meaningfully more data. *)
  let pmap = Pm.two_level ~nt:46 ~off_diag:Fp.Fp16 in
  let stc = run ~strategy:Sim.Stc_auto pmap in
  let ttc = run ~strategy:Sim.Ttc_always pmap in
  Alcotest.(check bool)
    (Printf.sprintf "bytes %.1f ≤ 1.05·%.1f GB" (stc.Sim.bytes_h2d /. 1e9)
       (ttc.Sim.bytes_h2d /. 1e9))
    true
    (stc.Sim.bytes_h2d <= 1.05 *. ttc.Sim.bytes_h2d)

let test_multi_gpu_speedup () =
  let pmap = Pm.uniform ~nt:24 Fp.Fp64 in
  let one = Sim.run ~machine:(Machine.single_gpu Gpu.V100) ~pmap ~nb () in
  let node = Sim.run ~machine:(Machine.summit ()) ~pmap ~nb () in
  let speedup = one.Sim.makespan /. node.Sim.makespan in
  Alcotest.(check int) "six gpus" 6 node.Sim.ngpus;
  Alcotest.(check bool) (Printf.sprintf "speedup %.2f > 3.5" speedup) true (speedup > 3.5);
  Alcotest.(check bool) "≤ linear" true (speedup <= 6.01)

let test_multi_node_nic_traffic () =
  let pmap = Pm.uniform ~nt:32 Fp.Fp64 in
  let r = Sim.run ~machine:(Machine.summit ~nodes:4 ()) ~pmap ~nb () in
  Alcotest.(check bool) "internode traffic exists" true (r.Sim.bytes_nic > 0.);
  Alcotest.(check bool) "d2d traffic exists" true (r.Sim.bytes_d2d > 0.)

let test_trace_collection () =
  let ntiles = 6 in
  let r = run ~collect_trace:true (Pm.uniform ~nt:ntiles Fp.Fp64) in
  match r.Sim.trace with
  | None -> Alcotest.fail "trace missing"
  | Some tr ->
    let events = Trace.events tr in
    let expected = ntiles + (ntiles * (ntiles - 1)) + (ntiles * (ntiles - 1) * (ntiles - 2) / 6) in
    Alcotest.(check int) "one event per task" expected (List.length events);
    Alcotest.(check (float 1e-9)) "trace makespan agrees" r.Sim.makespan (Trace.makespan tr)

let test_energy_sanity () =
  let r64 = run (Pm.uniform ~nt:20 Fp.Fp64) in
  let r16 = run (Pm.two_level ~nt:20 ~off_diag:Fp.Fp16) in
  Alcotest.(check bool) "MP uses less energy" true
    (r16.Sim.energy.energy_joules < r64.Sim.energy.energy_joules);
  Alcotest.(check bool) "MP better gflops/W" true
    (r16.Sim.energy.gflops_per_watt > r64.Sim.energy.gflops_per_watt);
  Alcotest.(check bool) "avg power ≤ ngpus·TDP" true
    (r64.Sim.energy.avg_power <= float_of_int r64.Sim.ngpus *. Gpu.v100.Gpu.tdp)

let test_utilisation_bounds () =
  let r = run (Pm.uniform ~nt:16 Fp.Fp64) in
  Alcotest.(check bool) "util in (0,1]" true (r.Sim.utilisation > 0. && r.Sim.utilisation <= 1.0001)

let test_single_tile () =
  (* nt = 1 degenerate case: one POTRF, no communication. *)
  let r = run (Pm.uniform ~nt:1 Fp.Fp64) in
  Alcotest.(check bool) "positive makespan" true (r.Sim.makespan > 0.);
  Alcotest.(check (float 0.)) "no traffic" 0.
    (r.Sim.bytes_h2d +. r.Sim.bytes_d2d +. r.Sim.bytes_nic);
  Alcotest.(check int) "no conversions" 0 r.Sim.conversions

let test_guyot_machine () =
  let r = Sim.run ~machine:(Machine.guyot ()) ~pmap:(Pm.uniform ~nt:16 Fp.Fp64) ~nb () in
  Alcotest.(check int) "8 GPUs" 8 r.Sim.ngpus;
  Alcotest.(check bool) "runs" true (r.Sim.makespan > 0. && r.Sim.tflops > 0.)

let test_deterministic () =
  let pmap = Pm.two_level ~nt:12 ~off_diag:Fp.Fp16 in
  let a = run pmap and b = run pmap in
  Alcotest.(check (float 0.)) "same makespan" a.Sim.makespan b.Sim.makespan;
  Alcotest.(check (float 0.)) "same bytes" a.Sim.bytes_h2d b.Sim.bytes_h2d

let prop_makespan_at_least_work_bound =
  QCheck.Test.make ~name:"makespan ≥ work/aggregate-sustained-peak" ~count:15
    QCheck.(pair (int_range 2 14) (oneofl [ Gpu.V100; Gpu.A100; Gpu.H100 ]))
    (fun (ntiles, gen) ->
      let machine = Machine.single_gpu gen in
      let r = Sim.run ~machine ~pmap:(Pm.uniform ~nt:ntiles Fp.Fp64) ~nb () in
      let gpu = Gpu.of_generation gen in
      r.Sim.makespan >= r.Sim.total_flops /. Gpu.peak_flops gpu Fp.Fp64)

let () =
  Alcotest.run "sim_cholesky"
    [
      ( "simulator",
        [
          Alcotest.test_case "flops accounting" `Quick test_flops_accounting;
          Alcotest.test_case "makespan bounds" `Quick test_makespan_bounds;
          Alcotest.test_case "fp64 efficiency band" `Quick test_fp64_efficiency_band;
          Alcotest.test_case "precision ordering" `Quick test_precision_ordering;
          Alcotest.test_case "STC beats TTC" `Quick test_stc_beats_ttc;
          Alcotest.test_case "STC fewer conversions" `Quick test_stc_reduces_conversions;
          Alcotest.test_case "memory pressure traffic" `Quick test_memory_pressure_creates_traffic;
          Alcotest.test_case "STC bytes ≤ TTC bytes" `Quick test_stc_reduces_bytes_under_pressure;
          Alcotest.test_case "multi-gpu speedup" `Quick test_multi_gpu_speedup;
          Alcotest.test_case "multi-node traffic" `Quick test_multi_node_nic_traffic;
          Alcotest.test_case "trace collection" `Quick test_trace_collection;
          Alcotest.test_case "energy sanity" `Quick test_energy_sanity;
          Alcotest.test_case "utilisation bounds" `Quick test_utilisation_bounds;
          Alcotest.test_case "single tile" `Quick test_single_tile;
          Alcotest.test_case "guyot machine" `Quick test_guyot_machine;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          QCheck_alcotest.to_alcotest prop_makespan_at_least_work_bound;
        ] );
    ]
