module Stats = Geomix_util.Stats

let feq ?(eps = 1e-12) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs b)

let check_f name expected actual =
  Alcotest.(check bool) (Printf.sprintf "%s: %g vs %g" name expected actual) true
    (feq expected actual)

let test_mean () = check_f "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |])

let test_variance () =
  check_f "variance" 3.7 (Stats.variance [| 1.; 2.; 3.; 4.; 6. |]);
  check_f "singleton variance" 0. (Stats.variance [| 5. |])

let test_std () = check_f "std" (sqrt 2.) (Stats.std [| 1.; 3. |])

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.; -1.; 7.; 2. |] in
  check_f "min" (-1.) lo;
  check_f "max" 7. hi

let test_median_odd () = check_f "median odd" 3. (Stats.median [| 5.; 1.; 3. |])
let test_median_even () = check_f "median even" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |])

let test_quantile_endpoints () =
  let xs = [| 10.; 20.; 30. |] in
  check_f "q0" 10. (Stats.quantile xs 0.);
  check_f "q1" 30. (Stats.quantile xs 1.)

let test_quantile_interpolation () =
  (* Type-7: q(0.25) of [1..5] = 2. *)
  check_f "q0.25" 2. (Stats.quantile [| 1.; 2.; 3.; 4.; 5. |] 0.25);
  check_f "q0.1 of pair" 1.1 (Stats.quantile [| 1.; 2. |] 0.1)

let test_quantile_does_not_mutate () =
  let xs = [| 3.; 1.; 2. |] in
  ignore (Stats.quantile xs 0.5);
  Alcotest.(check (array (float 0.))) "unchanged" [| 3.; 1.; 2. |] xs

let test_five_number () =
  let f = Stats.five_number [| 1.; 2.; 3.; 4.; 5. |] in
  check_f "low" 1. f.Stats.low;
  check_f "q1" 2. f.Stats.q1;
  check_f "med" 3. f.Stats.med;
  check_f "q3" 4. f.Stats.q3;
  check_f "high" 5. f.Stats.high

let test_rmse () =
  check_f "rmse" 1. (Stats.rmse ~actual:[| 2.; 0. |] ~reference:1.);
  check_f "rmse zero" 0. (Stats.rmse ~actual:[| 1.; 1. |] ~reference:1.)

let test_mean_abs_dev () =
  check_f "mad" 1. (Stats.mean_abs_dev ~actual:[| 2.; 0. |] ~reference:1.)

let test_histogram () =
  let h = Stats.histogram ~bins:2 [| 0.; 0.1; 0.9; 1. |] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  Alcotest.(check int) "counts total" 4 (c0 + c1);
  Alcotest.(check int) "low bin" 2 c0

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 30) (float_range (-100.) 100.)) (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (xs, (p1, p2)) ->
      let xs = Array.of_list xs in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.quantile xs lo <= Stats.quantile xs hi +. 1e-9)

let prop_mean_bounds =
  QCheck.Test.make ~name:"mean within min/max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let xs = Array.of_list xs in
      let lo, hi = Stats.min_max xs in
      let m = Stats.mean xs in
      m >= lo -. 1e-6 && m <= hi +. 1e-6)

let prop_variance_nonneg =
  QCheck.Test.make ~name:"variance non-negative" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1e3) 1e3))
    (fun xs -> Stats.variance (Array.of_list xs) >= 0.)

let () =
  Alcotest.run "stats"
    [
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "std" `Quick test_std;
          Alcotest.test_case "min_max" `Quick test_min_max;
          Alcotest.test_case "median odd" `Quick test_median_odd;
          Alcotest.test_case "median even" `Quick test_median_even;
          Alcotest.test_case "quantile endpoints" `Quick test_quantile_endpoints;
          Alcotest.test_case "quantile interpolation" `Quick test_quantile_interpolation;
          Alcotest.test_case "quantile pure" `Quick test_quantile_does_not_mutate;
          Alcotest.test_case "five number summary" `Quick test_five_number;
          Alcotest.test_case "rmse" `Quick test_rmse;
          Alcotest.test_case "mean abs dev" `Quick test_mean_abs_dev;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_quantile_monotone; prop_mean_bounds; prop_variance_nonneg ] );
    ]
