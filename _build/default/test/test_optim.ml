module Nm = Geomix_optim.Nelder_mead
module Bl = Geomix_optim.Bobyqa_lite

let sphere x = Array.fold_left (fun acc v -> acc +. (v *. v)) 0. x

let rosenbrock x =
  let a = 1. -. x.(0) and b = x.(1) -. (x.(0) *. x.(0)) in
  (a *. a) +. (100. *. b *. b)

let shifted_quadratic c x =
  let acc = ref 0. in
  Array.iteri
    (fun i v ->
      let d = v -. c.(i) in
      acc := !acc +. ((float_of_int (i + 1)) *. d *. d))
    x;
  !acc

let near x y tol = Float.abs (x -. y) < tol

let check_solution name xs expected tol =
  Array.iteri
    (fun i x ->
      Alcotest.(check bool)
        (Printf.sprintf "%s x[%d]=%g ≈ %g" name i x expected.(i))
        true (near x expected.(i) tol))
    xs

let test_nm_sphere () =
  let r =
    Nm.minimize ~lower:[| -5.; -5.; -5. |] ~upper:[| 5.; 5.; 5. |] ~x0:[| 3.; -2.; 1. |] sphere
  in
  check_solution "sphere" r.Nm.x [| 0.; 0.; 0. |] 1e-4;
  Alcotest.(check bool) "fval small" true (r.Nm.fval < 1e-7)

let test_nm_rosenbrock () =
  let r =
    Nm.minimize ~max_evals:5000 ~lower:[| -2.; -2. |] ~upper:[| 2.; 2. |] ~x0:[| -1.; 1. |]
      rosenbrock
  in
  check_solution "rosenbrock" r.Nm.x [| 1.; 1. |] 1e-3

let test_nm_respects_bounds () =
  (* Unconstrained optimum at (−3, −3) lies outside the box: the solution
     must sit on the boundary. *)
  let r =
    Nm.minimize ~lower:[| -1.; -1. |] ~upper:[| 1.; 1. |] ~x0:[| 0.5; 0.5 |]
      (shifted_quadratic [| -3.; -3. |])
  in
  Array.iter
    (fun v -> Alcotest.(check bool) "inside box" true (v >= -1. && v <= 1.))
    r.Nm.x;
  check_solution "boundary" r.Nm.x [| -1.; -1. |] 1e-4

let test_nm_x0_clipped () =
  let r =
    Nm.minimize ~lower:[| 0. |] ~upper:[| 1. |] ~x0:[| 50. |] (fun x -> (x.(0) -. 0.3) ** 2.)
  in
  check_solution "clipped start" r.Nm.x [| 0.3 |] 1e-5

let test_nm_eval_budget () =
  let count = ref 0 in
  let f x =
    incr count;
    sphere x
  in
  let r = Nm.minimize ~max_evals:30 ~lower:[| -5.; -5. |] ~upper:[| 5.; 5. |] ~x0:[| 4.; 4. |] f in
  Alcotest.(check bool) "budget respected" true (!count <= 33);
  Alcotest.(check int) "reported evals" !count r.Nm.evals

let test_nm_1d () =
  let r = Nm.minimize ~lower:[| 0.01 |] ~upper:[| 2. |] ~x0:[| 0.01 |] (fun x -> -.log x.(0) +. x.(0)) in
  check_solution "1d" r.Nm.x [| 1. |] 1e-5

let test_bl_sphere () =
  let r =
    Bl.minimize ~lower:[| -5.; -5.; -5. |] ~upper:[| 5.; 5.; 5. |] ~x0:[| 3.; -2.; 1. |] sphere
  in
  check_solution "bl sphere" r.Bl.x [| 0.; 0.; 0. |] 1e-5

let test_bl_shifted () =
  let r =
    Bl.minimize ~lower:[| -4.; -4. |] ~upper:[| 4.; 4. |] ~x0:[| 0.; 0. |]
      (shifted_quadratic [| 1.5; -2.5 |])
  in
  check_solution "bl shifted" r.Bl.x [| 1.5; -2.5 |] 1e-4

let test_bl_respects_bounds () =
  let r =
    Bl.minimize ~lower:[| 0.; 0. |] ~upper:[| 1.; 1. |] ~x0:[| 0.5; 0.5 |]
      (shifted_quadratic [| 2.; 2. |])
  in
  Array.iter (fun v -> Alcotest.(check bool) "inside box" true (v >= 0. && v <= 1.)) r.Bl.x;
  check_solution "bl boundary" r.Bl.x [| 1.; 1. |] 1e-3

let test_bl_budget () =
  let count = ref 0 in
  let f x =
    incr count;
    sphere x
  in
  let r = Bl.minimize ~max_evals:25 ~lower:[| -5.; -5. |] ~upper:[| 5.; 5. |] ~x0:[| 4.; 4. |] f in
  Alcotest.(check bool) "budget respected" true (r.Bl.evals <= 25)

let prop_nm_never_leaves_box =
  QCheck.Test.make ~name:"NM solution within the box" ~count:50
    QCheck.(triple (float_range (-3.) 0.) (float_range 0.5 3.) (float_range (-5.) 5.))
    (fun (lo, w, c) ->
      let hi = lo +. w in
      let r =
        Nm.minimize ~max_evals:200 ~lower:[| lo |] ~upper:[| hi |] ~x0:[| lo |]
          (fun x -> (x.(0) -. c) ** 2.)
      in
      r.Nm.x.(0) >= lo -. 1e-12 && r.Nm.x.(0) <= hi +. 1e-12)

let prop_nm_improves_on_start =
  QCheck.Test.make ~name:"NM never worse than start" ~count:50
    QCheck.(pair (float_range (-4.) 4.) (float_range (-4.) 4.))
    (fun (a, b) ->
      let x0 = [| a; b |] in
      let r = Nm.minimize ~max_evals:150 ~lower:[| -5.; -5. |] ~upper:[| 5.; 5. |] ~x0 rosenbrock in
      r.Nm.fval <= rosenbrock x0 +. 1e-12)

let () =
  Alcotest.run "optim"
    [
      ( "nelder-mead",
        [
          Alcotest.test_case "sphere" `Quick test_nm_sphere;
          Alcotest.test_case "rosenbrock" `Quick test_nm_rosenbrock;
          Alcotest.test_case "bounds" `Quick test_nm_respects_bounds;
          Alcotest.test_case "x0 clipped" `Quick test_nm_x0_clipped;
          Alcotest.test_case "eval budget" `Quick test_nm_eval_budget;
          Alcotest.test_case "1d" `Quick test_nm_1d;
        ] );
      ( "bobyqa-lite",
        [
          Alcotest.test_case "sphere" `Quick test_bl_sphere;
          Alcotest.test_case "shifted quadratic" `Quick test_bl_shifted;
          Alcotest.test_case "bounds" `Quick test_bl_respects_bounds;
          Alcotest.test_case "budget" `Quick test_bl_budget;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_nm_never_leaves_box; prop_nm_improves_on_start ] );
    ]
