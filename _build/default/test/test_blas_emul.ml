module Mat = Geomix_linalg.Mat
module Blas = Geomix_linalg.Blas
module Emul = Geomix_linalg.Blas_emul
module Check = Geomix_linalg.Check
module Fp = Geomix_precision.Fpformat
module Rng = Geomix_util.Rng

let random_pair rng n =
  let a = Mat.init ~rows:n ~cols:n (fun _ _ -> Rng.float rng) in
  let b = Mat.init ~rows:n ~cols:n (fun _ _ -> Rng.float rng) in
  (a, b)

let gemm_err ~fidelity prec n seed =
  let rng = Rng.create ~seed in
  let a, b = random_pair rng n in
  let c_ref = Mat.create ~rows:n ~cols:n in
  Blas.gemm_nt ~alpha:1. a b ~beta:0. c_ref;
  let c = Mat.create ~rows:n ~cols:n in
  Emul.gemm_nt ~fidelity ~prec ~alpha:1. a b ~beta:0. c;
  Mat.rel_diff c ~reference:c_ref

let test_fp64_exact () =
  List.iter
    (fun fidelity ->
      Alcotest.(check (float 0.)) "fp64 emulation is exact" 0.
        (gemm_err ~fidelity Fp.Fp64 32 1))
    [ Emul.Per_op; Emul.Boundary ]

let test_error_bands_per_op () =
  (* The Fig 1 accuracy ordering: FP32 ≪ TF32 ≈ FP16_32 < BF16_32 < FP16. *)
  let e prec = gemm_err ~fidelity:Emul.Per_op prec 96 2 in
  let e32 = e Fp.Fp32
  and etf = e Fp.Tf32
  and eh32 = e Fp.Fp16_32
  and eb = e Fp.Bf16_32
  and eh = e Fp.Fp16 in
  Alcotest.(check bool) (Printf.sprintf "fp32 band (%g)" e32) true (e32 > 1e-9 && e32 < 1e-5);
  Alcotest.(check bool) "tf32 ≈ fp16_32" true (etf /. eh32 < 10. && eh32 /. etf < 10.);
  Alcotest.(check bool) "bf16_32 worse than fp16_32" true (eb > eh32);
  Alcotest.(check bool) (Printf.sprintf "fp16 band (%g)" eh) true (eh > 1e-5 && eh < 1e-1);
  Alcotest.(check bool) "fp16 worst" true (eh > eb)

let test_boundary_captures_input_quantisation () =
  (* Boundary fidelity must agree with Per_op within a small factor: the
     dominant error is operand rounding, which both model. *)
  let ep = gemm_err ~fidelity:Emul.Per_op Fp.Fp16 64 3 in
  let eb = gemm_err ~fidelity:Emul.Boundary Fp.Fp16 64 3 in
  Alcotest.(check bool)
    (Printf.sprintf "same order of magnitude (%g vs %g)" ep eb)
    true
    (ep /. eb < 30. && eb /. ep < 30.)

let test_gemm_accuracy_helper () =
  let rng = Rng.create ~seed:4 in
  let e = Emul.gemm_accuracy ~prec:Fp.Fp32 ~n:64 ~rng in
  Alcotest.(check bool) "fp32 accuracy" true (e > 0. && e < 1e-5)

let test_syrk_emul_matches_exact_on_fp64 () =
  let rng = Rng.create ~seed:5 in
  let a = Mat.init ~rows:12 ~cols:5 (fun _ _ -> Rng.gaussian rng) in
  let c1 = Mat.create ~rows:12 ~cols:12 and c2 = Mat.create ~rows:12 ~cols:12 in
  Blas.syrk_lower ~alpha:(-1.) a ~beta:1. c1;
  Emul.syrk_lower ~fidelity:Emul.Per_op ~prec:Fp.Fp64 ~alpha:(-1.) a ~beta:1. c2;
  Alcotest.(check (float 0.)) "identical" 0. (Mat.diff_frobenius c1 c2)

let test_syrk_emul_fp32_close () =
  let rng = Rng.create ~seed:6 in
  let a = Mat.init ~rows:24 ~cols:8 (fun _ _ -> Rng.float rng) in
  let c_ref = Mat.create ~rows:24 ~cols:24 and c = Mat.create ~rows:24 ~cols:24 in
  Blas.syrk_lower ~alpha:1. a ~beta:0. c_ref;
  Emul.syrk_lower ~fidelity:Emul.Per_op ~prec:Fp.Fp32 ~alpha:1. a ~beta:0. c;
  let e = Mat.rel_diff c ~reference:c_ref in
  Alcotest.(check bool) (Printf.sprintf "fp32 error %g" e) true (e > 0. && e < 1e-5)

let test_trsm_emul_fp32 () =
  let rng = Rng.create ~seed:7 in
  let spd = Check.spd_random ~rng ~n:8 in
  let l = Blas.cholesky spd in
  let b_ref = Mat.init ~rows:6 ~cols:8 (fun _ _ -> Rng.gaussian rng) in
  let b = Mat.copy b_ref in
  Blas.trsm_right_lower_trans ~l b_ref;
  List.iter
    (fun fidelity ->
      let b' = Mat.copy b in
      Emul.trsm_right_lower_trans ~fidelity ~prec:Fp.Fp32 ~l b';
      let e = Mat.rel_diff b' ~reference:b_ref in
      Alcotest.(check bool) (Printf.sprintf "fp32 trsm error %g" e) true (e < 1e-4))
    [ Emul.Per_op; Emul.Boundary ]

let test_potrf_emul_fp32 () =
  let rng = Rng.create ~seed:8 in
  let a = Check.spd_random ~rng ~n:24 in
  List.iter
    (fun fidelity ->
      let l = Mat.copy a in
      Emul.potrf_lower ~fidelity ~prec:Fp.Fp32 l;
      Mat.zero_upper l;
      let r = Check.cholesky_residual ~a ~l in
      Alcotest.(check bool) (Printf.sprintf "fp32 potrf residual %g" r) true
        (r > 1e-12 && r < 1e-5))
    [ Emul.Per_op; Emul.Boundary ]

let test_potrf_emul_rejects_indefinite () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  Alcotest.check_raises "still raises" (Blas.Not_positive_definite 1) (fun () ->
    Emul.potrf_lower ~fidelity:Emul.Per_op ~prec:Fp.Fp32 a)

let prop_emul_error_bounded =
  (* n·u error bound (with slack) for the per-op emulated GEMM. *)
  QCheck.Test.make ~name:"per-op gemm error ≤ c·n·u" ~count:30
    QCheck.(pair (int_range 4 48) (oneofl [ Fp.Fp32; Fp.Fp16_32; Fp.Fp16 ]))
    (fun (n, prec) ->
      let e = gemm_err ~fidelity:Emul.Per_op prec n (n + 17) in
      let u = Fp.scalar_unit_roundoff (Fp.input_scalar prec) in
      e <= 8. *. float_of_int n *. u)

let () =
  Alcotest.run "blas_emul"
    [
      ( "emulated kernels",
        [
          Alcotest.test_case "fp64 exact" `Quick test_fp64_exact;
          Alcotest.test_case "error bands (Fig 1)" `Quick test_error_bands_per_op;
          Alcotest.test_case "boundary vs per-op" `Quick test_boundary_captures_input_quantisation;
          Alcotest.test_case "gemm_accuracy helper" `Quick test_gemm_accuracy_helper;
          Alcotest.test_case "syrk fp64 identical" `Quick test_syrk_emul_matches_exact_on_fp64;
          Alcotest.test_case "syrk fp32 close" `Quick test_syrk_emul_fp32_close;
          Alcotest.test_case "trsm fp32" `Quick test_trsm_emul_fp32;
          Alcotest.test_case "potrf fp32" `Quick test_potrf_emul_fp32;
          Alcotest.test_case "potrf rejects indefinite" `Quick test_potrf_emul_rejects_indefinite;
          QCheck_alcotest.to_alcotest prop_emul_error_bounded;
        ] );
    ]
