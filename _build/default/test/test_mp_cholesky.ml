module Mat = Geomix_linalg.Mat
module Blas = Geomix_linalg.Blas
module Check = Geomix_linalg.Check
module Tiled = Geomix_tile.Tiled
module Pm = Geomix_core.Precision_map
module Mp = Geomix_core.Mp_cholesky
module Fp = Geomix_precision.Fpformat
module Rng = Geomix_util.Rng

(* A covariance-like SPD test matrix with decaying off-diagonal mass. *)
let decay_spd n =
  Mat.init ~rows:n ~cols:n (fun i j ->
    (if i = j then 1.0 else 0.) +. exp (-0.05 *. float_of_int (abs (i - j))))

let factor_residual ?options ~pmap ~nb dense =
  let a = Tiled.of_dense ~nb dense in
  Mp.factorize ?options ~pmap a;
  let l = Tiled.to_dense a in
  Mat.zero_upper l;
  Check.cholesky_residual ~a:dense ~l

let test_fp64_matches_reference () =
  let d = decay_spd 96 in
  let r = factor_residual ~pmap:(Pm.uniform ~nt:6 Fp.Fp64) ~nb:16 d in
  Alcotest.(check bool) (Printf.sprintf "fp64 residual %g" r) true (r < 1e-14)

let test_fp64_ragged () =
  let d = decay_spd 50 in
  let r = factor_residual ~pmap:(Pm.uniform ~nt:4 Fp.Fp64) ~nb:16 d in
  Alcotest.(check bool) "ragged residual" true (r < 1e-14)

let test_residual_tracks_accuracy () =
  let d = decay_spd 160 in
  let a = Tiled.of_dense ~nb:32 d in
  let res u =
    let pmap = Pm.of_tiled ~u_req:u a in
    factor_residual ~pmap ~nb:32 d
  in
  let r9 = res 1e-9 and r4 = res 1e-4 and r2 = res 1e-2 in
  Alcotest.(check bool) (Printf.sprintf "1e-9 tight (%g)" r9) true (r9 < 1e-8);
  Alcotest.(check bool) (Printf.sprintf "1e-4 mid (%g)" r4) true (r4 < 1e-3 && r4 > r9);
  Alcotest.(check bool) (Printf.sprintf "1e-2 loose (%g)" r2) true (r2 < 1e-1 && r2 >= r4)

let test_two_level_fp16_residual () =
  let d = decay_spd 128 in
  let r = factor_residual ~pmap:(Pm.two_level ~nt:4 ~off_diag:Fp.Fp16) ~nb:32 d in
  Alcotest.(check bool) (Printf.sprintf "fp16 off-diag residual %g" r) true
    (r > 1e-8 && r < 1e-2)

let test_pmap_mismatch_rejected () =
  let d = decay_spd 64 in
  let a = Tiled.of_dense ~nb:16 d in
  Alcotest.check_raises "tile count mismatch"
    (Invalid_argument "Mp_cholesky.factorize: precision map / matrix tile mismatch")
    (fun () -> Mp.factorize ~pmap:(Pm.uniform ~nt:3 Fp.Fp64) a)

let test_not_spd_raises () =
  let d = Mat.init ~rows:32 ~cols:32 (fun i j -> if i = j then -1. else 0.) in
  let a = Tiled.of_dense ~nb:16 d in
  Alcotest.(check bool) "raises Not_positive_definite" true
    (try
       Mp.factorize ~pmap:(Pm.uniform ~nt:2 Fp.Fp64) a;
       false
     with Blas.Not_positive_definite _ -> true)

let test_parallel_matches_serial () =
  let d = decay_spd 128 in
  let pmap = Pm.of_tiled ~u_req:1e-6 (Tiled.of_dense ~nb:32 d) in
  let serial = Tiled.of_dense ~nb:32 d in
  Mp.factorize ~pmap serial;
  Geomix_parallel.Pool.with_pool ~num_workers:3 (fun pool ->
    let par = Tiled.of_dense ~nb:32 d in
    Mp.factorize ~pool ~pmap par;
    Alcotest.(check (float 0.)) "bitwise identical" 0. (Tiled.rel_diff par ~reference:serial))

let test_ttc_vs_automatic_accuracy () =
  (* STC down-casts broadcasts, so Automatic may lose a bounded amount of
     accuracy relative to Always_ttc — but both must honour u_req's order. *)
  let d = decay_spd 160 in
  let a = Tiled.of_dense ~nb:32 d in
  let pmap = Pm.of_tiled ~u_req:1e-6 a in
  let residual strategy =
    factor_residual
      ~options:{ Mp.default_options with strategy }
      ~pmap ~nb:32 d
  in
  let r_ttc = residual Mp.Always_ttc and r_auto = residual Mp.Automatic in
  Alcotest.(check bool)
    (Printf.sprintf "both accurate (ttc %g, auto %g)" r_ttc r_auto)
    true
    (r_ttc < 1e-4 && r_auto < 1e-4)

let test_no_comm_rounding_matches_ttc () =
  let d = decay_spd 96 in
  let a = Tiled.of_dense ~nb:32 d in
  let pmap = Pm.of_tiled ~u_req:1e-6 a in
  let run options =
    let t = Tiled.copy a in
    Mp.factorize ~options ~pmap t;
    t
  in
  let x = run { Mp.default_options with model_comm_rounding = false } in
  let y = run { Mp.default_options with strategy = Mp.Always_ttc } in
  Alcotest.(check (float 0.)) "identical when no downcast applies" 0.
    (Tiled.rel_diff x ~reference:y)

let test_solve_and_logdet () =
  let n = 80 in
  let d = decay_spd n in
  let a = Tiled.of_dense ~nb:32 d in
  Mp.factorize ~pmap:(Pm.uniform ~nt:(Tiled.nt a) Fp.Fp64) a;
  let b = Array.init n (fun i -> sin (float_of_int i)) in
  let x = Mp.solve_lower_trans a (Mp.solve_lower a b) in
  Alcotest.(check bool) "solve residual" true (Check.solve_residual ~a:d ~x ~b < 1e-12);
  let lref = Blas.cholesky d in
  Alcotest.(check (float 1e-9)) "log det" (Blas.log_det_from_chol lref) (Mp.log_det a)

let prop_fp64_equals_dense_reference =
  QCheck.Test.make ~name:"tiled FP64 factor = dense factor" ~count:20
    QCheck.(pair (int_range 2 6) (int_range 4 24))
    (fun (ntiles, nb) ->
      let n = ntiles * nb in
      let rng = Rng.create ~seed:(n * 3) in
      let d = Check.spd_random ~rng ~n in
      let a = Tiled.of_dense ~nb d in
      Mp.factorize ~pmap:(Pm.uniform ~nt:ntiles Fp.Fp64) a;
      let lt = Tiled.to_dense a in
      Mat.zero_upper lt;
      let lref = Blas.cholesky d in
      Mat.rel_diff lt ~reference:lref < 1e-12)

let () =
  Alcotest.run "mp_cholesky"
    [
      ( "factorization",
        [
          Alcotest.test_case "fp64 reference" `Quick test_fp64_matches_reference;
          Alcotest.test_case "fp64 ragged tiles" `Quick test_fp64_ragged;
          Alcotest.test_case "residual tracks u_req" `Quick test_residual_tracks_accuracy;
          Alcotest.test_case "two-level fp16" `Quick test_two_level_fp16_residual;
          Alcotest.test_case "pmap mismatch" `Quick test_pmap_mismatch_rejected;
          Alcotest.test_case "not SPD" `Quick test_not_spd_raises;
          Alcotest.test_case "parallel = serial" `Quick test_parallel_matches_serial;
          Alcotest.test_case "TTC vs automatic accuracy" `Quick test_ttc_vs_automatic_accuracy;
          Alcotest.test_case "no-comm-rounding = TTC" `Quick test_no_comm_rounding_matches_ttc;
          Alcotest.test_case "solve & log det" `Quick test_solve_and_logdet;
          QCheck_alcotest.to_alcotest prop_fp64_equals_dense_reference;
        ] );
    ]
