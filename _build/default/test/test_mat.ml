module Mat = Geomix_linalg.Mat
module Fp = Geomix_precision.Fpformat
module Rng = Geomix_util.Rng

let test_create_zeroed () =
  let m = Mat.create ~rows:3 ~cols:2 in
  Alcotest.(check int) "rows" 3 (Mat.rows m);
  Alcotest.(check int) "cols" 2 (Mat.cols m);
  for i = 0 to 2 do
    for j = 0 to 1 do
      Alcotest.(check (float 0.)) "zero" 0. (Mat.get m i j)
    done
  done

let test_init_get_set () =
  let m = Mat.init ~rows:3 ~cols:3 (fun i j -> float_of_int ((10 * i) + j)) in
  Alcotest.(check (float 0.)) "(1,2)" 12. (Mat.get m 1 2);
  Mat.set m 1 2 99.;
  Alcotest.(check (float 0.)) "after set" 99. (Mat.get m 1 2)

let test_of_to_arrays () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check (array (array (float 0.)))) "roundtrip" a (Mat.to_arrays (Mat.of_arrays a))

let test_copy_independent () =
  let m = Mat.init ~rows:2 ~cols:2 (fun i j -> float_of_int (i + j)) in
  let c = Mat.copy m in
  Mat.set c 0 0 42.;
  Alcotest.(check (float 0.)) "original untouched" 0. (Mat.get m 0 0)

let test_identity () =
  let i3 = Mat.identity 3 in
  Alcotest.(check (float 0.)) "diag" 1. (Mat.get i3 1 1);
  Alcotest.(check (float 0.)) "off" 0. (Mat.get i3 0 2)

let test_transpose () =
  let m = Mat.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Mat.transpose m in
  Alcotest.(check int) "rows" 3 (Mat.rows t);
  Alcotest.(check (float 0.)) "(2,1)" 6. (Mat.get t 2 1)

let test_frobenius () =
  let m = Mat.of_arrays [| [| 3.; 0. |]; [| 0.; 4. |] |] in
  Alcotest.(check (float 1e-12)) "frobenius" 5. (Mat.frobenius m)

let test_frobenius_lower () =
  (* Lower triangle [ [2,0]; [1,3] ] represents symmetric [[2,1],[1,3]]:
     ‖·‖_F = sqrt(4+1+1+9) = sqrt 15. *)
  let m = Mat.of_arrays [| [| 2.; 99. |]; [| 1.; 3. |] |] in
  Alcotest.(check (float 1e-12)) "sym norm" (sqrt 15.) (Mat.frobenius_lower m)

let test_max_abs () =
  let m = Mat.of_arrays [| [| -7.; 2. |] |] in
  Alcotest.(check (float 0.)) "max abs" 7. (Mat.max_abs m)

let test_scale_add () =
  let m = Mat.of_arrays [| [| 1.; 2. |] |] in
  Mat.scale m 2.;
  Mat.add_scaled m ~alpha:(-1.) (Mat.of_arrays [| [| 2.; 4. |] |]);
  Alcotest.(check (float 0.)) "zeroed" 0. (Mat.frobenius m)

let test_matvec () =
  let m = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check (array (float 1e-12))) "Ax" [| 5.; 11. |] (Mat.matvec m [| 1.; 2. |])

let test_matvec_trans () =
  let m = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check (array (float 1e-12))) "Aᵀx" [| 7.; 10. |] (Mat.matvec_trans m [| 1.; 2. |])

let test_sym_from_lower_zero_upper () =
  let m = Mat.of_arrays [| [| 1.; 9. |]; [| 2.; 3. |] |] in
  Mat.sym_from_lower m;
  Alcotest.(check (float 0.)) "mirrored" 2. (Mat.get m 0 1);
  Mat.zero_upper m;
  Alcotest.(check (float 0.)) "cleared" 0. (Mat.get m 0 1);
  Alcotest.(check (float 0.)) "lower kept" 2. (Mat.get m 1 0)

let test_round_inplace () =
  let m = Mat.of_arrays [| [| 1. +. Float.ldexp 1. (-20) |] |] in
  Mat.round_inplace Fp.S_fp16 m;
  Alcotest.(check (float 0.)) "rounded to fp16 grid" 1. (Mat.get m 0 0);
  let m2 = Mat.of_arrays [| [| 0.1 |] |] in
  Mat.round_inplace Fp.S_fp64 m2;
  Alcotest.(check (float 0.)) "fp64 noop" 0.1 (Mat.get m2 0 0)

let test_rel_diff () =
  let a = Mat.of_arrays [| [| 1.; 0. |] |] and b = Mat.of_arrays [| [| 2.; 0. |] |] in
  Alcotest.(check (float 1e-12)) "rel diff" 0.5 (Mat.rel_diff a ~reference:b);
  Alcotest.(check (float 0.)) "self" 0. (Mat.rel_diff a ~reference:a)

let test_blocks () =
  let m = Mat.init ~rows:4 ~cols:4 (fun i j -> float_of_int ((i * 4) + j)) in
  let b = Mat.sub_view_copy m ~row:1 ~col:2 ~rows:2 ~cols:2 in
  Alcotest.(check (float 0.)) "block (0,0)" 6. (Mat.get b 0 0);
  let z = Mat.create ~rows:2 ~cols:2 in
  Mat.set_block m ~row:1 ~col:2 z;
  Alcotest.(check (float 0.)) "written back" 0. (Mat.get m 1 2)

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose∘transpose = id" ~count:100
    QCheck.(pair (int_range 1 20) (int_range 1 20))
    (fun (r, c) ->
      let rng = Rng.create ~seed:(r + (100 * c)) in
      let m = Mat.init ~rows:r ~cols:c (fun _ _ -> Rng.gaussian rng) in
      Mat.rel_diff (Mat.transpose (Mat.transpose m)) ~reference:m = 0.)

let prop_frobenius_triangle =
  QCheck.Test.make ~name:"‖a+b‖ ≤ ‖a‖+‖b‖" ~count:100 (QCheck.int_range 1 30)
    (fun n ->
      let rng = Rng.create ~seed:n in
      let a = Mat.init ~rows:n ~cols:n (fun _ _ -> Rng.gaussian rng) in
      let b = Mat.init ~rows:n ~cols:n (fun _ _ -> Rng.gaussian rng) in
      let s = Mat.copy a in
      Mat.add_scaled s ~alpha:1. b;
      Mat.frobenius s <= Mat.frobenius a +. Mat.frobenius b +. 1e-9)

let () =
  Alcotest.run "mat"
    [
      ( "mat",
        [
          Alcotest.test_case "create zeroed" `Quick test_create_zeroed;
          Alcotest.test_case "init/get/set" `Quick test_init_get_set;
          Alcotest.test_case "arrays roundtrip" `Quick test_of_to_arrays;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "frobenius" `Quick test_frobenius;
          Alcotest.test_case "frobenius lower" `Quick test_frobenius_lower;
          Alcotest.test_case "max_abs" `Quick test_max_abs;
          Alcotest.test_case "scale/add" `Quick test_scale_add;
          Alcotest.test_case "matvec" `Quick test_matvec;
          Alcotest.test_case "matvec trans" `Quick test_matvec_trans;
          Alcotest.test_case "sym/zero upper" `Quick test_sym_from_lower_zero_upper;
          Alcotest.test_case "round inplace" `Quick test_round_inplace;
          Alcotest.test_case "rel diff" `Quick test_rel_diff;
          Alcotest.test_case "blocks" `Quick test_blocks;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_transpose_involution; prop_frobenius_triangle ] );
    ]
