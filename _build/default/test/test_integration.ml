(* End-to-end paths across the whole stack: covariance → precision map →
   comm map → mixed-precision factorization → likelihood, and the same
   precision map driving the hardware simulator. *)

module Locations = Geomix_geostat.Locations
module Covariance = Geomix_geostat.Covariance
module Field = Geomix_geostat.Field
module Pm = Geomix_core.Precision_map
module Cm = Geomix_core.Comm_map
module Mp = Geomix_core.Mp_cholesky
module Sim = Geomix_core.Sim_cholesky
module Machine = Geomix_gpusim.Machine
module Gpu = Geomix_gpusim.Gpu_specs
module Tiled = Geomix_tile.Tiled
module Mat = Geomix_linalg.Mat
module Check = Geomix_linalg.Check
module Fp = Geomix_precision.Fpformat
module Rng = Geomix_util.Rng

let setup ~n ~seed cov =
  let rng = Rng.create ~seed in
  let locs = Locations.morton_sort (Locations.jittered_grid_2d ~rng ~n) in
  let z = Field.synthesize ~rng ~cov locs in
  (locs, z)

let test_covariance_maps_have_band_structure () =
  (* Morton-ordered geospatial covariances give the paper's Fig 2a shape:
     high precision hugging the diagonal, FP16 far away. *)
  let cov = Covariance.sqexp ~sigma2:1. ~beta:0.01 () in
  let rng = Rng.create ~seed:11 in
  let locs = Locations.morton_sort (Locations.jittered_grid_2d ~rng ~n:512) in
  let a = Covariance.build_tiled cov locs ~nb:32 in
  let pmap = Pm.of_tiled ~u_req:1e-4 a in
  let ntl = Pm.nt pmap in
  (* Sub-diagonal tiles at least FP32-class; far tiles mostly FP16-class. *)
  let far_low = ref 0 and far_total = ref 0 in
  for i = 0 to ntl - 1 do
    for j = 0 to i - 1 do
      if i - j > ntl / 2 then begin
        incr far_total;
        match Pm.get pmap i j with
        | Fp.Fp16 | Fp.Fp16_32 -> incr far_low
        | _ -> ()
      end
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "far tiles mostly low precision (%d/%d)" !far_low !far_total)
    true
    (!far_total > 0 && float_of_int !far_low /. float_of_int !far_total > 0.5)

let test_mp_factorization_of_real_covariance () =
  let cov = Covariance.matern ~sigma2:1. ~beta:0.1 ~nu:0.5 () in
  let locs, _ = setup ~n:256 ~seed:12 cov in
  let dense = Covariance.build_dense cov locs in
  let a = Covariance.build_tiled cov locs ~nb:32 in
  let pmap = Pm.of_tiled ~u_req:1e-6 a in
  Mp.factorize ~pmap a;
  let l = Tiled.to_dense a in
  Mat.zero_upper l;
  let r = Check.cholesky_residual ~a:dense ~l in
  Alcotest.(check bool) (Printf.sprintf "residual %g ≲ u_req" r) true (r < 1e-4)

let test_same_pmap_drives_numeric_and_simulated () =
  let cov = Covariance.sqexp ~nugget:0.02 ~sigma2:1. ~beta:0.03 () in
  let locs, _ = setup ~n:256 ~seed:13 cov in
  let a = Covariance.build_tiled cov locs ~nb:32 in
  let pmap = Pm.of_tiled ~u_req:1e-4 a in
  (* Numeric side. *)
  Mp.factorize ~pmap (Tiled.copy a);
  (* Simulated side, same map. *)
  let r = Sim.run ~machine:(Machine.single_gpu Gpu.V100) ~pmap ~nb:2048 () in
  Alcotest.(check bool) "simulated run completes" true (r.Sim.makespan > 0.);
  (* The adaptive run must beat a uniform FP64 simulation. *)
  let r64 =
    Sim.run ~machine:(Machine.single_gpu Gpu.V100)
      ~pmap:(Pm.uniform ~nt:(Pm.nt pmap) Fp.Fp64)
      ~nb:2048 ()
  in
  Alcotest.(check bool) "adaptive faster than FP64" true (r.Sim.makespan < r64.Sim.makespan)

let test_accuracy_chain_end_to_end () =
  (* Tighter u_req ⇒ factorization closer to FP64 ⇒ log-likelihood closer
     to the exact value: the full Fig 5 mechanism in one assertion. *)
  let cov = Covariance.matern ~sigma2:1. ~beta:0.1 ~nu:0.5 () in
  let locs, z = setup ~n:196 ~seed:14 cov in
  let exact = Geomix_geostat.Likelihood.loglik Geomix_geostat.Likelihood.Exact ~cov ~locs ~z in
  let delta u =
    let ll =
      Geomix_geostat.Likelihood.loglik
        (Geomix_geostat.Likelihood.mixed ~u_req:u ~nb:28 ())
        ~cov ~locs ~z
    in
    Float.abs (ll -. exact)
  in
  let d9 = delta 1e-9 and d2 = delta 1e-2 in
  Alcotest.(check bool) (Printf.sprintf "Δ(1e-9)=%g ≤ Δ(1e-2)=%g" d9 d2) true (d9 <= d2);
  Alcotest.(check bool) "1e-9 is near-exact" true (d9 < 1e-4 *. (1. +. Float.abs exact))

let test_stc_numeric_accuracy_cost_is_bounded () =
  (* The ablation the paper does not run: STC's extra down-conversion must
     not degrade the factorization beyond its accuracy class. *)
  let cov = Covariance.sqexp ~nugget:0.02 ~sigma2:1. ~beta:0.03 () in
  let locs, _ = setup ~n:256 ~seed:15 cov in
  let dense = Covariance.build_dense cov locs in
  let residual strategy =
    let a = Covariance.build_tiled cov locs ~nb:32 in
    let pmap = Pm.of_tiled ~u_req:1e-4 a in
    Mp.factorize ~options:{ Mp.default_options with strategy } ~pmap a;
    let l = Tiled.to_dense a in
    Mat.zero_upper l;
    Check.cholesky_residual ~a:dense ~l
  in
  let r_auto = residual Mp.Automatic and r_ttc = residual Mp.Always_ttc in
  Alcotest.(check bool)
    (Printf.sprintf "auto %g within 50x of ttc %g" r_auto r_ttc)
    true
    (r_auto < 50. *. r_ttc +. 1e-12)

let test_comm_map_consistency_with_sim () =
  (* The simulator's conversion counters must reflect the comm map: an
     all-STC config does exactly one conversion per broadcasting tile. *)
  let ntiles = 10 in
  let pmap = Pm.two_level ~nt:ntiles ~off_diag:Fp.Fp16 in
  let cm = Cm.compute pmap in
  Alcotest.(check bool) "all broadcasting tiles STC" true (Cm.stc_fraction cm > 0.9);
  let r =
    Sim.run
      ~options:{ Sim.default_options with strategy = Sim.Stc_auto }
      ~machine:(Machine.single_gpu Gpu.A100) ~pmap ~nb:2048 ()
  in
  (* One producer conversion per POTRF/TRSM task that is STC (the last
     diagonal tile broadcasts nothing). *)
  let broadcasters = ntiles - 1 + (ntiles * (ntiles - 1) / 2) in
  Alcotest.(check bool)
    (Printf.sprintf "conversions %d ≈ broadcasters %d" r.Sim.conversions broadcasters)
    true
    (r.Sim.conversions >= broadcasters && r.Sim.conversions <= 2 * broadcasters)

let test_scaled_summit_weak_scaling_shape () =
  (* Weak scaling (Fig 12a): with memory-proportional sizing (nt ∝ √GPUs,
     constant tiles per GPU) the aggregate rate must keep growing and the
     per-GPU rate must retain most of the single-node value. *)
  let per_gpu nodes ntiles =
    let r =
      Sim.run ~machine:(Machine.summit ~nodes ()) ~pmap:(Pm.uniform ~nt:ntiles Fp.Fp64)
        ~nb:2048 ()
    in
    r.Sim.tflops /. float_of_int r.Sim.ngpus
  in
  let p1 = per_gpu 1 49 and p4 = per_gpu 4 98 in
  Alcotest.(check bool)
    (Printf.sprintf "per-GPU rate retained (%.2f → %.2f)" p1 p4)
    true
    (p4 > 0.8 *. p1)

let () =
  Alcotest.run "integration"
    [
      ( "end to end",
        [
          Alcotest.test_case "band-structured maps" `Quick test_covariance_maps_have_band_structure;
          Alcotest.test_case "MP factorization of covariance" `Quick
            test_mp_factorization_of_real_covariance;
          Alcotest.test_case "one pmap, numeric + simulated" `Quick
            test_same_pmap_drives_numeric_and_simulated;
          Alcotest.test_case "accuracy chain" `Quick test_accuracy_chain_end_to_end;
          Alcotest.test_case "STC accuracy cost bounded" `Quick
            test_stc_numeric_accuracy_cost_is_bounded;
          Alcotest.test_case "comm map ↔ simulator" `Quick test_comm_map_consistency_with_sim;
          Alcotest.test_case "weak scaling shape" `Quick test_scaled_summit_weak_scaling_shape;
        ] );
    ]
