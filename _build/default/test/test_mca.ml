module Mca = Geomix_precision.Mca
module Rng = Geomix_util.Rng
module Stats = Geomix_util.Stats

let test_stochastic_round_exact_passthrough () =
  let rng = Rng.create ~seed:1 in
  List.iter
    (fun x ->
      Alcotest.(check (float 0.)) "grid point unchanged" x
        (Mca.stochastic_round rng ~mant_bits:10 x))
    [ 0.; 1.; 2.; 0.5; -4.; 1.5 ]

let test_stochastic_round_two_neighbours () =
  let rng = Rng.create ~seed:2 in
  let ulp = Float.ldexp 1. (-10) in
  let x = 1. +. (0.3 *. ulp) in
  for _ = 1 to 200 do
    let y = Mca.stochastic_round rng ~mant_bits:10 x in
    Alcotest.(check bool) "lands on a neighbour" true (y = 1. || y = 1. +. ulp)
  done

let test_stochastic_round_unbiased () =
  let rng = Rng.create ~seed:3 in
  let ulp = Float.ldexp 1. (-10) in
  let x = 1. +. (0.25 *. ulp) in
  let n = 20_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Mca.stochastic_round rng ~mant_bits:10 x
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near x" true (Float.abs (mean -. x) < 0.02 *. ulp)

let test_perturb_rr_changes_values () =
  let rng = Rng.create ~seed:4 in
  let t = Mca.create ~rng ~virtual_precision:11 () in
  let distinct = ref false in
  let x = Float.pi in
  let first = Mca.perturb t x in
  for _ = 1 to 50 do
    if Mca.perturb t x <> first then distinct := true
  done;
  Alcotest.(check bool) "randomised rounding varies" true !distinct

let test_perturb_magnitude () =
  let rng = Rng.create ~seed:5 in
  let t = Mca.create ~mode:Mca.Full ~rng ~virtual_precision:11 () in
  let x = 123.456 in
  for _ = 1 to 500 do
    let y = Mca.perturb t x in
    Alcotest.(check bool) "relative perturbation bounded" true
      (Float.abs (y -. x) /. x < Float.ldexp 1. (-8))
  done

let test_significant_digits_exact () =
  Alcotest.(check bool) "identical samples ⇒ ∞ digits" true
    (Mca.significant_digits [| 1.; 1.; 1. |] = infinity)

let test_significant_digits_estimate () =
  (* Samples with σ/μ = 1e-5 carry ≈5 significant digits. *)
  let s = Mca.significant_digits [| 1.00001; 0.99999; 1.0; 1.00001; 0.99999 |] in
  Alcotest.(check bool) (Printf.sprintf "≈5 digits (got %g)" s) true (s > 4. && s < 6.)

let test_mca_reveals_precision () =
  (* Running the same dot product under MCA at t=24 vs t=11 virtual bits
     must report correspondingly fewer surviving digits at t=11. *)
  let digits vp =
    let rng = Rng.create ~seed:99 in
    let samples =
      Array.init 30 (fun _ ->
        let t = Mca.create ~rng ~virtual_precision:vp () in
        let acc = ref 0. in
        for i = 1 to 100 do
          acc := Mca.perturb t (!acc +. Mca.perturb t (1. /. float_of_int i))
        done;
        !acc)
    in
    Mca.significant_digits samples
  in
  let d24 = digits 24 and d11 = digits 11 in
  Alcotest.(check bool)
    (Printf.sprintf "t=24 keeps more digits (%.2f vs %.2f)" d24 d11)
    true
    (d24 > d11 +. 2.)

let prop_stochastic_round_bounded =
  QCheck.Test.make ~name:"stochastic rounding stays within one ulp" ~count:1000
    (QCheck.pair (QCheck.int_range 5 20) (QCheck.float_range 1e-3 1e3))
    (fun (mant, x) ->
      let rng = Rng.create ~seed:7 in
      let y = Mca.stochastic_round rng ~mant_bits:mant x in
      Float.abs (y -. x) <= Float.abs x *. Float.ldexp 1. (-mant))

let () =
  Alcotest.run "mca"
    [
      ( "mca",
        [
          Alcotest.test_case "grid passthrough" `Quick test_stochastic_round_exact_passthrough;
          Alcotest.test_case "two neighbours" `Quick test_stochastic_round_two_neighbours;
          Alcotest.test_case "unbiased" `Quick test_stochastic_round_unbiased;
          Alcotest.test_case "rr varies" `Quick test_perturb_rr_changes_values;
          Alcotest.test_case "perturbation magnitude" `Quick test_perturb_magnitude;
          Alcotest.test_case "digits: exact" `Quick test_significant_digits_exact;
          Alcotest.test_case "digits: estimate" `Quick test_significant_digits_estimate;
          Alcotest.test_case "mca reveals precision" `Quick test_mca_reveals_precision;
          QCheck_alcotest.to_alcotest prop_stochastic_round_bounded;
        ] );
    ]
