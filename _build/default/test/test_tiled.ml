module Mat = Geomix_linalg.Mat
module Tiled = Geomix_tile.Tiled
module Layout = Geomix_tile.Layout
module Rng = Geomix_util.Rng

let sym_random rng n =
  let m = Mat.init ~rows:n ~cols:n (fun _ _ -> Rng.gaussian rng) in
  let s = Mat.copy m in
  Mat.add_scaled s ~alpha:1. (Mat.transpose m);
  s

let test_shape () =
  let t = Tiled.create ~n:10 ~nb:4 in
  Alcotest.(check int) "nt" 3 (Tiled.nt t);
  Alcotest.(check int) "rows tile 0" 4 (Tiled.tile_rows t 0);
  Alcotest.(check int) "rows ragged" 2 (Tiled.tile_rows t 2);
  Alcotest.(check int) "tile dims" 2 (Mat.rows (Tiled.tile t 2 2));
  Alcotest.(check int) "off-diag ragged dims" 4 (Mat.cols (Tiled.tile t 2 1))

let test_roundtrip_exact_tiles () =
  let rng = Rng.create ~seed:1 in
  let d = sym_random rng 12 in
  let t = Tiled.of_dense ~nb:4 d in
  Alcotest.(check (float 0.)) "roundtrip" 0. (Mat.rel_diff (Tiled.to_dense t) ~reference:d)

let test_roundtrip_ragged () =
  let rng = Rng.create ~seed:2 in
  let d = sym_random rng 11 in
  let t = Tiled.of_dense ~nb:4 d in
  Alcotest.(check (float 0.)) "ragged roundtrip" 0.
    (Mat.rel_diff (Tiled.to_dense t) ~reference:d)

let test_init_matches_of_dense () =
  let f i j = 1. /. (1. +. float_of_int (abs (i - j))) in
  let t1 = Tiled.init ~n:9 ~nb:3 f in
  let d = Mat.init ~rows:9 ~cols:9 (fun i j -> f i j) in
  let t2 = Tiled.of_dense ~nb:3 d in
  Alcotest.(check (float 0.)) "same" 0. (Tiled.rel_diff t1 ~reference:t2)

let test_frobenius_matches_dense () =
  let rng = Rng.create ~seed:3 in
  let d = sym_random rng 13 in
  let t = Tiled.of_dense ~nb:5 d in
  Alcotest.(check (float 1e-10)) "norm" (Mat.frobenius d) (Tiled.frobenius t)

let test_tile_frobenius () =
  let t = Tiled.init ~n:4 ~nb:2 (fun i j -> if i = j then 2. else 0.) in
  Alcotest.(check (float 1e-12)) "diag tile" (sqrt 8.) (Tiled.tile_frobenius t 0 0);
  Alcotest.(check (float 1e-12)) "off tile" 0. (Tiled.tile_frobenius t 1 0)

let test_copy_independent () =
  let t = Tiled.init ~n:4 ~nb:2 (fun _ _ -> 1.) in
  let c = Tiled.copy t in
  Mat.set (Tiled.tile c 0 0) 0 0 99.;
  Alcotest.(check (float 0.)) "original" 1. (Mat.get (Tiled.tile t 0 0) 0 0)

let test_iter_lower_count () =
  let t = Tiled.create ~n:12 ~nb:3 in
  let count = ref 0 in
  Tiled.iter_lower t (fun ~i ~j _ ->
    Alcotest.(check bool) "lower" true (i >= j);
    incr count);
  Alcotest.(check int) "4·5/2 tiles" 10 !count

let test_set_tile () =
  let t = Tiled.create ~n:4 ~nb:2 in
  let m = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Tiled.set_tile t 1 0 m;
  Alcotest.(check (float 0.)) "written" 3. (Mat.get (Tiled.tile t 1 0) 1 0)

(* Layout *)

let test_squarest_grid () =
  let check n p q =
    let g = Layout.squarest_grid n in
    Alcotest.(check (pair int int)) (Printf.sprintf "grid %d" n) (p, q)
      (g.Layout.p, g.Layout.q)
  in
  check 1 1 1;
  check 6 2 3;
  check 12 3 4;
  check 16 4 4;
  check 7 1 7;
  check 384 16 24

let test_owner_range () =
  let g = Layout.make_grid ~p:2 ~q:3 in
  for i = 0 to 9 do
    for j = 0 to i do
      let o = Layout.owner g ~i ~j in
      Alcotest.(check bool) "in range" true (o >= 0 && o < 6)
    done
  done

let test_local_tiles_partition () =
  let g = Layout.make_grid ~p:2 ~q:2 in
  let nt = 7 in
  let total =
    List.fold_left
      (fun acc r -> acc + List.length (Layout.local_tiles g ~rank:r ~nt))
      0 [ 0; 1; 2; 3 ]
  in
  Alcotest.(check int) "partition covers lower triangle" (nt * (nt + 1) / 2) total

let test_tile_counts_balance () =
  let g = Layout.make_grid ~p:4 ~q:4 in
  let counts = Layout.tile_counts g ~nt:64 in
  let lo = Array.fold_left min counts.(0) counts in
  let hi = Array.fold_left max counts.(0) counts in
  (* Block-cyclic keeps the imbalance small at nt ≫ p,q. *)
  Alcotest.(check bool)
    (Printf.sprintf "balanced (%d..%d)" lo hi)
    true
    (float_of_int hi /. float_of_int lo < 1.6)

let prop_roundtrip =
  QCheck.Test.make ~name:"dense↔tiled roundtrip" ~count:60
    QCheck.(pair (int_range 1 25) (int_range 1 8))
    (fun (n, nb) ->
      let rng = Rng.create ~seed:(n + (31 * nb)) in
      let d = sym_random rng n in
      let t = Tiled.of_dense ~nb d in
      Mat.rel_diff (Tiled.to_dense t) ~reference:d = 0.)

let prop_owner_consistent =
  QCheck.Test.make ~name:"owner deterministic and in range" ~count:100
    QCheck.(triple (int_range 1 6) (int_range 1 6) (pair (int_range 0 40) (int_range 0 40)))
    (fun (p, q, (i, j)) ->
      let g = Layout.make_grid ~p ~q in
      let o = Layout.owner g ~i ~j in
      o >= 0 && o < p * q && o = Layout.owner g ~i ~j)

let () =
  Alcotest.run "tiled"
    [
      ( "tiled",
        [
          Alcotest.test_case "shape" `Quick test_shape;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_exact_tiles;
          Alcotest.test_case "roundtrip ragged" `Quick test_roundtrip_ragged;
          Alcotest.test_case "init = of_dense" `Quick test_init_matches_of_dense;
          Alcotest.test_case "frobenius" `Quick test_frobenius_matches_dense;
          Alcotest.test_case "tile frobenius" `Quick test_tile_frobenius;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "iter lower" `Quick test_iter_lower_count;
          Alcotest.test_case "set tile" `Quick test_set_tile;
        ] );
      ( "layout",
        [
          Alcotest.test_case "squarest grid" `Quick test_squarest_grid;
          Alcotest.test_case "owner range" `Quick test_owner_range;
          Alcotest.test_case "local tiles partition" `Quick test_local_tiles_partition;
          Alcotest.test_case "block-cyclic balance" `Quick test_tile_counts_balance;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_owner_consistent ] );
    ]
