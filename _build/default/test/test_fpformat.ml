module Fp = Geomix_precision.Fpformat

let scalar = Alcotest.testable Fp.pp_scalar ( = )

let test_fp64_identity () =
  List.iter
    (fun x -> Alcotest.(check (float 0.)) "identity" x (Fp.round Fp.S_fp64 x))
    [ 0.; 1.; -1.; Float.pi; 1e-300; 1e300; 0.1 ]

let test_special_values () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "nan" true (Float.is_nan (Fp.round s nan));
      Alcotest.(check (float 0.)) "inf" infinity (Fp.round s infinity);
      Alcotest.(check (float 0.)) "-inf" neg_infinity (Fp.round s neg_infinity);
      Alcotest.(check (float 0.)) "zero" 0. (Fp.round s 0.))
    Fp.all_scalars

let test_exact_values_fixed () =
  (* Powers of two and small integers are exact in every format. *)
  List.iter
    (fun s ->
      List.iter
        (fun x -> Alcotest.(check (float 0.)) "exact" x (Fp.round s x))
        [ 1.; 2.; 0.5; -4.; 1024.; 0.0625; 3.; -7. ])
    Fp.all_scalars

let test_fp16_known_roundings () =
  (* FP16 has a 10-bit stored mantissa: ulp at 1.0 is 2^-10. *)
  let ulp = Float.ldexp 1. (-10) in
  Alcotest.(check (float 0.)) "round down" 1. (Fp.round Fp.S_fp16 (1. +. (ulp /. 4.)));
  Alcotest.(check (float 0.)) "round up" (1. +. ulp)
    (Fp.round Fp.S_fp16 (1. +. (0.75 *. ulp)));
  (* Tie at half ulp goes to even (mantissa 0). *)
  Alcotest.(check (float 0.)) "tie to even" 1. (Fp.round Fp.S_fp16 (1. +. (ulp /. 2.)))

let test_fp16_overflow () =
  Alcotest.(check (float 0.)) "max fp16" 65504. (Fp.round Fp.S_fp16 65504.);
  Alcotest.(check (float 0.)) "overflow" infinity (Fp.round Fp.S_fp16 65520.);
  Alcotest.(check (float 0.)) "neg overflow" neg_infinity (Fp.round Fp.S_fp16 (-70000.))

let test_fp16_subnormals () =
  let tiny = Float.ldexp 1. (-24) in
  (* smallest fp16 subnormal *)
  Alcotest.(check (float 0.)) "subnormal exact" tiny (Fp.round Fp.S_fp16 tiny);
  Alcotest.(check (float 0.)) "below half-tiny flushes" 0.
    (Fp.round Fp.S_fp16 (tiny /. 4.));
  Alcotest.(check (float 0.)) "above half-tiny rounds up" tiny
    (Fp.round Fp.S_fp16 (0.6 *. tiny))

let test_bf16_range () =
  (* BF16 shares FP32's exponent range: 1e38 survives, precision is coarse. *)
  let r = Fp.round Fp.S_bf16 1e38 in
  Alcotest.(check bool) "finite" true (Float.is_finite r);
  Alcotest.(check bool) "coarse" true (Float.abs (r -. 1e38) /. 1e38 < 4e-3)

let test_fp32_matches_int32_roundtrip () =
  (* Values exactly representable in fp32 must round to themselves. *)
  List.iter
    (fun x -> Alcotest.(check (float 0.)) "fp32 exact" x (Fp.round Fp.S_fp32 x))
    [ 1.5; 3.25; 123456.; Float.ldexp 1. (-126); -0.1015625 ]

let test_unit_roundoff_ordering () =
  let u = Fp.scalar_unit_roundoff in
  Alcotest.(check bool) "fp64 < fp32" true (u Fp.S_fp64 < u Fp.S_fp32);
  Alcotest.(check bool) "fp32 < tf32" true (u Fp.S_fp32 < u Fp.S_tf32);
  Alcotest.(check bool) "tf32 = fp16" true (u Fp.S_tf32 = u Fp.S_fp16);
  Alcotest.(check bool) "fp16 < bf16" true (u Fp.S_fp16 < u Fp.S_bf16)

let test_bytes () =
  Alcotest.(check int) "fp64" 8 (Fp.scalar_bytes Fp.S_fp64);
  Alcotest.(check int) "fp32" 4 (Fp.scalar_bytes Fp.S_fp32);
  Alcotest.(check int) "tf32 stored as 4B" 4 (Fp.scalar_bytes Fp.S_tf32);
  Alcotest.(check int) "fp16" 2 (Fp.scalar_bytes Fp.S_fp16);
  Alcotest.(check int) "bf16" 2 (Fp.scalar_bytes Fp.S_bf16)

let test_higher_scalar () =
  Alcotest.(check scalar) "64 vs 16" Fp.S_fp64 (Fp.higher_scalar Fp.S_fp64 Fp.S_fp16);
  Alcotest.(check scalar) "16 vs 32" Fp.S_fp32 (Fp.higher_scalar Fp.S_fp16 Fp.S_fp32);
  Alcotest.(check scalar) "bf16 lowest" Fp.S_fp16 (Fp.higher_scalar Fp.S_bf16 Fp.S_fp16)

let test_precision_mappings () =
  Alcotest.(check scalar) "fp16_32 input" Fp.S_fp16 (Fp.input_scalar Fp.Fp16_32);
  Alcotest.(check scalar) "fp16_32 accum" Fp.S_fp32 (Fp.accum_scalar Fp.Fp16_32);
  Alcotest.(check scalar) "fp16 accum" Fp.S_fp16 (Fp.accum_scalar Fp.Fp16);
  Alcotest.(check scalar) "tf32 input" Fp.S_tf32 (Fp.input_scalar Fp.Tf32);
  Alcotest.(check scalar) "fp64 storage" Fp.S_fp64 (Fp.storage_scalar Fp.Fp64);
  (* TRSM cannot run below FP32 ⇒ FP16-class tiles are stored in FP32. *)
  Alcotest.(check scalar) "fp16 storage" Fp.S_fp32 (Fp.storage_scalar Fp.Fp16);
  Alcotest.(check scalar) "fp16_32 storage" Fp.S_fp32 (Fp.storage_scalar Fp.Fp16_32)

let test_rule_epsilon_ordering () =
  (* Lower precision ⇒ larger u_low ⇒ stricter norm threshold. *)
  Alcotest.(check bool) "chain" true
    (Fp.rule_epsilon Fp.Fp64 < Fp.rule_epsilon Fp.Fp32
    && Fp.rule_epsilon Fp.Fp32 < Fp.rule_epsilon Fp.Fp16_32
    && Fp.rule_epsilon Fp.Fp16_32 < Fp.rule_epsilon Fp.Fp16)

let test_names_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "of_string∘name" true (Fp.of_string (Fp.name p) = Some p))
    Fp.all;
  List.iter
    (fun s ->
      Alcotest.(check bool) "scalar roundtrip" true
        (Fp.scalar_of_string (Fp.scalar_name s) = Some s))
    Fp.all_scalars;
  Alcotest.(check bool) "unknown" true (Fp.of_string "FP8" = None)

(* OCaml's Int32.bits_of_float performs IEEE double→single conversion with
   round-to-nearest-even in hardware: a perfect oracle for S_fp32. *)
let hw_fp32 x = Int32.float_of_bits (Int32.bits_of_float x)

let test_fp32_against_hardware_fixed () =
  List.iter
    (fun x ->
      let ours = Fp.round Fp.S_fp32 x and hw = hw_fp32 x in
      Alcotest.(check bool)
        (Printf.sprintf "%.17g: ours %.17g vs hw %.17g" x ours hw)
        true
        (ours = hw || (Float.is_nan ours && Float.is_nan hw)))
    [
      0.1; -0.1; Float.pi; exp 1.; 1e-40; -1e-40; 1e38; 3.4028235e38; 3.5e38;
      1.1754944e-38; 1e-45; 7e-46; 0.333333333333333; 65504.1; 2.0 ** 127.;
      1.9999999 *. (2.0 ** 127.); -123456.789;
    ]

let prop_fp32_matches_hardware =
  QCheck.Test.make ~name:"S_fp32 rounding = hardware float32 conversion" ~count:20000
    (QCheck.oneof
       [
         QCheck.float_range (-1e38) 1e38;
         QCheck.float_range (-1.) 1.;
         QCheck.float_range (-1e-37) 1e-37; (* subnormal territory *)
         QCheck.float_range 1e37 4e38;      (* overflow boundary *)
       ])
    (fun x ->
      let ours = Fp.round Fp.S_fp32 x and hw = hw_fp32 x in
      ours = hw || (Float.is_nan ours && Float.is_nan hw))

let float_gen = QCheck.float_range (-1e30) 1e30

let prop_idempotent =
  QCheck.Test.make ~name:"rounding is idempotent" ~count:2000
    (QCheck.pair (QCheck.oneofl Fp.all_scalars) float_gen)
    (fun (s, x) ->
      let y = Fp.round s x in
      (Float.is_nan y && Float.is_nan x) || Fp.round s y = y)

let prop_monotone =
  QCheck.Test.make ~name:"rounding is monotone" ~count:2000
    (QCheck.triple (QCheck.oneofl Fp.all_scalars) float_gen float_gen)
    (fun (s, a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Fp.round s lo <= Fp.round s hi)

let prop_half_ulp =
  QCheck.Test.make ~name:"error within half ulp (normal range)" ~count:2000
    (QCheck.pair (QCheck.oneofl Fp.all_scalars) (QCheck.float_range (-1e4) 1e4))
    (fun (s, x) ->
      if x = 0. then true
      else begin
        let y = Fp.round s x in
        if not (Float.is_finite y) then true
        else begin
          let u = Fp.scalar_unit_roundoff s in
          (* |x−y| ≤ u·|x| for normal x (subnormals handled coarsely). *)
          Float.abs (y -. x) <= (u *. Float.abs x) +. 1e-300
        end
      end)

let prop_sign_preserved =
  QCheck.Test.make ~name:"sign preserved" ~count:1000
    (QCheck.pair (QCheck.oneofl Fp.all_scalars) float_gen)
    (fun (s, x) ->
      let y = Fp.round s x in
      y = 0. || Float.sign_bit y = Float.sign_bit x)

let () =
  Alcotest.run "fpformat"
    [
      ( "rounding",
        [
          Alcotest.test_case "fp64 identity" `Quick test_fp64_identity;
          Alcotest.test_case "special values" `Quick test_special_values;
          Alcotest.test_case "exact values" `Quick test_exact_values_fixed;
          Alcotest.test_case "fp16 known roundings" `Quick test_fp16_known_roundings;
          Alcotest.test_case "fp16 overflow" `Quick test_fp16_overflow;
          Alcotest.test_case "fp16 subnormals" `Quick test_fp16_subnormals;
          Alcotest.test_case "bf16 range" `Quick test_bf16_range;
          Alcotest.test_case "fp32 exact values" `Quick test_fp32_matches_int32_roundtrip;
          Alcotest.test_case "fp32 = hardware (fixed cases)" `Quick
            test_fp32_against_hardware_fixed;
          QCheck_alcotest.to_alcotest prop_fp32_matches_hardware;
        ] );
      ( "format metadata",
        [
          Alcotest.test_case "unit roundoff ordering" `Quick test_unit_roundoff_ordering;
          Alcotest.test_case "bytes" `Quick test_bytes;
          Alcotest.test_case "higher_scalar" `Quick test_higher_scalar;
          Alcotest.test_case "precision mappings" `Quick test_precision_mappings;
          Alcotest.test_case "rule epsilon ordering" `Quick test_rule_epsilon_ordering;
          Alcotest.test_case "names roundtrip" `Quick test_names_roundtrip;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_idempotent; prop_monotone; prop_half_ulp; prop_sign_preserved ] );
    ]
